#include "ranking/compare.h"

#include <algorithm>
#include <cstdint>
#include <numeric>

#include "util/check.h"

namespace impreg {

namespace {

// Counts inversions in `values` by merge sort. Destroys the input.
std::int64_t CountInversions(std::vector<int>& values,
                             std::vector<int>& scratch, std::size_t lo,
                             std::size_t hi) {
  if (hi - lo <= 1) return 0;
  const std::size_t mid = lo + (hi - lo) / 2;
  std::int64_t count = CountInversions(values, scratch, lo, mid) +
                       CountInversions(values, scratch, mid, hi);
  std::size_t i = lo, j = mid, k = lo;
  while (i < mid && j < hi) {
    if (values[i] <= values[j]) {
      scratch[k++] = values[i++];
    } else {
      count += static_cast<std::int64_t>(mid - i);
      scratch[k++] = values[j++];
    }
  }
  while (i < mid) scratch[k++] = values[i++];
  while (j < hi) scratch[k++] = values[j++];
  std::copy(scratch.begin() + lo, scratch.begin() + hi, values.begin() + lo);
  return count;
}

}  // namespace

std::vector<int> RanksOf(const Vector& scores) {
  const int n = static_cast<int>(scores.size());
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return scores[a] > scores[b];
  });
  std::vector<int> ranks(n);
  for (int r = 0; r < n; ++r) ranks[order[r]] = r;
  return ranks;
}

double KendallTau(const Vector& a, const Vector& b) {
  IMPREG_CHECK(a.size() == b.size());
  const int n = static_cast<int>(a.size());
  if (n < 2) return 1.0;
  // Order items by a; count inversions of b's ranks in that order.
  const std::vector<int> ranks_a = RanksOf(a);
  const std::vector<int> ranks_b = RanksOf(b);
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](int x, int y) { return ranks_a[x] < ranks_a[y]; });
  std::vector<int> sequence(n);
  for (int i = 0; i < n; ++i) sequence[i] = ranks_b[order[i]];
  std::vector<int> scratch(n);
  const std::int64_t inversions =
      CountInversions(sequence, scratch, 0, sequence.size());
  const std::int64_t pairs = static_cast<std::int64_t>(n) * (n - 1) / 2;
  return 1.0 - 2.0 * static_cast<double>(inversions) /
                   static_cast<double>(pairs);
}

double TopKOverlap(const Vector& a, const Vector& b, int k) {
  IMPREG_CHECK(a.size() == b.size());
  IMPREG_CHECK(k >= 1 && k <= static_cast<int>(a.size()));
  const std::vector<int> ranks_a = RanksOf(a);
  const std::vector<int> ranks_b = RanksOf(b);
  int hits = 0;
  for (std::size_t u = 0; u < a.size(); ++u) {
    if (ranks_a[u] < k && ranks_b[u] < k) ++hits;
  }
  return static_cast<double>(hits) / k;
}

}  // namespace impreg
