#include "ranking/centrality.h"

#include <cmath>

#include "linalg/graph_operators.h"
#include "linalg/power_method.h"
#include "util/check.h"

namespace impreg {

Vector EigenvectorCentrality(const Graph& g,
                             const CentralityOptions& options) {
  IMPREG_CHECK_MSG(g.NumEdges() > 0, "graph has no edges");
  const AdjacencyOperator adjacency(g);
  // Iterate on A + I: bipartite graphs have the −λ_max eigenvalue tied
  // in magnitude with λ_max, and the positive shift breaks the tie
  // without changing the Perron vector.
  const ShiftedOperator shifted(adjacency, 1.0, 1.0);
  PowerMethodOptions pm;
  pm.max_iterations = options.max_iterations;
  pm.tolerance = options.tolerance;
  // Nonnegative start: converges to the Perron vector.
  const PowerMethodResult result =
      PowerMethod(shifted, Vector(g.NumNodes(), 1.0), pm);
  Vector scores = result.eigenvector;
  // Perron vector has a sign; make it nonnegative.
  double total = Sum(scores);
  if (total < 0.0) Scale(-1.0, scores);
  for (double& v : scores) v = std::max(v, 0.0);
  total = Sum(scores);
  IMPREG_CHECK(total > 0.0);
  Scale(1.0 / total, scores);
  return scores;
}

Vector KatzCentrality(const Graph& g, double beta,
                      const CentralityOptions& options) {
  IMPREG_CHECK(beta > 0.0);
  const AdjacencyOperator adjacency(g);
  Vector x(g.NumNodes(), 0.0);
  Vector ones_plus_x(g.NumNodes(), 1.0);
  Vector next(g.NumNodes());
  bool converged = false;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    // next = β A (1 + x).
    adjacency.Apply(ones_plus_x, next);
    Scale(beta, next);
    const double delta = DistanceL1(next, x);
    x = next;
    for (std::size_t i = 0; i < x.size(); ++i) ones_plus_x[i] = 1.0 + x[i];
    if (delta <= options.tolerance * (1.0 + Norm1(x))) {
      converged = true;
      break;
    }
    // Divergence guard: β ≥ 1/λ_max makes the series blow up.
    IMPREG_CHECK_MSG(Norm1(x) < 1e12,
                     "Katz series diverges: beta >= 1/lambda_max");
  }
  IMPREG_CHECK_MSG(converged, "Katz iteration did not converge");
  const double total = Sum(x);
  IMPREG_CHECK(total > 0.0);
  Scale(1.0 / total, x);
  return x;
}

double AdjacencySpectralRadius(const Graph& g,
                               const CentralityOptions& options) {
  IMPREG_CHECK_MSG(g.NumEdges() > 0, "graph has no edges");
  const AdjacencyOperator adjacency(g);
  // Same bipartite-tie shift as EigenvectorCentrality: λ_max(A + I) − 1.
  const ShiftedOperator shifted(adjacency, 1.0, 1.0);
  PowerMethodOptions pm;
  pm.max_iterations = options.max_iterations;
  pm.tolerance = options.tolerance;
  const PowerMethodResult result =
      PowerMethod(shifted, Vector(g.NumNodes(), 1.0), pm);
  return result.eigenvalue - 1.0;
}

Vector DegreeCentrality(const Graph& g) {
  IMPREG_CHECK_MSG(g.TotalVolume() > 0.0, "graph has no edges");
  Vector scores(g.NumNodes());
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    scores[u] = g.Degree(u) / g.TotalVolume();
  }
  return scores;
}

}  // namespace impreg
