#ifndef IMPREG_RANKING_CENTRALITY_H_
#define IMPREG_RANKING_CENTRALITY_H_

#include "graph/graph.h"
#include "linalg/vector_ops.h"

/// \file
/// Spectral ranking (§3.1 of the paper; Vigna [42], PageRank [35]).
///
/// Every centrality here is an (implicitly regularized) eigenvector
/// computation, and each has a knob that interpolates between a
/// "local"/uniform ranking and the pure spectral one:
///
///   PageRank:  γ → 1 gives the seed back, γ → 0 the stationary
///              (degree) ranking — see diffusion/pagerank.h;
///   Katz:      β → 0 gives (essentially) degree, β → 1/λ_max the
///              eigenvector centrality;
///   Eigenvector centrality: the un-regularized limit of both.
///
/// The interpolation IS the regularization path — these functions exist
/// so the ranking experiments can show it quantitatively.

namespace impreg {

/// Options for the centrality solvers.
struct CentralityOptions {
  int max_iterations = 5000;
  double tolerance = 1e-12;
};

/// Eigenvector centrality: the dominant eigenvector of A, normalized to
/// unit ℓ1 norm (entries ≥ 0 on a connected graph by Perron–Frobenius).
Vector EigenvectorCentrality(const Graph& g,
                             const CentralityOptions& options = {});

/// Katz centrality x = Σ_{k≥1} β^k (A^k 1): counts walks of every
/// length, discounted by β per hop. Computed by the Richardson
/// iteration x ← β A (1 + x); requires β < 1/λ_max(A) to converge.
/// Normalized to unit ℓ1 norm.
Vector KatzCentrality(const Graph& g, double beta,
                      const CentralityOptions& options = {});

/// The spectral radius λ_max(A) (power method), for choosing Katz β.
double AdjacencySpectralRadius(const Graph& g,
                               const CentralityOptions& options = {});

/// Degree centrality d(u)/vol(G) — the γ→0 / β→0 end of the paths.
Vector DegreeCentrality(const Graph& g);

}  // namespace impreg

#endif  // IMPREG_RANKING_CENTRALITY_H_
