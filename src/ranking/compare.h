#ifndef IMPREG_RANKING_COMPARE_H_
#define IMPREG_RANKING_COMPARE_H_

#include <vector>

#include "linalg/vector_ops.h"

/// \file
/// Rank-comparison utilities for the spectral-ranking experiments:
/// Kendall correlation and top-k overlap between score vectors.

namespace impreg {

/// The rank of each item under descending score (0 = best). Ties are
/// broken by index, deterministically.
std::vector<int> RanksOf(const Vector& scores);

/// Kendall rank correlation (τ-a) of two equal-length score vectors,
/// in [−1, 1]. Ties are broken by index before counting inversions;
/// computed in O(n log n) via merge-sort inversion counting.
double KendallTau(const Vector& a, const Vector& b);

/// |top-k(a) ∩ top-k(b)| / k, for 1 ≤ k ≤ n.
double TopKOverlap(const Vector& a, const Vector& b, int k);

}  // namespace impreg

#endif  // IMPREG_RANKING_COMPARE_H_
