#include "flow/recursive_partition.h"

#include <algorithm>

#include "graph/algorithms.h"
#include "util/check.h"
#include "util/fault.h"

namespace impreg {

namespace {

// Recursively partitions `nodes` (original ids) into blocks
// [first_block, first_block + k), writing labels into `part`.
void Recurse(const Graph& g, const std::vector<NodeId>& nodes, int k,
             int first_block, const KwayOptions& options,
             std::vector<int>& part, SolverDiagnostics& diag) {
  if (k == 1 || nodes.size() <= 1) {
    for (NodeId u : nodes) part[u] = first_block;
    return;
  }
  WorkBudget* budget = options.bisection.budget;
  if (budget != nullptr) {
    IMPREG_FAULT_POINT("kway/recurse", budget);
    if (budget->Exhausted()) {
      // No budget for another bisection: label this subtree round-robin
      // so every node still gets a block in [first_block, first_block+k)
      // and the labeling stays a complete k-way partition.
      for (std::size_t i = 0; i < nodes.size(); ++i) {
        part[nodes[i]] = first_block + static_cast<int>(i % k);
      }
      diag.status = MergeStatus(diag.status, SolveStatus::kBudgetExhausted);
      return;
    }
  }
  // Split k into k_left + k_right and target the proportional share of
  // nodes on the left side.
  const int k_left = k / 2;
  const int k_right = k - k_left;
  const Subgraph sub = InducedSubgraph(g, nodes);

  MultilevelOptions bisection = options.bisection;
  bisection.target_fraction =
      static_cast<double>(k_left) / static_cast<double>(k);
  // Nudge the seed so sibling calls explore different matchings.
  bisection.seed ^= static_cast<std::uint64_t>(first_block) * 0x9e3779b9ULL +
                    nodes.size();
  const MultilevelResult result = MultilevelBisection(sub.graph, bisection);
  diag.status = MergeStatus(diag.status, result.diagnostics.status);

  std::vector<char> in_left(sub.graph.NumNodes(), 0);
  for (NodeId local : result.set) in_left[local] = 1;
  std::vector<NodeId> left, right;
  for (NodeId local = 0; local < sub.graph.NumNodes(); ++local) {
    (in_left[local] ? left : right).push_back(sub.original_of[local]);
  }
  // Each side must be able to host its share of blocks (k_left and
  // k_right nonempty blocks respectively); rebalance degenerate splits
  // by moving arbitrary nodes.
  while (static_cast<int>(left.size()) < k_left && !right.empty()) {
    left.push_back(right.back());
    right.pop_back();
  }
  while (static_cast<int>(right.size()) < k_right && !left.empty()) {
    right.push_back(left.back());
    left.pop_back();
  }
  Recurse(g, left, k_left, first_block, options, part, diag);
  Recurse(g, right, k_right, first_block + k_left, options, part, diag);
}

}  // namespace

KwayResult KwayPartition(const Graph& g, int k, const KwayOptions& options) {
  IMPREG_CHECK(k >= 1);
  IMPREG_CHECK(k <= g.NumNodes());
  KwayResult result;
  result.part.assign(g.NumNodes(), 0);
  std::vector<NodeId> all(g.NumNodes());
  for (NodeId u = 0; u < g.NumNodes(); ++u) all[u] = u;
  result.diagnostics.status = SolveStatus::kConverged;
  Recurse(g, all, k, 0, options, result.part, result.diagnostics);
  if (result.diagnostics.status == SolveStatus::kBudgetExhausted) {
    result.diagnostics.detail =
        "work budget exhausted mid-recursion; exhausted subtrees were "
        "labeled round-robin";
  }

  result.sizes.assign(k, 0);
  for (NodeId u = 0; u < g.NumNodes(); ++u) ++result.sizes[result.part[u]];
  result.cut = KwayCut(g, result.part);
  return result;
}

double KwayCut(const Graph& g, const std::vector<int>& part) {
  IMPREG_CHECK(part.size() == static_cast<std::size_t>(g.NumNodes()));
  double cut = 0.0;
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    const auto heads = g.Heads(u);
    const auto weights = g.Weights(u);
    for (std::size_t i = 0; i < heads.size(); ++i) {
      if (heads[i] > u && part[heads[i]] != part[u]) cut += weights[i];
    }
  }
  return cut;
}

}  // namespace impreg
