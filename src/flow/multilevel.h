#ifndef IMPREG_FLOW_MULTILEVEL_H_
#define IMPREG_FLOW_MULTILEVEL_H_

#include <cstdint>
#include <vector>

#include "core/solve_status.h"
#include "core/work_budget.h"
#include "graph/graph.h"
#include "partition/conductance.h"

/// \file
/// Metis-style multilevel graph bisection, built from scratch: heavy-
/// edge matching coarsening, greedy region-growing initial partitions,
/// and Fiduccia–Mattheyses-style refinement during uncoarsening.
///
/// This is the "Metis" half of Metis+MQI (§3.2, Figure 1): it produces
/// a low-cut bisection with a prescribed size split, which MQI then
/// sharpens into a low-conductance set. The size knob (`target_fraction`)
/// is how the Figure-1 harness asks the flow family for clusters of a
/// given scale.

namespace impreg {

/// Options for MultilevelBisection.
struct MultilevelOptions {
  /// Desired fraction of *nodes* on the S side, in (0, 0.5].
  double target_fraction = 0.5;
  /// Allowed relative deviation of the S-side node count from target.
  double balance_tolerance = 0.10;
  /// Coarsening stops at this many nodes.
  int coarsest_size = 48;
  /// FM passes per level.
  int refinement_passes = 6;
  /// Independent initial partitions tried on the coarsest graph.
  int initial_trials = 8;
  /// RNG seed (matching order, initial growth).
  std::uint64_t seed = 0x5eedULL;
  /// Optional cooperative budget (nullptr = unlimited), checked between
  /// coarsening levels, initial trials, and refinement passes. On
  /// exhaustion the remaining refinement is skipped but the projection
  /// to the finest level always completes, so the bisection stays valid
  /// (just less polished) and is tagged kBudgetExhausted.
  WorkBudget* budget = nullptr;
};

/// Result of a multilevel bisection.
struct MultilevelResult {
  /// The S side (≈ target_fraction · n nodes).
  std::vector<NodeId> set;
  CutStats stats;
  /// Coarsening levels used.
  int levels = 0;
  /// Total edge weight crossing the bisection.
  double cut = 0.0;
  /// kConverged, or kBudgetExhausted when refinement was cut short.
  SolverDiagnostics diagnostics;
};

/// Computes a bisection of a connected graph with ≥ 2 nodes.
MultilevelResult MultilevelBisection(const Graph& g,
                                     const MultilevelOptions& options = {});

}  // namespace impreg

#endif  // IMPREG_FLOW_MULTILEVEL_H_
