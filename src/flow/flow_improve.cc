#include "flow/flow_improve.h"

#include <algorithm>

#include "core/metrics.h"
#include "core/trace.h"
#include "flow/maxflow.h"
#include "util/check.h"

namespace impreg {

FlowImproveResult FlowImprove(const Graph& g,
                              const std::vector<NodeId>& ref_in,
                              int max_rounds, WorkBudget* budget) {
  IMPREG_CHECK(!ref_in.empty());
  IMPREG_CHECK(static_cast<NodeId>(ref_in.size()) < g.NumNodes());
  IMPREG_CHECK(max_rounds >= 1);

  std::vector<NodeId> ref = ref_in;
  CutStats ref_stats = ComputeCutStats(g, ref);
  if (ref_stats.volume > ref_stats.complement_volume) {
    ref = ComplementSet(g, ref);
    ref_stats = ComputeCutStats(g, ref);
  }
  IMPREG_CHECK_MSG(ref_stats.volume > 0.0, "reference set has zero volume");
  const double f = ref_stats.volume / ref_stats.complement_volume;

  std::vector<char> in_ref = NodesToMask(g, ref);

  FlowImproveResult result;
  result.set = ref;
  result.stats = ref_stats;
  result.quotient = ref_stats.conductance;  // Q(R) = φ(R).

  SolverTrace* trace = IMPREG_TRACE_BEGIN("flow_improve");
  double alpha = result.quotient;
  if (alpha <= 0.0) {
    result.diagnostics.status = SolveStatus::kConverged;
    IMPREG_TRACE_FINISH(trace, result.diagnostics);
    return result;  // Already a perfect cut.
  }
  IMPREG_TRACE_EVENT(trace, 0, kConductance, alpha);

  const NodeId n = g.NumNodes();
  for (int round = 1; round <= max_rounds; ++round) {
    if (budget != nullptr && budget->Exhausted()) {
      result.diagnostics.status = SolveStatus::kBudgetExhausted;
      result.diagnostics.detail =
          "work budget exhausted between FlowImprove rounds; set from "
          "the completed rounds returned";
      IMPREG_TRACE_EVENT(trace, round, kBudget,
                         static_cast<double>(budget->Spent()));
      break;
    }
    result.rounds = round;
    const int source = n;
    const int sink = n + 1;
    FlowNetwork network(n + 2);
    for (NodeId u = 0; u < n; ++u) {
      const auto heads = g.Heads(u);
      const auto weights = g.Weights(u);
      for (std::size_t i = 0; i < heads.size(); ++i) {
        if (heads[i] > u) {
          network.AddEdge(u, heads[i], weights[i], weights[i]);
        }
      }
      if (in_ref[u]) {
        network.AddEdge(source, u, alpha * g.Degree(u));
      } else {
        network.AddEdge(u, sink, alpha * f * g.Degree(u));
      }
    }
    const double flow = network.MaxFlow(source, sink, budget);
    if (!network.Diagnostics().ok()) {
      result.diagnostics.status = network.Diagnostics().status;
      result.diagnostics.detail = "inner max-flow stopped early (" +
                                  network.Diagnostics().Summary() +
                                  "); set from the completed rounds "
                                  "returned";
      break;
    }
    if (flow >= alpha * ref_stats.volume * (1.0 - 1e-9)) {
      result.diagnostics.status = SolveStatus::kConverged;
      break;  // No S with Q(S) < α exists.
    }
    const std::vector<char> side = network.MinCutSourceSide();
    std::vector<NodeId> candidate;
    double vol_in_ref = 0.0;
    double vol_out_ref = 0.0;
    for (NodeId u = 0; u < n; ++u) {
      if (side[u]) {
        candidate.push_back(u);
        if (in_ref[u]) {
          vol_in_ref += g.Degree(u);
        } else {
          vol_out_ref += g.Degree(u);
        }
      }
    }
    if (candidate.empty() ||
        static_cast<NodeId>(candidate.size()) >= n) {
      result.diagnostics.status = SolveStatus::kConverged;
      break;
    }
    const CutStats stats = ComputeCutStats(g, candidate);
    const double denom = vol_in_ref - f * vol_out_ref;
    if (denom <= 0.0) {
      result.diagnostics.status = SolveStatus::kConverged;
      break;  // Numerically degenerate.
    }
    const double quotient = stats.cut / denom;
    if (quotient >= alpha * (1.0 - 1e-12)) {
      result.diagnostics.status = SolveStatus::kConverged;
      break;  // No real progress.
    }
    alpha = quotient;
    result.set = std::move(candidate);
    result.stats = stats;
    result.quotient = quotient;
    IMPREG_TRACE_EVENT(trace, round, kConductance, quotient);
  }
  result.diagnostics.iterations = result.rounds;
  IMPREG_TRACE_FINISH(trace, result.diagnostics);
  IMPREG_METRIC_COUNT("solver.flow_improve.solves", 1);
  IMPREG_METRIC_COUNT("solver.flow_improve.rounds", result.rounds);
  std::sort(result.set.begin(), result.set.end());
  return result;
}

}  // namespace impreg
