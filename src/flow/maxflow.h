#ifndef IMPREG_FLOW_MAXFLOW_H_
#define IMPREG_FLOW_MAXFLOW_H_

#include <vector>

#include "core/solve_status.h"
#include "core/work_budget.h"

/// \file
/// Max-flow / min-cut on directed networks with real capacities
/// (Dinic's algorithm). This is the flow primitive under the paper's
/// flow-based partitioning family (§3.2): MQI and FlowImprove both
/// reduce conductance improvement to a sequence of s–t max-flows.

namespace impreg {

/// A directed flow network with real capacities.
///
/// Usage: AddEdge all arcs, call MaxFlow(s, t), then (optionally)
/// MinCutSourceSide(). Reset() restores the original capacities so the
/// same topology can be re-solved.
class FlowNetwork {
 public:
  /// Creates a network on `num_nodes` nodes (0-based ids).
  explicit FlowNetwork(int num_nodes);

  FlowNetwork(const FlowNetwork&) = default;
  FlowNetwork& operator=(const FlowNetwork&) = default;

  int NumNodes() const { return static_cast<int>(adjacency_.size()); }

  /// Adds a directed arc `from → to` with the given capacity plus the
  /// paired reverse arc with `reverse_capacity` (0 for a one-way arc;
  /// equal values model an undirected edge). Capacities must be ≥ 0.
  void AddEdge(int from, int to, double capacity,
               double reverse_capacity = 0.0);

  /// Computes the maximum s–t flow value (Dinic). Residual capacities
  /// below 1e-12 are treated as saturated, which keeps the algorithm
  /// robust with floating-point capacities. An optional cooperative
  /// budget is checked between Dinic phases; on exhaustion the flow
  /// found so far (a valid feasible flow, but maybe not maximum) is
  /// returned and Diagnostics() reports kBudgetExhausted.
  double MaxFlow(int source, int sink, WorkBudget* budget = nullptr);

  /// How the last MaxFlow() call ended: kConverged (exact max flow),
  /// kBudgetExhausted (feasible flow, stopped early), or kNonFinite
  /// (an augmentation went non-finite and was discarded).
  const SolverDiagnostics& Diagnostics() const { return diagnostics_; }

  /// After MaxFlow: mask of nodes reachable from the source in the
  /// residual network — the source side of a minimum cut.
  std::vector<char> MinCutSourceSide() const;

  /// Restores all capacities to their construction-time values.
  void Reset();

 private:
  struct Edge {
    int to;
    double cap;
    double original_cap;
  };

  bool BuildLevels(int source, int sink, WorkBudget* budget);
  double PushBlocking(int u, int sink, double limit);

  std::vector<Edge> edges_;  // Edge 2k and 2k+1 are mutual reverses.
  std::vector<std::vector<int>> adjacency_;  // Outgoing edge ids.
  std::vector<int> level_;
  std::vector<std::size_t> iter_;
  int last_source_ = -1;
  SolverDiagnostics diagnostics_;
};

}  // namespace impreg

#endif  // IMPREG_FLOW_MAXFLOW_H_
