#ifndef IMPREG_FLOW_MQI_H_
#define IMPREG_FLOW_MQI_H_

#include <vector>

#include "core/solve_status.h"
#include "core/work_budget.h"
#include "graph/graph.h"
#include "partition/conductance.h"

/// \file
/// Max-flow Quotient-cut Improvement (Lang–Rao) — the "MQI" half of the
/// paper's flow-based baseline Metis+MQI (§3.2, Figure 1).
///
/// Given a set A with vol(A) ≤ vol(G)/2, MQI either certifies that no
/// strict subset of A has smaller conductance, or finds one, by a
/// max-flow construction: with c = cut(A), v = vol(A), build a network
/// on A ∪ {s, t} where
///
///   s → u   capacity c·d(u)         for every u ∈ A,
///   u → t   capacity v·b(u)         b(u) = weight from u to Ā,
///   u ↔ w   capacity v·w(u,w)       for edges inside A,
///
/// whose min cut is < c·v iff some A' ⊂ A has cut(A')/vol(A') < c/v.
/// Iterating until the flow saturates yields a locally optimal set: the
/// conductance never increases and typically drops sharply. MQI is the
/// purest "chase the objective" method — which is exactly why its
/// output is *less* regularized than spectral's (Figure 1(b,c)).

namespace impreg {

/// Result of running MQI to a fixpoint.
struct MqiResult {
  /// The improved set (⊆ the input set, never empty).
  std::vector<NodeId> set;
  CutStats stats;
  /// Number of max-flow rounds executed.
  int rounds = 0;
  /// True if the final round certified local optimality.
  bool certified_optimal = false;
  /// kConverged: reached a fixpoint (or certified optimality).
  /// kMaxIterations: stopped at max_rounds. kBudgetExhausted /
  /// kNonFinite: an inner max-flow stopped early — the set returned is
  /// the best one from the completed rounds (never worse than the
  /// input, by the MQI invariant).
  SolverDiagnostics diagnostics;
};

/// Improves `set` (must be nonempty, with vol ≤ vol(G)/2; if its volume
/// is larger, the complement is improved instead and returned). At most
/// `max_rounds` flow computations. An optional budget is shared across
/// the rounds (checked between rounds and inside each max-flow).
MqiResult Mqi(const Graph& g, const std::vector<NodeId>& set,
              int max_rounds = 64, WorkBudget* budget = nullptr);

}  // namespace impreg

#endif  // IMPREG_FLOW_MQI_H_
