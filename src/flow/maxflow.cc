#include "flow/maxflow.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "core/metrics.h"
#include "core/trace.h"
#include "util/check.h"
#include "util/fault.h"

namespace impreg {

namespace {
constexpr double kEps = 1e-12;
}  // namespace

FlowNetwork::FlowNetwork(int num_nodes) {
  IMPREG_CHECK(num_nodes >= 0);
  adjacency_.resize(num_nodes);
}

void FlowNetwork::AddEdge(int from, int to, double capacity,
                          double reverse_capacity) {
  IMPREG_CHECK(from >= 0 && from < NumNodes());
  IMPREG_CHECK(to >= 0 && to < NumNodes());
  IMPREG_CHECK_MSG(std::isfinite(capacity) && capacity >= 0.0 &&
                       std::isfinite(reverse_capacity) &&
                       reverse_capacity >= 0.0,
                   "capacities must be finite and nonnegative");
  adjacency_[from].push_back(static_cast<int>(edges_.size()));
  edges_.push_back({to, capacity, capacity});
  adjacency_[to].push_back(static_cast<int>(edges_.size()));
  edges_.push_back({from, reverse_capacity, reverse_capacity});
}

bool FlowNetwork::BuildLevels(int source, int sink, WorkBudget* budget) {
  level_.assign(NumNodes(), -1);
  std::queue<int> frontier;
  level_[source] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    const int u = frontier.front();
    frontier.pop();
    if (budget != nullptr) {
      budget->Charge(static_cast<std::int64_t>(adjacency_[u].size()));
    }
    for (int id : adjacency_[u]) {
      const Edge& e = edges_[id];
      if (e.cap > kEps && level_[e.to] < 0) {
        level_[e.to] = level_[u] + 1;
        frontier.push(e.to);
      }
    }
  }
  return level_[sink] >= 0;
}

double FlowNetwork::PushBlocking(int u, int sink, double limit) {
  if (u == sink) return limit;
  for (std::size_t& i = iter_[u]; i < adjacency_[u].size(); ++i) {
    const int id = adjacency_[u][i];
    Edge& e = edges_[id];
    if (e.cap > kEps && level_[e.to] == level_[u] + 1) {
      const double pushed =
          PushBlocking(e.to, sink, std::min(limit, e.cap));
      if (pushed > kEps) {
        e.cap -= pushed;
        edges_[id ^ 1].cap += pushed;
        return pushed;
      }
    }
  }
  return 0.0;
}

double FlowNetwork::MaxFlow(int source, int sink, WorkBudget* budget) {
  IMPREG_CHECK(source >= 0 && source < NumNodes());
  IMPREG_CHECK(sink >= 0 && sink < NumNodes());
  IMPREG_CHECK(source != sink);
  last_source_ = source;
  diagnostics_ = SolverDiagnostics{};
  SolverTrace* trace = IMPREG_TRACE_BEGIN("maxflow");
  double total = 0.0;
  int phases = 0;
  bool budget_stop = false;
  bool poisoned = false;
  while (true) {
    // Cooperative stop at the phase boundary: the flow so far is always
    // a valid feasible flow, so this degrades, never corrupts.
    if (budget != nullptr) {
      IMPREG_FAULT_POINT("maxflow/phase", budget);
      if (budget->Exhausted()) {
        budget_stop = true;
        IMPREG_TRACE_EVENT(trace, phases, kBudget,
                           static_cast<double>(budget->Spent()));
        break;
      }
    }
    if (!BuildLevels(source, sink, budget)) break;
    ++phases;
    iter_.assign(NumNodes(), 0);
    while (true) {
      double pushed =
          PushBlocking(source, sink, std::numeric_limits<double>::max());
      IMPREG_FAULT_POINT("maxflow/pushed", pushed);
      if (!std::isfinite(pushed)) {
        // A non-finite augmentation would poison the total; discard it
        // and stop. Residual capacities along the path were already
        // updated by PushBlocking only when pushed was returned finite
        // from the recursion, so `total` stays a valid lower bound.
        poisoned = true;
        IMPREG_TRACE_EVENT(trace, phases, kFault, pushed);
        break;
      }
      if (pushed <= kEps) break;
      total += pushed;
    }
    // One phase event per Dinic phase; value = flow accumulated so far.
    IMPREG_TRACE_EVENT(trace, phases, kPhase, total);
    if (poisoned) break;
  }
  diagnostics_.iterations = phases;
  diagnostics_.final_residual = 0.0;
  if (poisoned) {
    diagnostics_.status = SolveStatus::kNonFinite;
    diagnostics_.detail =
        "an augmentation went non-finite; returning the feasible flow "
        "found before it";
  } else if (budget_stop) {
    diagnostics_.status = SolveStatus::kBudgetExhausted;
    diagnostics_.detail =
        "work budget exhausted between phases; flow is feasible but may "
        "not be maximum";
  } else {
    diagnostics_.status = SolveStatus::kConverged;
  }
  IMPREG_TRACE_FINISH(trace, diagnostics_);
  IMPREG_METRIC_COUNT("solver.maxflow.solves", 1);
  IMPREG_METRIC_COUNT("solver.maxflow.phases", phases);
  return total;
}

std::vector<char> FlowNetwork::MinCutSourceSide() const {
  IMPREG_CHECK_MSG(last_source_ >= 0, "call MaxFlow first");
  std::vector<char> side(NumNodes(), 0);
  std::queue<int> frontier;
  side[last_source_] = 1;
  frontier.push(last_source_);
  while (!frontier.empty()) {
    const int u = frontier.front();
    frontier.pop();
    for (int id : adjacency_[u]) {
      const Edge& e = edges_[id];
      if (e.cap > kEps && !side[e.to]) {
        side[e.to] = 1;
        frontier.push(e.to);
      }
    }
  }
  return side;
}

void FlowNetwork::Reset() {
  for (Edge& e : edges_) e.cap = e.original_cap;
  last_source_ = -1;
}

}  // namespace impreg
