#include "flow/mqi.h"

#include <algorithm>

#include "core/metrics.h"
#include "core/trace.h"
#include "flow/maxflow.h"
#include "util/check.h"

namespace impreg {

MqiResult Mqi(const Graph& g, const std::vector<NodeId>& input_set,
              int max_rounds, WorkBudget* budget) {
  IMPREG_CHECK(!input_set.empty());
  IMPREG_CHECK(max_rounds >= 1);

  std::vector<NodeId> current = input_set;
  CutStats stats = ComputeCutStats(g, current);
  // Work on the smaller-volume side.
  if (stats.volume > stats.complement_volume) {
    current = ComplementSet(g, current);
    stats = ComputeCutStats(g, current);
  }

  MqiResult result;
  result.set = current;
  result.stats = stats;
  SolverTrace* trace = IMPREG_TRACE_BEGIN("mqi");
  IMPREG_TRACE_EVENT(trace, 0, kConductance, stats.conductance);

  for (int round = 1; round <= max_rounds; ++round) {
    if (budget != nullptr && budget->Exhausted()) {
      result.diagnostics.status = SolveStatus::kBudgetExhausted;
      result.diagnostics.detail =
          "work budget exhausted between MQI rounds; set from the "
          "completed rounds returned";
      IMPREG_TRACE_EVENT(trace, round, kBudget,
                         static_cast<double>(budget->Spent()));
      break;
    }
    const double c = stats.cut;
    const double v = stats.volume;
    if (c <= 0.0 || v <= 0.0) {
      // Disconnected set: conductance is already 0, nothing to improve.
      result.certified_optimal = true;
      result.diagnostics.status = SolveStatus::kConverged;
      break;
    }
    result.rounds = round;

    // Local ids for the set.
    const NodeId n = g.NumNodes();
    std::vector<int> local(n, -1);
    for (std::size_t i = 0; i < current.size(); ++i) {
      local[current[i]] = static_cast<int>(i);
    }
    const int size = static_cast<int>(current.size());
    const int source = size;
    const int sink = size + 1;
    FlowNetwork network(size + 2);
    for (int i = 0; i < size; ++i) {
      const NodeId u = current[i];
      double boundary = 0.0;
      const auto heads = g.Heads(u);
      const auto weights = g.Weights(u);
      for (std::size_t a = 0; a < heads.size(); ++a) {
        if (heads[a] == u) continue;  // Self-loops never cross.
        const int j = local[heads[a]];
        if (j < 0) {
          boundary += weights[a];
        } else if (u < heads[a]) {
          // Internal edge, once per pair, both directions.
          network.AddEdge(i, j, v * weights[a], v * weights[a]);
        }
      }
      network.AddEdge(source, i, c * g.Degree(u));
      if (boundary > 0.0) network.AddEdge(i, sink, v * boundary);
    }

    const double flow = network.MaxFlow(source, sink, budget);
    if (!network.Diagnostics().ok()) {
      // The flow is feasible but may not be maximum, so neither the
      // saturation test nor the residual cut is trustworthy. Keep the
      // set from the completed rounds (never worse than the input).
      result.diagnostics.status = network.Diagnostics().status;
      result.diagnostics.detail = "inner max-flow stopped early (" +
                                  network.Diagnostics().Summary() +
                                  "); set from the completed rounds "
                                  "returned";
      break;
    }
    if (flow >= c * v * (1.0 - 1e-9)) {
      // Saturated: no subset improves the quotient.
      result.certified_optimal = true;
      result.diagnostics.status = SolveStatus::kConverged;
      break;
    }
    const std::vector<char> side = network.MinCutSourceSide();
    std::vector<NodeId> improved;
    for (int i = 0; i < size; ++i) {
      if (side[i]) improved.push_back(current[i]);
    }
    if (improved.empty() || improved.size() == current.size()) {
      // Degenerate cut (numerical); stop with what we have.
      result.diagnostics.status = SolveStatus::kConverged;
      break;
    }
    current = std::move(improved);
    stats = ComputeCutStats(g, current);
    IMPREG_CHECK_MSG(stats.conductance <= result.stats.conductance + 1e-9,
                     "MQI must never worsen conductance");
    result.set = current;
    result.stats = stats;
    IMPREG_TRACE_EVENT(trace, round, kConductance, stats.conductance);
  }
  result.diagnostics.iterations = result.rounds;
  IMPREG_TRACE_FINISH(trace, result.diagnostics);
  IMPREG_METRIC_COUNT("solver.mqi.solves", 1);
  IMPREG_METRIC_COUNT("solver.mqi.rounds", result.rounds);
  std::sort(result.set.begin(), result.set.end());
  return result;
}

}  // namespace impreg
