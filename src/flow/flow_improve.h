#ifndef IMPREG_FLOW_FLOW_IMPROVE_H_
#define IMPREG_FLOW_FLOW_IMPROVE_H_

#include <vector>

#include "core/solve_status.h"
#include "core/work_budget.h"
#include "graph/graph.h"
#include "partition/conductance.h"

/// \file
/// FlowImprove (Andersen–Lang, SODA'08 [3]): flow-based improvement that
/// — unlike MQI — may move nodes *into* the set as well as out of it.
///
/// Given a reference set R with vol(R) ≤ vol(G)/2, define for any S
///
///   Q(S) = cut(S) / (vol(S∩R) − f·vol(S∖R)),   f = vol(R)/vol(R̄),
///
/// (Q(R) = φ(R)). Each round solves a max-flow whose min cut finds S
/// with Q(S) < α if one exists (α = current quotient): s → u with
/// capacity α·d(u) for u ∈ R, u → t with capacity α·f·d(u) for u ∉ R,
/// internal edges at their weight. Iterating to a fixpoint gives a set
/// whose conductance is ≤ φ(R) and that overlaps R — the locally-biased
/// flow method the paper cites as the counterpart of locally-biased
/// spectral methods (§3.3, footnote 26).

namespace impreg {

/// Result of FlowImprove.
struct FlowImproveResult {
  std::vector<NodeId> set;
  CutStats stats;
  int rounds = 0;
  /// Final quotient value Q(S).
  double quotient = 0.0;
  /// kConverged: reached a fixpoint. kMaxIterations: stopped at
  /// max_rounds. kBudgetExhausted / kNonFinite: an inner max-flow
  /// stopped early — the set from the completed rounds is returned.
  SolverDiagnostics diagnostics;
};

/// Improves the reference set. Requires a nonempty proper subset of the
/// nodes; if vol(R) exceeds half, the complement is used as reference.
/// An optional budget is shared across the rounds.
FlowImproveResult FlowImprove(const Graph& g, const std::vector<NodeId>& ref,
                              int max_rounds = 32,
                              WorkBudget* budget = nullptr);

}  // namespace impreg

#endif  // IMPREG_FLOW_FLOW_IMPROVE_H_
