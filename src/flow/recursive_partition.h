#ifndef IMPREG_FLOW_RECURSIVE_PARTITION_H_
#define IMPREG_FLOW_RECURSIVE_PARTITION_H_

#include <vector>

#include "flow/multilevel.h"
#include "graph/graph.h"

/// \file
/// k-way partitioning by recursive multilevel bisection — the classic
/// scientific-computing use of graph partitioning the paper's §3.2
/// opens with (load balancing in parallel computing). Also the standard
/// divide-and-conquer primitive of the TCS perspective.

namespace impreg {

/// Options for the k-way partitioner.
struct KwayOptions {
  /// Forwarded to each bisection.
  MultilevelOptions bisection;
};

/// Result of a k-way partition.
struct KwayResult {
  /// part[u] ∈ [0, k): the block of node u.
  std::vector<int> part;
  /// Block sizes (node counts), length k.
  std::vector<std::int64_t> sizes;
  /// Total weight of edges crossing between different blocks.
  double cut = 0.0;
  /// kConverged, or kBudgetExhausted when the shared budget (set via
  /// options.bisection.budget) ran out: subtrees reached after
  /// exhaustion fall back to a deterministic round-robin block
  /// assignment, so `part` is always a complete k-way labeling.
  SolverDiagnostics diagnostics;
};

/// Partitions the graph into k ≥ 1 blocks of (approximately) equal node
/// counts via recursive bisection with proportional size targets (so
/// non-power-of-two k works). Requires k ≤ n.
KwayResult KwayPartition(const Graph& g, int k,
                         const KwayOptions& options = {});

/// The edge cut of an arbitrary assignment (blocks need not be
/// contiguous ids).
double KwayCut(const Graph& g, const std::vector<int>& part);

}  // namespace impreg

#endif  // IMPREG_FLOW_RECURSIVE_PARTITION_H_
