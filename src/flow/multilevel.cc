#include "flow/multilevel.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "core/metrics.h"
#include "core/trace.h"
#include "util/check.h"
#include "util/fault.h"
#include "util/rng.h"

namespace impreg {

namespace {

// One level of the multilevel hierarchy.
struct Level {
  Graph graph;
  std::vector<std::int64_t> node_weight;  // Original node counts.
  std::vector<NodeId> coarse_of;          // Finer node → coarse node.
};

// Heavy-edge matching contraction. Returns false if it made no
// progress (graph cannot shrink further). Pairs whose combined weight
// would exceed `max_weight` are not matched — without this cap the
// power-law cores of social graphs collapse into one giant supernode,
// which destroys the granularity the initial partition needs.
bool Coarsen(const Graph& fine, const std::vector<std::int64_t>& fine_weight,
             std::int64_t max_weight, Rng& rng, Level& out) {
  const NodeId n = fine.NumNodes();
  std::vector<NodeId> match(n, -1);
  const std::vector<int> order = rng.Permutation(n);
  NodeId coarse_count = 0;
  std::vector<NodeId> coarse_id(n, -1);
  for (int idx : order) {
    const NodeId u = static_cast<NodeId>(idx);
    if (match[u] >= 0) continue;
    // Match with the unmatched neighbor of maximal edge weight whose
    // merged weight stays under the cap.
    NodeId best = -1;
    double best_weight = -1.0;
    const auto heads = fine.Heads(u);
    const auto weights = fine.Weights(u);
    for (std::size_t i = 0; i < heads.size(); ++i) {
      const NodeId v = heads[i];
      if (v != u && match[v] < 0 && weights[i] > best_weight &&
          fine_weight[u] + fine_weight[v] <= max_weight) {
        best = v;
        best_weight = weights[i];
      }
    }
    if (best >= 0) {
      match[u] = best;
      match[best] = u;
      coarse_id[u] = coarse_id[best] = coarse_count++;
    } else {
      match[u] = u;
      coarse_id[u] = coarse_count++;
    }
  }
  if (coarse_count >= n) return false;

  GraphBuilder builder(coarse_count);
  out.node_weight.assign(coarse_count, 0);
  for (NodeId u = 0; u < n; ++u) {
    out.node_weight[coarse_id[u]] += fine_weight[u];
    const auto heads = fine.Heads(u);
    const auto weights = fine.Weights(u);
    for (std::size_t i = 0; i < heads.size(); ++i) {
      // Keep each fine edge once; drop edges internal to a merged pair.
      const NodeId v = heads[i];
      if (v <= u) continue;
      if (coarse_id[v] == coarse_id[u]) continue;
      builder.AddEdge(coarse_id[u], coarse_id[v], weights[i]);
    }
  }
  out.graph = builder.Build();
  out.coarse_of = std::move(coarse_id);
  return true;
}

double CutOfSides(const Graph& g, const std::vector<char>& side) {
  double cut = 0.0;
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    const auto heads = g.Heads(u);
    const auto weights = g.Weights(u);
    for (std::size_t i = 0; i < heads.size(); ++i) {
      if (heads[i] > u && side[heads[i]] != side[u]) cut += weights[i];
    }
  }
  return cut;
}

// Greedy region growing: BFS-like growth that always absorbs the
// frontier node with the best cut-delta until the target weight is hit.
std::vector<char> GrowInitial(const Graph& g,
                              const std::vector<std::int64_t>& weight,
                              std::int64_t target, Rng& rng) {
  const NodeId n = g.NumNodes();
  std::vector<char> side(n, 0);
  const NodeId start = static_cast<NodeId>(rng.NextBounded(n));
  // Priority queue on gain = (weight to S) − (weight to S̄); larger is
  // better (absorbing it removes more cut than it adds).
  std::priority_queue<std::pair<double, NodeId>> frontier;
  std::vector<char> seen(n, 0);
  side[start] = 1;
  seen[start] = 1;
  std::int64_t grown = weight[start];
  {
    const auto heads = g.Heads(start);
    const auto weights = g.Weights(start);
    for (std::size_t i = 0; i < heads.size(); ++i) {
      if (heads[i] != start && !seen[heads[i]]) {
        seen[heads[i]] = 1;
        frontier.push({weights[i], heads[i]});
      }
    }
  }
  while (grown < target && !frontier.empty()) {
    const auto [stale_gain, u] = frontier.top();
    frontier.pop();
    if (side[u]) continue;
    // Recompute the gain lazily; push back if stale and worse.
    double to_s = 0.0, to_rest = 0.0;
    const auto heads = g.Heads(u);
    const auto weights = g.Weights(u);
    for (std::size_t i = 0; i < heads.size(); ++i) {
      if (heads[i] == u) continue;
      (side[heads[i]] ? to_s : to_rest) += weights[i];
    }
    const double gain = to_s - to_rest;
    if (gain < stale_gain - 1e-12 && !frontier.empty()) {
      frontier.push({gain, u});
      continue;
    }
    side[u] = 1;
    grown += weight[u];
    for (std::size_t i = 0; i < heads.size(); ++i) {
      if (heads[i] != u && !side[heads[i]]) {
        frontier.push({weights[i], heads[i]});  // Lazy: recomputed above.
      }
    }
  }
  return side;
}

// One FM-style refinement pass: greedy single-node moves with exact
// gain recomputation, respecting the node-count balance window.
void RefinePass(const Graph& g, const std::vector<std::int64_t>& weight,
                std::int64_t target, std::int64_t tolerance,
                std::vector<char>& side) {
  const NodeId n = g.NumNodes();
  std::int64_t side_weight = 0;
  for (NodeId u = 0; u < n; ++u) {
    if (side[u]) side_weight += weight[u];
  }
  // Gains: moving u across reduces the cut by (external − internal).
  auto gain_of = [&](NodeId u) {
    double external = 0.0, internal = 0.0;
    const auto heads = g.Heads(u);
    const auto weights = g.Weights(u);
    for (std::size_t i = 0; i < heads.size(); ++i) {
      if (heads[i] == u) continue;
      (side[heads[i]] == side[u] ? internal : external) += weights[i];
    }
    return external - internal;
  };
  std::priority_queue<std::pair<double, NodeId>> moves;
  for (NodeId u = 0; u < n; ++u) moves.push({gain_of(u), u});
  std::vector<char> moved(n, 0);
  while (!moves.empty()) {
    const auto [stale_gain, u] = moves.top();
    moves.pop();
    if (moved[u]) continue;
    const double gain = gain_of(u);
    if (gain < stale_gain - 1e-12) {
      moves.push({gain, u});
      continue;
    }
    if (gain <= 0.0) break;  // No further strictly-improving move.
    // Balance check: a move is allowed if it lands inside the balance
    // window, or strictly improves the distance to the target while
    // still outside it. In particular a move can never *exit* the
    // window.
    const std::int64_t new_weight =
        side[u] ? side_weight - weight[u] : side_weight + weight[u];
    const std::int64_t new_dist = std::llabs(new_weight - target);
    const std::int64_t old_dist = std::llabs(side_weight - target);
    if (new_dist > tolerance &&
        (old_dist <= tolerance || new_dist >= old_dist)) {
      continue;
    }
    side[u] = side[u] ? 0 : 1;
    side_weight = new_weight;
    moved[u] = 1;
    for (const NodeId v : g.Heads(u)) {
      if (v != u && !moved[v]) {
        moves.push({gain_of(v), v});
      }
    }
  }
}

}  // namespace

MultilevelResult MultilevelBisection(const Graph& g,
                                     const MultilevelOptions& options) {
  IMPREG_CHECK(g.NumNodes() >= 2);
  IMPREG_CHECK(options.target_fraction > 0.0 &&
               options.target_fraction <= 0.5);
  IMPREG_CHECK(options.balance_tolerance >= 0.0);
  Rng rng(options.seed);
  SolverTrace* trace = IMPREG_TRACE_BEGIN("multilevel");

  // Cooperative budget: each lambda call is one chunk-boundary check.
  // After the first true, stays true (the WorkBudget itself is sticky).
  bool budget_stop = false;
  auto out_of_budget = [&]() {
    if (options.budget == nullptr) return false;
    IMPREG_FAULT_POINT("multilevel/budget", options.budget);
    if (options.budget->Exhausted()) budget_stop = true;
    return budget_stop;
  };

  // Build the hierarchy.
  std::vector<Level> levels;
  {
    Level base;
    base.graph = g;
    base.node_weight.assign(g.NumNodes(), 1);
    levels.push_back(std::move(base));
  }
  const std::int64_t total_weight_for_cap = g.NumNodes();
  const std::int64_t max_supernode_weight = std::max<std::int64_t>(
      1, std::min(total_weight_for_cap / (2 * options.coarsest_size) + 1,
                  static_cast<std::int64_t>(std::llround(
                      0.5 * options.target_fraction *
                      static_cast<double>(total_weight_for_cap))) +
                      1));
  while (levels.back().graph.NumNodes() > options.coarsest_size) {
    // Stopping coarsening early keeps everything below correct — the
    // initial partition just runs on a larger "coarsest" graph.
    if (out_of_budget()) break;
    if (options.budget != nullptr) {
      options.budget->Charge(levels.back().graph.NumArcs());
    }
    IMPREG_TRACE_EVENT(trace, static_cast<int>(levels.size()), kArcWork,
                       static_cast<double>(levels.back().graph.NumArcs()));
    Level next;
    if (!Coarsen(levels.back().graph, levels.back().node_weight,
                 max_supernode_weight, rng, next)) {
      break;
    }
    // Require ≥ 5% shrinkage to continue (heavy parallel-edge graphs
    // can stall).
    if (next.graph.NumNodes() >
        levels.back().graph.NumNodes() * 0.95) {
      break;
    }
    levels.push_back(std::move(next));
    // One phase event per coarsening level; value = coarse node count.
    IMPREG_TRACE_EVENT(trace, static_cast<int>(levels.size()), kPhase,
                       static_cast<double>(levels.back().graph.NumNodes()));
  }

  const std::int64_t total_weight = g.NumNodes();
  const std::int64_t target = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(
             std::llround(options.target_fraction * total_weight)));
  const std::int64_t tolerance = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(
             std::llround(options.balance_tolerance * target)));

  // Initial partition on the coarsest level: best of several growths.
  // Selection is balance-first: candidates inside the balance window
  // compete on cut; a candidate outside the window (e.g. a degenerate
  // low-cut sliver) only wins if nothing balanced exists.
  const Level& coarsest = levels.back();
  std::vector<char> side;
  auto score = [&](const std::vector<char>& candidate, double cut) {
    std::int64_t weight = 0;
    for (NodeId u = 0; u < coarsest.graph.NumNodes(); ++u) {
      if (candidate[u]) weight += coarsest.node_weight[u];
    }
    const std::int64_t distance = std::llabs(weight - target);
    return distance <= tolerance
               ? std::pair<double, double>(0.0, cut)
               : std::pair<double, double>(1.0,
                                           static_cast<double>(distance));
  };
  std::pair<double, double> best_score = {2.0, 0.0};
  for (int trial = 0; trial < std::max(1, options.initial_trials); ++trial) {
    // Trial 0 always runs so `side` is populated even on an exhausted
    // budget; further trials are optional polish.
    if (trial > 0 && out_of_budget()) break;
    if (options.budget != nullptr) {
      options.budget->Charge(
          coarsest.graph.NumArcs() *
          static_cast<std::int64_t>(1 + options.refinement_passes));
    }
    std::vector<char> candidate =
        GrowInitial(coarsest.graph, coarsest.node_weight, target, rng);
    for (int pass = 0; pass < options.refinement_passes; ++pass) {
      RefinePass(coarsest.graph, coarsest.node_weight, target, tolerance,
                 candidate);
    }
    const double cut = CutOfSides(coarsest.graph, candidate);
    const std::pair<double, double> candidate_score = score(candidate, cut);
    if (candidate_score < best_score) {
      best_score = candidate_score;
      side = std::move(candidate);
    }
  }

  // Uncoarsen with refinement at every level.
  for (int level = static_cast<int>(levels.size()) - 1; level > 0; --level) {
    const Level& coarse = levels[level];
    const Level& fine = levels[level - 1];
    std::vector<char> fine_side(fine.graph.NumNodes(), 0);
    for (NodeId u = 0; u < fine.graph.NumNodes(); ++u) {
      fine_side[u] = side[coarse.coarse_of[u]];
    }
    side = std::move(fine_side);
    // The projection above always completes — skipping refinement only
    // costs quality, never validity.
    for (int pass = 0; pass < options.refinement_passes; ++pass) {
      if (out_of_budget()) break;
      if (options.budget != nullptr) {
        options.budget->Charge(fine.graph.NumArcs());
      }
      RefinePass(fine.graph, fine.node_weight, target, tolerance, side);
    }
  }

  MultilevelResult result;
  result.levels = static_cast<int>(levels.size());
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    if (side[u]) result.set.push_back(u);
  }
  // Guard against degenerate empty/full sides (can happen on tiny
  // graphs): fall back to a single node.
  if (result.set.empty()) result.set.push_back(0);
  if (static_cast<NodeId>(result.set.size()) == g.NumNodes()) {
    result.set.pop_back();
  }
  result.stats = ComputeCutStats(g, result.set);
  result.cut = result.stats.cut;
  if (budget_stop) {
    result.diagnostics.status = SolveStatus::kBudgetExhausted;
    result.diagnostics.detail =
        "work budget exhausted; refinement cut short but the bisection "
        "was projected to the finest level";
    if (options.budget != nullptr) {
      IMPREG_TRACE_EVENT(trace, result.levels, kBudget,
                         static_cast<double>(options.budget->Spent()));
    }
  } else {
    result.diagnostics.status = SolveStatus::kConverged;
  }
  result.diagnostics.iterations = result.levels;
  IMPREG_TRACE_EVENT(trace, result.levels, kConductance,
                     result.stats.conductance);
  IMPREG_TRACE_FINISH(trace, result.diagnostics);
  IMPREG_METRIC_COUNT("solver.multilevel.solves", 1);
  IMPREG_METRIC_COUNT("solver.multilevel.levels", result.levels);
  return result;
}

}  // namespace impreg
