#ifndef IMPREG_UTIL_CRC32C_H_
#define IMPREG_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>

/// \file
/// CRC-32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78) —
/// the checksum framing every durability artifact: WAL record payloads
/// and snapshot bodies (src/service/durability/). Chosen over plain
/// CRC-32 for its better error-detection spread on short records; this
/// is the same polynomial storage systems (ext4, Btrfs, LevelDB's log
/// format) frame their journals with. Table-driven software
/// implementation — durability I/O is fsync-bound, not checksum-bound,
/// so a hardware SSE4.2 path would be unmeasurable here.

namespace impreg {

/// CRC-32C of `data[0, size)`. `seed` chains incremental computation:
/// `Crc32c(b, nb, Crc32c(a, na))` equals the CRC of a‖b. The empty
/// buffer with the default seed is 0.
std::uint32_t Crc32c(const void* data, std::size_t size,
                     std::uint32_t seed = 0);

}  // namespace impreg

#endif  // IMPREG_UTIL_CRC32C_H_
