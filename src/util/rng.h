#ifndef IMPREG_UTIL_RNG_H_
#define IMPREG_UTIL_RNG_H_

#include <cstdint>
#include <vector>

/// \file
/// Deterministic pseudo-random number generation.
///
/// All randomized algorithms, generators, tests and benchmarks in the
/// library draw from this generator so that every run is reproducible
/// bit-for-bit from its seed. The engine is xoshiro256** seeded through
/// SplitMix64 (the initialization recommended by its authors).

namespace impreg {

/// A small, fast, high-quality deterministic PRNG (xoshiro256**).
///
/// Satisfies the C++ UniformRandomBitGenerator requirements, so it can be
/// used with <random> distributions, but the convenience members below
/// are preferred since their results are identical across platforms.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Constructs the generator from a 64-bit seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  Rng(const Rng&) = default;
  Rng& operator=(const Rng&) = default;

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Returns the next 64 random bits.
  std::uint64_t Next();

  result_type operator()() { return Next(); }

  /// Returns a uniform integer in [0, bound). Requires bound > 0.
  /// Uses rejection sampling (Lemire) so the result is exactly uniform.
  std::uint64_t NextBounded(std::uint64_t bound);

  /// Returns a uniform integer in [lo, hi]. Requires lo <= hi.
  std::int64_t NextInt(std::int64_t lo, std::int64_t hi);

  /// Returns a uniform double in [0, 1) with 53 bits of randomness.
  double NextDouble();

  /// Returns a uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Returns true with probability p (clamped to [0, 1]).
  bool NextBernoulli(double p);

  /// Returns a standard normal variate (Marsaglia polar method).
  double NextGaussian();

  /// Returns a random permutation of {0, 1, ..., n-1}.
  std::vector<int> Permutation(int n);

  /// Fisher–Yates shuffles `values` in place.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      std::size_t j = NextBounded(i);
      std::swap(values[i - 1], values[j]);
    }
  }

  /// Draws `k` distinct indices uniformly from {0, ..., n-1}. k <= n.
  std::vector<int> SampleWithoutReplacement(int n, int k);

 private:
  std::uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace impreg

#endif  // IMPREG_UTIL_RNG_H_
