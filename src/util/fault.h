#ifndef IMPREG_UTIL_FAULT_H_
#define IMPREG_UTIL_FAULT_H_

#include <cstdint>
#include <string>
#include <vector>

/// \file
/// Deterministic fault-injection harness for the robustness suite.
///
/// Hardened solvers mark the spots where numerical failure can enter —
/// the iterate vector after a matvec, a recurrence scalar, a work
/// budget — with named hooks:
///
///   IMPREG_FAULT_POINT("cg/iterate", result.x);   // Vector&
///   IMPREG_FAULT_POINT("cg/rho", rr_new);         // double&
///   IMPREG_FAULT_POINT("multilevel/level", budget);  // WorkBudget*
///
/// In a normal build (IMPREG_FAULT_INJECTION cmake option OFF) the
/// macro compiles to nothing: zero code, zero cost, bit-identical
/// outputs. With the option ON, each hook consults a process-global
/// trigger table: tests Arm() one (site, kind, nth-hit) trigger, run a
/// solver, and assert it degrades gracefully — correct SolveStatus,
/// finite outputs, no abort, no hang. Injection is deterministic: the
/// poisoned vector entry is chosen by a seeded hash of the site name,
/// so a failing case replays exactly.
///
/// Recording mode (StartRecording/StopRecording) captures every site a
/// solver passes through, in first-hit order, so the robustness test
/// enumerates the fault-point catalog from the code itself instead of
/// a hand-maintained list.

namespace impreg {

class WorkBudget;

namespace fault {

/// What an armed trigger injects when its site is hit.
enum class FaultKind {
  kNaN,      ///< Vector hook: one entry ← quiet NaN. Scalar hook: x ← NaN.
  kInf,      ///< Vector hook: one entry ← +Inf. Scalar hook: x ← +Inf.
  kPerturb,  ///< Scalar hook: x ← −1e6·x − 1 (sign flip + blow-up).
             ///< Vector hook: one entry scaled the same way.
  kBudget,   ///< Budget hook: WorkBudget::ForceExhausted().
};

/// True when the harness was compiled in (IMPREG_FAULT_INJECTION=ON).
bool Compiled();

/// Arms a single trigger: the `trigger_hit`-th time (1-based) the named
/// site is reached, inject `kind`. Replaces any previously armed
/// trigger. `seed` drives the vector-entry choice.
void Arm(const std::string& site, FaultKind kind, int trigger_hit = 1,
         std::uint64_t seed = 0x5eedf001ULL);

/// Clears the armed trigger, hit counters, and recording state.
void Disarm();

/// Number of injections performed since the last Arm()/Disarm().
int InjectionCount();

/// Begins capturing the distinct sites hit, in first-hit order.
void StartRecording();

/// Ends capture and returns the sites seen since StartRecording().
std::vector<std::string> StopRecording();

namespace internal {

void Hit(const char* site, std::vector<double>& v);
void Hit(const char* site, double& x);
void Hit(const char* site, WorkBudget* budget);

}  // namespace internal
}  // namespace fault
}  // namespace impreg

#ifdef IMPREG_FAULT_INJECTION
/// Named fault point. `target` is a Vector&, a double lvalue, or a
/// WorkBudget* (nullptr ok — budget hooks on an unlimited driver are
/// silently skipped but still recorded).
#define IMPREG_FAULT_POINT(site, target) \
  ::impreg::fault::internal::Hit(site, target)
#else
#define IMPREG_FAULT_POINT(site, target) \
  do {                                   \
  } while (0)
#endif

#endif  // IMPREG_UTIL_FAULT_H_
