#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/check.h"

namespace impreg {

Summary Summarize(const std::vector<double>& values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  double sum = 0.0;
  for (double v : sorted) sum += v;
  s.mean = sum / static_cast<double>(s.count);
  double ss = 0.0;
  for (double v : sorted) ss += (v - s.mean) * (v - s.mean);
  s.stddev = s.count > 1 ? std::sqrt(ss / static_cast<double>(s.count - 1)) : 0.0;
  const std::size_t mid = s.count / 2;
  s.median = (s.count % 2 == 1) ? sorted[mid]
                                : 0.5 * (sorted[mid - 1] + sorted[mid]);
  return s;
}

double Quantile(std::vector<double> values, double q) {
  IMPREG_CHECK(!values.empty());
  IMPREG_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  IMPREG_CHECK(x.size() == y.size());
  const std::size_t n = x.size();
  if (n < 2) return 0.0;
  const double mx = Mean(x), my = Mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
    syy += (y[i] - my) * (y[i] - my);
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double LogLogSlope(const std::vector<double>& x,
                   const std::vector<double>& y) {
  IMPREG_CHECK(x.size() == y.size());
  std::vector<double> lx, ly;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] > 0.0 && y[i] > 0.0) {
      lx.push_back(std::log(x[i]));
      ly.push_back(std::log(y[i]));
    }
  }
  if (lx.size() < 2) return 0.0;
  const double mx = Mean(lx), my = Mean(ly);
  double sxy = 0.0, sxx = 0.0;
  for (std::size_t i = 0; i < lx.size(); ++i) {
    sxy += (lx[i] - mx) * (ly[i] - my);
    sxx += (lx[i] - mx) * (lx[i] - mx);
  }
  if (sxx == 0.0) return 0.0;
  return sxy / sxx;
}

std::string FormatG(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", digits, value);
  return buf;
}

}  // namespace impreg
