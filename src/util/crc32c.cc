#include "util/crc32c.h"

#include <array>

namespace impreg {

namespace {

// Reflected-polynomial lookup table, built once at first use. constexpr
// so the whole table lives in .rodata with no static-init order issues.
constexpr std::uint32_t kPoly = 0x82F63B78u;

constexpr std::array<std::uint32_t, 256> BuildTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = BuildTable();

}  // namespace

std::uint32_t Crc32c(const void* data, std::size_t size, std::uint32_t seed) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t crc = ~seed;
  for (std::size_t i = 0; i < size; ++i) {
    crc = kTable[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace impreg
