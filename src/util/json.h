#ifndef IMPREG_UTIL_JSON_H_
#define IMPREG_UTIL_JSON_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

/// \file
/// Minimal JSON document parser — just enough for the observability
/// layer's own formats: bench reports (bench/report.h), metrics
/// snapshots, and trace exports (core/trace.h). Strict on structure
/// (unterminated containers, trailing garbage and bad escapes are
/// errors with a line number), permissive on use (typed accessors
/// return fallbacks instead of throwing, so schema checks read
/// linearly). Not a general-purpose library: no \uXXXX decoding beyond
/// pass-through, no streaming, inputs are whole strings.

namespace impreg {

/// A parsed JSON value (tree-owning).
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; the fallback is returned on type mismatch.
  bool AsBool(bool fallback = false) const {
    return is_bool() ? bool_ : fallback;
  }
  double AsDouble(double fallback = 0.0) const {
    return is_number() ? number_ : fallback;
  }
  const std::string& AsString() const { return string_; }

  /// Array elements (empty unless is_array()).
  const std::vector<JsonValue>& Items() const { return items_; }

  /// Object members in key-sorted order (empty unless is_object()).
  const std::map<std::string, JsonValue>& Members() const { return members_; }

  /// Object lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

  /// Convenience: Find(key), nullptr unless the member has that type.
  const JsonValue* FindOfType(const std::string& key, Type type) const;

 private:
  friend class JsonParser;
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::map<std::string, JsonValue> members_;
};

/// Result of JsonParse: either `ok()` and `value` holds the document,
/// or `error` describes the failure and `error_line` locates it
/// (1-based; 0 when not line-specific).
struct JsonParseResult {
  JsonValue value;
  std::string error;
  int error_line = 0;
  bool ok() const { return error.empty(); }
};

/// Parses one complete JSON document (trailing whitespace allowed,
/// trailing garbage is an error).
JsonParseResult JsonParse(const std::string& text);

}  // namespace impreg

#endif  // IMPREG_UTIL_JSON_H_
