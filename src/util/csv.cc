#include "util/csv.h"

#include <algorithm>

#include "util/check.h"
#include "util/stats.h"

namespace impreg {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  IMPREG_CHECK(!header_.empty());
}

void Table::AddRow(std::vector<std::string> row) {
  IMPREG_CHECK_MSG(row.size() == header_.size(),
                   "row width must match header width");
  rows_.push_back(std::move(row));
}

std::string Table::ToAligned() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      if (c + 1 < row.size()) {
        out.append(widths[c] - row[c].size() + 2, ' ');
      }
    }
    out += '\n';
  };
  emit(header_);
  std::string rule;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule.append(widths[c], '-');
    if (c + 1 < widths.size()) rule.append(2, ' ');
  }
  out += rule + '\n';
  for (const auto& row : rows_) emit(row);
  return out;
}

std::string Table::ToCsv() const {
  std::string out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      IMPREG_CHECK_MSG(row[c].find(',') == std::string::npos &&
                           row[c].find('\n') == std::string::npos,
                       "CSV cells must not contain commas or newlines");
      out += row[c];
      if (c + 1 < row.size()) out += ',';
    }
    out += '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out;
}

void Table::Print(std::FILE* out) const {
  const std::string rendered = ToAligned();
  std::fwrite(rendered.data(), 1, rendered.size(), out);
  std::fflush(out);
}

std::vector<std::string> Cells(const std::vector<double>& values, int digits) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(FormatG(v, digits));
  return cells;
}

}  // namespace impreg
