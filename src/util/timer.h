#ifndef IMPREG_UTIL_TIMER_H_
#define IMPREG_UTIL_TIMER_H_

#include <chrono>

/// \file
/// Wall-clock timer for the experiment harnesses.

namespace impreg {

/// Measures elapsed wall-clock time from construction or the last Reset().
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the timer.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction / last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace impreg

#endif  // IMPREG_UTIL_TIMER_H_
