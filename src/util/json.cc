#include "util/json.h"

#include <cctype>
#include <cstdlib>
#include <cstring>

namespace impreg {

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (!is_object()) return nullptr;
  const auto it = members_.find(key);
  return it != members_.end() ? &it->second : nullptr;
}

const JsonValue* JsonValue::FindOfType(const std::string& key,
                                       Type type) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->type() == type ? v : nullptr;
}

/// Recursive-descent parser over a flat char range. Depth is bounded to
/// keep hostile inputs from exhausting the stack.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text)
      : p_(text.c_str()), end_(text.c_str() + text.size()) {}

  JsonParseResult Run() {
    JsonParseResult result;
    SkipWhitespace();
    if (!ParseValue(result.value, 0)) {
      result.value = JsonValue();
      result.error = error_;
      result.error_line = line_;
      return result;
    }
    SkipWhitespace();
    if (p_ != end_) {
      result.value = JsonValue();
      result.error = "trailing garbage after the JSON document";
      result.error_line = line_;
    }
    return result;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool Fail(const char* message) {
    if (error_.empty()) error_ = message;
    return false;
  }

  void SkipWhitespace() {
    while (p_ != end_ &&
           (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r')) {
      if (*p_ == '\n') ++line_;
      ++p_;
    }
  }

  bool Literal(const char* word) {
    const std::size_t len = std::strlen(word);
    if (static_cast<std::size_t>(end_ - p_) < len ||
        std::strncmp(p_, word, len) != 0) {
      return false;
    }
    p_ += len;
    return true;
  }

  bool ParseValue(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    if (p_ == end_) return Fail("unexpected end of input");
    switch (*p_) {
      case '{': return ParseObject(out, depth);
      case '[': return ParseArray(out, depth);
      case '"': {
        out.type_ = JsonValue::Type::kString;
        return ParseString(out.string_);
      }
      case 't':
        if (!Literal("true")) return Fail("malformed literal");
        out.type_ = JsonValue::Type::kBool;
        out.bool_ = true;
        return true;
      case 'f':
        if (!Literal("false")) return Fail("malformed literal");
        out.type_ = JsonValue::Type::kBool;
        out.bool_ = false;
        return true;
      case 'n':
        if (!Literal("null")) return Fail("malformed literal");
        out.type_ = JsonValue::Type::kNull;
        return true;
      default: return ParseNumber(out);
    }
  }

  bool ParseNumber(JsonValue& out) {
    const char* start = p_;
    if (p_ != end_ && (*p_ == '-' || *p_ == '+')) ++p_;
    bool digits = false;
    while (p_ != end_ && (std::isdigit(static_cast<unsigned char>(*p_)) ||
                          *p_ == '.' || *p_ == 'e' || *p_ == 'E' ||
                          *p_ == '-' || *p_ == '+')) {
      if (std::isdigit(static_cast<unsigned char>(*p_))) digits = true;
      ++p_;
    }
    if (!digits) return Fail("expected a JSON value");
    char* parse_end = nullptr;
    const std::string token(start, p_);
    const double value = std::strtod(token.c_str(), &parse_end);
    if (parse_end != token.c_str() + token.size()) {
      return Fail("malformed number");
    }
    out.type_ = JsonValue::Type::kNumber;
    out.number_ = value;
    return true;
  }

  bool ParseString(std::string& out) {
    ++p_;  // Opening quote.
    out.clear();
    while (p_ != end_ && *p_ != '"') {
      if (*p_ == '\\') {
        ++p_;
        if (p_ == end_) return Fail("unterminated string escape");
        switch (*p_) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            // Pass the four hex digits through un-decoded; the
            // library's own writers only escape control characters.
            if (end_ - p_ < 5) return Fail("truncated \\u escape");
            out.append("\\u");
            for (int i = 1; i <= 4; ++i) {
              if (!std::isxdigit(static_cast<unsigned char>(p_[i]))) {
                return Fail("malformed \\u escape");
              }
              out.push_back(p_[i]);
            }
            p_ += 4;
            break;
          }
          default: return Fail("unknown string escape");
        }
        ++p_;
      } else {
        if (*p_ == '\n') ++line_;
        out.push_back(*p_);
        ++p_;
      }
    }
    if (p_ == end_) return Fail("unterminated string");
    ++p_;  // Closing quote.
    return true;
  }

  bool ParseArray(JsonValue& out, int depth) {
    ++p_;  // '['.
    out.type_ = JsonValue::Type::kArray;
    SkipWhitespace();
    if (p_ != end_ && *p_ == ']') {
      ++p_;
      return true;
    }
    for (;;) {
      JsonValue item;
      SkipWhitespace();
      if (!ParseValue(item, depth + 1)) return false;
      out.items_.push_back(std::move(item));
      SkipWhitespace();
      if (p_ == end_) return Fail("unterminated array");
      if (*p_ == ',') {
        ++p_;
        continue;
      }
      if (*p_ == ']') {
        ++p_;
        return true;
      }
      return Fail("expected ',' or ']' in array");
    }
  }

  bool ParseObject(JsonValue& out, int depth) {
    ++p_;  // '{'.
    out.type_ = JsonValue::Type::kObject;
    SkipWhitespace();
    if (p_ != end_ && *p_ == '}') {
      ++p_;
      return true;
    }
    for (;;) {
      SkipWhitespace();
      if (p_ == end_ || *p_ != '"') return Fail("expected object key");
      std::string key;
      if (!ParseString(key)) return false;
      SkipWhitespace();
      if (p_ == end_ || *p_ != ':') return Fail("expected ':' after key");
      ++p_;
      SkipWhitespace();
      JsonValue value;
      if (!ParseValue(value, depth + 1)) return false;
      out.members_[std::move(key)] = std::move(value);
      SkipWhitespace();
      if (p_ == end_) return Fail("unterminated object");
      if (*p_ == ',') {
        ++p_;
        continue;
      }
      if (*p_ == '}') {
        ++p_;
        return true;
      }
      return Fail("expected ',' or '}' in object");
    }
  }

  const char* p_;
  const char* end_;
  int line_ = 1;
  std::string error_;
};

JsonParseResult JsonParse(const std::string& text) {
  return JsonParser(text).Run();
}

}  // namespace impreg
