#ifndef IMPREG_UTIL_STATS_H_
#define IMPREG_UTIL_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

/// \file
/// Small descriptive-statistics helpers used by the experiment harnesses.

namespace impreg {

/// Summary statistics of a sample of doubles.
struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;  ///< Sample standard deviation (n-1 denominator).
  double median = 0.0;
};

/// Computes summary statistics. Returns a zeroed Summary for empty input.
Summary Summarize(const std::vector<double>& values);

/// Returns the q-th quantile (q in [0,1]) using linear interpolation.
/// Requires a non-empty sample.
double Quantile(std::vector<double> values, double q);

/// Arithmetic mean; 0 for empty input.
double Mean(const std::vector<double>& values);

/// Pearson correlation of two equal-length samples; 0 if degenerate.
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

/// Least-squares slope of log(y) against log(x), i.e. the empirical
/// scaling exponent b in y ≈ a·x^b. Ignores non-positive pairs.
/// Returns 0 if fewer than two usable points remain.
double LogLogSlope(const std::vector<double>& x, const std::vector<double>& y);

/// Formats a double with `digits` significant digits, for table output.
std::string FormatG(double value, int digits = 5);

}  // namespace impreg

#endif  // IMPREG_UTIL_STATS_H_
