#ifndef IMPREG_UTIL_CHECK_H_
#define IMPREG_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// \file
/// Assertion macros used throughout the library.
///
/// The library does not use exceptions (per the project style rules).
/// Programming errors — violated preconditions, broken internal
/// invariants — abort the process with a diagnostic via IMPREG_CHECK.
/// Conditions that can legitimately fail at runtime are reported through
/// return values (std::optional or status booleans) instead.

namespace impreg::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr, const char* msg) {
  std::fprintf(stderr, "IMPREG_CHECK failed at %s:%d: %s%s%s\n", file, line,
               expr, msg[0] != '\0' ? " — " : "", msg);
  std::fflush(stderr);
  std::abort();
}

}  // namespace impreg::internal

/// Aborts with a diagnostic when `cond` is false. Always compiled in.
#define IMPREG_CHECK(cond)                                              \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::impreg::internal::CheckFailed(__FILE__, __LINE__, #cond, "");   \
    }                                                                   \
  } while (0)

/// Like IMPREG_CHECK but appends a literal explanatory message.
#define IMPREG_CHECK_MSG(cond, msg)                                     \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::impreg::internal::CheckFailed(__FILE__, __LINE__, #cond, msg);  \
    }                                                                   \
  } while (0)

/// Debug-only check; compiled out in NDEBUG builds. Use on hot paths.
#ifdef NDEBUG
#define IMPREG_DCHECK(cond) \
  do {                      \
  } while (0)
#else
#define IMPREG_DCHECK(cond) IMPREG_CHECK(cond)
#endif

#endif  // IMPREG_UTIL_CHECK_H_
