#include "util/rng.h"

#include <cmath>

#include "util/check.h"

namespace impreg {

namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(s);
  // xoshiro must not start from the all-zero state; SplitMix64 cannot
  // produce four zero outputs in a row, but keep the guard explicit.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::NextBounded(std::uint64_t bound) {
  IMPREG_CHECK(bound > 0);
  // Lemire's nearly-divisionless method with rejection for exactness.
  std::uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::NextInt(std::int64_t lo, std::int64_t hi) {
  IMPREG_CHECK(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range [INT64_MIN, INT64_MAX].
  if (span == 0) return static_cast<std::int64_t>(Next());
  return lo + static_cast<std::int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  IMPREG_CHECK(lo <= hi);
  return lo + (hi - lo) * NextDouble();
}

bool Rng::NextBernoulli(double p) { return NextDouble() < p; }

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u, v, s;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * factor;
  has_cached_gaussian_ = true;
  return u * factor;
}

std::vector<int> Rng::Permutation(int n) {
  IMPREG_CHECK(n >= 0);
  std::vector<int> perm(n);
  for (int i = 0; i < n; ++i) perm[i] = i;
  Shuffle(perm);
  return perm;
}

std::vector<int> Rng::SampleWithoutReplacement(int n, int k) {
  IMPREG_CHECK(0 <= k && k <= n);
  // Floyd's algorithm: O(k) expected time, no O(n) scratch.
  std::vector<int> sample;
  sample.reserve(k);
  for (int j = n - k; j < n; ++j) {
    const int t = static_cast<int>(NextBounded(static_cast<std::uint64_t>(j) + 1));
    bool seen = false;
    for (int value : sample) {
      if (value == t) {
        seen = true;
        break;
      }
    }
    sample.push_back(seen ? j : t);
  }
  Shuffle(sample);
  return sample;
}

}  // namespace impreg
