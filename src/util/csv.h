#ifndef IMPREG_UTIL_CSV_H_
#define IMPREG_UTIL_CSV_H_

#include <cstdio>
#include <string>
#include <vector>

/// \file
/// A small fixed-schema table writer used by the benchmark harnesses to
/// print paper-style series both human-readably and machine-parsable.

namespace impreg {

/// Accumulates rows of string cells under a fixed header and renders them
/// either as aligned columns (for the console) or as CSV.
class Table {
 public:
  /// Creates a table with the given column names.
  explicit Table(std::vector<std::string> header);

  Table(const Table&) = default;
  Table& operator=(const Table&) = default;

  /// Appends a row. The row must have exactly as many cells as the header.
  void AddRow(std::vector<std::string> row);

  /// Number of data rows.
  std::size_t NumRows() const { return rows_.size(); }

  /// Renders with space-aligned columns.
  std::string ToAligned() const;

  /// Renders as comma-separated values (no quoting; cells must not
  /// contain commas or newlines — enforced with a check).
  std::string ToCsv() const;

  /// Writes the aligned rendering to `out` (defaults to stdout).
  void Print(std::FILE* out = stdout) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Convenience: formats a row of doubles with FormatG.
std::vector<std::string> Cells(const std::vector<double>& values,
                               int digits = 5);

}  // namespace impreg

#endif  // IMPREG_UTIL_CSV_H_
