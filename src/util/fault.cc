#include "util/fault.h"

#include <limits>
#include <mutex>
#include <unordered_map>

#include "core/work_budget.h"

namespace impreg::fault {

namespace {

// All harness state behind one mutex: the hooks sit in serial driver
// code, but the suite also runs under tsan and nothing here is hot.
struct State {
  std::mutex mu;
  bool armed = false;
  std::string site;
  FaultKind kind = FaultKind::kNaN;
  int trigger_hit = 1;
  std::uint64_t seed = 0;
  int injections = 0;
  std::unordered_map<std::string, int> hits;
  bool recording = false;
  std::vector<std::string> recorded;  // Distinct, first-hit order.
};

State& GetState() {
  static State* state = new State();
  return *state;
}

std::uint64_t Fnv1a(const char* s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (; *s != '\0'; ++s) {
    h ^= static_cast<unsigned char>(*s);
    h *= 0x100000001b3ULL;
  }
  return h;
}

// Returns true (under the lock) when this hit should inject, and
// handles recording/counting for every hit.
bool ShouldInject(State& state, const char* site) {
  const int hit = ++state.hits[site];
  if (state.recording && hit == 1) state.recorded.push_back(site);
  if (!state.armed || state.site != site || hit != state.trigger_hit) {
    return false;
  }
  ++state.injections;
  return true;
}

}  // namespace

bool Compiled() {
#ifdef IMPREG_FAULT_INJECTION
  return true;
#else
  return false;
#endif
}

void Arm(const std::string& site, FaultKind kind, int trigger_hit,
         std::uint64_t seed) {
  State& state = GetState();
  std::lock_guard<std::mutex> lock(state.mu);
  state.armed = true;
  state.site = site;
  state.kind = kind;
  state.trigger_hit = trigger_hit < 1 ? 1 : trigger_hit;
  state.seed = seed;
  state.injections = 0;
  state.hits.clear();
}

void Disarm() {
  State& state = GetState();
  std::lock_guard<std::mutex> lock(state.mu);
  state.armed = false;
  state.site.clear();
  state.injections = 0;
  state.hits.clear();
  state.recording = false;
  state.recorded.clear();
}

int InjectionCount() {
  State& state = GetState();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.injections;
}

void StartRecording() {
  State& state = GetState();
  std::lock_guard<std::mutex> lock(state.mu);
  state.recording = true;
  state.recorded.clear();
  state.hits.clear();
}

std::vector<std::string> StopRecording() {
  State& state = GetState();
  std::lock_guard<std::mutex> lock(state.mu);
  state.recording = false;
  return std::move(state.recorded);
}

namespace internal {

void Hit(const char* site, std::vector<double>& v) {
  State& state = GetState();
  FaultKind kind;
  std::uint64_t seed;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    if (!ShouldInject(state, site)) return;
    kind = state.kind;
    seed = state.seed;
  }
  if (v.empty()) return;
  const std::size_t index =
      static_cast<std::size_t>((Fnv1a(site) ^ (seed * 0x9e3779b97f4a7c15ULL)) %
                               v.size());
  switch (kind) {
    case FaultKind::kNaN:
      v[index] = std::numeric_limits<double>::quiet_NaN();
      break;
    case FaultKind::kInf:
      v[index] = std::numeric_limits<double>::infinity();
      break;
    case FaultKind::kPerturb:
      v[index] = -1e6 * v[index] - 1.0;
      break;
    case FaultKind::kBudget:
      break;  // Budget faults only make sense on budget hooks.
  }
}

void Hit(const char* site, double& x) {
  State& state = GetState();
  FaultKind kind;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    if (!ShouldInject(state, site)) return;
    kind = state.kind;
  }
  switch (kind) {
    case FaultKind::kNaN:
      x = std::numeric_limits<double>::quiet_NaN();
      break;
    case FaultKind::kInf:
      x = std::numeric_limits<double>::infinity();
      break;
    case FaultKind::kPerturb:
      x = -1e6 * x - 1.0;
      break;
    case FaultKind::kBudget:
      break;
  }
}

void Hit(const char* site, WorkBudget* budget) {
  State& state = GetState();
  FaultKind kind;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    if (!ShouldInject(state, site)) return;
    kind = state.kind;
  }
  if (kind == FaultKind::kBudget && budget != nullptr) {
    budget->ForceExhausted();
  }
}

}  // namespace internal
}  // namespace impreg::fault
