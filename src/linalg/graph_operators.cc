#include "linalg/graph_operators.h"

#include <cmath>
#include <cstddef>

#include "core/parallel.h"
#include "linalg/simd/simd.h"
#include "util/check.h"

namespace impreg {

namespace {

/// Rows per parallel chunk for the CSR matvecs. Each row owns its output
/// element, so row ranges partition the work with no write conflicts;
/// results are elementwise identical for any thread count.
constexpr std::int64_t kRowGrain = 512;

/// Register-blocked CSR kernel over the row range [begin, end): for each
/// of the B columns, the row's arc products w[a]·x_j[heads[a]] are summed
/// with the canonical striped tree (simd::RowTreeScalar — four lanes over
/// the 4-aligned prefix, sequential tail), the operator's init term is
/// folded in as one `init ± tree` rounding, and ys[j][u] =
/// finish(x_j, u, acc). The arc loop reads `heads`/`w` once per arc and
/// reuses them across all B accumulators, which is where SpMM beats k
/// separate SpMVs. Per-column accumulation is exactly the B == 1 tree,
/// so every column is bit-identical to a single-vector apply — and the
/// same tree is what the AVX2 path computes, so dispatch never changes a
/// bit. Rows with no arcs return the init term untouched (sign bit and
/// all). Subtraction is a compile-time flag: `init - tree` must stay
/// textually a subtraction to pin its rounding.
template <bool Subtract, int B, class Init, class Finish>
void SpmmRows(const ArcIndex* offsets, const NodeId* heads, const double* w,
              std::int64_t begin, std::int64_t end, const double* const* xs,
              double* const* ys, const Init& init, const Finish& finish) {
  for (std::int64_t u = begin; u < end; ++u) {
    const ArcIndex row_begin = offsets[u];
    const std::int64_t len = offsets[u + 1] - row_begin;
    if (len == 0) {
      for (int j = 0; j < B; ++j) ys[j][u] = finish(xs[j], u, init(xs[j], u));
      continue;
    }
    double tree[B];
    if constexpr (B == 4) {
      simd::RowTree4Scalar(heads + row_begin, w + row_begin, len, xs, tree);
    } else {
      for (int j = 0; j < B; ++j) {
        tree[j] = simd::RowTreeScalar(heads + row_begin, w + row_begin, len,
                                      xs[j]);
      }
    }
    for (int j = 0; j < B; ++j) {
      const double acc = Subtract ? init(xs[j], u) - tree[j]
                                  : init(xs[j], u) + tree[j];
      ys[j][u] = finish(xs[j], u, acc);
    }
  }
}

/// Single-vector CSR apply: the B == 1 instantiation of SpmmRows under
/// the deterministic row partition, with the row tree dispatched to the
/// AVX2 gather kernel when active.
template <bool Subtract, class Init, class Finish>
void SpmvCsr(const Graph& g, const double* w, const Vector& x, Vector& y,
             const Init& init, const Finish& finish) {
  y.resize(x.size());
  const ArcIndex* offsets = g.Offsets().data();
  const NodeId* heads = g.Heads().data();
  const double* xp = x.data();
  double* yp = y.data();
  const bool avx2 = simd::ActiveSimdLevel(simd::SimdKernel::kRowGather) ==
                    simd::SimdLevel::kAvx2;
  ParallelFor(0, g.NumNodes(), kRowGrain,
              [&](std::int64_t begin, std::int64_t end) {
                if (avx2) {
                  for (std::int64_t u = begin; u < end; ++u) {
                    const ArcIndex row_begin = offsets[u];
                    const std::int64_t len = offsets[u + 1] - row_begin;
                    if (len == 0) {
                      yp[u] = finish(xp, u, init(xp, u));
                      continue;
                    }
                    const double tree = simd::RowTreeAvx2(
                        heads + row_begin, w + row_begin, len, xp);
                    const double acc =
                        Subtract ? init(xp, u) - tree : init(xp, u) + tree;
                    yp[u] = finish(xp, u, acc);
                  }
                } else {
                  SpmmRows<Subtract, 1>(offsets, heads, w, begin, end, &xp,
                                        &yp, init, finish);
                }
              });
}

/// Batched CSR apply: columns are processed in register blocks of four
/// (tails of 3/2/1), each block sharing one traversal of the row range.
template <bool Subtract, class Init, class Finish>
void SpmmCsr(const Graph& g, const double* w, const std::vector<Vector>& xs,
             std::vector<Vector>& ys, const Init& init, const Finish& finish) {
  const std::size_t k = xs.size();
  const NodeId n = g.NumNodes();
  for (const Vector& x : xs) {
    IMPREG_DCHECK(static_cast<NodeId>(x.size()) == n);
    (void)x;
  }
  ys.resize(k);
  for (Vector& y : ys) y.resize(n);
  if (k == 0 || n == 0) return;

  std::vector<const double*> xp(k);
  std::vector<double*> yp(k);
  for (std::size_t j = 0; j < k; ++j) {
    xp[j] = xs[j].data();
    yp[j] = ys[j].data();
  }
  const ArcIndex* offsets = g.Offsets().data();
  const NodeId* heads = g.Heads().data();
  const bool avx2 = simd::ActiveSimdLevel(simd::SimdKernel::kRowBlock4) ==
                    simd::SimdLevel::kAvx2;
  ParallelFor(0, n, kRowGrain, [&](std::int64_t begin, std::int64_t end) {
    std::size_t j = 0;
    for (; j + 4 <= k; j += 4) {
      if (avx2) {
        // Cross-column AVX2 block: vector lane = column, per-column
        // accumulation is the same canonical tree as the scalar path.
        const double* const* xsj = &xp[j];
        double* const* ysj = &yp[j];
        for (std::int64_t u = begin; u < end; ++u) {
          const ArcIndex row_begin = offsets[u];
          const std::int64_t len = offsets[u + 1] - row_begin;
          double tree[4];
          if (len == 0) {
            for (int c = 0; c < 4; ++c) {
              ysj[c][u] = finish(xsj[c], u, init(xsj[c], u));
            }
            continue;
          }
          simd::RowTree4Avx2(heads + row_begin, w + row_begin, len, xsj,
                             tree);
          for (int c = 0; c < 4; ++c) {
            const double acc = Subtract ? init(xsj[c], u) - tree[c]
                                        : init(xsj[c], u) + tree[c];
            ysj[c][u] = finish(xsj[c], u, acc);
          }
        }
        continue;
      }
      SpmmRows<Subtract, 4>(offsets, heads, w, begin, end, &xp[j], &yp[j],
                            init, finish);
    }
    switch (k - j) {
      case 3:
        SpmmRows<Subtract, 3>(offsets, heads, w, begin, end, &xp[j], &yp[j],
                              init, finish);
        break;
      case 2:
        SpmmRows<Subtract, 2>(offsets, heads, w, begin, end, &xp[j], &yp[j],
                              init, finish);
        break;
      case 1:
        SpmmRows<Subtract, 1>(offsets, heads, w, begin, end, &xp[j], &yp[j],
                              init, finish);
        break;
      default:
        break;
    }
  });
}

/// w(u,v) scaled by `scale[head]` for every arc — the head-side half of a
/// degree normalization, shared by ℒ (d^{-1/2}) and M / W_α (d^{-1}).
Vector FoldHeadScale(const Graph& g, const Vector& scale) {
  const auto heads = g.Heads();
  const auto weights = g.Weights();
  Vector folded(heads.size());
  for (std::size_t a = 0; a < heads.size(); ++a) {
    folded[a] = weights[a] * scale[heads[a]];
  }
  return folded;
}

const auto kZeroInit = [](const double*, std::int64_t) { return 0.0; };
const auto kSumFinish = [](const double*, std::int64_t, double acc) {
  return acc;
};

}  // namespace

void AdjacencyOperator::Apply(const Vector& x, Vector& y) const {
  IMPREG_DCHECK(static_cast<int>(x.size()) == Dimension());
  SpmvCsr<false>(graph_, graph_.Weights().data(), x, y, kZeroInit,
                 kSumFinish);
}

void AdjacencyOperator::ApplyBatch(const std::vector<Vector>& xs,
                                   std::vector<Vector>& ys) const {
  SpmmCsr<false>(graph_, graph_.Weights().data(), xs, ys, kZeroInit,
                 kSumFinish);
}

void CombinatorialLaplacianOperator::Apply(const Vector& x, Vector& y) const {
  IMPREG_DCHECK(static_cast<int>(x.size()) == Dimension());
  const double* deg = graph_.Degrees().data();
  const auto init = [deg](const double* xj, std::int64_t u) {
    return deg[u] * xj[u];
  };
  SpmvCsr<true>(graph_, graph_.Weights().data(), x, y, init, kSumFinish);
}

void CombinatorialLaplacianOperator::ApplyBatch(const std::vector<Vector>& xs,
                                                std::vector<Vector>& ys) const {
  const double* deg = graph_.Degrees().data();
  const auto init = [deg](const double* xj, std::int64_t u) {
    return deg[u] * xj[u];
  };
  SpmmCsr<true>(graph_, graph_.Weights().data(), xs, ys, init, kSumFinish);
}

NormalizedLaplacianOperator::NormalizedLaplacianOperator(const Graph& graph)
    : graph_(graph) {
  const NodeId n = graph_.NumNodes();
  inv_sqrt_deg_.assign(n, 0.0);
  trivial_.assign(n, 0.0);
  double norm_sq = 0.0;
  for (NodeId u = 0; u < n; ++u) {
    const double d = graph_.Degree(u);
    if (d > 0.0) {
      inv_sqrt_deg_[u] = 1.0 / std::sqrt(d);
      trivial_[u] = std::sqrt(d);
      norm_sq += d;
    }
  }
  if (norm_sq > 0.0) {
    const double inv_norm = 1.0 / std::sqrt(norm_sq);
    for (double& v : trivial_) v *= inv_norm;
  }
  folded_weights_ = FoldHeadScale(graph_, inv_sqrt_deg_);
}

void NormalizedLaplacianOperator::Apply(const Vector& x, Vector& y) const {
  IMPREG_DCHECK(static_cast<int>(x.size()) == Dimension());
  const double* isd = inv_sqrt_deg_.data();
  const auto finish = [isd](const double* xj, std::int64_t u, double acc) {
    // Isolated: row is zero (acc is 0 anyway — no arcs).
    return isd[u] == 0.0 ? 0.0 : xj[u] - isd[u] * acc;
  };
  SpmvCsr<false>(graph_, folded_weights_.data(), x, y, kZeroInit, finish);
}

void NormalizedLaplacianOperator::ApplyBatch(const std::vector<Vector>& xs,
                                             std::vector<Vector>& ys) const {
  const double* isd = inv_sqrt_deg_.data();
  const auto finish = [isd](const double* xj, std::int64_t u, double acc) {
    return isd[u] == 0.0 ? 0.0 : xj[u] - isd[u] * acc;
  };
  SpmmCsr<false>(graph_, folded_weights_.data(), xs, ys, kZeroInit, finish);
}

RandomWalkOperator::RandomWalkOperator(const Graph& graph) : graph_(graph) {
  Vector inv_deg(graph_.NumNodes(), 0.0);
  for (NodeId u = 0; u < graph_.NumNodes(); ++u) {
    const double d = graph_.Degree(u);
    if (d > 0.0) inv_deg[u] = 1.0 / d;
  }
  folded_weights_ = FoldHeadScale(graph_, inv_deg);
}

void RandomWalkOperator::Apply(const Vector& x, Vector& y) const {
  IMPREG_DCHECK(static_cast<int>(x.size()) == Dimension());
  // y = A D^{-1} x: node v pushes x_v/d_v along each incident edge.
  SpmvCsr<false>(graph_, folded_weights_.data(), x, y, kZeroInit, kSumFinish);
}

void RandomWalkOperator::ApplyBatch(const std::vector<Vector>& xs,
                                    std::vector<Vector>& ys) const {
  SpmmCsr<false>(graph_, folded_weights_.data(), xs, ys, kZeroInit,
                 kSumFinish);
}

LazyWalkOperator::LazyWalkOperator(const Graph& graph, double alpha)
    : graph_(graph), alpha_(alpha) {
  IMPREG_CHECK(alpha >= 0.0 && alpha <= 1.0);
  Vector inv_deg(graph_.NumNodes(), 0.0);
  for (NodeId u = 0; u < graph_.NumNodes(); ++u) {
    const double d = graph_.Degree(u);
    if (d > 0.0) inv_deg[u] = 1.0 / d;
  }
  folded_weights_ = FoldHeadScale(graph_, inv_deg);
}

void LazyWalkOperator::Apply(const Vector& x, Vector& y) const {
  IMPREG_DCHECK(static_cast<int>(x.size()) == Dimension());
  const double* deg = graph_.Degrees().data();
  const double alpha = alpha_;
  const auto finish = [deg, alpha](const double* xj, std::int64_t u,
                                   double acc) {
    // Isolated nodes (d=0) keep all their mass.
    return deg[u] > 0.0 ? alpha * xj[u] + (1.0 - alpha) * acc : xj[u];
  };
  SpmvCsr<false>(graph_, folded_weights_.data(), x, y, kZeroInit, finish);
}

void LazyWalkOperator::ApplyBatch(const std::vector<Vector>& xs,
                                  std::vector<Vector>& ys) const {
  const double* deg = graph_.Degrees().data();
  const double alpha = alpha_;
  const auto finish = [deg, alpha](const double* xj, std::int64_t u,
                                   double acc) {
    return deg[u] > 0.0 ? alpha * xj[u] + (1.0 - alpha) * acc : xj[u];
  };
  SpmmCsr<false>(graph_, folded_weights_.data(), xs, ys, kZeroInit, finish);
}

Vector TrivialNormalizedEigenvector(const Graph& graph) {
  Vector v(graph.NumNodes(), 0.0);
  double norm_sq = 0.0;
  for (NodeId u = 0; u < graph.NumNodes(); ++u) {
    const double d = graph.Degree(u);
    if (d > 0.0) {
      v[u] = std::sqrt(d);
      norm_sq += d;
    }
  }
  if (norm_sq > 0.0) {
    const double inv = 1.0 / std::sqrt(norm_sq);
    for (double& value : v) value *= inv;
  }
  return v;
}

}  // namespace impreg
