#include "linalg/graph_operators.h"

#include <cmath>

#include "core/parallel.h"
#include "util/check.h"

namespace impreg {

namespace {

/// Rows per parallel chunk for the CSR matvecs. Each row owns its output
/// element, so row ranges partition the work with no write conflicts;
/// results are elementwise identical for any thread count.
constexpr std::int64_t kRowGrain = 512;

}  // namespace

void AdjacencyOperator::Apply(const Vector& x, Vector& y) const {
  IMPREG_DCHECK(static_cast<int>(x.size()) == Dimension());
  y.resize(x.size());
  ParallelFor(0, graph_.NumNodes(), kRowGrain,
              [&](std::int64_t begin, std::int64_t end) {
                for (NodeId u = static_cast<NodeId>(begin); u < end; ++u) {
                  double sum = 0.0;
                  for (const Arc& arc : graph_.Neighbors(u)) {
                    sum += arc.weight * x[arc.head];
                  }
                  y[u] = sum;
                }
              });
}

void CombinatorialLaplacianOperator::Apply(const Vector& x, Vector& y) const {
  IMPREG_DCHECK(static_cast<int>(x.size()) == Dimension());
  y.resize(x.size());
  ParallelFor(0, graph_.NumNodes(), kRowGrain,
              [&](std::int64_t begin, std::int64_t end) {
                for (NodeId u = static_cast<NodeId>(begin); u < end; ++u) {
                  double sum = graph_.Degree(u) * x[u];
                  for (const Arc& arc : graph_.Neighbors(u)) {
                    sum -= arc.weight * x[arc.head];
                  }
                  y[u] = sum;
                }
              });
}

NormalizedLaplacianOperator::NormalizedLaplacianOperator(const Graph& graph)
    : graph_(graph) {
  const NodeId n = graph_.NumNodes();
  inv_sqrt_deg_.assign(n, 0.0);
  trivial_.assign(n, 0.0);
  double norm_sq = 0.0;
  for (NodeId u = 0; u < n; ++u) {
    const double d = graph_.Degree(u);
    if (d > 0.0) {
      inv_sqrt_deg_[u] = 1.0 / std::sqrt(d);
      trivial_[u] = std::sqrt(d);
      norm_sq += d;
    }
  }
  if (norm_sq > 0.0) {
    const double inv_norm = 1.0 / std::sqrt(norm_sq);
    for (double& v : trivial_) v *= inv_norm;
  }
}

void NormalizedLaplacianOperator::Apply(const Vector& x, Vector& y) const {
  IMPREG_DCHECK(static_cast<int>(x.size()) == Dimension());
  y.resize(x.size());
  ParallelFor(0, graph_.NumNodes(), kRowGrain,
              [&](std::int64_t begin, std::int64_t end) {
                for (NodeId u = static_cast<NodeId>(begin); u < end; ++u) {
                  if (inv_sqrt_deg_[u] == 0.0) {
                    y[u] = 0.0;  // Isolated: row is zero.
                    continue;
                  }
                  double sum = 0.0;
                  for (const Arc& arc : graph_.Neighbors(u)) {
                    sum += arc.weight * inv_sqrt_deg_[arc.head] * x[arc.head];
                  }
                  y[u] = x[u] - inv_sqrt_deg_[u] * sum;
                }
              });
}

RandomWalkOperator::RandomWalkOperator(const Graph& graph) : graph_(graph) {
  inv_deg_.assign(graph_.NumNodes(), 0.0);
  for (NodeId u = 0; u < graph_.NumNodes(); ++u) {
    const double d = graph_.Degree(u);
    if (d > 0.0) inv_deg_[u] = 1.0 / d;
  }
}

void RandomWalkOperator::Apply(const Vector& x, Vector& y) const {
  IMPREG_DCHECK(static_cast<int>(x.size()) == Dimension());
  y.resize(x.size());
  // y = A D^{-1} x: node v pushes x_v/d_v along each incident edge.
  ParallelFor(0, graph_.NumNodes(), kRowGrain,
              [&](std::int64_t begin, std::int64_t end) {
                for (NodeId u = static_cast<NodeId>(begin); u < end; ++u) {
                  double sum = 0.0;
                  for (const Arc& arc : graph_.Neighbors(u)) {
                    sum += arc.weight * inv_deg_[arc.head] * x[arc.head];
                  }
                  y[u] = sum;
                }
              });
}

LazyWalkOperator::LazyWalkOperator(const Graph& graph, double alpha)
    : graph_(graph), alpha_(alpha) {
  IMPREG_CHECK(alpha >= 0.0 && alpha <= 1.0);
  inv_deg_.assign(graph_.NumNodes(), 0.0);
  for (NodeId u = 0; u < graph_.NumNodes(); ++u) {
    const double d = graph_.Degree(u);
    if (d > 0.0) inv_deg_[u] = 1.0 / d;
  }
}

void LazyWalkOperator::Apply(const Vector& x, Vector& y) const {
  IMPREG_DCHECK(static_cast<int>(x.size()) == Dimension());
  y.resize(x.size());
  ParallelFor(0, graph_.NumNodes(), kRowGrain,
              [&](std::int64_t begin, std::int64_t end) {
                for (NodeId u = static_cast<NodeId>(begin); u < end; ++u) {
                  double sum = 0.0;
                  for (const Arc& arc : graph_.Neighbors(u)) {
                    sum += arc.weight * inv_deg_[arc.head] * x[arc.head];
                  }
                  // Isolated nodes (d=0) keep all their mass.
                  y[u] = graph_.Degree(u) > 0.0
                             ? alpha_ * x[u] + (1.0 - alpha_) * sum
                             : x[u];
                }
              });
}

Vector TrivialNormalizedEigenvector(const Graph& graph) {
  Vector v(graph.NumNodes(), 0.0);
  double norm_sq = 0.0;
  for (NodeId u = 0; u < graph.NumNodes(); ++u) {
    const double d = graph.Degree(u);
    if (d > 0.0) {
      v[u] = std::sqrt(d);
      norm_sq += d;
    }
  }
  if (norm_sq > 0.0) {
    const double inv = 1.0 / std::sqrt(norm_sq);
    for (double& value : v) value *= inv;
  }
  return v;
}

}  // namespace impreg
