#ifndef IMPREG_LINALG_POWER_METHOD_H_
#define IMPREG_LINALG_POWER_METHOD_H_

#include <functional>
#include <vector>

#include "core/solve_status.h"
#include "graph/graph.h"
#include "linalg/operator.h"

/// \file
/// The Power Method of §3.1 (footnote 15): the canonical approximate
/// eigenvector computation whose early stopping is one of the paper's
/// central examples of implicit regularization. The per-iteration
/// callback exists specifically so experiments can inspect the iterates
/// ν_t — the "truncated" answers the paper argues are often better than
/// the exact one.

namespace impreg {

/// Options for PowerMethod.
struct PowerMethodOptions {
  int max_iterations = 1000;
  /// Convergence: ‖ν_{t+1} − ν_t‖₂ (after sign alignment) below this.
  double tolerance = 1e-10;
  /// Vectors kept out of the iteration (deflation), e.g. the trivial
  /// eigenvector of ℒ.
  std::vector<Vector> deflate;
  /// If set, called after every iteration with (iteration, unit iterate).
  std::function<void(int, const Vector&)> on_iterate;
};

/// Result of a power iteration. The eigenvector is unit length and
/// finite whenever diagnostics.usable(); on kNonFinite it is the last
/// finite unit iterate, and on kInvalidInput (non-finite start) it is
/// the zero vector.
struct PowerMethodResult {
  double eigenvalue = 0.0;  ///< Rayleigh quotient at the final iterate.
  Vector eigenvector;       ///< Unit length.
  int iterations = 0;
  /// Kept in sync with diagnostics.status == kConverged.
  bool converged = false;
  SolverDiagnostics diagnostics;
};

/// Runs the power method ν_{t+1} = A ν_t / ‖A ν_t‖₂ from `start`
/// (deflated and normalized first). Converges to the dominant
/// eigenvector of A restricted to the complement of the deflated
/// vectors, for symmetric A with a dominant eigenvalue.
PowerMethodResult PowerMethod(const LinearOperator& op, Vector start,
                              const PowerMethodOptions& options = {});

/// Convenience for the paper's main use: the leading *nontrivial*
/// eigenpair (λ₂, v₂) of the normalized Laplacian ℒ, computed by the
/// power method on 2I − ℒ with the trivial eigenvector deflated.
/// Returns eigenvalue λ₂ (of ℒ) and the unit eigenvector v₂.
PowerMethodResult SecondEigenpairPowerMethod(
    const Graph& graph, Vector start, const PowerMethodOptions& options = {});

}  // namespace impreg

#endif  // IMPREG_LINALG_POWER_METHOD_H_
