#ifndef IMPREG_LINALG_GRAPH_OPERATORS_H_
#define IMPREG_LINALG_GRAPH_OPERATORS_H_

#include "graph/graph.h"
#include "linalg/operator.h"

/// \file
/// The graph matrices of §3.1 of the paper, exposed as matrix-free
/// operators over the CSR graph:
///
///   A        adjacency                       (AdjacencyOperator)
///   L = D−A  combinatorial Laplacian         (CombinatorialLaplacianOperator)
///   ℒ = I − D^{-1/2} A D^{-1/2}              (NormalizedLaplacianOperator)
///   M = A D^{-1}  random-walk transition     (RandomWalkOperator)
///   W_α = αI + (1−α)M  lazy walk             (LazyWalkOperator)
///
/// Conventions for isolated (zero-degree) nodes: ℒ and M act as zero on
/// them (Chung's convention), L acts as zero, and W_α holds their mass
/// in place (the walk has nowhere to go).
///
/// M is column-stochastic: applying it propagates a charge/probability
/// vector one step, preserving its total mass on graphs with no isolated
/// nodes.
///
/// Performance notes (see docs/memory_layout.md): all kernels stream the
/// graph's structure-of-arrays adjacency. The degree-normalized
/// operators (ℒ, M, W_α) fold the head-side normalization into an
/// arc-aligned weight array once at construction, so every apply is a
/// single fused multiply-add stream. Each operator also overrides
/// `ApplyBatch` with a register-blocked SpMM that traverses the
/// adjacency once for k right-hand sides; every column is bit-identical
/// to the corresponding single-vector `Apply` at any thread count.

namespace impreg {

/// y = A x.
class AdjacencyOperator : public LinearOperator {
 public:
  /// `graph` must outlive the operator.
  explicit AdjacencyOperator(const Graph& graph) : graph_(graph) {}

  using LinearOperator::Apply;       // Un-hide the by-value forms.
  using LinearOperator::ApplyBatch;
  int Dimension() const override { return graph_.NumNodes(); }
  void Apply(const Vector& x, Vector& y) const override;
  void ApplyBatch(const std::vector<Vector>& xs,
                  std::vector<Vector>& ys) const override;

 private:
  const Graph& graph_;
};

/// y = (D − A) x.
class CombinatorialLaplacianOperator : public LinearOperator {
 public:
  explicit CombinatorialLaplacianOperator(const Graph& graph)
      : graph_(graph) {}

  using LinearOperator::Apply;       // Un-hide the by-value forms.
  using LinearOperator::ApplyBatch;
  int Dimension() const override { return graph_.NumNodes(); }
  void Apply(const Vector& x, Vector& y) const override;
  void ApplyBatch(const std::vector<Vector>& xs,
                  std::vector<Vector>& ys) const override;

 private:
  const Graph& graph_;
};

/// y = (I − D^{-1/2} A D^{-1/2}) x; rows/columns of isolated nodes are 0.
class NormalizedLaplacianOperator : public LinearOperator {
 public:
  explicit NormalizedLaplacianOperator(const Graph& graph);

  using LinearOperator::Apply;       // Un-hide the by-value forms.
  using LinearOperator::ApplyBatch;
  int Dimension() const override { return graph_.NumNodes(); }
  void Apply(const Vector& x, Vector& y) const override;
  void ApplyBatch(const std::vector<Vector>& xs,
                  std::vector<Vector>& ys) const override;

  /// The trivial eigenvector D^{1/2}1 / ‖D^{1/2}1‖ (eigenvalue 0).
  const Vector& TrivialEigenvector() const { return trivial_; }

  /// d_u^{-1/2}, 0 for isolated nodes.
  const Vector& InvSqrtDegrees() const { return inv_sqrt_deg_; }

 private:
  const Graph& graph_;
  Vector inv_sqrt_deg_;
  Vector trivial_;
  /// Arc-aligned w(u,v)·d_v^{-1/2}: the head-side half of the
  /// normalization, folded at construction. The tail-side d_u^{-1/2}
  /// stays in the row epilogue so results match the original
  /// three-array kernel bit for bit.
  Vector folded_weights_;
};

/// y = A D^{-1} x (one step of the natural random walk on a charge
/// vector). Mass on isolated nodes is annihilated.
class RandomWalkOperator : public LinearOperator {
 public:
  explicit RandomWalkOperator(const Graph& graph);

  using LinearOperator::Apply;       // Un-hide the by-value forms.
  using LinearOperator::ApplyBatch;
  int Dimension() const override { return graph_.NumNodes(); }
  void Apply(const Vector& x, Vector& y) const override;
  void ApplyBatch(const std::vector<Vector>& xs,
                  std::vector<Vector>& ys) const override;

 private:
  const Graph& graph_;
  Vector folded_weights_;  ///< Arc-aligned w(u,v)/d_v.
};

/// y = (αI + (1−α) A D^{-1}) x with holding probability α ∈ [0, 1].
/// Isolated nodes hold all their mass.
class LazyWalkOperator : public LinearOperator {
 public:
  LazyWalkOperator(const Graph& graph, double alpha);

  using LinearOperator::Apply;       // Un-hide the by-value forms.
  using LinearOperator::ApplyBatch;
  int Dimension() const override { return graph_.NumNodes(); }
  void Apply(const Vector& x, Vector& y) const override;
  void ApplyBatch(const std::vector<Vector>& xs,
                  std::vector<Vector>& ys) const override;

  double alpha() const { return alpha_; }

 private:
  const Graph& graph_;
  Vector folded_weights_;  ///< Arc-aligned w(u,v)/d_v.
  double alpha_;
};

/// D^{1/2}1 normalized to unit length — the trivial eigenvector of ℒ.
Vector TrivialNormalizedEigenvector(const Graph& graph);

}  // namespace impreg

#endif  // IMPREG_LINALG_GRAPH_OPERATORS_H_
