#ifndef IMPREG_LINALG_TRIDIAGONAL_H_
#define IMPREG_LINALG_TRIDIAGONAL_H_

#include "linalg/dense_matrix.h"
#include "linalg/vector_ops.h"

/// \file
/// Eigensolver for real symmetric tridiagonal matrices (the projected
/// problems produced by the Lanczos process). Implicit QL with Wilkinson
/// shifts — the classical tql2 algorithm.

namespace impreg {

/// Eigendecomposition of the symmetric tridiagonal matrix with diagonal
/// `diag` (length m) and off-diagonal `offdiag` (length m−1).
/// Returns ascending eigenvalues and an m×m orthonormal eigenvector
/// matrix (column k ↔ eigenvalue k), exactly as SymmetricEigen.
SymmetricEigen TridiagonalEigendecomposition(const Vector& diag,
                                             const Vector& offdiag);

}  // namespace impreg

#endif  // IMPREG_LINALG_TRIDIAGONAL_H_
