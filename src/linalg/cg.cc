#include "linalg/cg.h"

#include <cmath>

#include "util/check.h"

namespace impreg {

CgResult ConjugateGradient(const LinearOperator& a, const Vector& b,
                           const CgOptions& options) {
  const int n = a.Dimension();
  IMPREG_CHECK(static_cast<int>(b.size()) == n);

  CgResult result;
  result.x.assign(n, 0.0);

  Vector r = b;
  if (options.project_out != nullptr) ProjectOut(*options.project_out, r);
  const double b_norm = Norm2(r);
  if (b_norm == 0.0) {
    result.converged = true;
    return result;
  }
  const double threshold = options.relative_tolerance * b_norm;

  Vector p = r;
  Vector ap(n);
  double rr = Dot(r, r);
  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    a.Apply(p, ap);
    if (options.project_out != nullptr) ProjectOut(*options.project_out, ap);
    const double pap = Dot(p, ap);
    if (pap <= 0.0) break;  // Lost positive-definiteness numerically.
    const double alpha = rr / pap;
    Axpy(alpha, p, result.x);
    Axpy(-alpha, ap, r);
    if (options.project_out != nullptr) ProjectOut(*options.project_out, r);
    const double rr_new = Dot(r, r);
    result.iterations = iter;
    if (std::sqrt(rr_new) <= threshold) {
      result.converged = true;
      rr = rr_new;
      break;
    }
    const double beta = rr_new / rr;
    rr = rr_new;
    for (int i = 0; i < n; ++i) p[i] = r[i] + beta * p[i];
  }
  result.residual_norm = std::sqrt(rr);
  return result;
}

}  // namespace impreg
