#include "linalg/cg.h"

#include <cmath>

#include "core/metrics.h"
#include "core/trace.h"
#include "util/check.h"
#include "util/fault.h"

namespace impreg {

namespace {

/// Iterations between O(n) iterate checks/snapshots. The scalar
/// sentinels (pᵀAp, ‖r‖²) run every iteration for free — a NaN anywhere
/// in p, ap or r poisons those dot products — so the full AllFinite scan
/// only has to catch poison that entered x directly, and is amortized
/// over this window.
constexpr int kFiniteCheckInterval = 8;

}  // namespace

CgResult ConjugateGradient(const LinearOperator& a, const Vector& b,
                           const CgOptions& options) {
  const int n = a.Dimension();
  IMPREG_CHECK(static_cast<int>(b.size()) == n);

  CgResult result;
  result.x.assign(n, 0.0);
  SolverDiagnostics& diag = result.diagnostics;
  SolverTrace* trace = IMPREG_TRACE_BEGIN("cg");

  if (!AllFinite(b)) {
    diag.status = SolveStatus::kNonFinite;
    diag.detail = "right-hand side has non-finite entries; returning x = 0";
    IMPREG_TRACE_FINISH(trace, diag);
    return result;
  }

  Vector r = b;
  if (options.project_out != nullptr) ProjectOut(*options.project_out, r);
  const double b_norm = Norm2(r);
  if (b_norm == 0.0) {
    result.converged = true;
    diag.status = SolveStatus::kConverged;
    diag.detail = "zero right-hand side";
    IMPREG_TRACE_FINISH(trace, diag);
    return result;
  }
  const double threshold = options.relative_tolerance * b_norm;

  Vector p = r;
  Vector ap(n);
  double rr = Dot(r, r);
  // Last iterate verified finite, with its residual: what the caller
  // gets if the iteration produces a NaN/Inf.
  Vector snapshot = result.x;
  double snapshot_rr = rr;
  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    a.Apply(p, ap);
    IMPREG_FAULT_POINT("cg/ap", ap);
    if (options.project_out != nullptr) ProjectOut(*options.project_out, ap);
    double pap = Dot(p, ap);
    IMPREG_FAULT_POINT("cg/pap", pap);
    if (!std::isfinite(pap)) {
      diag.status = SolveStatus::kNonFinite;
      diag.detail =
          "curvature pᵀAp is non-finite; returning last finite iterate";
      IMPREG_TRACE_EVENT(trace, iter, kRollback, std::sqrt(snapshot_rr));
      result.x = snapshot;
      rr = snapshot_rr;
      break;
    }
    if (pap <= 0.0) {
      // Lost positive-definiteness numerically; x is still the best
      // iterate produced so far.
      diag.status = SolveStatus::kBreakdown;
      diag.detail = "curvature pᵀAp ≤ 0: operator is not positive definite "
                    "on the search space; returning best iterate";
      IMPREG_TRACE_EVENT(trace, iter, kFault, pap);
      break;
    }
    const double alpha = rr / pap;
    Axpy(alpha, p, result.x);
    IMPREG_FAULT_POINT("cg/x", result.x);
    Axpy(-alpha, ap, r);
    if (options.project_out != nullptr) ProjectOut(*options.project_out, r);
    double rr_new = Dot(r, r);
    IMPREG_FAULT_POINT("cg/rho", rr_new);
    result.iterations = iter;
    if (!std::isfinite(rr_new)) {
      diag.status = SolveStatus::kNonFinite;
      diag.detail =
          "residual norm is non-finite; returning last finite iterate";
      IMPREG_TRACE_EVENT(trace, iter, kRollback, std::sqrt(snapshot_rr));
      result.x = snapshot;
      rr = snapshot_rr;
      break;
    }
    diag.RecordResidual(std::sqrt(rr_new));
    IMPREG_TRACE_EVENT(trace, iter, kResidual, std::sqrt(rr_new));
    if (std::sqrt(rr_new) <= threshold) {
      result.converged = true;
      rr = rr_new;
      break;
    }
    if (iter % kFiniteCheckInterval == 0) {
      if (!AllFinite(result.x)) {
        diag.status = SolveStatus::kNonFinite;
        diag.detail =
            "iterate has non-finite entries; returning last finite iterate";
        IMPREG_TRACE_EVENT(trace, iter, kRollback, std::sqrt(snapshot_rr));
        result.x = snapshot;
        rr = snapshot_rr;
        break;
      }
      snapshot = result.x;
      snapshot_rr = rr_new;
    }
    const double beta = rr_new / rr;
    rr = rr_new;
    for (int i = 0; i < n; ++i) p[i] = r[i] + beta * p[i];
  }

  // Final gate: never hand back poison, even if it entered between the
  // amortized checks (e.g. on the converging step itself).
  if (diag.status == SolveStatus::kMaxIterations && !AllFinite(result.x)) {
    diag.status = SolveStatus::kNonFinite;
    diag.detail =
        "iterate has non-finite entries; returning last finite iterate";
    IMPREG_TRACE_EVENT(trace, result.iterations, kRollback,
                       std::sqrt(snapshot_rr));
    result.x = snapshot;
    rr = snapshot_rr;
    result.converged = false;
  }
  if (result.converged) {
    diag.status = SolveStatus::kConverged;
  } else if (diag.status == SolveStatus::kMaxIterations &&
             diag.detail.empty()) {
    diag.detail = "iteration cap hit; iterate is the early-stopped answer";
  }
  result.residual_norm = std::sqrt(rr);
  diag.iterations = result.iterations;
  diag.final_residual = result.residual_norm;
  IMPREG_TRACE_FINISH(trace, diag);
  IMPREG_METRIC_COUNT("solver.cg.solves", 1);
  IMPREG_METRIC_COUNT("solver.cg.iterations", result.iterations);
  return result;
}

}  // namespace impreg
