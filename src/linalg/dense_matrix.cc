#include "linalg/dense_matrix.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "linalg/tridiagonal.h"
#include "util/check.h"

namespace impreg {

DenseMatrix::DenseMatrix(int rows, int cols, double init)
    : rows_(rows), cols_(cols) {
  IMPREG_CHECK(rows >= 0 && cols >= 0);
  data_.assign(static_cast<std::size_t>(rows) * cols, init);
}

DenseMatrix DenseMatrix::Identity(int n) {
  DenseMatrix m(n, n);
  for (int i = 0; i < n; ++i) m.At(i, i) = 1.0;
  return m;
}

DenseMatrix DenseMatrix::OuterProduct(const Vector& v, double scale) {
  const int n = static_cast<int>(v.size());
  DenseMatrix m(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) m.At(i, j) = scale * v[i] * v[j];
  }
  return m;
}

Vector DenseMatrix::Apply(const Vector& x) const {
  IMPREG_CHECK(static_cast<int>(x.size()) == cols_);
  Vector y(rows_, 0.0);
  for (int i = 0; i < rows_; ++i) {
    double sum = 0.0;
    for (int j = 0; j < cols_; ++j) sum += At(i, j) * x[j];
    y[i] = sum;
  }
  return y;
}

DenseMatrix DenseMatrix::Multiply(const DenseMatrix& other) const {
  IMPREG_CHECK(cols_ == other.rows_);
  DenseMatrix out(rows_, other.cols_);
  for (int i = 0; i < rows_; ++i) {
    for (int k = 0; k < cols_; ++k) {
      const double a = At(i, k);
      if (a == 0.0) continue;
      for (int j = 0; j < other.cols_; ++j) {
        out.At(i, j) += a * other.At(k, j);
      }
    }
  }
  return out;
}

DenseMatrix DenseMatrix::Transposed() const {
  DenseMatrix out(cols_, rows_);
  for (int i = 0; i < rows_; ++i) {
    for (int j = 0; j < cols_; ++j) out.At(j, i) = At(i, j);
  }
  return out;
}

DenseMatrix& DenseMatrix::AddScaled(const DenseMatrix& other, double s) {
  IMPREG_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += s * other.data_[i];
  return *this;
}

DenseMatrix& DenseMatrix::ScaleBy(double s) {
  for (double& v : data_) v *= s;
  return *this;
}

double DenseMatrix::Trace() const {
  IMPREG_CHECK(rows_ == cols_);
  double sum = 0.0;
  for (int i = 0; i < rows_; ++i) sum += At(i, i);
  return sum;
}

double DenseMatrix::FrobeniusNorm() const {
  double sum = 0.0;
  for (double v : data_) sum += v * v;
  return std::sqrt(sum);
}

double DenseMatrix::SymmetryDefect() const {
  IMPREG_CHECK(rows_ == cols_);
  double worst = 0.0;
  for (int i = 0; i < rows_; ++i) {
    for (int j = i + 1; j < cols_; ++j) {
      worst = std::max(worst, std::abs(At(i, j) - At(j, i)));
    }
  }
  return worst;
}

Vector DenseMatrix::Column(int j) const {
  IMPREG_CHECK(j >= 0 && j < cols_);
  Vector col(rows_);
  for (int i = 0; i < rows_; ++i) col[i] = At(i, j);
  return col;
}

double TraceOfProduct(const DenseMatrix& a, const DenseMatrix& b) {
  IMPREG_CHECK(a.Rows() == a.Cols() && b.Rows() == b.Cols());
  IMPREG_CHECK(a.Rows() == b.Rows());
  double sum = 0.0;
  for (int i = 0; i < a.Rows(); ++i) {
    for (int j = 0; j < a.Cols(); ++j) sum += a.At(i, j) * b.At(j, i);
  }
  return sum;
}

SymmetricEigen SymmetricEigendecomposition(const DenseMatrix& input) {
  IMPREG_CHECK(input.Rows() == input.Cols());
  IMPREG_CHECK_MSG(input.SymmetryDefect() <=
                       1e-9 * (1.0 + input.FrobeniusNorm()),
                   "matrix is not symmetric");
  const int n = input.Rows();
  DenseMatrix a = input;
  DenseMatrix v = DenseMatrix::Identity(n);

  // Cyclic Jacobi: sweep all (p, q) pairs, rotating away off-diagonal
  // entries, until the off-diagonal mass is negligible.
  const int kMaxSweeps = 100;
  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    double off = 0.0;
    for (int p = 0; p < n; ++p) {
      for (int q = p + 1; q < n; ++q) off += a.At(p, q) * a.At(p, q);
    }
    if (off <= 1e-30 * (1.0 + a.FrobeniusNorm())) break;
    for (int p = 0; p < n; ++p) {
      for (int q = p + 1; q < n; ++q) {
        const double apq = a.At(p, q);
        if (std::abs(apq) <=
            1e-18 * (std::abs(a.At(p, p)) + std::abs(a.At(q, q)))) {
          continue;
        }
        const double theta = (a.At(q, q) - a.At(p, p)) / (2.0 * apq);
        const double t =
            (theta >= 0.0 ? 1.0 : -1.0) /
            (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // A ← JᵀAJ with the rotation in the (p, q) plane.
        for (int k = 0; k < n; ++k) {
          const double akp = a.At(k, p);
          const double akq = a.At(k, q);
          a.At(k, p) = c * akp - s * akq;
          a.At(k, q) = s * akp + c * akq;
        }
        for (int k = 0; k < n; ++k) {
          const double apk = a.At(p, k);
          const double aqk = a.At(q, k);
          a.At(p, k) = c * apk - s * aqk;
          a.At(q, k) = s * apk + c * aqk;
        }
        for (int k = 0; k < n; ++k) {
          const double vkp = v.At(k, p);
          const double vkq = v.At(k, q);
          v.At(k, p) = c * vkp - s * vkq;
          v.At(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort ascending, permuting eigenvector columns along.
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](int i, int j) { return a.At(i, i) < a.At(j, j); });
  SymmetricEigen out;
  out.eigenvalues.resize(n);
  out.eigenvectors = DenseMatrix(n, n);
  for (int j = 0; j < n; ++j) {
    out.eigenvalues[j] = a.At(order[j], order[j]);
    for (int i = 0; i < n; ++i) {
      out.eigenvectors.At(i, j) = v.At(i, order[j]);
    }
  }
  return out;
}

DenseMatrix ApplySpectralFunction(const SymmetricEigen& eigen,
                                  const std::function<double(double)>& f) {
  const int n = static_cast<int>(eigen.eigenvalues.size());
  DenseMatrix out(n, n);
  // out = Σ_k f(λ_k) v_k v_kᵀ.
  for (int k = 0; k < n; ++k) {
    const double fk = f(eigen.eigenvalues[k]);
    if (fk == 0.0) continue;
    for (int i = 0; i < n; ++i) {
      const double vik = eigen.eigenvectors.At(i, k);
      if (vik == 0.0) continue;
      for (int j = 0; j < n; ++j) {
        out.At(i, j) += fk * vik * eigen.eigenvectors.At(j, k);
      }
    }
  }
  return out;
}


SymmetricEigen SymmetricEigendecompositionFast(const DenseMatrix& input) {
  IMPREG_CHECK(input.Rows() == input.Cols());
  IMPREG_CHECK_MSG(input.SymmetryDefect() <=
                       1e-9 * (1.0 + input.FrobeniusNorm()),
                   "matrix is not symmetric");
  const int n = input.Rows();
  if (n == 0) return SymmetricEigen{};
  if (n == 1) {
    SymmetricEigen out;
    out.eigenvalues = {input.At(0, 0)};
    out.eigenvectors = DenseMatrix::Identity(1);
    return out;
  }

  // Householder reduction A -> Q^T A Q = tridiagonal(d, e).
  DenseMatrix a = input;
  DenseMatrix q = DenseMatrix::Identity(n);
  Vector v(n), u(n), qv(n);
  for (int k = 0; k + 2 < n; ++k) {
    // Column below the subdiagonal.
    double norm_sq = 0.0;
    for (int i = k + 1; i < n; ++i) norm_sq += a.At(i, k) * a.At(i, k);
    const double norm = std::sqrt(norm_sq);
    if (norm <= 1e-300) continue;  // Already tridiagonal here.
    const double x0 = a.At(k + 1, k);
    const double alpha = x0 >= 0.0 ? -norm : norm;
    // v = x - alpha*e1, normalized; supported on [k+1, n).
    std::fill(v.begin(), v.end(), 0.0);
    v[k + 1] = x0 - alpha;
    for (int i = k + 2; i < n; ++i) v[i] = a.At(i, k);
    double v_norm = 0.0;
    for (int i = k + 1; i < n; ++i) v_norm += v[i] * v[i];
    v_norm = std::sqrt(v_norm);
    if (v_norm <= 1e-300) continue;
    for (int i = k + 1; i < n; ++i) v[i] /= v_norm;

    // Symmetric two-sided update of the trailing block:
    // A <- A - 2 v u^T - 2 u v^T + 4 (v^T u) v v^T with u = A v.
    for (int i = k; i < n; ++i) {
      double sum = 0.0;
      for (int j = k + 1; j < n; ++j) sum += a.At(i, j) * v[j];
      u[i] = sum;
    }
    double c = 0.0;
    for (int i = k + 1; i < n; ++i) c += v[i] * u[i];
    for (int i = k; i < n; ++i) {
      const double vi = i >= k + 1 ? v[i] : 0.0;
      for (int j = k; j < n; ++j) {
        const double vj = j >= k + 1 ? v[j] : 0.0;
        a.At(i, j) += -2.0 * vi * u[j] - 2.0 * u[i] * vj +
                      4.0 * c * vi * vj;
      }
    }
    // Accumulate Q <- Q H (H = I - 2 v v^T).
    for (int i = 0; i < n; ++i) {
      double sum = 0.0;
      for (int j = k + 1; j < n; ++j) sum += q.At(i, j) * v[j];
      qv[i] = sum;
    }
    for (int i = 0; i < n; ++i) {
      for (int j = k + 1; j < n; ++j) {
        q.At(i, j) -= 2.0 * qv[i] * v[j];
      }
    }
  }

  Vector diag(n), off(n - 1);
  for (int i = 0; i < n; ++i) diag[i] = a.At(i, i);
  for (int i = 0; i + 1 < n; ++i) off[i] = a.At(i + 1, i);
  const SymmetricEigen tri = TridiagonalEigendecomposition(diag, off);

  SymmetricEigen out;
  out.eigenvalues = tri.eigenvalues;
  out.eigenvectors = q.Multiply(tri.eigenvectors);
  return out;
}

DenseMatrix DenseAdjacency(const Graph& g) {
  const int n = g.NumNodes();
  DenseMatrix m(n, n);
  for (NodeId u = 0; u < n; ++u) {
    const auto heads = g.Heads(u);
    const auto weights = g.Weights(u);
    for (std::size_t i = 0; i < heads.size(); ++i) {
      m.At(u, heads[i]) += weights[i];
    }
  }
  return m;
}

DenseMatrix DenseCombinatorialLaplacian(const Graph& g) {
  const int n = g.NumNodes();
  DenseMatrix m(n, n);
  for (NodeId u = 0; u < n; ++u) {
    m.At(u, u) = g.Degree(u);
    const auto heads = g.Heads(u);
    const auto weights = g.Weights(u);
    for (std::size_t i = 0; i < heads.size(); ++i) {
      m.At(u, heads[i]) -= weights[i];
    }
  }
  return m;
}

DenseMatrix DenseNormalizedLaplacian(const Graph& g) {
  const int n = g.NumNodes();
  DenseMatrix m(n, n);
  Vector inv_sqrt(n, 0.0);
  for (NodeId u = 0; u < n; ++u) {
    if (g.Degree(u) > 0.0) inv_sqrt[u] = 1.0 / std::sqrt(g.Degree(u));
  }
  for (NodeId u = 0; u < n; ++u) {
    if (inv_sqrt[u] == 0.0) continue;
    m.At(u, u) = 1.0;
    const auto heads = g.Heads(u);
    const auto weights = g.Weights(u);
    for (std::size_t i = 0; i < heads.size(); ++i) {
      m.At(u, heads[i]) -= weights[i] * inv_sqrt[u] * inv_sqrt[heads[i]];
    }
  }
  return m;
}

}  // namespace impreg
