#ifndef IMPREG_LINALG_CG_H_
#define IMPREG_LINALG_CG_H_

#include "core/solve_status.h"
#include "linalg/operator.h"

/// \file
/// Conjugate gradient for symmetric positive (semi)definite systems.
/// Used for the "exact" Personalized PageRank solves (§3.3's
/// optimization approach) and for Laplacian systems, where the
/// singularity along 1 (or D^{1/2}1) is handled by projecting it out of
/// the residual at every step.

namespace impreg {

/// Options for ConjugateGradient.
struct CgOptions {
  int max_iterations = 2000;
  /// Convergence: ‖r‖₂ ≤ tolerance · ‖b‖₂.
  double relative_tolerance = 1e-10;
  /// If non-null, the solve is restricted to the orthogonal complement
  /// of this vector (for singular SPD systems whose null space it
  /// spans). The pointee must outlive the call.
  const Vector* project_out = nullptr;
};

/// Result of a CG solve. `x` is always finite: on a non-finite event the
/// solve stops with diagnostics.status = kNonFinite and returns the last
/// iterate that was verified finite.
struct CgResult {
  Vector x;
  int iterations = 0;
  double residual_norm = 0.0;
  /// Kept in sync with diagnostics.status == kConverged.
  bool converged = false;
  SolverDiagnostics diagnostics;
};

/// Solves A x = b for symmetric positive (semi)definite A.
CgResult ConjugateGradient(const LinearOperator& a, const Vector& b,
                           const CgOptions& options = {});

}  // namespace impreg

#endif  // IMPREG_LINALG_CG_H_
