#ifndef IMPREG_LINALG_OPERATOR_H_
#define IMPREG_LINALG_OPERATOR_H_

#include <vector>

#include "linalg/vector_ops.h"

/// \file
/// Abstract linear operator: the interface every iterative method in the
/// library (power method, Lanczos, CG, diffusions) is written against.
/// An operator only ever has to provide y = Ax, which is what keeps the
/// sparse graph matrices sparse — the paper's point about the Power
/// Method at Web scale (§3.1).

namespace impreg {

/// A real square linear operator of fixed dimension.
class LinearOperator {
 public:
  virtual ~LinearOperator() = default;

  /// The dimension n (operator maps R^n → R^n).
  virtual int Dimension() const = 0;

  /// Computes y = A x. `y` is resized as needed; x and y must not alias.
  virtual void Apply(const Vector& x, Vector& y) const = 0;

  /// Convenience: returns A x by value.
  Vector Apply(const Vector& x) const {
    Vector y;
    Apply(x, y);
    return y;
  }

  /// Computes ys[j] = A xs[j] for every column j (SpMM). The base
  /// implementation loops Apply; operators whose matrix lives in memory
  /// (the CSR graph operators) override it with a register-blocked
  /// kernel that streams the adjacency *once* for all k right-hand
  /// sides. Column j of the result is bit-identical to Apply(xs[j]) at
  /// every thread count. `ys` is resized as needed; xs and ys must not
  /// alias.
  virtual void ApplyBatch(const std::vector<Vector>& xs,
                          std::vector<Vector>& ys) const {
    ys.resize(xs.size());
    for (std::size_t j = 0; j < xs.size(); ++j) Apply(xs[j], ys[j]);
  }

  /// Convenience: returns the k columns A xs[j] by value.
  std::vector<Vector> ApplyBatch(const std::vector<Vector>& xs) const {
    std::vector<Vector> ys;
    ApplyBatch(xs, ys);
    return ys;
  }

  /// The Rayleigh quotient xᵀAx / xᵀx (0 for the zero vector).
  double RayleighQuotient(const Vector& x) const;
};

/// The operator a·A + b·I built from another operator (no copies).
class ShiftedOperator : public LinearOperator {
 public:
  /// Represents a·inner + b·I. `inner` must outlive this object.
  ShiftedOperator(const LinearOperator& inner, double a, double b)
      : inner_(inner), a_(a), b_(b) {}

  using LinearOperator::ApplyBatch;  // Un-hide the by-value form.
  int Dimension() const override { return inner_.Dimension(); }
  void Apply(const Vector& x, Vector& y) const override;
  void ApplyBatch(const std::vector<Vector>& xs,
                  std::vector<Vector>& ys) const override;

 private:
  const LinearOperator& inner_;
  double a_;
  double b_;
};

}  // namespace impreg

#endif  // IMPREG_LINALG_OPERATOR_H_
