#ifndef IMPREG_LINALG_LANCZOS_H_
#define IMPREG_LINALG_LANCZOS_H_

#include <cstdint>
#include <vector>

#include "core/solve_status.h"
#include "linalg/operator.h"

/// \file
/// Lanczos iteration with full reorthogonalization.
///
/// Footnote 15 of the paper: "Lanczos algorithms look at a subspace of
/// vectors generated during the iteration" — this is the production-
/// grade variant of the Power Method used for the exact side of every
/// comparison (exact v₂, exact heat-kernel action).

namespace impreg {

/// Options for LanczosSmallest / LanczosLargest.
struct LanczosOptions {
  /// Maximum Krylov dimension (and matvec count).
  int max_iterations = 300;
  /// Ritz-pair residual tolerance for declaring convergence.
  double tolerance = 1e-10;
  /// Seed for the random start vector.
  std::uint64_t seed = 0x1a2b3c4dULL;
  /// Vectors to deflate: the Krylov space is kept orthogonal to these
  /// (e.g. the trivial eigenvector D^{1/2}1 when targeting v₂ of ℒ).
  std::vector<Vector> deflate;
};

/// Result of a Lanczos run.
struct LanczosResult {
  /// The k requested eigenvalues (ascending for Smallest, descending for
  /// Largest).
  Vector eigenvalues;
  /// Matching Ritz vectors (unit length, mutually orthogonal).
  std::vector<Vector> eigenvectors;
  /// Explicit residual norms ‖A vᵢ − λᵢ vᵢ‖ of the returned pairs,
  /// computed with a single batched SpMM (`ApplyBatch`) over all Ritz
  /// vectors — one adjacency traversal instead of one per pair.
  Vector residuals;
  /// Krylov dimension actually built.
  int iterations = 0;
  /// True if all k Ritz pairs met the residual tolerance. Kept in sync
  /// with diagnostics.status == kConverged.
  bool converged = false;
  /// kBreakdown: the deflated start vector vanished — the reachable
  /// subspace holds fewer than k pairs (whatever was found is returned).
  /// kNonFinite: poison entered the recurrence — the basis built before
  /// the event is used and the partial (finite) Ritz pairs returned.
  SolverDiagnostics diagnostics;
};

/// Computes the k algebraically smallest eigenpairs of a symmetric
/// operator (restricted to the complement of the deflated vectors).
LanczosResult LanczosSmallest(const LinearOperator& op, int k,
                              const LanczosOptions& options = {});

/// Computes the k algebraically largest eigenpairs.
LanczosResult LanczosLargest(const LinearOperator& op, int k,
                             const LanczosOptions& options = {});

/// Krylov approximation of the matrix exponential action
/// y ≈ exp(scale · op) · v using a basis of dimension ≤ krylov_dim.
/// For symmetric op with spectrum in [0, 2] and scale = −t this is the
/// Heat Kernel H_t v of §3.1. Accuracy improves rapidly with krylov_dim
/// (≈30–60 suffices for machine precision at moderate t). If
/// `diagnostics` is non-null it receives the solve outcome; the
/// returned vector is always finite (zero on kNonFinite when no finite
/// prefix of the Krylov basis survived).
Vector KrylovExpMultiply(const LinearOperator& op, double scale,
                         const Vector& v, int krylov_dim = 60,
                         SolverDiagnostics* diagnostics = nullptr);

}  // namespace impreg

#endif  // IMPREG_LINALG_LANCZOS_H_
