#ifndef IMPREG_LINALG_DENSE_MATRIX_H_
#define IMPREG_LINALG_DENSE_MATRIX_H_

#include <functional>
#include <vector>

#include "graph/graph.h"
#include "linalg/vector_ops.h"

/// \file
/// Small dense matrices and a symmetric eigensolver.
///
/// The regularized SDPs of the paper's Problem (5) have closed-form
/// optima that are spectral functions of the normalized Laplacian
/// (Gibbs, inverse and power densities). Verifying the implicit-
/// regularization correspondence therefore needs exact dense
/// eigendecompositions on moderate graphs; cyclic Jacobi is simple,
/// backward-stable and accurate to machine precision, which is what a
/// ground-truth oracle should be.

namespace impreg {

/// Row-major dense real matrix.
class DenseMatrix {
 public:
  /// rows × cols matrix filled with `init`.
  DenseMatrix(int rows, int cols, double init = 0.0);

  /// 0 × 0 matrix.
  DenseMatrix() : rows_(0), cols_(0) {}

  DenseMatrix(const DenseMatrix&) = default;
  DenseMatrix& operator=(const DenseMatrix&) = default;
  DenseMatrix(DenseMatrix&&) = default;
  DenseMatrix& operator=(DenseMatrix&&) = default;

  /// The n × n identity.
  static DenseMatrix Identity(int n);

  /// Builds a matrix from the outer product scale·v vᵀ.
  static DenseMatrix OuterProduct(const Vector& v, double scale = 1.0);

  int Rows() const { return rows_; }
  int Cols() const { return cols_; }

  double& At(int i, int j) { return data_[Index(i, j)]; }
  double At(int i, int j) const { return data_[Index(i, j)]; }

  /// y = M x.
  Vector Apply(const Vector& x) const;

  /// Returns M · other.
  DenseMatrix Multiply(const DenseMatrix& other) const;

  /// Returns Mᵀ.
  DenseMatrix Transposed() const;

  /// In place: M ← M + s·other (same shape required).
  DenseMatrix& AddScaled(const DenseMatrix& other, double s);

  /// In place: M ← s·M.
  DenseMatrix& ScaleBy(double s);

  /// Σᵢ Mᵢᵢ (square matrices only).
  double Trace() const;

  /// √Σ Mᵢⱼ².
  double FrobeniusNorm() const;

  /// max |Mᵢⱼ − Mⱼᵢ| (square matrices only).
  double SymmetryDefect() const;

  /// Column j as a vector.
  Vector Column(int j) const;

 private:
  std::size_t Index(int i, int j) const {
    return static_cast<std::size_t>(i) * cols_ + j;
  }

  int rows_;
  int cols_;
  std::vector<double> data_;
};

/// Tr(A·B) for same-shape square matrices, computed without forming the
/// product (= Σᵢⱼ Aᵢⱼ Bⱼᵢ).
double TraceOfProduct(const DenseMatrix& a, const DenseMatrix& b);

/// Eigendecomposition of a symmetric matrix: M = V diag(λ) Vᵀ with
/// eigenvalues ascending and V's columns the corresponding orthonormal
/// eigenvectors.
struct SymmetricEigen {
  Vector eigenvalues;
  DenseMatrix eigenvectors;
};

/// Cyclic Jacobi eigensolver. Requires a square, (numerically) symmetric
/// matrix; converges to machine precision.
SymmetricEigen SymmetricEigendecomposition(const DenseMatrix& m);

/// Householder-tridiagonalization + implicit-QL eigensolver: the
/// standard O(n³) dense symmetric path (one reduction, then the
/// tridiagonal solve) — markedly faster than cyclic Jacobi for n ≳ 60
/// while matching it to ~1e-10. Same contract as
/// SymmetricEigendecomposition.
SymmetricEigen SymmetricEigendecompositionFast(const DenseMatrix& m);

/// Builds f(M) = V diag(f(λ)) Vᵀ from a precomputed decomposition.
DenseMatrix ApplySpectralFunction(const SymmetricEigen& eigen,
                                  const std::function<double(double)>& f);

/// Dense A of a graph.
DenseMatrix DenseAdjacency(const Graph& g);

/// Dense L = D − A.
DenseMatrix DenseCombinatorialLaplacian(const Graph& g);

/// Dense ℒ = I − D^{-1/2} A D^{-1/2} (isolated nodes: zero row/column).
DenseMatrix DenseNormalizedLaplacian(const Graph& g);

}  // namespace impreg

#endif  // IMPREG_LINALG_DENSE_MATRIX_H_
