#include "linalg/lanczos.h"

#include <algorithm>
#include <cmath>

#include "core/metrics.h"
#include "core/trace.h"
#include "linalg/tridiagonal.h"
#include "util/check.h"
#include "util/fault.h"
#include "util/rng.h"

namespace impreg {

namespace {

// Orthogonalizes x against every vector in `basis` (twice, for numerical
// robustness — the classical "twice is enough" rule).
void Reorthogonalize(const std::vector<Vector>& basis, Vector& x) {
  for (int pass = 0; pass < 2; ++pass) {
    for (const Vector& q : basis) {
      const double coeff = Dot(q, x);
      if (coeff != 0.0) Axpy(-coeff, q, x);
    }
  }
}

// Draws a fresh Gaussian vector orthogonal to `deflate` and `basis`,
// normalized. Retries a few fresh draws (the rng keeps advancing, so
// the whole procedure is deterministic); returns false when every draw
// vanished under projection, i.e. the reachable subspace is exhausted.
bool DrawOrthogonalStart(Rng& rng, const std::vector<Vector>& deflate,
                         const std::vector<Vector>& basis, Vector& q) {
  for (int attempt = 0; attempt < 3; ++attempt) {
    for (double& v : q) v = rng.NextGaussian();
    Reorthogonalize(deflate, q);
    Reorthogonalize(basis, q);
    if (Normalize(q) > 1e-12) return true;
  }
  return false;
}

LanczosResult RunLanczos(const LinearOperator& op, int k, bool smallest,
                         const LanczosOptions& options) {
  const int n = op.Dimension();
  IMPREG_CHECK(k >= 1);
  IMPREG_CHECK(n >= 1);
  const int max_dim = std::min(options.max_iterations, n);
  IMPREG_CHECK(max_dim >= 1);

  LanczosResult result;
  SolverDiagnostics& diag = result.diagnostics;
  SolverTrace* trace = IMPREG_TRACE_BEGIN("lanczos");

  // Normalized copies of the deflation vectors.
  std::vector<Vector> deflate;
  for (const Vector& d : options.deflate) {
    IMPREG_CHECK(static_cast<int>(d.size()) == n);
    Vector copy = d;
    Reorthogonalize(deflate, copy);
    if (Normalize(copy) > 1e-12) deflate.push_back(std::move(copy));
  }

  // Random start vector, deflated. If it vanishes the deflated vectors
  // already span everything reachable: a breakdown, not an abort — the
  // deflated driver (RunDeflated) hits this when asked for more pairs
  // than the complement holds.
  Rng rng(options.seed);
  Vector q(n);
  if (!DrawOrthogonalStart(rng, deflate, /*basis=*/{}, q)) {
    diag.status = SolveStatus::kBreakdown;
    diag.detail = "start vector vanished under deflation: the deflated "
                  "subspace spans the space; no pairs computed";
    IMPREG_TRACE_FINISH(trace, diag);
    return result;
  }

  std::vector<Vector> basis;
  basis.reserve(max_dim);
  Vector alpha, beta;  // Tridiagonal entries.
  Vector w(n);

  SymmetricEigen tri_eigen;
  for (int m = 0; m < max_dim; ++m) {
    basis.push_back(q);
    op.Apply(basis[m], w);
    IMPREG_FAULT_POINT("lanczos/w", w);
    double a = Dot(basis[m], w);
    IMPREG_FAULT_POINT("lanczos/alpha", a);
    if (!std::isfinite(a)) {
      // Poison in w (the dot product inherits any NaN/Inf). Drop this
      // step; the basis built so far is still finite and orthonormal.
      diag.status = SolveStatus::kNonFinite;
      diag.detail = "non-finite Lanczos diagonal entry; returning Ritz "
                    "pairs of the finite Krylov prefix";
      IMPREG_TRACE_EVENT(trace, m + 1, kRollback, a);
      tri_eigen = SymmetricEigen{};
      break;
    }
    alpha.push_back(a);
    // w ← w − a·q_m − b_{m-1}·q_{m-1}, then full reorthogonalization.
    Axpy(-a, basis[m], w);
    if (m > 0) Axpy(-beta[m - 1], basis[m - 1], w);
    Reorthogonalize(deflate, w);
    Reorthogonalize(basis, w);
    double b = Norm2(w);
    IMPREG_FAULT_POINT("lanczos/beta", b);
    if (!std::isfinite(b)) {
      diag.status = SolveStatus::kNonFinite;
      diag.detail = "non-finite Lanczos off-diagonal entry; returning "
                    "Ritz pairs of the finite Krylov prefix";
      IMPREG_TRACE_EVENT(trace, m + 1, kRollback, b);
      tri_eigen = SymmetricEigen{};
      break;
    }

    // Convergence test every few steps once we have k Ritz values.
    const bool last = (m + 1 == max_dim) || b <= 1e-13;
    if (m + 1 >= k && ((m + 1) % 5 == 0 || last)) {
      Vector off(beta.begin(), beta.end());
      tri_eigen = TridiagonalEigendecomposition(alpha, off);
      // Residual of Ritz pair i is |b · s_{m,i}| where s is the last row
      // of the tridiagonal eigenvector.
      bool all_ok = true;
      for (int i = 0; i < k; ++i) {
        const int col = smallest ? i : m - i;  // m+1 values, index m = top.
        const double resid = std::abs(b * tri_eigen.eigenvectors.At(m, col));
        if (resid > options.tolerance) {
          all_ok = false;
          break;
        }
      }
      if (all_ok || last) {
        result.converged = all_ok;
        break;
      }
    }
    if (b <= 1e-13) {
      // β ≈ 0 with fewer than k values: the Krylov space hit an
      // invariant subspace early. Restart with a fresh direction
      // orthogonal to everything built so far (deterministic — the rng
      // just keeps advancing); β = 0 cleanly decouples the blocks of
      // the tridiagonal matrix. If no direction survives, the reachable
      // space is exhausted: report the pairs found as a breakdown.
      if (DrawOrthogonalStart(rng, deflate, basis, w)) {
        // A restart event: β ≈ 0 forced a fresh Krylov direction.
        IMPREG_TRACE_EVENT(trace, m + 1, kPhase, b);
        tri_eigen = SymmetricEigen{};
        b = 0.0;
      } else {
        Vector off(beta.begin(), beta.end());
        tri_eigen = TridiagonalEigendecomposition(alpha, off);
        diag.status = SolveStatus::kBreakdown;
        diag.detail = "invariant subspace exhausted before k pairs";
        IMPREG_TRACE_EVENT(trace, m + 1, kFault, b);
        result.converged = false;
        break;
      }
    }
    beta.push_back(b);
    q = w;
    if (b > 0.0) Scale(1.0 / b, q);
  }
  const int dim = static_cast<int>(alpha.size());
  if (dim == 0) {
    // Poison on the very first step: nothing usable was built.
    IMPREG_TRACE_FINISH(trace, diag);
    return result;
  }
  if (tri_eigen.eigenvalues.empty()) {
    Vector off(beta.begin(), beta.begin() + (dim - 1));
    Vector diagonal(alpha.begin(), alpha.begin() + dim);
    tri_eigen = TridiagonalEigendecomposition(diagonal, off);
  }

  const int num_out = std::min(k, dim);
  result.iterations = dim;
  result.eigenvalues.resize(num_out);
  result.eigenvectors.assign(num_out, Vector(n, 0.0));
  for (int i = 0; i < num_out; ++i) {
    const int col = smallest ? i : dim - 1 - i;
    result.eigenvalues[i] = tri_eigen.eigenvalues[col];
    Vector& ritz = result.eigenvectors[i];
    for (int j = 0; j < dim; ++j) {
      const double s = tri_eigen.eigenvectors.At(j, col);
      if (s != 0.0) Axpy(s, basis[j], ritz);
    }
    Normalize(ritz);
  }
  // Explicit residuals ‖A vᵢ − λᵢ vᵢ‖, all pairs in one SpMM.
  std::vector<Vector> av;
  op.ApplyBatch(result.eigenvectors, av);
  result.residuals.resize(num_out);
  for (int i = 0; i < num_out; ++i) {
    Axpy(-result.eigenvalues[i], result.eigenvectors[i], av[i]);
    result.residuals[i] = Norm2(av[i]);
    diag.RecordResidual(result.residuals[i]);
    IMPREG_TRACE_EVENT(trace, i + 1, kResidual, result.residuals[i]);
    if (!std::isfinite(result.residuals[i]) && diag.usable()) {
      diag.status = SolveStatus::kNonFinite;
      diag.detail = "non-finite Ritz residual (operator produced poison "
                    "on the verification matvec)";
      result.converged = false;
    }
  }
  if (result.converged) diag.status = SolveStatus::kConverged;
  diag.iterations = result.iterations;
  IMPREG_TRACE_FINISH(trace, diag);
  IMPREG_METRIC_COUNT("solver.lanczos.solves", 1);
  IMPREG_METRIC_COUNT("solver.lanczos.iterations", result.iterations);
  return result;
}

// Computes k extreme eigenpairs by sequential single-pair runs with
// deflation restarts. A single Krylov sequence can only ever produce
// one Ritz vector per *distinct* eigenvalue (the start vector has one
// component in each eigenspace), so multiplicities — ubiquitous in
// graphs with symmetry, e.g. rings of cliques — require re-running with
// the found vectors deflated.
LanczosResult RunDeflated(const LinearOperator& op, int k, bool smallest,
                          const LanczosOptions& options) {
  LanczosResult total;
  total.converged = true;
  LanczosOptions current = options;
  SolveStatus merged = SolveStatus::kConverged;
  for (int i = 0; i < k; ++i) {
    const LanczosResult one = RunLanczos(op, 1, smallest, current);
    merged = MergeStatus(merged, one.diagnostics.status);
    if (!one.diagnostics.usable() && total.diagnostics.detail.empty()) {
      total.diagnostics.detail = one.diagnostics.detail;
    }
    if (one.eigenvectors.empty()) break;
    total.eigenvalues.push_back(one.eigenvalues.front());
    total.eigenvectors.push_back(one.eigenvectors.front());
    total.residuals.push_back(one.residuals.front());
    total.iterations += one.iterations;
    total.converged = total.converged && one.converged;
    current.deflate.push_back(one.eigenvectors.front());
    current.seed += 0x9e3779b9ULL;  // Fresh start vector per pair.
  }
  total.converged =
      total.converged && static_cast<int>(total.eigenvalues.size()) == k;
  // Near-degenerate pairs can come back marginally out of order.
  std::vector<int> order(total.eigenvalues.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return smallest ? total.eigenvalues[a] < total.eigenvalues[b]
                    : total.eigenvalues[a] > total.eigenvalues[b];
  });
  LanczosResult sorted;
  sorted.iterations = total.iterations;
  sorted.converged = total.converged;
  sorted.diagnostics = std::move(total.diagnostics);
  sorted.diagnostics.status =
      sorted.converged ? SolveStatus::kConverged
                       : MergeStatus(merged, SolveStatus::kMaxIterations);
  sorted.diagnostics.iterations = sorted.iterations;
  for (int idx : order) {
    sorted.eigenvalues.push_back(total.eigenvalues[idx]);
    sorted.eigenvectors.push_back(std::move(total.eigenvectors[idx]));
    sorted.residuals.push_back(total.residuals[idx]);
  }
  return sorted;
}

}  // namespace

LanczosResult LanczosSmallest(const LinearOperator& op, int k,
                              const LanczosOptions& options) {
  if (k == 1) return RunLanczos(op, 1, /*smallest=*/true, options);
  return RunDeflated(op, k, /*smallest=*/true, options);
}

LanczosResult LanczosLargest(const LinearOperator& op, int k,
                             const LanczosOptions& options) {
  if (k == 1) return RunLanczos(op, 1, /*smallest=*/false, options);
  return RunDeflated(op, k, /*smallest=*/false, options);
}

Vector KrylovExpMultiply(const LinearOperator& op, double scale,
                         const Vector& v, int krylov_dim,
                         SolverDiagnostics* diagnostics) {
  const int n = op.Dimension();
  IMPREG_CHECK(static_cast<int>(v.size()) == n);
  IMPREG_CHECK(krylov_dim >= 1);
  SolverDiagnostics local;
  SolverDiagnostics& diag = diagnostics != nullptr ? *diagnostics : local;
  diag = SolverDiagnostics{};
  SolverTrace* trace = IMPREG_TRACE_BEGIN("krylov_exp");
  const double v_norm = Norm2(v);
  if (!std::isfinite(v_norm)) {
    diag.status = SolveStatus::kNonFinite;
    diag.detail = "input vector has non-finite entries; returning 0";
    IMPREG_TRACE_FINISH(trace, diag);
    return Vector(n, 0.0);
  }
  if (v_norm == 0.0) {
    diag.status = SolveStatus::kConverged;
    IMPREG_TRACE_FINISH(trace, diag);
    return Vector(n, 0.0);
  }

  const int max_dim = std::min(krylov_dim, n);
  std::vector<Vector> basis;
  basis.reserve(max_dim);
  Vector alpha, beta;
  Vector q = v;
  Scale(1.0 / v_norm, q);
  Vector w(n);
  bool poisoned = false;
  for (int m = 0; m < max_dim; ++m) {
    basis.push_back(q);
    op.Apply(basis[m], w);
    IMPREG_FAULT_POINT("krylov_exp/w", w);
    const double a = Dot(basis[m], w);
    if (!std::isfinite(a)) {
      poisoned = true;  // Use the finite prefix built before this step.
      IMPREG_TRACE_EVENT(trace, m + 1, kRollback, a);
      break;
    }
    alpha.push_back(a);
    Axpy(-a, basis[m], w);
    if (m > 0) Axpy(-beta[m - 1], basis[m - 1], w);
    Reorthogonalize(basis, w);
    double b = Norm2(w);
    IMPREG_FAULT_POINT("krylov_exp/beta", b);
    if (!std::isfinite(b)) {
      poisoned = true;
      IMPREG_TRACE_EVENT(trace, m + 1, kRollback, b);
      break;
    }
    // β tracks how much of v's mass lies outside the current Krylov
    // space — the natural convergence trace for the expm approximation.
    IMPREG_TRACE_EVENT(trace, m + 1, kResidual, b);
    if (b <= 1e-14 || m + 1 == max_dim) break;
    beta.push_back(b);
    q = w;
    Scale(1.0 / b, q);
  }
  const int dim = static_cast<int>(alpha.size());
  if (dim == 0) {
    diag.status = SolveStatus::kNonFinite;
    diag.detail = "operator produced poison on the first Krylov step; "
                  "returning 0";
    IMPREG_TRACE_FINISH(trace, diag);
    return Vector(n, 0.0);
  }
  Vector off(beta.begin(), beta.begin() + (dim - 1));
  Vector head(alpha.begin(), alpha.begin() + dim);
  const SymmetricEigen tri = TridiagonalEigendecomposition(head, off);

  // y = ‖v‖ · V · U exp(scale·Λ) Uᵀ e₁.
  Vector coeffs(dim, 0.0);
  for (int kk = 0; kk < dim; ++kk) {
    const double weight =
        std::exp(scale * tri.eigenvalues[kk]) * tri.eigenvectors.At(0, kk);
    for (int j = 0; j < dim; ++j) {
      coeffs[j] += weight * tri.eigenvectors.At(j, kk);
    }
  }
  Vector y(n, 0.0);
  for (int j = 0; j < dim; ++j) Axpy(v_norm * coeffs[j], basis[j], y);
  diag.iterations = dim;
  if (!AllFinite(y)) {
    // exp(scale·λ) can overflow for large positive scale·λ.
    diag.status = SolveStatus::kNonFinite;
    diag.detail = "exp weights overflowed; returning 0";
    IMPREG_TRACE_FINISH(trace, diag);
    return Vector(n, 0.0);
  }
  if (poisoned) {
    diag.status = SolveStatus::kNonFinite;
    diag.detail = "non-finite Krylov recurrence entry; used the finite "
                  "prefix of the basis";
  } else {
    diag.status = SolveStatus::kConverged;
  }
  IMPREG_TRACE_FINISH(trace, diag);
  IMPREG_METRIC_COUNT("solver.krylov_exp.solves", 1);
  IMPREG_METRIC_COUNT("solver.krylov_exp.iterations", dim);
  return y;
}

}  // namespace impreg
