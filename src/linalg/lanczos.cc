#include "linalg/lanczos.h"

#include <algorithm>
#include <cmath>

#include "linalg/tridiagonal.h"
#include "util/check.h"
#include "util/rng.h"

namespace impreg {

namespace {

// Orthogonalizes x against every vector in `basis` (twice, for numerical
// robustness — the classical "twice is enough" rule).
void Reorthogonalize(const std::vector<Vector>& basis, Vector& x) {
  for (int pass = 0; pass < 2; ++pass) {
    for (const Vector& q : basis) {
      const double coeff = Dot(q, x);
      if (coeff != 0.0) Axpy(-coeff, q, x);
    }
  }
}

LanczosResult RunLanczos(const LinearOperator& op, int k, bool smallest,
                         const LanczosOptions& options) {
  const int n = op.Dimension();
  IMPREG_CHECK(k >= 1);
  IMPREG_CHECK(n >= 1);
  const int max_dim = std::min(options.max_iterations, n);
  IMPREG_CHECK(max_dim >= 1);

  // Normalized copies of the deflation vectors.
  std::vector<Vector> deflate;
  for (const Vector& d : options.deflate) {
    IMPREG_CHECK(static_cast<int>(d.size()) == n);
    Vector copy = d;
    Reorthogonalize(deflate, copy);
    if (Normalize(copy) > 1e-12) deflate.push_back(std::move(copy));
  }

  // Random start vector, deflated.
  Rng rng(options.seed);
  Vector q(n);
  for (double& v : q) v = rng.NextGaussian();
  Reorthogonalize(deflate, q);
  IMPREG_CHECK_MSG(Normalize(q) > 1e-12,
                   "start vector vanished under deflation");

  std::vector<Vector> basis;
  basis.reserve(max_dim);
  Vector alpha, beta;  // Tridiagonal entries.
  Vector w(n);

  LanczosResult result;
  SymmetricEigen tri_eigen;
  int m = 0;
  for (; m < max_dim; ++m) {
    basis.push_back(q);
    op.Apply(basis[m], w);
    const double a = Dot(basis[m], w);
    alpha.push_back(a);
    // w ← w − a·q_m − b_{m-1}·q_{m-1}, then full reorthogonalization.
    Axpy(-a, basis[m], w);
    if (m > 0) Axpy(-beta[m - 1], basis[m - 1], w);
    Reorthogonalize(deflate, w);
    Reorthogonalize(basis, w);
    const double b = Norm2(w);

    // Convergence test every few steps once we have k Ritz values.
    const bool last = (m + 1 == max_dim) || b <= 1e-13;
    if (m + 1 >= k && ((m + 1) % 5 == 0 || last)) {
      Vector off(beta.begin(), beta.end());
      tri_eigen = TridiagonalEigendecomposition(alpha, off);
      // Residual of Ritz pair i is |b · s_{m,i}| where s is the last row
      // of the tridiagonal eigenvector.
      bool all_ok = true;
      for (int i = 0; i < k; ++i) {
        const int col = smallest ? i : m - i;  // m+1 values, index m = top.
        const double resid = std::abs(b * tri_eigen.eigenvectors.At(m, col));
        if (resid > options.tolerance) {
          all_ok = false;
          break;
        }
      }
      if (all_ok || last) {
        result.converged = all_ok;
        break;
      }
    }
    if (b <= 1e-13) {
      // Invariant subspace found; recompute Ritz pairs and stop.
      Vector off(beta.begin(), beta.end());
      tri_eigen = TridiagonalEigendecomposition(alpha, off);
      result.converged = (m + 1 >= k);
      break;
    }
    beta.push_back(b);
    q = w;
    Scale(1.0 / b, q);
  }
  if (m == max_dim) --m;  // Loop exhausted without break.
  const int dim = m + 1;
  if (tri_eigen.eigenvalues.empty()) {
    Vector off(beta.begin(), beta.begin() + (dim - 1));
    Vector diag(alpha.begin(), alpha.begin() + dim);
    tri_eigen = TridiagonalEigendecomposition(diag, off);
  }

  const int num_out = std::min(k, dim);
  result.iterations = dim;
  result.eigenvalues.resize(num_out);
  result.eigenvectors.assign(num_out, Vector(n, 0.0));
  for (int i = 0; i < num_out; ++i) {
    const int col = smallest ? i : dim - 1 - i;
    result.eigenvalues[i] = tri_eigen.eigenvalues[col];
    Vector& ritz = result.eigenvectors[i];
    for (int j = 0; j < dim; ++j) {
      const double s = tri_eigen.eigenvectors.At(j, col);
      if (s != 0.0) Axpy(s, basis[j], ritz);
    }
    Normalize(ritz);
  }
  // Explicit residuals ‖A vᵢ − λᵢ vᵢ‖, all pairs in one SpMM.
  std::vector<Vector> av;
  op.ApplyBatch(result.eigenvectors, av);
  result.residuals.resize(num_out);
  for (int i = 0; i < num_out; ++i) {
    Axpy(-result.eigenvalues[i], result.eigenvectors[i], av[i]);
    result.residuals[i] = Norm2(av[i]);
  }
  return result;
}

// Computes k extreme eigenpairs by sequential single-pair runs with
// deflation restarts. A single Krylov sequence can only ever produce
// one Ritz vector per *distinct* eigenvalue (the start vector has one
// component in each eigenspace), so multiplicities — ubiquitous in
// graphs with symmetry, e.g. rings of cliques — require re-running with
// the found vectors deflated.
LanczosResult RunDeflated(const LinearOperator& op, int k, bool smallest,
                          const LanczosOptions& options) {
  LanczosResult total;
  total.converged = true;
  LanczosOptions current = options;
  for (int i = 0; i < k; ++i) {
    const LanczosResult one = RunLanczos(op, 1, smallest, current);
    if (one.eigenvectors.empty()) break;
    total.eigenvalues.push_back(one.eigenvalues.front());
    total.eigenvectors.push_back(one.eigenvectors.front());
    total.residuals.push_back(one.residuals.front());
    total.iterations += one.iterations;
    total.converged = total.converged && one.converged;
    current.deflate.push_back(one.eigenvectors.front());
    current.seed += 0x9e3779b9ULL;  // Fresh start vector per pair.
  }
  // Near-degenerate pairs can come back marginally out of order.
  std::vector<int> order(total.eigenvalues.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return smallest ? total.eigenvalues[a] < total.eigenvalues[b]
                    : total.eigenvalues[a] > total.eigenvalues[b];
  });
  LanczosResult sorted;
  sorted.iterations = total.iterations;
  sorted.converged = total.converged;
  for (int idx : order) {
    sorted.eigenvalues.push_back(total.eigenvalues[idx]);
    sorted.eigenvectors.push_back(std::move(total.eigenvectors[idx]));
    sorted.residuals.push_back(total.residuals[idx]);
  }
  return sorted;
}

}  // namespace

LanczosResult LanczosSmallest(const LinearOperator& op, int k,
                              const LanczosOptions& options) {
  if (k == 1) return RunLanczos(op, 1, /*smallest=*/true, options);
  return RunDeflated(op, k, /*smallest=*/true, options);
}

LanczosResult LanczosLargest(const LinearOperator& op, int k,
                             const LanczosOptions& options) {
  if (k == 1) return RunLanczos(op, 1, /*smallest=*/false, options);
  return RunDeflated(op, k, /*smallest=*/false, options);
}

Vector KrylovExpMultiply(const LinearOperator& op, double scale,
                         const Vector& v, int krylov_dim) {
  const int n = op.Dimension();
  IMPREG_CHECK(static_cast<int>(v.size()) == n);
  IMPREG_CHECK(krylov_dim >= 1);
  const double v_norm = Norm2(v);
  if (v_norm == 0.0) return Vector(n, 0.0);

  const int max_dim = std::min(krylov_dim, n);
  std::vector<Vector> basis;
  basis.reserve(max_dim);
  Vector alpha, beta;
  Vector q = v;
  Scale(1.0 / v_norm, q);
  Vector w(n);
  for (int m = 0; m < max_dim; ++m) {
    basis.push_back(q);
    op.Apply(basis[m], w);
    const double a = Dot(basis[m], w);
    alpha.push_back(a);
    Axpy(-a, basis[m], w);
    if (m > 0) Axpy(-beta[m - 1], basis[m - 1], w);
    Reorthogonalize(basis, w);
    const double b = Norm2(w);
    if (b <= 1e-14 || m + 1 == max_dim) break;
    beta.push_back(b);
    q = w;
    Scale(1.0 / b, q);
  }
  const int dim = static_cast<int>(alpha.size());
  Vector off(beta.begin(), beta.begin() + (dim - 1));
  const SymmetricEigen tri = TridiagonalEigendecomposition(alpha, off);

  // y = ‖v‖ · V · U exp(scale·Λ) Uᵀ e₁.
  Vector coeffs(dim, 0.0);
  for (int kk = 0; kk < dim; ++kk) {
    const double weight =
        std::exp(scale * tri.eigenvalues[kk]) * tri.eigenvectors.At(0, kk);
    for (int j = 0; j < dim; ++j) {
      coeffs[j] += weight * tri.eigenvectors.At(j, kk);
    }
  }
  Vector y(n, 0.0);
  for (int j = 0; j < dim; ++j) Axpy(v_norm * coeffs[j], basis[j], y);
  return y;
}

}  // namespace impreg
