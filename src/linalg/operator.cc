#include "linalg/operator.h"

#include "util/check.h"

namespace impreg {

double LinearOperator::RayleighQuotient(const Vector& x) const {
  IMPREG_CHECK(static_cast<int>(x.size()) == Dimension());
  const double xx = Dot(x, x);
  if (xx <= 0.0) return 0.0;
  Vector ax;
  Apply(x, ax);
  return Dot(x, ax) / xx;
}

void ShiftedOperator::Apply(const Vector& x, Vector& y) const {
  inner_.Apply(x, y);
  for (std::size_t i = 0; i < y.size(); ++i) y[i] = a_ * y[i] + b_ * x[i];
}

void ShiftedOperator::ApplyBatch(const std::vector<Vector>& xs,
                                 std::vector<Vector>& ys) const {
  inner_.ApplyBatch(xs, ys);
  for (std::size_t j = 0; j < ys.size(); ++j) {
    const Vector& x = xs[j];
    Vector& y = ys[j];
    for (std::size_t i = 0; i < y.size(); ++i) y[i] = a_ * y[i] + b_ * x[i];
  }
}

}  // namespace impreg
