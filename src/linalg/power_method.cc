#include "linalg/power_method.h"

#include <cmath>

#include "linalg/graph_operators.h"
#include "util/check.h"

namespace impreg {

namespace {

void Deflate(const std::vector<Vector>& deflate, Vector& x) {
  for (const Vector& d : deflate) ProjectOut(d, x);
}

}  // namespace

PowerMethodResult PowerMethod(const LinearOperator& op, Vector start,
                              const PowerMethodOptions& options) {
  const int n = op.Dimension();
  IMPREG_CHECK(static_cast<int>(start.size()) == n);

  PowerMethodResult result;
  Vector current = std::move(start);
  Deflate(options.deflate, current);
  IMPREG_CHECK_MSG(Normalize(current) > 1e-14,
                   "power method start vector vanished under deflation");

  Vector next(n);
  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    op.Apply(current, next);
    Deflate(options.deflate, next);
    const double norm = Normalize(next);
    result.iterations = iter;
    if (norm <= 1e-300) {
      // A annihilated the iterate — it was (numerically) in the null
      // space; report non-convergence with the last usable vector.
      break;
    }
    // Align sign so the difference test is meaningful for negative
    // dominant eigenvalues.
    if (Dot(next, current) < 0.0) Scale(-1.0, next);
    const double delta = DistanceL2(next, current);
    current.swap(next);
    if (options.on_iterate) options.on_iterate(iter, current);
    if (delta < options.tolerance) {
      result.converged = true;
      break;
    }
  }
  result.eigenvalue = op.RayleighQuotient(current);
  result.eigenvector = std::move(current);
  return result;
}

PowerMethodResult SecondEigenpairPowerMethod(
    const Graph& graph, Vector start, const PowerMethodOptions& options) {
  const NormalizedLaplacianOperator lap(graph);
  // ℒ has spectrum in [0, 2]; 2I − ℒ flips it so the smallest nontrivial
  // eigenvalue becomes dominant once D^{1/2}1 is deflated.
  const ShiftedOperator flipped(lap, -1.0, 2.0);
  PowerMethodOptions opts = options;
  opts.deflate.push_back(lap.TrivialEigenvector());
  PowerMethodResult result = PowerMethod(flipped, std::move(start), opts);
  // Convert the Rayleigh quotient back: λ(ℒ) = 2 − λ(2I−ℒ).
  result.eigenvalue = 2.0 - result.eigenvalue;
  return result;
}

}  // namespace impreg
