#include "linalg/power_method.h"

#include <cmath>

#include "core/metrics.h"
#include "core/trace.h"
#include "linalg/graph_operators.h"
#include "util/check.h"
#include "util/fault.h"

namespace impreg {

namespace {

void Deflate(const std::vector<Vector>& deflate, Vector& x) {
  for (const Vector& d : deflate) ProjectOut(d, x);
}

}  // namespace

PowerMethodResult PowerMethod(const LinearOperator& op, Vector start,
                              const PowerMethodOptions& options) {
  const int n = op.Dimension();
  IMPREG_CHECK(static_cast<int>(start.size()) == n);

  PowerMethodResult result;
  SolverDiagnostics& diag = result.diagnostics;
  SolverTrace* trace = IMPREG_TRACE_BEGIN("power_method");
  if (!AllFinite(start)) {
    diag.status = SolveStatus::kInvalidInput;
    diag.detail = "start vector has non-finite entries";
    result.eigenvector.assign(n, 0.0);
    IMPREG_TRACE_FINISH(trace, diag);
    return result;
  }
  Vector current = std::move(start);
  Deflate(options.deflate, current);
  IMPREG_CHECK_MSG(Normalize(current) > 1e-14,
                   "power method start vector vanished under deflation");

  Vector next(n);
  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    op.Apply(current, next);
    IMPREG_FAULT_POINT("power_method/next", next);
    Deflate(options.deflate, next);
    const double norm = Normalize(next);
    result.iterations = iter;
    // ‖next‖ is NaN/Inf iff any entry is (the unit iterate is therefore
    // all-finite once this passes) — the scalar check is the whole
    // non-finite sentinel here.
    if (!std::isfinite(norm)) {
      diag.status = SolveStatus::kNonFinite;
      diag.detail = "operator produced a non-finite iterate; returning "
                    "last finite unit iterate";
      IMPREG_TRACE_EVENT(trace, iter, kRollback, norm);
      break;
    }
    if (norm <= 1e-300) {
      // A annihilated the iterate — it was (numerically) in the null
      // space; report non-convergence with the last usable vector.
      diag.status = SolveStatus::kBreakdown;
      diag.detail = "operator annihilated the iterate (start was "
                    "numerically in the null space)";
      IMPREG_TRACE_EVENT(trace, iter, kFault, norm);
      break;
    }
    // Align sign so the difference test is meaningful for negative
    // dominant eigenvalues.
    if (Dot(next, current) < 0.0) Scale(-1.0, next);
    const double delta = DistanceL2(next, current);
    diag.RecordResidual(delta);
    IMPREG_TRACE_EVENT(trace, iter, kResidual, delta);
    current.swap(next);
    if (options.on_iterate) options.on_iterate(iter, current);
    if (delta < options.tolerance) {
      result.converged = true;
      diag.status = SolveStatus::kConverged;
      break;
    }
  }
  result.eigenvalue = op.RayleighQuotient(current);
  IMPREG_FAULT_POINT("power_method/rayleigh", result.eigenvalue);
  if (!std::isfinite(result.eigenvalue)) {
    diag.status = SolveStatus::kNonFinite;
    diag.detail = "Rayleigh quotient is non-finite; eigenvalue zeroed";
    result.eigenvalue = 0.0;
    result.converged = false;
  }
  result.eigenvector = std::move(current);
  diag.iterations = result.iterations;
  IMPREG_TRACE_FINISH(trace, diag);
  IMPREG_METRIC_COUNT("solver.power_method.solves", 1);
  IMPREG_METRIC_COUNT("solver.power_method.iterations", result.iterations);
  return result;
}

PowerMethodResult SecondEigenpairPowerMethod(
    const Graph& graph, Vector start, const PowerMethodOptions& options) {
  const NormalizedLaplacianOperator lap(graph);
  // ℒ has spectrum in [0, 2]; 2I − ℒ flips it so the smallest nontrivial
  // eigenvalue becomes dominant once D^{1/2}1 is deflated.
  const ShiftedOperator flipped(lap, -1.0, 2.0);
  PowerMethodOptions opts = options;
  opts.deflate.push_back(lap.TrivialEigenvector());
  PowerMethodResult result = PowerMethod(flipped, std::move(start), opts);
  // Convert the Rayleigh quotient back: λ(ℒ) = 2 − λ(2I−ℒ). Skip when
  // the solve failed and the eigenvalue was zeroed — 2 − 0 would dress
  // a sentinel up as a plausible spectral gap.
  if (result.diagnostics.usable()) {
    result.eigenvalue = 2.0 - result.eigenvalue;
  }
  return result;
}

}  // namespace impreg
