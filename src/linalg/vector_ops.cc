#include "linalg/vector_ops.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace impreg {

double Dot(const Vector& x, const Vector& y) {
  IMPREG_DCHECK(x.size() == y.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) sum += x[i] * y[i];
  return sum;
}

double Norm2(const Vector& x) { return std::sqrt(Dot(x, x)); }

double Norm1(const Vector& x) {
  double sum = 0.0;
  for (double v : x) sum += std::abs(v);
  return sum;
}

double NormInf(const Vector& x) {
  double best = 0.0;
  for (double v : x) best = std::max(best, std::abs(v));
  return best;
}

void Axpy(double a, const Vector& x, Vector& y) {
  IMPREG_DCHECK(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += a * x[i];
}

void Scale(double a, Vector& x) {
  for (double& v : x) v *= a;
}

double Normalize(Vector& x) {
  const double norm = Norm2(x);
  if (norm > 0.0) Scale(1.0 / norm, x);
  return norm;
}

void ProjectOut(const Vector& direction, Vector& x) {
  IMPREG_DCHECK(direction.size() == x.size());
  const double dd = Dot(direction, direction);
  if (dd <= 0.0) return;
  const double coeff = Dot(direction, x) / dd;
  for (std::size_t i = 0; i < x.size(); ++i) x[i] -= coeff * direction[i];
}

double Sum(const Vector& x) {
  double sum = 0.0;
  for (double v : x) sum += v;
  return sum;
}

double DistanceL2(const Vector& x, const Vector& y) {
  IMPREG_DCHECK(x.size() == y.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sum += (x[i] - y[i]) * (x[i] - y[i]);
  }
  return std::sqrt(sum);
}

double DistanceL1(const Vector& x, const Vector& y) {
  IMPREG_DCHECK(x.size() == y.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) sum += std::abs(x[i] - y[i]);
  return sum;
}

double DistanceUpToSign(const Vector& x, const Vector& y) {
  IMPREG_DCHECK(x.size() == y.size());
  double plus = 0.0, minus = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    plus += (x[i] - y[i]) * (x[i] - y[i]);
    minus += (x[i] + y[i]) * (x[i] + y[i]);
  }
  return std::sqrt(std::min(plus, minus));
}

double WeightedDot(const Vector& weights, const Vector& x, const Vector& y) {
  IMPREG_DCHECK(weights.size() == x.size() && x.size() == y.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) sum += weights[i] * x[i] * y[i];
  return sum;
}

}  // namespace impreg
