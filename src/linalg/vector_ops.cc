#include "linalg/vector_ops.h"

#include <algorithm>
#include <cmath>

#include "core/parallel.h"
#include "linalg/simd/simd.h"
#include "util/check.h"

namespace impreg {

namespace {

/// Elements per parallel chunk for the dense kernels. Reductions fold
/// per-chunk partials in chunk order, so every result below is
/// bit-identical for any thread count (chunk boundaries depend only on
/// the vector length and this grain). Vectors at or below the grain run
/// on the pre-existing single-accumulator serial path.
constexpr std::int64_t kVectorGrain = 1 << 14;

std::int64_t Size(const Vector& x) {
  return static_cast<std::int64_t>(x.size());
}

double SumCombine(double a, double b) { return a + b; }

}  // namespace

double Dot(const Vector& x, const Vector& y) {
  IMPREG_DCHECK(x.size() == y.size());
  // Per-chunk sums use the canonical striped tree (see simd.h), which is
  // bit-identical under scalar and AVX2 dispatch; chunk partials fold in
  // chunk order as before, so the thread-count invariance is unchanged.
  const simd::SimdLevel level = simd::ActiveSimdLevel();
  return ParallelReduce(
      0, Size(x), kVectorGrain, 0.0,
      [&](std::int64_t begin, std::int64_t end) {
        return simd::DotRange(level, x.data() + begin, y.data() + begin,
                              end - begin);
      },
      SumCombine);
}

double Norm2(const Vector& x) { return std::sqrt(Dot(x, x)); }

double Norm1(const Vector& x) {
  return ParallelReduce(
      0, Size(x), kVectorGrain, 0.0,
      [&](std::int64_t begin, std::int64_t end) {
        double sum = 0.0;
        for (std::int64_t i = begin; i < end; ++i) sum += std::abs(x[i]);
        return sum;
      },
      SumCombine);
}

double NormInf(const Vector& x) {
  return ParallelReduce(
      0, Size(x), kVectorGrain, 0.0,
      [&](std::int64_t begin, std::int64_t end) {
        double best = 0.0;
        for (std::int64_t i = begin; i < end; ++i) {
          best = std::max(best, std::abs(x[i]));
        }
        return best;
      },
      [](double a, double b) { return std::max(a, b); });
}

void Axpy(double a, const Vector& x, Vector& y) {
  IMPREG_DCHECK(x.size() == y.size());
  const simd::SimdLevel level = simd::ActiveSimdLevel();
  ParallelFor(0, Size(x), kVectorGrain,
              [&](std::int64_t begin, std::int64_t end) {
                simd::AxpyRange(level, a, x.data() + begin, y.data() + begin,
                                end - begin);
              });
}

void Scale(double a, Vector& x) {
  ParallelFor(0, Size(x), kVectorGrain,
              [&](std::int64_t begin, std::int64_t end) {
                for (std::int64_t i = begin; i < end; ++i) x[i] *= a;
              });
}

double Normalize(Vector& x) {
  const double norm = Norm2(x);
  if (norm > 0.0) Scale(1.0 / norm, x);
  return norm;
}

void ProjectOut(const Vector& direction, Vector& x) {
  IMPREG_DCHECK(direction.size() == x.size());
  const double dd = Dot(direction, direction);
  if (dd <= 0.0) return;
  const double coeff = Dot(direction, x) / dd;
  ParallelFor(0, Size(x), kVectorGrain,
              [&](std::int64_t begin, std::int64_t end) {
                for (std::int64_t i = begin; i < end; ++i) {
                  x[i] -= coeff * direction[i];
                }
              });
}

double Sum(const Vector& x) {
  return ParallelReduce(
      0, Size(x), kVectorGrain, 0.0,
      [&](std::int64_t begin, std::int64_t end) {
        double sum = 0.0;
        for (std::int64_t i = begin; i < end; ++i) sum += x[i];
        return sum;
      },
      SumCombine);
}

double DistanceL2(const Vector& x, const Vector& y) {
  IMPREG_DCHECK(x.size() == y.size());
  const double sum = ParallelReduce(
      0, Size(x), kVectorGrain, 0.0,
      [&](std::int64_t begin, std::int64_t end) {
        double s = 0.0;
        for (std::int64_t i = begin; i < end; ++i) {
          s += (x[i] - y[i]) * (x[i] - y[i]);
        }
        return s;
      },
      SumCombine);
  return std::sqrt(sum);
}

double DistanceL1(const Vector& x, const Vector& y) {
  IMPREG_DCHECK(x.size() == y.size());
  return ParallelReduce(
      0, Size(x), kVectorGrain, 0.0,
      [&](std::int64_t begin, std::int64_t end) {
        double sum = 0.0;
        for (std::int64_t i = begin; i < end; ++i) sum += std::abs(x[i] - y[i]);
        return sum;
      },
      SumCombine);
}

double DistanceL1Permuted(const Vector& x, const Vector& y,
                          const std::vector<std::int32_t>& order) {
  IMPREG_DCHECK(x.size() == y.size());
  IMPREG_DCHECK(order.size() == x.size());
  // Chunk boundaries are those of DistanceL1 on a same-length vector, and
  // each chunk accumulates in `order` order — so with `order` = an
  // old→new relabeling this is bit-identical to DistanceL1 on the
  // original labeling.
  return ParallelReduce(
      0, Size(x), kVectorGrain, 0.0,
      [&](std::int64_t begin, std::int64_t end) {
        double sum = 0.0;
        for (std::int64_t i = begin; i < end; ++i) {
          sum += std::abs(x[order[i]] - y[order[i]]);
        }
        return sum;
      },
      SumCombine);
}

double DistanceUpToSign(const Vector& x, const Vector& y) {
  IMPREG_DCHECK(x.size() == y.size());
  struct PlusMinus {
    double plus = 0.0;
    double minus = 0.0;
  };
  const PlusMinus total = ParallelReduce(
      0, Size(x), kVectorGrain, PlusMinus{},
      [&](std::int64_t begin, std::int64_t end) {
        PlusMinus partial;
        for (std::int64_t i = begin; i < end; ++i) {
          partial.plus += (x[i] - y[i]) * (x[i] - y[i]);
          partial.minus += (x[i] + y[i]) * (x[i] + y[i]);
        }
        return partial;
      },
      [](PlusMinus a, PlusMinus b) {
        return PlusMinus{a.plus + b.plus, a.minus + b.minus};
      });
  return std::sqrt(std::min(total.plus, total.minus));
}

bool AllFinite(const Vector& x) {
  return ParallelReduce(
      0, Size(x), kVectorGrain, true,
      [&](std::int64_t begin, std::int64_t end) {
        for (std::int64_t i = begin; i < end; ++i) {
          if (!std::isfinite(x[i])) return false;
        }
        return true;
      },
      [](bool a, bool b) { return a && b; });
}

double WeightedDot(const Vector& weights, const Vector& x, const Vector& y) {
  IMPREG_DCHECK(weights.size() == x.size() && x.size() == y.size());
  return ParallelReduce(
      0, Size(x), kVectorGrain, 0.0,
      [&](std::int64_t begin, std::int64_t end) {
        double sum = 0.0;
        for (std::int64_t i = begin; i < end; ++i) {
          sum += weights[i] * x[i] * y[i];
        }
        return sum;
      },
      SumCombine);
}

}  // namespace impreg
