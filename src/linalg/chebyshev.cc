#include "linalg/chebyshev.h"

#include <cmath>

#include "core/parallel.h"
#include "util/check.h"

namespace impreg {

ChebyshevResult ChebyshevSolve(const LinearOperator& a, const Vector& b,
                               double lambda_min, double lambda_max,
                               const ChebyshevOptions& options) {
  IMPREG_CHECK(lambda_min > 0.0 && lambda_min <= lambda_max);
  const int n = a.Dimension();
  IMPREG_CHECK(static_cast<int>(b.size()) == n);

  ChebyshevResult result;
  result.x.assign(n, 0.0);
  const double b_norm = Norm2(b);
  if (b_norm == 0.0) {
    result.converged = true;
    return result;
  }
  const double threshold = options.relative_tolerance * b_norm;

  const double theta = 0.5 * (lambda_max + lambda_min);
  const double delta = 0.5 * (lambda_max - lambda_min);

  Vector r = b;  // r = b − A·0.
  if (delta == 0.0) {
    // A = θI exactly: one step solves.
    result.x = b;
    Scale(1.0 / theta, result.x);
    a.Apply(result.x, r);
    for (int i = 0; i < n; ++i) r[i] = b[i] - r[i];
    result.iterations = 1;
    result.residual_norm = Norm2(r);
    result.converged = result.residual_norm <= threshold;
    return result;
  }

  const double sigma = theta / delta;
  double rho = 1.0 / sigma;
  Vector d = r;
  Scale(1.0 / theta, d);
  Vector ad(n);
  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    Axpy(1.0, d, result.x);
    a.Apply(d, ad);
    Axpy(-1.0, ad, r);
    result.iterations = iter;
    result.residual_norm = Norm2(r);
    if (result.residual_norm <= threshold) {
      result.converged = true;
      break;
    }
    const double rho_next = 1.0 / (2.0 * sigma - rho);
    // d ← ρρ' d + (2ρ'/δ) r, fused into one parallel pass.
    const double d_coeff = rho * rho_next;
    const double r_coeff = 2.0 * rho_next / delta;
    ParallelFor(0, n, 1 << 14, [&](std::int64_t begin, std::int64_t end) {
      for (std::int64_t i = begin; i < end; ++i) {
        d[i] = d_coeff * d[i] + r_coeff * r[i];
      }
    });
    rho = rho_next;
  }
  return result;
}

}  // namespace impreg
