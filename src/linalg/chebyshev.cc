#include "linalg/chebyshev.h"

#include <cmath>

#include "core/metrics.h"
#include "core/parallel.h"
#include "core/trace.h"
#include "util/check.h"
#include "util/fault.h"

namespace impreg {

namespace {

/// Iterations between O(n) snapshot copies of the best iterate. The
/// residual norm itself is computed every iteration anyway (it is the
/// convergence test), so the scalar sentinel is free; only the
/// best-so-far copy is amortized.
constexpr int kSnapshotInterval = 8;

/// A residual this many times above the best residual seen is declared
/// divergence (kBreakdown). Chebyshev residuals oscillate inside their
/// decaying envelope, but with correct bounds they never climb three
/// orders of magnitude past the best; with wrong bounds they grow
/// geometrically and cross this in a few iterations.
constexpr double kDivergenceFactor = 1e4;

}  // namespace

ChebyshevResult ChebyshevSolve(const LinearOperator& a, const Vector& b,
                               double lambda_min, double lambda_max,
                               const ChebyshevOptions& options) {
  IMPREG_CHECK(lambda_min > 0.0 && lambda_min <= lambda_max);
  const int n = a.Dimension();
  IMPREG_CHECK(static_cast<int>(b.size()) == n);

  ChebyshevResult result;
  result.x.assign(n, 0.0);
  SolverDiagnostics& diag = result.diagnostics;
  SolverTrace* trace = IMPREG_TRACE_BEGIN("chebyshev");

  if (!AllFinite(b)) {
    diag.status = SolveStatus::kNonFinite;
    diag.detail = "right-hand side has non-finite entries; returning x = 0";
    IMPREG_TRACE_FINISH(trace, diag);
    return result;
  }

  const double b_norm = Norm2(b);
  if (b_norm == 0.0) {
    result.converged = true;
    diag.status = SolveStatus::kConverged;
    diag.detail = "zero right-hand side";
    IMPREG_TRACE_FINISH(trace, diag);
    return result;
  }
  const double threshold = options.relative_tolerance * b_norm;

  const double theta = 0.5 * (lambda_max + lambda_min);
  const double delta = 0.5 * (lambda_max - lambda_min);

  Vector r = b;  // r = b − A·0.
  if (delta == 0.0) {
    // A = θI exactly: one step solves.
    result.x = b;
    Scale(1.0 / theta, result.x);
    a.Apply(result.x, r);
    for (int i = 0; i < n; ++i) r[i] = b[i] - r[i];
    result.iterations = 1;
    result.residual_norm = Norm2(r);
    diag.iterations = 1;
    diag.RecordResidual(result.residual_norm);
    if (!std::isfinite(result.residual_norm)) {
      // The operator produced poison; x = b/θ itself is finite.
      diag.status = SolveStatus::kNonFinite;
      diag.detail = "operator produced a non-finite residual on the "
                    "single-step (δ = 0) branch";
      result.x.assign(n, 0.0);
      result.residual_norm = b_norm;
      diag.final_residual = b_norm;
      IMPREG_TRACE_FINISH(trace, diag);
      return result;
    }
    result.converged = result.residual_norm <= threshold;
    diag.status = result.converged ? SolveStatus::kConverged
                                   : SolveStatus::kMaxIterations;
    IMPREG_TRACE_EVENT(trace, 1, kResidual, result.residual_norm);
    IMPREG_TRACE_FINISH(trace, diag);
    return result;
  }

  const double sigma = theta / delta;
  double rho = 1.0 / sigma;
  Vector d = r;
  Scale(1.0 / theta, d);
  Vector ad(n);
  // Best iterate verified finite (initially x = 0, residual ‖b‖): what
  // the caller gets on a non-finite event or divergence breakdown.
  Vector snapshot = result.x;
  double snapshot_residual = b_norm;
  double best_residual = b_norm;
  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    Axpy(1.0, d, result.x);
    IMPREG_FAULT_POINT("chebyshev/x", result.x);
    a.Apply(d, ad);
    IMPREG_FAULT_POINT("chebyshev/ad", ad);
    Axpy(-1.0, ad, r);
    result.iterations = iter;
    result.residual_norm = Norm2(r);
    IMPREG_FAULT_POINT("chebyshev/residual", result.residual_norm);
    diag.RecordResidual(result.residual_norm);
    IMPREG_TRACE_EVENT(trace, iter, kResidual, result.residual_norm);
    if (!std::isfinite(result.residual_norm)) {
      diag.status = SolveStatus::kNonFinite;
      diag.detail =
          "residual norm is non-finite; returning best finite iterate";
      IMPREG_TRACE_EVENT(trace, iter, kRollback, snapshot_residual);
      result.x = snapshot;
      result.residual_norm = snapshot_residual;
      break;
    }
    if (result.residual_norm <= threshold) {
      result.converged = true;
      break;
    }
    if (result.residual_norm < best_residual) {
      best_residual = result.residual_norm;
    } else if (result.residual_norm > kDivergenceFactor * best_residual) {
      // The recurrence is amplifying: the true spectrum must escape
      // [λ_min, λ_max]. Stop before overflow turns growth into Inf.
      diag.status = SolveStatus::kBreakdown;
      diag.detail = "residuals diverged (bad eigenvalue bounds?); "
                    "returning best iterate — consider a power-iteration "
                    "fallback";
      IMPREG_TRACE_EVENT(trace, iter, kFault, result.residual_norm);
      IMPREG_TRACE_EVENT(trace, iter, kRollback, snapshot_residual);
      result.x = snapshot;
      result.residual_norm = snapshot_residual;
      break;
    }
    if (iter % kSnapshotInterval == 0 &&
        result.residual_norm < snapshot_residual) {
      if (!AllFinite(result.x)) {
        diag.status = SolveStatus::kNonFinite;
        diag.detail =
            "iterate has non-finite entries; returning best finite iterate";
        IMPREG_TRACE_EVENT(trace, iter, kRollback, snapshot_residual);
        result.x = snapshot;
        result.residual_norm = snapshot_residual;
        break;
      }
      snapshot = result.x;
      snapshot_residual = result.residual_norm;
    }
    const double rho_next = 1.0 / (2.0 * sigma - rho);
    // d ← ρρ' d + (2ρ'/δ) r, fused into one parallel pass.
    const double d_coeff = rho * rho_next;
    const double r_coeff = 2.0 * rho_next / delta;
    ParallelFor(0, n, 1 << 14, [&](std::int64_t begin, std::int64_t end) {
      for (std::int64_t i = begin; i < end; ++i) {
        d[i] = d_coeff * d[i] + r_coeff * r[i];
      }
    });
    rho = rho_next;
  }

  // Final gate: never hand back poison that slipped in between the
  // amortized snapshots (the residual is on r, not x).
  if (diag.status == SolveStatus::kMaxIterations && !AllFinite(result.x)) {
    diag.status = SolveStatus::kNonFinite;
    diag.detail =
        "iterate has non-finite entries; returning best finite iterate";
    IMPREG_TRACE_EVENT(trace, result.iterations, kRollback,
                       snapshot_residual);
    result.x = snapshot;
    result.residual_norm = snapshot_residual;
    result.converged = false;
  }
  if (result.converged) {
    diag.status = SolveStatus::kConverged;
  } else if (diag.status == SolveStatus::kMaxIterations &&
             diag.detail.empty()) {
    diag.detail = "iteration cap hit; iterate is the early-stopped answer";
  }
  diag.iterations = result.iterations;
  diag.final_residual = result.residual_norm;
  IMPREG_TRACE_FINISH(trace, diag);
  IMPREG_METRIC_COUNT("solver.chebyshev.solves", 1);
  IMPREG_METRIC_COUNT("solver.chebyshev.iterations", result.iterations);
  return result;
}

}  // namespace impreg
