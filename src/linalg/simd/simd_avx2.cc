/// AVX2 implementations of the canonical reduction trees declared in
/// simd.h. This translation unit is the only one compiled with
/// `-mavx2 -mfma` — and, crucially, with `-ffp-contract=off`: GCC is
/// otherwise free to contract `_mm256_mul_pd` + `_mm256_add_pd` into a
/// single-rounding FMA, which would break bit-identity with the
/// two-rounding scalar twins. When the IMPREG_SIMD cmake option is off
/// (or the target is not x86), every entry point forwards to its scalar
/// twin so callers link unconditionally.

#include "linalg/simd/simd.h"

#if defined(IMPREG_SIMD_AVX2) && (defined(__x86_64__) || defined(__i386__))

#include <immintrin.h>

namespace impreg::simd {

namespace {

/// (lane0 + lane2) + (lane1 + lane3) — the canonical cross-lane fold.
/// castpd256_pd128 yields (lane0, lane1); extractf128 yields
/// (lane2, lane3); one vertical add pairs 0+2 and 1+3; the final scalar
/// add matches the scalar twins' outer parenthesisation.
inline double FoldLanes(__m256d acc) {
  const __m128d lo = _mm256_castpd256_pd128(acc);
  const __m128d hi = _mm256_extractf128_pd(acc, 1);
  const __m128d pair = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(pair) + _mm_cvtsd_f64(_mm_unpackhi_pd(pair, pair));
}

}  // namespace

double DotRangeAvx2(const double* x, const double* y, std::int64_t n) {
  const std::int64_t main = n & ~std::int64_t{3};
  __m256d acc = _mm256_setzero_pd();
  for (std::int64_t i = 0; i < main; i += 4) {
    const __m256d xv = _mm256_loadu_pd(x + i);
    const __m256d yv = _mm256_loadu_pd(y + i);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(xv, yv));
  }
  double sum = FoldLanes(acc);
  for (std::int64_t i = main; i < n; ++i) sum += x[i] * y[i];
  return sum;
}

void AxpyRangeAvx2(double a, const double* x, double* y, std::int64_t n) {
  const std::int64_t main = n & ~std::int64_t{3};
  const __m256d av = _mm256_set1_pd(a);
  for (std::int64_t i = 0; i < main; i += 4) {
    const __m256d xv = _mm256_loadu_pd(x + i);
    const __m256d yv = _mm256_loadu_pd(y + i);
    _mm256_storeu_pd(y + i, _mm256_add_pd(yv, _mm256_mul_pd(av, xv)));
  }
  for (std::int64_t i = main; i < n; ++i) y[i] += a * x[i];
}

double RowTreeAvx2(const std::int32_t* heads, const double* w,
                   std::int64_t len, const double* x) {
  // Scalar loads packed with set_pd rather than vgatherdpd: on the
  // fleet's cores the microcoded gather loses to four plain loads
  // (measured ~20% slower end to end on BM_NormalizedLaplacianMatvec).
  const std::int64_t main = len & ~std::int64_t{3};
  __m256d acc = _mm256_setzero_pd();
  for (std::int64_t a = 0; a < main; a += 4) {
    const __m256d xv = _mm256_set_pd(x[heads[a + 3]], x[heads[a + 2]],
                                     x[heads[a + 1]], x[heads[a]]);
    const __m256d wv = _mm256_loadu_pd(w + a);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(wv, xv));
  }
  double sum = FoldLanes(acc);
  for (std::int64_t a = main; a < len; ++a) sum += w[a] * x[heads[a]];
  return sum;
}

void RowTree4Avx2(const std::int32_t* heads, const double* w,
                  std::int64_t len, const double* const* xs, double* out) {
  // Lane j of every vector is column j; acc_l holds stripe l of all four
  // columns, so the vertical fold below is the canonical per-column tree.
  const std::int64_t main = len & ~std::int64_t{3};
  const double* x0 = xs[0];
  const double* x1 = xs[1];
  const double* x2 = xs[2];
  const double* x3 = xs[3];
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  __m256d acc2 = _mm256_setzero_pd();
  __m256d acc3 = _mm256_setzero_pd();
  for (std::int64_t a = 0; a < main; a += 4) {
    const std::int32_t v0 = heads[a];
    const std::int32_t v1 = heads[a + 1];
    const std::int32_t v2 = heads[a + 2];
    const std::int32_t v3 = heads[a + 3];
    const __m256d g0 = _mm256_set_pd(x3[v0], x2[v0], x1[v0], x0[v0]);
    const __m256d g1 = _mm256_set_pd(x3[v1], x2[v1], x1[v1], x0[v1]);
    const __m256d g2 = _mm256_set_pd(x3[v2], x2[v2], x1[v2], x0[v2]);
    const __m256d g3 = _mm256_set_pd(x3[v3], x2[v3], x1[v3], x0[v3]);
    acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(_mm256_set1_pd(w[a]), g0));
    acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(_mm256_set1_pd(w[a + 1]), g1));
    acc2 = _mm256_add_pd(acc2, _mm256_mul_pd(_mm256_set1_pd(w[a + 2]), g2));
    acc3 = _mm256_add_pd(acc3, _mm256_mul_pd(_mm256_set1_pd(w[a + 3]), g3));
  }
  __m256d tree = _mm256_add_pd(_mm256_add_pd(acc0, acc2),
                               _mm256_add_pd(acc1, acc3));
  for (std::int64_t a = main; a < len; ++a) {
    const std::int32_t v = heads[a];
    const __m256d g = _mm256_set_pd(x3[v], x2[v], x1[v], x0[v]);
    tree = _mm256_add_pd(tree, _mm256_mul_pd(_mm256_set1_pd(w[a]), g));
  }
  _mm256_storeu_pd(out, tree);
}

}  // namespace impreg::simd

#else  // AVX2 unit compiled out: forward to the scalar twins.

namespace impreg::simd {

double DotRangeAvx2(const double* x, const double* y, std::int64_t n) {
  return DotRangeScalar(x, y, n);
}

void AxpyRangeAvx2(double a, const double* x, double* y, std::int64_t n) {
  AxpyRangeScalar(a, x, y, n);
}

double RowTreeAvx2(const std::int32_t* heads, const double* w,
                   std::int64_t len, const double* x) {
  return RowTreeScalar(heads, w, len, x);
}

void RowTree4Avx2(const std::int32_t* heads, const double* w,
                  std::int64_t len, const double* const* xs, double* out) {
  RowTree4Scalar(heads, w, len, xs, out);
}

}  // namespace impreg::simd

#endif
