#ifndef IMPREG_LINALG_SIMD_SIMD_H_
#define IMPREG_LINALG_SIMD_SIMD_H_

#include <cstdint>

/// \file
/// Runtime-dispatched SIMD kernels for the four hot loops: the CSR SpMV
/// row gather, the register-blocked ApplyBatch SpMM, and the dense
/// axpy/dot in vector_ops. Two implementations exist for every kernel —
/// a portable scalar one and an AVX2 one — and both compute the *same
/// canonical reduction tree*, so the dispatch decision never changes a
/// result bit (pinned by determinism_test and simd_test).
///
/// Canonical reduction trees (see docs/simd.md for the full rules):
///
///  - Dot over a range of n elements splits the leading 4-aligned prefix
///    into four striped lanes (lane l sums elements i ≡ l mod 4), folds
///    them as (lane0 + lane2) + (lane1 + lane3) — exactly the AVX2
///    horizontal add — then appends the ≤3 tail elements sequentially.
///  - CSR row reduction uses the same striped tree over a row's arcs
///    (products w[a]·x[heads[a]] in arc order); a row's tree value is
///    combined with the operator's init term by the caller as
///    `init ± tree`, one rounding, identical in both paths. Rows with
///    no arcs return the init term untouched.
///  - Axpy/scale-style elementwise loops carry no cross-lane reduction
///    and are bit-identical in any width by construction.
///
/// Neither path may use FMA contraction in a value-producing expression:
/// an FMA rounds once where mul+add rounds twice, so the AVX2
/// translation unit is compiled with `-ffp-contract=off`.
///
/// Dispatch: `ActiveSimdLevel(kernel)` probes CPUID once (AVX2 and FMA
/// flags) and honours the `IMPREG_SIMD=OFF` cmake option (compiles the
/// AVX2 unit out entirely) plus the `IMPREG_SIMD` environment variable
/// (read once, at first use): "off"/"0"/"scalar"/"false" force scalar
/// everywhere, "avx2"/"on"/"force" force AVX2 for every kernel class.
/// With neither set, the default is *per kernel class*: the dense and
/// 4-column-block kernels run AVX2 (the block kernel measures ~1.5×
/// scalar — see bench/micro_kernels), but the single-vector row gather
/// defaults to scalar: its x[heads[a]] loads are irregular, the vector
/// version spends its time packing lanes, and on the cores we measure it
/// loses 10–30% to the striped scalar tree. Both paths stay bit-identical,
/// so flipping the default on a machine where the gather wins is safe.
/// Tests and benchmarks pin a level with `ForceSimdLevel`/`ScopedSimdLevel`
/// (forcing overrides every per-class default).

namespace impreg::simd {

enum class SimdLevel : int {
  kScalar = 0,
  kAvx2 = 1,
};

/// Kernel classes with distinct cost models (and therefore distinct
/// dispatch defaults).
enum class SimdKernel : int {
  kDense = 0,      ///< Contiguous dot/axpy chunks.
  kRowGather = 1,  ///< Single-vector CSR row: irregular x[heads[a]].
  kRowBlock4 = 2,  ///< Register-blocked 4-column CSR row (SpMM).
};

/// "scalar" or "avx2".
const char* SimdLevelName(SimdLevel level);

/// True iff the AVX2 unit was compiled in (IMPREG_SIMD cmake option on,
/// x86-64 compiler) AND the running CPU reports AVX2+FMA.
bool Avx2Supported();

/// The level `kernel` dispatches on: a forced level if one is set, else
/// the env override, else the per-class probed default described above.
SimdLevel ActiveSimdLevel(SimdKernel kernel);

/// Shorthand for the dense-kernel level (vector_ops chunks).
inline SimdLevel ActiveSimdLevel() {
  return ActiveSimdLevel(SimdKernel::kDense);
}

/// Pins the dispatch level (tests/benches). Forcing kAvx2 on a machine
/// without AVX2 support clamps to kScalar rather than crashing, so
/// scalar-vs-simd sweeps stay runnable everywhere.
void ForceSimdLevel(SimdLevel level);

/// Clears a forced level; dispatch returns to the probed default.
void ResetSimdLevel();

/// RAII pin: forces `level` for the scope, restores the previous state
/// (forced or probed) on exit.
class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(SimdLevel level);
  ~ScopedSimdLevel();
  ScopedSimdLevel(const ScopedSimdLevel&) = delete;
  ScopedSimdLevel& operator=(const ScopedSimdLevel&) = delete;

 private:
  int previous_;  // forced level before, or -1 if none was forced
};

// ---------------------------------------------------------------------------
// Dense kernels (one call per ParallelFor/ParallelReduce chunk).
// ---------------------------------------------------------------------------

/// Σ x[i]·y[i] over [0, n) with the canonical striped tree.
double DotRange(SimdLevel level, const double* x, const double* y,
                std::int64_t n);

/// y[i] += a·x[i] over [0, n).
void AxpyRange(SimdLevel level, double a, const double* x, double* y,
               std::int64_t n);

// ---------------------------------------------------------------------------
// Scalar twins: the canonical reduction trees, defined inline so the CSR
// row loops in graph_operators.cc inline them (one definition, shared by
// the dispatch wrappers, the hot loops, and the tests). The AVX2 unit
// mirrors these shapes exactly; any change here must be mirrored there
// (simd_test cross-checks every kernel pair bit for bit).
// ---------------------------------------------------------------------------

/// Σ x[i]·y[i] with the canonical striped tree.
inline double DotRangeScalar(const double* x, const double* y,
                             std::int64_t n) {
  const std::int64_t main = n & ~std::int64_t{3};
  double lane0 = 0.0, lane1 = 0.0, lane2 = 0.0, lane3 = 0.0;
  for (std::int64_t i = 0; i < main; i += 4) {
    lane0 += x[i] * y[i];
    lane1 += x[i + 1] * y[i + 1];
    lane2 += x[i + 2] * y[i + 2];
    lane3 += x[i + 3] * y[i + 3];
  }
  double sum = (lane0 + lane2) + (lane1 + lane3);
  for (std::int64_t i = main; i < n; ++i) sum += x[i] * y[i];
  return sum;
}

/// y[i] += a·x[i] — elementwise, no reduction tree to pin.
inline void AxpyRangeScalar(double a, const double* x, double* y,
                            std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) y[i] += a * x[i];
}

// ---------------------------------------------------------------------------
// CSR row kernels (one call per row; the caller applies init/finish).
// ---------------------------------------------------------------------------

/// Canonical striped tree over one row's arcs: Σ w[a]·x[heads[a]],
/// a ∈ [0, len). Returns 0.0 for an empty row (callers short-circuit
/// empty rows before folding in the init term, preserving its sign bit).
inline double RowTreeScalar(const std::int32_t* heads, const double* w,
                            std::int64_t len, const double* x) {
  const std::int64_t main = len & ~std::int64_t{3};
  double lane0 = 0.0, lane1 = 0.0, lane2 = 0.0, lane3 = 0.0;
  for (std::int64_t a = 0; a < main; a += 4) {
    lane0 += w[a] * x[heads[a]];
    lane1 += w[a + 1] * x[heads[a + 1]];
    lane2 += w[a + 2] * x[heads[a + 2]];
    lane3 += w[a + 3] * x[heads[a + 3]];
  }
  double sum = (lane0 + lane2) + (lane1 + lane3);
  for (std::int64_t a = main; a < len; ++a) sum += w[a] * x[heads[a]];
  return sum;
}

/// Four-column variant sharing one traversal: out[j] is the canonical
/// tree of column j, bit-identical to RowTreeScalar(heads, w, len, xs[j]).
inline void RowTree4Scalar(const std::int32_t* heads, const double* w,
                           std::int64_t len, const double* const* xs,
                           double* out) {
  const std::int64_t main = len & ~std::int64_t{3};
  double lane[4][4] = {};  // lane[l][j]: stripe l of column j
  for (std::int64_t a = 0; a < main; a += 4) {
    for (int l = 0; l < 4; ++l) {
      const std::int32_t v = heads[a + l];
      const double wa = w[a + l];
      for (int j = 0; j < 4; ++j) lane[l][j] += wa * xs[j][v];
    }
  }
  for (int j = 0; j < 4; ++j) {
    out[j] = (lane[0][j] + lane[2][j]) + (lane[1][j] + lane[3][j]);
  }
  for (std::int64_t a = main; a < len; ++a) {
    const std::int32_t v = heads[a];
    const double wa = w[a];
    for (int j = 0; j < 4; ++j) out[j] += wa * xs[j][v];
  }
}

/// AVX2 implementations of the same trees (set_pd-packed row gather,
/// cross-column lanes for the 4-column block). When the AVX2 unit is
/// compiled out these forward to the scalar twins so callers can link
/// unconditionally; dispatch never selects them in that configuration.
double RowTreeAvx2(const std::int32_t* heads, const double* w,
                   std::int64_t len, const double* x);
void RowTree4Avx2(const std::int32_t* heads, const double* w,
                  std::int64_t len, const double* const* xs, double* out);
double DotRangeAvx2(const double* x, const double* y, std::int64_t n);
void AxpyRangeAvx2(double a, const double* x, double* y, std::int64_t n);

}  // namespace impreg::simd

#endif  // IMPREG_LINALG_SIMD_SIMD_H_
