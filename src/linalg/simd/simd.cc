#include "linalg/simd/simd.h"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <string>

namespace impreg::simd {

namespace {

/// Forced level, or -1 when dispatch follows the probed default.
std::atomic<int> g_forced{-1};

bool CpuHasAvx2Fma() {
#if defined(IMPREG_SIMD_AVX2) && (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

/// The IMPREG_SIMD environment override, read once: -1 unset, 0 scalar
/// everywhere ("off"/"0"/"scalar"/"false"), 1 AVX2 everywhere
/// ("avx2"/"on"/"force"). Unrecognized values are treated as unset.
int EnvOverride() {
  const char* env = std::getenv("IMPREG_SIMD");
  if (env == nullptr) return -1;
  std::string value(env);
  for (char& c : value) c = static_cast<char>(std::tolower(c));
  if (value == "off" || value == "0" || value == "scalar" ||
      value == "false") {
    return 0;
  }
  if (value == "avx2" || value == "on" || value == "force") return 1;
  return -1;
}

SimdLevel ProbedDefault(SimdKernel kernel) {
  static const int env = EnvOverride();
  if (!Avx2Supported() || env == 0) return SimdLevel::kScalar;
  if (env == 1) return SimdLevel::kAvx2;
  // Per-class default: the irregular single-vector gather measures
  // slower than the striped scalar tree on our cores (see simd.h).
  return kernel == SimdKernel::kRowGather ? SimdLevel::kScalar
                                          : SimdLevel::kAvx2;
}

}  // namespace

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool Avx2Supported() {
  static const bool supported = CpuHasAvx2Fma();
  return supported;
}

SimdLevel ActiveSimdLevel(SimdKernel kernel) {
  const int forced = g_forced.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<SimdLevel>(forced);
  return ProbedDefault(kernel);
}

void ForceSimdLevel(SimdLevel level) {
  if (level == SimdLevel::kAvx2 && !Avx2Supported()) {
    level = SimdLevel::kScalar;
  }
  g_forced.store(static_cast<int>(level), std::memory_order_relaxed);
}

void ResetSimdLevel() { g_forced.store(-1, std::memory_order_relaxed); }

ScopedSimdLevel::ScopedSimdLevel(SimdLevel level)
    : previous_(g_forced.load(std::memory_order_relaxed)) {
  ForceSimdLevel(level);
}

ScopedSimdLevel::~ScopedSimdLevel() {
  g_forced.store(previous_, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Dispatching wrappers for the dense (chunk-sized) kernels. The scalar
// twins themselves are inline in simd.h so the hot loops inline them.
// ---------------------------------------------------------------------------

double DotRange(SimdLevel level, const double* x, const double* y,
                std::int64_t n) {
  return level == SimdLevel::kAvx2 ? DotRangeAvx2(x, y, n)
                                   : DotRangeScalar(x, y, n);
}

void AxpyRange(SimdLevel level, double a, const double* x, double* y,
               std::int64_t n) {
  if (level == SimdLevel::kAvx2) {
    AxpyRangeAvx2(a, x, y, n);
  } else {
    AxpyRangeScalar(a, x, y, n);
  }
}

}  // namespace impreg::simd
