#ifndef IMPREG_LINALG_VECTOR_OPS_H_
#define IMPREG_LINALG_VECTOR_OPS_H_

#include <cstdint>
#include <vector>

/// \file
/// Dense vector kernels shared by every iterative method in the library.
/// Vectors are plain std::vector<double>; all functions check (in debug
/// builds) that dimensions agree.

namespace impreg {

using Vector = std::vector<double>;

/// x · y.
double Dot(const Vector& x, const Vector& y);

/// Euclidean norm ‖x‖₂.
double Norm2(const Vector& x);

/// ‖x‖₁.
double Norm1(const Vector& x);

/// ‖x‖∞.
double NormInf(const Vector& x);

/// y ← y + a·x.
void Axpy(double a, const Vector& x, Vector& y);

/// x ← a·x.
void Scale(double a, Vector& x);

/// Normalizes x to unit Euclidean length. Returns the original norm;
/// leaves x untouched (and returns 0) if it is the zero vector.
double Normalize(Vector& x);

/// Removes the component of x along `direction` (which need not be
/// normalized): x ← x − (x·d / d·d) d. No-op if d is zero.
void ProjectOut(const Vector& direction, Vector& x);

/// Σᵢ xᵢ.
double Sum(const Vector& x);

/// Element-wise difference norm ‖x − y‖₂.
double DistanceL2(const Vector& x, const Vector& y);

/// ‖x − y‖₁.
double DistanceL1(const Vector& x, const Vector& y);

/// ‖x − y‖₁ accumulated in the element order given by `order` (a
/// permutation of [0, n)). Chunk boundaries match DistanceL1's, so with
/// `order` = an old→new node relabeling this reproduces, bit for bit,
/// DistanceL1 as the original labeling would have computed it — the hook
/// that keeps reordered dense solves' convergence decisions (and hence
/// iteration counts) identical to unreordered ones.
double DistanceL1Permuted(const Vector& x, const Vector& y,
                          const std::vector<std::int32_t>& order);

/// Distance up to sign: min(‖x−y‖₂, ‖x+y‖₂). Eigenvectors are only
/// defined up to sign, so comparisons use this.
double DistanceUpToSign(const Vector& x, const Vector& y);

/// The D-weighted inner product Σᵢ dᵢ xᵢ yᵢ.
double WeightedDot(const Vector& weights, const Vector& x, const Vector& y);

/// True iff every entry is finite (no NaN/Inf). This is the non-finite
/// sentinel of the failure-containment layer: solvers call it on their
/// iterates every few iterations (and on inputs up front) so a NaN
/// produced anywhere fails fast with SolveStatus::kNonFinite instead of
/// spinning to the iteration cap on poisoned comparisons.
bool AllFinite(const Vector& x);

}  // namespace impreg

#endif  // IMPREG_LINALG_VECTOR_OPS_H_
