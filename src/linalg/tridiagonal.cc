#include "linalg/tridiagonal.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"

namespace impreg {

namespace {

double Hypot(double a, double b) { return std::hypot(a, b); }

}  // namespace

SymmetricEigen TridiagonalEigendecomposition(const Vector& diag,
                                             const Vector& offdiag) {
  const int n = static_cast<int>(diag.size());
  IMPREG_CHECK(n >= 1);
  IMPREG_CHECK(offdiag.size() == static_cast<std::size_t>(n) - 1);

  Vector d = diag;
  Vector e(n, 0.0);
  for (int i = 0; i < n - 1; ++i) e[i] = offdiag[i];
  DenseMatrix z = DenseMatrix::Identity(n);

  // Implicit QL with Wilkinson shifts (tql2).
  for (int l = 0; l < n; ++l) {
    int iter = 0;
    int m;
    do {
      for (m = l; m < n - 1; ++m) {
        const double dd = std::abs(d[m]) + std::abs(d[m + 1]);
        if (std::abs(e[m]) <= 1e-300 + 2.3e-16 * dd) break;
      }
      if (m != l) {
        IMPREG_CHECK_MSG(iter++ < 50, "tql2 failed to converge");
        double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
        double r = Hypot(g, 1.0);
        g = d[m] - d[l] + e[l] / (g + (g >= 0.0 ? std::abs(r) : -std::abs(r)));
        double s = 1.0;
        double c = 1.0;
        double p = 0.0;
        int i = m - 1;
        for (; i >= l; --i) {
          double f = s * e[i];
          const double b = c * e[i];
          r = Hypot(f, g);
          e[i + 1] = r;
          if (r == 0.0) {
            // Underflow guard: deflate and restart this eigenvalue.
            d[i + 1] -= p;
            e[m] = 0.0;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[i + 1] - p;
          r = (d[i] - g) * s + 2.0 * c * b;
          p = s * r;
          d[i + 1] = g + p;
          g = c * r - b;
          for (int k = 0; k < n; ++k) {
            f = z.At(k, i + 1);
            z.At(k, i + 1) = s * z.At(k, i) + c * f;
            z.At(k, i) = c * z.At(k, i) - s * f;
          }
        }
        if (r == 0.0 && i >= l) continue;
        d[l] -= p;
        e[l] = g;
        e[m] = 0.0;
      }
    } while (m != l);
  }

  // Sort ascending with the eigenvector columns.
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](int i, int j) { return d[i] < d[j]; });
  SymmetricEigen out;
  out.eigenvalues.resize(n);
  out.eigenvectors = DenseMatrix(n, n);
  for (int j = 0; j < n; ++j) {
    out.eigenvalues[j] = d[order[j]];
    for (int i = 0; i < n; ++i) out.eigenvectors.At(i, j) = z.At(i, order[j]);
  }
  return out;
}

}  // namespace impreg
