#ifndef IMPREG_LINALG_CHEBYSHEV_H_
#define IMPREG_LINALG_CHEBYSHEV_H_

#include "core/solve_status.h"
#include "linalg/operator.h"

/// \file
/// Chebyshev semi-iteration for SPD systems with known spectrum bounds.
///
/// For the PageRank system (γI + (1−γ)ℒ) x = b the spectrum is known
/// analytically — [γ, γ + 2(1−γ)] — which is exactly the situation
/// Chebyshev acceleration wants: it converges like CG (√κ rate) but
/// with a fixed, inner-product-free recurrence, the property that made
/// such methods attractive in the distributed/streaming settings the
/// paper's §3.3 gestures at (no global reductions per step).

namespace impreg {

/// Options for ChebyshevSolve.
struct ChebyshevOptions {
  int max_iterations = 2000;
  /// Convergence: ‖r‖₂ ≤ tolerance · ‖b‖₂.
  double relative_tolerance = 1e-10;
};

/// Result of a Chebyshev solve. `x` is always finite. Chebyshev has no
/// inner products to keep it honest, so the residual trajectory is
/// watched: sustained growth far past the best residual seen (wrong
/// eigenvalue bounds make the recurrence amplify instead of damp) stops
/// the solve with diagnostics.status = kBreakdown and returns the
/// best-so-far iterate; callers can then fall back to a plain power
/// iteration (see PersonalizedPageRankChebyshev).
struct ChebyshevResult {
  Vector x;
  int iterations = 0;
  double residual_norm = 0.0;
  /// Kept in sync with diagnostics.status == kConverged.
  bool converged = false;
  SolverDiagnostics diagnostics;
};

/// Solves A x = b for SPD A whose spectrum lies in
/// [lambda_min, lambda_max] (0 < lambda_min ≤ lambda_max).
ChebyshevResult ChebyshevSolve(const LinearOperator& a, const Vector& b,
                               double lambda_min, double lambda_max,
                               const ChebyshevOptions& options = {});

}  // namespace impreg

#endif  // IMPREG_LINALG_CHEBYSHEV_H_
