#include "core/trace.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace impreg {

const char* TraceEventKindName(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kResidual:    return "residual";
    case TraceEventKind::kConductance: return "conductance";
    case TraceEventKind::kArcWork:     return "arc-work";
    case TraceEventKind::kRollback:    return "rollback";
    case TraceEventKind::kFault:       return "fault";
    case TraceEventKind::kBudget:      return "budget";
    case TraceEventKind::kPhase:       return "phase";
  }
  return "unknown";
}

SolverTrace::SolverTrace(std::string solver, std::size_t capacity)
    : solver_(std::move(solver)), capacity_(capacity > 0 ? capacity : 1) {
  ring_.reserve(capacity_ < 64 ? capacity_ : 64);
}

void SolverTrace::Record(std::int64_t iteration, TraceEventKind kind,
                         double value) {
  std::lock_guard<std::mutex> lock(mu_);
  const TraceEvent event{iteration, kind, value};
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
  } else {
    ring_[next_] = event;
    next_ = (next_ + 1) % capacity_;
  }
  ++total_;
  const int k = static_cast<int>(kind);
  if (k >= 0 && k < kNumKinds) {
    kind_totals_[k] += value;
    ++kind_counts_[k];
  }
}

void SolverTrace::Finish(const SolverDiagnostics& diag) {
  std::lock_guard<std::mutex> lock(mu_);
  status_ = diag.status;
  iterations_ = diag.iterations;
  final_residual_ = diag.final_residual;
  finished_ = true;
}

std::vector<TraceEvent> SolverTrace::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  // next_ is the oldest slot once the ring has wrapped.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

std::int64_t SolverTrace::TotalRecorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

std::int64_t SolverTrace::EventsDropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_ - static_cast<std::int64_t>(ring_.size());
}

double SolverTrace::SumValues(TraceEventKind kind) const {
  double sum = 0.0;
  for (const TraceEvent& e : Events()) {
    if (e.kind == kind) sum += e.value;
  }
  return sum;
}

double SolverTrace::KindTotal(TraceEventKind kind) const {
  std::lock_guard<std::mutex> lock(mu_);
  const int k = static_cast<int>(kind);
  return k >= 0 && k < kNumKinds ? kind_totals_[k] : 0.0;
}

std::int64_t SolverTrace::KindCount(TraceEventKind kind) const {
  std::lock_guard<std::mutex> lock(mu_);
  const int k = static_cast<int>(kind);
  return k >= 0 && k < kNumKinds ? kind_counts_[k] : 0;
}

TraceCollector& TraceCollector::Get() {
  static TraceCollector* collector = new TraceCollector();  // Leaked.
  return *collector;
}

void TraceCollector::Enable(std::size_t ring_capacity,
                            std::size_t max_traces) {
  std::lock_guard<std::mutex> lock(mu_);
  ring_capacity_ = ring_capacity > 0 ? ring_capacity : 1;
  max_traces_ = max_traces > 0 ? max_traces : 1;
  enabled_.store(true, std::memory_order_relaxed);
}

void TraceCollector::Disable() {
  enabled_.store(false, std::memory_order_relaxed);
}

void TraceCollector::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  traces_.clear();
  traces_dropped_ = 0;
}

SolverTrace* TraceCollector::Begin(const char* solver) {
  if (!Enabled()) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  if (traces_.size() >= max_traces_) {
    // Never destroy a retained trace while solvers may still hold
    // pointers into it — refuse instead; memory stays bounded.
    ++traces_dropped_;
    return nullptr;
  }
  traces_.push_back(std::make_unique<SolverTrace>(solver, ring_capacity_));
  return traces_.back().get();
}

std::vector<const SolverTrace*> TraceCollector::Traces() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<const SolverTrace*> out;
  out.reserve(traces_.size());
  for (const auto& t : traces_) out.push_back(t.get());
  return out;
}

const SolverTrace* TraceCollector::Latest(const std::string& solver) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = traces_.rbegin(); it != traces_.rend(); ++it) {
    if ((*it)->solver() == solver) return it->get();
  }
  return nullptr;
}

std::int64_t TraceCollector::TracesDropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return traces_dropped_;
}

namespace {

void AppendJsonEscaped(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

void AppendJsonNumber(std::ostringstream& out, double v) {
  if (std::isfinite(v)) {
    out << v;
  } else {
    out << "null";
  }
}

}  // namespace

std::string TraceCollector::ToJson() const {
  std::ostringstream out;
  out.precision(17);
  out << "{\n  \"schema\": \"impreg-trace-v1\",\n";
  out << "  \"traces_dropped\": " << TracesDropped() << ",\n";
  out << "  \"traces\": [\n";
  const std::vector<const SolverTrace*> traces = Traces();
  for (std::size_t i = 0; i < traces.size(); ++i) {
    const SolverTrace& t = *traces[i];
    out << "    {\"solver\": ";
    AppendJsonEscaped(out, t.solver());
    out << ", \"status\": ";
    AppendJsonEscaped(out, SolveStatusName(t.status()));
    out << ", \"iterations\": " << t.iterations();
    out << ", \"final_residual\": ";
    AppendJsonNumber(out, t.final_residual());
    out << ",\n     \"events_recorded\": " << t.TotalRecorded()
        << ", \"events_dropped\": " << t.EventsDropped();
    out << ",\n     \"totals\": {";
    bool first_total = true;
    for (int k = 0; k < 7; ++k) {
      const TraceEventKind kind = static_cast<TraceEventKind>(k);
      if (t.KindCount(kind) == 0) continue;
      if (!first_total) out << ", ";
      first_total = false;
      AppendJsonEscaped(out, TraceEventKindName(kind));
      out << ": ";
      AppendJsonNumber(out, t.KindTotal(kind));
    }
    out << "}, \"events\": [";
    const std::vector<TraceEvent> events = t.Events();
    for (std::size_t e = 0; e < events.size(); ++e) {
      if (e > 0) out << ", ";
      out << "{\"iter\": " << events[e].iteration << ", \"kind\": ";
      AppendJsonEscaped(out, TraceEventKindName(events[e].kind));
      out << ", \"value\": ";
      AppendJsonNumber(out, events[e].value);
      out << "}";
    }
    out << "]}";
    if (i + 1 < traces.size()) out << ",";
    out << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

bool TraceCollector::WriteJson(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << ToJson();
  return static_cast<bool>(out);
}

}  // namespace impreg
