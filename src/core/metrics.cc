#include "core/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>

namespace impreg {

namespace {

/// Runtime enable flag. Initialized from IMPREG_METRICS on first
/// query ("0", "" and unset mean off), then owned by
/// ImpregEnableMetrics.
std::atomic<bool> g_metrics_enabled{false};

bool EnvDefault() {
  const char* env = std::getenv("IMPREG_METRICS");
  return env != nullptr && std::strcmp(env, "0") != 0 &&
         std::strcmp(env, "") != 0;
}

std::atomic<bool> g_env_checked{false};

}  // namespace

bool MetricsEnabled() {
  if (!g_env_checked.load(std::memory_order_acquire)) {
    // Benign race: every thread computes the same value.
    if (EnvDefault()) g_metrics_enabled.store(true, std::memory_order_relaxed);
    g_env_checked.store(true, std::memory_order_release);
  }
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void ImpregEnableMetrics(bool enabled) {
  g_env_checked.store(true, std::memory_order_release);
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

namespace metrics_internal {

int ThreadShard() {
  // A stable per-thread index. Sequential assignment (not a hash of the
  // thread id) keeps the mapping deterministic for a deterministic
  // thread-creation order, which makes Histogram::Sum reproducible too.
  static std::atomic<int> next{0};
  thread_local const int shard =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shard;
}

}  // namespace metrics_internal

std::uint64_t Gauge::Encode(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double Gauge::Decode(std::uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

void Histogram::Observe(double value) {
  if (!(value >= 0.0)) return;  // NaN and negatives are dropped.
  int bucket = 0;
  if (value >= 1.0) {
    bucket = std::min(kBuckets - 1, std::ilogb(value));
  }
  Shard& shard = shards_[metrics_internal::ThreadShard()];
  shard.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(value, std::memory_order_relaxed);
}

std::vector<std::int64_t> Histogram::BucketCounts() const {
  std::vector<std::int64_t> out(kBuckets, 0);
  for (const Shard& s : shards_) {
    for (int b = 0; b < kBuckets; ++b) {
      out[b] += s.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return out;
}

std::int64_t Histogram::Count() const {
  std::int64_t total = 0;
  for (const std::int64_t c : BucketCounts()) total += c;
  return total;
}

double Histogram::Sum() const {
  // Shard-order accumulation: a fixed association, so the merged sum is
  // reproducible run-to-run for the same thread→shard assignment.
  double total = 0.0;
  for (const Shard& s : shards_) {
    total += s.sum.load(std::memory_order_relaxed);
  }
  return total;
}

struct MetricsRegistry::Impl {
  mutable std::mutex mu;
  // std::map: stable pointers AND already name-sorted for Snapshot().
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

MetricsRegistry& MetricsRegistry::Get() {
  static MetricsRegistry* registry = new MetricsRegistry();  // Leaked.
  return *registry;
}

MetricsRegistry::Impl& MetricsRegistry::impl() const {
  static Impl* impl = new Impl();  // Leaked: handles outlive main.
  return *impl;
}

Counter* MetricsRegistry::FindOrCreateCounter(const std::string& name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  auto& slot = i.counters[name];
  if (!slot) slot = std::make_unique<Counter>(name);
  return slot.get();
}

Gauge* MetricsRegistry::FindOrCreateGauge(const std::string& name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  auto& slot = i.gauges[name];
  if (!slot) slot = std::make_unique<Gauge>(name);
  return slot.get();
}

Histogram* MetricsRegistry::FindOrCreateHistogram(const std::string& name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  auto& slot = i.histograms[name];
  if (!slot) slot = std::make_unique<Histogram>(name);
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : i.counters) {
    snap.counters.push_back({name, counter->Value()});
  }
  for (const auto& [name, gauge] : i.gauges) {
    snap.gauges.push_back({name, gauge->Value()});
  }
  for (const auto& [name, hist] : i.histograms) {
    MetricsSnapshot::HistogramValue h;
    h.name = name;
    h.sum = hist->Sum();
    const std::vector<std::int64_t> buckets = hist->BucketCounts();
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      if (buckets[b] != 0) {
        h.buckets.emplace_back(b, buckets[b]);
        h.count += buckets[b];
      }
    }
    snap.histograms.push_back(std::move(h));
  }
  return snap;
}

void MetricsRegistry::Reset() {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  for (auto& [name, counter] : i.counters) {
    for (auto& cell : counter->cells_) {
      cell.v.store(0, std::memory_order_relaxed);
    }
  }
  for (auto& [name, gauge] : i.gauges) gauge->Set(0.0);
  for (auto& [name, hist] : i.histograms) {
    for (auto& shard : hist->shards_) {
      for (auto& b : shard.buckets) b.store(0, std::memory_order_relaxed);
      shard.sum.store(0.0, std::memory_order_relaxed);
    }
  }
}

namespace {

void AppendJsonEscaped(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

/// JSON-safe number: NaN/Inf (legal gauge values, illegal JSON) become
/// null.
void AppendJsonNumber(std::ostringstream& out, double v) {
  if (std::isfinite(v)) {
    out << v;
  } else {
    out << "null";
  }
}

}  // namespace

std::string MetricsSnapshot::ToJson() const {
  std::ostringstream out;
  out.precision(17);
  out << "{\"counters\": {";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    if (i > 0) out << ", ";
    AppendJsonEscaped(out, counters[i].name);
    out << ": " << counters[i].value;
  }
  out << "}, \"gauges\": {";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    if (i > 0) out << ", ";
    AppendJsonEscaped(out, gauges[i].name);
    out << ": ";
    AppendJsonNumber(out, gauges[i].value);
  }
  out << "}, \"histograms\": {";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const HistogramValue& h = histograms[i];
    if (i > 0) out << ", ";
    AppendJsonEscaped(out, h.name);
    out << ": {\"count\": " << h.count << ", \"sum\": ";
    AppendJsonNumber(out, h.sum);
    out << ", \"buckets\": {";
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (b > 0) out << ", ";
      out << '"' << h.buckets[b].first << "\": " << h.buckets[b].second;
    }
    out << "}}";
  }
  out << "}}";
  return out.str();
}

std::string MetricsSnapshot::ToText() const {
  std::ostringstream out;
  for (const CounterValue& c : counters) {
    out << c.name << " " << c.value << "\n";
  }
  for (const GaugeValue& g : gauges) {
    out << g.name << " " << g.value << "\n";
  }
  for (const HistogramValue& h : histograms) {
    out << h.name << " count=" << h.count << " sum=" << h.sum;
    if (h.count > 0) out << " mean=" << h.sum / static_cast<double>(h.count);
    out << "\n";
  }
  return out.str();
}

ScopedMetricTimer::~ScopedMetricTimer() {
  if (!armed_) return;
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  const double ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
  // No static-handle caching here: one destructor serves many names.
  MetricsRegistry::Get().FindOrCreateHistogram(name_)->Observe(ns);
}

}  // namespace impreg
