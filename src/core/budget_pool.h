#ifndef IMPREG_CORE_BUDGET_POOL_H_
#define IMPREG_CORE_BUDGET_POOL_H_

#include <cstdint>
#include <map>
#include <string>

#include "core/work_budget.h"

/// \file
/// Per-tenant admission control: WorkBudget pools with a deterministic
/// degradation ladder.
///
/// The paper's central trade — computation for statistical quality —
/// becomes an *operational* dial under production traffic: when a
/// tenant's work pool drains, the serving tier does not queue or fail
/// randomly, it walks a ladder of progressively cheaper answers:
///
///   exact  →  warm-restart  →  budget-capped (degraded-but-marked)  →  shed
///
/// The first two rungs are the QueryEngine's normal behavior (the cache
/// warm-restarts whenever state is available). This pool implements the
/// last two: once a tenant's spend crosses `degrade_fraction` of its
/// capacity, new queries are admitted with a hard per-query arc cap
/// (their results carry kBudgetExhausted + degraded=true when the cap
/// binds); once spend crosses `shed_fraction`, queries are refused
/// outright with kShed — no computation, an explicit marking, never a
/// silent drop.
///
/// Determinism contract: Admit() is called by the engine in sequential
/// arrival order, and every decision is a pure function of (tenant,
/// arrival index, pool state at that arrival). Pool state evolves only
/// through admission-time charges — the query's declared max_work or
/// the policy's default_cost, never the solver's measured work (which a
/// cache hit would zero out) — so for a fixed request sequence the shed
/// set is bit-identical at any thread count, cache on or off. Observed
/// solver arcs are recorded separately via Settle() for reporting.
///
/// Each tenant's ledger is a WorkBudget, which also gives the
/// fault-injection harness its hook: the "service/admission_budget"
/// site can ForceExhausted() a pool to rehearse overload.

namespace impreg {

/// What admission decided for one arrival.
enum class AdmissionDecision {
  kExact,     ///< Full budget: the query runs as requested.
  kDegraded,  ///< Admitted with a hard arc cap (`granted_cap`).
  kShed,      ///< Refused: no execution, response carries kShed.
};

/// Stable names: "exact", "degraded", "shed".
const char* AdmissionDecisionName(AdmissionDecision decision);

/// The ladder's thresholds, shared by every tenant (capacity can be
/// overridden per tenant).
struct TenantPolicy {
  /// Pool size in arc traversals (0 = unlimited: every query exact).
  std::int64_t capacity = 0;
  /// Spend fraction at which admission starts capping queries.
  double degrade_fraction = 0.5;
  /// Spend fraction at which admission sheds (1.0 = only when drained).
  double shed_fraction = 1.0;
  /// Arc cap granted to queries admitted in the degraded band.
  std::int64_t degraded_cap = 2048;
  /// Charge billed for a query that declares no max_work of its own —
  /// the admission-time cost estimate. Charges are permanent (never
  /// reconciled against measured work) so pool state stays a pure
  /// function of the arrival sequence.
  std::int64_t default_cost = 4096;
};

/// Per-tenant admission counters (mirrored into service.admission.*
/// metrics when metrics are enabled).
struct TenantAdmissionStats {
  std::int64_t admitted_exact = 0;
  std::int64_t admitted_degraded = 0;
  std::int64_t shed = 0;
  /// Observed solver arcs (Settle; reporting only — decisions bill the
  /// admission-time estimates, not this).
  std::int64_t spent_arcs = 0;
};

/// A map of tenant name → WorkBudget ledger walking the ladder above.
/// Not thread-safe: the engine serializes admission around its parallel
/// execution phase, which is exactly what makes decisions replayable.
class TenantBudgetPool {
 public:
  explicit TenantBudgetPool(const TenantPolicy& policy);

  /// Overrides the pool capacity for one tenant (before or between
  /// batches; 0 = unlimited for that tenant).
  void SetCapacity(const std::string& tenant, std::int64_t capacity);

  /// Decides one arrival and bills its cost. On kExact the charge is
  /// the query's declared work (or `default_cost`), clamped to the
  /// remaining headroom; on kDegraded it is `*granted_cap`
  /// (≤ degraded_cap); on kShed nothing is charged. Charges are
  /// permanent — pool state is a pure function of the arrival sequence.
  /// `requested_work` is the query's own max_work (0 = undeclared).
  AdmissionDecision Admit(const std::string& tenant,
                          std::int64_t requested_work,
                          std::int64_t* granted_cap);

  /// Records a finished query's observed solver arcs into the tenant's
  /// stats. Reporting only — never touches the decision ledger, so
  /// cache hits (which settle at 0) cannot shift the shed set.
  void Settle(const std::string& tenant, std::int64_t actual_work);

  /// The billed admission-time spend for `tenant` (0 for unknown
  /// tenants).
  std::int64_t Spent(const std::string& tenant) const;

  /// The capacity in force for `tenant`.
  std::int64_t Capacity(const std::string& tenant) const;

  /// Per-tenant counters, name-sorted (stable iteration for reports).
  const std::map<std::string, TenantAdmissionStats>& stats() const {
    return stats_;
  }

  const TenantPolicy& policy() const { return policy_; }

  /// Drops every ledger and counter (a fresh accounting window).
  void Reset();

 private:
  WorkBudget& LedgerFor(const std::string& tenant);

  TenantPolicy policy_;
  std::map<std::string, std::int64_t> capacity_override_;
  std::map<std::string, WorkBudget> ledgers_;
  std::map<std::string, TenantAdmissionStats> stats_;
};

}  // namespace impreg

#endif  // IMPREG_CORE_BUDGET_POOL_H_
