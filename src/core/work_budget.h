#ifndef IMPREG_CORE_WORK_BUDGET_H_
#define IMPREG_CORE_WORK_BUDGET_H_

#include <chrono>
#include <cstdint>

#include "core/metrics.h"

/// \file
/// Cooperative work budget for the long-running drivers (multilevel
/// flow, recursive partitioning, NCP portfolio sweeps).
///
/// A WorkBudget is an arc-traversal counter with an optional wall-clock
/// deadline. Drivers Charge() the arcs they scan and test Exhausted()
/// at chunk boundaries (between coarsening levels, refinement passes,
/// portfolio seeds, max-flow phases); when the budget runs out they
/// stop and return their best-so-far result tagged kBudgetExhausted —
/// a deliberate early stop, not a failure (the paper's point: the
/// truncated computation is still a meaningful, regularized answer).
///
/// The arc counter is deterministic: the same budget on the same input
/// cuts the run at the same chunk boundary every time, so budgeted
/// results are reproducible. The wall-clock deadline is inherently
/// machine-dependent and is opt-in (0 = disabled); it is only consulted
/// inside Exhausted(), i.e. at the same chunk boundaries.
///
/// Budgets are passed by raw pointer through options structs (nullptr =
/// unlimited) so one budget can be shared cooperatively across nested
/// drivers — e.g. a k-way partition hands the same budget to every
/// bisection it spawns.

namespace impreg {

class WorkBudget {
 public:
  /// Unlimited budget (never exhausts).
  WorkBudget() = default;

  /// Budget of `max_arcs` arc traversals (0 = unlimited) and an
  /// optional wall-clock deadline in seconds from now (0 = none).
  explicit WorkBudget(std::int64_t max_arcs, double wall_clock_seconds = 0.0)
      : max_arcs_(max_arcs > 0 ? max_arcs : 0) {
    if (wall_clock_seconds > 0.0) {
      deadline_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                     std::chrono::duration<double>(
                                         wall_clock_seconds));
      has_deadline_ = true;
    }
  }

  /// Records `arcs` traversals (non-negative).
  void Charge(std::int64_t arcs) { spent_ += arcs; }

  /// True once the arc cap or the deadline has been crossed. Sticky:
  /// once exhausted, stays exhausted (so a driver that observed
  /// exhaustion mid-phase reports it even if a later check would pass).
  bool Exhausted() {
    if (exhausted_) return true;
    if (max_arcs_ > 0 && spent_ >= max_arcs_) exhausted_ = true;
    if (!exhausted_ && has_deadline_ && Clock::now() >= deadline_) {
      exhausted_ = true;
    }
    if (exhausted_) {
      // Published once, on the transition only: Charge() stays a bare
      // add and repeat Exhausted() calls return via the sticky flag.
      IMPREG_METRIC_COUNT("budget.exhaustions", 1);
      IMPREG_METRIC_GAUGE_SET("budget.last_exhausted.spent_arcs",
                              static_cast<double>(spent_));
      IMPREG_METRIC_GAUGE_SET("budget.last_exhausted.limit_arcs",
                              static_cast<double>(max_arcs_));
    }
    return exhausted_;
  }

  /// Marks the budget exhausted unconditionally (used by the fault-
  /// injection harness to simulate exhaustion deterministically).
  void ForceExhausted() { exhausted_ = true; }

  /// Arc traversals charged so far.
  std::int64_t Spent() const { return spent_; }

  /// The arc cap (0 = unlimited).
  std::int64_t Limit() const { return max_arcs_; }

 private:
  using Clock = std::chrono::steady_clock;

  std::int64_t max_arcs_ = 0;
  std::int64_t spent_ = 0;
  bool has_deadline_ = false;
  bool exhausted_ = false;
  Clock::time_point deadline_{};
};

}  // namespace impreg

#endif  // IMPREG_CORE_WORK_BUDGET_H_
