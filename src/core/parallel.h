#ifndef IMPREG_CORE_PARALLEL_H_
#define IMPREG_CORE_PARALLEL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

/// \file
/// Deterministic shared-memory parallelism for the hot kernels.
///
/// The paper's diffusions (§3.1) and spectral methods (§3.2) all reduce
/// to repeated sparse matrix–vector products and dense vector reductions.
/// This header provides the execution layer that lets those kernels
/// saturate one machine's cores without sacrificing the library's
/// bit-for-bit reproducibility guarantee:
///
///  - `ParallelFor(begin, end, grain, body)` splits [begin, end) into
///    fixed chunks of size `grain` and runs `body(chunk_begin, chunk_end)`
///    across a static-partition thread pool (no work stealing: chunk c is
///    always processed by thread c mod T).
///  - `ParallelReduce(begin, end, grain, identity, map, combine)` computes
///    one partial per chunk and folds the partials **in chunk order**.
///    Chunk boundaries depend only on (begin, end, grain) — never on the
///    thread count — so the result is bit-identical whether the pool has
///    1 thread or 64.
///
/// Thread count is configured by `ImpregSetNumThreads()` or the
/// `IMPREG_THREADS` environment variable (read once, at first use); a
/// count of 1 means the pre-existing serial path: no pool is touched and
/// chunks run inline on the calling thread. Nested parallel regions fall
/// back to serial execution, so operator code may freely compose.
///
/// Exceptions thrown by `body`/`map` are captured on the worker and
/// rethrown on the calling thread (first one wins; remaining chunks of
/// the faulted region may be skipped).

namespace impreg {

/// Sets the number of threads used by subsequent parallel regions.
/// `num_threads` ≥ 1; 0 (or negative) restores the automatic default
/// (IMPREG_THREADS if set, else std::thread::hardware_concurrency).
/// Not safe to call concurrently with a running parallel region.
void ImpregSetNumThreads(int num_threads);

/// The number of threads parallel regions currently use (≥ 1).
int ImpregNumThreads();

/// RAII guard: sets the thread count, restores the previous one on exit.
/// Used by tests and benchmarks that sweep thread counts.
class ScopedNumThreads {
 public:
  explicit ScopedNumThreads(int num_threads) : previous_(ImpregNumThreads()) {
    ImpregSetNumThreads(num_threads);
  }
  ~ScopedNumThreads() { ImpregSetNumThreads(previous_); }

  ScopedNumThreads(const ScopedNumThreads&) = delete;
  ScopedNumThreads& operator=(const ScopedNumThreads&) = delete;

 private:
  int previous_;
};

namespace internal {

/// Number of grain-sized chunks covering [begin, end); 0 for empty ranges.
/// Chunk boundaries are a pure function of (begin, end, grain) — the
/// foundation of the determinism guarantee.
std::int64_t ChunkCount(std::int64_t begin, std::int64_t end,
                        std::int64_t grain);

/// Runs `chunk_fn(c)` for every c in [0, num_chunks) on the pool.
/// Serial (inline, in increasing c) when the thread count is 1, when
/// num_chunks ≤ 1, or when called from inside another parallel region.
void RunChunks(std::int64_t num_chunks,
               const std::function<void(std::int64_t)>& chunk_fn);

/// True while the calling thread is executing inside a parallel region
/// (used for the nested-region serial fallback).
bool InParallelRegion();

}  // namespace internal

/// Runs `body(chunk_begin, chunk_end)` over fixed grain-sized chunks of
/// [begin, end). Chunks may execute concurrently; `body` must write only
/// to locations owned by its chunk.
inline void ParallelFor(std::int64_t begin, std::int64_t end,
                        std::int64_t grain,
                        const std::function<void(std::int64_t, std::int64_t)>&
                            body) {
  if (begin >= end) return;
  const std::int64_t g = grain < 1 ? 1 : grain;
  const std::int64_t chunks = internal::ChunkCount(begin, end, g);
  if (chunks == 1) {
    body(begin, end);
    return;
  }
  internal::RunChunks(chunks, [&](std::int64_t c) {
    const std::int64_t b = begin + c * g;
    const std::int64_t e = b + g < end ? b + g : end;
    body(b, e);
  });
}

/// Deterministic reduction: partials, one per grain-sized chunk, folded
/// in chunk order as combine(combine(identity, p₀), p₁)… The fold order
/// and chunk boundaries are independent of the thread count, so the
/// result is bit-identical for any pool size (floating-point addition is
/// not associative; a fixed association makes it reproducible).
template <typename T, typename Map, typename Combine>
T ParallelReduce(std::int64_t begin, std::int64_t end, std::int64_t grain,
                 T identity, Map&& map, Combine&& combine) {
  if (begin >= end) return identity;
  const std::int64_t g = grain < 1 ? 1 : grain;
  const std::int64_t chunks = internal::ChunkCount(begin, end, g);
  if (chunks == 1) return combine(std::move(identity), map(begin, end));
  // Heap array, not std::vector<T>: for T = bool the vector<bool>
  // specialization packs partials into shared words, and concurrent
  // chunk writes to adjacent bits are a data race.
  std::unique_ptr<T[]> partials(new T[static_cast<std::size_t>(chunks)]);
  internal::RunChunks(chunks, [&](std::int64_t c) {
    const std::int64_t b = begin + c * g;
    const std::int64_t e = b + g < end ? b + g : end;
    partials[static_cast<std::size_t>(c)] = map(b, e);
  });
  T accum = std::move(identity);
  for (std::int64_t c = 0; c < chunks; ++c) {
    accum = combine(std::move(accum), partials[static_cast<std::size_t>(c)]);
  }
  return accum;
}

}  // namespace impreg

#endif  // IMPREG_CORE_PARALLEL_H_
