#include "core/approx_eigenvector.h"

#include <algorithm>
#include <cmath>

#include "diffusion/heat_kernel.h"
#include "diffusion/pagerank.h"
#include "diffusion/seed.h"
#include "linalg/graph_operators.h"
#include "linalg/lanczos.h"
#include "linalg/power_method.h"
#include "util/check.h"

namespace impreg {

namespace {

// Projects off the trivial direction and normalizes. False if the
// vector collapsed onto the trivial direction (or was non-finite) — the
// caller degrades instead of aborting.
bool FinalizeHatVector(const Vector& trivial, Vector& x) {
  if (!AllFinite(x)) return false;
  ProjectOut(trivial, x);
  return Normalize(x) > 1e-12;
}

// Deterministic degraded output: the first basis direction with a
// nonzero projection off the trivial eigenvector, normalized. Always
// finite, unit, ⟂ trivial — a valid (if uninformative) hat vector.
Vector FallbackHatVector(const Vector& trivial) {
  Vector x(trivial.size(), 0.0);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = 1.0;
    ProjectOut(trivial, x);
    if (Normalize(x) > 1e-12) return x;
    std::fill(x.begin(), x.end(), 0.0);
  }
  return x;
}

// Replaces a collapsed/poisoned diffusion output with the fallback
// direction and records why.
void DegradeToFallback(const Vector& trivial, ApproxEigenvectorResult& result,
                       const char* method) {
  result.x = FallbackHatVector(trivial);
  result.diagnostics.status =
      MergeStatus(result.diagnostics.status, SolveStatus::kBreakdown);
  result.diagnostics.detail =
      std::string(method) +
      " output collapsed onto the trivial direction; x is a fallback "
      "basis direction";
}

}  // namespace

ApproxEigenvectorResult ApproximateSecondEigenvector(
    const Graph& g, const ApproxEigenvectorOptions& options) {
  IMPREG_CHECK_MSG(g.NumEdges() > 0, "graph has no edges");
  const NormalizedLaplacianOperator lap(g);
  const Vector& trivial = lap.TrivialEigenvector();
  Rng rng(options.rng_seed);

  ApproxEigenvectorResult result;
  result.diagnostics.status = SolveStatus::kConverged;
  switch (options.method) {
    case EigenvectorMethod::kExact: {
      LanczosOptions lanczos;
      lanczos.seed = options.rng_seed;
      lanczos.deflate.push_back(trivial);
      const LanczosResult eig = LanczosSmallest(lap, 1, lanczos);
      if (eig.diagnostics.usable() && !eig.eigenvectors.empty() &&
          AllFinite(eig.eigenvectors.front())) {
        result.x = eig.eigenvectors.front();
        result.diagnostics = eig.diagnostics;
      } else {
        // Lanczos broke down: substitute a power-method approximation.
        // The output is a usable hat vector but NOT the requested
        // machine-precision eigenvector, so the status says so.
        PowerMethodOptions pm;
        const PowerMethodResult run =
            SecondEigenpairPowerMethod(g, RandomSignSeed(g, rng), pm);
        result.x = run.eigenvector;
        if (!FinalizeHatVector(trivial, result.x)) {
          result.x = FallbackHatVector(trivial);
        }
        result.diagnostics.status = SolveStatus::kBreakdown;
        result.diagnostics.detail =
            "Lanczos failed (" + eig.diagnostics.Summary() +
            "); x is a power-method approximation, not the exact "
            "eigenvector";
      }
      break;
    }
    case EigenvectorMethod::kPowerMethod: {
      PowerMethodOptions pm;
      pm.max_iterations = options.power_iterations;
      pm.tolerance = 0.0;  // Run the full budget: early stopping is the
                           // regularizer here.
      const PowerMethodResult run =
          SecondEigenpairPowerMethod(g, RandomSignSeed(g, rng), pm);
      result.x = run.eigenvector;
      result.diagnostics = run.diagnostics;
      if (run.diagnostics.status == SolveStatus::kMaxIterations) {
        // Exhausting the fixed budget is this method's *design*, not an
        // early stop worth flagging.
        result.diagnostics.status = SolveStatus::kConverged;
      }
      if (!result.diagnostics.usable() ||
          !FinalizeHatVector(trivial, result.x)) {
        DegradeToFallback(trivial, result, "power method");
      }
      result.implicit_regularizer =
          "early stopping after " + std::to_string(options.power_iterations) +
          " power iterations (no closed-form G; see §2.3)";
      break;
    }
    case EigenvectorMethod::kHeatKernel: {
      HeatKernelOptions hk;
      hk.t = options.t;
      result.x =
          HeatKernelNormalized(g, RandomSignSeed(g, rng), hk,
                               &result.diagnostics);
      if (!result.diagnostics.usable() ||
          !FinalizeHatVector(trivial, result.x)) {
        DegradeToFallback(trivial, result, "heat-kernel diffusion");
      }
      result.implicit_regularizer =
          "generalized entropy G(X) = Tr(X log X), eta = t";
      result.eta = options.t;
      break;
    }
    case EigenvectorMethod::kPageRank: {
      // Diffuse a random-sign hat vector through the symmetrized
      // PageRank operator γ(γI + (1−γ)ℒ)^{-1}: positive and negative
      // charge, as in footnote 16.
      const Vector seed_hat = RandomSignSeed(g, rng);
      // Split into positive/negative parts in probability space and
      // run the linear (seed-superposable) PPR on the difference.
      Vector prob = FromHatSpace(g, seed_hat);
      Vector pos(prob.size(), 0.0), neg(prob.size(), 0.0);
      for (std::size_t i = 0; i < prob.size(); ++i) {
        if (prob[i] >= 0.0) {
          pos[i] = prob[i];
        } else {
          neg[i] = -prob[i];
        }
      }
      PageRankOptions pr;
      pr.gamma = options.gamma;
      const PageRankResult run_pos = PersonalizedPageRankExact(g, pos, pr);
      const PageRankResult run_neg = PersonalizedPageRankExact(g, neg, pr);
      result.diagnostics = run_pos.diagnostics.usable()
                               ? run_neg.diagnostics
                               : run_pos.diagnostics;
      result.diagnostics.status = MergeStatus(run_pos.diagnostics.status,
                                              run_neg.diagnostics.status);
      Vector diff(prob.size());
      for (std::size_t i = 0; i < prob.size(); ++i) {
        diff[i] = run_pos.scores[i] - run_neg.scores[i];
      }
      result.x = ToHatSpace(g, diff);
      if (!result.diagnostics.usable() ||
          !FinalizeHatVector(trivial, result.x)) {
        DegradeToFallback(trivial, result, "PageRank diffusion");
      }
      result.implicit_regularizer =
          "log-determinant G(X) = -log det X, mu = gamma/(1-gamma)";
      result.eta = options.gamma / (1.0 - options.gamma);
      break;
    }
    case EigenvectorMethod::kLazyWalk: {
      IMPREG_CHECK(options.steps >= 1);
      const Vector seed_hat = RandomSignSeed(g, rng);
      // Apply the symmetric lazy operator I − (1−α)ℒ directly in hat
      // space (it shares eigenvectors with ℒ).
      const ShiftedOperator lazy_hat(lap, -(1.0 - options.alpha), 1.0);
      Vector current = seed_hat;
      Vector next;
      for (int step = 0; step < options.steps; ++step) {
        lazy_hat.Apply(current, next);
        if (!AllFinite(next)) {
          result.diagnostics.status = SolveStatus::kNonFinite;
          result.diagnostics.detail =
              "lazy walk went non-finite at step " +
              std::to_string(step + 1) + "; x is the last finite iterate";
          break;
        }
        // Only the direction matters; renormalize so thousands of steps
        // cannot underflow the iterate to zero.
        if (Normalize(next) <= 0.0) {
          result.diagnostics.status = SolveStatus::kBreakdown;
          result.diagnostics.detail =
              "lazy walk annihilated the seed at step " +
              std::to_string(step + 1) + "; x is the last nonzero iterate";
          break;
        }
        current.swap(next);
      }
      result.x = std::move(current);
      if (!FinalizeHatVector(trivial, result.x)) {
        DegradeToFallback(trivial, result, "lazy walk");
      }
      result.implicit_regularizer =
          "matrix p-norm G(X) = (1/p)||X||_p^p, p = 1 + 1/k";
      result.eta = 1.0 + 1.0 / static_cast<double>(options.steps);
      break;
    }
  }
  result.rayleigh = lap.RayleighQuotient(result.x);
  return result;
}

}  // namespace impreg
