#include "core/approx_eigenvector.h"

#include <cmath>

#include "diffusion/heat_kernel.h"
#include "diffusion/pagerank.h"
#include "diffusion/seed.h"
#include "linalg/graph_operators.h"
#include "linalg/lanczos.h"
#include "linalg/power_method.h"
#include "util/check.h"

namespace impreg {

namespace {

// Projects off the trivial direction and normalizes; checks the result
// is usable.
void FinalizeHatVector(const Vector& trivial, Vector& x) {
  ProjectOut(trivial, x);
  IMPREG_CHECK_MSG(Normalize(x) > 1e-12,
                   "diffusion output collapsed onto the trivial direction");
}

}  // namespace

ApproxEigenvectorResult ApproximateSecondEigenvector(
    const Graph& g, const ApproxEigenvectorOptions& options) {
  IMPREG_CHECK_MSG(g.NumEdges() > 0, "graph has no edges");
  const NormalizedLaplacianOperator lap(g);
  const Vector& trivial = lap.TrivialEigenvector();
  Rng rng(options.rng_seed);

  ApproxEigenvectorResult result;
  switch (options.method) {
    case EigenvectorMethod::kExact: {
      LanczosOptions lanczos;
      lanczos.seed = options.rng_seed;
      lanczos.deflate.push_back(trivial);
      const LanczosResult eig = LanczosSmallest(lap, 1, lanczos);
      result.x = eig.eigenvectors.front();
      break;
    }
    case EigenvectorMethod::kPowerMethod: {
      PowerMethodOptions pm;
      pm.max_iterations = options.power_iterations;
      pm.tolerance = 0.0;  // Run the full budget: early stopping is the
                           // regularizer here.
      const PowerMethodResult run =
          SecondEigenpairPowerMethod(g, RandomSignSeed(g, rng), pm);
      result.x = run.eigenvector;
      result.implicit_regularizer =
          "early stopping after " + std::to_string(options.power_iterations) +
          " power iterations (no closed-form G; see §2.3)";
      break;
    }
    case EigenvectorMethod::kHeatKernel: {
      HeatKernelOptions hk;
      hk.t = options.t;
      result.x = HeatKernelNormalized(g, RandomSignSeed(g, rng), hk);
      FinalizeHatVector(trivial, result.x);
      result.implicit_regularizer =
          "generalized entropy G(X) = Tr(X log X), eta = t";
      result.eta = options.t;
      break;
    }
    case EigenvectorMethod::kPageRank: {
      // Diffuse a random-sign hat vector through the symmetrized
      // PageRank operator γ(γI + (1−γ)ℒ)^{-1}: positive and negative
      // charge, as in footnote 16.
      const Vector seed_hat = RandomSignSeed(g, rng);
      // Split into positive/negative parts in probability space and
      // run the linear (seed-superposable) PPR on the difference.
      Vector prob = FromHatSpace(g, seed_hat);
      Vector pos(prob.size(), 0.0), neg(prob.size(), 0.0);
      for (std::size_t i = 0; i < prob.size(); ++i) {
        if (prob[i] >= 0.0) {
          pos[i] = prob[i];
        } else {
          neg[i] = -prob[i];
        }
      }
      PageRankOptions pr;
      pr.gamma = options.gamma;
      const Vector p_pos = PersonalizedPageRankExact(g, pos, pr).scores;
      const Vector p_neg = PersonalizedPageRankExact(g, neg, pr).scores;
      Vector diff(prob.size());
      for (std::size_t i = 0; i < prob.size(); ++i) {
        diff[i] = p_pos[i] - p_neg[i];
      }
      result.x = ToHatSpace(g, diff);
      FinalizeHatVector(trivial, result.x);
      result.implicit_regularizer =
          "log-determinant G(X) = -log det X, mu = gamma/(1-gamma)";
      result.eta = options.gamma / (1.0 - options.gamma);
      break;
    }
    case EigenvectorMethod::kLazyWalk: {
      IMPREG_CHECK(options.steps >= 1);
      const Vector seed_hat = RandomSignSeed(g, rng);
      // Apply the symmetric lazy operator I − (1−α)ℒ directly in hat
      // space (it shares eigenvectors with ℒ).
      const ShiftedOperator lazy_hat(lap, -(1.0 - options.alpha), 1.0);
      Vector current = seed_hat;
      Vector next;
      for (int step = 0; step < options.steps; ++step) {
        lazy_hat.Apply(current, next);
        current.swap(next);
        // Only the direction matters; renormalize so thousands of steps
        // cannot underflow the iterate to zero.
        IMPREG_CHECK_MSG(Normalize(current) > 0.0,
                         "lazy walk annihilated the seed");
      }
      result.x = std::move(current);
      FinalizeHatVector(trivial, result.x);
      result.implicit_regularizer =
          "matrix p-norm G(X) = (1/p)||X||_p^p, p = 1 + 1/k";
      result.eta = 1.0 + 1.0 / static_cast<double>(options.steps);
      break;
    }
  }
  result.rayleigh = lap.RayleighQuotient(result.x);
  return result;
}

}  // namespace impreg
