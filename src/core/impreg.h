#ifndef IMPREG_CORE_IMPREG_H_
#define IMPREG_CORE_IMPREG_H_

/// \file
/// Umbrella header: the full public API of the impreg library —
/// implicit regularization via approximate computation (Mahoney,
/// PODS 2012).
///
/// Substrate layers:
///   graph/       CSR graphs, generators, the Figure-1 social model
///   linalg/      operators, Lanczos, power method, CG, dense eigen
/// Paper machinery:
///   diffusion/   heat kernel, PageRank, lazy walks (§3.1 dynamics)
///   regularization/  Problem (5) SDPs + the exact equivalence (§3.1)
///   partition/   conductance, sweep cuts, spectral + local methods
///                (§3.2 spectral family, §3.3 push/Nibble/hk-relax/MOV)
///   flow/        max-flow, MQI, FlowImprove, multilevel (§3.2 flow
///                family)
///   ncp/         network community profiles + niceness (Figure 1)
///   service/     batched query serving + deterministic result cache
///   core/        the ApproximateSecondEigenvector facade

#include "core/approx_eigenvector.h"
#include "core/metrics.h"
#include "core/parallel.h"
#include "core/solve_status.h"
#include "core/trace.h"
#include "core/work_budget.h"
#include "diffusion/heat_kernel.h"
#include "diffusion/lazy_walk.h"
#include "diffusion/pagerank.h"
#include "diffusion/seed.h"
#include "flow/flow_improve.h"
#include "flow/maxflow.h"
#include "flow/mqi.h"
#include "flow/multilevel.h"
#include "flow/recursive_partition.h"
#include "graph/algorithms.h"
#include "graph/bridges.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/io.h"
#include "graph/random_graphs.h"
#include "graph/reorder.h"
#include "graph/social.h"
#include "graph/structure.h"
#include "linalg/cg.h"
#include "linalg/chebyshev.h"
#include "linalg/dense_matrix.h"
#include "linalg/graph_operators.h"
#include "linalg/lanczos.h"
#include "linalg/operator.h"
#include "linalg/power_method.h"
#include "linalg/simd/simd.h"
#include "linalg/tridiagonal.h"
#include "linalg/vector_ops.h"
#include "ncp/community.h"
#include "ncp/ncp.h"
#include "ncp/niceness.h"
#include "partition/conductance.h"
#include "partition/hkrelax.h"
#include "partition/mov.h"
#include "partition/nibble.h"
#include "partition/push.h"
#include "partition/spectral.h"
#include "partition/spectral_kway.h"
#include "partition/sweep.h"
#include "regularization/density.h"
#include "regularization/equivalence.h"
#include "regularization/estimators.h"
#include "ranking/centrality.h"
#include "ranking/compare.h"
#include "regularization/sdp.h"
#include "service/durability/recovery.h"
#include "service/durability/snapshot.h"
#include "service/durability/wal.h"
#include "service/query_engine.h"
#include "service/result_cache.h"
#include "service/wire.h"
#include "streaming/dynamic_graph.h"
#include "streaming/incremental_ppr.h"
#include "streaming/montecarlo.h"
#include "util/csv.h"
#include "util/fault.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/timer.h"

#endif  // IMPREG_CORE_IMPREG_H_
