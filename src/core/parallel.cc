#include "core/parallel.h"

#include <atomic>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <string>
#include <thread>

#include "core/metrics.h"

namespace impreg {

namespace {

/// Automatic thread count: IMPREG_THREADS if set to a positive integer,
/// else the hardware concurrency (at least 1). A malformed value (not a
/// whole positive number, trailing garbage, overflow) is diagnosed once
/// on stderr and ignored rather than silently read as 0 (atoi would
/// turn "8x" into 8 and "abc" into 0).
int AutoNumThreads() {
  if (const char* env = std::getenv("IMPREG_THREADS")) {
    const char* p = env;
    while (std::isspace(static_cast<unsigned char>(*p))) ++p;
    char* end = nullptr;
    errno = 0;
    const long parsed = std::strtol(p, &end, 10);
    bool valid = end != p && errno != ERANGE;
    if (valid) {
      while (std::isspace(static_cast<unsigned char>(*end))) ++end;
      valid = *end == '\0';
    }
    if (valid && parsed > 0 && parsed <= 4096) {
      return static_cast<int>(parsed);
    }
    std::fprintf(stderr,
                 "impreg: ignoring invalid IMPREG_THREADS=\"%s\" "
                 "(want a positive integer <= 4096); using hardware "
                 "concurrency\n",
                 env);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

/// Configured thread count; 0 means "automatic".
std::atomic<int> g_num_threads{0};

thread_local bool tls_in_parallel_region = false;

/// A static-partition pool: the calling thread is participant 0, workers
/// are participants 1..T-1, and participant t processes chunks
/// t, t+T, t+2T, … — no work stealing, no shared queue. Workers persist
/// across regions (parked on a condition variable between tasks) and the
/// pool grows lazily to the largest thread count ever requested; a
/// region simply uses the first T-1 workers.
class Pool {
 public:
  static Pool& Get() {
    static Pool* pool = new Pool();  // Leaked: workers outlive main.
    return *pool;
  }

  void Run(std::int64_t num_chunks,
           const std::function<void(std::int64_t)>& chunk_fn,
           int num_threads) {
    const int participants =
        static_cast<int>(num_chunks < num_threads ? num_chunks : num_threads);
    {
      std::unique_lock<std::mutex> lock(mu_);
      EnsureWorkersLocked(participants - 1);
      task_fn_ = &chunk_fn;
      task_chunks_ = num_chunks;
      task_participants_ = participants;
      pending_ = participants - 1;
      error_ = nullptr;
      ++epoch_;
      work_cv_.notify_all();
    }

    // The caller is participant 0.
    RunStride(chunk_fn, num_chunks, /*participant=*/0, participants);

    std::exception_ptr error;
    {
      std::unique_lock<std::mutex> lock(mu_);
      done_cv_.wait(lock, [&] { return pending_ == 0; });
      task_fn_ = nullptr;
      error = error_;
      error_ = nullptr;
    }
    if (error) std::rethrow_exception(error);
  }

 private:
  Pool() = default;

  void EnsureWorkersLocked(int needed) {
    while (static_cast<int>(workers_.size()) < needed) {
      const int index = static_cast<int>(workers_.size());
      workers_.emplace_back([this, index] { WorkerLoop(index); });
    }
  }

  /// Processes this participant's static share of the chunks. The first
  /// exception is stored for the caller; later chunks of a faulted
  /// participant are skipped.
  void RunStride(const std::function<void(std::int64_t)>& fn,
                 std::int64_t chunks, int participant, int participants) {
    tls_in_parallel_region = true;
#ifdef IMPREG_OBSERVABILITY
    // Per-participant busy accounting: the static partition makes the
    // chunk count arithmetic (no per-chunk counter), so the only cost
    // when metrics are on is two clock reads per region per thread.
    const bool metrics = MetricsEnabled();
    const auto busy_start = metrics ? std::chrono::steady_clock::now()
                                    : std::chrono::steady_clock::time_point{};
#endif
    try {
      for (std::int64_t c = participant; c < chunks; c += participants) {
        fn(c);
      }
    } catch (...) {
      std::unique_lock<std::mutex> lock(mu_);
      if (!error_) error_ = std::current_exception();
    }
#ifdef IMPREG_OBSERVABILITY
    if (metrics) {
      const auto busy_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                               std::chrono::steady_clock::now() - busy_start)
                               .count();
      const std::int64_t my_chunks =
          participant < chunks
              ? (chunks - participant + participants - 1) / participants
              : 0;
      // Dynamic names, so no static-handle caching: go to the registry
      // directly (the IMPREG_METRIC_COUNT macro pins the first name it
      // sees at a call site).
      MetricsRegistry& registry = MetricsRegistry::Get();
      const std::string prefix =
          "parallel.participant." + std::to_string(participant);
      registry.FindOrCreateCounter(prefix + ".busy_ns")->Add(busy_ns);
      registry.FindOrCreateCounter(prefix + ".chunks")->Add(my_chunks);
    }
#endif
    tls_in_parallel_region = false;
  }

  void WorkerLoop(int index) {
    std::uint64_t seen_epoch = 0;
    for (;;) {
      const std::function<void(std::int64_t)>* fn = nullptr;
      std::int64_t chunks = 0;
      int participants = 0;
      {
        std::unique_lock<std::mutex> lock(mu_);
        work_cv_.wait(lock, [&] { return epoch_ != seen_epoch; });
        seen_epoch = epoch_;
        if (index + 1 >= task_participants_) continue;  // Not enlisted.
        fn = task_fn_;
        chunks = task_chunks_;
        participants = task_participants_;
      }
      RunStride(*fn, chunks, /*participant=*/index + 1, participants);
      {
        std::unique_lock<std::mutex> lock(mu_);
        if (--pending_ == 0) done_cv_.notify_all();
      }
    }
  }

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;
  std::uint64_t epoch_ = 0;
  const std::function<void(std::int64_t)>* task_fn_ = nullptr;
  std::int64_t task_chunks_ = 0;
  int task_participants_ = 0;
  int pending_ = 0;
  std::exception_ptr error_;
};

}  // namespace

void ImpregSetNumThreads(int num_threads) {
  g_num_threads.store(num_threads > 0 ? num_threads : 0,
                      std::memory_order_relaxed);
}

int ImpregNumThreads() {
  const int configured = g_num_threads.load(std::memory_order_relaxed);
  if (configured > 0) return configured;
  static const int auto_threads = AutoNumThreads();
  return auto_threads;
}

namespace internal {

std::int64_t ChunkCount(std::int64_t begin, std::int64_t end,
                        std::int64_t grain) {
  if (begin >= end) return 0;
  const std::int64_t g = grain < 1 ? 1 : grain;
  return (end - begin + g - 1) / g;
}

bool InParallelRegion() { return tls_in_parallel_region; }

void RunChunks(std::int64_t num_chunks,
               const std::function<void(std::int64_t)>& chunk_fn) {
  if (num_chunks <= 0) return;
  const int num_threads = ImpregNumThreads();
  if (num_chunks == 1 || num_threads == 1 || tls_in_parallel_region) {
    // Serial path: inline, in chunk order. Nested regions land here.
    IMPREG_METRIC_COUNT("parallel.serial_regions", 1);
    for (std::int64_t c = 0; c < num_chunks; ++c) chunk_fn(c);
    return;
  }
  IMPREG_METRIC_COUNT("parallel.regions", 1);
  IMPREG_METRIC_COUNT("parallel.chunks", num_chunks);
  Pool::Get().Run(num_chunks, chunk_fn, num_threads);
}

}  // namespace internal

}  // namespace impreg
