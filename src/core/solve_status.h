#ifndef IMPREG_CORE_SOLVE_STATUS_H_
#define IMPREG_CORE_SOLVE_STATUS_H_

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

/// \file
/// Solver status taxonomy — the failure-containment vocabulary shared by
/// every iterative method in the library.
///
/// The paper's thesis is that *approximate* computation is the product:
/// the diffusions of §3.1 and the local solvers of §3.3 are meant to be
/// stopped early and trusted anyway. That only works if the library can
/// distinguish "stopped early by design" (kMaxIterations,
/// kBudgetExhausted — the iterate is the regularized answer of
/// Mahoney–Orecchia 1010.0703) from "silently broken" (kNonFinite,
/// kBreakdown — the iteration did not behave and the output is not the
/// optimum of anything). Solvers never return poison: on a non-finite
/// event they report kNonFinite and hand back the last finite iterate.

namespace impreg {

/// How a solve ended.
enum class SolveStatus {
  /// The convergence criterion was met; the result is as requested.
  kConverged,
  /// The iteration cap was hit first. The iterate is still meaningful —
  /// it is the early-stopped (implicitly regularized) answer.
  kMaxIterations,
  /// A NaN/Inf was detected. The returned vector is the last iterate
  /// that was verified finite (possibly the zero initial guess).
  kNonFinite,
  /// The iteration lost a structural invariant (CG lost positive
  /// definiteness, Lanczos exhausted an invariant subspace before
  /// finding enough pairs, Chebyshev residuals diverged under bad
  /// eigenvalue bounds). Best-so-far output is returned.
  kBreakdown,
  /// A cooperative WorkBudget ran out; best-so-far output is returned.
  kBudgetExhausted,
  /// The input was rejected up front (non-finite entries, empty seed);
  /// the output is a safe default, not a solve.
  kInvalidInput,
  /// Admission control refused the request under overload: no
  /// computation was performed and no answer is attached. A shed is a
  /// deliberate, deterministic policy decision (core/budget_pool.h) —
  /// the serving tier's explicit "try again later", never a silent
  /// drop.
  kShed,
};

/// Short stable name for logs and CLI output ("converged",
/// "max-iterations", "non-finite", "breakdown", "budget-exhausted",
/// "invalid-input", "shed").
inline const char* SolveStatusName(SolveStatus status) {
  switch (status) {
    case SolveStatus::kConverged:       return "converged";
    case SolveStatus::kMaxIterations:   return "max-iterations";
    case SolveStatus::kNonFinite:       return "non-finite";
    case SolveStatus::kBreakdown:       return "breakdown";
    case SolveStatus::kBudgetExhausted: return "budget-exhausted";
    case SolveStatus::kInvalidInput:    return "invalid-input";
    case SolveStatus::kShed:            return "shed";
  }
  return "unknown";
}

/// True for outcomes whose output is a *trustworthy approximation* —
/// converged, or deliberately stopped early. False for outcomes where
/// the iteration itself misbehaved (kNonFinite, kBreakdown,
/// kInvalidInput); the output is then a safe fallback, not an answer.
inline bool StatusIsUsable(SolveStatus status) {
  return status == SolveStatus::kConverged ||
         status == SolveStatus::kMaxIterations ||
         status == SolveStatus::kBudgetExhausted;
}

/// Severity rank for combining statuses of sub-solves (higher = worse).
inline int StatusSeverity(SolveStatus status) {
  switch (status) {
    case SolveStatus::kConverged:       return 0;
    case SolveStatus::kMaxIterations:   return 1;
    case SolveStatus::kBudgetExhausted: return 2;
    case SolveStatus::kShed:            return 3;
    case SolveStatus::kBreakdown:       return 4;
    case SolveStatus::kNonFinite:       return 5;
    case SolveStatus::kInvalidInput:    return 6;
  }
  return 6;
}

/// The worse of two statuses — how a driver that ran several sub-solves
/// (deflated Lanczos pairs, the two signed PageRank diffusions, a
/// portfolio sweep) summarizes them.
inline SolveStatus MergeStatus(SolveStatus a, SolveStatus b) {
  return StatusSeverity(a) >= StatusSeverity(b) ? a : b;
}

/// Per-solve diagnostics carried by every solver result type. The
/// legacy `converged` bools on the result structs are kept in sync with
/// `status` so existing call sites compile and behave unchanged.
struct SolverDiagnostics {
  SolveStatus status = SolveStatus::kMaxIterations;
  /// Iterations (or pushes / Taylor terms / phases) actually performed.
  int iterations = 0;
  /// Final residual (or convergence-test value) if the method tracks
  /// one; 0 when not applicable.
  double final_residual = 0.0;
  /// Short trailing window of the residual trajectory (most recent
  /// last, at most kResidualHistory entries) — enough to see whether
  /// the solve was converging, stalling, or diverging when it stopped.
  std::vector<double> residual_history;
  /// Human-readable one-liner: what happened and what was returned.
  std::string detail;

  static constexpr int kResidualHistory = 8;

  bool ok() const { return status == SolveStatus::kConverged; }
  bool usable() const { return StatusIsUsable(status); }

  /// Appends to the bounded residual window.
  void RecordResidual(double r) {
    if (residual_history.size() >= static_cast<std::size_t>(kResidualHistory)) {
      residual_history.erase(residual_history.begin());
    }
    residual_history.push_back(r);
    final_residual = r;
  }

  /// One-line rendering for logs/CLI: "status after N iterations
  /// (residual R): detail".
  std::string Summary() const {
    std::string out = SolveStatusName(status);
    out += " after " + std::to_string(iterations) + " iterations";
    if (final_residual != 0.0 && std::isfinite(final_residual)) {
      char buf[40];
      std::snprintf(buf, sizeof(buf), " (residual %.3g)", final_residual);
      out += buf;
    }
    if (!detail.empty()) {
      out += ": ";
      out += detail;
    }
    return out;
  }
};

}  // namespace impreg

#endif  // IMPREG_CORE_SOLVE_STATUS_H_
