#ifndef IMPREG_CORE_TRACE_H_
#define IMPREG_CORE_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/solve_status.h"

/// \file
/// Per-solver convergence traces: bounded iteration-event rings with
/// JSON export.
///
/// The paper reads the implicit regularizer off the *trajectory* of an
/// approximation algorithm — residuals per iteration, sweep
/// conductances per round, arc work per push (§2, §3.1;
/// Mahoney–Orecchia 1010.0703 and Perry–Mahoney 1110.1757 do exactly
/// this). SolverDiagnostics keeps an 8-entry tail of the residual
/// history; this layer captures the whole trajectory when asked,
/// without making it a cost when not:
///
///  - TraceCollector::Get().Begin("cg") returns nullptr unless tracing
///    was enabled (one relaxed atomic load), so instrumented solvers
///    pay a null check per event when tracing is off.
///  - Each solver run gets its own SolverTrace ring with a fixed event
///    capacity; once full, the *oldest* events are overwritten (the
///    tail of a long trajectory is where the regularization parameter
///    lives) and `events_dropped` counts what was lost. The collector
///    also caps how many traces it retains; further Begin() calls
///    return nullptr and are counted. Memory is therefore bounded no
///    matter how many solves run while tracing.
///  - Tracing never touches solver arithmetic: values are *read* from
///    the iteration, never fed back. Enabled or not, solver outputs are
///    bit-identical (pinned by determinism_test at 1 and 8 threads).
///
/// Export: TraceCollector::ToJson() renders every retained trace as
/// the stable `impreg-trace-v1` schema consumed by the golden tests
/// and `impreg_cli --trace-json=FILE`.

namespace impreg {

/// What a trace event measures.
enum class TraceEventKind : std::uint8_t {
  kResidual,     ///< Residual / convergence-test value at an iteration.
  kConductance,  ///< Sweep or round conductance.
  kArcWork,      ///< Arcs scanned by this step (push outdegree, level arcs).
  kRollback,     ///< Containment rolled back to a finite snapshot.
  kFault,        ///< Breakdown / non-finite event detected.
  kBudget,       ///< Cooperative budget event (value = arcs spent).
  kPhase,        ///< Driver phase boundary (coarsen level, flow phase).
};

/// Stable name used in the JSON export ("residual", "conductance",
/// "arc-work", "rollback", "fault", "budget", "phase").
const char* TraceEventKindName(TraceEventKind kind);

/// One iteration-level observation.
struct TraceEvent {
  std::int64_t iteration = 0;
  TraceEventKind kind = TraceEventKind::kResidual;
  double value = 0.0;
};

/// A bounded ring of TraceEvents for one solver run. Thread-safe (the
/// recording solver and a reader may interleave), but a single solve
/// records from one thread at a time in practice.
class SolverTrace {
 public:
  SolverTrace(std::string solver, std::size_t capacity);

  /// Appends an event; overwrites the oldest once the ring is full.
  void Record(std::int64_t iteration, TraceEventKind kind, double value);

  /// Stamps the final SolverDiagnostics summary (status, iteration
  /// count, final residual) onto the trace.
  void Finish(const SolverDiagnostics& diag);

  const std::string& solver() const { return solver_; }

  /// Retained events, oldest first.
  std::vector<TraceEvent> Events() const;

  /// Events appended in total, including overwritten ones.
  std::int64_t TotalRecorded() const;

  /// TotalRecorded() minus what the ring still holds.
  std::int64_t EventsDropped() const;

  /// Sum of the values of retained events of `kind`, in append order.
  /// Events overwritten by the ring are excluded; use KindTotal for
  /// eviction-proof accounting.
  double SumValues(TraceEventKind kind) const;

  /// Running total of all values ever recorded for `kind`, including
  /// events the ring has since overwritten. This is what makes "push
  /// arc-work equals the WorkBudget charge" hold exactly on arbitrarily
  /// long runs.
  double KindTotal(TraceEventKind kind) const;

  /// Count of all events ever recorded for `kind` (eviction-proof).
  std::int64_t KindCount(TraceEventKind kind) const;

  SolveStatus status() const { return status_; }
  int iterations() const { return iterations_; }
  double final_residual() const { return final_residual_; }
  bool finished() const { return finished_; }

 private:
  friend class TraceCollector;
  std::string solver_;
  std::size_t capacity_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;
  std::size_t next_ = 0;          ///< Ring write cursor.
  std::int64_t total_ = 0;        ///< Events ever appended.
  static constexpr int kNumKinds = 7;
  double kind_totals_[kNumKinds] = {};       ///< Σ value per kind, ever.
  std::int64_t kind_counts_[kNumKinds] = {};  ///< Events per kind, ever.
  SolveStatus status_ = SolveStatus::kMaxIterations;
  int iterations_ = 0;
  double final_residual_ = 0.0;
  bool finished_ = false;
};

/// Process-wide collector of solver traces.
class TraceCollector {
 public:
  static constexpr std::size_t kDefaultRingCapacity = 4096;
  static constexpr std::size_t kDefaultMaxTraces = 512;

  static TraceCollector& Get();

  /// Enables tracing; subsequent Begin() calls hand out rings with
  /// `ring_capacity` events each, up to `max_traces` retained traces.
  void Enable(std::size_t ring_capacity = kDefaultRingCapacity,
              std::size_t max_traces = kDefaultMaxTraces);
  void Disable();
  bool Enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Drops every retained trace (capacity settings persist).
  void Clear();

  /// Starts a trace for one solver run; nullptr when tracing is
  /// disabled or the trace cap is reached (counted in TracesDropped).
  /// The returned pointer stays valid until Clear()/Disable().
  SolverTrace* Begin(const char* solver);

  /// Retained traces, in Begin() order.
  std::vector<const SolverTrace*> Traces() const;

  /// The most recent trace whose solver name matches, or nullptr.
  const SolverTrace* Latest(const std::string& solver) const;

  /// Begin() calls refused because the trace cap was reached.
  std::int64_t TracesDropped() const;

  /// The whole collector as the impreg-trace-v1 JSON document.
  std::string ToJson() const;

  /// Writes ToJson() to `path`; false if the file cannot be written.
  bool WriteJson(const std::string& path) const;

 private:
  TraceCollector() = default;
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::size_t ring_capacity_ = kDefaultRingCapacity;
  std::size_t max_traces_ = kDefaultMaxTraces;
  std::int64_t traces_dropped_ = 0;
  std::vector<std::unique_ptr<SolverTrace>> traces_;
};

/// RAII capture window: clears the collector and enables tracing on
/// construction, disables on destruction (retained traces survive until
/// the next Enable()/Clear()). Used by tests and the CLI.
class ScopedTraceCapture {
 public:
  explicit ScopedTraceCapture(
      std::size_t ring_capacity = TraceCollector::kDefaultRingCapacity,
      std::size_t max_traces = TraceCollector::kDefaultMaxTraces) {
    TraceCollector::Get().Enable(ring_capacity, max_traces);
    TraceCollector::Get().Clear();
  }
  ~ScopedTraceCapture() { TraceCollector::Get().Disable(); }

  ScopedTraceCapture(const ScopedTraceCapture&) = delete;
  ScopedTraceCapture& operator=(const ScopedTraceCapture&) = delete;
};

}  // namespace impreg

/// Call-site macros, compiled out with the IMPREG_OBSERVABILITY cmake
/// option (same contract as the IMPREG_METRIC_* macros): OFF builds
/// contain no tracing code at all.
#ifdef IMPREG_OBSERVABILITY

/// `SolverTrace* var = IMPREG_TRACE_BEGIN("cg");`
#define IMPREG_TRACE_BEGIN(solver) \
  ::impreg::TraceCollector::Get().Begin(solver)

#define IMPREG_TRACE_EVENT(trace, iteration, kind, value)              \
  do {                                                                 \
    if ((trace) != nullptr) {                                          \
      (trace)->Record((iteration), ::impreg::TraceEventKind::kind,     \
                      (value));                                        \
    }                                                                  \
  } while (0)

#define IMPREG_TRACE_FINISH(trace, diag)              \
  do {                                                \
    if ((trace) != nullptr) (trace)->Finish((diag));  \
  } while (0)

#else  // !IMPREG_OBSERVABILITY

#define IMPREG_TRACE_BEGIN(solver) (static_cast<::impreg::SolverTrace*>(nullptr))
#define IMPREG_TRACE_EVENT(trace, iteration, kind, value) \
  do {                                                    \
    (void)(trace);                                        \
  } while (0)
#define IMPREG_TRACE_FINISH(trace, diag) \
  do {                                   \
    (void)(trace);                       \
  } while (0)

#endif  // IMPREG_OBSERVABILITY

#endif  // IMPREG_CORE_TRACE_H_
