#ifndef IMPREG_CORE_APPROX_EIGENVECTOR_H_
#define IMPREG_CORE_APPROX_EIGENVECTOR_H_

#include <string>

#include "core/solve_status.h"
#include "graph/graph.h"
#include "linalg/vector_ops.h"
#include "util/rng.h"

/// \file
/// The library's headline facade: "compute (an approximation to) the
/// leading nontrivial eigenvector of the Laplacian" with the method —
/// and therefore the *implicit regularizer* — as an explicit choice.
///
/// This is §3.1 of the paper as an API. Every approximate method
/// returns, alongside the vector, a statement of which regularized SDP
/// (Problem (5)) it is the exact solution of: approximate computation
/// IS regularized computation, and the API says so.

namespace impreg {

/// Which dynamics to run.
enum class EigenvectorMethod {
  /// Lanczos to machine precision — the "exact" answer.
  kExact,
  /// Power method with a fixed iteration budget (early stopping).
  kPowerMethod,
  /// Heat-kernel diffusion exp(−tℒ) of a seed (implicit regularizer:
  /// generalized entropy, η = t).
  kHeatKernel,
  /// Personalized PageRank (implicit regularizer: log-det,
  /// μ = γ/(1−γ)).
  kPageRank,
  /// k steps of the α-lazy walk (implicit regularizer: p-norm with
  /// p = 1 + 1/k).
  kLazyWalk,
};

/// Options for ApproximateSecondEigenvector.
struct ApproxEigenvectorOptions {
  EigenvectorMethod method = EigenvectorMethod::kExact;
  /// kHeatKernel: diffusion time.
  double t = 10.0;
  /// kPageRank: teleportation γ.
  double gamma = 0.1;
  /// kLazyWalk: holding probability and number of steps.
  double alpha = 0.5;
  int steps = 50;
  /// kPowerMethod: iteration budget.
  int power_iterations = 50;
  /// Seed for the random start / seed distribution.
  std::uint64_t rng_seed = 0x5eedULL;
};

/// Result of an (approximate) eigenvector computation.
struct ApproxEigenvectorResult {
  /// Unit hat-space vector, orthogonal to D^{1/2}1.
  Vector x;
  /// Rayleigh quotient xᵀℒx — the forward-error lens on the output.
  double rayleigh = 0.0;
  /// Human-readable description of the regularized problem this method
  /// solves exactly (empty for kExact).
  std::string implicit_regularizer;
  /// The implied regularization strength η (0 for kExact/kPowerMethod).
  double eta = 0.0;
  /// How the computation ended. x is always a finite unit vector ⟂ the
  /// trivial direction: on an inner-solver failure the facade degrades
  /// (kExact falls back to the power method; diffusion collapse falls
  /// back to a deterministic basis direction) and the status + detail
  /// say what was substituted.
  SolverDiagnostics diagnostics;
};

/// Computes v₂ of ℒ (or a regularized approximation of it) on a
/// connected graph with ≥ 1 edge. Diffusion methods start from a
/// random-sign seed (footnote 16 of the paper), projected appropriately.
ApproxEigenvectorResult ApproximateSecondEigenvector(
    const Graph& g, const ApproxEigenvectorOptions& options = {});

}  // namespace impreg

#endif  // IMPREG_CORE_APPROX_EIGENVECTOR_H_
