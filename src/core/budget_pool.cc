#include "core/budget_pool.h"

#include <algorithm>

#include "core/metrics.h"
#include "util/fault.h"

namespace impreg {

namespace {

/// Per-tenant metric names are dynamic, so the IMPREG_METRIC_* macros
/// (which cache one handle per call site) do not apply; go through the
/// registry directly, still behind the runtime enable check.
void CountTenantMetric(const std::string& tenant, const char* what,
                       std::int64_t delta) {
#ifdef IMPREG_OBSERVABILITY
  if (MetricsEnabled()) {
    MetricsRegistry::Get()
        .FindOrCreateCounter("service.tenant." + tenant + "." + what)
        ->Add(delta);
  }
#else
  (void)tenant;
  (void)what;
  (void)delta;
#endif
}

void GaugeTenantSpend(const std::string& tenant, std::int64_t spent) {
#ifdef IMPREG_OBSERVABILITY
  if (MetricsEnabled()) {
    MetricsRegistry::Get()
        .FindOrCreateGauge("service.tenant." + tenant + ".spent_arcs")
        ->Set(static_cast<double>(spent));
  }
#else
  (void)tenant;
  (void)spent;
#endif
}

}  // namespace

const char* AdmissionDecisionName(AdmissionDecision decision) {
  switch (decision) {
    case AdmissionDecision::kExact:    return "exact";
    case AdmissionDecision::kDegraded: return "degraded";
    case AdmissionDecision::kShed:     return "shed";
  }
  return "unknown";
}

TenantBudgetPool::TenantBudgetPool(const TenantPolicy& policy)
    : policy_(policy) {}

void TenantBudgetPool::SetCapacity(const std::string& tenant,
                                   std::int64_t capacity) {
  capacity_override_[tenant] = capacity;
  // A ledger created before the override keeps its old cap; drop it so
  // the next Admit() rebuilds with the new one (spend is preserved).
  auto it = ledgers_.find(tenant);
  if (it != ledgers_.end()) {
    const std::int64_t spent = it->second.Spent();
    WorkBudget fresh(capacity);
    fresh.Charge(spent);
    it->second = fresh;
  }
}

std::int64_t TenantBudgetPool::Capacity(const std::string& tenant) const {
  const auto it = capacity_override_.find(tenant);
  return it != capacity_override_.end() ? it->second : policy_.capacity;
}

WorkBudget& TenantBudgetPool::LedgerFor(const std::string& tenant) {
  auto it = ledgers_.find(tenant);
  if (it == ledgers_.end()) {
    it = ledgers_.emplace(tenant, WorkBudget(Capacity(tenant))).first;
  }
  return it->second;
}

AdmissionDecision TenantBudgetPool::Admit(const std::string& tenant,
                                          std::int64_t requested_work,
                                          std::int64_t* granted_cap) {
  *granted_cap = 0;
  const std::int64_t capacity = Capacity(tenant);
  TenantAdmissionStats& stats = stats_[tenant];
  WorkBudget& ledger = LedgerFor(tenant);
  IMPREG_FAULT_POINT("service/admission_budget", &ledger);

  if (capacity <= 0) {
    // Unlimited tenant — unless the fault harness forced exhaustion,
    // in which case the overload rehearsal applies here too.
    if (!ledger.Exhausted()) {
      ++stats.admitted_exact;
      IMPREG_METRIC_COUNT("service.admission.exact", 1);
      return AdmissionDecision::kExact;
    }
    ++stats.shed;
    IMPREG_METRIC_COUNT("service.admission.shed", 1);
    CountTenantMetric(tenant, "shed", 1);
    return AdmissionDecision::kShed;
  }

  const std::int64_t spent = ledger.Spent();
  // Exhausted() is deliberately sticky (hysteresis): a tenant that ever
  // drained its pool stays shed until Reset() — overload does not
  // oscillate within an accounting window.
  const bool shed =
      ledger.Exhausted() ||
      static_cast<double>(spent) >=
          policy_.shed_fraction * static_cast<double>(capacity);
  if (shed) {
    ++stats.shed;
    IMPREG_METRIC_COUNT("service.admission.shed", 1);
    CountTenantMetric(tenant, "shed", 1);
    return AdmissionDecision::kShed;
  }

  const std::int64_t remaining = capacity - spent;
  const bool degraded =
      static_cast<double>(spent) >=
      policy_.degrade_fraction * static_cast<double>(capacity);
  std::int64_t reserve =
      requested_work > 0 ? requested_work : policy_.default_cost;
  if (degraded) reserve = std::min(reserve, policy_.degraded_cap);
  reserve = std::min(reserve, remaining);
  ledger.Charge(reserve);
  GaugeTenantSpend(tenant, ledger.Spent());
  if (degraded) {
    *granted_cap = reserve;
    ++stats.admitted_degraded;
    IMPREG_METRIC_COUNT("service.admission.degraded", 1);
    return AdmissionDecision::kDegraded;
  }
  *granted_cap = reserve;
  ++stats.admitted_exact;
  IMPREG_METRIC_COUNT("service.admission.exact", 1);
  return AdmissionDecision::kExact;
}

void TenantBudgetPool::Settle(const std::string& tenant,
                              std::int64_t actual_work) {
  TenantAdmissionStats& stats = stats_[tenant];
  stats.spent_arcs += actual_work;
  GaugeTenantSpend(tenant, stats.spent_arcs);
}

std::int64_t TenantBudgetPool::Spent(const std::string& tenant) const {
  const auto it = ledgers_.find(tenant);
  return it != ledgers_.end() ? it->second.Spent() : 0;
}

void TenantBudgetPool::Reset() {
  ledgers_.clear();
  stats_.clear();
}

}  // namespace impreg
