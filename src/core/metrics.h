#ifndef IMPREG_CORE_METRICS_H_
#define IMPREG_CORE_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

/// \file
/// Process-wide metrics registry: named counters, gauges, and
/// histograms, with scoped RAII timers.
///
/// The paper's thesis makes *how much work an algorithm did* — pushes
/// performed, arcs scanned, iterations run before the early stop — a
/// first-class scientific output: the amount of computation IS the
/// regularization parameter (§2). This registry is the process-wide
/// collection point for those quantities, shared by the solvers, the
/// ParallelFor pool, and the bench/CLI drivers.
///
/// Design contract:
///
///  - **Zero cost when off.** Instrumentation sites go through the
///    IMPREG_METRIC_* macros. With the IMPREG_OBSERVABILITY cmake
///    option OFF they compile to nothing; with it ON (the default) they
///    cost one relaxed atomic load while metrics are disabled at
///    runtime (the default). Either way, metrics never touch solver
///    arithmetic: enabling them changes what is *emitted*, never what
///    is *computed* — outputs stay bit-identical (pinned by
///    determinism_test at 1 and 8 threads).
///  - **Thread-local shards, deterministic merge.** Counter::Add and
///    Histogram::Observe write to per-shard atomic cells (shard =
///    stable hash of the thread id), so hot paths never contend on one
///    cache line. Snapshot() merges shards by integer summation —
///    order-independent, hence deterministic — and emits metrics
///    sorted by name.
///  - **Handles are stable.** A Counter*/Gauge*/Histogram* returned by
///    the registry stays valid for the life of the process; call sites
///    cache them in function-local statics (the macros do this).
///
/// Metric values themselves may be nondeterministic when they measure
/// the machine (timers, per-thread busy time); the determinism
/// guarantee covers solver outputs, not the telemetry about them.

namespace impreg {

/// True while metrics collection is enabled at runtime. Off by default;
/// flipped by ImpregEnableMetrics() or the IMPREG_METRICS environment
/// variable (any value but "0", read at first query).
bool MetricsEnabled();

/// Turns runtime metrics collection on or off (process-wide).
void ImpregEnableMetrics(bool enabled);

namespace metrics_internal {
/// Shards per metric: enough that a machine's worth of pool threads
/// rarely collide, small enough that merging stays trivial.
constexpr int kShards = 32;
/// The calling thread's stable shard index in [0, kShards).
int ThreadShard();
}  // namespace metrics_internal

/// A monotone int64 counter (sharded; Add is wait-free).
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}

  void Add(std::int64_t delta) {
    cells_[metrics_internal::ThreadShard()].v.fetch_add(
        delta, std::memory_order_relaxed);
  }

  /// Merged value: the sum over shards (deterministic — integer
  /// addition commutes).
  std::int64_t Value() const {
    std::int64_t total = 0;
    for (const Cell& c : cells_) total += c.v.load(std::memory_order_relaxed);
    return total;
  }

  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  struct alignas(64) Cell {
    std::atomic<std::int64_t> v{0};
  };
  std::string name_;
  Cell cells_[metrics_internal::kShards];
};

/// A last-write-wins double gauge (Set is rare: budget limits, problem
/// sizes — not hot-path data).
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  void Set(double value) { bits_.store(Encode(value), std::memory_order_relaxed); }
  double Value() const { return Decode(bits_.load(std::memory_order_relaxed)); }
  const std::string& name() const { return name_; }

 private:
  static std::uint64_t Encode(double v);
  static double Decode(std::uint64_t bits);
  std::string name_;
  std::atomic<std::uint64_t> bits_{0};
};

/// A log2-bucketed histogram of nonnegative values (durations in ns,
/// work sizes). Bucket b counts observations in [2^b, 2^{b+1}); bucket
/// 0 also absorbs values < 1. Counts are sharded like Counter cells, so
/// Observe is wait-free and the merge (summation) is deterministic.
class Histogram {
 public:
  static constexpr int kBuckets = 48;  ///< Covers up to ~2^48 (≈ 3 days in ns).

  explicit Histogram(std::string name) : name_(std::move(name)) {}

  void Observe(double value);

  /// Merged bucket counts (size kBuckets).
  std::vector<std::int64_t> BucketCounts() const;
  /// Total observations across buckets.
  std::int64_t Count() const;
  /// Sum of observed values (double accumulation per shard; merged in
  /// shard order, so the merged sum is reproducible for a fixed
  /// thread→shard assignment).
  double Sum() const;

  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  struct alignas(64) Shard {
    std::atomic<std::int64_t> buckets[kBuckets];
    std::atomic<double> sum{0.0};
    Shard() {
      for (auto& b : buckets) b.store(0, std::memory_order_relaxed);
    }
  };
  std::string name_;
  Shard shards_[metrics_internal::kShards];
};

/// A point-in-time merged view of the registry, sorted by metric name.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    std::int64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    double value = 0.0;
  };
  struct HistogramValue {
    std::string name;
    std::int64_t count = 0;
    double sum = 0.0;
    /// Non-empty buckets only, as (bucket index, count) pairs.
    std::vector<std::pair<int, std::int64_t>> buckets;
  };

  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  /// JSON object: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {count, sum, buckets: {...}}}}.
  std::string ToJson() const;
  /// Human-readable rendering for `impreg_cli --metrics`.
  std::string ToText() const;
};

/// The process-wide registry. Metric creation takes a mutex (cold);
/// updates through the returned handles are wait-free.
class MetricsRegistry {
 public:
  static MetricsRegistry& Get();

  /// Finds or creates; the pointer stays valid for the process life.
  Counter* FindOrCreateCounter(const std::string& name);
  Gauge* FindOrCreateGauge(const std::string& name);
  Histogram* FindOrCreateHistogram(const std::string& name);

  /// Deterministically merged, name-sorted view of everything recorded.
  MetricsSnapshot Snapshot() const;

  /// Zeroes every metric (keeps the registered names and handles).
  /// Test/bench use only; not safe concurrently with hot-path updates.
  void Reset();

 private:
  MetricsRegistry() = default;
  struct Impl;
  Impl& impl() const;
};

/// RAII wall-clock timer: on destruction records the elapsed
/// nanoseconds into histogram `name` (and, implicitly, its call count).
/// Reads the clock only when metrics were enabled at construction.
class ScopedMetricTimer {
 public:
  explicit ScopedMetricTimer(const char* name)
      : name_(name), armed_(MetricsEnabled()) {
    if (armed_) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedMetricTimer();

  ScopedMetricTimer(const ScopedMetricTimer&) = delete;
  ScopedMetricTimer& operator=(const ScopedMetricTimer&) = delete;

 private:
  const char* name_;
  bool armed_;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace impreg

/// Instrumentation macros. Compiled out entirely when the
/// IMPREG_OBSERVABILITY cmake option is OFF; otherwise a relaxed
/// atomic load gates each site while metrics are disabled at runtime.
#ifdef IMPREG_OBSERVABILITY

#define IMPREG_METRIC_COUNT(name, delta)                          \
  do {                                                            \
    if (::impreg::MetricsEnabled()) {                             \
      static ::impreg::Counter* impreg_metric_counter =           \
          ::impreg::MetricsRegistry::Get().FindOrCreateCounter(   \
              name);                                              \
      impreg_metric_counter->Add(delta);                          \
    }                                                             \
  } while (0)

#define IMPREG_METRIC_GAUGE_SET(name, value)                      \
  do {                                                            \
    if (::impreg::MetricsEnabled()) {                             \
      static ::impreg::Gauge* impreg_metric_gauge =               \
          ::impreg::MetricsRegistry::Get().FindOrCreateGauge(     \
              name);                                              \
      impreg_metric_gauge->Set(value);                            \
    }                                                             \
  } while (0)

#define IMPREG_METRIC_OBSERVE(name, value)                        \
  do {                                                            \
    if (::impreg::MetricsEnabled()) {                             \
      static ::impreg::Histogram* impreg_metric_histogram =       \
          ::impreg::MetricsRegistry::Get().FindOrCreateHistogram( \
              name);                                              \
      impreg_metric_histogram->Observe(value);                    \
    }                                                             \
  } while (0)

#define IMPREG_METRIC_TIMER_CONCAT2(a, b) a##b
#define IMPREG_METRIC_TIMER_CONCAT(a, b) IMPREG_METRIC_TIMER_CONCAT2(a, b)
#define IMPREG_METRIC_TIMER(name)                                     \
  ::impreg::ScopedMetricTimer IMPREG_METRIC_TIMER_CONCAT(             \
      impreg_metric_timer_, __LINE__)(name)

#else  // !IMPREG_OBSERVABILITY

#define IMPREG_METRIC_COUNT(name, delta) \
  do {                                   \
  } while (0)
#define IMPREG_METRIC_GAUGE_SET(name, value) \
  do {                                       \
  } while (0)
#define IMPREG_METRIC_OBSERVE(name, value) \
  do {                                     \
  } while (0)
#define IMPREG_METRIC_TIMER(name) \
  do {                            \
  } while (0)

#endif  // IMPREG_OBSERVABILITY

#endif  // IMPREG_CORE_METRICS_H_
