#ifndef IMPREG_NCP_NICENESS_H_
#define IMPREG_NCP_NICENESS_H_

#include <vector>

#include "graph/graph.h"

/// \file
/// Cluster "niceness" measures — the empirical regularization probes of
/// Figure 1(b,c). The paper's point: without any explicit regularizer,
/// the clusters found by spectral vs flow approximations differ
/// systematically on measures *other than* the objective:
///
///   Fig 1(b): average shortest-path length inside the cluster (lower =
///             more compact / nicer);
///   Fig 1(c): ratio of external conductance to internal conductance
///             (lower = better separated relative to internal cohesion).

namespace impreg {

/// All niceness measures of one cluster.
struct NicenessReport {
  /// Average hop distance over connected pairs inside the cluster.
  double avg_shortest_path = 0.0;
  /// φ(S) in the host graph.
  double external_conductance = 1.0;
  /// Conductance *of* the induced subgraph (its best internal cut);
  /// 1 for singletons, 0 if the induced subgraph is disconnected.
  double internal_conductance = 0.0;
  /// external / internal; huge (1e9) when internal is 0.
  double conductance_ratio = 0.0;
  /// Internal edge density: internal edges / (s choose 2).
  double density = 0.0;
  /// Exact diameter of the induced subgraph (max over components).
  int diameter = 0;
  /// True if the induced subgraph is connected.
  bool connected = false;
};

/// Computes all measures for `cluster` (distinct valid node ids).
/// Intended for clusters up to a few thousand nodes (all-pairs BFS
/// inside the cluster).
NicenessReport ComputeNiceness(const Graph& g,
                               const std::vector<NodeId>& cluster);

}  // namespace impreg

#endif  // IMPREG_NCP_NICENESS_H_
