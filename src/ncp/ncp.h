#ifndef IMPREG_NCP_NCP_H_
#define IMPREG_NCP_NCP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/solve_status.h"
#include "core/work_budget.h"
#include "graph/graph.h"
#include "graph/reorder.h"
#include "partition/conductance.h"

/// \file
/// Network Community Profile harness — the machinery behind Figure 1.
///
/// Following Leskovec–Lang–Dasgupta–Mahoney [27, 28], each *family* of
/// approximation algorithms is run as a portfolio producing clusters at
/// many scales:
///
///   Spectral family ("LocalSpectral"): ACL push from many random seeds
///   across a grid of (α, ε) — coarser ε ⇒ smaller clusters; the sweep
///   cut of each run contributes one cluster.
///
///   Flow family ("Metis+MQI"): multilevel bisection at a grid of size
///   fractions, each cut then sharpened by MQI; both the raw bisection
///   side and the MQI set contribute clusters.
///
/// The NCP plot keeps, for every (log-spaced) size bin, the minimum
/// conductance cluster the family found. Figure 1(b,c) evaluates the
/// same per-bin winners under the niceness measures.

namespace impreg {

/// One cluster discovered by a portfolio, tagged with its provenance.
struct NcpCluster {
  std::vector<NodeId> nodes;
  CutStats stats;
  std::string method;
};

/// Options for the spectral-family portfolio.
struct SpectralFamilyOptions {
  /// Random seed nodes tried.
  int num_seeds = 24;
  /// Lazy teleportation values of the push runs.
  std::vector<double> alphas = {0.2, 0.1, 0.05, 0.02};
  /// Push tolerance grid (each ε targets a different cluster scale).
  std::vector<double> epsilons = {1e-2, 3e-3, 1e-3, 3e-4, 1e-4, 3e-5, 1e-5};
  std::uint64_t rng_seed = 0xacadULL;
  /// Optional cooperative budget shared by all the push runs (nullptr =
  /// unlimited). Checked between runs; the clusters found before
  /// exhaustion are returned.
  WorkBudget* budget = nullptr;
};

/// Options for the flow-family portfolio.
struct FlowFamilyOptions {
  /// Target size fractions for the multilevel bisection; empty = a
  /// log-spaced default grid from ~16/n up to 1/2.
  std::vector<double> fractions;
  /// Sharpen each bisection with MQI.
  bool run_mqi = true;
  /// Also contribute the exact whiskers and their greedy unions (the
  /// "bag of whiskers" lower envelope of [27, 28]).
  bool include_whiskers = true;
  std::uint64_t rng_seed = 0xf10bULL;
  /// Optional cooperative budget shared by the bisections and MQI runs
  /// (nullptr = unlimited). Checked between size fractions.
  WorkBudget* budget = nullptr;
};

/// Options for the lazy-walk-family portfolio.
struct WalkFamilyOptions {
  /// Random seed nodes; their indicator vectors form the columns of one
  /// batched diffusion.
  int num_seeds = 16;
  /// Holding probability of the lazy walk W_α = αI + (1−α)AD^{-1}.
  double alpha = 0.5;
  /// Walk lengths at which each column is swept for a cluster; must be
  /// positive. Unsorted input is fine (sorted internally).
  std::vector<int> checkpoints = {2, 4, 8, 16, 32, 64};
  std::uint64_t rng_seed = 0xa1c3ULL;
  /// Optional cooperative budget (nullptr = unlimited), checked between
  /// checkpoints; the clusters from completed checkpoints are returned.
  WorkBudget* budget = nullptr;
  /// Cache-aware relabeling for the batched diffusion: the walk runs on
  /// the reordered graph, each column is mapped back at its checkpoint,
  /// and the sweep runs on the original graph — the portfolio is
  /// *bitwise* identical to the unreordered run (SpMM is
  /// label-invariant; see graph/reorder.h).
  ReorderMethod reorder = ReorderMethod::kIdentity;
};

/// Runs the lazy-walk-family portfolio: all seed columns are diffused
/// together with the batched SpMM path (`LazyWalkOperator::ApplyBatch`),
/// so each walk step streams the adjacency once for every seed. Each
/// column is sweep-cut at each checkpoint t; clusters are tagged
/// "LazyWalk(t=..)". This is the multi-scale walk portfolio of the
/// paper's §3.1 diffusions, and the NCP driver for the SpMM kernel.
/// All three portfolios accept an optional `diagnostics` out-param:
/// kConverged when the full grid ran, kBudgetExhausted when the
/// options' budget ran out (the clusters found so far are returned —
/// a truncated portfolio is still a valid, just sparser, NCP).
std::vector<NcpCluster> WalkFamilyClusters(
    const Graph& g, const WalkFamilyOptions& options = {},
    SolverDiagnostics* diagnostics = nullptr);

/// Runs the spectral-family portfolio and returns every cluster found.
std::vector<NcpCluster> SpectralFamilyClusters(
    const Graph& g, const SpectralFamilyOptions& options = {},
    SolverDiagnostics* diagnostics = nullptr);

/// Runs the flow-family portfolio and returns every cluster found.
std::vector<NcpCluster> FlowFamilyClusters(
    const Graph& g, const FlowFamilyOptions& options = {},
    SolverDiagnostics* diagnostics = nullptr);

/// One point of a network community profile.
struct NcpPoint {
  std::int64_t size = 0;       ///< Cluster size (|S|).
  double conductance = 1.0;    ///< Best φ found at that bin.
  NcpCluster cluster;          ///< The winning cluster.
};

/// Reduces a cluster list to the per-size-bin minimum-conductance
/// profile. Bins are log-spaced over [1, max_size]; empty bins are
/// omitted. Clusters larger than max_size are ignored.
std::vector<NcpPoint> BestPerSizeBin(const std::vector<NcpCluster>& clusters,
                                     int num_bins, std::int64_t max_size);

}  // namespace impreg

#endif  // IMPREG_NCP_NCP_H_
