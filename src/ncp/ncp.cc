#include "ncp/ncp.h"

#include <algorithm>
#include <cmath>

#include "core/metrics.h"
#include "core/trace.h"
#include "diffusion/seed.h"
#include "graph/bridges.h"
#include "flow/mqi.h"
#include "flow/multilevel.h"
#include "linalg/graph_operators.h"
#include "partition/push.h"
#include "partition/sweep.h"
#include "util/check.h"
#include "util/fault.h"
#include "util/rng.h"

namespace impreg {

namespace {

// Shared epilogue of the family portfolios: fill the caller's
// diagnostics (if any) from how the grid ended, and stamp the trace
// with the same summary (iterations = clusters harvested).
void FinishPortfolio(bool budget_stop, SolverDiagnostics* diagnostics,
                     const char* what, SolverTrace* trace,
                     int clusters_found) {
  SolverDiagnostics local;
  SolverDiagnostics& diag = diagnostics != nullptr ? *diagnostics : local;
  diag = SolverDiagnostics{};
  if (budget_stop) {
    diag.status = SolveStatus::kBudgetExhausted;
    diag.detail = std::string("work budget exhausted; the ") + what +
                  " portfolio returned the clusters found so far";
  } else {
    diag.status = SolveStatus::kConverged;
  }
  diag.iterations = clusters_found;
  IMPREG_TRACE_FINISH(trace, diag);
}

// Uniform seed nodes with positive degree (rejection sampling, bounded).
std::vector<NodeId> SamplePositiveDegreeSeeds(const Graph& g, int count,
                                              Rng& rng) {
  std::vector<NodeId> seeds;
  for (int i = 0; i < count; ++i) {
    NodeId u = static_cast<NodeId>(rng.NextBounded(g.NumNodes()));
    for (int tries = 0; tries < 64 && g.Degree(u) <= 0.0; ++tries) {
      u = static_cast<NodeId>(rng.NextBounded(g.NumNodes()));
    }
    if (g.Degree(u) > 0.0) seeds.push_back(u);
  }
  return seeds;
}

}  // namespace

std::vector<NcpCluster> WalkFamilyClusters(const Graph& g,
                                           const WalkFamilyOptions& options,
                                           SolverDiagnostics* diagnostics) {
  IMPREG_CHECK(g.NumNodes() >= 2);
  Rng rng(options.rng_seed);
  SolverTrace* trace = IMPREG_TRACE_BEGIN("ncp.walk");
  const std::vector<NodeId> seeds =
      SamplePositiveDegreeSeeds(g, options.num_seeds, rng);

  std::vector<NcpCluster> clusters;
  if (seeds.empty()) {
    FinishPortfolio(false, diagnostics, "lazy-walk", trace, 0);
    return clusters;
  }

  // All seed columns walk together: each W_α step is one batched SpMM
  // over the adjacency instead of |seeds| separate matvecs. With
  // options.reorder set, the diffusion runs in relabeled coordinates
  // (bitwise label-invariant) and each column maps back at its
  // checkpoint; sweeps always see original labels.
  const ReorderedGraph relabeled(g, options.reorder);
  const Graph& host = relabeled.graph();
  std::vector<Vector> cur;
  cur.reserve(seeds.size());
  for (NodeId seed : seeds) {
    cur.push_back(SingleNodeSeed(host, relabeled.ToReordered(seed)));
  }
  const LazyWalkOperator walk(host, options.alpha);

  std::vector<int> checkpoints = options.checkpoints;
  std::sort(checkpoints.begin(), checkpoints.end());

  std::vector<Vector> next;
  int step = 0;
  bool budget_stop = false;
  for (int t : checkpoints) {
    IMPREG_CHECK_MSG(t > 0, "walk checkpoints must be positive");
    // Checkpoint boundary: stopping here means the remaining (larger-t)
    // scales are simply missing from the portfolio.
    if (options.budget != nullptr) {
      IMPREG_FAULT_POINT("ncp/walk_budget", options.budget);
      if (options.budget->Exhausted()) {
        budget_stop = true;
        IMPREG_TRACE_EVENT(trace, t, kBudget,
                           static_cast<double>(options.budget->Spent()));
        break;
      }
    }
    for (; step < t; ++step) {
      if (options.budget != nullptr) {
        options.budget->Charge(g.NumArcs() *
                               static_cast<std::int64_t>(cur.size()));
      }
      walk.ApplyBatch(cur, next);
      cur.swap(next);
    }
    SweepOptions sweep_options;
    sweep_options.scaling = SweepScaling::kDegreeNormalized;
    for (std::size_t j = 0; j < cur.size(); ++j) {
      const Vector column =
          relabeled.active() ? relabeled.ToOriginalVector(cur[j]) : cur[j];
      const SweepResult sweep = SweepCutOverSupport(g, column, sweep_options);
      if (sweep.set.empty() ||
          static_cast<NodeId>(sweep.set.size()) >= g.NumNodes()) {
        continue;
      }
      NcpCluster cluster;
      cluster.nodes = sweep.set;
      std::sort(cluster.nodes.begin(), cluster.nodes.end());
      cluster.stats = sweep.stats;
      cluster.method = "LazyWalk(t=" + std::to_string(t) + ")";
      IMPREG_TRACE_EVENT(trace, t, kConductance, cluster.stats.conductance);
      clusters.push_back(std::move(cluster));
    }
  }
  FinishPortfolio(budget_stop, diagnostics, "lazy-walk", trace,
                  static_cast<int>(clusters.size()));
  IMPREG_METRIC_COUNT("ncp.walk.clusters", clusters.size());
  return clusters;
}

std::vector<NcpCluster> SpectralFamilyClusters(
    const Graph& g, const SpectralFamilyOptions& options,
    SolverDiagnostics* diagnostics) {
  IMPREG_CHECK(g.NumNodes() >= 2);
  Rng rng(options.rng_seed);
  SolverTrace* trace = IMPREG_TRACE_BEGIN("ncp.spectral");
  std::vector<NcpCluster> clusters;

  // Seeds biased toward distinct regions: uniform over nodes with
  // positive degree.
  const std::vector<NodeId> seeds =
      SamplePositiveDegreeSeeds(g, options.num_seeds, rng);

  bool budget_stop = false;
  for (NodeId seed : seeds) {
    for (double alpha : options.alphas) {
      for (double eps : options.epsilons) {
        // Grid boundary: each (seed, α, ε) run is one chunk. The push
        // itself also charges and respects the same budget.
        if (options.budget != nullptr) {
          IMPREG_FAULT_POINT("ncp/spectral_budget", options.budget);
          if (options.budget->Exhausted()) {
            budget_stop = true;
            IMPREG_TRACE_EVENT(
                trace, static_cast<int>(clusters.size()), kBudget,
                static_cast<double>(options.budget->Spent()));
            break;
          }
        }
        PushOptions push;
        push.alpha = alpha;
        push.epsilon = eps;
        push.budget = options.budget;
        const PushResult diffusion =
            ApproximatePageRank(g, SingleNodeSeed(g, seed), push);
        SweepOptions sweep_options;
        sweep_options.scaling = SweepScaling::kDegreeNormalized;
        const SweepResult sweep =
            SweepCutOverSupport(g, diffusion.p, sweep_options);
        if (sweep.order.empty()) continue;
        // Harvest the best prefix of every (doubling) size scale, not
        // just the global winner — this is how NCP portfolios are run:
        // one diffusion yields candidate clusters at all its scales.
        const std::size_t support = sweep.order.size();
        for (std::size_t lo = 1; lo <= support; lo *= 2) {
          const std::size_t hi = std::min(lo * 2 - 1, support);
          std::size_t best = lo - 1;
          for (std::size_t k = lo - 1; k < hi; ++k) {
            if (sweep.conductance_profile[k] <
                sweep.conductance_profile[best]) {
              best = k;
            }
          }
          if (best + 1 >= static_cast<std::size_t>(g.NumNodes())) continue;
          NcpCluster cluster;
          cluster.nodes.assign(sweep.order.begin(),
                               sweep.order.begin() + best + 1);
          std::sort(cluster.nodes.begin(), cluster.nodes.end());
          cluster.stats = ComputeCutStats(g, cluster.nodes);
          cluster.method = "LocalSpectral(push)";
          IMPREG_TRACE_EVENT(trace, static_cast<int>(clusters.size()) + 1,
                             kConductance, cluster.stats.conductance);
          clusters.push_back(std::move(cluster));
        }
      }
      if (budget_stop) break;
    }
    if (budget_stop) break;
  }
  FinishPortfolio(budget_stop, diagnostics, "spectral", trace,
                  static_cast<int>(clusters.size()));
  IMPREG_METRIC_COUNT("ncp.spectral.clusters", clusters.size());
  return clusters;
}

std::vector<NcpCluster> FlowFamilyClusters(const Graph& g,
                                           const FlowFamilyOptions& options,
                                           SolverDiagnostics* diagnostics) {
  IMPREG_CHECK(g.NumNodes() >= 4);
  std::vector<double> fractions = options.fractions;
  if (fractions.empty()) {
    // Log-spaced size targets from ~16 nodes up to n/2.
    const double smallest =
        std::max(16.0 / static_cast<double>(g.NumNodes()), 1e-4);
    const int steps = 12;
    for (int i = 0; i <= steps; ++i) {
      const double frac =
          std::exp(std::log(smallest) +
                   (std::log(0.5) - std::log(smallest)) * i / steps);
      fractions.push_back(std::min(frac, 0.5));
    }
  }

  SolverTrace* trace = IMPREG_TRACE_BEGIN("ncp.flow");
  std::vector<NcpCluster> clusters;

  if (options.include_whiskers) {
    // Exact whiskers, and greedy volume-descending unions of them (the
    // "bag of whiskers"): k whiskers cut exactly k bridges, so unions
    // extend the low-conductance envelope to larger sizes.
    const std::vector<Whisker> whiskers = FindWhiskers(g);
    NcpCluster bag;
    for (std::size_t k = 0; k < whiskers.size(); ++k) {
      NcpCluster single;
      single.nodes = whiskers[k].nodes;
      single.stats = ComputeCutStats(g, single.nodes);
      single.method = "whisker";
      clusters.push_back(std::move(single));

      bag.nodes.insert(bag.nodes.end(), whiskers[k].nodes.begin(),
                       whiskers[k].nodes.end());
      if (k > 0) {
        NcpCluster united;
        united.nodes = bag.nodes;
        std::sort(united.nodes.begin(), united.nodes.end());
        united.stats = ComputeCutStats(g, united.nodes);
        united.method = "bag-of-whiskers";
        clusters.push_back(std::move(united));
      }
    }
  }

  Rng rng(options.rng_seed);
  bool budget_stop = false;
  for (double fraction : fractions) {
    // Fraction boundary: each bisection(+MQI) is one chunk; both also
    // respect the shared budget internally.
    if (options.budget != nullptr) {
      IMPREG_FAULT_POINT("ncp/flow_budget", options.budget);
      if (options.budget->Exhausted()) {
        budget_stop = true;
        IMPREG_TRACE_EVENT(trace, static_cast<int>(clusters.size()),
                           kBudget,
                           static_cast<double>(options.budget->Spent()));
        break;
      }
    }
    MultilevelOptions ml;
    ml.target_fraction = fraction;
    ml.seed = rng.Next();
    ml.budget = options.budget;
    const MultilevelResult bisect = MultilevelBisection(g, ml);
    if (!bisect.set.empty() &&
        static_cast<NodeId>(bisect.set.size()) < g.NumNodes()) {
      NcpCluster cluster;
      cluster.nodes = bisect.set;
      cluster.stats = bisect.stats;
      cluster.method = "Metis-like";
      IMPREG_TRACE_EVENT(trace, static_cast<int>(clusters.size()) + 1,
                         kConductance, cluster.stats.conductance);
      clusters.push_back(cluster);

      if (options.run_mqi) {
        const MqiResult improved = Mqi(g, bisect.set, 64, options.budget);
        NcpCluster sharpened;
        sharpened.nodes = improved.set;
        sharpened.stats = improved.stats;
        sharpened.method = "Metis+MQI";
        IMPREG_TRACE_EVENT(trace, static_cast<int>(clusters.size()) + 1,
                           kConductance, sharpened.stats.conductance);
        clusters.push_back(std::move(sharpened));
      }
    }
  }
  FinishPortfolio(budget_stop, diagnostics, "flow", trace,
                  static_cast<int>(clusters.size()));
  IMPREG_METRIC_COUNT("ncp.flow.clusters", clusters.size());
  return clusters;
}

std::vector<NcpPoint> BestPerSizeBin(const std::vector<NcpCluster>& clusters,
                                     int num_bins, std::int64_t max_size) {
  IMPREG_CHECK(num_bins >= 1);
  IMPREG_CHECK(max_size >= 1);
  const double log_max = std::log(static_cast<double>(max_size) + 1.0);
  std::vector<int> best(num_bins, -1);
  for (std::size_t i = 0; i < clusters.size(); ++i) {
    const std::int64_t size = clusters[i].stats.size;
    if (size < 1 || size > max_size) continue;
    int bin = static_cast<int>(std::log(static_cast<double>(size)) /
                               log_max * num_bins);
    bin = std::clamp(bin, 0, num_bins - 1);
    if (best[bin] < 0 || clusters[i].stats.conductance <
                             clusters[best[bin]].stats.conductance) {
      best[bin] = static_cast<int>(i);
    }
  }
  std::vector<NcpPoint> profile;
  for (int bin = 0; bin < num_bins; ++bin) {
    if (best[bin] < 0) continue;
    NcpPoint point;
    point.size = clusters[best[bin]].stats.size;
    point.conductance = clusters[best[bin]].stats.conductance;
    point.cluster = clusters[best[bin]];
    profile.push_back(std::move(point));
  }
  return profile;
}

}  // namespace impreg
