#include "ncp/niceness.h"

#include <algorithm>

#include "graph/algorithms.h"
#include "partition/conductance.h"
#include "partition/spectral.h"
#include "util/check.h"

namespace impreg {

NicenessReport ComputeNiceness(const Graph& g,
                               const std::vector<NodeId>& cluster) {
  IMPREG_CHECK(!cluster.empty());
  NicenessReport report;
  report.external_conductance = Conductance(g, cluster);
  report.avg_shortest_path = AverageShortestPathWithin(g, cluster);
  report.diameter = DiameterWithin(g, cluster);

  const Subgraph sub = InducedSubgraph(g, cluster);
  const NodeId s = sub.graph.NumNodes();
  report.connected = IsConnected(sub.graph);
  if (s >= 2) {
    report.density = static_cast<double>(sub.graph.NumEdges()) /
                     (0.5 * static_cast<double>(s) * (s - 1));
  } else {
    report.density = 1.0;
  }

  if (s == 1) {
    report.internal_conductance = 1.0;
  } else if (!report.connected || sub.graph.NumEdges() == 0) {
    report.internal_conductance = 0.0;
  } else if (s == 2) {
    report.internal_conductance = 1.0;  // Single edge: only cut is it.
  } else {
    const SpectralPartitionResult internal = SpectralPartition(sub.graph);
    report.internal_conductance = internal.stats.conductance;
  }

  report.conductance_ratio =
      report.internal_conductance > 0.0
          ? report.external_conductance / report.internal_conductance
          : 1e9;
  return report;
}

}  // namespace impreg
