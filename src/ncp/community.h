#ifndef IMPREG_NCP_COMMUNITY_H_
#define IMPREG_NCP_COMMUNITY_H_

#include <string>
#include <vector>

#include "graph/graph.h"
#include "partition/conductance.h"

/// \file
/// Communities from seed sets (§3.3's semi-supervised scenario; the
/// paper's reference [2], Andersen–Lang): given a handful of nodes known
/// to belong together, find a good-conductance cluster containing them.
///
/// A portfolio of the library's locally-biased machinery is run and the
/// best result returned: ACL push and heat-kernel diffusion from the
/// seed-set distribution (the spectral, smoothly regularized side) and
/// FlowImprove anchored on a diffusion-grown reference (the flow,
/// objective-chasing side). The seeds are required to stay inside the
/// returned set, keeping the answer locally biased.

namespace impreg {

/// Options for the seed-set expansion.
struct SeedExpansionOptions {
  /// Push parameters (several ε scales are tried around this value).
  double alpha = 0.05;
  double epsilon = 1e-5;
  /// Heat-kernel time.
  double hk_time = 12.0;
  /// Run the FlowImprove refinement stage.
  bool refine_with_flow = true;
};

/// The chosen community.
struct SeedExpansionResult {
  std::vector<NodeId> set;
  CutStats stats;
  /// Which portfolio member produced the winner.
  std::string method;
  /// How many of the seeds the set contains.
  int seeds_contained = 0;
};

/// Expands a nonempty set of distinct seed nodes into a community.
/// Only candidates containing at least one seed are eligible; ties and
/// quality are decided by conductance.
SeedExpansionResult ExpandSeedSet(const Graph& g,
                                  const std::vector<NodeId>& seeds,
                                  const SeedExpansionOptions& options = {});

}  // namespace impreg

#endif  // IMPREG_NCP_COMMUNITY_H_
