#include "ncp/community.h"

#include <algorithm>

#include "diffusion/seed.h"
#include "flow/flow_improve.h"
#include "partition/hkrelax.h"
#include "partition/push.h"
#include "partition/sweep.h"
#include "util/check.h"

namespace impreg {

namespace {

int SeedsContained(const std::vector<NodeId>& set,
                   const std::vector<char>& is_seed) {
  int count = 0;
  for (NodeId u : set) count += is_seed[u];
  return count;
}

}  // namespace

SeedExpansionResult ExpandSeedSet(const Graph& g,
                                  const std::vector<NodeId>& seeds,
                                  const SeedExpansionOptions& options) {
  IMPREG_CHECK(!seeds.empty());
  std::vector<char> is_seed(g.NumNodes(), 0);
  for (NodeId u : seeds) {
    IMPREG_CHECK(g.IsValidNode(u));
    is_seed[u] = 1;
  }
  const Vector seed_distribution = DegreeWeightedSeed(g, seeds);

  SeedExpansionResult best;
  best.stats.conductance = 2.0;  // Worse than any candidate.
  auto consider = [&](std::vector<NodeId> set, const char* method) {
    if (set.empty()) return;
    const int contained = SeedsContained(set, is_seed);
    if (contained == 0) return;  // Not locally biased: ineligible.
    const CutStats stats = ComputeCutStats(g, set);
    if (stats.conductance < best.stats.conductance) {
      best.set = std::move(set);
      best.stats = stats;
      best.method = method;
      best.seeds_contained = contained;
    }
  };

  // Spectral side: push at a few ε scales.
  for (double eps_scale : {1.0, 0.2, 5.0}) {
    PushOptions push;
    push.alpha = options.alpha;
    push.epsilon = options.epsilon * eps_scale;
    const PushResult diffusion =
        ApproximatePageRank(g, seed_distribution, push);
    SweepOptions sweep;
    sweep.scaling = SweepScaling::kDegreeNormalized;
    consider(SweepCutOverSupport(g, diffusion.p, sweep).set, "push+sweep");
  }

  // Spectral side: heat kernel.
  {
    HkRelaxOptions hk;
    hk.t = options.hk_time;
    hk.delta = options.epsilon;
    const HkRelaxResult result =
        HeatKernelRelaxFromDistribution(g, seed_distribution, hk);
    consider(result.set, "hk-relax");
  }

  // Flow side: refine the best diffusion-grown set (or the raw seeds if
  // nothing was eligible yet).
  if (options.refine_with_flow) {
    std::vector<NodeId> reference =
        best.set.empty() ? seeds : best.set;
    if (static_cast<NodeId>(reference.size()) < g.NumNodes()) {
      const FlowImproveResult improved = FlowImprove(g, reference);
      consider(improved.set, "FlowImprove");
    }
  }

  // Last resort: the seeds themselves.
  if (best.set.empty()) {
    best.set = seeds;
    std::sort(best.set.begin(), best.set.end());
    best.stats = ComputeCutStats(g, best.set);
    best.method = "seeds";
    best.seeds_contained = static_cast<int>(seeds.size());
  }
  return best;
}

}  // namespace impreg
