#ifndef IMPREG_SERVICE_QUERY_ENGINE_H_
#define IMPREG_SERVICE_QUERY_ENGINE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/budget_pool.h"
#include "core/solve_status.h"
#include "graph/graph.h"
#include "graph/reorder.h"
#include "linalg/vector_ops.h"
#include "service/result_cache.h"
#include "service/sharding/shard_set.h"
#include "streaming/dynamic_graph.h"

/// \file
/// The query-serving layer: batched seed-set queries over one evolving
/// graph.
///
/// The ROADMAP's target workload is *per-seed queries* — the paper's
/// central objects (push PPR, heat-kernel relaxation, Nibble community
/// sweeps) are all "given this seed set, diffuse locally and answer",
/// which is exactly what a serving system amortizes:
///
///  - identical requests in a batch are deduplicated and answered once;
///  - independent queries execute through the deterministic ParallelFor
///    pool (each inner solver is single-threaded there, so answers are
///    bit-identical at any thread count);
///  - compatible dense diffusion solves (method "ppr-dense") are grouped
///    and driven in lockstep through LinearOperator::ApplyBatch — one
///    adjacency traversal per Richardson step for the whole group, each
///    column bit-identical to its solo solve;
///  - results land in a deterministic FIFO ResultCache keyed by
///    (method, parameters, seed fingerprint) — epochs are per-entry
///    validity state, not key material, so an edit that misses an
///    entry's read region leaves it exactly servable (surgical
///    invalidation; see service/result_cache.h). Push-family entries
///    keep their (p, r) invariant pair, so a tighter-ε or post-edit
///    re-query warm-restarts from the residual (InvariantResidual — the
///    IncrementalPersonalizedPageRank repair generalized) instead of
///    recomputing.
///
/// Budgeted queries degrade, never lie: a per-query WorkBudget that
/// runs out yields a best-so-far answer carrying kBudgetExhausted and
/// `degraded = true`. See docs/serving.md.
///
/// Under overload, admission control (core/budget_pool.h) extends that
/// contract to whole tenants: per-tenant WorkBudget pools walk the
/// deterministic ladder exact → warm-restart → budget-capped
/// degraded-but-marked → shed (kShed, `shed = true`). Admission runs
/// sequentially in arrival order, so the shed set is a pure function of
/// (tenant, arrival index, pool state) — bit-identical at any thread
/// count, cache on or off. See docs/load_testing.md.

namespace impreg {

/// Which diffusion answers the query.
enum class QueryMethod {
  kPprPush,     ///< Standard-form signed-residual push (warm-restartable).
  kPprDense,    ///< Dense Richardson PPR, grouped through ApplyBatch.
  kHeatKernel,  ///< hk-relax + sweep (community query).
  kNibble,      ///< Truncated lazy walk + sweep (community query).
};

/// Stable names: "ppr", "ppr-dense", "heat-kernel", "nibble".
const char* QueryMethodName(QueryMethod method);

/// Parses a stable name; false on unknown.
bool QueryMethodFromName(const std::string& name, QueryMethod* method);

/// One seed-set query. Fields beyond `method`/`seeds` are per-method
/// parameters; irrelevant ones are ignored (and excluded from the
/// cache key).
struct Query {
  QueryMethod method = QueryMethod::kPprPush;
  /// Seed nodes (deduplicated and sorted internally; the seed
  /// distribution is uniform over the distinct ids).
  std::vector<NodeId> seeds;
  /// Teleportation γ (kPprPush, kPprDense).
  double gamma = 0.15;
  /// Push residual tolerance (kPprPush) / truncation threshold
  /// (kNibble) / Taylor tail tolerance (kHeatKernel).
  double epsilon = 1e-6;
  /// Dense Richardson L1 stopping tolerance (kPprDense).
  double tolerance = 1e-12;
  /// Dense Richardson iteration cap (kPprDense).
  int max_iterations = 10000;
  /// Diffusion time (kHeatKernel).
  double t = 10.0;
  /// Per-step truncation threshold (kHeatKernel).
  double delta = 1e-5;
  /// Lazy-walk steps (kNibble).
  int steps = 40;
  /// Per-query work budget in arc traversals (0 = unlimited).
  std::int64_t max_work = 0;
  /// Tenant the query bills against ("" = the anonymous tenant).
  /// Admission control accounts per tenant; the cache key does NOT
  /// include the tenant — answers are tenant-independent.
  std::string tenant;
};

/// Where an answer came from.
enum class QuerySource {
  kCold,    ///< Computed from scratch.
  kWarm,    ///< Push warm-restarted from a cached (p, r) pair.
  kCached,  ///< Served verbatim from the cache.
};

/// Stable names: "cold", "warm", "cached".
const char* QuerySourceName(QuerySource source);

/// One answered query.
struct QueryResponse {
  /// The diffusion vector (PPR scores / ρ / nibble distribution).
  Vector scores;
  /// Community set (kHeatKernel, kNibble; empty for the PPR methods).
  std::vector<NodeId> set;
  double conductance = 1.0;
  /// Work spent answering (pushes / terms·support / step·support /
  /// iterations·arcs); 0 for a cache hit.
  std::int64_t work = 0;
  SolveStatus status = SolveStatus::kConverged;
  QuerySource source = QuerySource::kCold;
  /// True when status != kConverged: the answer is early-stopped,
  /// budget-truncated, or a safe fallback — marked, never silent.
  bool degraded = false;
  /// True when admission control refused the query (status == kShed):
  /// no computation happened, `scores`/`set` are empty, and the caller
  /// should retry later. Shed responses also carry degraded = true.
  bool shed = false;
  /// Echoed from the query (admission accounting key).
  std::string tenant;
  std::string detail;
};

/// Serves batches of queries over one evolving graph.
///
/// Determinism: for a fixed request sequence and cache configuration,
/// every response (and the cache contents) is bit-identical at any
/// thread count — cache phases are sequential in batch order, and the
/// parallel execution phase computes each query independently with
/// deterministic kernels. Not thread-safe: one engine, one caller.
class QueryEngine {
 public:
  struct Options {
    /// Retained cache entries (FIFO eviction).
    std::size_t cache_capacity = 256;
    /// Disable to force every query cold (determinism tests, benches).
    bool enable_cache = true;
    /// Surgical invalidation (the default): an edit evicts or demotes
    /// only the cached entries whose region fingerprint it touches;
    /// everything else keeps serving exact bits. Disable to restore
    /// the invalidate-the-world baseline (every edit retires every
    /// exact entry) — kept for the cache-retention benchmark.
    bool surgical_invalidation = true;
    /// Cache-aware relabeling of the frozen CSR snapshot the
    /// dense/heat-kernel/nibble solvers run on. Dense answers map back
    /// *bitwise* (ApplyBatch is label-invariant and convergence is
    /// measured in original-label order via DistanceL1Permuted — same
    /// iterates, same iteration counts); hk-relax and nibble stay
    /// deterministic run-to-run but are not bitwise label-invariant
    /// (they iterate hash maps — see graph/reorder.h). Push queries run
    /// on the unreordered dynamic graph either way. A corrupted
    /// permutation is rejected at build time and the engine serves the
    /// original labeling (ReorderedGraph validation).
    struct GraphOptions {
      ReorderMethod reorder = ReorderMethod::kIdentity;
    } graph;
    /// Per-tenant admission control (off by default: every query is
    /// admitted exact and no ledgers are kept).
    struct AdmissionControl {
      bool enabled = false;
      /// Ladder thresholds + default capacity for every tenant.
      TenantPolicy policy;
      /// Per-tenant capacity overrides (tenant → arcs; 0 = unlimited).
      std::map<std::string, std::int64_t> tenant_capacity;
    } admission;
    /// Sharded serving (docs/sharding.md). With shards > 1 the engine
    /// partitions the graph into owner slices + one-hop halos and
    /// executes strongly-local queries (push / heat-kernel / nibble)
    /// shard-locally with deterministic escalation — bit-identical to
    /// unsharded serving at any shard count. Dense queries always run
    /// whole-graph. A plan or slice-build failure falls back to
    /// unsharded serving (which answers the same bits).
    struct Sharding {
      int shards = 1;
      std::uint64_t partition_seed = 0x5eedULL;
      /// Optional pre-validated placement (e.g. from a recovered
      /// manifest). When its shape fails validation the engine
      /// recomputes the plan from the graph instead.
      std::vector<int> owner;
    } sharding;
  };

  explicit QueryEngine(const Graph& initial);
  QueryEngine(const Graph& initial, const Options& options);
  explicit QueryEngine(const DynamicGraph& initial);
  QueryEngine(const DynamicGraph& initial, const Options& options);

  /// Inserts undirected edge {u, v} and bumps the graph epoch. Cached
  /// entries whose region fingerprint the edit touches are evicted or
  /// demoted to warm-restart-only service (surgical invalidation;
  /// counted in service.cache.region_evicted / region_demoted) —
  /// entries elsewhere keep serving exact bits. Pinned snapshot views
  /// are unaffected — the graph clones its shared representation
  /// before mutating (copy-on-write).
  void AddEdge(NodeId u, NodeId v, double weight = 1.0);

  /// Removes weight from undirected edge {u, v}
  /// (DynamicGraph::RemoveEdge semantics: 0.0 = remove entirely; the
  /// edge must exist — wire callers pre-validate with
  /// graph().EdgeWeight). Bumps the epoch and invalidates surgically,
  /// exactly like AddEdge: removal is just the other sign of the same
  /// two-column update.
  void RemoveEdge(NodeId u, NodeId v, double weight = 0.0);

  /// Pins the current (graph, epoch) as an immutable O(1) view. A batch
  /// run against the view answers at exactly that epoch no matter how
  /// many AddEdges land in between — the snapshot-isolated serving
  /// contract (see docs/durability.md).
  DynamicGraph::SnapshotView PinSnapshot() const {
    return graph_.Snapshot(epoch_);
  }

  /// Answers a batch at the *current* epoch: pins a snapshot and
  /// forwards to RunBatchOn. Validate → canonicalize → dedup →
  /// sequential cache lookups → parallel/grouped execution → sequential
  /// cache inserts. Responses align index-for-index with `queries`.
  std::vector<QueryResponse> RunBatch(const std::vector<Query>& queries);

  /// Answers a batch against a pinned snapshot (from PinSnapshot(),
  /// possibly several AddEdges ago). Results and cache mutations are a
  /// pure function of (snapshot, cache state, queries): bit-identical
  /// whether concurrent insertions landed during or after the batch,
  /// at any thread count. Inserted entries are stamped with the
  /// snapshot's epoch (and validated against the edit journal), so
  /// answers computed against an old view never masquerade as
  /// current-epoch entries.
  std::vector<QueryResponse> RunBatchOn(const DynamicGraph::SnapshotView& snap,
                                        const std::vector<Query>& queries);

  /// Convenience single-query form (a batch of one).
  QueryResponse Run(const Query& query);

  /// Restores the epoch counter after crash recovery (monotone: the
  /// restored value must be ≥ the current one). Recovery replays the
  /// WAL onto the graph first, then stamps the epoch it reached
  /// (src/service/durability/recovery.h).
  void RestoreEpoch(std::int64_t epoch);

  /// Re-admits a persisted cache entry (durability snapshot restore).
  /// Same containment as any insert: non-finite payloads are rejected
  /// (returns false). The entry's persisted validity state (epoch
  /// stamp, region fingerprint, warm-only flag) is restored verbatim;
  /// recovery then replays the invalidation of every WAL-suffix edit
  /// (ReplayEditInvalidation), so the restored cache makes exactly the
  /// decisions the live engine made — warm-start survives restart.
  bool RestoreCachedResult(const std::string& key, const std::string& warm_key,
                           CachedResult result);

  /// Re-applies one edit's cache invalidation during crash recovery.
  /// The WAL suffix was already replayed onto the graph before the
  /// engine was built, so this touches only the restored cache entries
  /// — graph and epoch stay as restored. Call once per replayed edit,
  /// in replay order, after the cache entries are restored.
  void ReplayEditInvalidation(NodeId u, NodeId v);

  /// Monotone edit counter. Not part of the cache key — entries carry
  /// their insert epoch as per-entry validity state (a batch pinned at
  /// an older snapshot never sees a newer answer).
  std::int64_t Epoch() const { return epoch_; }

  const DynamicGraph& graph() const { return graph_; }
  const ResultCache& cache() const { return cache_; }

  /// The admission ledgers (meaningful when options.admission.enabled;
  /// exposed for load reports and tests).
  const TenantBudgetPool& admission_pool() const { return pool_; }

  /// Drops every admission ledger and counter (fresh accounting window;
  /// cache and graph are untouched).
  void ResetAdmission() { pool_.Reset(); }

  /// The sharded store, or nullptr when serving unsharded (shards == 1
  /// or shard build fell back). Exposed for the invariance harness and
  /// the shard benches; `mutable_shards` exists only so tests can reach
  /// CorruptHaloReplica.
  const ShardSet* shards() const { return shards_.get(); }
  ShardSet* mutable_shards() { return shards_.get(); }

  /// The shard routing epoch (0 when unsharded). Governs placement
  /// and escalation only — shard-count invariance means routing state
  /// never changes answer bits, so it is not cache-key material
  /// (persisted in the shard manifest for placement recovery).
  std::int64_t RoutingEpoch() const {
    return shards_ ? shards_->routing_epoch() : 0;
  }

  /// The canonical exact cache key for `query` (exposed so tests can
  /// pin the keying scheme). Seeds are fingerprinted sorted and
  /// deduplicated; parameters print as %.17g. Deliberately epoch-free:
  /// validity lives on the entry (insert-epoch stamp + region
  /// fingerprint + warm-only flag), which is what lets an answer
  /// outlive edits that miss its region.
  static std::string CanonicalKey(const Query& query);

 private:
  struct WorkItem;

  /// One applied edit, journaled so phase-4 inserts from batches
  /// pinned at older snapshots can be validated against the edits they
  /// missed. `epoch` is the counter value the edit produced.
  struct EditRecord {
    std::int64_t epoch;
    NodeId u;
    NodeId v;
  };
  static constexpr std::size_t kEditJournalCapacity = 4096;

  /// Builds (or rebuilds) the shard set from the current graph when
  /// options request shards > 1. Failure leaves shards_ null.
  void BuildShards();

  /// Shared edit tail: bump the epoch, retire the old epoch's
  /// accounting, invalidate surgically (or wholesale, per options),
  /// and journal the edit.
  void FinishEdit(NodeId u, NodeId v);

  /// The frozen CSR snapshot of the batch's pinned epoch (rebuilt
  /// lazily when the pinned epoch changes); used by the
  /// dense/heat-kernel/nibble paths.
  const Graph& Frozen(const DynamicGraph::SnapshotView& snap);

  /// The relabeled view of Frozen() (epoch-tracked alongside it), or
  /// nullptr when options.graph.reorder == kIdentity. Must be called
  /// from the sequential phases only — it rebuilds lazily.
  const ReorderedGraph* FrozenReordered(const DynamicGraph::SnapshotView& snap);

  void ExecuteItem(WorkItem& item, const DynamicGraph::SnapshotView& snap,
                   const Graph* frozen, const ReorderedGraph* reordered);
  void ExecutePush(WorkItem& item, const DynamicGraph::SnapshotView& snap);
  void RunDenseGroup(const Graph& frozen, const ReorderedGraph* reordered,
                     std::vector<WorkItem*>& group);

  Options options_;
  DynamicGraph graph_;
  std::int64_t epoch_ = 0;
  ResultCache cache_;
  TenantBudgetPool pool_;
  std::unique_ptr<Graph> frozen_;
  std::int64_t frozen_epoch_ = -1;
  std::unique_ptr<ReorderedGraph> reordered_;
  std::int64_t reordered_epoch_ = -1;
  std::unique_ptr<ShardSet> shards_;
  /// The last kEditJournalCapacity edits, oldest first (consecutive
  /// epochs). A stale-snapshot insert whose missed window outgrew the
  /// journal is conservatively demoted to warm-only.
  std::deque<EditRecord> edit_journal_;
};

}  // namespace impreg

#endif  // IMPREG_SERVICE_QUERY_ENGINE_H_
