#ifndef IMPREG_SERVICE_WIRE_H_
#define IMPREG_SERVICE_WIRE_H_

#include <cstdint>
#include <string>

#include "service/query_engine.h"

/// \file
/// JSONL wire format for the query-serving layer.
///
/// Requests are one JSON object per line. Three shapes:
///
///   {"op": "add-edge", "u": 3, "v": 7, "weight": 0.5}
///   {"op": "remove-edge", "u": 3, "v": 7}
///   {"id": "q1", "method": "ppr", "seeds": [0, 4],
///    "gamma": 0.15, "epsilon": 1e-6, "top": 5}
///
/// An add-edge weight defaults to 1.0 and must be finite and positive.
/// A remove-edge weight defaults to 0.0 — the "remove the edge
/// entirely" sentinel — and must be finite and non-negative (a
/// positive value is a partial weight decrement). All ids must be
/// integral numbers in NodeId range; anything else is a parse error,
/// never a truncated cast.
///
/// `op` defaults to "query". Query fields beyond `seeds` are optional
/// and default to the Query struct defaults; `method` is one of "ppr",
/// "ppr-dense", "heat-kernel", "nibble"; `tenant` (string, default "")
/// names the admission-control billing account. Responses follow the
/// pinned schema "impreg-query-response-v1" (see docs/serving.md and
/// the golden test in tests/service_test.cc) — `shed` (bool) and
/// `tenant` (string) report admission-control outcomes; a shed
/// response has status "shed" and empty set/top.

namespace impreg {

/// One parsed request line: either a graph edit or a query.
struct QueryRequest {
  /// Caller-supplied id echoed back in the response ("" if absent).
  std::string id;
  /// True for {"op": "add-edge", ...} lines.
  bool is_add_edge = false;
  /// True for {"op": "remove-edge", ...} lines (weight 0.0 = remove
  /// the edge entirely).
  bool is_remove_edge = false;
  NodeId u = 0;
  NodeId v = 0;
  double weight = 1.0;
  /// The query (valid when !is_add_edge).
  Query query;
  /// How many top-scoring nodes the response lists (default 10).
  int top = 10;
};

/// Parses one JSONL request line. Returns false with `*error` set on
/// malformed JSON, unknown method/op, or missing required fields.
/// Range-checking seeds against the graph is the caller's job (the
/// engine reports kInvalidInput).
bool ParseQueryRequest(const std::string& json_line, QueryRequest* out,
                       std::string* error);

/// Serializes one response as a single JSONL line (no trailing
/// newline), schema "impreg-query-response-v1". Doubles print as
/// %.17g so replayed output is bit-stable.
std::string QueryResponseToJson(const QueryRequest& request,
                                const QueryResponse& response,
                                std::int64_t epoch);

}  // namespace impreg

#endif  // IMPREG_SERVICE_WIRE_H_
