#include "service/query_engine.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <deque>
#include <map>
#include <unordered_map>
#include <utility>

#include "core/metrics.h"
#include "core/parallel.h"
#include "core/work_budget.h"
#include "linalg/graph_operators.h"
#include "partition/hkrelax.h"
#include "partition/hkrelax_kernel.h"
#include "partition/nibble.h"
#include "partition/nibble_kernel.h"
#include "service/sharding/shard_plan.h"
#include "streaming/incremental_ppr.h"
#include "streaming/push_kernel.h"
#include "util/check.h"

namespace impreg {

namespace {

std::string FormatParam(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::vector<NodeId> CanonicalSeeds(const std::vector<NodeId>& seeds) {
  std::vector<NodeId> canonical = seeds;
  std::sort(canonical.begin(), canonical.end());
  canonical.erase(std::unique(canonical.begin(), canonical.end()),
                  canonical.end());
  return canonical;
}

std::string SeedFingerprint(const std::vector<NodeId>& canonical_seeds) {
  std::string fp;
  for (std::size_t i = 0; i < canonical_seeds.size(); ++i) {
    if (i > 0) fp += ',';
    fp += std::to_string(canonical_seeds[i]);
  }
  return fp;
}

/// The warm index key deliberately drops the epoch, ε and budget: any
/// (method, γ, seed) match is a valid warm-restart source — that is the
/// Perry–Mahoney point of treating the regularization parameter as part
/// of the query, with nearby settings cache-servable.
std::string WarmKey(const Query& query) {
  return std::string("warm|") + QueryMethodName(query.method) +
         "|gamma=" + FormatParam(query.gamma) +
         "|seeds=" + SeedFingerprint(query.seeds);
}

/// Empty string = valid; otherwise the kInvalidInput detail.
std::string ValidateQuery(const Query& query, NodeId num_nodes) {
  if (query.seeds.empty()) return "query has no seeds";
  for (NodeId s : query.seeds) {
    if (s < 0 || s >= num_nodes) {
      return "seed " + std::to_string(s) + " out of range [0, " +
             std::to_string(num_nodes) + ")";
    }
  }
  if (!(query.gamma > 0.0 && query.gamma < 1.0)) {
    return "gamma must be in (0, 1)";
  }
  if (!(query.epsilon > 0.0)) return "epsilon must be > 0";
  if (query.method == QueryMethod::kPprDense) {
    if (!(query.tolerance > 0.0)) return "tolerance must be > 0";
    if (query.max_iterations < 1) return "max_iterations must be >= 1";
  }
  if (query.method == QueryMethod::kHeatKernel) {
    if (!(query.t > 0.0)) return "t must be > 0";
    if (!(query.delta > 0.0)) return "delta must be > 0";
  }
  if (query.method == QueryMethod::kNibble && query.steps < 1) {
    return "steps must be >= 1";
  }
  if (query.max_work < 0) return "max_work must be >= 0";
  return "";
}

}  // namespace

const char* QueryMethodName(QueryMethod method) {
  switch (method) {
    case QueryMethod::kPprPush:    return "ppr";
    case QueryMethod::kPprDense:   return "ppr-dense";
    case QueryMethod::kHeatKernel: return "heat-kernel";
    case QueryMethod::kNibble:     return "nibble";
  }
  return "unknown";
}

bool QueryMethodFromName(const std::string& name, QueryMethod* method) {
  if (name == "ppr") *method = QueryMethod::kPprPush;
  else if (name == "ppr-dense") *method = QueryMethod::kPprDense;
  else if (name == "heat-kernel") *method = QueryMethod::kHeatKernel;
  else if (name == "nibble") *method = QueryMethod::kNibble;
  else return false;
  return true;
}

const char* QuerySourceName(QuerySource source) {
  switch (source) {
    case QuerySource::kCold:   return "cold";
    case QuerySource::kWarm:   return "warm";
    case QuerySource::kCached: return "cached";
  }
  return "unknown";
}

struct QueryEngine::WorkItem {
  Query query;  ///< Canonicalized (seeds sorted + deduplicated).
  Vector seed;  ///< Uniform distribution over the canonical seeds.
  std::string key;
  std::string warm_key;
  QueryResponse response;
  bool done = false;   ///< Answered (cache hit) — skip execution.
  bool fresh = false;  ///< Computed this batch — candidate for insert.
  bool warm = false;
  Vector warm_p;
  Vector warm_r;
  std::int64_t warm_epoch = 0;
  /// Push state captured for caching after execution.
  bool has_state = false;
  Vector state_p;
  Vector state_r;
  /// Read region of the computed answer (push fills an explicit
  /// fingerprint; whole-graph methods keep the default all-region).
  RegionFingerprint region;
};

QueryEngine::QueryEngine(const Graph& initial)
    : QueryEngine(initial, Options()) {}

QueryEngine::QueryEngine(const Graph& initial, const Options& options)
    : options_(options),
      graph_(DynamicGraph::FromGraph(initial)),
      cache_(options.cache_capacity),
      pool_(options.admission.policy) {
  for (const auto& entry : options_.admission.tenant_capacity) {
    pool_.SetCapacity(entry.first, entry.second);
  }
  BuildShards();
}

QueryEngine::QueryEngine(const DynamicGraph& initial)
    : QueryEngine(initial, Options()) {}

QueryEngine::QueryEngine(const DynamicGraph& initial, const Options& options)
    : options_(options),
      graph_(initial),
      cache_(options.cache_capacity),
      pool_(options.admission.policy) {
  for (const auto& entry : options_.admission.tenant_capacity) {
    pool_.SetCapacity(entry.first, entry.second);
  }
  BuildShards();
}

void QueryEngine::BuildShards() {
  shards_.reset();
  if (options_.sharding.shards <= 1) return;
  ShardPlan plan;
  const NodeId n = graph_.NumNodes();
  if (ValidShardOwners(options_.sharding.owner, n,
                       options_.sharding.shards)) {
    // A pre-validated placement (recovered manifest) is honored as-is
    // so restarts serve under the exact pre-crash plan.
    plan.shards = options_.sharding.shards;
    plan.partition_seed = options_.sharding.partition_seed;
    plan.owner = options_.sharding.owner;
  } else {
    plan = BuildShardPlan(graph_.ToGraph(), options_.sharding.shards,
                          options_.sharding.partition_seed);
  }
  shards_ = ShardSet::Build(graph_, std::move(plan));
  if (shards_ == nullptr) {
    // Unsharded serving answers the same bits — the fallback degrades
    // locality, never correctness.
    IMPREG_METRIC_COUNT("service.shard.fallback_unsharded", 1);
  }
}

void QueryEngine::FinishEdit(NodeId u, NodeId v) {
  ++epoch_;
  // The edit retired epoch_ - 1: entries stamped with it stop being
  // current-epoch answers (O(1) accounting from the per-epoch counts).
  // The surgical pass below then decides, per entry, whether the edit
  // actually touches its read region — only those evict or demote.
  cache_.NoteEpochBump(epoch_ - 1);
  if (options_.surgical_invalidation) {
    cache_.InvalidateRegion(u, v);
  } else {
    cache_.InvalidateAll();
  }
  edit_journal_.push_back(EditRecord{epoch_, u, v});
  if (edit_journal_.size() > kEditJournalCapacity) edit_journal_.pop_front();
}

void QueryEngine::AddEdge(NodeId u, NodeId v, double weight) {
  graph_.AddEdge(u, v, weight);
  if (shards_ != nullptr) shards_->AddEdge(u, v, weight, graph_);
  FinishEdit(u, v);
  IMPREG_METRIC_COUNT("service.engine.add_edges", 1);
}

void QueryEngine::RemoveEdge(NodeId u, NodeId v, double weight) {
  graph_.RemoveEdge(u, v, weight);
  if (shards_ != nullptr) shards_->RemoveEdge(u, v, weight, graph_);
  FinishEdit(u, v);
  IMPREG_METRIC_COUNT("service.engine.remove_edges", 1);
}

void QueryEngine::ReplayEditInvalidation(NodeId u, NodeId v) {
  if (options_.surgical_invalidation) {
    cache_.InvalidateRegion(u, v);
  } else {
    cache_.InvalidateAll();
  }
}

void QueryEngine::RestoreEpoch(std::int64_t epoch) {
  IMPREG_CHECK_MSG(epoch >= epoch_,
                   "restored epoch must not move backwards");
  epoch_ = epoch;
}

bool QueryEngine::RestoreCachedResult(const std::string& key,
                                      const std::string& warm_key,
                                      CachedResult result) {
  return cache_.Insert(key, warm_key, std::move(result));
}

std::string QueryEngine::CanonicalKey(const Query& query) {
  const std::vector<NodeId> seeds = CanonicalSeeds(query.seeds);
  std::string key = QueryMethodName(query.method);
  switch (query.method) {
    case QueryMethod::kPprPush:
      key += "|gamma=" + FormatParam(query.gamma) +
             "|epsilon=" + FormatParam(query.epsilon);
      break;
    case QueryMethod::kPprDense:
      key += "|gamma=" + FormatParam(query.gamma) +
             "|tolerance=" + FormatParam(query.tolerance) +
             "|iters=" + std::to_string(query.max_iterations);
      break;
    case QueryMethod::kHeatKernel:
      key += "|t=" + FormatParam(query.t) +
             "|delta=" + FormatParam(query.delta) +
             "|tail=" + FormatParam(query.epsilon);
      break;
    case QueryMethod::kNibble:
      key += "|steps=" + std::to_string(query.steps) +
             "|epsilon=" + FormatParam(query.epsilon);
      break;
  }
  key += "|work=" + std::to_string(query.max_work);
  key += "|seeds=" + SeedFingerprint(seeds);
  // Deliberately absent: graph epoch (per-entry validity state — the
  // insert stamp, region fingerprint, and warm-only flag say whether
  // an entry may serve) and shard routing state (shard-count
  // invariance: placement never changes answer bits).
  return key;
}

const Graph& QueryEngine::Frozen(const DynamicGraph::SnapshotView& snap) {
  if (frozen_ == nullptr || frozen_epoch_ != snap.epoch()) {
    frozen_ = std::make_unique<Graph>(snap.graph().ToGraph());
    frozen_epoch_ = snap.epoch();
  }
  return *frozen_;
}

const ReorderedGraph* QueryEngine::FrozenReordered(
    const DynamicGraph::SnapshotView& snap) {
  if (options_.graph.reorder == ReorderMethod::kIdentity) return nullptr;
  const Graph& frozen = Frozen(snap);
  if (reordered_ == nullptr || reordered_epoch_ != snap.epoch()) {
    // The wrapper holds a pointer into frozen_, so it is rebuilt in
    // lockstep with the snapshot it relabels.
    reordered_ = std::make_unique<ReorderedGraph>(frozen,
                                                  options_.graph.reorder);
    reordered_epoch_ = snap.epoch();
  }
  return reordered_.get();
}

void QueryEngine::ExecutePush(WorkItem& item,
                              const DynamicGraph::SnapshotView& snap) {
  const DynamicGraph& graph = snap.graph();
  const Query& q = item.query;
  const NodeId n = graph.NumNodes();
  WorkBudget budget(q.max_work);
  IncrementalPprOptions opts;
  opts.gamma = q.gamma;
  opts.epsilon = q.epsilon;
  opts.budget = q.max_work > 0 ? &budget : nullptr;

  Vector p, r;
  if (item.warm) {
    p = std::move(item.warm_p);
    if (item.warm_epoch == snap.epoch()) {
      // Same graph: the cached residual is exact — continue the push
      // (a tighter ε simply drains r further).
      r = std::move(item.warm_r);
    } else {
      // The graph changed since the state was cached: restore the push
      // invariant on the *pinned* graph with one column scatter over
      // supp(p) — the AddEdge repair generalized to any edit distance.
      r = InvariantResidual(graph, item.seed, p, q.gamma);
    }
  } else {
    p.assign(n, 0.0);
    r = item.seed;
  }

  std::deque<NodeId> queue;
  std::vector<char> queued(n, 0);
  for (NodeId u = 0; u < n; ++u) {
    const double d = graph.Degree(u);
    const double threshold = d > 0.0 ? q.epsilon * d : q.epsilon;
    if (std::abs(r[u]) >= threshold) {
      queue.push_back(u);
      queued[u] = 1;
    }
  }

  SolverDiagnostics diag;
  std::int64_t pushes;
  // Shard-local execution (live snapshot only — a stale pinned view
  // predates the current shard state, and the unsharded path answers
  // the same bits anyway). The queue scan above and any warm
  // InvariantResidual are batch setup; the diffusion itself drains the
  // frontier through the owner slices, escalating deterministically
  // when the canonical frontier order crosses shards.
  if (shards_ != nullptr && snap.epoch() == epoch_) {
    ShardSet::DynamicView view(*shards_,
                               shards_->router().HomeShard(q.seeds));
    pushes = StandardFormPushOver(view, opts, p, r, queue, queued, diag);
  } else {
    pushes = StandardFormPush(graph, opts, p, r, queue, queued, diag);
  }

  // Fingerprint the read region: every row this push — or a
  // from-scratch recompute of it — can read lies in supp(p) ∪ supp(r)
  // ∪ supp(seed) plus their one-hop neighborhoods (the threshold check
  // reads the degree of every node residual is scattered to). An edit
  // outside that region leaves the cached answer exactly valid — bit
  // for bit — which is what surgical invalidation serves on.
  item.region.Reset();
  for (NodeId s : q.seeds) item.region.Add(s);
  for (NodeId u = 0; u < n; ++u) {
    if (p[u] == 0.0 && r[u] == 0.0) continue;
    item.region.Add(u);
    for (const DynamicGraph::Neighbor& nb : graph.Neighbors(u)) {
      item.region.Add(nb.head);
    }
  }

  item.response.scores = p;
  item.response.work = pushes;
  item.response.status = diag.status;
  item.response.detail = diag.detail;
  item.response.source = item.warm ? QuerySource::kWarm : QuerySource::kCold;
  item.state_p = std::move(p);
  item.state_r = std::move(r);
  item.has_state = true;
  if (item.warm) {
    IMPREG_METRIC_COUNT("service.engine.warm", 1);
    IMPREG_METRIC_COUNT("service.engine.warm_pushes", pushes);
  } else {
    IMPREG_METRIC_COUNT("service.engine.cold", 1);
    IMPREG_METRIC_COUNT("service.engine.cold_pushes", pushes);
  }
}

void QueryEngine::ExecuteItem(WorkItem& item,
                              const DynamicGraph::SnapshotView& snap,
                              const Graph* frozen,
                              const ReorderedGraph* reordered) {
  IMPREG_METRIC_TIMER("service.query.latency_ns");
  const bool relabeled = reordered != nullptr && reordered->active();
  // Frozen-slice serving for the community methods: live snapshot,
  // original labeling (relabeled hosts interleave differently through
  // their hash maps — see graph/reorder.h), slices frozen at this
  // epoch by the sequential phase.
  const bool shard_frozen = !relabeled && shards_ != nullptr &&
                            snap.epoch() == epoch_ &&
                            shards_->FrozenAt(snap.epoch());
  const Query& q = item.query;
  switch (q.method) {
    case QueryMethod::kPprPush:
      ExecutePush(item, snap);
      break;
    case QueryMethod::kHeatKernel: {
      IMPREG_CHECK(frozen != nullptr);
      WorkBudget budget(q.max_work);
      HkRelaxOptions opts;
      opts.t = q.t;
      opts.delta = q.delta;
      opts.tail_tolerance = q.epsilon;
      opts.budget = q.max_work > 0 ? &budget : nullptr;
      HkRelaxResult hk;
      if (relabeled) {
        // Runs on the relabeled snapshot and maps back: deterministic,
        // but hk-relax iterates a hash map, so scores are not bitwise
        // label-invariant (see graph/reorder.h).
        hk = HeatKernelRelaxFromDistribution(
            reordered->graph(), reordered->ToReorderedVector(item.seed),
            opts);
        hk.rho = reordered->ToOriginalVector(hk.rho);
        hk.set = reordered->ToOriginalNodes(hk.set);
      } else if (shard_frozen) {
        ShardSet::FrozenView view(*shards_,
                                  shards_->router().HomeShard(q.seeds));
        hk = HeatKernelRelaxFromDistributionOver(view, item.seed, opts);
      } else {
        hk = HeatKernelRelaxFromDistribution(*frozen, item.seed, opts);
      }
      item.response.scores = std::move(hk.rho);
      item.response.set = std::move(hk.set);
      item.response.conductance = hk.stats.conductance;
      item.response.work = hk.work;
      item.response.status = hk.diagnostics.status;
      item.response.detail = hk.diagnostics.detail;
      item.response.source = QuerySource::kCold;
      IMPREG_METRIC_COUNT("service.engine.cold", 1);
      break;
    }
    case QueryMethod::kNibble: {
      IMPREG_CHECK(frozen != nullptr);
      WorkBudget budget(q.max_work);
      NibbleOptions opts;
      opts.steps = q.steps;
      opts.epsilon = q.epsilon;
      opts.budget = q.max_work > 0 ? &budget : nullptr;
      NibbleResult nib;
      if (relabeled) {
        nib = NibbleFromDistribution(
            reordered->graph(), reordered->ToReorderedVector(item.seed),
            opts);
        nib.distribution = reordered->ToOriginalVector(nib.distribution);
        nib.set = reordered->ToOriginalNodes(nib.set);
      } else if (shard_frozen) {
        ShardSet::FrozenView view(*shards_,
                                  shards_->router().HomeShard(q.seeds));
        nib = NibbleFromDistributionOver(view, item.seed, opts);
      } else {
        nib = NibbleFromDistribution(*frozen, item.seed, opts);
      }
      item.response.scores = std::move(nib.distribution);
      item.response.set = std::move(nib.set);
      item.response.conductance = nib.stats.conductance;
      item.response.work = nib.work;
      item.response.status = nib.diagnostics.status;
      item.response.detail = nib.diagnostics.detail;
      item.response.source = QuerySource::kCold;
      IMPREG_METRIC_COUNT("service.engine.cold", 1);
      break;
    }
    case QueryMethod::kPprDense:
      IMPREG_CHECK_MSG(false, "dense queries run through RunDenseGroup");
      break;
  }
  item.response.degraded =
      item.response.status != SolveStatus::kConverged;
  item.fresh = true;
  item.done = true;
}

void QueryEngine::RunDenseGroup(const Graph& frozen,
                                const ReorderedGraph* reordered,
                                std::vector<WorkItem*>& group) {
  IMPREG_METRIC_TIMER("service.dense_group.latency_ns");
  // All group members share (γ, tolerance, max_iterations) by
  // construction; budgets stay per-item.
  const Query& shared = group.front()->query;
  const double gamma = shared.gamma;
  // With relabeling, the whole Richardson iteration runs in reordered
  // labels and stays *bitwise* equal to the unreordered solve: SpMM is
  // label-invariant (arc-order-preserving rows, see graph/reorder.h),
  // the elementwise update is positionwise, and the convergence norm is
  // summed in original-label order via DistanceL1Permuted — so iteration
  // counts and every iterate match; only the storage order differs until
  // scores are mapped back.
  const bool relabeled = reordered != nullptr && reordered->active();
  const Graph& host = relabeled ? reordered->graph() : frozen;
  const RandomWalkOperator walk(host);
  const NodeId n = host.NumNodes();
  const std::int64_t arcs_per_iter = host.NumArcs();

  struct DenseState {
    WorkItem* item = nullptr;
    Vector seed;
    Vector scores;
    Vector next;
    WorkBudget budget;
    SolverDiagnostics diag;
    int iterations = 0;
    bool active = true;
  };
  std::vector<DenseState> states(group.size());
  for (std::size_t j = 0; j < group.size(); ++j) {
    DenseState& st = states[j];
    st.item = group[j];
    // Mirrors PersonalizedPageRank's Richardson setup exactly so each
    // column stays bit-identical to its solo solve.
    st.seed = relabeled ? reordered->ToReorderedVector(st.item->seed)
                        : st.item->seed;
    st.scores = st.seed;
    Scale(gamma, st.scores);
    st.budget = WorkBudget(st.item->query.max_work);
  }

  std::size_t active_count = states.size();
  std::vector<Vector> xs;
  std::vector<Vector> ys;
  std::vector<std::size_t> active_idx;
  for (int iter = 1; iter <= shared.max_iterations && active_count > 0;
       ++iter) {
    // Gather the active columns (group order — deterministic) and run
    // one SpMM for all of them: this is the PR2 ApplyBatch path, one
    // adjacency traversal per step for the whole group.
    active_idx.clear();
    xs.clear();
    for (std::size_t j = 0; j < states.size(); ++j) {
      if (!states[j].active) continue;
      active_idx.push_back(j);
      xs.push_back(std::move(states[j].scores));
    }
    walk.ApplyBatch(xs, ys);
    for (std::size_t k = 0; k < active_idx.size(); ++k) {
      DenseState& st = states[active_idx[k]];
      st.scores = std::move(xs[k]);
      const Vector& walked = ys[k];
      const Vector& seed = st.seed;
      st.next.resize(n);
      Vector& next = st.next;
      ParallelFor(0, n, 1 << 14,
                  [&](std::int64_t begin, std::int64_t end) {
                    for (std::int64_t u = begin; u < end; ++u) {
                      next[u] = gamma * seed[u] +
                                (1.0 - gamma) * walked[u];
                    }
                  });
      const double delta =
          relabeled ? DistanceL1Permuted(next, st.scores, reordered->perm())
                    : DistanceL1(next, st.scores);
      st.iterations = iter;
      if (!std::isfinite(delta)) {
        st.diag.status = SolveStatus::kNonFinite;
        st.diag.detail = "diffusion update went non-finite; "
                         "returning last finite iterate";
        st.active = false;
        --active_count;
        continue;
      }
      st.diag.RecordResidual(delta);
      st.scores.swap(st.next);
      if (delta <= shared.tolerance) {
        st.diag.status = SolveStatus::kConverged;
        st.active = false;
        --active_count;
        continue;
      }
      if (st.item->query.max_work > 0) {
        st.budget.Charge(arcs_per_iter);
        if (st.budget.Exhausted()) {
          st.diag.status = SolveStatus::kBudgetExhausted;
          st.diag.detail = "work budget exhausted; scores are the "
                           "early-stopped diffusion";
          st.active = false;
          --active_count;
        }
      }
    }
  }

  for (DenseState& st : states) {
    st.diag.iterations = st.iterations;
    if (st.diag.status == SolveStatus::kMaxIterations) {
      st.diag.detail =
          "iteration cap hit; scores are the early-stopped diffusion";
    }
    WorkItem& item = *st.item;
    item.response.scores = relabeled ? reordered->ToOriginalVector(st.scores)
                                     : std::move(st.scores);
    item.response.work = static_cast<std::int64_t>(st.iterations) *
                         std::max<std::int64_t>(arcs_per_iter, 1);
    item.response.status = st.diag.status;
    item.response.detail = st.diag.detail;
    item.response.source = QuerySource::kCold;
    item.response.degraded =
        item.response.status != SolveStatus::kConverged;
    item.fresh = true;
    item.done = true;
    IMPREG_METRIC_COUNT("service.engine.cold", 1);
  }
}

std::vector<QueryResponse> QueryEngine::RunBatch(
    const std::vector<Query>& queries) {
  return RunBatchOn(PinSnapshot(), queries);
}

std::vector<QueryResponse> QueryEngine::RunBatchOn(
    const DynamicGraph::SnapshotView& snap,
    const std::vector<Query>& queries) {
  IMPREG_METRIC_COUNT("service.engine.batches", 1);
  IMPREG_METRIC_COUNT("service.engine.queries",
                      static_cast<std::int64_t>(queries.size()));
  const NodeId n = snap.graph().NumNodes();
  // Sharded serving applies only to the live epoch: a stale pinned
  // snapshot predates the current slices, so it takes the unsharded
  // path (bit-identical answers either way; only the locality counters
  // differ).
  const bool sharded = shards_ != nullptr && snap.epoch() == epoch_;
  std::vector<QueryResponse> out(queries.size());
  std::vector<int> slot(queries.size(), -1);
  std::vector<std::unique_ptr<WorkItem>> items;
  std::unordered_map<std::string, int> dedup;
  // Per-arrival admission bookkeeping: -1 = not admitted (shed,
  // invalid, or admission disabled).
  const bool admit = options_.admission.enabled;
  std::vector<std::int64_t> billed(queries.size(), -1);
  std::vector<char> owner(queries.size(), 0);

  // Phase 1 (sequential, arrival order): validate, admit,
  // canonicalize, deduplicate. Admission runs here — before dedup and
  // before any cache lookup — so each shed decision is a pure function
  // of (tenant, arrival index, pool state): identical at any thread
  // count, cache on or off.
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const std::string error = ValidateQuery(queries[i], n);
    if (!error.empty()) {
      out[i].scores.assign(n, 0.0);
      out[i].status = SolveStatus::kInvalidInput;
      out[i].degraded = true;
      out[i].detail = error;
      IMPREG_METRIC_COUNT("service.engine.invalid", 1);
      continue;
    }
    Query canonical = queries[i];
    canonical.seeds = CanonicalSeeds(canonical.seeds);
    if (admit) {
      std::int64_t granted = 0;
      const AdmissionDecision decision =
          pool_.Admit(canonical.tenant, canonical.max_work, &granted);
      if (decision == AdmissionDecision::kShed) {
        // No computation, no answer — an explicit refusal, never a
        // silent drop. scores/set stay empty.
        out[i].status = SolveStatus::kShed;
        out[i].degraded = true;
        out[i].shed = true;
        out[i].detail = "tenant '" + canonical.tenant +
                        "' work pool exhausted; shed by admission control";
        IMPREG_METRIC_COUNT("service.engine.shed", 1);
        continue;
      }
      billed[i] = granted;
      if (decision == AdmissionDecision::kDegraded) {
        // The granted cap flows into max_work *before* the cache key is
        // computed, so capped queries key (and cache) separately from
        // their exact twins.
        canonical.max_work = canonical.max_work > 0
                                 ? std::min(canonical.max_work, granted)
                                 : granted;
      }
    }
    std::string key = CanonicalKey(canonical);
    const auto duplicate = dedup.find(key);
    if (duplicate != dedup.end()) {
      slot[i] = duplicate->second;
      IMPREG_METRIC_COUNT("service.engine.deduped", 1);
      continue;
    }
    auto item = std::make_unique<WorkItem>();
    item->query = std::move(canonical);
    item->key = std::move(key);
    if (item->query.method == QueryMethod::kPprPush) {
      item->warm_key = WarmKey(item->query);
    }
    item->seed.assign(n, 0.0);
    const double mass = 1.0 / static_cast<double>(item->query.seeds.size());
    for (NodeId s : item->query.seeds) item->seed[s] = mass;
    slot[i] = static_cast<int>(items.size());
    owner[i] = 1;
    dedup.emplace(item->key, static_cast<int>(items.size()));
    items.push_back(std::move(item));
  }

  // Phase 2 (sequential, batch order): cache lookups. Doing every
  // lookup — and later every insert — in batch order on one thread is
  // what keeps the cache contents identical at any thread count.
  if (options_.enable_cache) {
    for (auto& owned : items) {
      WorkItem& item = *owned;
      // Epoch-aware: an entry serves only when it is still exactly
      // valid (not demoted) and was inserted at or before the pinned
      // snapshot's epoch.
      const CachedResult* hit = cache_.Lookup(item.key, snap.epoch());
      if (hit != nullptr) {
        item.response.scores = hit->scores;
        item.response.set = hit->set;
        item.response.conductance = hit->conductance;
        item.response.work = 0;
        item.response.status = hit->status;
        item.response.source = QuerySource::kCached;
        item.response.degraded = hit->status != SolveStatus::kConverged;
        item.response.detail = hit->detail.empty()
                                   ? "served from cache"
                                   : hit->detail + " (served from cache)";
        item.done = true;
        IMPREG_METRIC_COUNT("service.engine.cached", 1);
        continue;
      }
      if (item.query.method == QueryMethod::kPprPush) {
        const CachedResult* warm = cache_.WarmLookup(item.warm_key);
        if (warm != nullptr && warm->has_state) {
          item.warm = true;
          item.warm_p = warm->p;
          item.warm_r = warm->r;
          item.warm_epoch = warm->epoch;
        }
      }
    }
  }

  // Freeze the CSR snapshot once, before any parallel work needs it.
  bool needs_frozen = false;
  bool needs_shard_frozen = false;
  for (const auto& owned : items) {
    if (owned->done) continue;
    if (owned->query.method != QueryMethod::kPprPush) needs_frozen = true;
    if (owned->query.method == QueryMethod::kHeatKernel ||
        owned->query.method == QueryMethod::kNibble) {
      needs_shard_frozen = true;
    }
  }
  const Graph* frozen = needs_frozen ? &Frozen(snap) : nullptr;
  const ReorderedGraph* reordered =
      needs_frozen ? FrozenReordered(snap) : nullptr;
  if (sharded && needs_shard_frozen &&
      (reordered == nullptr || !reordered->active())) {
    // Per-shard frozen slices for the community methods, built in the
    // sequential phase (ExecuteItem runs inside ParallelFor).
    shards_->EnsureFrozen(snap.epoch());
  }

  // Phase 3a (grouped): compatible dense solves in lockstep through
  // ApplyBatch. std::map keys the groups deterministically.
  std::map<std::string, std::vector<WorkItem*>> dense_groups;
  for (auto& owned : items) {
    if (owned->done || owned->query.method != QueryMethod::kPprDense) {
      continue;
    }
    const Query& q = owned->query;
    dense_groups["gamma=" + FormatParam(q.gamma) +
                 "|tolerance=" + FormatParam(q.tolerance) +
                 "|iters=" + std::to_string(q.max_iterations)]
        .push_back(owned.get());
  }
  for (auto& entry : dense_groups) {
    RunDenseGroup(*frozen, reordered, entry.second);
  }

  // Phase 3b (parallel): everything else, one item per task. Each
  // inner solver runs serially inside the pool (nested parallelism
  // falls back to serial), so answers are thread-count-invariant.
  std::vector<WorkItem*> pending;
  for (auto& owned : items) {
    if (!owned->done) pending.push_back(owned.get());
  }
  ParallelFor(0, static_cast<std::int64_t>(pending.size()), 1,
              [&](std::int64_t begin, std::int64_t end) {
                for (std::int64_t i = begin; i < end; ++i) {
                  ExecuteItem(*pending[i], snap, frozen, reordered);
                }
              });

  // Phase 4 (sequential, batch order): cache inserts. Only usable
  // answers are cached; kInvalidInput/kNonFinite never enter.
  if (options_.enable_cache) {
    for (auto& owned : items) {
      WorkItem& item = *owned;
      if (!item.fresh || !StatusIsUsable(item.response.status)) continue;
      CachedResult cached;
      cached.scores = item.response.scores;
      cached.set = item.response.set;
      cached.conductance = item.response.conductance;
      cached.work = item.response.work;
      cached.status = item.response.status;
      cached.detail = item.response.detail;
      // Epoch-stamped unconditionally: the stamp drives the
      // invalidation accounting at the next edit (NoteEpochBump), and
      // it records the epoch the answer is exact at — older pinned
      // snapshots never see it.
      cached.epoch = snap.epoch();
      cached.region = item.region;
      if (item.has_state) {
        cached.has_state = true;
        cached.p = std::move(item.state_p);
        cached.r = std::move(item.state_r);
        cached.epsilon = item.query.epsilon;
      }
      // A batch pinned at an older snapshot may have missed edits that
      // landed since. Consult the edit journal: if any missed edit
      // touches this answer's region — or the missed window outgrew
      // the journal — the exact answer is already stale on the live
      // graph, so keep it as a warm-restart source only (or drop it
      // when it carries no state).
      if (snap.epoch() < epoch_) {
        bool stale = !options_.surgical_invalidation ||
                     epoch_ - snap.epoch() >
                         static_cast<std::int64_t>(edit_journal_.size());
        if (!stale) {
          for (const EditRecord& e : edit_journal_) {
            if (e.epoch <= snap.epoch()) continue;
            if (cached.region.CoversEdit(e.u, e.v)) {
              stale = true;
              break;
            }
          }
        }
        if (stale) {
          if (!cached.has_state) continue;
          cached.warm_only = true;
        }
      }
      cache_.Insert(item.key, item.warm_key, std::move(cached));
    }
  }

  // Phase 5 (sequential, arrival order): record observed solver work
  // into the admission stats. Reporting only — deduped and cached
  // arrivals settle at 0, and nothing here feeds back into shed
  // decisions (see core/budget_pool.h).
  if (admit) {
    for (std::size_t i = 0; i < queries.size(); ++i) {
      if (billed[i] < 0) continue;
      const std::int64_t actual =
          owner[i] ? items[slot[i]]->response.work : 0;
      pool_.Settle(queries[i].tenant, actual);
    }
  }

  // Publish the per-shard locality counters accumulated this batch
  // (sequential, like every other metrics phase).
  if (shards_ != nullptr) shards_->FlushMetrics();

  // Fan responses out to the original batch positions.
  for (std::size_t i = 0; i < queries.size(); ++i) {
    if (slot[i] >= 0) out[i] = items[slot[i]]->response;
    out[i].tenant = queries[i].tenant;
  }
  return out;
}

QueryResponse QueryEngine::Run(const Query& query) {
  std::vector<QueryResponse> responses = RunBatch({query});
  return std::move(responses.front());
}

}  // namespace impreg
