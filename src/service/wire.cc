#include "service/wire.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <utility>
#include <vector>

#include "util/json.h"

namespace impreg {

namespace {

std::string FormatDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Minimal escaping for the echoed id (the only free-form string we
/// emit): backslash, quote, and control characters.
std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':  out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

bool ReadNumber(const JsonValue& obj, const char* key, double* out) {
  const JsonValue* v = obj.FindOfType(key, JsonValue::Type::kNumber);
  if (v == nullptr) return false;
  *out = v->AsDouble();
  return true;
}

/// True iff `d` is an integral double that fits std::int64_t exactly —
/// the guard that keeps `static_cast<std::int64_t>(d)` defined
/// behavior (a double ≥ 2^63 or NaN makes the bare cast UB).
bool IsExactInt64(double d) {
  return std::isfinite(d) && d == std::floor(d) &&
         d >= -9223372036854775808.0 && d < 9223372036854775808.0;
}

bool ReadInt(const JsonValue& obj, const char* key, std::int64_t* out) {
  double d = 0.0;
  if (!ReadNumber(obj, key, &d)) return false;
  // Non-integral or out-of-range numbers are treated as absent, never
  // truncated: a caller that must distinguish (edit endpoints) reads
  // the raw number itself and reports the parse error.
  if (!IsExactInt64(d)) return false;
  *out = static_cast<std::int64_t>(d);
  return true;
}

/// Reads one edit-endpoint id: must be present, integral, and in
/// NodeId range. Anything else is a hard parse error.
bool ReadNodeId(const JsonValue& obj, const char* key, NodeId* out) {
  double d = 0.0;
  if (!ReadNumber(obj, key, &d)) return false;
  if (!IsExactInt64(d) || d < -2147483648.0 || d > 2147483647.0) {
    return false;
  }
  *out = static_cast<NodeId>(d);
  return true;
}

}  // namespace

bool ParseQueryRequest(const std::string& json_line, QueryRequest* out,
                       std::string* error) {
  *out = QueryRequest{};
  JsonParseResult parsed = JsonParse(json_line);
  if (!parsed.ok()) {
    *error = parsed.error;
    return false;
  }
  const JsonValue& obj = parsed.value;
  if (!obj.is_object()) {
    *error = "request line is not a JSON object";
    return false;
  }

  const JsonValue* id = obj.FindOfType("id", JsonValue::Type::kString);
  if (id != nullptr) out->id = id->AsString();

  std::string op = "query";
  const JsonValue* op_value = obj.FindOfType("op", JsonValue::Type::kString);
  if (op_value != nullptr) op = op_value->AsString();

  if (op == "add-edge" || op == "remove-edge") {
    out->is_add_edge = op == "add-edge";
    out->is_remove_edge = !out->is_add_edge;
    if (!ReadNodeId(obj, "u", &out->u) || !ReadNodeId(obj, "v", &out->v)) {
      *error = op + " requires integral \"u\" and \"v\" in node-id range";
      return false;
    }
    // Defaults differ: an add accumulates 1.0; a remove's 0.0 means
    // "remove the edge entirely".
    out->weight = out->is_add_edge ? 1.0 : 0.0;
    double weight = 0.0;
    if (ReadNumber(obj, "weight", &weight)) {
      const bool valid = out->is_add_edge
                             ? std::isfinite(weight) && weight > 0.0
                             : std::isfinite(weight) && weight >= 0.0;
      if (!valid) {
        *error = out->is_add_edge
                     ? "add-edge weight must be a finite positive number"
                     : "remove-edge weight must be a finite non-negative "
                       "number (0 = remove entirely)";
        return false;
      }
      out->weight = weight;
    }
    return true;
  }
  if (op != "query") {
    *error = "unknown op \"" + op +
             "\" (expected \"query\", \"add-edge\", or \"remove-edge\")";
    return false;
  }

  const JsonValue* method =
      obj.FindOfType("method", JsonValue::Type::kString);
  if (method != nullptr &&
      !QueryMethodFromName(method->AsString(), &out->query.method)) {
    *error = "unknown method \"" + method->AsString() +
             "\" (expected ppr, ppr-dense, heat-kernel, or nibble)";
    return false;
  }

  const JsonValue* seeds = obj.FindOfType("seeds", JsonValue::Type::kArray);
  if (seeds == nullptr || seeds->Items().empty()) {
    *error = "query requires a non-empty \"seeds\" array";
    return false;
  }
  for (const JsonValue& s : seeds->Items()) {
    const double d = s.is_number() ? s.AsDouble() : -1.0;
    if (!s.is_number() || !IsExactInt64(d) || d < -2147483648.0 ||
        d > 2147483647.0) {
      *error = "\"seeds\" entries must be integers in node-id range";
      return false;
    }
    out->query.seeds.push_back(static_cast<NodeId>(d));
  }

  ReadNumber(obj, "gamma", &out->query.gamma);
  ReadNumber(obj, "epsilon", &out->query.epsilon);
  ReadNumber(obj, "tolerance", &out->query.tolerance);
  std::int64_t iters = 0;
  if (ReadInt(obj, "max_iterations", &iters)) {
    out->query.max_iterations = static_cast<int>(iters);
  }
  ReadNumber(obj, "t", &out->query.t);
  ReadNumber(obj, "delta", &out->query.delta);
  std::int64_t steps = 0;
  if (ReadInt(obj, "steps", &steps)) {
    out->query.steps = static_cast<int>(steps);
  }
  ReadInt(obj, "max_work", &out->query.max_work);
  const JsonValue* tenant = obj.FindOfType("tenant", JsonValue::Type::kString);
  if (tenant != nullptr) out->query.tenant = tenant->AsString();
  std::int64_t top = 0;
  if (ReadInt(obj, "top", &top)) {
    out->top = static_cast<int>(std::max<std::int64_t>(top, 0));
  }
  return true;
}

std::string QueryResponseToJson(const QueryRequest& request,
                                const QueryResponse& response,
                                std::int64_t epoch) {
  const Vector& scores = response.scores;
  std::int64_t support = 0;
  for (double s : scores) {
    if (s > 0.0) ++support;
  }

  // Top-k by score descending, node id ascending on ties; only
  // positive-score nodes compete. Full sort keeps the order total and
  // replay-stable.
  std::vector<std::pair<double, NodeId>> ranked;
  for (NodeId u = 0; u < static_cast<NodeId>(scores.size()); ++u) {
    if (scores[u] > 0.0) ranked.emplace_back(scores[u], u);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const std::pair<double, NodeId>& a,
               const std::pair<double, NodeId>& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  if (static_cast<int>(ranked.size()) > request.top) {
    ranked.resize(request.top);
  }

  std::string out = "{\"schema\":\"impreg-query-response-v1\"";
  out += ",\"id\":\"" + EscapeJson(request.id) + "\"";
  out += ",\"method\":\"";
  out += QueryMethodName(request.query.method);
  out += "\"";
  out += ",\"status\":\"";
  out += SolveStatusName(response.status);
  out += "\"";
  out += ",\"source\":\"";
  out += QuerySourceName(response.source);
  out += "\"";
  out += ",\"degraded\":";
  out += response.degraded ? "true" : "false";
  out += ",\"shed\":";
  out += response.shed ? "true" : "false";
  out += ",\"tenant\":\"" + EscapeJson(response.tenant) + "\"";
  out += ",\"epoch\":" + std::to_string(epoch);
  out += ",\"support\":" + std::to_string(support);
  out += ",\"work\":" + std::to_string(response.work);
  out += ",\"conductance\":" + FormatDouble(response.conductance);
  out += ",\"set\":[";
  for (std::size_t i = 0; i < response.set.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(response.set[i]);
  }
  out += "]";
  out += ",\"top\":[";
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    if (i > 0) out += ',';
    out += "[" + std::to_string(ranked[i].second) + "," +
           FormatDouble(ranked[i].first) + "]";
  }
  out += "]}";
  return out;
}

}  // namespace impreg
