#ifndef IMPREG_SERVICE_RESULT_CACHE_H_
#define IMPREG_SERVICE_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/solve_status.h"
#include "graph/graph.h"
#include "linalg/vector_ops.h"

/// \file
/// Deterministic result cache for the query-serving layer.
///
/// Mahoney–Orecchia (1010.0703) is what makes a cache of *approximate*
/// answers sound: an early-stopped diffusion is not a sloppy version of
/// the exact answer but the exact optimum of a regularized problem, so
/// a cached result is a well-defined object that can be served again —
/// and, for the push family, its (p, r) pair is a certified
/// intermediate state that a tighter-ε or post-edit re-query can
/// warm-restart from instead of recomputing.
///
/// Determinism contract: the cache is a plain FIFO keyed by canonical
/// strings. Eviction follows insertion order only (never access
/// recency), and the engine performs all lookups and inserts in
/// sequential batch phases, so the cache contents after any request
/// sequence are bit-identical at any thread count — replay is exact.
///
/// The cache is deliberately NOT thread-safe; the engine serializes
/// access around its parallel execution phase.

namespace impreg {

/// One cached answer, keyed by (graph epoch, method, parameters, seed
/// fingerprint).
struct CachedResult {
  /// The served vector (PPR scores, heat-kernel ρ, nibble
  /// distribution).
  Vector scores;
  /// Community set for the sweep-producing methods (empty otherwise).
  std::vector<NodeId> set;
  double conductance = 1.0;
  /// Work the original solve spent (pushes / terms / steps).
  std::int64_t work = 0;
  /// Status of the original solve. Only usable statuses are cached;
  /// a degraded-but-usable answer (kBudgetExhausted) keeps its marking
  /// when served again.
  SolveStatus status = SolveStatus::kConverged;
  std::string detail;
  /// Warm-restart state (push family only): the (p, r) invariant pair,
  /// the graph epoch it was computed at, and the ε it satisfies.
  /// `epoch` is stamped on every insert (state-bearing or not) — it is
  /// what the epoch-bump invalidation accounting reads.
  bool has_state = false;
  Vector p;
  Vector r;
  std::int64_t epoch = 0;
  double epsilon = 0.0;
};

/// Hit/miss/eviction accounting (also mirrored into service.cache.*
/// metrics when metrics are enabled).
struct ResultCacheStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t warm_hits = 0;
  std::int64_t insertions = 0;
  std::int64_t evictions = 0;
  /// Inserts refused because the payload had non-finite entries (the
  /// fault-containment path: a poisoned result is dropped, never
  /// served).
  std::int64_t rejected = 0;
  /// Entries whose exact key went stale at an epoch bump (they were
  /// inserted at the epoch the bump retired). Mirrors
  /// `service.cache.invalidated` — the visibility handle on
  /// invalidation storms: every AddEdge retires every current-epoch
  /// entry at once.
  std::int64_t invalidated = 0;
  /// The subset of `invalidated` that carried warm-restart state and so
  /// was demoted to warm-only service (still reachable through the warm
  /// index) rather than dropped. Mirrors `service.cache.warm_demoted`.
  std::int64_t warm_demoted = 0;
};

/// String-keyed FIFO cache with a secondary warm-restart index.
class ResultCache {
 public:
  /// `capacity` = maximum retained entries (≥ 1).
  explicit ResultCache(std::size_t capacity);

  /// Exact lookup; counts a hit or a miss. Returned pointer is valid
  /// until the next Insert/Clear.
  const CachedResult* Lookup(const std::string& key);

  /// Warm lookup: the most recently inserted entry carrying
  /// warm-restart state under `warm_key` (method + γ + seed
  /// fingerprint, no epoch/ε — that is what makes tighter-ε and
  /// post-edit queries land here). Does not count toward hit/miss;
  /// counts warm_hits when it returns an entry.
  const CachedResult* WarmLookup(const std::string& warm_key);

  /// Inserts (or replaces in place) under `key`. Entries with
  /// non-finite scores or state are rejected (counted in
  /// stats().rejected) — this is the IMPREG_FAULT_POINT
  /// "service/cache_insert" containment path. When full, the oldest
  /// insertion is evicted first. Returns true when stored.
  bool Insert(const std::string& key, const std::string& warm_key,
              CachedResult result);

  /// Epoch-bump accounting: the engine calls this right after an
  /// AddEdge retires `retired_epoch` (the epoch the edit replaced).
  /// Counts entries stamped with that epoch — their exact keys just
  /// stopped matching — into stats().invalidated /
  /// service.cache.invalidated, and the state-bearing subset (still
  /// servable through the warm index) into stats().warm_demoted /
  /// service.cache.warm_demoted. Entries from older epochs were
  /// counted at their own bump and are not re-counted.
  void NoteEpochBump(std::int64_t retired_epoch);

  std::size_t Size() const { return entries_.size(); }
  std::size_t Capacity() const { return capacity_; }
  const ResultCacheStats& stats() const { return stats_; }

  /// One entry as stored, for durability snapshots (pointer valid until
  /// the next Insert/Clear).
  struct ExportedEntry {
    const std::string* key;
    const std::string* warm_key;
    const CachedResult* result;
  };

  /// Every entry, oldest-insertion-first — the order a restore must
  /// re-insert them in to reproduce FIFO eviction state bit-identically
  /// (src/service/durability/snapshot.cc persists the state-bearing
  /// ones).
  std::vector<ExportedEntry> ExportEntries() const;

  /// Keys oldest-insertion-first (test/debug aid).
  std::vector<std::string> KeysInInsertionOrder() const;

  void Clear();

 private:
  struct Entry {
    std::string key;
    std::string warm_key;
    CachedResult result;
  };
  using EntryList = std::list<Entry>;

  std::size_t capacity_;
  EntryList entries_;  ///< front = oldest insertion.
  std::unordered_map<std::string, EntryList::iterator> index_;
  std::unordered_map<std::string, EntryList::iterator> warm_index_;
  ResultCacheStats stats_;
};

}  // namespace impreg

#endif  // IMPREG_SERVICE_RESULT_CACHE_H_
