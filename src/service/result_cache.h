#ifndef IMPREG_SERVICE_RESULT_CACHE_H_
#define IMPREG_SERVICE_RESULT_CACHE_H_

#include <array>
#include <cstdint>
#include <limits>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/solve_status.h"
#include "graph/graph.h"
#include "linalg/vector_ops.h"

/// \file
/// Deterministic result cache for the query-serving layer.
///
/// Mahoney–Orecchia (1010.0703) is what makes a cache of *approximate*
/// answers sound: an early-stopped diffusion is not a sloppy version of
/// the exact answer but the exact optimum of a regularized problem, so
/// a cached result is a well-defined object that can be served again —
/// and, for the push family, its (p, r) pair is a certified
/// intermediate state that a tighter-ε or post-edit re-query can
/// warm-restart from instead of recomputing.
///
/// The same locality that makes the push solve cheap makes its cached
/// answer *robust to edits*: a push certificate only ever read the
/// rows of supp(p) ∪ N(supp(p)) ∪ supp(seed), so an edge edit outside
/// that region leaves the certificate exactly valid — bit for bit, not
/// approximately. Each entry therefore carries a `RegionFingerprint`
/// of that read set, and `InvalidateRegion(u, v)` surgically evicts
/// (or demotes to warm-only) exactly the entries whose region an edit
/// {u, v} may touch, instead of retiring the whole cache per edit.
/// The fingerprint is lossy (a fixed 512-bit hash set), so collisions
/// over-evict — never under-evict — and whole-graph answers
/// (sweep-producing methods, dense solves) mark `all` and die on every
/// edit, as before.
///
/// Determinism contract: the cache is a plain FIFO keyed by canonical
/// strings. Eviction follows insertion order only (never access
/// recency), and the engine performs all lookups, inserts, and
/// invalidations in sequential phases, so the cache contents after any
/// request sequence are bit-identical at any thread count — replay is
/// exact.
///
/// The cache is deliberately NOT thread-safe; the engine serializes
/// access around its parallel execution phase.

namespace impreg {

/// A lossy, fixed-width fingerprint of the node set a cached answer
/// depends on. 512 hash buckets; a set bit means "some region node
/// hashes here", so `Covers` has false positives (safe: over-evict)
/// and no false negatives. Default-constructed fingerprints mark the
/// whole graph — an entry that never declared its region behaves like
/// the old invalidate-everything contract.
struct RegionFingerprint {
  static constexpr int kBits = 512;
  static constexpr int kWords = kBits / 64;

  std::array<std::uint64_t, kWords> words{};
  /// Depends on the whole graph: every edit invalidates.
  bool all = true;

  /// Deterministic node → bucket hash (splitmix64 finalizer). The same
  /// function at insert and invalidation time is the entire contract.
  static int Bucket(NodeId u);

  /// Starts an explicit (non-whole-graph) region.
  void Reset() {
    words.fill(0);
    all = false;
  }
  void Add(NodeId u);
  void MarkAll() { all = true; }
  bool Covers(NodeId u) const;
  /// Whether an edit touching {u, v} may intersect this region.
  bool CoversEdit(NodeId u, NodeId v) const {
    return all || Covers(u) || Covers(v);
  }
};

/// One cached answer, keyed by (method, parameters, seed fingerprint)
/// — epochs are deliberately NOT part of the key: validity is tracked
/// per entry (insert-epoch stamp + region fingerprint + warm_only
/// flag), which is what lets an entry outlive edits that miss its
/// region.
struct CachedResult {
  /// The served vector (PPR scores, heat-kernel ρ, nibble
  /// distribution).
  Vector scores;
  /// Community set for the sweep-producing methods (empty otherwise).
  std::vector<NodeId> set;
  double conductance = 1.0;
  /// Work the original solve spent (pushes / terms / steps).
  std::int64_t work = 0;
  /// Status of the original solve. Only usable statuses are cached;
  /// a degraded-but-usable answer (kBudgetExhausted) keeps its marking
  /// when served again.
  SolveStatus status = SolveStatus::kConverged;
  std::string detail;
  /// Warm-restart state (push family only): the (p, r) invariant pair,
  /// the graph epoch it was computed at, and the ε it satisfies.
  /// `epoch` is stamped on every insert (state-bearing or not) — it is
  /// what the epoch-bump invalidation accounting reads, and what keeps
  /// a batch pinned at an older snapshot from seeing a newer answer.
  bool has_state = false;
  Vector p;
  Vector r;
  std::int64_t epoch = 0;
  double epsilon = 0.0;
  /// The node set this answer read (push region, or `all` for
  /// whole-graph methods). Drives surgical invalidation.
  RegionFingerprint region;
  /// Demoted: an edit touched the region, so the exact answer is
  /// stale, but the (p, r) pair is still a sound warm-restart point.
  /// Exact lookups skip warm-only entries; WarmLookup serves them.
  bool warm_only = false;
};

/// Hit/miss/eviction accounting (also mirrored into service.cache.*
/// metrics when metrics are enabled).
struct ResultCacheStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t warm_hits = 0;
  std::int64_t insertions = 0;
  std::int64_t evictions = 0;
  /// Inserts refused because the payload had non-finite entries (the
  /// fault-containment path: a poisoned result is dropped, never
  /// served).
  std::int64_t rejected = 0;
  /// Entries whose insert epoch a bump retired (they were inserted at
  /// the epoch the edit replaced). Mirrors `service.cache.invalidated`
  /// — the visibility handle on edit churn. Maintained O(1) per bump
  /// from per-epoch counts kept at insert/evict time.
  std::int64_t invalidated = 0;
  /// The subset of `invalidated` that carried warm-restart state.
  /// Mirrors `service.cache.warm_demoted`.
  std::int64_t warm_demoted = 0;
  /// Surgical invalidation: entries evicted because an edit touched
  /// their fingerprint region and they carried no warm state worth
  /// keeping. Mirrors `service.cache.region_evicted`.
  std::int64_t region_evicted = 0;
  /// Surgical invalidation: state-bearing entries demoted to warm-only
  /// service because an edit touched their region. Mirrors
  /// `service.cache.region_demoted`.
  std::int64_t region_demoted = 0;
  /// Exactly-servable entries that *survived* an edit because their
  /// region missed it — the payoff surgical invalidation exists for.
  /// Mirrors `service.cache.region_retained`.
  std::int64_t region_retained = 0;
};

/// String-keyed FIFO cache with a secondary warm-restart index and a
/// region-bucket inverted index for surgical invalidation.
class ResultCache {
 public:
  /// `capacity` = maximum retained entries (≥ 1).
  explicit ResultCache(std::size_t capacity);

  /// Exact lookup; counts a hit or a miss. An entry serves only when
  /// it is not warm-only and was inserted at or before
  /// `snapshot_epoch` (a batch pinned at an older snapshot must not
  /// see an answer computed on a newer graph). Returned pointer is
  /// valid until the next Insert/InvalidateRegion/Clear.
  const CachedResult* Lookup(const std::string& key,
                             std::int64_t snapshot_epoch);

  /// Lookup against the newest epoch (test/debug convenience).
  const CachedResult* Lookup(const std::string& key) {
    return Lookup(key, std::numeric_limits<std::int64_t>::max());
  }

  /// Warm lookup: the most recently inserted entry carrying
  /// warm-restart state under `warm_key` (method + γ + seed
  /// fingerprint, no epoch/ε — that is what makes tighter-ε and
  /// post-edit queries land here). Serves warm-only (demoted) entries
  /// too — their (p, r) pair stays sound across edits. Does not count
  /// toward hit/miss; counts warm_hits when it returns an entry.
  const CachedResult* WarmLookup(const std::string& warm_key);

  /// Inserts (or replaces in place) under `key`. Entries with
  /// non-finite scores or state are rejected (counted in
  /// stats().rejected) — this is the IMPREG_FAULT_POINT
  /// "service/cache_insert" containment path. When full, the oldest
  /// insertion is evicted first. An entry arriving with
  /// `result.warm_only` set is stored for warm service only (the
  /// engine inserts results computed against stale snapshots this
  /// way), and an insert carrying an older epoch than a still-valid
  /// stored entry under the same key is refused — a pinned-stale
  /// batch must not clobber a fresher answer. Returns true when
  /// stored.
  bool Insert(const std::string& key, const std::string& warm_key,
              CachedResult result);

  /// Surgical invalidation for an edit touching {u, v}: every entry
  /// whose fingerprint region covers u or v — plus every whole-graph
  /// entry — is evicted, or demoted to warm-only service when it
  /// carries warm-restart state under a warm key. Entries whose region
  /// misses the edit are untouched and counted into
  /// stats().region_retained: the Mahoney–Orecchia locality of the
  /// cached optimum, made operational. O(affected) via the bucket
  /// index, not O(cache size).
  void InvalidateRegion(NodeId u, NodeId v);

  /// The invalidate-the-world baseline: every exact entry is evicted
  /// or demoted under the same per-entry rule InvalidateRegion uses,
  /// regardless of region. Kept for the retention benchmark and for
  /// engines running with surgical invalidation disabled.
  void InvalidateAll();

  /// Epoch-bump accounting: the engine calls this right after an edit
  /// retires `retired_epoch` (the epoch the edit replaced), *before*
  /// InvalidateRegion. Counts entries stamped with that epoch into
  /// stats().invalidated / service.cache.invalidated, and the
  /// state-bearing subset into stats().warm_demoted /
  /// service.cache.warm_demoted. O(1): reads the per-epoch counts
  /// maintained at insert/evict time and retires the bucket. Entries
  /// from older epochs were counted at their own bump and are not
  /// re-counted.
  void NoteEpochBump(std::int64_t retired_epoch);

  std::size_t Size() const { return entries_.size(); }
  /// Entries servable through exact lookup (not warm-only).
  std::size_t ExactSize() const {
    return static_cast<std::size_t>(exact_entries_);
  }
  std::size_t Capacity() const { return capacity_; }
  const ResultCacheStats& stats() const { return stats_; }

  /// One entry as stored, for durability snapshots (pointer valid until
  /// the next Insert/Clear).
  struct ExportedEntry {
    const std::string* key;
    const std::string* warm_key;
    const CachedResult* result;
  };

  /// Every entry, oldest-insertion-first — the order a restore must
  /// re-insert them in to reproduce FIFO eviction state bit-identically
  /// (src/service/durability/snapshot.cc persists the state-bearing
  /// ones).
  std::vector<ExportedEntry> ExportEntries() const;

  /// Keys oldest-insertion-first (test/debug aid).
  std::vector<std::string> KeysInInsertionOrder() const;

  void Clear();

 private:
  struct Entry {
    std::string key;
    std::string warm_key;
    CachedResult result;
  };
  using EntryList = std::list<Entry>;

  /// Per-epoch insert accounting for O(1) NoteEpochBump.
  struct EpochCounts {
    std::int64_t entries = 0;
    std::int64_t state_bearing = 0;
  };

  /// Registers a (non-warm-only) entry in the region bucket index.
  void AddToRegionIndex(Entry* e);
  /// Erase-if-found inverse of AddToRegionIndex (no-op for warm-only
  /// entries — they were deregistered at demotion).
  void RemoveFromRegionIndex(Entry* e);
  /// Evicts or demotes every gathered entry and updates the surgical
  /// stats (shared tail of InvalidateRegion / InvalidateAll).
  void ApplyInvalidation(const std::vector<Entry*>& affected);
  void AccountInsert(const CachedResult& result);
  void AccountErase(const CachedResult& result);
  /// Full removal: region index, epoch counts, exact index, warm slot,
  /// entry list.
  void EraseEntry(EntryList::iterator entry);

  std::size_t capacity_;
  EntryList entries_;  ///< front = oldest insertion.
  std::unordered_map<std::string, EntryList::iterator> index_;
  std::unordered_map<std::string, EntryList::iterator> warm_index_;
  /// Inverted region index: bucket b lists the live exact entries
  /// whose fingerprint has bit b set (an entry appears once per set
  /// bit); whole-graph entries live in all_region_ instead. Pointers
  /// are stable (std::list nodes).
  std::array<std::vector<Entry*>, RegionFingerprint::kBits> region_buckets_;
  std::vector<Entry*> all_region_;
  std::unordered_map<std::int64_t, EpochCounts> epoch_counts_;
  std::int64_t exact_entries_ = 0;
  ResultCacheStats stats_;
};

}  // namespace impreg

#endif  // IMPREG_SERVICE_RESULT_CACHE_H_
