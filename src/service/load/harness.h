#ifndef IMPREG_SERVICE_LOAD_HARNESS_H_
#define IMPREG_SERVICE_LOAD_HARNESS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "bench/report.h"
#include "core/budget_pool.h"
#include "core/solve_status.h"
#include "service/load/workload.h"
#include "service/query_engine.h"

/// \file
/// The closed-loop load harness: drives a QueryEngine through a
/// generated Workload batch by batch and reports the serving story —
/// tail latency (p50/p95/p99), answer provenance (cold / warm /
/// cached), and the degradation ladder's output (degraded / shed
/// counts, per tenant).
///
/// Two kinds of result, with different reproducibility contracts:
///
///  - *Digests* — per-query (status, source, shed, work, score
///    checksum) — are bit-identical for a fixed workload and engine
///    configuration at any thread count. Tests gate on these.
///  - *Latencies* — wall-clock per closed-loop batch, attributed to
///    every query in the batch — are machine- and load-dependent.
///    Reports carry them as p50/p99 and `impreg_bench_diff
///    --max-regress-p99` gates their *trajectory*, not their value.

namespace impreg {

/// Per-query result fingerprint: everything the determinism suite
/// compares, nothing wall-clock-dependent. `checksum` is the plain
/// left-to-right sum of the score vector — bitwise-stable because every
/// engine path is deterministic.
struct ResponseDigest {
  SolveStatus status = SolveStatus::kConverged;
  QuerySource source = QuerySource::kCold;
  bool degraded = false;
  bool shed = false;
  std::int64_t work = 0;
  double checksum = 0.0;
  std::string tenant;
};

bool operator==(const ResponseDigest& a, const ResponseDigest& b);
inline bool operator!=(const ResponseDigest& a, const ResponseDigest& b) {
  return !(a == b);
}

/// Everything one load run reports.
struct LoadStats {
  int events = 0;   ///< Total workload events driven.
  int queries = 0;  ///< Query events (digests align with these, in order).
  int writes = 0;   ///< AddEdge events applied.
  int batches = 0;  ///< Closed-loop batches executed.

  // Answer provenance and degradation, from the responses themselves.
  std::int64_t cold = 0;
  std::int64_t warm = 0;
  std::int64_t cached = 0;
  std::int64_t degraded = 0;  ///< Responses marked degraded (includes shed).
  std::int64_t shed = 0;      ///< Responses refused by admission control.
  std::int64_t invalid = 0;   ///< kInvalidInput responses.
  std::int64_t total_work = 0;

  // Latency distribution over queries (each query is attributed its
  // closed-loop batch's wall time), nanoseconds.
  double mean_ns = 0.0;
  double p50_ns = 0.0;
  double p95_ns = 0.0;
  double p99_ns = 0.0;
  double total_wall_ns = 0.0;

  /// Worst harness-level status: merged over every response plus the
  /// harness's own ingest checks (a poisoned interarrival or latency
  /// sample folds in kNonFinite — contained and marked, never silent).
  SolveStatus status = SolveStatus::kConverged;
  std::string detail;

  /// Per-tenant admission outcome (copied from the engine's pool when
  /// admission is enabled; empty otherwise).
  std::map<std::string, TenantAdmissionStats> tenants;

  /// One digest per query event, in arrival order.
  std::vector<ResponseDigest> digests;
};

/// Drives `engine` through `workload`. Batches execute in order; an
/// AddEdge event flushes the queries queued before it (same convention
/// as the CLI's JSONL loop) so mutations land between batches
/// deterministically.
LoadStats RunLoadWorkload(QueryEngine& engine, const Workload& workload);

/// Renders the run as one impreg-bench-v2 record named `bench` (e.g.
/// "BM_LoadServe/steady"): ns_per_iter = mean latency, p50_ns/p99_ns =
/// the tails, n/m = graph size, threads = the pool width it ran with.
BenchRecord LoadStatsRecord(const std::string& bench, const LoadStats& stats,
                            std::int64_t num_nodes, std::int64_t num_edges,
                            int threads);

/// The reproducible half of the report as a JSON object (counts and
/// rates only — no wall-clock values), for the report's `metrics`
/// member. Keys are name-sorted and stable.
std::string LoadMetricsJson(const LoadStats& stats);

}  // namespace impreg

#endif  // IMPREG_SERVICE_LOAD_HARNESS_H_
