#include "service/load/workload.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <utility>

#include "util/check.h"
#include "util/fault.h"

namespace impreg {

const char* ArrivalPatternName(ArrivalPattern pattern) {
  switch (pattern) {
    case ArrivalPattern::kSteady: return "steady";
    case ArrivalPattern::kBurst:  return "burst";
    case ArrivalPattern::kRamp:   return "ramp";
  }
  return "unknown";
}

bool ArrivalPatternFromName(const std::string& name, ArrivalPattern* pattern) {
  if (name == "steady") *pattern = ArrivalPattern::kSteady;
  else if (name == "burst") *pattern = ArrivalPattern::kBurst;
  else if (name == "ramp") *pattern = ArrivalPattern::kRamp;
  else return false;
  return true;
}

ZipfSampler::ZipfSampler(std::int64_t n, double s) {
  IMPREG_CHECK(n >= 1);
  IMPREG_CHECK(s >= 0.0);
  cdf_.resize(static_cast<std::size_t>(n));
  double total = 0.0;
  for (std::int64_t k = 0; k < n; ++k) {
    total += std::pow(static_cast<double>(k + 1), -s);
    cdf_[static_cast<std::size_t>(k)] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // Guard against round-off at the tail.
}

std::int64_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  return it == cdf_.end()
             ? static_cast<std::int64_t>(cdf_.size()) - 1
             : static_cast<std::int64_t>(it - cdf_.begin());
}

double ZipfSampler::Cdf(std::int64_t k) const {
  if (k < 0) return 0.0;
  if (k >= static_cast<std::int64_t>(cdf_.size())) return 1.0;
  return cdf_[static_cast<std::size_t>(k)];
}

namespace {

/// The batch size the pattern prescribes at batch index `b`, around
/// nominal size `nominal`. Pure in (pattern, nominal, b).
int PatternBatchSize(ArrivalPattern pattern, int nominal, int b) {
  const int lull = std::max(1, nominal / 4);
  const int spike = nominal * 4;
  switch (pattern) {
    case ArrivalPattern::kSteady:
      return nominal;
    case ArrivalPattern::kBurst:
      return (b % 2 == 0) ? lull : spike;
    case ArrivalPattern::kRamp: {
      std::int64_t size = 1;
      for (int i = 0; i < b && size < spike; ++i) size *= 2;
      return static_cast<int>(std::min<std::int64_t>(size, spike));
    }
  }
  return nominal;
}

}  // namespace

Workload GenerateWorkload(const WorkloadOptions& options, NodeId num_nodes) {
  IMPREG_CHECK(num_nodes >= 2);
  IMPREG_CHECK(options.num_requests >= 1);
  IMPREG_CHECK(options.batch_size >= 1);
  IMPREG_CHECK(options.seeds_per_query >= 1);
  IMPREG_CHECK(options.remove_fraction >= 0.0 &&
               options.remove_fraction <= 1.0);
  Workload workload;
  workload.events.reserve(static_cast<std::size_t>(options.num_requests));
  Rng rng(options.seed);
  const ZipfSampler zipf(num_nodes, options.zipf_exponent);

  // Edges this workload has added and not yet removed, as packed
  // (u, v) keys. The vector supports a uniform draw with O(1)
  // swap-erase; the set keeps entries unique so a re-added edge is one
  // candidate, not two. Both are deterministic in the event sequence.
  std::vector<std::uint64_t> alive_edges;
  std::unordered_set<std::uint64_t> alive_set;
  const auto edge_key = [](NodeId u, NodeId v) {
    if (u > v) std::swap(u, v);
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(u)) << 32) |
           static_cast<std::uint64_t>(static_cast<std::uint32_t>(v));
  };

  for (int i = 0; i < options.num_requests; ++i) {
    WorkloadEvent event;
    if (options.write_fraction > 0.0 &&
        rng.NextBernoulli(options.write_fraction)) {
      // The remove/add split is drawn for every mutation — even when
      // no alive edge exists yet — so the Rng offsets of everything
      // downstream never depend on the alive-set state.
      const bool want_remove = options.remove_fraction > 0.0 &&
                               rng.NextBernoulli(options.remove_fraction);
      if (want_remove && !alive_edges.empty()) {
        const std::size_t pick = static_cast<std::size_t>(
            rng.NextBounded(alive_edges.size()));
        const std::uint64_t key = alive_edges[pick];
        alive_edges[pick] = alive_edges.back();
        alive_edges.pop_back();
        alive_set.erase(key);
        event.is_remove_edge = true;
        event.u = static_cast<NodeId>(key >> 32);
        event.v = static_cast<NodeId>(key & 0xffffffffull);
        workload.events.push_back(std::move(event));
        continue;
      }
      // Mutations attach a uniform endpoint to a Zipf-popular one, so
      // the hot head of the popularity curve is also where the graph
      // grows — the adversarial case for cached/warm-restart state.
      event.is_add_edge = true;
      event.u = static_cast<NodeId>(zipf.Sample(rng));
      event.v = static_cast<NodeId>(rng.NextBounded(
          static_cast<std::uint64_t>(num_nodes)));
      if (event.v == event.u) event.v = (event.v + 1) % num_nodes;
      if (alive_set.insert(edge_key(event.u, event.v)).second) {
        alive_edges.push_back(edge_key(event.u, event.v));
      }
    } else {
      Query& q = event.query;
      q.method = options.method;
      q.gamma = options.gamma;
      q.epsilon = options.epsilon;
      q.max_work = options.max_work;
      q.seeds.reserve(static_cast<std::size_t>(options.seeds_per_query));
      for (int s = 0; s < options.seeds_per_query; ++s) {
        q.seeds.push_back(static_cast<NodeId>(zipf.Sample(rng)));
      }
      if (!options.tenants.empty()) {
        q.tenant = options.tenants[static_cast<std::size_t>(
            rng.NextBounded(options.tenants.size()))];
      }
    }
    workload.events.push_back(std::move(event));
  }

  // Partition into closed-loop batches and draw one simulated
  // inter-batch gap per batch (exponential, mean 1). The gap is an
  // offered-load record, never a control input — but it is still a
  // hardened ingest value: the "load/interarrival" hook can poison it,
  // and the generator clamps and counts instead of propagating NaN
  // into the report.
  int remaining = options.num_requests;
  int b = 0;
  while (remaining > 0) {
    const int size = std::min(
        remaining, PatternBatchSize(options.pattern, options.batch_size, b));
    workload.batch_sizes.push_back(size);
    double gap = -std::log(1.0 - rng.NextDouble());
    IMPREG_FAULT_POINT("load/interarrival", gap);
    if (!std::isfinite(gap) || gap < 0.0) {
      gap = 1.0;
      ++workload.sanitized_gaps;
    }
    workload.interarrival.push_back(gap);
    remaining -= size;
    ++b;
  }
  return workload;
}

}  // namespace impreg
