#include "service/load/harness.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>

#include "core/parallel.h"
#include "util/fault.h"

namespace impreg {

bool operator==(const ResponseDigest& a, const ResponseDigest& b) {
  return a.status == b.status && a.source == b.source &&
         a.degraded == b.degraded && a.shed == b.shed && a.work == b.work &&
         a.checksum == b.checksum && a.tenant == b.tenant;
}

namespace {

double ScoreChecksum(const Vector& scores) {
  double sum = 0.0;
  for (double s : scores) sum += s;
  return sum;
}

/// Sorted-latency percentile, nearest-rank. `latencies` must be sorted.
double Percentile(const std::vector<double>& latencies, double q) {
  if (latencies.empty()) return 0.0;
  const double rank = q * static_cast<double>(latencies.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, latencies.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return latencies[lo] + frac * (latencies[hi] - latencies[lo]);
}

void AbsorbResponse(const QueryResponse& response, LoadStats& stats) {
  ResponseDigest digest;
  digest.status = response.status;
  digest.source = response.source;
  digest.degraded = response.degraded;
  digest.shed = response.shed;
  digest.work = response.work;
  digest.checksum = ScoreChecksum(response.scores);
  digest.tenant = response.tenant;
  stats.digests.push_back(std::move(digest));

  if (response.shed) {
    ++stats.shed;
  } else {
    switch (response.source) {
      case QuerySource::kCold:   ++stats.cold; break;
      case QuerySource::kWarm:   ++stats.warm; break;
      case QuerySource::kCached: ++stats.cached; break;
    }
  }
  if (response.degraded) ++stats.degraded;
  if (response.status == SolveStatus::kInvalidInput) ++stats.invalid;
  stats.total_work += response.work;
  stats.status = MergeStatus(stats.status, response.status);
}

}  // namespace

LoadStats RunLoadWorkload(QueryEngine& engine, const Workload& workload) {
  using Clock = std::chrono::steady_clock;
  LoadStats stats;
  if (workload.sanitized_gaps > 0) {
    stats.status = MergeStatus(stats.status, SolveStatus::kNonFinite);
    stats.detail = std::to_string(workload.sanitized_gaps) +
                   " interarrival gap(s) sanitized at ingest";
  }

  std::vector<double> latencies;
  latencies.reserve(workload.events.size());
  std::size_t next = 0;
  for (int batch_size : workload.batch_sizes) {
    const std::size_t end = next + static_cast<std::size_t>(batch_size);
    const auto start_time = Clock::now();
    // Split the closed-loop batch at mutation boundaries: queries
    // queued before an AddEdge flush first (the CLI's JSONL
    // convention), so every query sees the epoch its arrival order
    // implies.
    std::vector<Query> pending;
    int batch_queries = 0;
    auto flush = [&] {
      if (pending.empty()) return;
      const std::vector<QueryResponse> responses = engine.RunBatch(pending);
      for (const QueryResponse& response : responses) {
        AbsorbResponse(response, stats);
      }
      batch_queries += static_cast<int>(pending.size());
      pending.clear();
    };
    for (std::size_t i = next; i < end; ++i) {
      const WorkloadEvent& event = workload.events[i];
      if (event.is_add_edge || event.is_remove_edge) {
        flush();
        if (event.is_add_edge) {
          engine.AddEdge(event.u, event.v);
        } else {
          // The generator only removes edges it previously added, so
          // the full-removal contract is always satisfied here.
          engine.RemoveEdge(event.u, event.v);
        }
        ++stats.writes;
      } else {
        pending.push_back(event.query);
      }
    }
    flush();
    double batch_ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_time)
            .count());
    IMPREG_FAULT_POINT("load/latency", batch_ns);
    if (!std::isfinite(batch_ns) || batch_ns < 0.0) {
      // A poisoned or backwards clock sample is contained here: the
      // sample is dropped to 0 and the run is marked, so NaN can never
      // reach a percentile or a checked-in report.
      batch_ns = 0.0;
      stats.status = MergeStatus(stats.status, SolveStatus::kNonFinite);
      if (!stats.detail.empty()) stats.detail += "; ";
      stats.detail += "latency sample sanitized";
    }
    stats.total_wall_ns += batch_ns;
    // Closed-loop convention: every query in the batch waited for the
    // whole batch, so each is attributed the batch's wall time.
    for (int q = 0; q < batch_queries; ++q) latencies.push_back(batch_ns);
    next = end;
    ++stats.batches;
  }

  stats.events = static_cast<int>(workload.events.size());
  stats.queries = static_cast<int>(latencies.size());
  if (!latencies.empty()) {
    double sum = 0.0;
    for (double l : latencies) sum += l;
    stats.mean_ns = sum / static_cast<double>(latencies.size());
    std::sort(latencies.begin(), latencies.end());
    stats.p50_ns = Percentile(latencies, 0.50);
    stats.p95_ns = Percentile(latencies, 0.95);
    stats.p99_ns = Percentile(latencies, 0.99);
  }
  stats.tenants = engine.admission_pool().stats();
  return stats;
}

BenchRecord LoadStatsRecord(const std::string& bench, const LoadStats& stats,
                            std::int64_t num_nodes, std::int64_t num_edges,
                            int threads) {
  BenchRecord record;
  record.bench = bench;
  record.n = num_nodes;
  record.m = num_edges;
  record.threads = threads > 0 ? threads : ImpregNumThreads();
  record.ns_per_iter = stats.mean_ns;
  record.p50_ns = stats.p50_ns;
  record.p99_ns = stats.p99_ns;
  return record;
}

std::string LoadMetricsJson(const LoadStats& stats) {
  std::ostringstream out;
  out.precision(17);
  out << "{";
  out << "\"load.batches\": " << stats.batches;
  out << ", \"load.cached\": " << stats.cached;
  out << ", \"load.cold\": " << stats.cold;
  out << ", \"load.degraded\": " << stats.degraded;
  out << ", \"load.events\": " << stats.events;
  out << ", \"load.invalid\": " << stats.invalid;
  out << ", \"load.queries\": " << stats.queries;
  out << ", \"load.shed\": " << stats.shed;
  out << ", \"load.total_work\": " << stats.total_work;
  out << ", \"load.warm\": " << stats.warm;
  out << ", \"load.writes\": " << stats.writes;
  for (const auto& [tenant, t] : stats.tenants) {
    const std::string key = "load.tenant." + (tenant.empty() ? "-" : tenant);
    out << ", \"" << key << ".degraded\": " << t.admitted_degraded;
    out << ", \"" << key << ".exact\": " << t.admitted_exact;
    out << ", \"" << key << ".shed\": " << t.shed;
    out << ", \"" << key << ".spent_arcs\": " << t.spent_arcs;
  }
  out << "}";
  return out.str();
}

}  // namespace impreg
