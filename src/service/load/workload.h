#ifndef IMPREG_SERVICE_LOAD_WORKLOAD_H_
#define IMPREG_SERVICE_LOAD_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "service/query_engine.h"
#include "util/rng.h"

/// \file
/// Deterministic production-shaped workloads for the serving layer.
///
/// A workload is a fully materialized event sequence — seed-set queries
/// with Zipf-popular seeds, interleaved AddEdge mutations, partitioned
/// into closed-loop batches by an arrival pattern — generated entirely
/// from one Rng seed. Generation happens up front and never consults
/// the clock, so two runs from the same options replay the *identical*
/// byte-for-byte request stream: the load harness's determinism claims
/// (same shed set at 1 and 8 threads, cache on or off) are claims about
/// the engine, not about generator luck.
///
/// Seed popularity is Zipfian over node ids: rank k (= node id k)
/// carries weight (k+1)^-s. Skew s is configurable; s ≈ 1 matches the
/// classic web/social access skew, larger s concentrates load on the
/// hot head — the interesting regime for cache and admission behavior.

namespace impreg {

/// How closed-loop batches are sized across the run.
enum class ArrivalPattern {
  kSteady,  ///< Every batch is `batch_size` events.
  kBurst,   ///< Alternating lulls (batch_size/4) and spikes (4×).
  kRamp,    ///< Doubling from 1 up to a 4× ceiling, then flat.
};

/// Stable names: "steady", "burst", "ramp".
const char* ArrivalPatternName(ArrivalPattern pattern);

/// Parses a stable name; false on unknown.
bool ArrivalPatternFromName(const std::string& name, ArrivalPattern* pattern);

/// Zipf(s) over ranks {0, ..., n-1}: P(k) ∝ (k+1)^-s. Exact inverse-CDF
/// sampling (binary search over the precomputed CDF), no rejection —
/// one Rng draw per sample keeps replay offsets stable.
class ZipfSampler {
 public:
  /// `n` ≥ 1 ranks, exponent `s` ≥ 0 (s = 0 is uniform).
  ZipfSampler(std::int64_t n, double s);

  /// Draws one rank in [0, n).
  std::int64_t Sample(Rng& rng) const;

  /// The analytic CDF: P(rank ≤ k). Tests compare empirical
  /// frequencies against differences of this.
  double Cdf(std::int64_t k) const;

  std::int64_t n() const { return static_cast<std::int64_t>(cdf_.size()); }

 private:
  std::vector<double> cdf_;
};

/// Everything that shapes a workload. Two equal option structs generate
/// bit-identical workloads.
struct WorkloadOptions {
  std::uint64_t seed = 1;
  /// Total events (queries + mutations).
  int num_requests = 1024;
  /// Zipf exponent for seed popularity (0 = uniform).
  double zipf_exponent = 1.1;
  /// Fraction of events that are graph mutations (the write mix).
  double write_fraction = 0.0;
  /// Of the mutation events, the fraction that are RemoveEdge (full
  /// removals of an edge this workload previously added). Draws are
  /// made for every mutation to keep Rng offsets stable, but a remove
  /// falls back to an add while no generator-added edge is alive.
  double remove_fraction = 0.0;
  ArrivalPattern pattern = ArrivalPattern::kSteady;
  /// Nominal closed-loop batch size (the pattern scales around it).
  int batch_size = 16;
  /// Distinct seeds per query (sampled with replacement, ≥ 1).
  int seeds_per_query = 1;
  /// Tenant names sampled uniformly per query; empty = the anonymous
  /// tenant "".
  std::vector<std::string> tenants;
  /// Query template: every generated query copies these.
  QueryMethod method = QueryMethod::kPprPush;
  double gamma = 0.15;
  double epsilon = 1e-4;
  std::int64_t max_work = 0;
};

/// One generated event: a query, an AddEdge, or a RemoveEdge mutation.
struct WorkloadEvent {
  bool is_add_edge = false;
  /// A full removal (weight 0.0) of an edge a previous event added.
  bool is_remove_edge = false;
  NodeId u = 0;  ///< Mutation endpoints (valid for either mutation).
  NodeId v = 0;
  Query query;   ///< Valid when neither mutation flag is set.
};

/// A materialized workload: the event stream plus its batch partition.
struct Workload {
  std::vector<WorkloadEvent> events;
  /// Closed-loop batch sizes, in order; sums to events.size().
  std::vector<int> batch_sizes;
  /// Simulated inter-batch gaps (arbitrary time units, one per batch)
  /// — the offered-load record. Pacing only; never affects events.
  std::vector<double> interarrival;
  /// Gaps the "load/interarrival" fault hook poisoned and the
  /// generator clamped (surfaced as kNonFinite by the harness).
  int sanitized_gaps = 0;
};

/// Generates the workload for a graph with `num_nodes` nodes. Pure
/// function of (options, num_nodes) — replays are bit-identical.
Workload GenerateWorkload(const WorkloadOptions& options, NodeId num_nodes);

}  // namespace impreg

#endif  // IMPREG_SERVICE_LOAD_WORKLOAD_H_
