#include "service/durability/recovery.h"

#include <utility>

#include "service/durability/snapshot.h"
#include "service/durability/wal.h"
#include "util/check.h"

namespace impreg::durability {

RecoveryReport RecoverEngine(const DynamicGraph& base,
                             const QueryEngine::Options& options,
                             const RecoveryOptions& recovery,
                             std::unique_ptr<QueryEngine>* engine) {
  RecoveryReport report;

  // Rung 1: newest intact snapshot, falling back epoch by epoch.
  DynamicGraph graph = base;
  std::vector<SnapshotCacheEntry> cache_entries;
  if (!recovery.snapshot_dir.empty()) {
    for (const auto& [epoch, path] : ListSnapshots(recovery.snapshot_dir)) {
      SnapshotLoadResult loaded = LoadSnapshot(path);
      if (loaded.status != SolveStatus::kConverged) {
        ++report.snapshots_rejected;
        continue;
      }
      graph = std::move(loaded.data.graph);
      cache_entries = std::move(loaded.data.cache_entries);
      report.snapshot_epoch = loaded.data.epoch;
      break;
    }
  }
  const std::int64_t start_epoch =
      report.snapshot_epoch >= 0 ? report.snapshot_epoch : 0;

  // Rung 2: the WAL's certified prefix (+ tail repair).
  std::vector<WalRecord> entries;
  if (!recovery.wal_path.empty()) {
    WalReadResult wal = ReadWal(recovery.wal_path);
    if (wal.status == SolveStatus::kInvalidInput) {
      // Unreadable header: with a snapshot we can still serve that
      // epoch; with nothing we cannot assemble any trusted state.
      report.status = report.snapshot_epoch >= 0 ? SolveStatus::kBreakdown
                                                 : SolveStatus::kInvalidInput;
      report.detail = "WAL rejected (" + wal.detail + ")";
      if (report.status == SolveStatus::kInvalidInput) return report;
    } else {
      if (wal.truncated) {
        report.wal_truncated = true;
        if (recovery.truncate_torn_tail) {
          TruncateWal(recovery.wal_path, wal.valid_bytes);
        }
      }
      entries = std::move(wal.entries);
    }
  }
  report.wal_records = static_cast<std::int64_t>(entries.size());

  // Rung 3: epoch-indexed suffix replay. A snapshot newer than the log
  // (possible when the WAL was rotated after the snapshot) replays
  // nothing.
  if (start_epoch < report.wal_records) {
    WalReplayResult replay = ReplayWal(entries, start_epoch, &graph);
    report.replayed = replay.applied;
    if (replay.status != SolveStatus::kConverged) {
      report.status = SolveStatus::kBreakdown;
      report.detail = replay.detail;
    }
  }
  report.epoch = start_epoch + report.replayed;

  if (report.status == SolveStatus::kConverged &&
      (report.wal_truncated || report.snapshots_rejected > 0)) {
    report.status = SolveStatus::kBreakdown;
  }

  // Rung 4: rebuild the engine and re-admit the persisted cache slice
  // (oldest-insertion-first keeps FIFO eviction order faithful). The
  // snapshot captured the cache *after* the live engine's invalidation
  // decisions up to snapshot_epoch, so the restored entries predate
  // every replayed suffix record — re-running the per-edit invalidation
  // over the suffix, in replay order, reproduces exactly the demotions
  // and evictions the crashed engine would have made.
  if (engine != nullptr) {
    *engine = std::make_unique<QueryEngine>(graph, options);
    (*engine)->RestoreEpoch(report.epoch);
    for (SnapshotCacheEntry& e : cache_entries) {
      if ((*engine)->RestoreCachedResult(e.key, e.warm_key,
                                         std::move(e.result))) {
        ++report.cache_restored;
      }
    }
    for (std::int64_t i = start_epoch; i < start_epoch + report.replayed;
         ++i) {
      const WalRecord& record = entries[static_cast<std::size_t>(i)];
      (*engine)->ReplayEditInvalidation(record.u, record.v);
    }
  }

  if (report.detail.empty()) {
    report.detail =
        "recovered epoch " + std::to_string(report.epoch) + " (snapshot " +
        std::to_string(report.snapshot_epoch) + " + " +
        std::to_string(report.replayed) + " replayed records" +
        (report.wal_truncated ? ", torn tail dropped" : "") +
        (report.snapshots_rejected > 0
             ? ", " + std::to_string(report.snapshots_rejected) +
                   " snapshots rejected"
             : "") +
        ")";
  }
  return report;
}

}  // namespace impreg::durability
