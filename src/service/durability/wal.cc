#include "service/durability/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "util/check.h"
#include "util/crc32c.h"
#include "util/fault.h"

namespace impreg::durability {

namespace {

constexpr char kMagic[8] = {'I', 'M', 'P', 'R', 'G', 'W', 'A', 'L'};
// v1 knew only AddEdge; v2 adds RemoveEdge. New files are written at
// v2 and readers accept both (a v1 file cannot contain a remove).
constexpr std::uint32_t kVersion = 2;
constexpr std::uint32_t kMinReadVersion = 1;
constexpr std::size_t kHeaderSize = 8 + 4 + 4;  // magic | version | crc
constexpr std::size_t kFrameOverhead = 4 + 4;   // size | crc
constexpr std::uint8_t kTypeAddEdge = 1;
constexpr std::uint8_t kTypeRemoveEdge = 2;
// u8 type | i32 u | i32 v | f64 weight — both record types share it.
constexpr std::size_t kEdgePayload = 1 + 4 + 4 + 8;

void PutU32(std::uint8_t* p, std::uint32_t x) {
  p[0] = static_cast<std::uint8_t>(x);
  p[1] = static_cast<std::uint8_t>(x >> 8);
  p[2] = static_cast<std::uint8_t>(x >> 16);
  p[3] = static_cast<std::uint8_t>(x >> 24);
}

std::uint32_t GetU32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

void PutI32(std::uint8_t* p, std::int32_t x) {
  PutU32(p, static_cast<std::uint32_t>(x));
}

std::int32_t GetI32(const std::uint8_t* p) {
  return static_cast<std::int32_t>(GetU32(p));
}

void PutF64(std::uint8_t* p, double x) {
  std::uint64_t bits;
  std::memcpy(&bits, &x, 8);
  PutU32(p, static_cast<std::uint32_t>(bits));
  PutU32(p + 4, static_cast<std::uint32_t>(bits >> 32));
}

double GetF64(const std::uint8_t* p) {
  const std::uint64_t bits =
      static_cast<std::uint64_t>(GetU32(p)) |
      (static_cast<std::uint64_t>(GetU32(p + 4)) << 32);
  double x;
  std::memcpy(&x, &bits, 8);
  return x;
}

void EncodeHeader(std::uint8_t out[kHeaderSize]) {
  std::memcpy(out, kMagic, 8);
  PutU32(out + 8, kVersion);
  PutU32(out + 12, Crc32c(out, 12));
}

bool HeaderValid(const std::uint8_t* h) {
  const std::uint32_t version = GetU32(h + 8);
  return std::memcmp(h, kMagic, 8) == 0 && version >= kMinReadVersion &&
         version <= kVersion && GetU32(h + 12) == Crc32c(h, 12);
}

bool WriteAll(int fd, const std::uint8_t* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

void SetDetail(std::string* detail, const char* msg) {
  if (detail != nullptr) *detail = msg;
}

}  // namespace

WriteAheadLog::~WriteAheadLog() { Close(); }

SolveStatus WriteAheadLog::Open(const std::string& path,
                                const WalOptions& options,
                                std::string* detail) {
  IMPREG_CHECK_MSG(fd_ < 0, "WAL handle is already open");
  IMPREG_CHECK(options.sync_every >= 0);
  sync_every_ = options.sync_every;
  unsynced_ = 0;
  records_appended_ = 0;

  // Create missing parent directories like the snapshot writer does —
  // pointing serve at a fresh state directory must just work.
  const std::filesystem::path parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);
  }
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    SetDetail(detail, "cannot open WAL file");
    return SolveStatus::kInvalidInput;
  }
  const off_t size = ::lseek(fd, 0, SEEK_END);
  if (size == 0) {
    std::uint8_t header[kHeaderSize];
    EncodeHeader(header);
    if (!WriteAll(fd, header, kHeaderSize) || ::fsync(fd) != 0) {
      ::close(fd);
      SetDetail(detail, "cannot write WAL header");
      return SolveStatus::kBreakdown;
    }
  } else {
    std::uint8_t header[kHeaderSize];
    bool ok = size >= static_cast<off_t>(kHeaderSize) &&
              ::pread(fd, header, kHeaderSize, 0) ==
                  static_cast<ssize_t>(kHeaderSize) &&
              HeaderValid(header);
    if (!ok) {
      ::close(fd);
      SetDetail(detail, "existing file is not a v1/v2 WAL");
      return SolveStatus::kInvalidInput;
    }
  }
  fd_ = fd;
  return SolveStatus::kConverged;
}

SolveStatus WriteAheadLog::AppendEdgeRecord(std::uint8_t type, NodeId u,
                                            NodeId v, double weight,
                                            std::string* detail) {
  std::uint8_t frame[kFrameOverhead + kEdgePayload];
  std::uint8_t* payload = frame + kFrameOverhead;
  payload[0] = type;
  PutI32(payload + 1, u);
  PutI32(payload + 5, v);
  PutF64(payload + 9, weight);
  PutU32(frame, static_cast<std::uint32_t>(kEdgePayload));
  PutU32(frame + 4, Crc32c(payload, kEdgePayload));

  if (!WriteAll(fd_, frame, sizeof(frame))) {
    SetDetail(detail, "WAL write failed");
    return SolveStatus::kBreakdown;
  }
  ++records_appended_;
  ++unsynced_;
  if (sync_every_ > 0 && unsynced_ >= sync_every_) return Sync(detail);
  return SolveStatus::kConverged;
}

SolveStatus WriteAheadLog::AppendAddEdge(NodeId u, NodeId v, double weight,
                                         std::string* detail) {
  IMPREG_CHECK_MSG(fd_ >= 0, "append on a closed WAL");
  // The one place an edit crosses into durable state — poison injected
  // here must be rejected before a single byte is framed, or a crash
  // would replay it forever.
  IMPREG_FAULT_POINT("wal/append", weight);
  if (u < 0 || v < 0 || !std::isfinite(weight) || weight <= 0.0) {
    SetDetail(detail, "record rejected: id out of range or bad weight");
    return SolveStatus::kInvalidInput;
  }
  return AppendEdgeRecord(kTypeAddEdge, u, v, weight, detail);
}

SolveStatus WriteAheadLog::AppendRemoveEdge(NodeId u, NodeId v, double weight,
                                            std::string* detail) {
  IMPREG_CHECK_MSG(fd_ >= 0, "append on a closed WAL");
  // The RemoveEdge twin of "wal/append": a poisoned removal must be
  // rejected before framing, never written, never replayed.
  IMPREG_FAULT_POINT("wal/append_remove", weight);
  // Weight 0.0 is the "remove entirely" sentinel, so zero is legal
  // here where AppendAddEdge rejects it.
  if (u < 0 || v < 0 || !std::isfinite(weight) || weight < 0.0) {
    SetDetail(detail, "record rejected: id out of range or bad weight");
    return SolveStatus::kInvalidInput;
  }
  return AppendEdgeRecord(kTypeRemoveEdge, u, v, weight, detail);
}

SolveStatus WriteAheadLog::Sync(std::string* detail) {
  IMPREG_CHECK_MSG(fd_ >= 0, "sync on a closed WAL");
  // Simulated device failure: a poisoned sentinel stands in for a
  // failed fsync(2) so the sweep can prove the caller refuses to
  // acknowledge an edit whose durability was never certified.
  double fsync_ok = 1.0;
  IMPREG_FAULT_POINT("wal/fsync", fsync_ok);
  if (!(fsync_ok == 1.0) || ::fsync(fd_) != 0) {
    SetDetail(detail, "fsync failed: records not certified durable");
    return SolveStatus::kBreakdown;
  }
  unsynced_ = 0;
  return SolveStatus::kConverged;
}

void WriteAheadLog::Close() {
  if (fd_ < 0) return;
  if (unsynced_ > 0) ::fsync(fd_);
  ::close(fd_);
  fd_ = -1;
  unsynced_ = 0;
}

WalReadResult ReadWal(const std::string& path) {
  WalReadResult result;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    // No file yet = an empty log (first boot), not corruption.
    result.detail = "no WAL file: empty log";
    return result;
  }
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  in.close();

  if (bytes.size() < kHeaderSize || !HeaderValid(bytes.data())) {
    result.status = SolveStatus::kInvalidInput;
    result.detail = "WAL header missing or corrupt: no record is trusted";
    return result;
  }

  std::size_t offset = kHeaderSize;
  result.valid_bytes = static_cast<std::int64_t>(offset);
  while (offset < bytes.size()) {
    // Frame validation. A crash mid-append leaves a short or
    // CRC-failing frame at the tail; everything before it is certified
    // by its own checksum. The fault point forces this check to fail on
    // an intact file so the truncation path is exercised determin-
    // istically.
    double frame_ok = 1.0;
    IMPREG_FAULT_POINT("wal/torn_tail", frame_ok);
    const std::size_t remaining = bytes.size() - offset;
    bool intact = frame_ok == 1.0 && remaining >= kFrameOverhead;
    std::size_t payload_size = 0;
    if (intact) {
      payload_size = GetU32(bytes.data() + offset);
      intact = payload_size == kEdgePayload &&
               remaining >= kFrameOverhead + payload_size;
    }
    const std::uint8_t* payload = bytes.data() + offset + kFrameOverhead;
    if (intact) {
      intact = GetU32(bytes.data() + offset + 4) ==
                   Crc32c(payload, payload_size) &&
               (payload[0] == kTypeAddEdge || payload[0] == kTypeRemoveEdge);
    }
    if (!intact) {
      result.status = SolveStatus::kBreakdown;
      result.truncated = true;
      result.detail = "torn or corrupt tail at byte " +
                      std::to_string(offset) + ": " +
                      std::to_string(result.entries.size()) +
                      " intact records kept";
      return result;
    }
    WalRecord record;
    record.u = GetI32(payload + 1);
    record.v = GetI32(payload + 5);
    record.weight = GetF64(payload + 9);
    record.remove = payload[0] == kTypeRemoveEdge;
    result.entries.push_back(record);
    offset += kFrameOverhead + payload_size;
    result.valid_bytes = static_cast<std::int64_t>(offset);
  }
  result.detail =
      std::to_string(result.entries.size()) + " records, clean tail";
  return result;
}

SolveStatus TruncateWal(const std::string& path, std::int64_t valid_bytes,
                        std::string* detail) {
  IMPREG_CHECK(valid_bytes >= static_cast<std::int64_t>(kHeaderSize));
  std::error_code ec;
  std::filesystem::resize_file(path, static_cast<std::uintmax_t>(valid_bytes),
                               ec);
  if (ec) {
    SetDetail(detail, "cannot truncate WAL");
    return SolveStatus::kBreakdown;
  }
  return SolveStatus::kConverged;
}

WalReplayResult ReplayWal(const std::vector<WalRecord>& entries,
                          std::int64_t from_record, DynamicGraph* graph) {
  IMPREG_CHECK(graph != nullptr);
  IMPREG_CHECK(from_record >= 0);
  WalReplayResult result;
  const NodeId n = graph->NumNodes();
  for (std::size_t i = static_cast<std::size_t>(from_record);
       i < entries.size(); ++i) {
    WalRecord record = entries[i];
    if (record.remove) {
      // A remove must target an edge the graph actually holds with at
      // least the logged decrement, or DynamicGraph::RemoveEdge would
      // trip its abort contract — semantic validation here keeps the
      // failure graceful (possible only via injection once ReadWal's
      // CRC passed, since the log is the graph's own history).
      IMPREG_FAULT_POINT("wal/replay_remove", record.weight);
      bool valid = record.u >= 0 && record.u < n && record.v >= 0 &&
                   record.v < n && std::isfinite(record.weight) &&
                   record.weight >= 0.0;
      if (valid) {
        const double stored = graph->EdgeWeight(record.u, record.v);
        valid = stored > 0.0 &&
                (record.weight == 0.0 || record.weight <= stored);
      }
      if (!valid) {
        result.status = SolveStatus::kBreakdown;
        result.detail = "remove record " + std::to_string(i) +
                        " failed validation: replay stopped at the last "
                        "good prefix";
        return result;
      }
      graph->RemoveEdge(record.u, record.v, record.weight);
      ++result.applied;
      continue;
    }
    // Last line of defense between the log and the graph: a record that
    // passed its CRC but fails semantic validation (possible only via
    // injection here) stops the replay — the graph keeps the good
    // prefix, never a poisoned edge.
    IMPREG_FAULT_POINT("wal/replay_record", record.weight);
    if (record.u < 0 || record.u >= n || record.v < 0 || record.v >= n ||
        !std::isfinite(record.weight) || record.weight <= 0.0) {
      result.status = SolveStatus::kBreakdown;
      result.detail = "record " + std::to_string(i) +
                      " failed validation: replay stopped at the last "
                      "good prefix";
      return result;
    }
    graph->AddEdge(record.u, record.v, record.weight);
    ++result.applied;
  }
  result.detail = std::to_string(result.applied) + " records applied";
  return result;
}

}  // namespace impreg::durability
