#include "service/durability/snapshot.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "util/check.h"
#include "util/crc32c.h"
#include "util/fault.h"

namespace impreg::durability {

namespace {

namespace fs = std::filesystem;

constexpr char kMagic[8] = {'I', 'M', 'P', 'R', 'G', 'S', 'N', 'P'};
// v2 appends each cache entry's region fingerprint and warm_only flag
// (surgical invalidation state). The read side is strict-v2: snapshots
// are rewritten every epoch checkpoint, so there is no v1 archive to
// stay compatible with — an old-version file is rejected and recovery
// falls back to the WAL, which is always complete.
constexpr std::uint32_t kVersion = 2;
constexpr std::size_t kHeaderSize = 8 + 4;       // magic | version
constexpr std::size_t kBodyPrefix = 8 + 4;       // payload_size | crc
constexpr char kFilePrefix[] = "snapshot-";

/// Little-endian append-only buffer.
class Writer {
 public:
  void U8(std::uint8_t x) { bytes_.push_back(x); }
  void U32(std::uint32_t x) {
    for (int i = 0; i < 4; ++i) bytes_.push_back(x >> (8 * i));
  }
  void U64(std::uint64_t x) {
    for (int i = 0; i < 8; ++i) bytes_.push_back(x >> (8 * i));
  }
  void I32(std::int32_t x) { U32(static_cast<std::uint32_t>(x)); }
  void I64(std::int64_t x) { U64(static_cast<std::uint64_t>(x)); }
  void F64(double x) {
    std::uint64_t bits;
    std::memcpy(&bits, &x, 8);
    U64(bits);
  }
  void Str(const std::string& s) {
    U32(static_cast<std::uint32_t>(s.size()));
    bytes_.insert(bytes_.end(), s.begin(), s.end());
  }
  void Doubles(const std::vector<double>& v) {
    U64(v.size());
    for (double x : v) F64(x);
  }
  void Ids(const std::vector<NodeId>& v) {
    U64(v.size());
    for (NodeId x : v) I32(x);
  }

  const std::vector<std::uint8_t>& bytes() const { return bytes_; }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Bounds-checked little-endian reader: every accessor fails sticky
/// (`ok()` false) instead of reading past the end, so a truncated
/// payload that somehow passed its CRC still cannot poison the decode.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  bool ok() const { return ok_; }
  bool AtEnd() const { return pos_ == size_; }

  std::uint8_t U8() {
    if (!Need(1)) return 0;
    return data_[pos_++];
  }
  std::uint32_t U32() {
    if (!Need(4)) return 0;
    std::uint32_t x = 0;
    for (int i = 0; i < 4; ++i) x |= std::uint32_t{data_[pos_ + i]} << (8 * i);
    pos_ += 4;
    return x;
  }
  std::uint64_t U64() {
    if (!Need(8)) return 0;
    std::uint64_t x = 0;
    for (int i = 0; i < 8; ++i) x |= std::uint64_t{data_[pos_ + i]} << (8 * i);
    pos_ += 8;
    return x;
  }
  std::int32_t I32() { return static_cast<std::int32_t>(U32()); }
  std::int64_t I64() { return static_cast<std::int64_t>(U64()); }
  double F64() {
    const std::uint64_t bits = U64();
    double x;
    std::memcpy(&x, &bits, 8);
    return x;
  }
  std::string Str() {
    const std::uint32_t n = U32();
    if (!Need(n)) return std::string();
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }
  std::vector<double> Doubles() {
    const std::uint64_t n = U64();
    if (!Need(n * 8)) return {};
    std::vector<double> v;
    v.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) v.push_back(F64());
    return v;
  }
  std::vector<NodeId> Ids() {
    const std::uint64_t n = U64();
    if (!Need(n * 4)) return {};
    std::vector<NodeId> v;
    v.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) v.push_back(I32());
    return v;
  }

 private:
  bool Need(std::uint64_t n) {
    if (!ok_ || n > size_ - pos_) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

void EncodeCachedResult(const std::string& key, const std::string& warm_key,
                        const CachedResult& r, Writer* w) {
  w->Str(key);
  w->Str(warm_key);
  w->Doubles(r.scores);
  w->Ids(r.set);
  w->F64(r.conductance);
  w->I64(r.work);
  w->U8(static_cast<std::uint8_t>(r.status));
  w->Str(r.detail);
  w->U8(r.has_state ? 1 : 0);
  w->Doubles(r.p);
  w->Doubles(r.r);
  w->I64(r.epoch);
  w->F64(r.epsilon);
  for (std::uint64_t word : r.region.words) w->U64(word);
  w->U8(r.region.all ? 1 : 0);
  w->U8(r.warm_only ? 1 : 0);
}

SnapshotCacheEntry DecodeCachedResult(Reader* r) {
  SnapshotCacheEntry e;
  e.key = r->Str();
  e.warm_key = r->Str();
  e.result.scores = r->Doubles();
  e.result.set = r->Ids();
  e.result.conductance = r->F64();
  e.result.work = r->I64();
  e.result.status = static_cast<SolveStatus>(r->U8());
  e.result.detail = r->Str();
  e.result.has_state = r->U8() != 0;
  e.result.p = r->Doubles();
  e.result.r = r->Doubles();
  e.result.epoch = r->I64();
  e.result.epsilon = r->F64();
  for (std::uint64_t& word : e.result.region.words) word = r->U64();
  e.result.region.all = r->U8() != 0;
  e.result.warm_only = r->U8() != 0;
  return e;
}

bool WriteAll(int fd, const std::uint8_t* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

/// fsync the directory so the rename itself is durable.
bool SyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

}  // namespace

SnapshotWriteResult WriteSnapshot(
    const std::string& dir, std::int64_t epoch, const DynamicGraph& graph,
    const std::vector<ResultCache::ExportedEntry>& cache_entries) {
  SnapshotWriteResult result;
  IMPREG_CHECK(epoch >= 0);

  // Validate the image before serializing a byte: a poisoned volume
  // (the injection target) or degree must fail here, with the previous
  // snapshot still in place, not inside a published file.
  double total_volume = graph.TotalVolume();
  IMPREG_FAULT_POINT("snapshot/write", total_volume);
  bool valid = std::isfinite(total_volume);
  const NodeId n = graph.NumNodes();
  for (NodeId u = 0; valid && u < n; ++u) {
    valid = std::isfinite(graph.Degree(u));
  }
  if (!valid) {
    result.status = SolveStatus::kInvalidInput;
    result.detail = "graph image failed validation: snapshot not written";
    return result;
  }

  Writer payload;
  payload.I64(epoch);
  payload.I64(static_cast<std::int64_t>(n));
  payload.I64(graph.NumEdges());
  payload.F64(total_volume);
  for (NodeId u = 0; u < n; ++u) payload.F64(graph.Degree(u));
  for (NodeId u = 0; u < n; ++u) {
    const auto& neighbors = graph.Neighbors(u);
    payload.U32(static_cast<std::uint32_t>(neighbors.size()));
    for (const DynamicGraph::Neighbor& nb : neighbors) {
      payload.I32(nb.head);
      payload.F64(nb.weight);
    }
  }
  std::uint32_t persisted = 0;
  for (const ResultCache::ExportedEntry& e : cache_entries) {
    if (e.result->has_state) ++persisted;
  }
  payload.U32(persisted);
  for (const ResultCache::ExportedEntry& e : cache_entries) {
    if (!e.result->has_state) continue;
    EncodeCachedResult(*e.key, *e.warm_key, *e.result, &payload);
  }

  Writer file;
  file.U64(payload.bytes().size());
  file.U32(Crc32c(payload.bytes().data(), payload.bytes().size()));

  std::error_code ec;
  fs::create_directories(dir, ec);
  const std::string final_path =
      (fs::path(dir) / (kFilePrefix + std::to_string(epoch))).string();
  const std::string tmp_path = final_path + ".tmp";

  const int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  bool ok = fd >= 0;
  if (ok) {
    ok = WriteAll(fd, reinterpret_cast<const std::uint8_t*>(kMagic), 8);
    std::uint8_t version[4];
    for (int i = 0; i < 4; ++i) {
      version[i] = static_cast<std::uint8_t>(kVersion >> (8 * i));
    }
    ok = ok && WriteAll(fd, version, 4);
    ok = ok && WriteAll(fd, file.bytes().data(), file.bytes().size());
    ok = ok && WriteAll(fd, payload.bytes().data(), payload.bytes().size());
    ok = ok && ::fsync(fd) == 0;
    ::close(fd);
  }
  if (ok) {
    fs::rename(tmp_path, final_path, ec);
    ok = !ec && SyncDir(dir);
  }
  if (!ok) {
    fs::remove(tmp_path, ec);
    result.status = SolveStatus::kBreakdown;
    result.detail = "snapshot I/O failed: previous snapshot untouched";
    return result;
  }
  result.path = final_path;
  result.detail = "snapshot-" + std::to_string(epoch) + " published";
  return result;
}

SnapshotLoadResult LoadSnapshot(const std::string& path) {
  SnapshotLoadResult result;
  auto Reject = [&result](const char* why) -> SnapshotLoadResult& {
    result.status = SolveStatus::kInvalidInput;
    result.detail = why;
    return result;
  };

  std::ifstream in(path, std::ios::binary);
  if (!in) return Reject("snapshot file unreadable");
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  in.close();

  if (bytes.size() < kHeaderSize + kBodyPrefix ||
      std::memcmp(bytes.data(), kMagic, 8) != 0) {
    return Reject("snapshot header missing or corrupt");
  }
  std::uint32_t version = 0;
  for (int i = 0; i < 4; ++i) {
    version |= std::uint32_t{bytes[8 + i]} << (8 * i);
  }
  if (version != kVersion) return Reject("unsupported snapshot version");

  Reader prefix(bytes.data() + kHeaderSize, kBodyPrefix);
  const std::uint64_t payload_size = prefix.U64();
  const std::uint32_t expected_crc = prefix.U32();
  const std::uint8_t* payload = bytes.data() + kHeaderSize + kBodyPrefix;
  if (payload_size != bytes.size() - kHeaderSize - kBodyPrefix) {
    return Reject("snapshot payload truncated");
  }
  if (Crc32c(payload, payload_size) != expected_crc) {
    return Reject("snapshot checksum mismatch");
  }

  Reader r(payload, payload_size);
  SnapshotData data;
  data.epoch = r.I64();
  const std::int64_t num_nodes = r.I64();
  const std::int64_t num_edges = r.I64();
  double total_volume = r.F64();
  // A decoded image that fails semantic validation is rejected exactly
  // like a CRC mismatch (injection target: the volume bits).
  IMPREG_FAULT_POINT("snapshot/load", total_volume);
  if (!r.ok() || data.epoch < 0 || num_nodes < 0 || num_edges < 0 ||
      !std::isfinite(total_volume)) {
    return Reject("snapshot image failed validation");
  }

  std::vector<double> degrees;
  degrees.reserve(num_nodes);
  for (std::int64_t u = 0; u < num_nodes; ++u) degrees.push_back(r.F64());
  std::vector<std::vector<DynamicGraph::Neighbor>> adjacency(num_nodes);
  std::int64_t arcs = 0;
  std::int64_t self_loops = 0;
  for (std::int64_t u = 0; u < num_nodes && r.ok(); ++u) {
    const std::uint32_t count = r.U32();
    adjacency[u].reserve(count);
    for (std::uint32_t i = 0; i < count && r.ok(); ++i) {
      DynamicGraph::Neighbor nb;
      nb.head = r.I32();
      nb.weight = r.F64();
      if (nb.head < 0 || nb.head >= num_nodes || !std::isfinite(nb.weight) ||
          nb.weight <= 0.0) {
        return Reject("snapshot adjacency failed validation");
      }
      adjacency[u].push_back(nb);
      ++arcs;
      if (nb.head == u) ++self_loops;
    }
  }
  for (std::int64_t u = 0; u < num_nodes; ++u) {
    if (!std::isfinite(degrees[u])) {
      return Reject("snapshot degrees failed validation");
    }
  }
  if (!r.ok() || arcs != 2 * num_edges - self_loops) {
    return Reject("snapshot edge count inconsistent");
  }

  const std::uint32_t cache_count = r.U32();
  for (std::uint32_t i = 0; i < cache_count && r.ok(); ++i) {
    data.cache_entries.push_back(DecodeCachedResult(&r));
  }
  if (!r.ok() || !r.AtEnd()) return Reject("snapshot payload malformed");

  data.graph = DynamicGraph::FromParts(std::move(adjacency),
                                       std::move(degrees), num_edges,
                                       total_volume);
  result.data = std::move(data);
  result.detail = "snapshot epoch " + std::to_string(result.data.epoch) +
                  " loaded";
  return result;
}

std::vector<std::pair<std::int64_t, std::string>> ListSnapshots(
    const std::string& dir) {
  std::vector<std::pair<std::int64_t, std::string>> out;
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) return out;
  for (const fs::directory_entry& entry : it) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(kFilePrefix, 0) != 0) continue;
    const std::string suffix = name.substr(sizeof(kFilePrefix) - 1);
    if (suffix.empty() ||
        suffix.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    out.emplace_back(std::stoll(suffix), entry.path().string());
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  return out;
}

}  // namespace impreg::durability
