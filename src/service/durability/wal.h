#ifndef IMPREG_SERVICE_DURABILITY_WAL_H_
#define IMPREG_SERVICE_DURABILITY_WAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/solve_status.h"
#include "graph/graph.h"
#include "streaming/dynamic_graph.h"

/// \file
/// The mutation write-ahead log: every edge edit the serving tier
/// accepts (AddEdge and RemoveEdge alike) is framed, checksummed, and
/// appended here *before* it lands on the in-memory graph, so a crash
/// at any instant loses at most the records that had not reached the
/// disk yet — never the graph's consistency.
///
/// File layout (all integers little-endian, the only byte order the
/// project targets):
///
///   header   := magic "IMPRGWAL" | u32 version | u32 crc32c(magic‖version)
///   record   := u32 payload_size | u32 crc32c(payload) | payload
///   payload  := u8 type (1 = AddEdge, 2 = RemoveEdge) | i32 u | i32 v
///               | f64 weight
///
/// New files are written at version 2; the reader accepts versions 1
/// and 2 (a v1 file simply predates RemoveEdge records and can never
/// contain one, so replaying it under the v2 reader is exact). For a
/// RemoveEdge record, weight 0.0 means "remove the edge entirely" —
/// the DynamicGraph::RemoveEdge convention.
///
/// Each record's CRC covers its payload only, so corruption is localized:
/// the reader accepts the longest prefix of intact records and reports
/// everything after the first bad frame as a *torn tail* — expected
/// debris from a crash mid-append, not an error to die on. Recovery
/// replays the certified prefix and truncates the tail
/// (src/service/durability/recovery.h); poisoned state is never loaded.
///
/// Epoch contract: the k-th record (0-based) is the edit that moved the
/// graph from epoch k to epoch k+1, so a snapshot taken at epoch e is
/// continued by replaying records [e, …) — see docs/durability.md.
///
/// Fault points (robustness suite): "wal/append" (a poisoned AddEdge is
/// rejected before framing — never written), "wal/append_remove" (the
/// RemoveEdge twin of the same gate), "wal/fsync" (a failed fsync
/// surfaces as a non-usable status; the caller decides whether to
/// retry or shed), "wal/replay_record" (a poisoned decoded AddEdge
/// stops replay at the last good prefix), "wal/replay_remove" (a
/// RemoveEdge whose target does not survive semantic validation stops
/// replay the same way — never aborts), "wal/torn_tail" (frame
/// validation forced to fail — exercises the truncation path on an
/// intact file).

namespace impreg::durability {

/// One decoded mutation record.
struct WalRecord {
  NodeId u = 0;
  NodeId v = 0;
  double weight = 1.0;
  /// True for a RemoveEdge record (weight 0.0 = remove entirely,
  /// otherwise a partial weight decrement).
  bool remove = false;
};

struct WalOptions {
  /// fsync after every N appends (1 = every record, the durable
  /// default). 0 disables fsync (tests and bulk loads that sync
  /// explicitly via Sync()).
  int sync_every = 1;
};

/// Append side. Not thread-safe (one writer, same as the graph).
class WriteAheadLog {
 public:
  WriteAheadLog() = default;
  ~WriteAheadLog();
  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Opens `path` for appending, writing the header if the file is new
  /// or empty. An existing file's header is verified (magic + version +
  /// CRC); a mismatch fails with kInvalidInput rather than appending
  /// records a future reader would reject.
  SolveStatus Open(const std::string& path, const WalOptions& options,
                   std::string* detail = nullptr);

  /// Frames, checksums, and appends one AddEdge record, then fsyncs if
  /// the batch policy says so. Rejects non-finite or non-positive
  /// weights and out-of-range ids (kInvalidInput, nothing written).
  /// An fsync failure returns kBreakdown: the bytes are in the page
  /// cache but not certified durable — the caller must not acknowledge
  /// the edit.
  SolveStatus AppendAddEdge(NodeId u, NodeId v, double weight,
                            std::string* detail = nullptr);

  /// Frames, checksums, and appends one RemoveEdge record (weight 0.0
  /// = remove the edge entirely; a positive weight is a partial
  /// decrement). Rejects non-finite or negative weights and
  /// out-of-range ids (kInvalidInput, nothing written). Same fsync
  /// contract as AppendAddEdge.
  SolveStatus AppendRemoveEdge(NodeId u, NodeId v, double weight = 0.0,
                               std::string* detail = nullptr);

  /// Forces an fsync now (flushes a partial sync_every batch).
  SolveStatus Sync(std::string* detail = nullptr);

  /// Fsyncs pending records and closes the descriptor. Safe to call
  /// twice; the destructor calls it.
  void Close();

  bool is_open() const { return fd_ >= 0; }

  /// Records appended through this handle (not the file total).
  std::int64_t records_appended() const { return records_appended_; }

 private:
  /// Shared framing path for both record types (validation already
  /// done by the public wrappers).
  SolveStatus AppendEdgeRecord(std::uint8_t type, NodeId u, NodeId v,
                               double weight, std::string* detail);

  int fd_ = -1;
  int sync_every_ = 1;
  int unsynced_ = 0;
  std::int64_t records_appended_ = 0;
};

/// Everything ReadWal learned about a log file.
struct WalReadResult {
  /// kConverged: clean file, read to EOF. kBreakdown: a torn or corrupt
  /// tail was found — `entries` still holds the certified prefix and
  /// `valid_bytes` marks where the good bytes end (TruncateWal repairs
  /// the file to exactly there). kInvalidInput: the header itself is
  /// unreadable and no record can be trusted.
  SolveStatus status = SolveStatus::kConverged;
  /// True when bytes after `valid_bytes` were dropped (torn tail).
  bool truncated = false;
  /// Byte offset one past the last intact record (≥ header size for a
  /// readable file).
  std::int64_t valid_bytes = 0;
  std::string detail;
  /// The intact records, in append order.
  std::vector<WalRecord> entries;
};

/// Reads and CRC-verifies `path`. Never aborts on corruption: a damaged
/// tail yields the longest intact prefix (see WalReadResult::status).
/// A missing file is kConverged with zero records — an empty log.
WalReadResult ReadWal(const std::string& path);

/// Truncates `path` to `valid_bytes` (from a WalReadResult with a torn
/// tail), making the file clean again. kConverged on success.
SolveStatus TruncateWal(const std::string& path, std::int64_t valid_bytes,
                        std::string* detail = nullptr);

/// What replaying a WAL suffix onto a graph did.
struct WalReplayResult {
  /// kConverged: every requested record applied. kBreakdown: a record
  /// failed validation (out-of-range id, non-finite weight — possible
  /// only via fault injection once ReadWal's CRC passed); the graph
  /// holds exactly the records before it.
  SolveStatus status = SolveStatus::kConverged;
  /// Records applied (counts from `from_record`).
  std::int64_t applied = 0;
  std::string detail;
};

/// Applies `entries[from_record…]` onto `graph` in order — the epoch-
/// indexed suffix replay: a snapshot at epoch e passes from_record = e.
/// Validates each record against the graph's node range before
/// applying; RemoveEdge records are additionally validated against the
/// graph's current edge weight (the edge must exist and carry at least
/// the decrement) so a mismatched remove degrades to kBreakdown
/// instead of tripping DynamicGraph's abort contract. Stops (never
/// aborts) at the first bad record.
WalReplayResult ReplayWal(const std::vector<WalRecord>& entries,
                          std::int64_t from_record, DynamicGraph* graph);

}  // namespace impreg::durability

#endif  // IMPREG_SERVICE_DURABILITY_WAL_H_
