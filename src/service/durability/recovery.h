#ifndef IMPREG_SERVICE_DURABILITY_RECOVERY_H_
#define IMPREG_SERVICE_DURABILITY_RECOVERY_H_

#include <cstdint>
#include <memory>
#include <string>

#include "core/solve_status.h"
#include "service/query_engine.h"
#include "streaming/dynamic_graph.h"

/// \file
/// Crash recovery: reassemble the serving state a process died with —
/// graph, epoch counter, and the warm-restartable cache slice — from
/// the last snapshot plus the WAL suffix, and prove nothing was lost.
///
/// The recovery ladder, newest state first:
///
///   1. Load the newest snapshot that passes its checksum; a corrupt
///      one is skipped (counted) and the next-older tried — the atomic
///      publish makes "newest intact" well-defined.
///   2. Read the WAL; a torn tail is truncated at the first bad frame
///      (the certified prefix survives — this is the expected shape of
///      a crash mid-append, not data loss).
///   3. Replay WAL records [snapshot_epoch, …) onto the snapshot graph
///      — the epoch-indexed suffix — landing at exactly the state of
///      the uninterrupted run.
///   4. Stamp the engine's epoch and re-admit the persisted cache
///      entries. Entries whose epoch no longer matches exact-serve as
///      nothing, but their (p, r) state makes them warm sources that
///      InvariantResidual repairs on first use: warm-start survives
///      restart.
///
/// Determinism: the recovered DynamicGraph is bit-identical (adjacency
/// order, degree bits, volume bits) to the graph of a process that
/// never crashed, so every query answered after recovery is
/// bit-identical too — the restart-recovery chaos sweep in
/// tests/durability_test.cc asserts exactly this at every WAL record
/// boundary and under every durability fault site.

namespace impreg::durability {

struct RecoveryOptions {
  /// The WAL file ("" = no log: snapshot-only recovery).
  std::string wal_path;
  /// The snapshot directory ("" = no snapshots: WAL-only recovery,
  /// replayed from the base graph at epoch 0).
  std::string snapshot_dir;
  /// Repair a torn WAL tail in place (truncate the file to the
  /// certified prefix) so the next append continues a clean log.
  bool truncate_torn_tail = true;
};

/// What recovery found and did.
struct RecoveryReport {
  /// kConverged: full state recovered cleanly. kBudgetExhausted is
  /// never used here; any torn tail or rejected snapshot downgrades to
  /// kBreakdown (state recovered, but the ladder had to drop debris —
  /// the caller should log it). kInvalidInput: even the base state
  /// could not be assembled (unreadable WAL header with no snapshot).
  SolveStatus status = SolveStatus::kConverged;
  /// Epoch of the snapshot used (-1 = none; recovery started from the
  /// base graph).
  std::int64_t snapshot_epoch = -1;
  /// Snapshots that failed their checksum and were skipped.
  std::int64_t snapshots_rejected = 0;
  /// Intact records found in the WAL.
  std::int64_t wal_records = 0;
  /// Records replayed on top of the starting state.
  std::int64_t replayed = 0;
  /// True when a torn/corrupt WAL tail was dropped.
  bool wal_truncated = false;
  /// Persisted cache entries successfully re-admitted.
  std::int64_t cache_restored = 0;
  /// The recovered epoch (== wal_records when every record applied).
  std::int64_t epoch = 0;
  std::string detail;
};

/// Recovers serving state into a fresh QueryEngine built over `base`
/// (the graph the service originally booted from; snapshots supersede
/// it when present). On return `*engine` is ready to serve; the report
/// says how much of the ladder was exercised. `engine` may be null to
/// validate durability artifacts without building an engine (the CLI's
/// `recover` command).
RecoveryReport RecoverEngine(const DynamicGraph& base,
                             const QueryEngine::Options& options,
                             const RecoveryOptions& recovery,
                             std::unique_ptr<QueryEngine>* engine);

}  // namespace impreg::durability

#endif  // IMPREG_SERVICE_DURABILITY_RECOVERY_H_
