#ifndef IMPREG_SERVICE_DURABILITY_SNAPSHOT_H_
#define IMPREG_SERVICE_DURABILITY_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/solve_status.h"
#include "service/result_cache.h"
#include "streaming/dynamic_graph.h"

/// \file
/// Epoch snapshots: a checksummed binary image of the dynamic graph (and
/// the warm-restartable slice of the result cache) at one epoch, written
/// atomically so a crash mid-write can never shadow a good older
/// snapshot with a half-written new one.
///
/// File layout (little-endian):
///
///   header  := magic "IMPRGSNP" | u32 version (2)
///   body    := u64 payload_size | u32 crc32c(payload) | payload
///   payload := i64 epoch
///            | i64 num_nodes | i64 num_edges | f64 total_volume
///            | f64 degrees[num_nodes]
///            | per node: u32 count | (i32 head, f64 weight)[count]
///            | u32 cache_entries
///            | per entry: key, warm_key, CachedResult (see snapshot.cc)
///
/// v2 appends each cache entry's region fingerprint (the surgical-
/// invalidation locality bits) and warm_only flag after the v1 fields;
/// the reader is strict-v2 — snapshots are rewritten at every
/// checkpoint, so an older-version file is simply rejected and
/// recovery falls back to full WAL replay.
///
/// Bit-identical restore is the design constraint that shaped the
/// format: degrees and total_volume are *accumulated* floating-point
/// sums whose bits depend on edge arrival order, and neighbor lists are
/// in per-node insertion order (which the push solvers traverse). Both
/// are serialized exactly as stored — recomputing either on load would
/// produce a graph that answers queries with different low-order bits
/// than the one that never crashed. DynamicGraph::FromParts reassembles
/// the exact representation.
///
/// Atomicity: the image is written to "<final>.tmp", fsynced, renamed
/// into place, and the directory fsynced — the POSIX publish idiom. A
/// reader never observes a partial file under the final name; a crash
/// leaves at most a stale .tmp that the next write overwrites.
///
/// Snapshots are named "snapshot-<epoch>" inside a caller-chosen
/// directory; recovery loads the newest one that passes its checksum
/// and falls back epoch by epoch when one does not
/// (src/service/durability/recovery.h).
///
/// Fault points: "snapshot/write" (a poisoned image is detected before
/// the tmp file is published — the previous snapshot survives),
/// "snapshot/load" (a decoded graph that fails validation is rejected
/// exactly like a CRC mismatch — recovery falls back).

namespace impreg::durability {

/// One persisted cache entry (the warm-restartable slice: entries
/// carrying their (p, r) invariant pair survive restart).
struct SnapshotCacheEntry {
  std::string key;
  std::string warm_key;
  CachedResult result;
};

/// A decoded snapshot.
struct SnapshotData {
  std::int64_t epoch = 0;
  DynamicGraph graph{0};
  /// Oldest-insertion-first — re-inserting in this order reproduces the
  /// cache's FIFO state.
  std::vector<SnapshotCacheEntry> cache_entries;
};

struct SnapshotWriteResult {
  /// kConverged: published under `path`. kInvalidInput: the in-memory
  /// image failed validation before any byte was published (the
  /// injected-poison path). kBreakdown: an I/O step failed; the tmp
  /// file is removed and any previous snapshot is untouched.
  SolveStatus status = SolveStatus::kConverged;
  /// Final path ("<dir>/snapshot-<epoch>") on success.
  std::string path;
  std::string detail;
};

/// Serializes `graph` (+ the state-bearing entries of `cache_entries`)
/// at `epoch` into `dir` (created if missing) via the atomic
/// tmp-fsync-rename publish. Entries without warm state are skipped —
/// they are cheap to recompute and cannot warm-restart anything.
SnapshotWriteResult WriteSnapshot(
    const std::string& dir, std::int64_t epoch, const DynamicGraph& graph,
    const std::vector<ResultCache::ExportedEntry>& cache_entries);

struct SnapshotLoadResult {
  /// kConverged: `data` holds the decoded snapshot. kInvalidInput: the
  /// file is missing, short, or fails its checksum or validation — the
  /// caller falls back to an older snapshot or the base graph; poisoned
  /// state is never returned.
  SolveStatus status = SolveStatus::kConverged;
  SnapshotData data;
  std::string detail;
};

/// Reads and checksum-verifies one snapshot file. Never aborts on a
/// damaged file.
SnapshotLoadResult LoadSnapshot(const std::string& path);

/// The snapshots in `dir`, as (epoch, path), sorted newest-first — the
/// order recovery tries them in. Non-snapshot names are ignored; an
/// absent directory is an empty list.
std::vector<std::pair<std::int64_t, std::string>> ListSnapshots(
    const std::string& dir);

}  // namespace impreg::durability

#endif  // IMPREG_SERVICE_DURABILITY_SNAPSHOT_H_
