#include "service/sharding/shard_set.h"

#include <cmath>
#include <string>
#include <utility>

#include "core/metrics.h"
#include "util/check.h"
#include "util/fault.h"

namespace impreg {

std::unique_ptr<ShardSet> ShardSet::Build(const DynamicGraph& global,
                                          ShardPlan plan) {
  const NodeId n = global.NumNodes();
  if (!ValidShardOwners(plan.owner, n, plan.shards)) return nullptr;

  DynamicGraph::Parts parts = global.ExportParts();
  // A non-finite slice ingredient must abort the build (the engine
  // falls back to unsharded serving); the fault site stands in for a
  // corrupted placement or replica read.
  double volume = parts.total_volume;
  IMPREG_FAULT_POINT("shard/slice_build", volume);
  if (!std::isfinite(volume)) {
    IMPREG_METRIC_COUNT("service.shard.build_rejected", 1);
    return nullptr;
  }

  std::unique_ptr<ShardSet> set(new ShardSet());
  set->plan_ = std::move(plan);
  set->num_nodes_ = n;
  const int k = set->plan_.shards;
  set->halo_dynamic_degrees_.resize(k);
  set->halo_frozen_degrees_.resize(k);
  set->counters_ = std::vector<Counters>(k);
  set->flushed_.assign(k, CounterTotals{});
  set->slices_.reserve(k);

  const std::vector<int>& owner = set->plan_.owner;
  for (int s = 0; s < k; ++s) {
    std::vector<std::vector<DynamicGraph::Neighbor>> adjacency(n);
    std::int64_t num_edges = 0;
    for (NodeId u = 0; u < n; ++u) {
      if (owner[u] != s) continue;
      // Owned rows carry the exact global arrival sequence.
      adjacency[u] = parts.adjacency[u];
      for (const DynamicGraph::Neighbor& arc : parts.adjacency[u]) {
        const NodeId v = arc.head;
        if (owner[v] == s) {
          // Intra-shard edges appear in both owned rows; count each
          // undirected edge once (self-loops have v == u).
          if (v >= u) ++num_edges;
        } else {
          // Cross-shard edge: count it here and mirror the reverse arc
          // into the halo row, so the slice is a self-consistent graph.
          ++num_edges;
          adjacency[v].push_back({u, arc.weight});
          set->halo_dynamic_degrees_[s].emplace(v, parts.degrees[v]);
        }
      }
    }
    // Full global degree bits ride along: owned entries stay exact
    // under future routed edges (every u-incident arrival reaches the
    // owner slice in global order); non-owned entries are never read.
    set->slices_.push_back(DynamicGraph::FromParts(
        std::move(adjacency), parts.degrees, num_edges, volume));
  }
  return set;
}

void ShardSet::AddEdge(NodeId u, NodeId v, double weight,
                       const DynamicGraph& global) {
  IMPREG_CHECK(u >= 0 && u < num_nodes_ && v >= 0 && v < num_nodes_);
  const int s = plan_.owner[u];
  const int t = plan_.owner[v];
  slices_[s].AddEdge(u, v, weight);
  if (t != s) slices_[t].AddEdge(u, v, weight);

  bool halo_changed = false;
  if (t != s) {
    halo_changed |= halo_dynamic_degrees_[s].emplace(v, 0.0).second;
    halo_changed |= halo_dynamic_degrees_[t].emplace(u, 0.0).second;
  }
  // Refresh every replica of u's and v's degree bits from the global
  // accumulator — replicas always serve exactly the global bits.
  for (int x = 0; x < shards(); ++x) {
    auto& halo = halo_dynamic_degrees_[x];
    const auto iu = halo.find(u);
    if (iu != halo.end()) iu->second = global.Degree(u);
    const auto iv = halo.find(v);
    if (iv != halo.end()) iv->second = global.Degree(v);
  }
  if (halo_changed) {
    ++routing_epoch_;
    IMPREG_METRIC_COUNT("service.shard.routing_epoch_bumps", 1);
  }
  IMPREG_METRIC_COUNT("service.shard.routed_edges", 1);
  IMPREG_METRIC_COUNT("service.shard.replicated_edges", t != s ? 1 : 0);
}

void ShardSet::RemoveEdge(NodeId u, NodeId v, double weight,
                          const DynamicGraph& global) {
  IMPREG_CHECK(u >= 0 && u < num_nodes_ && v >= 0 && v < num_nodes_);
  const int s = plan_.owner[u];
  const int t = plan_.owner[v];
  slices_[s].RemoveEdge(u, v, weight);
  if (t != s) slices_[t].RemoveEdge(u, v, weight);

  bool halo_changed = false;
  if (t != s && slices_[s].EdgeWeight(u, v) == 0.0) {
    // Full removal of a cross-shard edge: if a mirrored halo row just
    // emptied, the node left that shard's halo — drop its degree
    // replica and record the membership change.
    if (slices_[s].Neighbors(v).empty()) {
      halo_changed |= halo_dynamic_degrees_[s].erase(v) > 0;
    }
    if (slices_[t].Neighbors(u).empty()) {
      halo_changed |= halo_dynamic_degrees_[t].erase(u) > 0;
    }
  }
  // Surviving replicas of u's and v's degree bits refresh from the
  // global accumulator — replicas always serve exactly the global bits.
  for (int x = 0; x < shards(); ++x) {
    auto& halo = halo_dynamic_degrees_[x];
    const auto iu = halo.find(u);
    if (iu != halo.end()) iu->second = global.Degree(u);
    const auto iv = halo.find(v);
    if (iv != halo.end()) iv->second = global.Degree(v);
  }
  if (halo_changed) {
    ++routing_epoch_;
    IMPREG_METRIC_COUNT("service.shard.routing_epoch_bumps", 1);
  }
  IMPREG_METRIC_COUNT("service.shard.routed_removes", 1);
  IMPREG_METRIC_COUNT("service.shard.replicated_removes", t != s ? 1 : 0);
}

void ShardSet::EnsureFrozen(std::int64_t epoch) {
  if (FrozenAt(epoch)) return;
  frozen_.clear();
  frozen_.reserve(shards());
  for (int s = 0; s < shards(); ++s) frozen_.push_back(slices_[s].ToGraph());
  for (int s = 0; s < shards(); ++s) {
    halo_frozen_degrees_[s].clear();
    for (const auto& [v, unused] : halo_dynamic_degrees_[s]) {
      halo_frozen_degrees_[s][v] = frozen_[plan_.owner[v]].Degree(v);
    }
  }
  // The global frozen volume, reassembled in GraphBuilder's exact
  // accumulation order (ascending row, owner-slice degree bits — which
  // are bitwise the global frozen degrees).
  double volume = 0.0;
  for (NodeId u = 0; u < num_nodes_; ++u) {
    volume += frozen_[plan_.owner[u]].Degree(u);
  }
  frozen_total_volume_ = volume;
  frozen_epoch_ = epoch;
  IMPREG_METRIC_COUNT("service.shard.freezes", 1);
}

int ShardSet::NoteRowAccess(NodeId u, std::atomic<int>* resident) const {
  const int own = plan_.owner[u];
  const int res = resident->load(std::memory_order_relaxed);
  if (own != res) {
    counters_[own].escalations.fetch_add(1, std::memory_order_relaxed);
    resident->store(own, std::memory_order_relaxed);
  } else {
    counters_[own].local_rows.fetch_add(1, std::memory_order_relaxed);
  }
  std::int64_t crossings = 0;
  for (const DynamicGraph::Neighbor& arc : slices_[own].Neighbors(u)) {
    if (plan_.owner[arc.head] != own) ++crossings;
  }
  if (crossings > 0) {
    counters_[own].halo_crossings.fetch_add(crossings,
                                            std::memory_order_relaxed);
  }
  return own;
}

std::vector<std::int64_t> ShardSet::OwnedCounts() const {
  std::vector<std::int64_t> counts(shards(), 0);
  for (int s : plan_.owner) ++counts[s];
  return counts;
}

std::vector<std::int64_t> ShardSet::HaloCounts() const {
  std::vector<std::int64_t> counts(shards(), 0);
  for (int s = 0; s < shards(); ++s) {
    counts[s] = static_cast<std::int64_t>(halo_dynamic_degrees_[s].size());
  }
  return counts;
}

ShardSet::CounterTotals ShardSet::TotalsFor(int shard) const {
  const Counters& c = counters_[shard];
  CounterTotals t;
  t.local_rows = c.local_rows.load(std::memory_order_relaxed);
  t.escalations = c.escalations.load(std::memory_order_relaxed);
  t.halo_crossings = c.halo_crossings.load(std::memory_order_relaxed);
  t.remote_degree_reads =
      c.remote_degree_reads.load(std::memory_order_relaxed);
  t.halo_degree_reads = c.halo_degree_reads.load(std::memory_order_relaxed);
  return t;
}

ShardSet::CounterTotals ShardSet::Totals() const {
  CounterTotals sum;
  for (int s = 0; s < shards(); ++s) {
    const CounterTotals t = TotalsFor(s);
    sum.local_rows += t.local_rows;
    sum.escalations += t.escalations;
    sum.halo_crossings += t.halo_crossings;
    sum.remote_degree_reads += t.remote_degree_reads;
    sum.halo_degree_reads += t.halo_degree_reads;
  }
  return sum;
}

void ShardSet::ResetCounters() {
  for (int s = 0; s < shards(); ++s) {
    counters_[s].local_rows.store(0, std::memory_order_relaxed);
    counters_[s].escalations.store(0, std::memory_order_relaxed);
    counters_[s].halo_crossings.store(0, std::memory_order_relaxed);
    counters_[s].remote_degree_reads.store(0, std::memory_order_relaxed);
    counters_[s].halo_degree_reads.store(0, std::memory_order_relaxed);
    flushed_[s] = CounterTotals{};
  }
}

void ShardSet::FlushMetrics() {
  if (!MetricsEnabled()) return;
  auto& registry = MetricsRegistry::Get();
  for (int s = 0; s < shards(); ++s) {
    const CounterTotals now = TotalsFor(s);
    CounterTotals& last = flushed_[s];
    const std::string prefix = "service.shard." + std::to_string(s) + ".";
    const auto publish = [&](const char* what, std::int64_t now_v,
                             std::int64_t& last_v) {
      if (now_v != last_v) {
        registry.FindOrCreateCounter(prefix + what)->Add(now_v - last_v);
        last_v = now_v;
      }
    };
    publish("local_rows", now.local_rows, last.local_rows);
    publish("escalations", now.escalations, last.escalations);
    publish("halo_crossings", now.halo_crossings, last.halo_crossings);
    publish("remote_degree_reads", now.remote_degree_reads,
            last.remote_degree_reads);
    publish("halo_degree_reads", now.halo_degree_reads,
            last.halo_degree_reads);
  }
}

bool ShardSet::CorruptHaloReplica(int shard, NodeId node, double delta) {
  if (shard < 0 || shard >= shards()) return false;
  bool hit = false;
  const auto dyn = halo_dynamic_degrees_[shard].find(node);
  if (dyn != halo_dynamic_degrees_[shard].end()) {
    dyn->second += delta;
    hit = true;
  }
  const auto fz = halo_frozen_degrees_[shard].find(node);
  if (fz != halo_frozen_degrees_[shard].end()) {
    fz->second += delta;
    hit = true;
  }
  return hit;
}

}  // namespace impreg
