#ifndef IMPREG_SERVICE_SHARDING_SHARD_PLAN_H_
#define IMPREG_SERVICE_SHARDING_SHARD_PLAN_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

/// \file
/// Shard placement metadata — the machine-view idiom applied to graph
/// serving: a plan is a total, deterministic map node → owning shard,
/// computed once from a frozen snapshot of the graph and carried as
/// first-class metadata (persisted in the shard manifest, validated on
/// recovery, consulted by the router on every query). Placement is a
/// *pure function* of (graph, shards, partition_seed); two processes
/// that agree on those three agree on every owner, which is what lets
/// a recovered process rebuild bit-identical shards without shipping
/// the owner array at all (the manifest still ships it, as a
/// cross-check).

namespace impreg {

/// The placement map. `owner[u] ∈ [0, shards)` for every node; nodes
/// added later inherit no new owners (the node count is fixed at plan
/// time, like the rest of the serving tier).
struct ShardPlan {
  int shards = 1;
  std::uint64_t partition_seed = 0x5eedULL;
  /// Size NumNodes; empty when the graph is empty.
  std::vector<int> owner;
  /// True when the multilevel partitioner produced the plan, false for
  /// the contiguous-range fallback (degenerate topologies).
  bool used_partitioner = false;
};

/// Computes the placement for `requested_shards` shards. The request is
/// clamped to [1, max(n, 1)] — asking for more shards than nodes
/// degrades to one node per shard, never an empty-owner crash. On a
/// connected graph with at least 2·k nodes and at least one edge the
/// repo's own multilevel k-way partitioner (flow/recursive_partition.h)
/// chooses the owners, seeded by `partition_seed` (deterministic);
/// degenerate topologies (empty, edgeless, disconnected, tiny) fall
/// back to balanced contiguous node ranges, which are equally valid —
/// placement affects *where* work runs, never *what* is computed.
ShardPlan BuildShardPlan(const Graph& frozen, int requested_shards,
                         std::uint64_t partition_seed = 0x5eedULL);

/// True when `owner` is a structurally valid placement for
/// (num_nodes, shards): correct length, every entry in range, every
/// shard non-empty (when num_nodes > 0). Used to vet manifests loaded
/// from disk before trusting them.
bool ValidShardOwners(const std::vector<int>& owner, NodeId num_nodes,
                      int shards);

}  // namespace impreg

#endif  // IMPREG_SERVICE_SHARDING_SHARD_PLAN_H_
