#include "service/sharding/shard_plan.h"

#include <algorithm>

#include "flow/recursive_partition.h"
#include "graph/algorithms.h"
#include "util/check.h"

namespace impreg {

ShardPlan BuildShardPlan(const Graph& frozen, int requested_shards,
                         std::uint64_t partition_seed) {
  ShardPlan plan;
  plan.partition_seed = partition_seed;
  const NodeId n = frozen.NumNodes();
  if (n == 0) {
    plan.shards = 1;
    return plan;
  }
  plan.shards = std::clamp(requested_shards, 1, static_cast<int>(n));
  plan.owner.assign(n, 0);
  if (plan.shards == 1) return plan;

  // The multilevel partitioner needs something to bisect: a connected
  // graph with edges and enough nodes that every shard can be
  // non-trivial. Everything else gets balanced contiguous ranges — a
  // valid placement for any topology (placement never changes answers,
  // only locality).
  const bool partitionable = frozen.NumEdges() > 0 &&
                             n >= 2 * static_cast<NodeId>(plan.shards) &&
                             CountComponents(frozen) == 1;
  if (partitionable) {
    KwayOptions options;
    options.bisection.seed = partition_seed;
    const KwayResult kway = KwayPartition(frozen, plan.shards, options);
    IMPREG_CHECK(kway.part.size() == static_cast<std::size_t>(n));
    bool complete = true;
    std::vector<char> populated(plan.shards, 0);
    for (NodeId u = 0; u < n; ++u) {
      const int s = kway.part[u];
      if (s < 0 || s >= plan.shards) {
        complete = false;
        break;
      }
      populated[s] = 1;
    }
    for (char p : populated) complete = complete && p;
    if (complete) {
      plan.owner = kway.part;
      plan.used_partitioner = true;
      return plan;
    }
  }

  // Contiguous fallback: shard s owns [s·n/k, (s+1)·n/k).
  for (NodeId u = 0; u < n; ++u) {
    plan.owner[u] = static_cast<int>(
        (static_cast<std::int64_t>(u) * plan.shards) / n);
  }
  return plan;
}

bool ValidShardOwners(const std::vector<int>& owner, NodeId num_nodes,
                      int shards) {
  if (shards < 1) return false;
  if (num_nodes == 0) return owner.empty();
  if (owner.size() != static_cast<std::size_t>(num_nodes)) return false;
  std::vector<char> populated(shards, 0);
  for (int s : owner) {
    if (s < 0 || s >= shards) return false;
    populated[s] = 1;
  }
  for (char p : populated) {
    if (!p) return false;
  }
  return true;
}

}  // namespace impreg
