#ifndef IMPREG_SERVICE_SHARDING_SHARD_ROUTER_H_
#define IMPREG_SERVICE_SHARDING_SHARD_ROUTER_H_

#include <vector>

#include "service/sharding/shard_plan.h"

/// \file
/// Seed-set → owning-shard routing. The router is a thin, pure lookup
/// over the placement metadata (shard_plan.h): the home shard of a
/// query is the owner of its smallest canonical seed — deterministic,
/// independent of thread count, and stable across restarts because the
/// plan itself is. Multi-seed queries whose seeds span shards start at
/// the smallest seed's owner and escalate from there (the escalation
/// protocol in docs/sharding.md); the choice of home affects only
/// which shard's counters bill the work, never the answer.

namespace impreg {

class ShardRouter {
 public:
  /// The router borrows the plan; the owner (ShardSet) outlives it.
  explicit ShardRouter(const ShardPlan* plan) : plan_(plan) {}

  /// Home shard for a canonical (sorted, deduplicated) seed set: the
  /// owner of the first in-range seed, shard 0 when the set is empty
  /// or entirely out of range (those queries fail validation upstream;
  /// the fallback keeps the router total).
  int HomeShard(const std::vector<NodeId>& canonical_seeds) const {
    for (NodeId s : canonical_seeds) {
      if (s >= 0 && s < static_cast<NodeId>(plan_->owner.size())) {
        return plan_->owner[s];
      }
    }
    return 0;
  }

  /// Owner of a single node (0 for out-of-range ids).
  int Owner(NodeId u) const {
    if (u < 0 || u >= static_cast<NodeId>(plan_->owner.size())) return 0;
    return plan_->owner[u];
  }

  const ShardPlan& plan() const { return *plan_; }

 private:
  const ShardPlan* plan_;
};

}  // namespace impreg

#endif  // IMPREG_SERVICE_SHARDING_SHARD_ROUTER_H_
