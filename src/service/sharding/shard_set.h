#ifndef IMPREG_SERVICE_SHARDING_SHARD_SET_H_
#define IMPREG_SERVICE_SHARDING_SHARD_SET_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"
#include "service/sharding/shard_plan.h"
#include "service/sharding/shard_router.h"
#include "streaming/dynamic_graph.h"

/// \file
/// The sharded graph store: one owner slice per shard plus one-hop
/// halo replicas, with view types that serve the strongly-local
/// kernels (push / hk-relax / Nibble) shard by shard.
///
/// ## The invariance contract
///
/// The kernels are templates over an adjacency provider
/// (streaming/push_kernel.h, partition/{hkrelax,nibble,sweep}_kernel.h).
/// A `ShardSet` view serves every *row* from the owning shard's slice
/// and every *degree* from either the owner slice or the resident
/// shard's halo replica — and all of those are bit-identical to the
/// whole-graph values by construction (owned rows receive exactly the
/// global arrival sequence; halo degree replicas are refreshed from
/// the global accumulator on every routed edge). Identical bits
/// through an identical instruction sequence ⇒ k = 1, 2, 4, 8 shards
/// produce bitwise-equal responses. Escalation is therefore not a
/// separate merge pass: the kernel drains its global frontier in
/// canonical order, and when the next frontier node is owned by
/// another shard the view *hands residence over* to that shard (the
/// (p, r) frontier state is shared), counting an escalation. Residual
/// mass that never escapes a shard's halo never leaves it — that is
/// the paper's §3.3 strong-locality property operationalized.
///
/// ## Halo replicas
///
/// A shard's halo is the set of remotely-owned nodes one hop from its
/// owned nodes. For each halo node the shard stores (a) the mirrored
/// cross arcs in its slice (so the slice is a self-contained graph
/// that passes `FromParts` validation) and (b) a degree replica — the
/// exact global degree bits, dynamic and frozen flavors. The degree
/// replica is load-bearing: push enqueue thresholds for halo nodes are
/// served from it without leaving the resident shard (the classic
/// ghost-node read). `CorruptHaloReplica` exists so the invariance
/// test harness can prove a corrupted replica changes served bits.

namespace impreg {

class ShardSet {
 public:
  /// Cumulative per-shard work counters (relaxed atomics: view methods
  /// run inside ParallelFor'd sweeps, and the counters are
  /// observability, not answers).
  struct Counters {
    std::atomic<std::int64_t> local_rows{0};
    std::atomic<std::int64_t> escalations{0};
    std::atomic<std::int64_t> halo_crossings{0};
    std::atomic<std::int64_t> remote_degree_reads{0};
    std::atomic<std::int64_t> halo_degree_reads{0};
  };

  /// Plain snapshot of one shard's counters (or the sum over shards).
  struct CounterTotals {
    std::int64_t local_rows = 0;
    std::int64_t escalations = 0;
    std::int64_t halo_crossings = 0;
    std::int64_t remote_degree_reads = 0;
    std::int64_t halo_degree_reads = 0;
  };

  /// Carves the slices out of `global` under `plan`. Returns nullptr
  /// when the plan or the slice ingredients fail validation (the
  /// caller — QueryEngine — falls back to unsharded serving, which is
  /// bit-identical anyway). Fault site `shard/slice_build` poisons a
  /// slice ingredient in flight to exercise exactly that fallback.
  static std::unique_ptr<ShardSet> Build(const DynamicGraph& global,
                                         ShardPlan plan);

  int shards() const { return plan_.shards; }
  NodeId num_nodes() const { return num_nodes_; }
  const ShardPlan& plan() const { return plan_; }
  const ShardRouter& router() const { return router_; }

  /// Bumped whenever a routed edit changes halo membership (a new
  /// cross-shard adjacency appears, or the last one between a node and
  /// a shard disappears). Governs placement and escalation bookkeeping
  /// only — shard-count invariance means routing state never changes
  /// answer bits, so it is not cache-key material. Persisted in the
  /// shard manifest so restarts resume the placement history.
  std::int64_t routing_epoch() const { return routing_epoch_; }

  /// Routes one already-applied global edge into the owning slice(s).
  /// Cross-shard edges are replicated into both halos; the stored halo
  /// degree replicas for u and v are refreshed from `global`'s exact
  /// accumulator bits. Call *after* `global.AddEdge(u, v, w)`.
  void AddEdge(NodeId u, NodeId v, double weight,
               const DynamicGraph& global);

  /// Routes one already-applied global removal into the owning
  /// slice(s) (DynamicGraph::RemoveEdge semantics — the edge must
  /// exist in the slices, which it does whenever the global removal
  /// succeeded). A full removal of a cross-shard edge shrinks both
  /// halos' mirrored rows; when a node's last mirrored arc into a
  /// shard disappears, its degree replica is dropped and the routing
  /// epoch bumps (membership changed). Surviving replicas of u and v
  /// are refreshed from `global`'s exact accumulator bits. Call
  /// *after* `global.RemoveEdge(u, v, w)`.
  void RemoveEdge(NodeId u, NodeId v, double weight,
                  const DynamicGraph& global);

  /// (Re)freezes every slice at `epoch` if not already frozen there:
  /// per-shard CSR slices, frozen-degree halo replicas, and the global
  /// frozen volume (reassembled bitwise from owner-slice degrees).
  /// Sequential — the engine calls it before its parallel phase.
  void EnsureFrozen(std::int64_t epoch);
  bool FrozenAt(std::int64_t epoch) const {
    return frozen_epoch_ == epoch && !frozen_.empty();
  }

  /// Per-shard owned-node and halo-node counts (placement metadata for
  /// the manifest and the tests).
  std::vector<std::int64_t> OwnedCounts() const;
  std::vector<std::int64_t> HaloCounts() const;

  CounterTotals TotalsFor(int shard) const;
  CounterTotals Totals() const;
  void ResetCounters();
  /// Publishes counter deltas since the last flush into the metrics
  /// registry (`service.shard.<i>.*`). Sequential (engine phase 5).
  void FlushMetrics();

  /// Test hook: perturbs shard `shard`'s stored degree replica for
  /// halo node `node` by `delta` (dynamic and frozen flavors). Returns
  /// false when `node` is not in that shard's halo. The invariance
  /// matrix's WILL_FAIL probe uses this to prove halo corruption
  /// changes served bits.
  bool CorruptHaloReplica(int shard, NodeId node, double delta);

  /// Adjacency provider over the *dynamic* slices for the push kernel.
  /// Serves the same bits as the global DynamicGraph; counts where the
  /// work ran. `resident` migrates to the owner of each row accessed
  /// (atomic only because sweeps read concurrently; the served bits
  /// never depend on it).
  class DynamicView {
   public:
    DynamicView(const ShardSet& set, int home)
        : set_(&set), resident_(home) {}
    DynamicView(const DynamicView&) = delete;
    DynamicView& operator=(const DynamicView&) = delete;

    NodeId NumNodes() const { return set_->num_nodes_; }

    double Degree(NodeId u) const {
      const int own = set_->plan_.owner[u];
      const int res = resident_.load(std::memory_order_relaxed);
      if (own == res) return set_->slices_[own].Degree(u);
      const auto& halo = set_->halo_dynamic_degrees_[res];
      const auto it = halo.find(u);
      if (it != halo.end()) {
        set_->counters_[res].halo_degree_reads.fetch_add(
            1, std::memory_order_relaxed);
        return it->second;
      }
      set_->counters_[own].remote_degree_reads.fetch_add(
          1, std::memory_order_relaxed);
      return set_->slices_[own].Degree(u);
    }

    const std::vector<DynamicGraph::Neighbor>& Neighbors(NodeId u) const {
      const int own = set_->NoteRowAccess(u, &resident_);
      return set_->slices_[own].Neighbors(u);
    }

   private:
    const ShardSet* set_;
    mutable std::atomic<int> resident_;
  };

  /// Adjacency provider over the *frozen* slices for hk-relax, Nibble
  /// and their sweeps. Same residence/counting protocol as
  /// DynamicView. Requires `EnsureFrozen` at the current epoch first.
  class FrozenView {
   public:
    FrozenView(const ShardSet& set, int home)
        : set_(&set), resident_(home) {}
    FrozenView(const FrozenView&) = delete;
    FrozenView& operator=(const FrozenView&) = delete;

    NodeId NumNodes() const { return set_->num_nodes_; }
    bool IsValidNode(NodeId u) const {
      return u >= 0 && u < set_->num_nodes_;
    }
    double TotalVolume() const { return set_->frozen_total_volume_; }

    double Degree(NodeId u) const {
      const int own = set_->plan_.owner[u];
      const int res = resident_.load(std::memory_order_relaxed);
      if (own == res) return set_->frozen_[own].Degree(u);
      const auto& halo = set_->halo_frozen_degrees_[res];
      const auto it = halo.find(u);
      if (it != halo.end()) {
        set_->counters_[res].halo_degree_reads.fetch_add(
            1, std::memory_order_relaxed);
        return it->second;
      }
      set_->counters_[own].remote_degree_reads.fetch_add(
          1, std::memory_order_relaxed);
      return set_->frozen_[own].Degree(u);
    }

    /// Row accesses (Heads is always the first of the row-access trio
    /// in the kernels) migrate residence and count; OutDegree/Weights
    /// ride along on the same row without double-counting.
    std::span<const NodeId> Heads(NodeId u) const {
      const int own = set_->NoteRowAccess(u, &resident_);
      return set_->frozen_[own].Heads(u);
    }
    std::span<const double> Weights(NodeId u) const {
      return set_->frozen_[set_->plan_.owner[u]].Weights(u);
    }
    ArcIndex OutDegree(NodeId u) const {
      return set_->frozen_[set_->plan_.owner[u]].OutDegree(u);
    }

   private:
    const ShardSet* set_;
    mutable std::atomic<int> resident_;
  };

 private:
  ShardSet() : router_(&plan_) {}

  /// Residence/counting protocol shared by both views: migrating to a
  /// remote owner is an escalation, staying home is local work, and
  /// every arc of the accessed row that points at a remotely-owned
  /// head is a halo crossing.
  int NoteRowAccess(NodeId u, std::atomic<int>* resident) const;

  ShardPlan plan_;
  ShardRouter router_;
  NodeId num_nodes_ = 0;
  /// Full-width dynamic slices: owned rows are bitwise equal to the
  /// global rows; halo rows hold only the mirrored cross arcs.
  std::vector<DynamicGraph> slices_;
  /// Per-shard halo degree replicas: exact global accumulator bits.
  std::vector<std::unordered_map<NodeId, double>> halo_dynamic_degrees_;
  std::vector<std::unordered_map<NodeId, double>> halo_frozen_degrees_;
  /// Per-shard frozen CSR slices, rebuilt lazily per epoch.
  std::vector<Graph> frozen_;
  std::int64_t frozen_epoch_ = -1;
  double frozen_total_volume_ = 0.0;
  std::int64_t routing_epoch_ = 0;

  mutable std::vector<Counters> counters_;
  std::vector<CounterTotals> flushed_;
};

}  // namespace impreg

#endif  // IMPREG_SERVICE_SHARDING_SHARD_SET_H_
