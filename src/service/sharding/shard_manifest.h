#ifndef IMPREG_SERVICE_SHARDING_SHARD_MANIFEST_H_
#define IMPREG_SERVICE_SHARDING_SHARD_MANIFEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

/// \file
/// Persistent shard placement metadata — the machine-view record the
/// durability ladder carries alongside epoch snapshots. One manifest
/// file describes the whole shard set: the partition parameters, the
/// owner array, the routing epoch, and a per-shard epoch stamp (every
/// stamp must equal the snapshot epoch the manifest was published
/// with; a disagreeing stamp means a torn multi-artifact update and
/// the manifest is rejected as a unit). Because placement is a pure
/// function of (graph, shards, partition_seed), a rejected or missing
/// manifest is never fatal: recovery recomputes the identical plan
/// from the recovered graph and serves bit-identically — the manifest
/// exists to make that re-derivation *checkable* and to pin the
/// partition seed across restarts.
///
/// Format: a CRC-32C-framed text file (`impreg-shard-manifest-v1`),
/// written with the same tmp → fsync → rename publish discipline as
/// epoch snapshots (docs/durability.md). Fault sites
/// `shard/manifest_write` (a poisoned stamp must refuse to publish,
/// previous manifest untouched) and `shard/manifest_load` (a manifest
/// failing validation is skipped like a CRC mismatch).

namespace impreg {

struct ShardManifest {
  int shards = 1;
  std::uint64_t partition_seed = 0;
  NodeId num_nodes = 0;
  std::int64_t routing_epoch = 0;
  /// Per-shard epoch stamps, length `shards`; all must agree.
  std::vector<std::int64_t> shard_epochs;
  /// The placement map, length `num_nodes`.
  std::vector<int> owner;
};

/// Standard manifest filename inside a snapshot directory.
std::string ShardManifestPath(const std::string& snapshot_dir);

/// Atomically publishes the manifest (tmp → fsync → rename). Returns
/// false — previous manifest untouched — on I/O failure or when the
/// image fails validation (non-finite stamp via the
/// `shard/manifest_write` fault site, disagreeing epoch stamps,
/// malformed owner array).
bool WriteShardManifest(const std::string& path,
                        const ShardManifest& manifest);

/// Loads and validates a manifest: magic, CRC, structural validity of
/// the owner array, agreeing epoch stamps. Returns false (manifest
/// rejected as a unit) on any mismatch; callers fall back to
/// recomputing the plan.
bool LoadShardManifest(const std::string& path, ShardManifest* manifest,
                       std::string* detail = nullptr);

}  // namespace impreg

#endif  // IMPREG_SERVICE_SHARDING_SHARD_MANIFEST_H_
