#include "service/sharding/shard_manifest.h"

#include <fcntl.h>
#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include "service/sharding/shard_plan.h"
#include "util/check.h"
#include "util/crc32c.h"
#include "util/fault.h"

namespace impreg {

namespace {

namespace fs = std::filesystem;

constexpr const char kMagic[] = "impreg-shard-manifest-v1";

bool WriteAll(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

bool SyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

bool Reject(std::string* detail, const std::string& why) {
  if (detail != nullptr) *detail = why;
  return false;
}

bool StructurallyValid(const ShardManifest& m, std::string* detail) {
  if (m.shards < 1) return Reject(detail, "shard count < 1");
  if (m.shard_epochs.size() != static_cast<std::size_t>(m.shards)) {
    return Reject(detail, "epoch stamp count disagrees with shard count");
  }
  for (std::int64_t e : m.shard_epochs) {
    if (e != m.shard_epochs.front()) {
      return Reject(detail, "per-shard epoch stamps disagree (torn update)");
    }
    if (e < 0) return Reject(detail, "negative epoch stamp");
  }
  if (!ValidShardOwners(m.owner, m.num_nodes, m.shards)) {
    return Reject(detail, "owner array fails placement validation");
  }
  return true;
}

}  // namespace

std::string ShardManifestPath(const std::string& snapshot_dir) {
  return (fs::path(snapshot_dir) / "shard_manifest").string();
}

bool WriteShardManifest(const std::string& path,
                        const ShardManifest& manifest) {
  // Validate before serializing a byte — a poisoned stamp (the
  // injection target) must leave the previous manifest in place.
  double stamp = static_cast<double>(manifest.routing_epoch);
  IMPREG_FAULT_POINT("shard/manifest_write", stamp);
  if (!std::isfinite(stamp)) return false;
  if (!StructurallyValid(manifest, nullptr)) return false;

  std::ostringstream payload;
  payload << kMagic << '\n';
  payload << "shards=" << manifest.shards
          << " seed=" << manifest.partition_seed
          << " nodes=" << manifest.num_nodes
          << " routing_epoch=" << manifest.routing_epoch << '\n';
  payload << "epochs=";
  for (std::size_t i = 0; i < manifest.shard_epochs.size(); ++i) {
    if (i > 0) payload << ',';
    payload << manifest.shard_epochs[i];
  }
  payload << '\n';
  payload << "owner=";
  for (std::size_t i = 0; i < manifest.owner.size(); ++i) {
    if (i > 0) payload << ',';
    payload << manifest.owner[i];
  }
  payload << '\n';
  const std::string body = payload.str();

  char crc_line[24];
  std::snprintf(crc_line, sizeof(crc_line), "crc=%08x\n",
                Crc32c(body.data(), body.size()));

  const std::string tmp_path = path + ".tmp";
  const int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  bool ok = fd >= 0;
  if (ok) {
    ok = WriteAll(fd, body.data(), body.size());
    ok = ok && WriteAll(fd, crc_line, std::string(crc_line).size());
    ok = ok && ::fsync(fd) == 0;
    ::close(fd);
  }
  std::error_code ec;
  if (ok) {
    fs::rename(tmp_path, path, ec);
    ok = !ec && SyncDir(fs::path(path).parent_path().string());
  }
  if (!ok) fs::remove(tmp_path, ec);
  return ok;
}

bool LoadShardManifest(const std::string& path, ShardManifest* manifest,
                       std::string* detail) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Reject(detail, "manifest missing or unreadable");
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string contents = buf.str();

  const std::size_t crc_pos = contents.rfind("crc=");
  if (crc_pos == std::string::npos || crc_pos == 0) {
    return Reject(detail, "manifest missing crc frame");
  }
  const std::string body = contents.substr(0, crc_pos);
  unsigned long stored_crc = 0;
  if (std::sscanf(contents.c_str() + crc_pos, "crc=%lx", &stored_crc) != 1) {
    return Reject(detail, "manifest crc unparsable");
  }
  if (static_cast<std::uint32_t>(stored_crc) !=
      Crc32c(body.data(), body.size())) {
    return Reject(detail, "manifest crc mismatch");
  }

  std::istringstream lines(body);
  std::string magic;
  if (!std::getline(lines, magic) || magic != kMagic) {
    return Reject(detail, "manifest magic mismatch");
  }
  ShardManifest m;
  long long nodes = 0;
  std::string header;
  if (!std::getline(lines, header) ||
      std::sscanf(header.c_str(),
                  "shards=%d seed=%llu nodes=%lld routing_epoch=%lld",
                  &m.shards,
                  reinterpret_cast<unsigned long long*>(&m.partition_seed),
                  &nodes,
                  reinterpret_cast<long long*>(&m.routing_epoch)) != 4) {
    return Reject(detail, "manifest header unparsable");
  }
  m.num_nodes = static_cast<NodeId>(nodes);

  const auto parse_list = [&lines](const std::string& prefix,
                                   auto push) -> bool {
    std::string line;
    if (!std::getline(lines, line)) return false;
    if (line.compare(0, prefix.size(), prefix) != 0) return false;
    std::istringstream items(line.substr(prefix.size()));
    std::string item;
    while (std::getline(items, item, ',')) {
      if (item.empty()) return false;
      push(std::strtoll(item.c_str(), nullptr, 10));
    }
    return true;
  };
  if (!parse_list("epochs=",
                  [&m](long long v) { m.shard_epochs.push_back(v); })) {
    return Reject(detail, "manifest epoch stamps unparsable");
  }
  if (!parse_list("owner=", [&m](long long v) {
        m.owner.push_back(static_cast<int>(v));
      }) &&
      m.num_nodes != 0) {
    return Reject(detail, "manifest owner array unparsable");
  }

  // The injection target: a manifest whose decoded stamp is poisoned
  // must be rejected exactly like a CRC mismatch.
  double stamp = static_cast<double>(m.routing_epoch);
  IMPREG_FAULT_POINT("shard/manifest_load", stamp);
  if (!std::isfinite(stamp)) {
    return Reject(detail, "manifest stamp failed validation");
  }
  if (!StructurallyValid(m, detail)) return false;
  *manifest = std::move(m);
  return true;
}

}  // namespace impreg
