#include "service/result_cache.h"

#include "core/metrics.h"
#include "util/check.h"
#include "util/fault.h"

namespace impreg {

namespace {

bool PayloadFinite(const CachedResult& result) {
  if (!AllFinite(result.scores)) return false;
  if (result.has_state && (!AllFinite(result.p) || !AllFinite(result.r))) {
    return false;
  }
  return true;
}

}  // namespace

ResultCache::ResultCache(std::size_t capacity) : capacity_(capacity) {
  IMPREG_CHECK_MSG(capacity_ >= 1, "cache capacity must be >= 1");
}

const CachedResult* ResultCache::Lookup(const std::string& key) {
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    IMPREG_METRIC_COUNT("service.cache.misses", 1);
    return nullptr;
  }
  ++stats_.hits;
  IMPREG_METRIC_COUNT("service.cache.hits", 1);
  return &it->second->result;
}

const CachedResult* ResultCache::WarmLookup(const std::string& warm_key) {
  const auto it = warm_index_.find(warm_key);
  if (it == warm_index_.end()) return nullptr;
  ++stats_.warm_hits;
  IMPREG_METRIC_COUNT("service.cache.warm_hits", 1);
  return &it->second->result;
}

bool ResultCache::Insert(const std::string& key, const std::string& warm_key,
                         CachedResult result) {
  // The one place a computed answer crosses into long-lived state — the
  // fault site lets the robustness suite prove a poisoned payload is
  // contained here (rejected below), never cached, never served.
  IMPREG_FAULT_POINT("service/cache_insert", result.scores);
  if (!PayloadFinite(result)) {
    ++stats_.rejected;
    IMPREG_METRIC_COUNT("service.cache.rejected", 1);
    return false;
  }

  const auto existing = index_.find(key);
  if (existing != index_.end()) {
    // Replace in place: the entry keeps its insertion-order position
    // (replacement is not an insertion for eviction purposes).
    EntryList::iterator entry = existing->second;
    const auto old_warm = warm_index_.find(entry->warm_key);
    if (old_warm != warm_index_.end() && old_warm->second == entry) {
      warm_index_.erase(old_warm);
    }
    entry->warm_key = warm_key;
    entry->result = std::move(result);
    if (entry->result.has_state && !warm_key.empty()) {
      warm_index_[warm_key] = entry;
    }
    ++stats_.insertions;
    IMPREG_METRIC_COUNT("service.cache.insertions", 1);
    return true;
  }

  if (entries_.size() >= capacity_) {
    // FIFO: evict the oldest insertion — never access recency, so the
    // retained set after any request sequence is replay-deterministic.
    EntryList::iterator oldest = entries_.begin();
    index_.erase(oldest->key);
    const auto warm = warm_index_.find(oldest->warm_key);
    if (warm != warm_index_.end() && warm->second == oldest) {
      warm_index_.erase(warm);
    }
    entries_.pop_front();
    ++stats_.evictions;
    IMPREG_METRIC_COUNT("service.cache.evictions", 1);
  }

  entries_.push_back(Entry{key, warm_key, std::move(result)});
  EntryList::iterator entry = std::prev(entries_.end());
  index_[key] = entry;
  if (entry->result.has_state && !warm_key.empty()) {
    // Latest insertion wins the warm slot: it is the freshest (p, r)
    // for this (method, γ, seed) fingerprint.
    warm_index_[warm_key] = entry;
  }
  ++stats_.insertions;
  IMPREG_METRIC_COUNT("service.cache.insertions", 1);
  return true;
}

void ResultCache::NoteEpochBump(std::int64_t retired_epoch) {
  std::int64_t invalidated = 0;
  std::int64_t demoted = 0;
  for (const Entry& e : entries_) {
    if (e.result.epoch != retired_epoch) continue;
    ++invalidated;
    if (e.result.has_state) ++demoted;
  }
  stats_.invalidated += invalidated;
  stats_.warm_demoted += demoted;
  IMPREG_METRIC_COUNT("service.cache.invalidated", invalidated);
  IMPREG_METRIC_COUNT("service.cache.warm_demoted", demoted);
}

std::vector<ResultCache::ExportedEntry> ResultCache::ExportEntries() const {
  std::vector<ExportedEntry> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) {
    out.push_back(ExportedEntry{&e.key, &e.warm_key, &e.result});
  }
  return out;
}

std::vector<std::string> ResultCache::KeysInInsertionOrder() const {
  std::vector<std::string> keys;
  keys.reserve(entries_.size());
  for (const Entry& e : entries_) keys.push_back(e.key);
  return keys;
}

void ResultCache::Clear() {
  entries_.clear();
  index_.clear();
  warm_index_.clear();
}

}  // namespace impreg
