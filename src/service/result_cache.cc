#include "service/result_cache.h"

#include <algorithm>
#include <unordered_set>

#include "core/metrics.h"
#include "util/check.h"
#include "util/fault.h"

namespace impreg {

namespace {

bool PayloadFinite(const CachedResult& result) {
  if (!AllFinite(result.scores)) return false;
  if (result.has_state && (!AllFinite(result.p) || !AllFinite(result.r))) {
    return false;
  }
  return true;
}

}  // namespace

int RegionFingerprint::Bucket(NodeId u) {
  // splitmix64 finalizer — deterministic across platforms and runs,
  // which is what keeps invalidation replay-exact.
  std::uint64_t x = static_cast<std::uint64_t>(static_cast<std::uint32_t>(u));
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  x ^= x >> 31;
  return static_cast<int>(x & static_cast<std::uint64_t>(kBits - 1));
}

void RegionFingerprint::Add(NodeId u) {
  const int b = Bucket(u);
  words[static_cast<std::size_t>(b >> 6)] |= std::uint64_t{1} << (b & 63);
}

bool RegionFingerprint::Covers(NodeId u) const {
  const int b = Bucket(u);
  return ((words[static_cast<std::size_t>(b >> 6)] >> (b & 63)) & 1) != 0;
}

ResultCache::ResultCache(std::size_t capacity) : capacity_(capacity) {
  IMPREG_CHECK_MSG(capacity_ >= 1, "cache capacity must be >= 1");
}

const CachedResult* ResultCache::Lookup(const std::string& key,
                                        std::int64_t snapshot_epoch) {
  const auto it = index_.find(key);
  if (it == index_.end() || it->second->result.warm_only ||
      it->second->result.epoch > snapshot_epoch) {
    ++stats_.misses;
    IMPREG_METRIC_COUNT("service.cache.misses", 1);
    return nullptr;
  }
  ++stats_.hits;
  IMPREG_METRIC_COUNT("service.cache.hits", 1);
  return &it->second->result;
}

const CachedResult* ResultCache::WarmLookup(const std::string& warm_key) {
  const auto it = warm_index_.find(warm_key);
  if (it == warm_index_.end()) return nullptr;
  ++stats_.warm_hits;
  IMPREG_METRIC_COUNT("service.cache.warm_hits", 1);
  return &it->second->result;
}

void ResultCache::AddToRegionIndex(Entry* e) {
  if (e->result.warm_only) return;
  if (e->result.region.all) {
    all_region_.push_back(e);
    return;
  }
  const RegionFingerprint& fp = e->result.region;
  for (int w = 0; w < RegionFingerprint::kWords; ++w) {
    std::uint64_t bits = fp.words[static_cast<std::size_t>(w)];
    while (bits != 0) {
      const int bit = __builtin_ctzll(bits);
      bits &= bits - 1;
      region_buckets_[static_cast<std::size_t>((w << 6) | bit)].push_back(e);
    }
  }
}

void ResultCache::RemoveFromRegionIndex(Entry* e) {
  if (e->result.warm_only) return;  // Deregistered at demotion.
  const auto drop = [&](std::vector<Entry*>& bucket) {
    const auto it = std::find(bucket.begin(), bucket.end(), e);
    if (it != bucket.end()) bucket.erase(it);  // Order-preserving.
  };
  if (e->result.region.all) {
    drop(all_region_);
    return;
  }
  const RegionFingerprint& fp = e->result.region;
  for (int w = 0; w < RegionFingerprint::kWords; ++w) {
    std::uint64_t bits = fp.words[static_cast<std::size_t>(w)];
    while (bits != 0) {
      const int bit = __builtin_ctzll(bits);
      bits &= bits - 1;
      drop(region_buckets_[static_cast<std::size_t>((w << 6) | bit)]);
    }
  }
}

void ResultCache::AccountInsert(const CachedResult& result) {
  EpochCounts& bucket = epoch_counts_[result.epoch];
  ++bucket.entries;
  if (result.has_state) ++bucket.state_bearing;
  if (!result.warm_only) ++exact_entries_;
}

void ResultCache::AccountErase(const CachedResult& result) {
  const auto it = epoch_counts_.find(result.epoch);
  if (it != epoch_counts_.end()) {
    // A missing bucket means NoteEpochBump already retired this epoch
    // and consumed its count — nothing left to maintain.
    --it->second.entries;
    if (result.has_state) --it->second.state_bearing;
    if (it->second.entries == 0) epoch_counts_.erase(it);
  }
  if (!result.warm_only) --exact_entries_;
}

void ResultCache::EraseEntry(EntryList::iterator entry) {
  RemoveFromRegionIndex(&*entry);
  AccountErase(entry->result);
  index_.erase(entry->key);
  const auto warm = warm_index_.find(entry->warm_key);
  if (warm != warm_index_.end() && warm->second == entry) {
    warm_index_.erase(warm);
  }
  entries_.erase(entry);
}

bool ResultCache::Insert(const std::string& key, const std::string& warm_key,
                         CachedResult result) {
  // The one place a computed answer crosses into long-lived state — the
  // fault site lets the robustness suite prove a poisoned payload is
  // contained here (rejected below), never cached, never served.
  IMPREG_FAULT_POINT("service/cache_insert", result.scores);
  if (!PayloadFinite(result)) {
    ++stats_.rejected;
    IMPREG_METRIC_COUNT("service.cache.rejected", 1);
    return false;
  }

  const auto existing = index_.find(key);
  if (existing != index_.end()) {
    if (existing->second->result.epoch > result.epoch &&
        !existing->second->result.warm_only) {
      // A still-valid answer from a newer graph is already stored; an
      // insert from a batch pinned at an older snapshot adds nothing.
      return false;
    }
    // Replace in place: the entry keeps its insertion-order position
    // (replacement is not an insertion for eviction purposes). A
    // replaced warm-only entry resurrects with the new result's flags.
    EntryList::iterator entry = existing->second;
    RemoveFromRegionIndex(&*entry);
    AccountErase(entry->result);
    const auto old_warm = warm_index_.find(entry->warm_key);
    if (old_warm != warm_index_.end() && old_warm->second == entry) {
      warm_index_.erase(old_warm);
    }
    entry->warm_key = warm_key;
    entry->result = std::move(result);
    AccountInsert(entry->result);
    AddToRegionIndex(&*entry);
    if (entry->result.has_state && !warm_key.empty()) {
      warm_index_[warm_key] = entry;
    }
    ++stats_.insertions;
    IMPREG_METRIC_COUNT("service.cache.insertions", 1);
    return true;
  }

  if (entries_.size() >= capacity_) {
    // FIFO: evict the oldest insertion — never access recency, so the
    // retained set after any request sequence is replay-deterministic.
    ++stats_.evictions;
    IMPREG_METRIC_COUNT("service.cache.evictions", 1);
    EraseEntry(entries_.begin());
  }

  entries_.push_back(Entry{key, warm_key, std::move(result)});
  EntryList::iterator entry = std::prev(entries_.end());
  index_[key] = entry;
  AccountInsert(entry->result);
  AddToRegionIndex(&*entry);
  if (entry->result.has_state && !warm_key.empty()) {
    // Latest insertion wins the warm slot: it is the freshest (p, r)
    // for this (method, γ, seed) fingerprint.
    warm_index_[warm_key] = entry;
  }
  ++stats_.insertions;
  IMPREG_METRIC_COUNT("service.cache.insertions", 1);
  return true;
}

void ResultCache::ApplyInvalidation(const std::vector<Entry*>& affected) {
  const std::int64_t exact_before = exact_entries_;
  std::int64_t evicted = 0;
  std::int64_t demoted = 0;
  for (Entry* e : affected) {
    if (e->result.has_state && !e->warm_key.empty()) {
      // Demote: the exact answer is stale, but (p, r) is still a sound
      // warm-restart point — keep it servable through the warm index.
      RemoveFromRegionIndex(e);
      e->result.warm_only = true;
      --exact_entries_;
      ++demoted;
    } else {
      const auto it = index_.find(e->key);
      IMPREG_CHECK_MSG(it != index_.end(),
                       "region index points at an unindexed entry");
      EraseEntry(it->second);
      ++evicted;
    }
  }
  stats_.region_evicted += evicted;
  stats_.region_demoted += demoted;
  stats_.region_retained += exact_before - evicted - demoted;
  IMPREG_METRIC_COUNT("service.cache.region_evicted", evicted);
  IMPREG_METRIC_COUNT("service.cache.region_demoted", demoted);
  IMPREG_METRIC_COUNT("service.cache.region_retained",
                      exact_before - evicted - demoted);
}

void ResultCache::InvalidateRegion(NodeId u, NodeId v) {
  // Gather the affected entries: the two hash buckets plus every
  // whole-graph entry. Deduplicate — u and v may share a bucket, and
  // bucket membership is exactly "fingerprint bit set", so no further
  // filtering is possible (the fingerprint is lossy by design;
  // collisions over-evict, never under-evict).
  std::vector<Entry*> affected;
  std::unordered_set<Entry*> seen;
  const auto gather = [&](const std::vector<Entry*>& bucket) {
    for (Entry* e : bucket) {
      if (seen.insert(e).second) affected.push_back(e);
    }
  };
  gather(
      region_buckets_[static_cast<std::size_t>(RegionFingerprint::Bucket(u))]);
  gather(
      region_buckets_[static_cast<std::size_t>(RegionFingerprint::Bucket(v))]);
  gather(all_region_);
  ApplyInvalidation(affected);
}

void ResultCache::InvalidateAll() {
  std::vector<Entry*> affected;
  for (Entry& e : entries_) {
    if (!e.result.warm_only) affected.push_back(&e);
  }
  ApplyInvalidation(affected);
}

void ResultCache::NoteEpochBump(std::int64_t retired_epoch) {
  std::int64_t invalidated = 0;
  std::int64_t demoted = 0;
  const auto it = epoch_counts_.find(retired_epoch);
  if (it != epoch_counts_.end()) {
    invalidated = it->second.entries;
    demoted = it->second.state_bearing;
    epoch_counts_.erase(it);
  }
  stats_.invalidated += invalidated;
  stats_.warm_demoted += demoted;
  IMPREG_METRIC_COUNT("service.cache.invalidated", invalidated);
  IMPREG_METRIC_COUNT("service.cache.warm_demoted", demoted);
}

std::vector<ResultCache::ExportedEntry> ResultCache::ExportEntries() const {
  std::vector<ExportedEntry> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) {
    out.push_back(ExportedEntry{&e.key, &e.warm_key, &e.result});
  }
  return out;
}

std::vector<std::string> ResultCache::KeysInInsertionOrder() const {
  std::vector<std::string> keys;
  keys.reserve(entries_.size());
  for (const Entry& e : entries_) keys.push_back(e.key);
  return keys;
}

void ResultCache::Clear() {
  entries_.clear();
  index_.clear();
  warm_index_.clear();
  for (std::vector<Entry*>& bucket : region_buckets_) bucket.clear();
  all_region_.clear();
  epoch_counts_.clear();
  exact_entries_ = 0;
}

}  // namespace impreg
