#ifndef IMPREG_DIFFUSION_SEED_H_
#define IMPREG_DIFFUSION_SEED_H_

#include <vector>

#include "graph/graph.h"
#include "linalg/vector_ops.h"
#include "util/rng.h"

/// \file
/// Seed distributions for the diffusion dynamics of §3.1.
///
/// Footnote 16 of the paper: for *global* spectral partitioning the seed
/// is random (±1 entries or random signs), while for *local* methods it
/// is the indicator of a small seed set. Both are provided here, in the
/// two natural coordinate systems: probability space (charge vectors fed
/// to M-based dynamics) and the symmetric "hat" space of ℒ.

namespace impreg {

/// Probability distribution concentrated on one node.
Vector SingleNodeSeed(const Graph& g, NodeId node);

/// Uniform probability distribution over `nodes` (distinct, valid ids).
Vector SeedSetDistribution(const Graph& g, const std::vector<NodeId>& nodes);

/// Degree-weighted distribution over `nodes`: p(u) ∝ d(u) on the set.
Vector DegreeWeightedSeed(const Graph& g, const std::vector<NodeId>& nodes);

/// Random ±1 vector, then projected orthogonal to D^{1/2}1 and
/// normalized — the global-partitioning seed of footnote 16, living in
/// the hat space of ℒ.
Vector RandomSignSeed(const Graph& g, Rng& rng);

/// Maps a probability-space vector p to the hat space: x = D^{-1/2} p.
/// (Isolated nodes map to 0.)
Vector ToHatSpace(const Graph& g, const Vector& p);

/// Maps a hat-space vector x back to probability space: p = D^{1/2} x.
Vector FromHatSpace(const Graph& g, const Vector& x);

}  // namespace impreg

#endif  // IMPREG_DIFFUSION_SEED_H_
