#include "diffusion/lazy_walk.h"

#include "core/metrics.h"
#include "core/trace.h"
#include "linalg/graph_operators.h"
#include "util/check.h"
#include "util/fault.h"

namespace impreg {

Vector LazyWalk(const Graph& g, const Vector& seed,
                const LazyWalkOptions& options,
                SolverDiagnostics* diagnostics) {
  IMPREG_CHECK(seed.size() == static_cast<std::size_t>(g.NumNodes()));
  IMPREG_CHECK(options.steps >= 0);
  SolverDiagnostics local;
  SolverDiagnostics& diag = diagnostics != nullptr ? *diagnostics : local;
  diag = SolverDiagnostics{};
  SolverTrace* trace = IMPREG_TRACE_BEGIN("lazy_walk");
  if (!AllFinite(seed)) {
    diag.status = SolveStatus::kNonFinite;
    diag.detail = "seed has non-finite entries; returning 0";
    IMPREG_TRACE_FINISH(trace, diag);
    return Vector(g.NumNodes(), 0.0);
  }
  const LazyWalkOperator walk(g, options.alpha);
  Vector current = seed;
  Vector next(g.NumNodes());
  // Last distribution verified finite; the amortized checks below bound
  // how far past it a poisoned walk can get before being contained.
  constexpr int kFiniteCheckInterval = 8;
  Vector snapshot = current;
  int snapshot_step = 0;
  int steps_done = 0;
  for (int step = 1; step <= options.steps; ++step) {
    walk.Apply(current, next);
    IMPREG_FAULT_POINT("lazy_walk/step", next);
    current.swap(next);
    steps_done = step;
    if (step % kFiniteCheckInterval == 0) {
      if (!AllFinite(current)) {
        diag.status = SolveStatus::kNonFinite;
        IMPREG_TRACE_EVENT(trace, step, kRollback,
                           static_cast<double>(snapshot_step));
        current = snapshot;
        steps_done = snapshot_step;
        break;
      }
      snapshot = current;
      snapshot_step = step;
    }
    if (options.on_step) options.on_step(step, current);
  }
  if (diag.status != SolveStatus::kNonFinite && !AllFinite(current)) {
    diag.status = SolveStatus::kNonFinite;
    IMPREG_TRACE_EVENT(trace, steps_done, kRollback,
                       static_cast<double>(snapshot_step));
    current = snapshot;
    steps_done = snapshot_step;
  }
  if (diag.status == SolveStatus::kNonFinite) {
    diag.detail = "walk went non-finite; returning the distribution after " +
                  std::to_string(steps_done) + " steps";
  } else {
    diag.status = SolveStatus::kConverged;
  }
  diag.iterations = steps_done;
  IMPREG_TRACE_FINISH(trace, diag);
  IMPREG_METRIC_COUNT("solver.lazy_walk.solves", 1);
  IMPREG_METRIC_COUNT("solver.lazy_walk.steps", steps_done);
  return current;
}

Vector StationaryDistribution(const Graph& g) {
  IMPREG_CHECK_MSG(g.TotalVolume() > 0.0, "graph has no edges");
  Vector pi(g.NumNodes());
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    pi[u] = g.Degree(u) / g.TotalVolume();
  }
  return pi;
}

}  // namespace impreg
