#include "diffusion/lazy_walk.h"

#include "linalg/graph_operators.h"
#include "util/check.h"

namespace impreg {

Vector LazyWalk(const Graph& g, const Vector& seed,
                const LazyWalkOptions& options) {
  IMPREG_CHECK(seed.size() == static_cast<std::size_t>(g.NumNodes()));
  IMPREG_CHECK(options.steps >= 0);
  const LazyWalkOperator walk(g, options.alpha);
  Vector current = seed;
  Vector next(g.NumNodes());
  for (int step = 1; step <= options.steps; ++step) {
    walk.Apply(current, next);
    current.swap(next);
    if (options.on_step) options.on_step(step, current);
  }
  return current;
}

Vector StationaryDistribution(const Graph& g) {
  IMPREG_CHECK_MSG(g.TotalVolume() > 0.0, "graph has no edges");
  Vector pi(g.NumNodes());
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    pi[u] = g.Degree(u) / g.TotalVolume();
  }
  return pi;
}

}  // namespace impreg
