#include "diffusion/pagerank.h"

#include <cmath>

#include "core/parallel.h"
#include "linalg/cg.h"
#include "linalg/chebyshev.h"
#include "linalg/graph_operators.h"
#include "util/check.h"

namespace impreg {

namespace {

void ValidateSeed(const Graph& g, const Vector& seed) {
  IMPREG_CHECK(seed.size() == static_cast<std::size_t>(g.NumNodes()));
  for (double v : seed) IMPREG_CHECK_MSG(v >= 0.0, "seed must be nonnegative");
}

}  // namespace

PageRankResult PersonalizedPageRank(const Graph& g, const Vector& seed,
                                    const PageRankOptions& options) {
  ValidateSeed(g, seed);
  IMPREG_CHECK(options.gamma > 0.0 && options.gamma < 1.0);

  const RandomWalkOperator walk(g);
  PageRankResult result;
  result.scores = seed;
  Scale(options.gamma, result.scores);

  Vector walked(g.NumNodes());
  Vector next(g.NumNodes());
  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    walk.Apply(result.scores, walked);
    // Richardson update, row-parallel: each entry is independent.
    ParallelFor(0, g.NumNodes(), 1 << 14,
                [&](std::int64_t begin, std::int64_t end) {
                  for (std::int64_t u = begin; u < end; ++u) {
                    next[u] = options.gamma * seed[u] +
                              (1.0 - options.gamma) * walked[u];
                  }
                });
    const double delta = DistanceL1(next, result.scores);
    result.scores.swap(next);
    result.iterations = iter;
    if (delta <= options.tolerance) {
      result.converged = true;
      break;
    }
  }
  return result;
}

PageRankResult GlobalPageRank(const Graph& g, const PageRankOptions& options) {
  IMPREG_CHECK(g.NumNodes() > 0);
  const Vector uniform(g.NumNodes(), 1.0 / static_cast<double>(g.NumNodes()));
  return PersonalizedPageRank(g, uniform, options);
}

PageRankResult PersonalizedPageRankExact(const Graph& g, const Vector& seed,
                                         const PageRankOptions& options) {
  ValidateSeed(g, seed);
  IMPREG_CHECK(options.gamma > 0.0 && options.gamma < 1.0);

  // Operator q ↦ (I − (1−γ) S) q with S = D^{-1/2} A D^{-1/2} = I − ℒ.
  // Note I − (1−γ)S = γI + (1−γ)ℒ, symmetric positive definite with
  // spectrum ⊂ [γ, γ + 2(1−γ)].
  const NormalizedLaplacianOperator lap(g);
  const ShiftedOperator system(lap, 1.0 - options.gamma, options.gamma);

  Vector rhs(g.NumNodes(), 0.0);
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    if (g.Degree(u) > 0.0) {
      rhs[u] = options.gamma * seed[u] / std::sqrt(g.Degree(u));
    }
  }
  CgOptions cg_options;
  cg_options.relative_tolerance = options.tolerance;
  cg_options.max_iterations = options.max_iterations;
  const CgResult cg = ConjugateGradient(system, rhs, cg_options);

  PageRankResult result;
  result.scores.assign(g.NumNodes(), 0.0);
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    if (g.Degree(u) > 0.0) {
      result.scores[u] = cg.x[u] * std::sqrt(g.Degree(u));
    } else {
      // Isolated seeds keep their teleport mass.
      result.scores[u] = options.gamma * seed[u];
    }
  }
  result.iterations = cg.iterations;
  result.converged = cg.converged;
  return result;
}

PageRankResult PersonalizedPageRankChebyshev(const Graph& g,
                                             const Vector& seed,
                                             const PageRankOptions& options) {
  ValidateSeed(g, seed);
  IMPREG_CHECK(options.gamma > 0.0 && options.gamma < 1.0);

  const NormalizedLaplacianOperator lap(g);
  const ShiftedOperator system(lap, 1.0 - options.gamma, options.gamma);
  Vector rhs(g.NumNodes(), 0.0);
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    if (g.Degree(u) > 0.0) {
      rhs[u] = options.gamma * seed[u] / std::sqrt(g.Degree(u));
    }
  }
  // Spectrum of γI + (1−γ)ℒ: ℒ ∈ [0, 2] ⇒ [γ, 2 − γ].
  ChebyshevOptions cheb;
  cheb.relative_tolerance = options.tolerance;
  cheb.max_iterations = options.max_iterations;
  const ChebyshevResult solve =
      ChebyshevSolve(system, rhs, options.gamma, 2.0 - options.gamma, cheb);

  PageRankResult result;
  result.scores.assign(g.NumNodes(), 0.0);
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    if (g.Degree(u) > 0.0) {
      result.scores[u] = solve.x[u] * std::sqrt(g.Degree(u));
    } else {
      result.scores[u] = options.gamma * seed[u];
    }
  }
  result.iterations = solve.iterations;
  result.converged = solve.converged;
  return result;
}

}  // namespace impreg
