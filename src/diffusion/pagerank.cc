#include "diffusion/pagerank.h"

#include <cmath>

#include "core/metrics.h"
#include "core/parallel.h"
#include "core/trace.h"
#include "linalg/cg.h"
#include "linalg/chebyshev.h"
#include "linalg/graph_operators.h"
#include "util/check.h"
#include "util/fault.h"

namespace impreg {

namespace {

void ValidateSeed(const Graph& g, const Vector& seed) {
  IMPREG_CHECK(seed.size() == static_cast<std::size_t>(g.NumNodes()));
  // Negative mass is a programming error (abort); non-finite mass is a
  // data-poisoning event, rejected gracefully by the callers below
  // (NaN compares false to everything, so it passes this check).
  for (double v : seed) {
    IMPREG_CHECK_MSG(!(v < 0.0), "seed must be nonnegative");
  }
}

// Shared graceful rejection of a poisoned seed: zero scores,
// kNonFinite. Returns true when the seed was rejected.
bool RejectNonFiniteSeed(const Graph& g, const Vector& seed,
                         PageRankResult& result) {
  if (AllFinite(seed)) return false;
  result.scores.assign(g.NumNodes(), 0.0);
  result.diagnostics.status = SolveStatus::kNonFinite;
  result.diagnostics.detail =
      "seed has non-finite entries; returning zero scores";
  return true;
}

}  // namespace

PageRankResult PersonalizedPageRank(const Graph& g, const Vector& seed,
                                    const PageRankOptions& options) {
  ValidateSeed(g, seed);
  IMPREG_CHECK(options.gamma > 0.0 && options.gamma < 1.0);

  PageRankResult result;
  if (RejectNonFiniteSeed(g, seed, result)) return result;
  SolverTrace* trace = IMPREG_TRACE_BEGIN("pagerank.richardson");

  const RandomWalkOperator walk(g);
  result.scores = seed;
  Scale(options.gamma, result.scores);

  Vector walked(g.NumNodes());
  Vector next(g.NumNodes());
  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    walk.Apply(result.scores, walked);
    IMPREG_FAULT_POINT("pagerank/walked", walked);
    // Richardson update, row-parallel: each entry is independent.
    ParallelFor(0, g.NumNodes(), 1 << 14,
                [&](std::int64_t begin, std::int64_t end) {
                  for (std::int64_t u = begin; u < end; ++u) {
                    next[u] = options.gamma * seed[u] +
                              (1.0 - options.gamma) * walked[u];
                  }
                });
    double delta = DistanceL1(next, result.scores);
    IMPREG_FAULT_POINT("pagerank/delta", delta);
    result.iterations = iter;
    // The L1 distance inherits any NaN/Inf in `next`, so this one scalar
    // is the whole non-finite sentinel; the accepted scores are finite
    // by induction (each survived this check before the swap).
    if (!std::isfinite(delta)) {
      result.diagnostics.status = SolveStatus::kNonFinite;
      result.diagnostics.detail = "diffusion update went non-finite; "
                                  "returning last finite iterate";
      IMPREG_TRACE_EVENT(trace, iter, kRollback, delta);
      break;
    }
    result.diagnostics.RecordResidual(delta);
    IMPREG_TRACE_EVENT(trace, iter, kResidual, delta);
    result.scores.swap(next);
    if (delta <= options.tolerance) {
      result.converged = true;
      result.diagnostics.status = SolveStatus::kConverged;
      break;
    }
  }
  if (!result.converged &&
      result.diagnostics.status == SolveStatus::kMaxIterations) {
    result.diagnostics.detail =
        "iteration cap hit; scores are the early-stopped diffusion";
  }
  result.diagnostics.iterations = result.iterations;
  IMPREG_TRACE_FINISH(trace, result.diagnostics);
  IMPREG_METRIC_COUNT("solver.pagerank.richardson.solves", 1);
  IMPREG_METRIC_COUNT("solver.pagerank.richardson.iterations",
                      result.iterations);
  return result;
}

PageRankResult GlobalPageRank(const Graph& g, const PageRankOptions& options) {
  IMPREG_CHECK(g.NumNodes() > 0);
  const Vector uniform(g.NumNodes(), 1.0 / static_cast<double>(g.NumNodes()));
  return PersonalizedPageRank(g, uniform, options);
}

PageRankResult PersonalizedPageRankExact(const Graph& g, const Vector& seed,
                                         const PageRankOptions& options) {
  ValidateSeed(g, seed);
  IMPREG_CHECK(options.gamma > 0.0 && options.gamma < 1.0);

  PageRankResult result;
  if (RejectNonFiniteSeed(g, seed, result)) return result;

  // Operator q ↦ (I − (1−γ) S) q with S = D^{-1/2} A D^{-1/2} = I − ℒ.
  // Note I − (1−γ)S = γI + (1−γ)ℒ, symmetric positive definite with
  // spectrum ⊂ [γ, γ + 2(1−γ)].
  const NormalizedLaplacianOperator lap(g);
  const ShiftedOperator system(lap, 1.0 - options.gamma, options.gamma);

  Vector rhs(g.NumNodes(), 0.0);
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    if (g.Degree(u) > 0.0) {
      rhs[u] = options.gamma * seed[u] / std::sqrt(g.Degree(u));
    }
  }
  CgOptions cg_options;
  cg_options.relative_tolerance = options.tolerance;
  cg_options.max_iterations = options.max_iterations;
  const CgResult cg = ConjugateGradient(system, rhs, cg_options);

  // CG's containment guarantees cg.x is finite even on failure, so the
  // degree-rescaled scores below are finite too; the status says
  // whether they are the solve or a contained fallback.
  result.scores.assign(g.NumNodes(), 0.0);
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    if (g.Degree(u) > 0.0) {
      result.scores[u] = cg.x[u] * std::sqrt(g.Degree(u));
    } else {
      // Isolated seeds keep their teleport mass.
      result.scores[u] = options.gamma * seed[u];
    }
  }
  result.iterations = cg.iterations;
  result.converged = cg.converged;
  result.diagnostics = cg.diagnostics;
  // The inner CG solve traced itself (solver "cg"); count the wrapper.
  IMPREG_METRIC_COUNT("solver.pagerank.exact.solves", 1);
  return result;
}

PageRankResult PersonalizedPageRankChebyshev(const Graph& g,
                                             const Vector& seed,
                                             const PageRankOptions& options) {
  ValidateSeed(g, seed);
  IMPREG_CHECK(options.gamma > 0.0 && options.gamma < 1.0);

  PageRankResult result;
  if (RejectNonFiniteSeed(g, seed, result)) return result;

  const NormalizedLaplacianOperator lap(g);
  const ShiftedOperator system(lap, 1.0 - options.gamma, options.gamma);
  Vector rhs(g.NumNodes(), 0.0);
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    if (g.Degree(u) > 0.0) {
      rhs[u] = options.gamma * seed[u] / std::sqrt(g.Degree(u));
    }
  }
  // Spectrum of γI + (1−γ)ℒ: ℒ ∈ [0, 2] ⇒ [γ, 2 − γ].
  ChebyshevOptions cheb;
  cheb.relative_tolerance = options.tolerance;
  cheb.max_iterations = options.max_iterations;
  const ChebyshevResult solve =
      ChebyshevSolve(system, rhs, options.gamma, 2.0 - options.gamma, cheb);

  if (!solve.diagnostics.usable()) {
    // The inner-product-free recurrence broke (non-finite iterate or
    // diverging residuals). The Richardson iteration is the slow-but-
    // sturdy power-style fallback: unconditionally convergent for
    // γ ∈ (0, 1), no spectrum bounds to get wrong. The failure status
    // is kept — the caller asked for Chebyshev and should know it broke.
    PageRankResult fallback = PersonalizedPageRank(g, seed, options);
    fallback.diagnostics.status = solve.diagnostics.status;
    fallback.diagnostics.detail =
        std::string("chebyshev solve failed (") + solve.diagnostics.Summary() +
        "); scores are from the Richardson fallback";
    fallback.converged = false;
    IMPREG_METRIC_COUNT("solver.pagerank.chebyshev.fallbacks", 1);
    return fallback;
  }

  result.scores.assign(g.NumNodes(), 0.0);
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    if (g.Degree(u) > 0.0) {
      result.scores[u] = solve.x[u] * std::sqrt(g.Degree(u));
    } else {
      result.scores[u] = options.gamma * seed[u];
    }
  }
  result.iterations = solve.iterations;
  result.converged = solve.converged;
  result.diagnostics = solve.diagnostics;
  // The inner Chebyshev solve traced itself (solver "chebyshev").
  IMPREG_METRIC_COUNT("solver.pagerank.chebyshev.solves", 1);
  return result;
}

}  // namespace impreg
