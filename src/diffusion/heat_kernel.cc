#include "diffusion/heat_kernel.h"

#include <cmath>

#include "core/metrics.h"
#include "core/parallel.h"
#include "core/trace.h"
#include "diffusion/seed.h"
#include "linalg/graph_operators.h"
#include "linalg/lanczos.h"
#include "util/check.h"
#include "util/fault.h"

namespace impreg {

Vector HeatKernelNormalized(const Graph& g, const Vector& x,
                            const HeatKernelOptions& options,
                            SolverDiagnostics* diagnostics) {
  IMPREG_CHECK(x.size() == static_cast<std::size_t>(g.NumNodes()));
  IMPREG_CHECK(options.t >= 0.0);
  const NormalizedLaplacianOperator lap(g);
  return KrylovExpMultiply(lap, -options.t, x, options.krylov_dim,
                           diagnostics);
}

Vector HeatKernelWalk(const Graph& g, const Vector& seed,
                      const HeatKernelOptions& options,
                      SolverDiagnostics* diagnostics) {
  IMPREG_CHECK(seed.size() == static_cast<std::size_t>(g.NumNodes()));
  IMPREG_CHECK(options.t >= 0.0);
  SolverDiagnostics local;
  SolverDiagnostics& diag = diagnostics != nullptr ? *diagnostics : local;
  if (!AllFinite(seed)) {
    diag = SolverDiagnostics{};
    diag.status = SolveStatus::kNonFinite;
    diag.detail = "seed has non-finite entries; returning 0";
    return Vector(g.NumNodes(), 0.0);
  }
  // exp(−t(I−M)) = D^{1/2} exp(−tℒ) D^{-1/2} on supported nodes;
  // isolated nodes are fixed points of the dynamics.
  Vector hat = ToHatSpace(g, seed);
  hat = HeatKernelNormalized(g, hat, options, &diag);
  Vector out = FromHatSpace(g, hat);
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    if (g.Degree(u) == 0.0) out[u] = seed[u];
  }
  return out;
}

Vector HeatKernelWalkTaylor(const Graph& g, const Vector& seed, double t,
                            double tail_tolerance,
                            SolverDiagnostics* diagnostics) {
  IMPREG_CHECK(seed.size() == static_cast<std::size_t>(g.NumNodes()));
  IMPREG_CHECK(t >= 0.0);
  IMPREG_CHECK(tail_tolerance > 0.0);
  SolverDiagnostics local;
  SolverDiagnostics& diag = diagnostics != nullptr ? *diagnostics : local;
  diag = SolverDiagnostics{};
  SolverTrace* trace = IMPREG_TRACE_BEGIN("heat_kernel.taylor");
  if (!AllFinite(seed)) {
    diag.status = SolveStatus::kNonFinite;
    diag.detail = "seed has non-finite entries; returning 0";
    IMPREG_TRACE_FINISH(trace, diag);
    return Vector(g.NumNodes(), 0.0);
  }
  const RandomWalkOperator walk(g);

  // exp(−t(I−M)) s = e^{−t} Σ_k (t^k / k!) M^k s. All terms are
  // nonnegative for a distribution seed, so there is no cancellation and
  // the truncation error is bounded by the remaining Poisson tail.
  Vector term = seed;            // (t^k/k!) M^k s, starting at k = 0.
  Vector accum = seed;           // Partial sum.
  Vector next(g.NumNodes());
  double poisson = 1.0;          // t^k / k!.
  double tail = std::exp(t) - 1.0;  // Σ_{j>k} t^j/j!, exact at k = 0.
  // Isolated-node mass is handled exactly by the k = 0 term plus the
  // e^{−t} weight below *only if* we freeze it; M annihilates it
  // otherwise. Track it separately.
  Vector frozen(g.NumNodes(), 0.0);
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    if (g.Degree(u) == 0.0 && seed[u] != 0.0) {
      frozen[u] = seed[u];
      term[u] = 0.0;
      accum[u] = 0.0;
    }
  }
  // Partial sum (and matching term) last verified finite: what the
  // series falls back to if a term goes non-finite. Checks are
  // amortized every few terms; a poisoned term poisons accum on the
  // same step, so the window bounds the rollback, not detection.
  constexpr int kFiniteCheckInterval = 8;
  Vector accum_snapshot = accum;
  int snapshot_terms = 0;
  int terms = 0;
  for (int k = 1; k <= 4 * (static_cast<int>(t) + 25); ++k) {
    walk.Apply(term, next);
    poisson *= t / static_cast<double>(k);
    tail -= poisson;
    term.swap(next);
    // term becomes (t^k/k!) M^k s — walk.Apply used the previous term,
    // which already carried t^{k-1}/(k-1)! — and is accumulated into the
    // partial sum in the same fused parallel pass.
    const double step = t / static_cast<double>(k);
    ParallelFor(0, g.NumNodes(), 1 << 14,
                [&](std::int64_t begin, std::int64_t end) {
                  for (std::int64_t i = begin; i < end; ++i) {
                    term[i] *= step;
                    accum[i] += term[i];
                  }
                });
    IMPREG_FAULT_POINT("heat_kernel/term", term);
    terms = k;
    // The remaining Poisson tail mass is the truncation-error bound —
    // the convergence quantity for the series.
    IMPREG_TRACE_EVENT(trace, k, kResidual, tail * std::exp(-t));
    if (k % kFiniteCheckInterval == 0) {
      if (!AllFinite(accum) || !AllFinite(term)) {
        diag.status = SolveStatus::kNonFinite;
        diag.detail = "Taylor term went non-finite; returning the series "
                      "truncated at the last finite term";
        IMPREG_TRACE_EVENT(trace, k, kRollback,
                           static_cast<double>(snapshot_terms));
        accum = accum_snapshot;
        terms = snapshot_terms;
        break;
      }
      accum_snapshot = accum;
      snapshot_terms = k;
    }
    if (tail * std::exp(-t) <= tail_tolerance) break;
  }
  if (diag.status != SolveStatus::kNonFinite && !AllFinite(accum)) {
    diag.status = SolveStatus::kNonFinite;
    diag.detail = "Taylor term went non-finite; returning the series "
                  "truncated at the last finite term";
    IMPREG_TRACE_EVENT(trace, terms, kRollback,
                       static_cast<double>(snapshot_terms));
    accum = accum_snapshot;
    terms = snapshot_terms;
  }
  if (diag.status != SolveStatus::kNonFinite) {
    diag.status = SolveStatus::kConverged;
  }
  diag.iterations = terms;
  IMPREG_TRACE_FINISH(trace, diag);
  IMPREG_METRIC_COUNT("solver.heat_kernel.taylor.solves", 1);
  IMPREG_METRIC_COUNT("solver.heat_kernel.taylor.terms", terms);
  Scale(std::exp(-t), accum);
  Axpy(1.0, frozen, accum);
  return accum;
}

}  // namespace impreg
