#ifndef IMPREG_DIFFUSION_LAZY_WALK_H_
#define IMPREG_DIFFUSION_LAZY_WALK_H_

#include <functional>

#include "core/solve_status.h"
#include "graph/graph.h"
#include "linalg/vector_ops.h"

/// \file
/// Lazy random walk — the third diffusion of §3.1:
///
///   W_α = α I + (1−α) M,   M = A D^{-1},  α ∈ (0, 1),
///
/// iterated for a finite number of steps on a seed distribution. The
/// number of steps is the "aggressiveness" knob: few steps keep the
/// charge near the seed (strong implicit regularization); infinitely
/// many steps equilibrate to the degree-proportional stationary
/// distribution regardless of the seed.

namespace impreg {

/// Options for the lazy-walk dynamics.
struct LazyWalkOptions {
  /// Holding probability α ∈ [0, 1]. α = 1/2 is the classical choice
  /// that makes W_α positive semidefinite (spectrum ⊂ [0, 1]).
  double alpha = 0.5;
  /// Number of steps k ≥ 0.
  int steps = 10;
  /// If set, called after each step with (step, current distribution).
  std::function<void(int, const Vector&)> on_step;
};

/// Returns W_α^k · seed. The returned vector is always finite; if
/// `diagnostics` is non-null it receives the outcome (kNonFinite when
/// the seed or an intermediate step was poisoned — the last finite
/// distribution is returned).
Vector LazyWalk(const Graph& g, const Vector& seed,
                const LazyWalkOptions& options = {},
                SolverDiagnostics* diagnostics = nullptr);

/// The stationary distribution of the walk on a graph with positive
/// total volume: π(u) = d(u) / vol(G).
Vector StationaryDistribution(const Graph& g);

}  // namespace impreg

#endif  // IMPREG_DIFFUSION_LAZY_WALK_H_
