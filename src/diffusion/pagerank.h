#ifndef IMPREG_DIFFUSION_PAGERANK_H_
#define IMPREG_DIFFUSION_PAGERANK_H_

#include "core/solve_status.h"
#include "graph/graph.h"
#include "linalg/vector_ops.h"

/// \file
/// PageRank dynamics — Equation (2) of the paper:
///
///   R_γ = γ (I − (1−γ) M)^{-1},   M = A D^{-1},  γ ∈ (0, 1),
///
/// applied to a seed distribution s. As γ → 0 the result forgets the
/// seed and approaches the stationary distribution (∝ degrees); larger γ
/// keeps the diffusion aggressive ("more regularized toward the seed").
/// The teleportation parameter γ here is the paper's γ (so the usual
/// "damping factor" is 1−γ).

namespace impreg {

/// Options for the PageRank solvers.
struct PageRankOptions {
  /// Teleportation probability γ ∈ (0, 1).
  double gamma = 0.15;
  /// Richardson iteration stops when ‖p_{t+1} − p_t‖₁ ≤ tolerance.
  double tolerance = 1e-12;
  int max_iterations = 10000;
};

/// Result of a PageRank computation. `scores` is always finite: a
/// poisoned seed is rejected up front (kInvalidInput-style zero scores
/// under kNonFinite) and a diffusion that goes non-finite mid-flight
/// stops with the last finite iterate.
struct PageRankResult {
  Vector scores;
  int iterations = 0;
  /// Kept in sync with diagnostics.status == kConverged.
  bool converged = false;
  SolverDiagnostics diagnostics;
};

/// Personalized PageRank: p = γ Σ_k (1−γ)^k M^k s via the Richardson
/// iteration p ← γ s + (1−γ) M p. `seed` must be entrywise ≥ 0; its mass
/// is preserved in the output when the graph has no isolated nodes.
PageRankResult PersonalizedPageRank(const Graph& g, const Vector& seed,
                                    const PageRankOptions& options = {});

/// Global PageRank with the uniform seed s = 1/n.
PageRankResult GlobalPageRank(const Graph& g,
                              const PageRankOptions& options = {});

/// "Exact" Personalized PageRank through the symmetric linear system
/// (I − (1−γ) D^{-1/2} A D^{-1/2}) q = γ D^{-1/2} s,  p = D^{1/2} q,
/// solved by conjugate gradient to high precision. This is the
/// optimization-approach oracle the paper's §3.3 contrasts with the
/// strongly local push algorithm.
PageRankResult PersonalizedPageRankExact(const Graph& g, const Vector& seed,
                                         const PageRankOptions& options = {});

/// Same system solved by Chebyshev semi-iteration (the spectrum of
/// γI + (1−γ)ℒ is known analytically: [γ, 2 − γ]), which needs no
/// inner products — attractive in distributed settings. Accuracy and
/// convergence comparable to CG.
PageRankResult PersonalizedPageRankChebyshev(
    const Graph& g, const Vector& seed, const PageRankOptions& options = {});

}  // namespace impreg

#endif  // IMPREG_DIFFUSION_PAGERANK_H_
