#ifndef IMPREG_DIFFUSION_HEAT_KERNEL_H_
#define IMPREG_DIFFUSION_HEAT_KERNEL_H_

#include "core/solve_status.h"
#include "graph/graph.h"
#include "linalg/vector_ops.h"

/// \file
/// Heat-kernel dynamics — the first diffusion of §3.1:
///
///   H_t = exp(−t L) = Σ_k (−t)^k/k! · L^k,   t ≥ 0,
///
/// applied to a seed vector. Two coordinate systems are provided:
///
///  * the symmetric hat space, exp(−t ℒ) x, which is the object that
///    appears in the regularized SDP correspondence (Problem (5)); and
///  * probability space, exp(−t (I − M)) s with M = A D^{-1}, the
///    heat-kernel PageRank of Chung [15] used for local clustering.
///
/// They are conjugate: exp(−t(I−M)) = D^{1/2} exp(−t ℒ) D^{-1/2} on the
/// support of the degree vector, which is how the probability-space
/// version is computed here (via a symmetric Krylov approximation).

namespace impreg {

/// Options for the heat-kernel solvers.
struct HeatKernelOptions {
  /// Diffusion time t ≥ 0.
  double t = 5.0;
  /// Krylov dimension for the Lanczos exp-multiply.
  int krylov_dim = 60;
};

/// y = exp(−t ℒ) x (hat space, symmetric). The returned vector is
/// always finite; if `diagnostics` is non-null it receives the outcome
/// (kNonFinite when the input or the Krylov recurrence was poisoned —
/// the finite prefix, or zero, is returned).
Vector HeatKernelNormalized(const Graph& g, const Vector& x,
                            const HeatKernelOptions& options = {},
                            SolverDiagnostics* diagnostics = nullptr);

/// ρ = exp(−t (I − M)) s (probability space). Preserves total mass on
/// graphs without isolated nodes; mass seeded on isolated nodes stays
/// put (exp(0) = 1 on their diagonal).
Vector HeatKernelWalk(const Graph& g, const Vector& seed,
                      const HeatKernelOptions& options = {},
                      SolverDiagnostics* diagnostics = nullptr);

/// Reference implementation of exp(−t(I−M)) s by the scaled Taylor
/// series e^{-t} Σ_k t^k/k! M^k s, truncated when the remaining tail
/// mass is below `tail_tolerance`. Used to cross-check the Krylov path
/// in tests and as the engine for small t.
Vector HeatKernelWalkTaylor(const Graph& g, const Vector& seed, double t,
                            double tail_tolerance = 1e-14,
                            SolverDiagnostics* diagnostics = nullptr);

}  // namespace impreg

#endif  // IMPREG_DIFFUSION_HEAT_KERNEL_H_
