#include "diffusion/seed.h"

#include <cmath>

#include "util/check.h"

namespace impreg {

Vector SingleNodeSeed(const Graph& g, NodeId node) {
  IMPREG_CHECK(g.IsValidNode(node));
  Vector s(g.NumNodes(), 0.0);
  s[node] = 1.0;
  return s;
}

Vector SeedSetDistribution(const Graph& g, const std::vector<NodeId>& nodes) {
  IMPREG_CHECK(!nodes.empty());
  Vector s(g.NumNodes(), 0.0);
  const double mass = 1.0 / static_cast<double>(nodes.size());
  for (NodeId u : nodes) {
    IMPREG_CHECK(g.IsValidNode(u));
    IMPREG_CHECK_MSG(s[u] == 0.0, "seed nodes must be distinct");
    s[u] = mass;
  }
  return s;
}

Vector DegreeWeightedSeed(const Graph& g, const std::vector<NodeId>& nodes) {
  IMPREG_CHECK(!nodes.empty());
  Vector s(g.NumNodes(), 0.0);
  double total = 0.0;
  for (NodeId u : nodes) {
    IMPREG_CHECK(g.IsValidNode(u));
    IMPREG_CHECK_MSG(s[u] == 0.0, "seed nodes must be distinct");
    s[u] = g.Degree(u);
    total += g.Degree(u);
  }
  IMPREG_CHECK_MSG(total > 0.0, "seed set has zero volume");
  for (NodeId u : nodes) s[u] /= total;
  return s;
}

Vector RandomSignSeed(const Graph& g, Rng& rng) {
  Vector x(g.NumNodes());
  for (double& v : x) v = rng.NextBernoulli(0.5) ? 1.0 : -1.0;
  // Orthogonalize against the trivial direction D^{1/2}1.
  Vector trivial(g.NumNodes(), 0.0);
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    trivial[u] = std::sqrt(g.Degree(u));
  }
  ProjectOut(trivial, x);
  IMPREG_CHECK_MSG(Normalize(x) > 1e-12,
                   "random sign seed vanished (degenerate graph)");
  return x;
}

Vector ToHatSpace(const Graph& g, const Vector& p) {
  IMPREG_CHECK(p.size() == static_cast<std::size_t>(g.NumNodes()));
  Vector x(p.size(), 0.0);
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    if (g.Degree(u) > 0.0) x[u] = p[u] / std::sqrt(g.Degree(u));
  }
  return x;
}

Vector FromHatSpace(const Graph& g, const Vector& x) {
  IMPREG_CHECK(x.size() == static_cast<std::size_t>(g.NumNodes()));
  Vector p(x.size(), 0.0);
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    p[u] = x[u] * std::sqrt(g.Degree(u));
  }
  return p;
}

}  // namespace impreg
