#include "regularization/density.h"

#include <algorithm>
#include <cmath>

#include "linalg/graph_operators.h"
#include "util/check.h"

namespace impreg {

DensityDiagnostics CheckDensity(const Graph& g, const DenseMatrix& x) {
  IMPREG_CHECK(x.Rows() == g.NumNodes() && x.Cols() == g.NumNodes());
  DensityDiagnostics diag;
  diag.symmetry_defect = x.SymmetryDefect();
  diag.trace_defect = std::abs(x.Trace() - 1.0);

  const SymmetricEigen eigen = SymmetricEigendecomposition(x);
  diag.psd_defect = std::max(0.0, -eigen.eigenvalues.front());

  const Vector trivial = TrivialNormalizedEigenvector(g);
  const Vector image = x.Apply(trivial);
  diag.orthogonality_defect = Norm2(image);
  return diag;
}

DenseMatrix NormalizeTrace(DenseMatrix x) {
  const double trace = x.Trace();
  IMPREG_CHECK_MSG(std::abs(trace) > 1e-300, "matrix has zero trace");
  x.ScaleBy(1.0 / trace);
  return x;
}

double TraceDistance(const DenseMatrix& a, const DenseMatrix& b) {
  IMPREG_CHECK(a.Rows() == b.Rows() && a.Cols() == b.Cols());
  DenseMatrix diff = a;
  diff.AddScaled(b, -1.0);
  const SymmetricEigen eigen = SymmetricEigendecomposition(diff);
  double sum = 0.0;
  for (double lambda : eigen.eigenvalues) sum += std::abs(lambda);
  return 0.5 * sum;
}

double VonNeumannEntropy(const DenseMatrix& x) {
  const SymmetricEigen eigen = SymmetricEigendecomposition(x);
  double entropy = 0.0;
  for (double lambda : eigen.eigenvalues) {
    if (lambda > 1e-15) entropy -= lambda * std::log(lambda);
  }
  return entropy;
}

}  // namespace impreg
