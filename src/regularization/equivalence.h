#ifndef IMPREG_REGULARIZATION_EQUIVALENCE_H_
#define IMPREG_REGULARIZATION_EQUIVALENCE_H_

#include "graph/graph.h"
#include "linalg/dense_matrix.h"
#include "regularization/sdp.h"

/// \file
/// The Mahoney–Orecchia correspondence (§3.1, Problem (5) and [32]):
/// each of the three diffusion dynamics, viewed as a density matrix on
/// the subspace orthogonal to D^{1/2}1, *exactly* solves the regularized
/// SDP for a matching regularizer G and strength η:
///
///   Heat Kernel  exp(−tℒ)        ↔ G = entropy,  η = t;
///   PageRank     (γ/(1−γ))(ℒ+μI)^{-1}, μ = γ/(1−γ)
///                                ↔ G = −log det, η = Tr'[(ℒ+μI)^{-1}];
///   Lazy Walk    (I−(1−α)ℒ)^k    ↔ G = (1/p)‖·‖ₚᵖ, p = 1 + 1/k
///                                   (requires α ≥ 1/2 so W_α ⪰ 0).
///
/// This module constructs each diffusion's density matrix exactly (by
/// dense eigendecomposition), derives the matching (G, η), solves the
/// SDP with it, and reports how close the two sides are: the paper's
/// theory says trace distance and objective gap are zero, and the tests
/// and the `table_sdp_equivalence` bench confirm it to machine
/// precision.

namespace impreg {

/// The diffusion's density matrix, exactly.
/// Heat kernel: X ∝ P exp(−tℒ) P with P the projector off D^{1/2}1.
DenseMatrix HeatKernelDensity(const Graph& g, double t);

/// PageRank: X ∝ P (ℒ + μI)^{-1} P with μ = γ/(1−γ).
DenseMatrix PageRankDensity(const Graph& g, double gamma);

/// Lazy walk: X ∝ P (I − (1−α)ℒ)^k P. Requires α ∈ [1/2, 1) so all
/// eigenvalues of the symmetrized walk are nonnegative.
DenseMatrix LazyWalkDensity(const Graph& g, double alpha, int steps);

/// The η (and dual μ / exponent p) implied by each diffusion parameter.
struct ImpliedParameters {
  double eta = 0.0;
  double mu = 0.0;  ///< log-det and p-norm only.
  double p = 0.0;   ///< p-norm only.
};

/// Heat kernel: η = t.
ImpliedParameters ImpliedForHeatKernel(double t);

/// PageRank: μ = γ/(1−γ), η = Σ_{i≥2} 1/(λᵢ + μ).
ImpliedParameters ImpliedForPageRank(const Graph& g, double gamma);

/// Lazy walk: p = 1 + 1/k, μ = 1/(1−α), η from the trace condition.
ImpliedParameters ImpliedForLazyWalk(const Graph& g, double alpha, int steps);

/// One verified instance of the correspondence.
struct EquivalenceReport {
  /// Trace distance between the diffusion density and the SDP optimum
  /// (theory: 0).
  double trace_distance = 0.0;
  /// Regularized objective at the diffusion density minus at the SDP
  /// optimum (theory: 0; always ≥ 0 up to roundoff).
  double objective_gap = 0.0;
  /// Objective at the SDP optimum.
  double sdp_objective = 0.0;
  /// Tr(ℒX) of the diffusion density — its relaxed Rayleigh quotient.
  double diffusion_rayleigh = 0.0;
  /// The implied regularization strength.
  ImpliedParameters implied;
};

/// Verifies the heat-kernel ↔ entropy correspondence at time t > 0.
EquivalenceReport VerifyHeatKernelEquivalence(const Graph& g, double t);

/// Verifies the PageRank ↔ log-det correspondence at γ ∈ (0, 1).
EquivalenceReport VerifyPageRankEquivalence(const Graph& g, double gamma);

/// Verifies the lazy-walk ↔ p-norm correspondence at α ∈ [1/2, 1),
/// steps ≥ 1.
EquivalenceReport VerifyLazyWalkEquivalence(const Graph& g, double alpha,
                                            int steps);

}  // namespace impreg

#endif  // IMPREG_REGULARIZATION_EQUIVALENCE_H_
