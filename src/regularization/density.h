#ifndef IMPREG_REGULARIZATION_DENSITY_H_
#define IMPREG_REGULARIZATION_DENSITY_H_

#include "graph/graph.h"
#include "linalg/dense_matrix.h"

/// \file
/// Density-matrix utilities for Problem (4)/(5) of the paper: the SDP
/// relaxations optimize over distributions over unit vectors,
/// represented by density matrices X ⪰ 0 with Tr(X) = 1 that are also
/// orthogonal to the trivial direction D^{1/2}1.

namespace impreg {

/// How far a matrix is from being a feasible point of Problem (4)/(5).
struct DensityDiagnostics {
  /// Most negative eigenvalue (0 if PSD).
  double psd_defect = 0.0;
  /// |Tr(X) − 1|.
  double trace_defect = 0.0;
  /// ‖X D^{1/2}1‖₂ with the trivial vector normalized.
  double orthogonality_defect = 0.0;
  /// max |Xᵢⱼ − Xⱼᵢ|.
  double symmetry_defect = 0.0;
};

/// Computes all feasibility diagnostics of `x` for the graph's SDP.
DensityDiagnostics CheckDensity(const Graph& g, const DenseMatrix& x);

/// Scales a nonzero-trace matrix to unit trace.
DenseMatrix NormalizeTrace(DenseMatrix x);

/// Trace distance ½‖A − B‖₁ = ½ Σ |λᵢ(A−B)| — the standard metric
/// between density matrices, in [0, 1] for true densities.
double TraceDistance(const DenseMatrix& a, const DenseMatrix& b);

/// Von Neumann entropy −Σ λᵢ log λᵢ of a PSD matrix (0·log 0 = 0).
double VonNeumannEntropy(const DenseMatrix& x);

}  // namespace impreg

#endif  // IMPREG_REGULARIZATION_DENSITY_H_
