#include "regularization/equivalence.h"

#include <cmath>
#include <vector>

#include "graph/algorithms.h"
#include "linalg/graph_operators.h"
#include "regularization/density.h"
#include "util/check.h"

namespace impreg {

namespace {

// Eigenvalues/eigenvectors of ℒ with the trivial index, shared by all
// density constructions.
struct Spectrum {
  SymmetricEigen eigen;
  int trivial_index = 0;
  std::vector<int> active;  // All indices except the trivial one.
};

Spectrum ComputeSpectrum(const Graph& g) {
  IMPREG_CHECK_MSG(g.NumNodes() >= 2, "need at least two nodes");
  IMPREG_CHECK_MSG(IsConnected(g), "equivalence requires a connected graph");
  Spectrum s;
  s.eigen = SymmetricEigendecomposition(DenseNormalizedLaplacian(g));
  const Vector trivial = TrivialNormalizedEigenvector(g);
  double best = -1.0;
  for (int j = 0; j < s.eigen.eigenvectors.Cols(); ++j) {
    const double overlap =
        std::abs(Dot(s.eigen.eigenvectors.Column(j), trivial));
    if (overlap > best) {
      best = overlap;
      s.trivial_index = j;
    }
  }
  IMPREG_CHECK_MSG(best > 0.99, "failed to identify the trivial eigenvector");
  for (int j = 0; j < static_cast<int>(s.eigen.eigenvalues.size()); ++j) {
    if (j != s.trivial_index) s.active.push_back(j);
  }
  return s;
}

// X = Σ_{i active} f(λᵢ) vᵢ vᵢᵀ, normalized to unit trace.
DenseMatrix SpectralDensity(const Spectrum& s,
                            const std::function<double(double)>& f) {
  const int n = static_cast<int>(s.eigen.eigenvalues.size());
  Vector weights(n, 0.0);
  double total = 0.0;
  for (int k : s.active) {
    const double w = f(s.eigen.eigenvalues[k]);
    IMPREG_CHECK_MSG(w >= 0.0, "density weights must be nonnegative");
    weights[k] = w;
    total += w;
  }
  IMPREG_CHECK_MSG(total > 0.0, "density has zero trace");
  DenseMatrix x(n, n);
  for (int k : s.active) {
    if (weights[k] == 0.0) continue;
    const double w = weights[k] / total;
    const Vector v = s.eigen.eigenvectors.Column(k);
    for (int i = 0; i < n; ++i) {
      if (v[i] == 0.0) continue;
      const double wvi = w * v[i];
      for (int j = 0; j < n; ++j) x.At(i, j) += wvi * v[j];
    }
  }
  return x;
}

}  // namespace

DenseMatrix HeatKernelDensity(const Graph& g, double t) {
  IMPREG_CHECK(t > 0.0);
  const Spectrum s = ComputeSpectrum(g);
  // Stabilize by factoring out exp(−t·λ_min) — normalization removes it.
  double lambda_min = s.eigen.eigenvalues[s.active.front()];
  for (int k : s.active) {
    lambda_min = std::min(lambda_min, s.eigen.eigenvalues[k]);
  }
  return SpectralDensity(
      s, [&](double lam) { return std::exp(-t * (lam - lambda_min)); });
}

DenseMatrix PageRankDensity(const Graph& g, double gamma) {
  IMPREG_CHECK(gamma > 0.0 && gamma < 1.0);
  const Spectrum s = ComputeSpectrum(g);
  const double mu = gamma / (1.0 - gamma);
  return SpectralDensity(s, [&](double lam) { return 1.0 / (lam + mu); });
}

DenseMatrix LazyWalkDensity(const Graph& g, double alpha, int steps) {
  IMPREG_CHECK_MSG(alpha >= 0.5 && alpha < 1.0,
                   "lazy walk density requires alpha in [1/2, 1)");
  IMPREG_CHECK(steps >= 1);
  const Spectrum s = ComputeSpectrum(g);
  return SpectralDensity(s, [&](double lam) {
    const double base = 1.0 - (1.0 - alpha) * lam;
    // base ≥ 0 when α ≥ 1/2 and λ ≤ 2; clamp tiny negatives from
    // roundoff.
    return std::pow(std::max(base, 0.0), steps);
  });
}

ImpliedParameters ImpliedForHeatKernel(double t) {
  IMPREG_CHECK(t > 0.0);
  ImpliedParameters out;
  out.eta = t;
  return out;
}

ImpliedParameters ImpliedForPageRank(const Graph& g, double gamma) {
  IMPREG_CHECK(gamma > 0.0 && gamma < 1.0);
  const Spectrum s = ComputeSpectrum(g);
  ImpliedParameters out;
  out.mu = gamma / (1.0 - gamma);
  double trace = 0.0;
  for (int k : s.active) trace += 1.0 / (s.eigen.eigenvalues[k] + out.mu);
  out.eta = trace;
  return out;
}

ImpliedParameters ImpliedForLazyWalk(const Graph& g, double alpha,
                                     int steps) {
  IMPREG_CHECK(alpha >= 0.5 && alpha < 1.0);
  IMPREG_CHECK(steps >= 1);
  const Spectrum s = ComputeSpectrum(g);
  ImpliedParameters out;
  out.p = 1.0 + 1.0 / static_cast<double>(steps);
  out.mu = 1.0 / (1.0 - alpha);
  // The SDP optimum has eigenvalues [η(μ−λ)]^k; matching the normalized
  // walk density ((1−α)(μ−λ))^k / Z, Z = Σ((1−α)(μ−λ))^k requires
  // η = (1−α)/Z^{1/k}.
  double z = 0.0;
  for (int k : s.active) {
    const double base = (1.0 - alpha) * (out.mu - s.eigen.eigenvalues[k]);
    z += std::pow(std::max(base, 0.0), steps);
  }
  IMPREG_CHECK(z > 0.0);
  out.eta = (1.0 - alpha) / std::pow(z, 1.0 / static_cast<double>(steps));
  return out;
}

namespace {

EquivalenceReport BuildReport(const Graph& g, const DenseMatrix& diffusion,
                              Regularizer reg, const ImpliedParameters& imp,
                              double p) {
  const RegularizedSdpSolution sdp = SolveRegularizedSdp(g, reg, imp.eta, p);
  EquivalenceReport report;
  report.implied = imp;
  report.trace_distance = TraceDistance(diffusion, sdp.x);
  report.sdp_objective = sdp.objective;
  report.diffusion_rayleigh =
      TraceOfProduct(DenseNormalizedLaplacian(g), diffusion);
  const double diffusion_objective =
      RegularizedObjective(g, diffusion, reg, imp.eta, p);
  report.objective_gap = diffusion_objective - sdp.objective;
  return report;
}

}  // namespace

EquivalenceReport VerifyHeatKernelEquivalence(const Graph& g, double t) {
  const ImpliedParameters imp = ImpliedForHeatKernel(t);
  return BuildReport(g, HeatKernelDensity(g, t), Regularizer::kEntropy, imp,
                     2.0);
}

EquivalenceReport VerifyPageRankEquivalence(const Graph& g, double gamma) {
  const ImpliedParameters imp = ImpliedForPageRank(g, gamma);
  return BuildReport(g, PageRankDensity(g, gamma), Regularizer::kLogDet, imp,
                     2.0);
}

EquivalenceReport VerifyLazyWalkEquivalence(const Graph& g, double alpha,
                                            int steps) {
  const ImpliedParameters imp = ImpliedForLazyWalk(g, alpha, steps);
  return BuildReport(g, LazyWalkDensity(g, alpha, steps),
                     Regularizer::kPNorm, imp, imp.p);
}

}  // namespace impreg
