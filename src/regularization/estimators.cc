#include "regularization/estimators.h"

#include <algorithm>

#include "diffusion/heat_kernel.h"
#include "diffusion/seed.h"
#include "linalg/graph_operators.h"
#include "linalg/lanczos.h"
#include "util/check.h"

namespace impreg {

namespace {

// Best-over-label-swap sign accuracy, restricted to labeled nodes.
double SignAccuracy(const Vector& x, const std::vector<int>& labels) {
  std::int64_t agree = 0, total = 0;
  for (std::size_t u = 0; u < x.size(); ++u) {
    if (labels[u] < 0) continue;
    ++total;
    const bool predicted = x[u] >= 0.0;
    if (predicted == (labels[u] == 1)) ++agree;
  }
  if (total == 0) return 0.0;
  const double frac = static_cast<double>(agree) / static_cast<double>(total);
  return std::max(frac, 1.0 - frac);
}

}  // namespace

std::vector<EstimationPoint> HeatKernelEstimationPath(
    const Graph& sample, const std::vector<int>& labels,
    const std::vector<double>& times, const EstimationOptions& options) {
  IMPREG_CHECK(labels.size() == static_cast<std::size_t>(sample.NumNodes()));
  IMPREG_CHECK(options.trials >= 1);
  const NormalizedLaplacianOperator lap(sample);
  std::vector<EstimationPoint> path;
  for (double t : times) {
    IMPREG_CHECK(t > 0.0);
    EstimationPoint point;
    point.t = t;
    for (int trial = 0; trial < options.trials; ++trial) {
      Rng rng(options.seed + static_cast<std::uint64_t>(trial) * 7919);
      Vector x = RandomSignSeed(sample, rng);
      HeatKernelOptions hk;
      hk.t = t;
      x = HeatKernelNormalized(sample, x, hk);
      ProjectOut(lap.TrivialEigenvector(), x);
      if (Normalize(x) <= 0.0) continue;  // Degenerate; counts as chance.
      point.accuracy += SignAccuracy(x, labels);
      point.rayleigh += lap.RayleighQuotient(x);
    }
    point.accuracy /= options.trials;
    point.rayleigh /= options.trials;
    path.push_back(point);
  }
  return path;
}

EstimationPoint ExactEigenvectorEstimate(const Graph& sample,
                                         const std::vector<int>& labels,
                                         const EstimationOptions& options) {
  IMPREG_CHECK(labels.size() == static_cast<std::size_t>(sample.NumNodes()));
  const NormalizedLaplacianOperator lap(sample);
  LanczosOptions lanczos;
  lanczos.seed = options.seed;
  lanczos.max_iterations = 600;
  lanczos.deflate.push_back(lap.TrivialEigenvector());
  const LanczosResult eig = LanczosSmallest(lap, 1, lanczos);
  EstimationPoint point;
  point.t = 0.0;  // Sentinel: exact.
  point.accuracy = SignAccuracy(eig.eigenvectors.front(), labels);
  point.rayleigh = eig.eigenvalues.front();
  return point;
}

Graph SubsampleEdges(const Graph& population, double keep, Rng& rng) {
  IMPREG_CHECK(keep >= 0.0 && keep <= 1.0);
  GraphBuilder builder(population.NumNodes());
  for (NodeId u = 0; u < population.NumNodes(); ++u) {
    const auto heads = population.Heads(u);
    const auto weights = population.Weights(u);
    for (std::size_t i = 0; i < heads.size(); ++i) {
      if (heads[i] >= u && rng.NextBernoulli(keep)) {
        builder.AddEdge(u, heads[i], weights[i]);
      }
    }
  }
  return builder.Build();
}

}  // namespace impreg
