#ifndef IMPREG_REGULARIZATION_SDP_H_
#define IMPREG_REGULARIZATION_SDP_H_

#include "graph/graph.h"
#include "linalg/dense_matrix.h"

/// \file
/// Exact solvers for the paper's regularized SDP — Problem (5):
///
///   minimize   Tr(ℒ X) + (1/η) G(X)
///   subject to X ⪰ 0, Tr(X) = 1, X D^{1/2}1 = 0,
///
/// for the three regularizers G identified by Mahoney–Orecchia [32]:
///
///   kEntropy: G(X) = Σ λᵢ(X) log λᵢ(X)      (negative von Neumann
///             entropy) — optimum is the Gibbs density
///             X* ∝ exp(−η ℒ) restricted to the feasible subspace;
///   kLogDet:  G(X) = −log det(X) — optimum X* ∝ (ℒ + μI)^{-1} on the
///             subspace, μ the dual variable fixing Tr(X*) = 1;
///   kPNorm:   G(X) = (1/p)‖X‖ₚᵖ = (1/p) Σ λᵢ(X)ᵖ, p > 1 — optimum
///             X* with eigenvalues [η(μ − λᵢ)]₊^{1/(p−1)}.
///
/// All optima are spectral functions of ℒ, so the solver works directly
/// from a dense eigendecomposition: exact up to floating point, no
/// iterative SDP machinery. Requires a connected graph (so the feasible
/// subspace is exactly the complement of the single trivial
/// eigenvector).

namespace impreg {

/// The regularizer G(·) in Problem (5).
enum class Regularizer {
  kEntropy,
  kLogDet,
  kPNorm,
};

/// Exact solution of Problem (5).
struct RegularizedSdpSolution {
  /// The optimal density matrix X*.
  DenseMatrix x;
  /// The η it was solved at.
  double eta = 0.0;
  /// Dual variable μ (log-det and p-norm only; 0 for entropy).
  double mu = 0.0;
  /// G(X*).
  double regularizer_value = 0.0;
  /// Tr(ℒX*) + (1/η)·G(X*).
  double objective = 0.0;
  /// Tr(ℒX*) alone — the relaxed Rayleigh quotient.
  double rayleigh = 0.0;
};

/// Solves Problem (5) exactly. `p` is used only for kPNorm (must be
/// > 1). Requires η > 0 and a connected graph with ≥ 2 nodes.
RegularizedSdpSolution SolveRegularizedSdp(const Graph& g, Regularizer reg,
                                           double eta, double p = 2.0);

/// The *unregularized* SDP optimum of Problem (4): the rank-one density
/// v₂ v₂ᵀ (computed by dense eigendecomposition). Its Tr(ℒX) is λ₂.
RegularizedSdpSolution SolveUnregularizedSdp(const Graph& g);

/// Evaluates the regularized objective Tr(ℒX) + (1/η) G(X) at an
/// arbitrary feasible X (used to measure how suboptimal a candidate is).
double RegularizedObjective(const Graph& g, const DenseMatrix& x,
                            Regularizer reg, double eta, double p = 2.0);

}  // namespace impreg

#endif  // IMPREG_REGULARIZATION_SDP_H_
