#ifndef IMPREG_REGULARIZATION_ESTIMATORS_H_
#define IMPREG_REGULARIZATION_ESTIMATORS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "linalg/vector_ops.h"
#include "util/rng.h"

/// \file
/// Regularized Laplacian estimation, in the spirit of Perry–Mahoney
/// ("Regularized Laplacian estimation and fast eigenvector
/// approximation", NIPS 2011 — the paper's reference [36] and footnote
/// 17): when the observed graph is a noisy sample of a population
/// graph, running a *regularized* (diffusion-smoothed) eigenvector
/// computation on the sample is the statistically right thing to do —
/// the Bayesian interpretation of the implicit regularization of §3.1.
///
/// The estimators here operationalize that claim for the two-block
/// label-recovery task: estimate binary community labels from the sign
/// pattern of a (possibly regularized) leading nontrivial eigenvector.

namespace impreg {

/// One point of a regularization path.
struct EstimationPoint {
  /// Heat-kernel diffusion time used (the regularization strength η;
  /// +∞ ≙ the exact eigenvector, reported as t = 0 sentinel by the
  /// caller if desired).
  double t = 0.0;
  /// Mean label accuracy over the trials (in [0.5, 1] after the best
  /// label swap).
  double accuracy = 0.0;
  /// Mean Rayleigh quotient of the estimate with the *sample*
  /// Laplacian — the forward-error lens.
  double rayleigh = 0.0;
};

/// Options for the estimation path.
struct EstimationOptions {
  /// Random restarts averaged per t.
  int trials = 5;
  std::uint64_t seed = 0xe571ULL;
};

/// For each heat-kernel time t, smooth a random-sign start vector with
/// exp(−tℒ) on `sample`, project off the trivial direction, and
/// classify node u by sign; report accuracy against `labels`
/// (a 0/1 vector of length n; nodes with label <0 are ignored, e.g.
/// noise nodes). Larger t ⇒ closer to the exact eigenvector of the
/// sample ⇒ *less* regularization.
std::vector<EstimationPoint> HeatKernelEstimationPath(
    const Graph& sample, const std::vector<int>& labels,
    const std::vector<double>& times, const EstimationOptions& options = {});

/// The unregularized baseline: the exact v₂ of the sample (Lanczos),
/// evaluated with the same protocol.
EstimationPoint ExactEigenvectorEstimate(const Graph& sample,
                                         const std::vector<int>& labels,
                                         const EstimationOptions& options = {});

/// Observation model: keeps each edge of `population` independently
/// with probability `keep` (weights preserved). The Perry–Mahoney
/// "noisy sample of a population graph".
Graph SubsampleEdges(const Graph& population, double keep, Rng& rng);

}  // namespace impreg

#endif  // IMPREG_REGULARIZATION_ESTIMATORS_H_
