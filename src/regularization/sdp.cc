#include "regularization/sdp.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "graph/algorithms.h"
#include "linalg/graph_operators.h"
#include "util/check.h"

namespace impreg {

namespace {

// Eigendecomposition of ℒ with the trivial eigenpair identified.
struct RestrictedSpectrum {
  SymmetricEigen eigen;
  int trivial_index = 0;
};

RestrictedSpectrum ComputeSpectrum(const Graph& g) {
  IMPREG_CHECK_MSG(g.NumNodes() >= 2, "need at least two nodes");
  IMPREG_CHECK_MSG(IsConnected(g),
                   "regularized SDP solver requires a connected graph");
  RestrictedSpectrum out;
  out.eigen = SymmetricEigendecomposition(DenseNormalizedLaplacian(g));
  const Vector trivial = TrivialNormalizedEigenvector(g);
  double best = -1.0;
  for (int j = 0; j < out.eigen.eigenvectors.Cols(); ++j) {
    const double overlap = std::abs(Dot(out.eigen.eigenvectors.Column(j),
                                        trivial));
    if (overlap > best) {
      best = overlap;
      out.trivial_index = j;
    }
  }
  IMPREG_CHECK_MSG(best > 0.99,
                   "failed to identify the trivial eigenvector");
  return out;
}

// Builds X = Σ_{i ≠ trivial} weight[i] · v_i v_iᵀ.
DenseMatrix AssembleDensity(const RestrictedSpectrum& spectrum,
                            const Vector& weights) {
  const int n = static_cast<int>(spectrum.eigen.eigenvalues.size());
  DenseMatrix x(n, n);
  for (int k = 0; k < n; ++k) {
    if (k == spectrum.trivial_index || weights[k] == 0.0) continue;
    const Vector v = spectrum.eigen.eigenvectors.Column(k);
    for (int i = 0; i < n; ++i) {
      if (v[i] == 0.0) continue;
      const double wvi = weights[k] * v[i];
      for (int j = 0; j < n; ++j) x.At(i, j) += wvi * v[j];
    }
  }
  return x;
}

}  // namespace

RegularizedSdpSolution SolveRegularizedSdp(const Graph& g, Regularizer reg,
                                           double eta, double p) {
  IMPREG_CHECK_MSG(eta > 0.0, "eta must be positive");
  const RestrictedSpectrum spectrum = ComputeSpectrum(g);
  const int n = static_cast<int>(spectrum.eigen.eigenvalues.size());

  // Restricted eigenvalues (excluding the trivial one).
  std::vector<int> active;
  for (int k = 0; k < n; ++k) {
    if (k != spectrum.trivial_index) active.push_back(k);
  }
  const auto lambda = [&](int idx) {
    return spectrum.eigen.eigenvalues[active[idx]];
  };
  const int m = static_cast<int>(active.size());

  RegularizedSdpSolution solution;
  solution.eta = eta;
  Vector weights(n, 0.0);

  switch (reg) {
    case Regularizer::kEntropy: {
      // X* eigenvalues ∝ exp(−η λᵢ); subtract λ_min before
      // exponentiating for numerical stability.
      double lambda_min = lambda(0);
      for (int i = 1; i < m; ++i) lambda_min = std::min(lambda_min, lambda(i));
      double total = 0.0;
      for (int i = 0; i < m; ++i) {
        total += std::exp(-eta * (lambda(i) - lambda_min));
      }
      double entropy = 0.0;  // G = Σ x log x.
      for (int i = 0; i < m; ++i) {
        const double x = std::exp(-eta * (lambda(i) - lambda_min)) / total;
        weights[active[i]] = x;
        if (x > 0.0) entropy += x * std::log(x);
      }
      solution.regularizer_value = entropy;
      break;
    }
    case Regularizer::kLogDet: {
      // X* eigenvalues 1/(η(λᵢ + μ)); μ > −λ_min from Tr(X*) = 1,
      // where Σᵢ 1/(η(λᵢ + μ)) is strictly decreasing in μ.
      double lambda_min = lambda(0);
      for (int i = 1; i < m; ++i) lambda_min = std::min(lambda_min, lambda(i));
      auto trace_at = [&](double mu) {
        double total = 0.0;
        for (int i = 0; i < m; ++i) total += 1.0 / (eta * (lambda(i) + mu));
        return total;
      };
      double lo = -lambda_min + 1e-12;
      while (trace_at(lo) < 1.0) lo = -lambda_min + (lo + lambda_min) / 2.0;
      double hi = std::max(1.0, -lambda_min + 1.0);
      while (trace_at(hi) > 1.0) hi *= 2.0;
      for (int iter = 0; iter < 200; ++iter) {
        const double mid = 0.5 * (lo + hi);
        if (trace_at(mid) > 1.0) {
          lo = mid;
        } else {
          hi = mid;
        }
      }
      solution.mu = 0.5 * (lo + hi);
      double logdet = 0.0;
      for (int i = 0; i < m; ++i) {
        const double x = 1.0 / (eta * (lambda(i) + solution.mu));
        weights[active[i]] = x;
        logdet += std::log(x);
      }
      solution.regularizer_value = -logdet;
      break;
    }
    case Regularizer::kPNorm: {
      IMPREG_CHECK_MSG(p > 1.0, "p-norm regularizer requires p > 1");
      // X* eigenvalues [η(μ − λᵢ)]₊^{1/(p−1)}; Σᵢ of that is strictly
      // increasing in μ, root-find for Tr(X*) = 1.
      const double inv_pm1 = 1.0 / (p - 1.0);
      auto trace_at = [&](double mu) {
        double total = 0.0;
        for (int i = 0; i < m; ++i) {
          const double base = eta * (mu - lambda(i));
          if (base > 0.0) total += std::pow(base, inv_pm1);
        }
        return total;
      };
      double lambda_min = lambda(0), lambda_max = lambda(0);
      for (int i = 1; i < m; ++i) {
        lambda_min = std::min(lambda_min, lambda(i));
        lambda_max = std::max(lambda_max, lambda(i));
      }
      double lo = lambda_min;  // trace_at(lo) = 0 < 1.
      double hi = lambda_max + 1.0;
      while (trace_at(hi) < 1.0) hi *= 2.0;
      for (int iter = 0; iter < 200; ++iter) {
        const double mid = 0.5 * (lo + hi);
        if (trace_at(mid) < 1.0) {
          lo = mid;
        } else {
          hi = mid;
        }
      }
      solution.mu = 0.5 * (lo + hi);
      double pnorm = 0.0;
      for (int i = 0; i < m; ++i) {
        const double base = eta * (solution.mu - lambda(i));
        const double x = base > 0.0 ? std::pow(base, inv_pm1) : 0.0;
        weights[active[i]] = x;
        pnorm += std::pow(x, p);
      }
      solution.regularizer_value = pnorm / p;
      break;
    }
  }

  solution.x = AssembleDensity(spectrum, weights);
  solution.rayleigh = 0.0;
  for (int i = 0; i < m; ++i) {
    solution.rayleigh += weights[active[i]] * lambda(i);
  }
  solution.objective =
      solution.rayleigh + solution.regularizer_value / eta;
  return solution;
}

RegularizedSdpSolution SolveUnregularizedSdp(const Graph& g) {
  const RestrictedSpectrum spectrum = ComputeSpectrum(g);
  const int n = static_cast<int>(spectrum.eigen.eigenvalues.size());
  // Smallest non-trivial eigenvalue.
  int best = -1;
  for (int k = 0; k < n; ++k) {
    if (k == spectrum.trivial_index) continue;
    if (best < 0 ||
        spectrum.eigen.eigenvalues[k] < spectrum.eigen.eigenvalues[best]) {
      best = k;
    }
  }
  IMPREG_CHECK(best >= 0);
  Vector weights(n, 0.0);
  weights[best] = 1.0;

  RegularizedSdpSolution solution;
  solution.x = AssembleDensity(spectrum, weights);
  solution.rayleigh = spectrum.eigen.eigenvalues[best];
  solution.objective = solution.rayleigh;
  return solution;
}

double RegularizedObjective(const Graph& g, const DenseMatrix& x,
                            Regularizer reg, double eta, double p) {
  IMPREG_CHECK(eta > 0.0);
  IMPREG_CHECK(x.Rows() == g.NumNodes() && x.Cols() == g.NumNodes());
  const double rayleigh = TraceOfProduct(DenseNormalizedLaplacian(g), x);
  const SymmetricEigen eigen = SymmetricEigendecomposition(x);

  // X is feasible on the (n−1)-dimensional subspace orthogonal to
  // D^{1/2}1: exactly one eigenvalue is (numerically) zero. Drop the
  // smallest-magnitude one and evaluate G on the rest.
  int drop = 0;
  for (int i = 1; i < static_cast<int>(eigen.eigenvalues.size()); ++i) {
    if (std::abs(eigen.eigenvalues[i]) < std::abs(eigen.eigenvalues[drop])) {
      drop = i;
    }
  }
  double value = 0.0;
  for (int i = 0; i < static_cast<int>(eigen.eigenvalues.size()); ++i) {
    if (i == drop) continue;
    const double lam = eigen.eigenvalues[i];
    switch (reg) {
      case Regularizer::kEntropy:
        if (lam > 1e-300) value += lam * std::log(lam);
        break;
      case Regularizer::kLogDet:
        if (lam <= 0.0) return std::numeric_limits<double>::infinity();
        value -= std::log(lam);
        break;
      case Regularizer::kPNorm:
        if (lam > 0.0) value += std::pow(lam, p) / p;
        break;
    }
  }
  return rayleigh + value / eta;
}

}  // namespace impreg
