#ifndef IMPREG_GRAPH_STRUCTURE_H_
#define IMPREG_GRAPH_STRUCTURE_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

/// \file
/// Structural statistics of large networks — the measures used in the
/// paper's domain ([27, 28]) to characterize social/information graphs:
/// k-core decomposition (whiskers are the 1-core periphery, communities
/// live in deeper cores), triangle counts and clustering coefficients
/// (the local density the "niceness" intuition tracks). All are
/// unweighted (they count edges, not weights); self-loops are ignored.

namespace impreg {

/// Core number of every node (Matula–Beck peeling): the largest k such
/// that the node survives in the k-core. O(n + m).
std::vector<int> CoreNumbers(const Graph& g);

/// The maximum core number (0 for edgeless graphs).
int Degeneracy(const Graph& g);

/// Nodes of the k-core (possibly empty).
std::vector<NodeId> KCore(const Graph& g, int k);

/// Number of triangles through each node (forward/edge-iterator
/// algorithm, O(m^{3/2})).
std::vector<std::int64_t> TriangleCounts(const Graph& g);

/// Total number of triangles in the graph.
std::int64_t CountTriangles(const Graph& g);

/// Local clustering coefficient per node: triangles(u) /
/// (deg(u) choose 2); 0 for nodes of degree < 2. Degree counts
/// distinct non-loop neighbors.
std::vector<double> LocalClusteringCoefficients(const Graph& g);

/// Average of the local clustering coefficients over nodes with
/// degree ≥ 2 (the Watts–Strogatz "clustering coefficient").
double AverageClusteringCoefficient(const Graph& g);

/// Global (transitivity) coefficient: 3·triangles / open-or-closed
/// wedges; 0 if the graph has no wedges.
double GlobalClusteringCoefficient(const Graph& g);

}  // namespace impreg

#endif  // IMPREG_GRAPH_STRUCTURE_H_
