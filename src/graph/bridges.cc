#include "graph/bridges.h"

#include <algorithm>

#include "util/check.h"

namespace impreg {

std::vector<Bridge> FindBridges(const Graph& g) {
  const NodeId n = g.NumNodes();
  std::vector<int> disc(n, -1);
  std::vector<int> low(n, 0);
  std::vector<NodeId> parent(n, -1);
  std::vector<Bridge> bridges;
  int timer = 0;

  // Iterative DFS; each frame remembers its position in the adjacency.
  struct Frame {
    NodeId node;
    std::size_t next_arc;
  };
  std::vector<Frame> stack;
  for (NodeId root = 0; root < n; ++root) {
    if (disc[root] >= 0) continue;
    disc[root] = low[root] = timer++;
    stack.push_back({root, 0});
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const NodeId u = frame.node;
      const auto heads = g.Heads(u);
      if (frame.next_arc < heads.size()) {
        const NodeId v = heads[frame.next_arc];
        ++frame.next_arc;
        if (v == u || v == parent[u]) continue;  // Loop or tree edge back.
        if (disc[v] >= 0) {
          low[u] = std::min(low[u], disc[v]);  // Back edge.
        } else {
          parent[v] = u;
          disc[v] = low[v] = timer++;
          stack.push_back({v, 0});
        }
      } else {
        stack.pop_back();
        if (!stack.empty()) {
          const NodeId p = stack.back().node;
          low[p] = std::min(low[p], low[u]);
          if (low[u] > disc[p]) {
            bridges.push_back({std::min(p, u), std::max(p, u)});
          }
        }
      }
    }
  }
  return bridges;
}

std::vector<Whisker> FindWhiskers(const Graph& g) {
  const NodeId n = g.NumNodes();
  const std::vector<Bridge> bridges = FindBridges(g);
  // Mark bridge endpoints for O(1) lookup during the piece DFS.
  auto key = [](NodeId a, NodeId b) {
    if (a > b) std::swap(a, b);
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 32) |
           static_cast<std::uint32_t>(b);
  };
  std::vector<std::uint64_t> bridge_keys;
  bridge_keys.reserve(bridges.size());
  for (const Bridge& b : bridges) bridge_keys.push_back(key(b.u, b.v));
  std::sort(bridge_keys.begin(), bridge_keys.end());
  auto is_bridge = [&](NodeId a, NodeId b) {
    return std::binary_search(bridge_keys.begin(), bridge_keys.end(),
                              key(a, b));
  };

  // 2-edge-connected pieces: components of G minus its bridges.
  std::vector<int> piece(n, -1);
  int num_pieces = 0;
  std::vector<NodeId> stack;
  for (NodeId s = 0; s < n; ++s) {
    if (piece[s] >= 0) continue;
    piece[s] = num_pieces;
    stack.push_back(s);
    while (!stack.empty()) {
      const NodeId u = stack.back();
      stack.pop_back();
      for (const NodeId v : g.Heads(u)) {
        if (v == u || piece[v] >= 0) continue;
        if (is_bridge(u, v)) continue;
        piece[v] = num_pieces;
        stack.push_back(v);
      }
    }
    ++num_pieces;
  }

  // Piece volumes and the bridge forest over pieces.
  std::vector<double> piece_volume(num_pieces, 0.0);
  for (NodeId u = 0; u < n; ++u) piece_volume[piece[u]] += g.Degree(u);
  std::vector<std::vector<int>> piece_adj(num_pieces);
  for (const Bridge& b : bridges) {
    piece_adj[piece[b.u]].push_back(piece[b.v]);
    piece_adj[piece[b.v]].push_back(piece[b.u]);
  }

  // Per original connected component (= tree of the bridge forest),
  // root at the max-volume piece; each child subtree is a whisker.
  std::vector<char> visited(num_pieces, 0);
  std::vector<Whisker> whiskers;
  std::vector<int> tree;
  for (int start = 0; start < num_pieces; ++start) {
    if (visited[start]) continue;
    // Collect this bridge-forest tree.
    tree.clear();
    std::vector<int> frontier = {start};
    visited[start] = 1;
    while (!frontier.empty()) {
      const int p = frontier.back();
      frontier.pop_back();
      tree.push_back(p);
      for (int q : piece_adj[p]) {
        if (!visited[q]) {
          visited[q] = 1;
          frontier.push_back(q);
        }
      }
    }
    if (tree.size() <= 1) continue;  // No bridges here: no whiskers.
    const int core = *std::max_element(
        tree.begin(), tree.end(),
        [&](int a, int b) { return piece_volume[a] < piece_volume[b]; });
    // Each neighbor subtree of the core is one whisker. Label pieces
    // with their whisker index, then collect nodes in one pass.
    std::vector<int> whisker_of(num_pieces, -1);
    std::vector<char> seen(num_pieces, 0);
    seen[core] = 1;
    const int first_whisker = static_cast<int>(whiskers.size());
    for (int child : piece_adj[core]) {
      if (seen[child]) continue;  // Parallel bridge to same piece.
      const int index = static_cast<int>(whiskers.size());
      whiskers.emplace_back();
      std::vector<int> sub = {child};
      seen[child] = 1;
      while (!sub.empty()) {
        const int p = sub.back();
        sub.pop_back();
        whisker_of[p] = index;
        whiskers[index].volume += piece_volume[p];
        for (int q : piece_adj[p]) {
          if (!seen[q]) {
            seen[q] = 1;
            sub.push_back(q);
          }
        }
      }
    }
    if (static_cast<int>(whiskers.size()) > first_whisker) {
      for (NodeId u = 0; u < n; ++u) {
        const int w = whisker_of[piece[u]];
        if (w >= 0) whiskers[w].nodes.push_back(u);
      }
    }
  }
  std::sort(whiskers.begin(), whiskers.end(),
            [](const Whisker& a, const Whisker& b) {
              return a.volume > b.volume;
            });
  return whiskers;
}

}  // namespace impreg
