#include "graph/structure.h"

#include <algorithm>

#include "util/check.h"

namespace impreg {

namespace {

// Number of distinct non-loop neighbors.
int SimpleDegree(const Graph& g, NodeId u) {
  int degree = 0;
  for (const NodeId v : g.Heads(u)) {
    if (v != u) ++degree;
  }
  return degree;
}

}  // namespace

std::vector<int> CoreNumbers(const Graph& g) {
  const NodeId n = g.NumNodes();
  std::vector<int> degree(n);
  int max_degree = 0;
  for (NodeId u = 0; u < n; ++u) {
    degree[u] = SimpleDegree(g, u);
    max_degree = std::max(max_degree, degree[u]);
  }
  // Bucket sort nodes by degree (Matula–Beck).
  std::vector<int> bucket_start(max_degree + 2, 0);
  for (NodeId u = 0; u < n; ++u) ++bucket_start[degree[u] + 1];
  for (int d = 1; d <= max_degree + 1; ++d) {
    bucket_start[d] += bucket_start[d - 1];
  }
  std::vector<NodeId> order(n);
  std::vector<int> position(n);
  {
    std::vector<int> cursor(bucket_start.begin(), bucket_start.end() - 1);
    for (NodeId u = 0; u < n; ++u) {
      position[u] = cursor[degree[u]];
      order[position[u]] = u;
      ++cursor[degree[u]];
    }
  }
  std::vector<int> core(n, 0);
  std::vector<int> current = degree;
  for (NodeId i = 0; i < n; ++i) {
    const NodeId u = order[i];
    core[u] = current[u];
    for (const NodeId v : g.Heads(u)) {
      if (v == u || current[v] <= current[u]) continue;
      // Move v one bucket down: swap it with the first node of its
      // bucket, then shrink the bucket.
      const int dv = current[v];
      const int first_pos = bucket_start[dv];
      const NodeId first_node = order[first_pos];
      if (first_node != v) {
        std::swap(order[position[v]], order[first_pos]);
        std::swap(position[v], position[first_node]);
      }
      ++bucket_start[dv];
      --current[v];
    }
  }
  return core;
}

int Degeneracy(const Graph& g) {
  if (g.NumNodes() == 0) return 0;
  const std::vector<int> core = CoreNumbers(g);
  return *std::max_element(core.begin(), core.end());
}

std::vector<NodeId> KCore(const Graph& g, int k) {
  IMPREG_CHECK(k >= 0);
  const std::vector<int> core = CoreNumbers(g);
  std::vector<NodeId> nodes;
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    if (core[u] >= k) nodes.push_back(u);
  }
  return nodes;
}

std::vector<std::int64_t> TriangleCounts(const Graph& g) {
  const NodeId n = g.NumNodes();
  std::vector<std::int64_t> counts(n, 0);
  // Forward algorithm: order nodes by (degree, id); each triangle is
  // found exactly once at its lowest-ranked vertex pair.
  std::vector<int> rank(n);
  {
    std::vector<NodeId> order(n);
    for (NodeId u = 0; u < n; ++u) order[u] = u;
    std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
      const int da = SimpleDegree(g, a), db = SimpleDegree(g, b);
      return da != db ? da < db : a < b;
    });
    for (NodeId i = 0; i < n; ++i) rank[order[i]] = i;
  }
  std::vector<std::vector<NodeId>> forward(n);  // Higher-rank neighbors.
  for (NodeId u = 0; u < n; ++u) {
    for (const NodeId v : g.Heads(u)) {
      if (v != u && rank[v] > rank[u]) {
        forward[u].push_back(v);
      }
    }
    std::sort(forward[u].begin(), forward[u].end());
  }
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : forward[u]) {
      // Intersect forward[u] and forward[v].
      std::size_t i = 0, j = 0;
      while (i < forward[u].size() && j < forward[v].size()) {
        if (forward[u][i] < forward[v][j]) {
          ++i;
        } else if (forward[u][i] > forward[v][j]) {
          ++j;
        } else {
          const NodeId w = forward[u][i];
          ++counts[u];
          ++counts[v];
          ++counts[w];
          ++i;
          ++j;
        }
      }
    }
  }
  return counts;
}

std::int64_t CountTriangles(const Graph& g) {
  const std::vector<std::int64_t> counts = TriangleCounts(g);
  std::int64_t total = 0;
  for (std::int64_t c : counts) total += c;
  return total / 3;
}

std::vector<double> LocalClusteringCoefficients(const Graph& g) {
  const std::vector<std::int64_t> triangles = TriangleCounts(g);
  std::vector<double> coefficients(g.NumNodes(), 0.0);
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    const int d = SimpleDegree(g, u);
    if (d >= 2) {
      coefficients[u] = 2.0 * static_cast<double>(triangles[u]) /
                        (static_cast<double>(d) * (d - 1));
    }
  }
  return coefficients;
}

double AverageClusteringCoefficient(const Graph& g) {
  const std::vector<double> local = LocalClusteringCoefficients(g);
  double total = 0.0;
  std::int64_t counted = 0;
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    if (SimpleDegree(g, u) >= 2) {
      total += local[u];
      ++counted;
    }
  }
  return counted > 0 ? total / static_cast<double>(counted) : 0.0;
}

double GlobalClusteringCoefficient(const Graph& g) {
  const std::int64_t triangles = CountTriangles(g);
  std::int64_t wedges = 0;
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    const std::int64_t d = SimpleDegree(g, u);
    wedges += d * (d - 1) / 2;
  }
  return wedges > 0
             ? 3.0 * static_cast<double>(triangles) /
                   static_cast<double>(wedges)
             : 0.0;
}

}  // namespace impreg
