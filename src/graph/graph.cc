#include "graph/graph.h"

#include <algorithm>

#include "util/check.h"

namespace impreg {

double Graph::EdgeWeight(NodeId u, NodeId v) const {
  IMPREG_DCHECK(IsValidNode(u) && IsValidNode(v));
  const auto nbrs = Neighbors(u);
  auto it = std::lower_bound(
      nbrs.begin(), nbrs.end(), v,
      [](const Arc& arc, NodeId target) { return arc.head < target; });
  if (it != nbrs.end() && it->head == v) return it->weight;
  return 0.0;
}

GraphBuilder::GraphBuilder(NodeId num_nodes) : num_nodes_(num_nodes) {
  IMPREG_CHECK(num_nodes >= 0);
}

void GraphBuilder::AddEdge(NodeId u, NodeId v, double weight) {
  IMPREG_CHECK_MSG(u >= 0 && u < num_nodes_ && v >= 0 && v < num_nodes_,
                   "edge endpoint out of range");
  IMPREG_CHECK_MSG(weight > 0.0, "edge weights must be strictly positive");
  edges_.push_back({u, v, weight});
}

Graph GraphBuilder::Build() const {
  const NodeId n = num_nodes_;
  Graph g;
  g.offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  g.degrees_.assign(static_cast<std::size_t>(n), 0.0);

  // Count arcs per node (self-loops contribute one arc).
  for (const auto& e : edges_) {
    ++g.offsets_[e.u + 1];
    if (e.u != e.v) ++g.offsets_[e.v + 1];
  }
  for (NodeId u = 0; u < n; ++u) g.offsets_[u + 1] += g.offsets_[u];

  // Scatter arcs.
  g.arcs_.resize(static_cast<std::size_t>(g.offsets_[n]));
  std::vector<ArcIndex> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const auto& e : edges_) {
    g.arcs_[cursor[e.u]++] = {e.v, e.weight};
    if (e.u != e.v) g.arcs_[cursor[e.v]++] = {e.u, e.weight};
  }

  // Sort each adjacency list and merge parallel edges in place.
  ArcIndex write = 0;
  std::vector<ArcIndex> new_offsets(static_cast<std::size_t>(n) + 1, 0);
  for (NodeId u = 0; u < n; ++u) {
    const ArcIndex begin = g.offsets_[u];
    const ArcIndex end = g.offsets_[u + 1];
    std::sort(g.arcs_.begin() + begin, g.arcs_.begin() + end,
              [](const Arc& a, const Arc& b) { return a.head < b.head; });
    new_offsets[u] = write;
    for (ArcIndex i = begin; i < end;) {
      Arc merged = g.arcs_[i];
      ArcIndex j = i + 1;
      while (j < end && g.arcs_[j].head == merged.head) {
        merged.weight += g.arcs_[j].weight;
        ++j;
      }
      g.arcs_[write++] = merged;
      i = j;
    }
  }
  new_offsets[n] = write;
  g.arcs_.resize(static_cast<std::size_t>(write));
  g.arcs_.shrink_to_fit();
  g.offsets_ = std::move(new_offsets);

  // Degrees, edge count, volume.
  g.num_edges_ = 0;
  g.total_volume_ = 0.0;
  for (NodeId u = 0; u < n; ++u) {
    double deg = 0.0;
    for (const Arc& arc : g.Neighbors(u)) {
      deg += arc.weight;
      if (arc.head >= u) ++g.num_edges_;  // Count each undirected edge once.
    }
    g.degrees_[u] = deg;
    g.total_volume_ += deg;
  }
  return g;
}

}  // namespace impreg
