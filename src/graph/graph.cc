#include "graph/graph.h"

#include <algorithm>

#include "util/check.h"

namespace impreg {

double Graph::EdgeWeight(NodeId u, NodeId v) const {
  IMPREG_DCHECK(IsValidNode(u) && IsValidNode(v));
  const auto heads = Heads(u);
  if (!rows_sorted_) {
    // Relabeled rows keep their pre-permutation arc order; scan.
    for (std::size_t i = 0; i < heads.size(); ++i) {
      if (heads[i] == v) return weights_[offsets_[u] + i];
    }
    return 0.0;
  }
  auto it = std::lower_bound(heads.begin(), heads.end(), v);
  if (it != heads.end() && *it == v) {
    return weights_[offsets_[u] + (it - heads.begin())];
  }
  return 0.0;
}

GraphBuilder::GraphBuilder(NodeId num_nodes) : num_nodes_(num_nodes) {
  IMPREG_CHECK(num_nodes >= 0);
}

void GraphBuilder::AddEdge(NodeId u, NodeId v, double weight) {
  IMPREG_CHECK_MSG(u >= 0 && u < num_nodes_ && v >= 0 && v < num_nodes_,
                   "edge endpoint out of range");
  IMPREG_CHECK_MSG(weight > 0.0, "edge weights must be strictly positive");
  edges_.push_back({u, v, weight});
}

Graph GraphBuilder::Build() const {
  const NodeId n = num_nodes_;
  Graph g;
  g.offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  g.degrees_.assign(static_cast<std::size_t>(n), 0.0);

  // Count arcs per node (self-loops contribute one arc).
  for (const auto& e : edges_) {
    ++g.offsets_[e.u + 1];
    if (e.u != e.v) ++g.offsets_[e.v + 1];
  }
  for (NodeId u = 0; u < n; ++u) g.offsets_[u + 1] += g.offsets_[u];

  // Scatter arcs into the structure-of-arrays storage.
  g.heads_.resize(static_cast<std::size_t>(g.offsets_[n]));
  g.weights_.resize(static_cast<std::size_t>(g.offsets_[n]));
  std::vector<ArcIndex> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const auto& e : edges_) {
    g.heads_[cursor[e.u]] = e.v;
    g.weights_[cursor[e.u]++] = e.weight;
    if (e.u != e.v) {
      g.heads_[cursor[e.v]] = e.u;
      g.weights_[cursor[e.v]++] = e.weight;
    }
  }

  // Sort each adjacency list and merge parallel edges in place. Rows are
  // gathered into an (head, weight) scratch row so the sort permutes
  // both arrays consistently, then written back compacted.
  ArcIndex write = 0;
  std::vector<ArcIndex> new_offsets(static_cast<std::size_t>(n) + 1, 0);
  std::vector<Arc> row;
  for (NodeId u = 0; u < n; ++u) {
    const ArcIndex begin = g.offsets_[u];
    const ArcIndex end = g.offsets_[u + 1];
    row.clear();
    row.reserve(static_cast<std::size_t>(end - begin));
    for (ArcIndex i = begin; i < end; ++i) {
      row.push_back({g.heads_[i], g.weights_[i]});
    }
    std::sort(row.begin(), row.end(),
              [](const Arc& a, const Arc& b) { return a.head < b.head; });
    new_offsets[u] = write;
    for (std::size_t i = 0; i < row.size();) {
      Arc merged = row[i];
      std::size_t j = i + 1;
      while (j < row.size() && row[j].head == merged.head) {
        merged.weight += row[j].weight;
        ++j;
      }
      g.heads_[write] = merged.head;
      g.weights_[write++] = merged.weight;
      i = j;
    }
  }
  new_offsets[n] = write;
  g.heads_.resize(static_cast<std::size_t>(write));
  g.heads_.shrink_to_fit();
  g.weights_.resize(static_cast<std::size_t>(write));
  g.weights_.shrink_to_fit();
  g.offsets_ = std::move(new_offsets);

  // Degrees, edge count, volume.
  g.num_edges_ = 0;
  g.total_volume_ = 0.0;
  for (NodeId u = 0; u < n; ++u) {
    double deg = 0.0;
    const auto heads = g.Heads(u);
    const auto weights = g.Weights(u);
    for (std::size_t i = 0; i < heads.size(); ++i) {
      deg += weights[i];
      if (heads[i] >= u) ++g.num_edges_;  // Count each undirected edge once.
    }
    g.degrees_[u] = deg;
    g.total_volume_ += deg;
  }
  return g;
}

}  // namespace impreg
