#include "graph/random_graphs.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>

#include "util/check.h"

namespace impreg {

namespace {

std::uint64_t PairKey(NodeId u, NodeId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(u)) << 32) |
         static_cast<std::uint32_t>(v);
}

// Geometric skip length for success probability p in (0, 1): the number
// of failures before the next success.
std::int64_t GeometricSkip(double p, Rng& rng) {
  const double r = rng.NextDouble();
  if (r == 0.0) return 0;
  return static_cast<std::int64_t>(std::floor(std::log(r) / std::log1p(-p)));
}

}  // namespace

Graph ErdosRenyi(NodeId n, double p, Rng& rng) {
  IMPREG_CHECK(n >= 0);
  IMPREG_CHECK(p >= 0.0 && p <= 1.0);
  GraphBuilder b(n);
  if (p > 0.0 && n > 1) {
    if (p >= 1.0) {
      for (NodeId u = 0; u < n; ++u) {
        for (NodeId v = u + 1; v < n; ++v) b.AddEdge(u, v);
      }
    } else {
      // Batagelj–Brandes skipping over the lexicographic pair order.
      std::int64_t v = 1;
      std::int64_t w = -1;
      while (v < n) {
        w += 1 + GeometricSkip(p, rng);
        while (w >= v && v < n) {
          w -= v;
          ++v;
        }
        if (v < n) {
          b.AddEdge(static_cast<NodeId>(w), static_cast<NodeId>(v));
        }
      }
    }
  }
  return b.Build();
}

Graph GnmRandom(NodeId n, std::int64_t m, Rng& rng) {
  IMPREG_CHECK(n >= 0 && m >= 0);
  const std::int64_t max_edges =
      static_cast<std::int64_t>(n) * (n - 1) / 2;
  IMPREG_CHECK_MSG(m <= max_edges, "too many edges requested");
  GraphBuilder b(n);
  std::unordered_set<std::uint64_t> chosen;
  chosen.reserve(static_cast<std::size_t>(m) * 2);
  while (static_cast<std::int64_t>(chosen.size()) < m) {
    const NodeId u = static_cast<NodeId>(rng.NextBounded(n));
    const NodeId v = static_cast<NodeId>(rng.NextBounded(n));
    if (u == v) continue;
    if (chosen.insert(PairKey(u, v)).second) b.AddEdge(u, v);
  }
  return b.Build();
}

Graph ChungLu(const std::vector<double>& weights, Rng& rng) {
  const NodeId n = static_cast<NodeId>(weights.size());
  double total = 0.0;
  for (double w : weights) {
    IMPREG_CHECK_MSG(w >= 0.0, "Chung–Lu weights must be nonnegative");
    total += w;
  }
  GraphBuilder b(n);
  if (n <= 1 || total <= 0.0) return b.Build();

  // Sort by weight descending so p is monotonically non-increasing in j,
  // as the Miller–Hagberg skip algorithm requires.
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](int a, int c) { return weights[a] > weights[c]; });

  for (NodeId i = 0; i + 1 < n; ++i) {
    const double wi = weights[order[i]];
    if (wi <= 0.0) break;
    std::int64_t j = i + 1;
    double p = std::min(wi * weights[order[j]] / total, 1.0);
    while (j < n && p > 0.0) {
      if (p < 1.0) j += GeometricSkip(p, rng);
      if (j < n) {
        const double q = std::min(wi * weights[order[j]] / total, 1.0);
        if (rng.NextDouble() < q / p) {
          b.AddEdge(static_cast<NodeId>(order[i]),
                    static_cast<NodeId>(order[j]));
        }
        p = q;
        ++j;
      }
    }
  }
  return b.Build();
}

std::vector<double> PowerLawWeights(NodeId n, double gamma,
                                    double avg_degree) {
  IMPREG_CHECK(n >= 1);
  IMPREG_CHECK_MSG(gamma > 2.0, "power-law exponent must exceed 2");
  IMPREG_CHECK(avg_degree > 0.0);
  std::vector<double> weights(n);
  const double exponent = -1.0 / (gamma - 1.0);
  // Offset i0 keeps the maximum expected degree O(n^{1/(γ−1)}) and the
  // distribution tail ∝ w^{−γ}.
  const double i0 = 10.0;
  double sum = 0.0;
  for (NodeId i = 0; i < n; ++i) {
    weights[i] = std::pow(static_cast<double>(i) + i0, exponent);
    sum += weights[i];
  }
  const double scale = avg_degree * static_cast<double>(n) / sum;
  for (double& w : weights) w *= scale;
  return weights;
}

Graph BarabasiAlbert(NodeId n, int m_attach, Rng& rng) {
  IMPREG_CHECK(m_attach >= 1);
  IMPREG_CHECK(n > m_attach);
  GraphBuilder b(n);
  // Degree-proportional sampling via the repeated-endpoints list.
  std::vector<NodeId> endpoints;
  endpoints.reserve(static_cast<std::size_t>(2) * n * m_attach);
  // Seed: a star on m_attach+1 nodes (connected, every node has degree).
  for (NodeId v = 1; v <= m_attach; ++v) {
    b.AddEdge(0, v);
    endpoints.push_back(0);
    endpoints.push_back(v);
  }
  std::vector<NodeId> targets;
  for (NodeId u = m_attach + 1; u < n; ++u) {
    targets.clear();
    while (static_cast<int>(targets.size()) < m_attach) {
      const NodeId t = endpoints[rng.NextBounded(endpoints.size())];
      if (std::find(targets.begin(), targets.end(), t) == targets.end()) {
        targets.push_back(t);
      }
    }
    for (NodeId t : targets) {
      b.AddEdge(u, t);
      endpoints.push_back(u);
      endpoints.push_back(t);
    }
  }
  return b.Build();
}

Graph WattsStrogatz(NodeId n, int k, double beta, Rng& rng) {
  IMPREG_CHECK(k >= 2 && k % 2 == 0);
  IMPREG_CHECK(n > k);
  IMPREG_CHECK(beta >= 0.0 && beta <= 1.0);
  std::unordered_set<std::uint64_t> edges;
  edges.reserve(static_cast<std::size_t>(n) * k);
  for (NodeId u = 0; u < n; ++u) {
    for (int off = 1; off <= k / 2; ++off) {
      edges.insert(PairKey(u, (u + off) % n));
    }
  }
  // Rewire the "right-going" lattice edges of each node.
  for (NodeId u = 0; u < n; ++u) {
    for (int off = 1; off <= k / 2; ++off) {
      const NodeId v = (u + off) % n;
      if (!edges.count(PairKey(u, v))) continue;  // Already rewired away.
      if (!rng.NextBernoulli(beta)) continue;
      // Try a few times to find a fresh endpoint; keep the edge if the
      // node is saturated.
      for (int attempt = 0; attempt < 32; ++attempt) {
        const NodeId w = static_cast<NodeId>(rng.NextBounded(n));
        if (w == u || edges.count(PairKey(u, w))) continue;
        edges.erase(PairKey(u, v));
        edges.insert(PairKey(u, w));
        break;
      }
    }
  }
  GraphBuilder b(n);
  for (std::uint64_t key : edges) {
    b.AddEdge(static_cast<NodeId>(key >> 32),
              static_cast<NodeId>(key & 0xffffffffULL));
  }
  return b.Build();
}

Graph RandomRegular(NodeId n, int d, Rng& rng) {
  IMPREG_CHECK(d >= 1 && d < n);
  IMPREG_CHECK_MSG((static_cast<std::int64_t>(n) * d) % 2 == 0,
                   "n*d must be even");
  // Pairing model followed by double-edge-swap repair of loops and
  // parallel edges — practical for any d where rejection would stall.
  std::vector<NodeId> stubs(static_cast<std::size_t>(n) * d);
  for (NodeId u = 0; u < n; ++u) {
    for (int i = 0; i < d; ++i) stubs[static_cast<std::size_t>(u) * d + i] = u;
  }
  rng.Shuffle(stubs);
  const std::size_t m = stubs.size() / 2;
  std::vector<std::pair<NodeId, NodeId>> pairs(m);
  for (std::size_t i = 0; i < m; ++i) {
    pairs[i] = {stubs[2 * i], stubs[2 * i + 1]};
  }
  // Repair loop: recompute the multiset of conflicts and swap them out.
  for (int round = 0; round < 200; ++round) {
    std::unordered_set<std::uint64_t> seen;
    seen.reserve(m * 2);
    std::vector<std::size_t> bad;
    for (std::size_t i = 0; i < m; ++i) {
      const auto [u, v] = pairs[i];
      if (u == v || !seen.insert(PairKey(u, v)).second) bad.push_back(i);
    }
    if (bad.empty()) break;
    IMPREG_CHECK_MSG(round < 199, "random regular repair did not converge");
    for (std::size_t i : bad) {
      // Swap with a uniformly random partner pair.
      const std::size_t j = rng.NextBounded(m);
      if (j == i) continue;
      if (rng.NextBernoulli(0.5)) std::swap(pairs[j].first, pairs[j].second);
      std::swap(pairs[i].second, pairs[j].second);
    }
  }
  GraphBuilder b(n);
  for (const auto& [u, v] : pairs) b.AddEdge(u, v);
  return b.Build();
}

Graph PlantedPartition(NodeId blocks, NodeId block_size, double p_in,
                       double p_out, Rng& rng) {
  IMPREG_CHECK(blocks >= 1 && block_size >= 1);
  IMPREG_CHECK(p_in >= 0.0 && p_in <= 1.0 && p_out >= 0.0 && p_out <= 1.0);
  const NodeId n = blocks * block_size;
  GraphBuilder b(n);
  // Within-block edges.
  for (NodeId blk = 0; blk < blocks; ++blk) {
    const NodeId base = blk * block_size;
    if (p_in <= 0.0) continue;
    for (NodeId i = 0; i < block_size; ++i) {
      for (NodeId j = i + 1; j < block_size; ++j) {
        if (rng.NextBernoulli(p_in)) b.AddEdge(base + i, base + j);
      }
    }
  }
  // Across-block edges (geometric skipping over the bipartite pair grid).
  if (p_out > 0.0) {
    for (NodeId a = 0; a < blocks; ++a) {
      for (NodeId c = a + 1; c < blocks; ++c) {
        const NodeId base_a = a * block_size;
        const NodeId base_c = c * block_size;
        const std::int64_t total =
            static_cast<std::int64_t>(block_size) * block_size;
        std::int64_t idx = -1;
        while (true) {
          idx += 1 + (p_out < 1.0 ? GeometricSkip(p_out, rng) : 0);
          if (idx >= total) break;
          b.AddEdge(base_a + static_cast<NodeId>(idx / block_size),
                    base_c + static_cast<NodeId>(idx % block_size));
        }
      }
    }
  }
  return b.Build();
}

Graph ForestFire(NodeId n, double p, Rng& rng) {
  IMPREG_CHECK(n >= 1);
  IMPREG_CHECK(p >= 0.0 && p < 1.0);
  // Adjacency grown incrementally (needed to burn through it).
  std::vector<std::vector<NodeId>> adjacency(n);
  GraphBuilder builder(n);
  std::vector<int> last_burned(n, -1);  // Visit stamp per arrival.
  auto link = [&](NodeId a, NodeId b) {
    builder.AddEdge(a, b);
    adjacency[a].push_back(b);
    adjacency[b].push_back(a);
  };
  for (NodeId v = 1; v < n; ++v) {
    const NodeId ambassador = static_cast<NodeId>(rng.NextBounded(v));
    // Burn outward from the ambassador.
    std::vector<NodeId> frontier = {ambassador};
    last_burned[ambassador] = v;
    std::vector<NodeId> burned = {ambassador};
    while (!frontier.empty()) {
      const NodeId u = frontier.back();
      frontier.pop_back();
      // Burn Geometric(1-p) unburned neighbors of u (mean p/(1-p)).
      std::int64_t budget = 0;
      while (rng.NextBernoulli(p)) ++budget;
      if (budget == 0) continue;
      // Deterministic order with a random rotation, to avoid bias.
      const auto& nbrs = adjacency[u];
      if (nbrs.empty()) continue;
      const std::size_t offset = rng.NextBounded(nbrs.size());
      for (std::size_t i = 0; i < nbrs.size() && budget > 0; ++i) {
        const NodeId w = nbrs[(i + offset) % nbrs.size()];
        if (last_burned[w] == v) continue;
        last_burned[w] = v;
        burned.push_back(w);
        frontier.push_back(w);
        --budget;
      }
    }
    for (NodeId w : burned) link(v, w);
  }
  return builder.Build();
}

}  // namespace impreg
