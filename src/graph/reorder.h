#ifndef IMPREG_GRAPH_REORDER_H_
#define IMPREG_GRAPH_REORDER_H_

#include <string>
#include <vector>

#include "core/solve_status.h"
#include "graph/graph.h"

/// \file
/// Deterministic cache-aware node relabeling.
///
/// The CSR gather `x[heads[a]]` is the one irregular access in the hot
/// kernels; on graphs whose labels are arbitrary it touches cache lines
/// all over x. Relabeling so that topological neighbors get nearby
/// labels (BFS / reverse-Cuthill–McKee / degree-sort) turns those
/// gathers into near-streams. Everything here is deterministic — the
/// permutation is a pure function of the graph and the method, never of
/// timing or thread count — and results map back through the inverse
/// permutation *bit-identically*:
///
///  - `ApplyNodePermutation` keeps every row's original arc order (rows
///    become unsorted; see Graph::RowsSorted), so a row's canonical
///    reduction tree (simd.h) sums the same values in the same order
///    under either labeling — SpMV/SpMM outputs are bitwise
///    label-invariant.
///  - Strongly-local solvers that scan nodes in ascending-id order seed
///    their worklists through `ReorderedGraph::perm()` so the processing
///    order is label-invariant too (see PushOptions::queue_seed_order).
///  - Sparse solvers that iterate hash maps (hk-relax, Nibble) stay
///    deterministic run-to-run but are *not* bitwise label-invariant;
///    drivers that need bitwise equality sweep on the original graph.
///
/// The locality win is measured by `AvgNeighborLabelDistance` and
/// exported through the metrics registry as
/// `graph.reorder.locality.{original,reordered}`.

namespace impreg {

/// How to compute the relabeling permutation.
enum class ReorderMethod {
  kIdentity = 0,    ///< No reordering (wrapper passes through).
  kBfs = 1,         ///< BFS order from a canonical pseudo-peripheral seed.
  kRcm = 2,         ///< Reverse Cuthill–McKee (BFS with degree-sorted
                    ///< neighbor visits, component order reversed).
  kDegreeSort = 3,  ///< Stable sort by (out-degree, id).
};

/// Short stable name: "identity", "bfs", "rcm", "degree-sort".
const char* ReorderMethodName(ReorderMethod method);

/// Parses a method name; returns false (leaving *out untouched) on an
/// unknown name.
bool ReorderMethodFromName(const std::string& name, ReorderMethod* out);

/// Computes the old→new relabeling for `method`. Deterministic: BFS/RCM
/// process components in order of their smallest node id, start each
/// from a canonical pseudo-peripheral node (double-BFS sweep seeded at
/// the component's min-(degree, id) node, ties broken by smallest id),
/// and visit neighbors in adjacency order (BFS) or (out-degree, id)
/// order (RCM). Every node appears exactly once, isolated nodes
/// included.
std::vector<NodeId> ComputeReorderPermutation(const Graph& g,
                                              ReorderMethod method);

/// True iff `perm` has size n and is a bijection on [0, n).
bool IsPermutation(const std::vector<NodeId>& perm, NodeId n);

/// inverse[perm[u]] = u. Precondition: perm is a permutation.
std::vector<NodeId> InvertPermutation(const std::vector<NodeId>& perm);

/// Relabels nodes: new graph's node perm[u] is old node u. Rows keep
/// their original arc order (only head labels change), so per-row
/// reduction trees are bitwise label-invariant; the result has
/// RowsSorted() == false. Degrees, edge count and total volume are
/// copied, not recomputed — bitwise equal under relabeling.
/// Precondition (checked): perm is a permutation of [0, n).
Graph ApplyNodePermutation(const Graph& g, const std::vector<NodeId>& perm);

/// Mean |u − heads[a]| over all arcs (0 for arcless graphs) — the
/// locality figure of merit a relabeling tries to shrink.
double AvgNeighborLabelDistance(const Graph& g);

/// A graph plus the permutation that produced it: solvers run on
/// `graph()`, callers see original labels via the mapping helpers.
///
/// Construction computes the permutation, passes it through the
/// `graph/reorder_permutation` fault site, and *validates* it (integral
/// bijection on [0, n)) before applying: a corrupted permutation is
/// rejected — the wrapper falls back to the identity (active() ==
/// false, diagnostics().status == kNonFinite) and serves the original
/// graph rather than silently mislabeled results.
///
/// Holds a pointer to `original`, which must outlive the wrapper.
class ReorderedGraph {
 public:
  explicit ReorderedGraph(const Graph& original,
                          ReorderMethod method = ReorderMethod::kRcm);

  /// False for kIdentity or when validation rejected the permutation:
  /// graph() is then the original and every mapping is the identity.
  bool active() const { return active_; }
  ReorderMethod method() const { return method_; }

  /// The graph solvers should run on: reordered when active, else the
  /// original.
  const Graph& graph() const { return active_ ? reordered_ : *original_; }
  const Graph& original() const { return *original_; }

  /// old→new and new→old label maps (identity when inactive).
  const std::vector<NodeId>& perm() const { return perm_; }
  const std::vector<NodeId>& inverse() const { return inverse_; }

  NodeId ToReordered(NodeId u) const { return perm_[u]; }
  NodeId ToOriginal(NodeId u) const { return inverse_[u]; }

  /// Scatter x (original labels) into reordered labels:
  /// out[perm[u]] = x[u]. Pure data movement — bitwise.
  std::vector<double> ToReorderedVector(const std::vector<double>& x) const;

  /// Gather back: out[u] = x[perm[u]]. Inverse of ToReorderedVector.
  std::vector<double> ToOriginalVector(const std::vector<double>& x) const;

  /// Maps node ids back to original labels, preserving order.
  std::vector<NodeId> ToOriginalNodes(const std::vector<NodeId>& nodes) const;

  /// kConverged when the permutation was applied (or identity was
  /// requested); kNonFinite when a corrupted permutation was rejected.
  const SolverDiagnostics& diagnostics() const { return diagnostics_; }

  /// AvgNeighborLabelDistance of the original / reordered labeling
  /// (equal when inactive).
  double locality_original() const { return locality_original_; }
  double locality_reordered() const { return locality_reordered_; }

 private:
  const Graph* original_;
  Graph reordered_;
  ReorderMethod method_;
  bool active_ = false;
  std::vector<NodeId> perm_;
  std::vector<NodeId> inverse_;
  SolverDiagnostics diagnostics_;
  double locality_original_ = 0.0;
  double locality_reordered_ = 0.0;
};

}  // namespace impreg

#endif  // IMPREG_GRAPH_REORDER_H_
