#include "graph/reorder.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <deque>

#include "core/metrics.h"
#include "util/check.h"
#include "util/fault.h"

namespace impreg {

namespace {

/// Structural (arc-count) degree used for all ordering decisions:
/// integer, so tie-breaks are exact and platform-independent.
ArcIndex StructDegree(const Graph& g, NodeId u) { return g.OutDegree(u); }

/// BFS from `source` over not-yet-visited nodes. Appends visited nodes
/// to `order` in visit order, records their BFS depth in `depth`
/// (indexed by node), marks them in `visited`, and returns the
/// eccentricity (max depth reached). Neighbor visit order within a row
/// is `neighbor_order(u)`: adjacency order for plain BFS, degree-sorted
/// for RCM — either way a pure function of the graph.
template <class NeighborOrder>
NodeId BfsComponent(const Graph& g, NodeId source,
                    std::vector<std::uint8_t>& visited,
                    std::vector<NodeId>& order, std::vector<NodeId>& depth,
                    const NeighborOrder& neighbor_order) {
  NodeId ecc = 0;
  std::deque<NodeId> queue;
  queue.push_back(source);
  visited[source] = 1;
  depth[source] = 0;
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    order.push_back(u);
    ecc = std::max(ecc, depth[u]);
    for (const NodeId v : neighbor_order(u)) {
      if (!visited[v]) {
        visited[v] = 1;
        depth[v] = depth[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return ecc;
}

/// Canonical pseudo-peripheral node of the component containing
/// `members` (all same component): start from the min-(degree, id)
/// member and walk to a deepest min-(degree, id) node until the
/// eccentricity stops growing. Deterministic; bounded sweeps. The
/// scratch arrays are shared across components (components are node-
/// disjoint, so entries touched here are never read by another
/// component) — keeps the whole pass O(n + m·sweeps), isolated-node
/// soup included.
NodeId PseudoPeripheral(const Graph& g, const std::vector<NodeId>& members,
                        std::vector<std::uint8_t>& visited,
                        std::vector<NodeId>& depth) {
  const auto adjacency = [&](NodeId u) {
    const auto heads = g.Heads(u);
    return std::vector<NodeId>(heads.begin(), heads.end());
  };
  NodeId best = members[0];
  for (const NodeId u : members) {
    if (StructDegree(g, u) < StructDegree(g, best) ||
        (StructDegree(g, u) == StructDegree(g, best) && u < best)) {
      best = u;
    }
  }
  if (members.size() <= 2) return best;
  std::vector<NodeId> order;
  order.reserve(members.size());
  NodeId ecc = -1;
  for (int sweep = 0; sweep < 8; ++sweep) {
    for (const NodeId u : members) visited[u] = 0;
    order.clear();
    const NodeId new_ecc =
        BfsComponent(g, best, visited, order, depth, adjacency);
    if (new_ecc <= ecc) break;
    ecc = new_ecc;
    // Deepest level, min (degree, id).
    NodeId candidate = -1;
    for (const NodeId u : order) {
      if (depth[u] != ecc) continue;
      if (candidate < 0 || StructDegree(g, u) < StructDegree(g, candidate) ||
          (StructDegree(g, u) == StructDegree(g, candidate) &&
           u < candidate)) {
        candidate = u;
      }
    }
    best = candidate;
  }
  return best;
}

}  // namespace

const char* ReorderMethodName(ReorderMethod method) {
  switch (method) {
    case ReorderMethod::kIdentity:
      return "identity";
    case ReorderMethod::kBfs:
      return "bfs";
    case ReorderMethod::kRcm:
      return "rcm";
    case ReorderMethod::kDegreeSort:
      return "degree-sort";
  }
  return "unknown";
}

bool ReorderMethodFromName(const std::string& name, ReorderMethod* out) {
  for (const ReorderMethod m :
       {ReorderMethod::kIdentity, ReorderMethod::kBfs, ReorderMethod::kRcm,
        ReorderMethod::kDegreeSort}) {
    if (name == ReorderMethodName(m)) {
      *out = m;
      return true;
    }
  }
  return false;
}

std::vector<NodeId> ComputeReorderPermutation(const Graph& g,
                                              ReorderMethod method) {
  const NodeId n = g.NumNodes();
  std::vector<NodeId> order;  // order[new label] = old node
  order.reserve(n);

  switch (method) {
    case ReorderMethod::kIdentity: {
      for (NodeId u = 0; u < n; ++u) order.push_back(u);
      break;
    }
    case ReorderMethod::kDegreeSort: {
      for (NodeId u = 0; u < n; ++u) order.push_back(u);
      std::stable_sort(order.begin(), order.end(),
                       [&](NodeId a, NodeId b) {
                         const ArcIndex da = StructDegree(g, a);
                         const ArcIndex db = StructDegree(g, b);
                         return da != db ? da < db : a < b;
                       });
      break;
    }
    case ReorderMethod::kBfs:
    case ReorderMethod::kRcm: {
      const bool rcm = method == ReorderMethod::kRcm;
      std::vector<std::uint8_t> visited(n, 0);
      std::vector<NodeId> depth(n, 0);
      // Shared scratch for component discovery and the peripheral
      // sweeps; components are disjoint so reuse is safe.
      std::vector<std::uint8_t> component_scratch(n, 0);
      std::vector<std::uint8_t> peripheral_scratch(n, 0);
      std::vector<NodeId> scratch_depth(n, 0);
      std::vector<NodeId> members;
      const auto adjacency = [&](NodeId u) {
        const auto heads = g.Heads(u);
        return std::vector<NodeId>(heads.begin(), heads.end());
      };
      // Components in order of their smallest node id; isolated nodes
      // are one-node components and keep their relative order.
      for (NodeId rep = 0; rep < n; ++rep) {
        if (visited[rep]) continue;
        members.clear();
        BfsComponent(g, rep, component_scratch, members, scratch_depth,
                     adjacency);
        const NodeId source =
            PseudoPeripheral(g, members, peripheral_scratch, scratch_depth);
        const std::size_t component_begin = order.size();
        if (rcm) {
          const auto degree_sorted = [&](NodeId u) {
            const auto heads = g.Heads(u);
            std::vector<NodeId> sorted(heads.begin(), heads.end());
            std::stable_sort(sorted.begin(), sorted.end(),
                             [&](NodeId a, NodeId b) {
                               const ArcIndex da = StructDegree(g, a);
                               const ArcIndex db = StructDegree(g, b);
                               return da != db ? da < db : a < b;
                             });
            return sorted;
          };
          BfsComponent(g, source, visited, order, depth, degree_sorted);
          // Reverse within the component: Cuthill–McKee → RCM.
          std::reverse(order.begin() + component_begin, order.end());
        } else {
          BfsComponent(g, source, visited, order, depth, adjacency);
        }
      }
      break;
    }
  }

  std::vector<NodeId> perm(n);
  for (NodeId new_label = 0; new_label < n; ++new_label) {
    perm[order[new_label]] = new_label;
  }
  return perm;
}

bool IsPermutation(const std::vector<NodeId>& perm, NodeId n) {
  if (static_cast<NodeId>(perm.size()) != n) return false;
  std::vector<std::uint8_t> seen(n, 0);
  for (const NodeId p : perm) {
    if (p < 0 || p >= n || seen[p]) return false;
    seen[p] = 1;
  }
  return true;
}

std::vector<NodeId> InvertPermutation(const std::vector<NodeId>& perm) {
  std::vector<NodeId> inverse(perm.size());
  for (NodeId u = 0; u < static_cast<NodeId>(perm.size()); ++u) {
    inverse[perm[u]] = u;
  }
  return inverse;
}

Graph ApplyNodePermutation(const Graph& g, const std::vector<NodeId>& perm) {
  const NodeId n = g.NumNodes();
  IMPREG_CHECK_MSG(IsPermutation(perm, n),
                   "ApplyNodePermutation: not a permutation of [0, n)");
  const std::vector<NodeId> inverse = InvertPermutation(perm);
  Graph out;
  out.offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  out.degrees_.assign(static_cast<std::size_t>(n), 0.0);
  out.heads_.resize(static_cast<std::size_t>(g.NumArcs()));
  out.weights_.resize(static_cast<std::size_t>(g.NumArcs()));
  for (NodeId nu = 0; nu < n; ++nu) {
    const NodeId ou = inverse[nu];
    out.offsets_[nu + 1] = out.offsets_[nu] + g.OutDegree(ou);
    out.degrees_[nu] = g.Degree(ou);
  }
  for (NodeId nu = 0; nu < n; ++nu) {
    const NodeId ou = inverse[nu];
    const auto heads = g.Heads(ou);
    const auto weights = g.Weights(ou);
    ArcIndex write = out.offsets_[nu];
    // Original arc order, relabeled heads: the row's reduction tree
    // sums the same doubles in the same order under either labeling.
    for (std::size_t i = 0; i < heads.size(); ++i) {
      out.heads_[write] = perm[heads[i]];
      out.weights_[write++] = weights[i];
    }
  }
  out.num_edges_ = g.NumEdges();
  out.total_volume_ = g.TotalVolume();
  out.rows_sorted_ = false;
  return out;
}

double AvgNeighborLabelDistance(const Graph& g) {
  const ArcIndex m = g.NumArcs();
  if (m == 0) return 0.0;
  const auto offsets = g.Offsets();
  const auto heads = g.Heads();
  double sum = 0.0;
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    for (ArcIndex a = offsets[u]; a < offsets[u + 1]; ++a) {
      sum += std::abs(static_cast<double>(u) - heads[a]);
    }
  }
  return sum / static_cast<double>(m);
}

ReorderedGraph::ReorderedGraph(const Graph& original, ReorderMethod method)
    : original_(&original), method_(method) {
  const NodeId n = original.NumNodes();
  const auto make_identity = [&] {
    perm_.resize(n);
    for (NodeId u = 0; u < n; ++u) perm_[u] = u;
    inverse_ = perm_;
    locality_original_ = locality_reordered_ = AvgNeighborLabelDistance(original);
  };
  if (method == ReorderMethod::kIdentity) {
    make_identity();
    diagnostics_.status = SolveStatus::kConverged;
    diagnostics_.detail = "identity reorder requested; serving original";
    return;
  }

  const std::vector<NodeId> computed = ComputeReorderPermutation(original, method);
  // The permutation passes through the fault site as doubles (int32
  // labels are exactly representable) so the robustness harness can
  // corrupt it; validation below must then reject it.
  std::vector<double> mirror(computed.begin(), computed.end());
  IMPREG_FAULT_POINT("graph/reorder_permutation", mirror);
  bool valid = static_cast<NodeId>(mirror.size()) == n;
  std::vector<NodeId> candidate;
  if (valid) {
    candidate.reserve(mirror.size());
    for (const double d : mirror) {
      // NaN fails every comparison; Inf and fractions fail these.
      if (!(d >= 0.0) || !(d < static_cast<double>(n)) ||
          d != std::floor(d)) {
        valid = false;
        break;
      }
      candidate.push_back(static_cast<NodeId>(d));
    }
  }
  if (valid) valid = IsPermutation(candidate, n);
  if (!valid) {
    // Rejected, not served: fall back to the original labeling.
    make_identity();
    diagnostics_.status = SolveStatus::kNonFinite;
    diagnostics_.detail =
        "reorder permutation failed validation; serving original labeling";
    IMPREG_METRIC_COUNT("graph.reorder.rejected", 1);
    return;
  }

  perm_ = std::move(candidate);
  inverse_ = InvertPermutation(perm_);
  reordered_ = ApplyNodePermutation(original, perm_);
  active_ = true;
  diagnostics_.status = SolveStatus::kConverged;
  diagnostics_.detail = std::string("reordered with ") + ReorderMethodName(method);
  locality_original_ = AvgNeighborLabelDistance(original);
  locality_reordered_ = AvgNeighborLabelDistance(reordered_);
  IMPREG_METRIC_COUNT("graph.reorder.applied", 1);
  IMPREG_METRIC_GAUGE_SET("graph.reorder.locality.original",
                          locality_original_);
  IMPREG_METRIC_GAUGE_SET("graph.reorder.locality.reordered",
                          locality_reordered_);
}

std::vector<double> ReorderedGraph::ToReorderedVector(
    const std::vector<double>& x) const {
  std::vector<double> out(x.size());
  for (std::size_t u = 0; u < x.size(); ++u) out[perm_[u]] = x[u];
  return out;
}

std::vector<double> ReorderedGraph::ToOriginalVector(
    const std::vector<double>& x) const {
  std::vector<double> out(x.size());
  for (std::size_t u = 0; u < x.size(); ++u) out[u] = x[perm_[u]];
  return out;
}

std::vector<NodeId> ReorderedGraph::ToOriginalNodes(
    const std::vector<NodeId>& nodes) const {
  std::vector<NodeId> out;
  out.reserve(nodes.size());
  for (const NodeId u : nodes) out.push_back(inverse_[u]);
  return out;
}

}  // namespace impreg
