#ifndef IMPREG_GRAPH_RANDOM_GRAPHS_H_
#define IMPREG_GRAPH_RANDOM_GRAPHS_H_

#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

/// \file
/// Random graph models.
///
/// These supply the workloads the paper's evaluation logic needs:
/// random d-regular graphs are constant-degree expanders (the inputs
/// that saturate the flow method's O(log n) factor, §3.2), planted
/// partitions give ground-truth cuts for the inference experiments
/// (§2.3/§3.1 early stopping), and Chung–Lu power-law graphs are the
/// degree-heterogeneous substrate of the social-network model (§3.2).
///
/// All generators are deterministic functions of (parameters, rng state).
/// Simple graphs only: no self-loops, no parallel edges.

namespace impreg {

/// Erdős–Rényi G(n, p) via geometric edge skipping; O(n + m) expected.
Graph ErdosRenyi(NodeId n, double p, Rng& rng);

/// Uniform G(n, m): m distinct edges sampled without replacement.
/// Requires m ≤ n(n−1)/2.
Graph GnmRandom(NodeId n, std::int64_t m, Rng& rng);

/// Chung–Lu graph with expected degrees `weights` (all ≥ 0): edge {i,j}
/// appears independently with probability min(1, w_i w_j / Σw).
/// Implemented with the Miller–Hagberg skip algorithm; O(n + m) expected.
Graph ChungLu(const std::vector<double>& weights, Rng& rng);

/// Expected-degree sequence for a power law with exponent `gamma` > 2:
/// w_i ∝ (i + i0)^(−1/(γ−1)), scaled so the average equals `avg_degree`.
std::vector<double> PowerLawWeights(NodeId n, double gamma, double avg_degree);

/// Barabási–Albert preferential attachment: each new node attaches to
/// `m_attach` ≥ 1 existing nodes, degree-proportionally. n > m_attach.
Graph BarabasiAlbert(NodeId n, int m_attach, Rng& rng);

/// Watts–Strogatz small world: ring lattice with k/2 neighbors per side
/// (k even, k < n), each edge rewired with probability beta.
Graph WattsStrogatz(NodeId n, int k, double beta, Rng& rng);

/// Random d-regular simple graph via the pairing model with restarts.
/// Requires n·d even, d < n. For d ≥ 3 these are expanders with high
/// probability.
Graph RandomRegular(NodeId n, int d, Rng& rng);

/// Planted partition (symmetric SBM): `blocks` groups of `block_size`
/// nodes; within-group edges with probability p_in, across with p_out.
/// Ground truth: node u belongs to block u / block_size.
Graph PlantedPartition(NodeId blocks, NodeId block_size, double p_in,
                       double p_out, Rng& rng);

/// Forest-fire model (Leskovec et al.) — the generative process behind
/// the whisker-rich, locally-dense structure of [27, 28]: each arriving
/// node picks a random "ambassador", links to it, then recursively
/// "burns" a Geometric(1−p)-sized subset of each burned node's
/// neighbors and links to everything burned. p = forward burning
/// probability in [0, 1); larger p ⇒ denser, more community-like.
Graph ForestFire(NodeId n, double p, Rng& rng);

}  // namespace impreg

#endif  // IMPREG_GRAPH_RANDOM_GRAPHS_H_
