#ifndef IMPREG_GRAPH_GRAPH_H_
#define IMPREG_GRAPH_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <iterator>
#include <span>
#include <vector>

/// \file
/// Immutable weighted undirected graph in compressed sparse row form.
///
/// This is the data substrate for everything in the library: the paper's
/// diffusions, spectral methods and flow methods all operate on a graph
/// whose adjacency structure is scanned sequentially, so CSR with both
/// arc directions materialized is the right layout.
///
/// The adjacency is stored structure-of-arrays: one int32 `heads` array
/// and one double `weights` array, both indexed by arc. Compared to an
/// array-of-structs `{int32 head; double weight}` (16 bytes/arc after
/// padding) this is 12 bytes/arc — 25% less memory traffic on the SpMV
/// inner loop — and each array is a unit-stride stream the compiler can
/// vectorize. Hot kernels should iterate `Heads(u)` / `Weights(u)` (or
/// the whole-graph `Heads()` / `Weights()` / `Offsets()` arrays);
/// `Neighbors(u)` remains as a compatibility view for traversal-bound
/// code where throughput does not matter. See docs/memory_layout.md.

namespace impreg {

/// Node identifier. Graphs in this library are laptop-scale (≤ a few
/// million nodes), so 32 bits suffice; arc offsets are 64-bit.
using NodeId = std::int32_t;
using ArcIndex = std::int64_t;

/// A directed half-edge of the CSR adjacency of its tail. The storage is
/// structure-of-arrays; this struct is the *value type* of the
/// `Graph::Neighbors()` compatibility view (and of GraphBuilder input).
struct Arc {
  NodeId head = 0;
  double weight = 1.0;
};

class GraphBuilder;

/// Immutable weighted undirected graph.
///
/// Invariants established by GraphBuilder::Build():
///  - adjacency lists are sorted by head and contain no duplicates
///    (parallel edges are merged by summing weights);
///  - every edge {u,v}, u != v, appears as two arcs u→v and v→u with
///    equal weight; a self-loop {u,u} appears as a single arc u→u;
///  - all weights are strictly positive.
///
/// One exception to the first invariant: `ApplyNodePermutation`
/// (graph/reorder.h) relabels nodes while keeping every row's *original*
/// arc order — that is what makes per-row reduction trees bitwise
/// label-invariant — so its output has `RowsSorted() == false` and
/// `EdgeWeight`/`HasEdge` fall back to a linear row scan. No kernel in
/// src/ other than EdgeWeight relies on sorted rows.
///
/// Degree conventions follow the paper: the weighted degree d(u) counts a
/// self-loop's weight once, the volume of a node set is the sum of its
/// weighted degrees, and `TotalVolume()` = Σ_u d(u).
class Graph {
 public:
  /// Read-only adjacency-list view materializing `Arc` values from the
  /// structure-of-arrays storage. Supports range-for, indexing and the
  /// usual container accessors; iterators are random-access and yield
  /// `Arc` *by value* (binding `const Arc&` in a range-for is fine — the
  /// temporary's lifetime covers the loop body).
  class NeighborView {
   public:
    class Iterator {
     public:
      using iterator_category = std::random_access_iterator_tag;
      using value_type = Arc;
      using difference_type = std::ptrdiff_t;
      using pointer = void;
      using reference = Arc;

      Iterator() = default;
      Iterator(const NodeId* head, const double* weight)
          : head_(head), weight_(weight) {}

      Arc operator*() const { return {*head_, *weight_}; }
      Arc operator[](difference_type i) const {
        return {head_[i], weight_[i]};
      }
      Iterator& operator++() {
        ++head_;
        ++weight_;
        return *this;
      }
      Iterator operator++(int) {
        Iterator copy = *this;
        ++*this;
        return copy;
      }
      Iterator& operator--() {
        --head_;
        --weight_;
        return *this;
      }
      Iterator operator--(int) {
        Iterator copy = *this;
        --*this;
        return copy;
      }
      Iterator& operator+=(difference_type i) {
        head_ += i;
        weight_ += i;
        return *this;
      }
      Iterator& operator-=(difference_type i) { return *this += -i; }
      friend Iterator operator+(Iterator it, difference_type i) {
        return it += i;
      }
      friend Iterator operator+(difference_type i, Iterator it) {
        return it += i;
      }
      friend Iterator operator-(Iterator it, difference_type i) {
        return it -= i;
      }
      friend difference_type operator-(const Iterator& a, const Iterator& b) {
        return a.head_ - b.head_;
      }
      friend bool operator==(const Iterator& a, const Iterator& b) {
        return a.head_ == b.head_;
      }
      friend auto operator<=>(const Iterator& a, const Iterator& b) {
        return a.head_ <=> b.head_;
      }

     private:
      const NodeId* head_ = nullptr;
      const double* weight_ = nullptr;
    };

    NeighborView(const NodeId* heads, const double* weights, std::size_t size)
        : heads_(heads), weights_(weights), size_(size) {}

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    Arc operator[](std::size_t i) const { return {heads_[i], weights_[i]}; }
    Arc front() const { return (*this)[0]; }
    Arc back() const { return (*this)[size_ - 1]; }
    Iterator begin() const { return {heads_, weights_}; }
    Iterator end() const { return {heads_ + size_, weights_ + size_}; }

   private:
    const NodeId* heads_;
    const double* weights_;
    std::size_t size_;
  };

  /// An empty graph with zero nodes.
  Graph() = default;

  Graph(const Graph&) = default;
  Graph& operator=(const Graph&) = default;
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  /// Number of nodes n.
  NodeId NumNodes() const { return static_cast<NodeId>(offsets_.size()) - 1; }

  /// Number of undirected edges m (self-loops count once).
  std::int64_t NumEdges() const { return num_edges_; }

  /// Number of stored arcs (2m minus the number of self-loops).
  ArcIndex NumArcs() const { return static_cast<ArcIndex>(heads_.size()); }

  /// Neighbor ids of `u`, sorted ascending. Unit-stride int32 stream —
  /// use this (with `Weights(u)`) in throughput-bound kernels.
  std::span<const NodeId> Heads(NodeId u) const {
    return {heads_.data() + offsets_[u],
            static_cast<std::size_t>(offsets_[u + 1] - offsets_[u])};
  }

  /// Weights of the arcs out of `u`, aligned with `Heads(u)`.
  std::span<const double> Weights(NodeId u) const {
    return {weights_.data() + offsets_[u],
            static_cast<std::size_t>(offsets_[u + 1] - offsets_[u])};
  }

  /// The whole-graph arc arrays and row offsets (size n+1), for kernels
  /// that stream all arcs and index rows by `Offsets()[u]`.
  std::span<const NodeId> Heads() const { return heads_; }
  std::span<const double> Weights() const { return weights_; }
  std::span<const ArcIndex> Offsets() const { return offsets_; }

  /// The sorted adjacency list of `u` as (head, weight) pairs — a
  /// compatibility view over the SoA arrays; prefer `Heads`/`Weights`
  /// where throughput matters.
  NeighborView Neighbors(NodeId u) const {
    return {heads_.data() + offsets_[u], weights_.data() + offsets_[u],
            static_cast<std::size_t>(offsets_[u + 1] - offsets_[u])};
  }

  /// Weighted degree d(u): sum of incident edge weights (self-loop once).
  double Degree(NodeId u) const { return degrees_[u]; }

  /// Number of arcs out of `u` (distinct neighbors, including u itself
  /// if it has a self-loop).
  ArcIndex OutDegree(NodeId u) const {
    return offsets_[u + 1] - offsets_[u];
  }

  /// Σ_u d(u) — twice the total edge weight of non-loop edges plus the
  /// total self-loop weight.
  double TotalVolume() const { return total_volume_; }

  /// Returns the weight of edge {u, v}, or 0 if absent. O(log deg(u))
  /// when rows are sorted (builder output), O(deg(u)) otherwise.
  double EdgeWeight(NodeId u, NodeId v) const;

  /// True if {u, v} is an edge. Same complexity as EdgeWeight.
  bool HasEdge(NodeId u, NodeId v) const { return EdgeWeight(u, v) > 0.0; }

  /// True for nodes in [0, n).
  bool IsValidNode(NodeId u) const { return u >= 0 && u < NumNodes(); }

  /// The weighted-degree vector as a dense array of length n.
  const std::vector<double>& Degrees() const { return degrees_; }

  /// True when every adjacency list is sorted by head (all builder
  /// output); false for relabeled graphs from ApplyNodePermutation,
  /// whose rows keep their pre-permutation arc order.
  bool RowsSorted() const { return rows_sorted_; }

 private:
  friend class GraphBuilder;
  friend Graph ApplyNodePermutation(const Graph& g,
                                    const std::vector<NodeId>& perm);

  std::vector<ArcIndex> offsets_ = {0};  ///< Size n+1.
  std::vector<NodeId> heads_;            ///< Arc heads, 4 bytes/arc.
  std::vector<double> weights_;          ///< Arc weights, 8 bytes/arc.
  std::vector<double> degrees_;
  std::int64_t num_edges_ = 0;
  double total_volume_ = 0.0;
  bool rows_sorted_ = true;
};

/// Accumulates undirected edges, then freezes them into a Graph.
class GraphBuilder {
 public:
  /// Creates a builder for a graph on `num_nodes` nodes (ids 0..n-1).
  explicit GraphBuilder(NodeId num_nodes);

  GraphBuilder(const GraphBuilder&) = default;
  GraphBuilder& operator=(const GraphBuilder&) = default;

  NodeId NumNodes() const { return num_nodes_; }

  /// Adds undirected edge {u, v} with weight w > 0. Parallel edges are
  /// allowed here and merged (weights summed) by Build(). u == v adds a
  /// self-loop.
  void AddEdge(NodeId u, NodeId v, double weight = 1.0);

  /// Number of AddEdge calls so far (before merging).
  std::int64_t NumAddedEdges() const {
    return static_cast<std::int64_t>(edges_.size());
  }

  /// Freezes into an immutable Graph. The builder may be reused
  /// afterwards (its edge list is left intact).
  Graph Build() const;

 private:
  struct RawEdge {
    NodeId u;
    NodeId v;
    double weight;
  };
  NodeId num_nodes_;
  std::vector<RawEdge> edges_;
};

}  // namespace impreg

#endif  // IMPREG_GRAPH_GRAPH_H_
