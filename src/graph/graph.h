#ifndef IMPREG_GRAPH_GRAPH_H_
#define IMPREG_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

/// \file
/// Immutable weighted undirected graph in compressed sparse row form.
///
/// This is the data substrate for everything in the library: the paper's
/// diffusions, spectral methods and flow methods all operate on a graph
/// whose adjacency structure is scanned sequentially, so CSR with both
/// arc directions materialized is the right layout.

namespace impreg {

/// Node identifier. Graphs in this library are laptop-scale (≤ a few
/// million nodes), so 32 bits suffice; arc offsets are 64-bit.
using NodeId = std::int32_t;
using ArcIndex = std::int64_t;

/// A directed half-edge stored in the CSR adjacency of its tail.
struct Arc {
  NodeId head = 0;
  double weight = 1.0;
};

class GraphBuilder;

/// Immutable weighted undirected graph.
///
/// Invariants established by GraphBuilder::Build():
///  - adjacency lists are sorted by head and contain no duplicates
///    (parallel edges are merged by summing weights);
///  - every edge {u,v}, u != v, appears as two arcs u→v and v→u with
///    equal weight; a self-loop {u,u} appears as a single arc u→u;
///  - all weights are strictly positive.
///
/// Degree conventions follow the paper: the weighted degree d(u) counts a
/// self-loop's weight once, the volume of a node set is the sum of its
/// weighted degrees, and `TotalVolume()` = Σ_u d(u).
class Graph {
 public:
  /// An empty graph with zero nodes.
  Graph() = default;

  Graph(const Graph&) = default;
  Graph& operator=(const Graph&) = default;
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  /// Number of nodes n.
  NodeId NumNodes() const { return static_cast<NodeId>(offsets_.size()) - 1; }

  /// Number of undirected edges m (self-loops count once).
  std::int64_t NumEdges() const { return num_edges_; }

  /// Number of stored arcs (2m minus the number of self-loops).
  ArcIndex NumArcs() const { return static_cast<ArcIndex>(arcs_.size()); }

  /// The sorted adjacency list of `u`.
  std::span<const Arc> Neighbors(NodeId u) const {
    return {arcs_.data() + offsets_[u],
            static_cast<std::size_t>(offsets_[u + 1] - offsets_[u])};
  }

  /// Weighted degree d(u): sum of incident edge weights (self-loop once).
  double Degree(NodeId u) const { return degrees_[u]; }

  /// Number of arcs out of `u` (distinct neighbors, including u itself
  /// if it has a self-loop).
  int OutDegree(NodeId u) const {
    return static_cast<int>(offsets_[u + 1] - offsets_[u]);
  }

  /// Σ_u d(u) — twice the total edge weight of non-loop edges plus the
  /// total self-loop weight.
  double TotalVolume() const { return total_volume_; }

  /// Returns the weight of edge {u, v}, or 0 if absent. O(log deg(u)).
  double EdgeWeight(NodeId u, NodeId v) const;

  /// True if {u, v} is an edge. O(log deg(u)).
  bool HasEdge(NodeId u, NodeId v) const { return EdgeWeight(u, v) > 0.0; }

  /// True for nodes in [0, n).
  bool IsValidNode(NodeId u) const { return u >= 0 && u < NumNodes(); }

  /// The weighted-degree vector as a dense array of length n.
  const std::vector<double>& Degrees() const { return degrees_; }

 private:
  friend class GraphBuilder;

  std::vector<ArcIndex> offsets_ = {0};  ///< Size n+1.
  std::vector<Arc> arcs_;
  std::vector<double> degrees_;
  std::int64_t num_edges_ = 0;
  double total_volume_ = 0.0;
};

/// Accumulates undirected edges, then freezes them into a Graph.
class GraphBuilder {
 public:
  /// Creates a builder for a graph on `num_nodes` nodes (ids 0..n-1).
  explicit GraphBuilder(NodeId num_nodes);

  GraphBuilder(const GraphBuilder&) = default;
  GraphBuilder& operator=(const GraphBuilder&) = default;

  NodeId NumNodes() const { return num_nodes_; }

  /// Adds undirected edge {u, v} with weight w > 0. Parallel edges are
  /// allowed here and merged (weights summed) by Build(). u == v adds a
  /// self-loop.
  void AddEdge(NodeId u, NodeId v, double weight = 1.0);

  /// Number of AddEdge calls so far (before merging).
  std::int64_t NumAddedEdges() const {
    return static_cast<std::int64_t>(edges_.size());
  }

  /// Freezes into an immutable Graph. The builder may be reused
  /// afterwards (its edge list is left intact).
  Graph Build() const;

 private:
  struct RawEdge {
    NodeId u;
    NodeId v;
    double weight;
  };
  NodeId num_nodes_;
  std::vector<RawEdge> edges_;
};

}  // namespace impreg

#endif  // IMPREG_GRAPH_GRAPH_H_
