#ifndef IMPREG_GRAPH_GENERATORS_H_
#define IMPREG_GRAPH_GENERATORS_H_

#include "graph/graph.h"

/// \file
/// Deterministic graph families.
///
/// These include the structures the paper leans on: paths/ladders
/// ("long stringy pieces" that saturate the spectral method's quadratic
/// Cheeger factor, §3.2), the Guattery–Miller cockroach graph [21],
/// lollipops/dumbbells (whisker-like attachments), and cliques/expander
/// stand-ins. All are unweighted (weight 1.0) and connected for valid
/// parameters.

namespace impreg {

/// Path on n ≥ 1 nodes: 0–1–…–(n−1).
Graph PathGraph(NodeId n);

/// Cycle on n ≥ 3 nodes.
Graph CycleGraph(NodeId n);

/// Complete graph K_n, n ≥ 1.
Graph CompleteGraph(NodeId n);

/// Star with one hub (node 0) and n−1 leaves; n ≥ 2.
Graph StarGraph(NodeId n);

/// rows × cols 4-neighbor grid; rows, cols ≥ 1.
Graph GridGraph(NodeId rows, NodeId cols);

/// rows × cols torus (grid with wraparound); rows, cols ≥ 3.
Graph TorusGraph(NodeId rows, NodeId cols);

/// d-dimensional hypercube on 2^d nodes; 1 ≤ d ≤ 20.
Graph HypercubeGraph(int dim);

/// Complete binary tree on n ≥ 1 nodes (heap indexing).
Graph CompleteBinaryTree(NodeId n);

/// Ladder: two paths of length `rungs` joined by all rungs; rungs ≥ 2.
Graph LadderGraph(NodeId rungs);

/// Lollipop: K_clique with a path of `tail` extra nodes hanging off node
/// 0; clique ≥ 2, tail ≥ 1.
Graph LollipopGraph(NodeId clique, NodeId tail);

/// Dumbbell: two K_clique joined by a path with `bridge` interior nodes
/// (bridge may be 0 → single edge); clique ≥ 2.
Graph DumbbellGraph(NodeId clique, NodeId bridge);

/// Guattery–Miller cockroach graph on 4k nodes (k ≥ 2): two paths
/// u_0..u_{2k−1} and w_0..w_{2k−1} with rungs u_i–w_i for i ≥ k.
/// The optimal conductance cut (the two "antennae" halves) cuts 2 edges,
/// but the spectral sweep cut prefers a Θ(k)-edge cut — the canonical
/// example where the quadratic Cheeger factor is real (§3.2).
Graph CockroachGraph(NodeId k);

/// Connected caveman: `cliques` copies of K_size arranged in a ring, with
/// one edge between consecutive cliques; cliques ≥ 2 (or 1 for a single
/// clique), size ≥ 2.
Graph CavemanGraph(NodeId cliques, NodeId size);

}  // namespace impreg

#endif  // IMPREG_GRAPH_GENERATORS_H_
