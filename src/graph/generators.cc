#include "graph/generators.h"

#include "util/check.h"

namespace impreg {

Graph PathGraph(NodeId n) {
  IMPREG_CHECK(n >= 1);
  GraphBuilder b(n);
  for (NodeId i = 0; i + 1 < n; ++i) b.AddEdge(i, i + 1);
  return b.Build();
}

Graph CycleGraph(NodeId n) {
  IMPREG_CHECK(n >= 3);
  GraphBuilder b(n);
  for (NodeId i = 0; i < n; ++i) b.AddEdge(i, (i + 1) % n);
  return b.Build();
}

Graph CompleteGraph(NodeId n) {
  IMPREG_CHECK(n >= 1);
  GraphBuilder b(n);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) b.AddEdge(i, j);
  }
  return b.Build();
}

Graph StarGraph(NodeId n) {
  IMPREG_CHECK(n >= 2);
  GraphBuilder b(n);
  for (NodeId i = 1; i < n; ++i) b.AddEdge(0, i);
  return b.Build();
}

Graph GridGraph(NodeId rows, NodeId cols) {
  IMPREG_CHECK(rows >= 1 && cols >= 1);
  GraphBuilder b(rows * cols);
  auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.AddEdge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) b.AddEdge(id(r, c), id(r + 1, c));
    }
  }
  return b.Build();
}

Graph TorusGraph(NodeId rows, NodeId cols) {
  IMPREG_CHECK(rows >= 3 && cols >= 3);
  GraphBuilder b(rows * cols);
  auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      b.AddEdge(id(r, c), id(r, (c + 1) % cols));
      b.AddEdge(id(r, c), id((r + 1) % rows, c));
    }
  }
  return b.Build();
}

Graph HypercubeGraph(int dim) {
  IMPREG_CHECK(dim >= 1 && dim <= 20);
  const NodeId n = static_cast<NodeId>(1) << dim;
  GraphBuilder b(n);
  for (NodeId u = 0; u < n; ++u) {
    for (int bit = 0; bit < dim; ++bit) {
      const NodeId v = u ^ (static_cast<NodeId>(1) << bit);
      if (u < v) b.AddEdge(u, v);
    }
  }
  return b.Build();
}

Graph CompleteBinaryTree(NodeId n) {
  IMPREG_CHECK(n >= 1);
  GraphBuilder b(n);
  for (NodeId i = 1; i < n; ++i) b.AddEdge(i, (i - 1) / 2);
  return b.Build();
}

Graph LadderGraph(NodeId rungs) {
  IMPREG_CHECK(rungs >= 2);
  GraphBuilder b(2 * rungs);
  for (NodeId i = 0; i < rungs; ++i) {
    b.AddEdge(i, rungs + i);  // Rung.
    if (i + 1 < rungs) {
      b.AddEdge(i, i + 1);
      b.AddEdge(rungs + i, rungs + i + 1);
    }
  }
  return b.Build();
}

Graph LollipopGraph(NodeId clique, NodeId tail) {
  IMPREG_CHECK(clique >= 2 && tail >= 1);
  GraphBuilder b(clique + tail);
  for (NodeId i = 0; i < clique; ++i) {
    for (NodeId j = i + 1; j < clique; ++j) b.AddEdge(i, j);
  }
  b.AddEdge(0, clique);
  for (NodeId i = 0; i + 1 < tail; ++i) b.AddEdge(clique + i, clique + i + 1);
  return b.Build();
}

Graph DumbbellGraph(NodeId clique, NodeId bridge) {
  IMPREG_CHECK(clique >= 2 && bridge >= 0);
  const NodeId n = 2 * clique + bridge;
  GraphBuilder b(n);
  for (NodeId i = 0; i < clique; ++i) {
    for (NodeId j = i + 1; j < clique; ++j) {
      b.AddEdge(i, j);                    // Left clique: 0..clique-1.
      b.AddEdge(clique + i, clique + j);  // Right clique.
    }
  }
  // Bridge path from node 0 of the left clique to node 0 of the right,
  // through `bridge` interior nodes 2*clique .. 2*clique+bridge-1.
  NodeId prev = 0;
  for (NodeId i = 0; i < bridge; ++i) {
    b.AddEdge(prev, 2 * clique + i);
    prev = 2 * clique + i;
  }
  b.AddEdge(prev, clique);
  return b.Build();
}

Graph CockroachGraph(NodeId k) {
  IMPREG_CHECK(k >= 2);
  const NodeId two_k = 2 * k;
  GraphBuilder b(4 * k);
  // u_i = i, w_i = 2k + i.
  for (NodeId i = 0; i + 1 < two_k; ++i) {
    b.AddEdge(i, i + 1);
    b.AddEdge(two_k + i, two_k + i + 1);
  }
  for (NodeId i = k; i < two_k; ++i) b.AddEdge(i, two_k + i);
  return b.Build();
}

Graph CavemanGraph(NodeId cliques, NodeId size) {
  IMPREG_CHECK(cliques >= 1 && size >= 2);
  GraphBuilder b(cliques * size);
  for (NodeId c = 0; c < cliques; ++c) {
    const NodeId base = c * size;
    for (NodeId i = 0; i < size; ++i) {
      for (NodeId j = i + 1; j < size; ++j) b.AddEdge(base + i, base + j);
    }
  }
  if (cliques >= 2) {
    for (NodeId c = 0; c < cliques; ++c) {
      const NodeId next = (c + 1) % cliques;
      if (cliques == 2 && c == 1) break;  // Avoid a duplicate bridge.
      // Connect the "last" node of clique c to the "first" of the next.
      b.AddEdge(c * size + size - 1, next * size);
    }
  }
  return b.Build();
}

}  // namespace impreg
