#ifndef IMPREG_GRAPH_IO_H_
#define IMPREG_GRAPH_IO_H_

#include <optional>
#include <string>

#include "graph/graph.h"

/// \file
/// Plain-text edge-list serialization.
///
/// Format: one edge per line, `u v [weight]` with 0-based node ids;
/// blank lines and lines starting with '#' or '%' are ignored. The node
/// count is 1 + the largest id seen (or the optional header line
/// `# nodes N` if present, which allows trailing isolated nodes).

namespace impreg {

/// Outcome of a parse with error attribution. On success `graph` is
/// engaged and `error` is empty; on failure `error` says what was wrong
/// and `error_line` is the 1-based input line it happened on (0 for
/// file-level problems like an unreadable path or a bad edge count).
struct GraphParseResult {
  std::optional<Graph> graph;
  int error_line = 0;
  std::string error;
  bool ok() const { return graph.has_value(); }
};

/// Parses an edge list from a string, reporting the failing line and
/// reason on malformed input (negative or oversized ids, non-numeric
/// fields, non-positive or non-finite weights).
GraphParseResult ParseEdgeListOrError(const std::string& text);

/// Reads an edge list from a file, with error attribution.
GraphParseResult ReadEdgeListOrError(const std::string& path);

/// Parses an edge list from a string. Returns std::nullopt on malformed
/// input (negative ids, non-numeric fields, non-positive weights).
std::optional<Graph> ParseEdgeList(const std::string& text);

/// Reads an edge list from a file. Returns std::nullopt if the file
/// cannot be read or is malformed.
std::optional<Graph> ReadEdgeList(const std::string& path);

/// Serializes the graph as an edge list (each undirected edge once,
/// weights printed only when != 1).
std::string WriteEdgeListString(const Graph& g);

/// Writes the edge list to a file. Returns false on I/O failure.
bool WriteEdgeList(const Graph& g, const std::string& path);

/// Parses a graph in METIS .graph format: a header line `n m [fmt]`
/// followed by one line per node listing its (1-based) neighbors —
/// with interleaved edge weights when fmt is "1" or "001". Comment
/// lines start with '%'. Self-loops are not representable in METIS
/// format. Returns std::nullopt on malformed input (bad counts,
/// asymmetric adjacency, out-of-range ids).
std::optional<Graph> ParseMetis(const std::string& text);

/// Parses METIS format with error attribution (see GraphParseResult).
GraphParseResult ParseMetisOrError(const std::string& text);

/// Reads a METIS .graph file, with error attribution.
GraphParseResult ReadMetisOrError(const std::string& path);

/// Reads a METIS .graph file.
std::optional<Graph> ReadMetis(const std::string& path);

/// Serializes to METIS format (fmt 001 with edge weights when any
/// weight differs from 1). Requires a graph without self-loops; METIS
/// cannot express them.
std::string WriteMetisString(const Graph& g);

/// Writes METIS format to a file. Returns false on I/O failure.
bool WriteMetis(const Graph& g, const std::string& path);

}  // namespace impreg

#endif  // IMPREG_GRAPH_IO_H_
