#ifndef IMPREG_GRAPH_SOCIAL_H_
#define IMPREG_GRAPH_SOCIAL_H_

#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

/// \file
/// Synthetic stand-in for the paper's AtP-DBLP social/information network
/// (Figure 1).
///
/// The paper's references [27, 28] establish the structural features of
/// large social networks that drive Figure 1: (i) an expander-like
/// power-law "core" when viewed at large size scales, (ii) "whiskers" —
/// small tree/path appendages hanging off the core by a single edge,
/// which realize the best small-set conductances, and (iii) meaningful
/// small communities of ~10–300 nodes with low but not whisker-low
/// conductance. WhiskeredSocialGraph generates exactly this composition
/// with controllable knobs, so that the spectral-vs-flow comparison of
/// Figure 1 exercises the same regimes as the real data: flow methods
/// chase the sharpest (whisker-dominated) cuts, while spectral methods
/// return smoother, better-connected clusters.

namespace impreg {

/// Knobs for the synthetic social network.
struct SocialGraphParams {
  /// Power-law Chung–Lu core.
  NodeId core_nodes = 10000;
  double core_gamma = 2.5;
  double core_avg_degree = 8.0;

  /// Planted communities appended to the core. Sizes are log-spaced in
  /// [min_community_size, max_community_size].
  int num_communities = 24;
  NodeId min_community_size = 16;
  NodeId max_community_size = 256;
  /// Expected internal degree of a community member.
  double community_internal_degree = 6.0;
  /// Edges from each community to uniformly random core nodes.
  int community_boundary_edges = 4;

  /// Whiskers: paths of length uniform in [min,max] attached to a random
  /// core node by a single edge.
  int num_whiskers = 150;
  NodeId min_whisker_size = 2;
  NodeId max_whisker_size = 16;
};

/// A generated social network with its ground truth.
struct SocialGraph {
  Graph graph;
  /// Planted community node sets (ids in the final graph).
  std::vector<std::vector<NodeId>> communities;
  /// Whisker node sets (excluding the core attachment point).
  std::vector<std::vector<NodeId>> whiskers;
  /// Nodes [0, core_size) form the power-law core.
  NodeId core_size = 0;
};

/// Generates the network. The result is always connected: any stray
/// components of the Chung–Lu core are tied to the giant component with
/// single random edges (which only adds a few whisker-like attachments,
/// i.e. more of the structure the model wants anyway).
SocialGraph MakeWhiskeredSocialGraph(const SocialGraphParams& params,
                                     Rng& rng);

}  // namespace impreg

#endif  // IMPREG_GRAPH_SOCIAL_H_
