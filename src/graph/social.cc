#include "graph/social.h"

#include <algorithm>
#include <cmath>

#include "graph/algorithms.h"
#include "graph/random_graphs.h"
#include "util/check.h"

namespace impreg {

SocialGraph MakeWhiskeredSocialGraph(const SocialGraphParams& params,
                                     Rng& rng) {
  IMPREG_CHECK(params.core_nodes >= 10);
  IMPREG_CHECK(params.num_communities >= 0);
  IMPREG_CHECK(params.min_community_size >= 3);
  IMPREG_CHECK(params.max_community_size >= params.min_community_size);
  IMPREG_CHECK(params.community_boundary_edges >= 1);
  IMPREG_CHECK(params.num_whiskers >= 0);
  IMPREG_CHECK(params.min_whisker_size >= 1);
  IMPREG_CHECK(params.max_whisker_size >= params.min_whisker_size);

  SocialGraph out;
  out.core_size = params.core_nodes;

  // Total node budget: core + communities + whiskers.
  std::vector<NodeId> community_sizes;
  for (int c = 0; c < params.num_communities; ++c) {
    // Log-spaced sizes between min and max.
    const double frac = params.num_communities > 1
                            ? static_cast<double>(c) /
                                  (params.num_communities - 1)
                            : 0.0;
    const double size =
        std::exp(std::log(static_cast<double>(params.min_community_size)) +
                 frac * (std::log(static_cast<double>(
                             params.max_community_size)) -
                         std::log(static_cast<double>(
                             params.min_community_size))));
    community_sizes.push_back(
        std::max<NodeId>(params.min_community_size,
                         static_cast<NodeId>(std::lround(size))));
  }
  std::vector<NodeId> whisker_sizes;
  for (int w = 0; w < params.num_whiskers; ++w) {
    whisker_sizes.push_back(static_cast<NodeId>(rng.NextInt(
        params.min_whisker_size, params.max_whisker_size)));
  }
  NodeId total = params.core_nodes;
  for (NodeId s : community_sizes) total += s;
  for (NodeId s : whisker_sizes) total += s;

  GraphBuilder builder(total);

  // 1) Power-law core via Chung–Lu on nodes [0, core_nodes).
  {
    const std::vector<double> weights = PowerLawWeights(
        params.core_nodes, params.core_gamma, params.core_avg_degree);
    const Graph core = ChungLu(weights, rng);
    for (NodeId u = 0; u < core.NumNodes(); ++u) {
      const auto heads = core.Heads(u);
      const auto head_weights = core.Weights(u);
      for (std::size_t i = 0; i < heads.size(); ++i) {
        if (heads[i] > u) builder.AddEdge(u, heads[i], head_weights[i]);
      }
    }
    // Tie stray core components to the giant one with single edges so the
    // final graph is connected.
    const std::vector<int> comp = ConnectedComponents(core);
    int num_comp = 0;
    for (int c : comp) num_comp = std::max(num_comp, c + 1);
    if (num_comp > 1) {
      std::vector<std::int64_t> sizes(num_comp, 0);
      for (int c : comp) ++sizes[c];
      const int giant = static_cast<int>(
          std::max_element(sizes.begin(), sizes.end()) - sizes.begin());
      std::vector<NodeId> giant_nodes;
      std::vector<char> linked(num_comp, 0);
      for (NodeId u = 0; u < core.NumNodes(); ++u) {
        if (comp[u] == giant) giant_nodes.push_back(u);
      }
      for (NodeId u = 0; u < core.NumNodes(); ++u) {
        const int c = comp[u];
        if (c != giant && !linked[c]) {
          builder.AddEdge(
              u, giant_nodes[rng.NextBounded(giant_nodes.size())]);
          linked[c] = 1;
        }
      }
    }
  }

  NodeId next = params.core_nodes;

  // 2) Planted communities: dense G(s, p_in) blobs with a few boundary
  // edges into random core nodes.
  for (NodeId size : community_sizes) {
    std::vector<NodeId> members(size);
    for (NodeId i = 0; i < size; ++i) members[i] = next + i;
    const double p_in = std::min(
        1.0, params.community_internal_degree / static_cast<double>(size - 1));
    for (NodeId i = 0; i < size; ++i) {
      for (NodeId j = i + 1; j < size; ++j) {
        if (rng.NextBernoulli(p_in)) builder.AddEdge(members[i], members[j]);
      }
    }
    // Spanning path so the community itself is connected even when the
    // Bernoulli draws come out sparse.
    for (NodeId i = 0; i + 1 < size; ++i) {
      builder.AddEdge(members[i], members[i + 1]);
    }
    for (int e = 0; e < params.community_boundary_edges; ++e) {
      builder.AddEdge(members[rng.NextBounded(size)],
                      static_cast<NodeId>(rng.NextBounded(params.core_nodes)));
    }
    out.communities.push_back(std::move(members));
    next += size;
  }

  // 3) Whiskers: paths hanging off random core nodes by a single edge.
  for (NodeId size : whisker_sizes) {
    std::vector<NodeId> members(size);
    for (NodeId i = 0; i < size; ++i) members[i] = next + i;
    const NodeId anchor =
        static_cast<NodeId>(rng.NextBounded(params.core_nodes));
    builder.AddEdge(anchor, members[0]);
    for (NodeId i = 0; i + 1 < size; ++i) {
      builder.AddEdge(members[i], members[i + 1]);
    }
    out.whiskers.push_back(std::move(members));
    next += size;
  }
  IMPREG_CHECK(next == total);

  out.graph = builder.Build();
  return out;
}

}  // namespace impreg
