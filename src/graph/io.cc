#include "graph/io.h"

#include "util/check.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <vector>

namespace impreg {

namespace {

struct ParsedEdge {
  NodeId u;
  NodeId v;
  double weight;
};

// Node ids must leave room for n = max_id + 1 to fit in NodeId.
constexpr long long kMaxNodeId =
    static_cast<long long>(std::numeric_limits<NodeId>::max()) - 1;

GraphParseResult Fail(int line, std::string message) {
  GraphParseResult result;
  result.error_line = line;
  result.error = std::move(message);
  return result;
}

}  // namespace

GraphParseResult ParseEdgeListOrError(const std::string& text) {
  std::vector<ParsedEdge> edges;
  NodeId max_node = -1;
  NodeId declared_nodes = -1;

  std::istringstream in(text);
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    // Trim trailing whitespace first: CRLF files leave a '\r' on every
    // line, and editors leave trailing blanks — both would otherwise
    // trip the %c trailing-garbage probe below on weighted lines.
    line.erase(line.find_last_not_of(" \t\r\n\f\v") + 1);
    // Trim leading whitespace.
    std::size_t start = 0;
    while (start < line.size() &&
           std::isspace(static_cast<unsigned char>(line[start]))) {
      ++start;
    }
    if (start == line.size()) continue;
    if (line[start] == '#' || line[start] == '%') {
      long long n = 0;
      if (std::sscanf(line.c_str() + start, "# nodes %lld", &n) == 1 ||
          std::sscanf(line.c_str() + start, "%% nodes %lld", &n) == 1) {
        if (n < 0) {
          return Fail(line_number, "declared node count is negative");
        }
        if (n > kMaxNodeId + 1) {
          return Fail(line_number, "declared node count overflows node ids");
        }
        declared_nodes = static_cast<NodeId>(n);
      }
      continue;
    }
    long long u = 0, v = 0;
    double w = 1.0;
    char trailing = '\0';
    const int fields = std::sscanf(line.c_str() + start, "%lld %lld %lf %c",
                                   &u, &v, &w, &trailing);
    if (fields < 2 || fields > 3) {
      return Fail(line_number,
                  "expected `u v [weight]` with numeric fields");
    }
    if (fields == 2) w = 1.0;
    if (u < 0 || v < 0) {
      return Fail(line_number, "node ids must be nonnegative");
    }
    if (u > kMaxNodeId || v > kMaxNodeId) {
      return Fail(line_number, "node id overflows the 32-bit id space");
    }
    // NOTE: `w <= 0` would pass NaN (every comparison with NaN is
    // false); test the acceptance condition, not the rejection one.
    if (!(w > 0.0) || !std::isfinite(w)) {
      return Fail(line_number, "edge weight must be finite and positive");
    }
    edges.push_back({static_cast<NodeId>(u), static_cast<NodeId>(v), w});
    max_node = std::max(max_node, static_cast<NodeId>(std::max(u, v)));
  }
  NodeId n = max_node + 1;
  if (declared_nodes >= 0) {
    if (declared_nodes < n) {
      return Fail(0, "declared node count is smaller than the largest id");
    }
    n = declared_nodes;
  }
  GraphBuilder builder(n);
  for (const ParsedEdge& e : edges) builder.AddEdge(e.u, e.v, e.weight);
  GraphParseResult result;
  result.graph = builder.Build();
  return result;
}

GraphParseResult ReadEdgeListOrError(const std::string& path) {
  std::ifstream file(path);
  if (!file) return Fail(0, "cannot open file: " + path);
  std::stringstream buffer;
  buffer << file.rdbuf();
  return ParseEdgeListOrError(buffer.str());
}

std::optional<Graph> ParseEdgeList(const std::string& text) {
  return ParseEdgeListOrError(text).graph;
}

std::optional<Graph> ReadEdgeList(const std::string& path) {
  return ReadEdgeListOrError(path).graph;
}

std::string WriteEdgeListString(const Graph& g) {
  std::string out = "# nodes " + std::to_string(g.NumNodes()) + "\n";
  char buf[96];
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    for (const Arc& arc : g.Neighbors(u)) {
      if (arc.head < u) continue;  // Each undirected edge once.
      if (arc.weight == 1.0) {
        std::snprintf(buf, sizeof(buf), "%d %d\n", u, arc.head);
      } else {
        std::snprintf(buf, sizeof(buf), "%d %d %.17g\n", u, arc.head,
                      arc.weight);
      }
      out += buf;
    }
  }
  return out;
}

bool WriteEdgeList(const Graph& g, const std::string& path) {
  std::ofstream file(path);
  if (!file) return false;
  file << WriteEdgeListString(g);
  return static_cast<bool>(file);
}

GraphParseResult ParseMetisOrError(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  int line_number = 0;
  // Header: n m [fmt], skipping comments.
  long long n = 0, m = 0;
  std::string fmt = "0";
  bool have_header = false;
  while (std::getline(in, line)) {
    ++line_number;
    // CRLF/trailing-blank tolerance, same as the edge-list parser.
    line.erase(line.find_last_not_of(" \t\r\n\f\v") + 1);
    std::size_t start = 0;
    while (start < line.size() &&
           std::isspace(static_cast<unsigned char>(line[start]))) {
      ++start;
    }
    if (start == line.size() || line[start] == '%') continue;
    std::istringstream header(line.substr(start));
    if (!(header >> n >> m)) {
      return Fail(line_number, "header must be `n m [fmt]`");
    }
    header >> fmt;  // Optional.
    have_header = true;
    break;
  }
  if (!have_header) return Fail(0, "missing METIS header line");
  const int header_line = line_number;
  if (n < 0 || m < 0) {
    return Fail(header_line, "node/edge counts must be nonnegative");
  }
  if (n > kMaxNodeId + 1) {
    return Fail(header_line, "node count overflows the 32-bit id space");
  }
  const bool edge_weights = !fmt.empty() && fmt.back() == '1' &&
                            (fmt == "1" || fmt == "001" || fmt == "01");
  if (fmt != "0" && fmt != "00" && fmt != "000" && !edge_weights) {
    return Fail(header_line,
                "unsupported fmt field (vertex weights/sizes)");
  }

  GraphBuilder builder(static_cast<NodeId>(n));
  long long arcs_seen = 0;
  NodeId node = 0;
  while (node < n && std::getline(in, line)) {
    ++line_number;
    line.erase(line.find_last_not_of(" \t\r\n\f\v") + 1);
    std::size_t start = 0;
    while (start < line.size() &&
           std::isspace(static_cast<unsigned char>(line[start]))) {
      ++start;
    }
    if (start < line.size() && line[start] == '%') continue;
    std::istringstream fields(line);
    long long neighbor;
    while (fields >> neighbor) {
      double weight = 1.0;
      if (edge_weights && !(fields >> weight)) {
        return Fail(line_number, "missing edge weight after neighbor id");
      }
      if (neighbor < 1 || neighbor > n) {
        return Fail(line_number, "neighbor id out of range [1, n]");
      }
      // Comparison-based rejection would let NaN through; require the
      // acceptance condition explicitly.
      if (!(weight > 0.0) || !std::isfinite(weight)) {
        return Fail(line_number, "edge weight must be finite and positive");
      }
      const NodeId head = static_cast<NodeId>(neighbor - 1);
      if (head == node) {
        return Fail(line_number, "self-loops are not representable");
      }
      ++arcs_seen;
      // Each undirected edge appears in both endpoint lines; add once.
      if (head > node) builder.AddEdge(node, head, weight);
    }
    ++node;
  }
  if (node != n) {
    return Fail(0, "truncated input: " + std::to_string(node) + " of " +
                       std::to_string(n) + " node lines present");
  }
  if (arcs_seen != 2 * m) {
    return Fail(0, "adjacency lists contain " + std::to_string(arcs_seen) +
                       " arcs, header promised " + std::to_string(2 * m));
  }
  Graph g = builder.Build();
  if (g.NumEdges() != m) {
    return Fail(0, "adjacency lists are not symmetric");
  }
  GraphParseResult result;
  result.graph = std::move(g);
  return result;
}

GraphParseResult ReadMetisOrError(const std::string& path) {
  std::ifstream file(path);
  if (!file) return Fail(0, "cannot open file: " + path);
  std::stringstream buffer;
  buffer << file.rdbuf();
  return ParseMetisOrError(buffer.str());
}

std::optional<Graph> ParseMetis(const std::string& text) {
  return ParseMetisOrError(text).graph;
}

std::optional<Graph> ReadMetis(const std::string& path) {
  return ReadMetisOrError(path).graph;
}

std::string WriteMetisString(const Graph& g) {
  bool weighted = false;
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    for (const Arc& arc : g.Neighbors(u)) {
      IMPREG_CHECK_MSG(arc.head != u,
                       "METIS format cannot express self-loops");
      if (arc.weight != 1.0) weighted = true;
    }
  }
  std::string out = std::to_string(g.NumNodes()) + " " +
                    std::to_string(g.NumEdges()) +
                    (weighted ? " 001" : "") + "\n";
  char buf[64];
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    bool first = true;
    for (const Arc& arc : g.Neighbors(u)) {
      if (!first) out += ' ';
      first = false;
      out += std::to_string(arc.head + 1);
      if (weighted) {
        std::snprintf(buf, sizeof(buf), " %.17g", arc.weight);
        out += buf;
      }
    }
    out += '\n';
  }
  return out;
}

bool WriteMetis(const Graph& g, const std::string& path) {
  std::ofstream file(path);
  if (!file) return false;
  file << WriteMetisString(g);
  return static_cast<bool>(file);
}

}  // namespace impreg
