#include "graph/io.h"

#include "util/check.h"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

namespace impreg {

namespace {

struct ParsedEdge {
  NodeId u;
  NodeId v;
  double weight;
};

}  // namespace

std::optional<Graph> ParseEdgeList(const std::string& text) {
  std::vector<ParsedEdge> edges;
  NodeId max_node = -1;
  NodeId declared_nodes = -1;

  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    // Trim leading whitespace.
    std::size_t start = 0;
    while (start < line.size() &&
           std::isspace(static_cast<unsigned char>(line[start]))) {
      ++start;
    }
    if (start == line.size()) continue;
    if (line[start] == '#' || line[start] == '%') {
      long long n = 0;
      if (std::sscanf(line.c_str() + start, "# nodes %lld", &n) == 1 ||
          std::sscanf(line.c_str() + start, "%% nodes %lld", &n) == 1) {
        if (n < 0) return std::nullopt;
        declared_nodes = static_cast<NodeId>(n);
      }
      continue;
    }
    long long u = 0, v = 0;
    double w = 1.0;
    char trailing = '\0';
    const int fields = std::sscanf(line.c_str() + start, "%lld %lld %lf %c",
                                   &u, &v, &w, &trailing);
    if (fields < 2 || fields > 3) return std::nullopt;
    if (fields == 2) w = 1.0;
    if (u < 0 || v < 0 || w <= 0.0) return std::nullopt;
    edges.push_back({static_cast<NodeId>(u), static_cast<NodeId>(v), w});
    max_node = std::max(max_node, static_cast<NodeId>(std::max(u, v)));
  }
  NodeId n = max_node + 1;
  if (declared_nodes >= 0) {
    if (declared_nodes < n) return std::nullopt;
    n = declared_nodes;
  }
  GraphBuilder builder(n);
  for (const ParsedEdge& e : edges) builder.AddEdge(e.u, e.v, e.weight);
  return builder.Build();
}

std::optional<Graph> ReadEdgeList(const std::string& path) {
  std::ifstream file(path);
  if (!file) return std::nullopt;
  std::stringstream buffer;
  buffer << file.rdbuf();
  return ParseEdgeList(buffer.str());
}

std::string WriteEdgeListString(const Graph& g) {
  std::string out = "# nodes " + std::to_string(g.NumNodes()) + "\n";
  char buf[96];
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    for (const Arc& arc : g.Neighbors(u)) {
      if (arc.head < u) continue;  // Each undirected edge once.
      if (arc.weight == 1.0) {
        std::snprintf(buf, sizeof(buf), "%d %d\n", u, arc.head);
      } else {
        std::snprintf(buf, sizeof(buf), "%d %d %.17g\n", u, arc.head,
                      arc.weight);
      }
      out += buf;
    }
  }
  return out;
}

bool WriteEdgeList(const Graph& g, const std::string& path) {
  std::ofstream file(path);
  if (!file) return false;
  file << WriteEdgeListString(g);
  return static_cast<bool>(file);
}

std::optional<Graph> ParseMetis(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  // Header: n m [fmt], skipping comments.
  long long n = 0, m = 0;
  std::string fmt = "0";
  bool have_header = false;
  while (std::getline(in, line)) {
    std::size_t start = 0;
    while (start < line.size() &&
           std::isspace(static_cast<unsigned char>(line[start]))) {
      ++start;
    }
    if (start == line.size() || line[start] == '%') continue;
    std::istringstream header(line.substr(start));
    if (!(header >> n >> m)) return std::nullopt;
    header >> fmt;  // Optional.
    have_header = true;
    break;
  }
  if (!have_header || n < 0 || m < 0) return std::nullopt;
  const bool edge_weights = !fmt.empty() && fmt.back() == '1' &&
                            (fmt == "1" || fmt == "001" || fmt == "01");
  if (fmt != "0" && fmt != "00" && fmt != "000" && !edge_weights) {
    return std::nullopt;  // Vertex weights/sizes not supported.
  }

  GraphBuilder builder(static_cast<NodeId>(n));
  long long arcs_seen = 0;
  NodeId node = 0;
  while (node < n && std::getline(in, line)) {
    std::size_t start = 0;
    while (start < line.size() &&
           std::isspace(static_cast<unsigned char>(line[start]))) {
      ++start;
    }
    if (start < line.size() && line[start] == '%') continue;
    std::istringstream fields(line);
    long long neighbor;
    while (fields >> neighbor) {
      double weight = 1.0;
      if (edge_weights && !(fields >> weight)) return std::nullopt;
      if (neighbor < 1 || neighbor > n || weight <= 0.0) {
        return std::nullopt;
      }
      const NodeId head = static_cast<NodeId>(neighbor - 1);
      if (head == node) return std::nullopt;  // No self-loops in METIS.
      ++arcs_seen;
      // Each undirected edge appears in both endpoint lines; add once.
      if (head > node) builder.AddEdge(node, head, weight);
    }
    ++node;
  }
  if (node != n || arcs_seen != 2 * m) return std::nullopt;
  Graph g = builder.Build();
  if (g.NumEdges() != m) return std::nullopt;  // Asymmetric adjacency.
  return g;
}

std::optional<Graph> ReadMetis(const std::string& path) {
  std::ifstream file(path);
  if (!file) return std::nullopt;
  std::stringstream buffer;
  buffer << file.rdbuf();
  return ParseMetis(buffer.str());
}

std::string WriteMetisString(const Graph& g) {
  bool weighted = false;
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    for (const Arc& arc : g.Neighbors(u)) {
      IMPREG_CHECK_MSG(arc.head != u,
                       "METIS format cannot express self-loops");
      if (arc.weight != 1.0) weighted = true;
    }
  }
  std::string out = std::to_string(g.NumNodes()) + " " +
                    std::to_string(g.NumEdges()) +
                    (weighted ? " 001" : "") + "\n";
  char buf[64];
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    bool first = true;
    for (const Arc& arc : g.Neighbors(u)) {
      if (!first) out += ' ';
      first = false;
      out += std::to_string(arc.head + 1);
      if (weighted) {
        std::snprintf(buf, sizeof(buf), " %.17g", arc.weight);
        out += buf;
      }
    }
    out += '\n';
  }
  return out;
}

bool WriteMetis(const Graph& g, const std::string& path) {
  std::ofstream file(path);
  if (!file) return false;
  file << WriteMetisString(g);
  return static_cast<bool>(file);
}

}  // namespace impreg
