#include "graph/algorithms.h"

#include <algorithm>
#include <queue>

#include "util/check.h"
#include "util/stats.h"

namespace impreg {

std::vector<int> BfsDistances(const Graph& g, NodeId source) {
  IMPREG_CHECK(g.IsValidNode(source));
  std::vector<int> dist(g.NumNodes(), -1);
  std::queue<NodeId> frontier;
  dist[source] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (const NodeId v : g.Heads(u)) {
      if (dist[v] < 0) {
        dist[v] = dist[u] + 1;
        frontier.push(v);
      }
    }
  }
  return dist;
}

std::vector<int> BfsDistancesWithin(const Graph& g, NodeId source,
                                    const std::vector<char>& members) {
  IMPREG_CHECK(g.IsValidNode(source));
  IMPREG_CHECK(members.size() == static_cast<std::size_t>(g.NumNodes()));
  IMPREG_CHECK_MSG(members[source], "source must belong to the subgraph");
  std::vector<int> dist(g.NumNodes(), -1);
  std::queue<NodeId> frontier;
  dist[source] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (const NodeId v : g.Heads(u)) {
      if (members[v] && dist[v] < 0) {
        dist[v] = dist[u] + 1;
        frontier.push(v);
      }
    }
  }
  return dist;
}

std::vector<int> ConnectedComponents(const Graph& g) {
  const NodeId n = g.NumNodes();
  std::vector<int> component(n, -1);
  int next = 0;
  std::vector<NodeId> stack;
  for (NodeId s = 0; s < n; ++s) {
    if (component[s] >= 0) continue;
    component[s] = next;
    stack.push_back(s);
    while (!stack.empty()) {
      const NodeId u = stack.back();
      stack.pop_back();
      for (const NodeId v : g.Heads(u)) {
        if (component[v] < 0) {
          component[v] = next;
          stack.push_back(v);
        }
      }
    }
    ++next;
  }
  return component;
}

int CountComponents(const Graph& g) {
  const std::vector<int> comp = ConnectedComponents(g);
  int count = 0;
  for (int c : comp) count = std::max(count, c + 1);
  return count;
}

bool IsConnected(const Graph& g) { return CountComponents(g) <= 1; }

Subgraph InducedSubgraph(const Graph& g, const std::vector<NodeId>& nodes) {
  Subgraph sub;
  sub.new_of.assign(g.NumNodes(), -1);
  sub.original_of = nodes;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    IMPREG_CHECK(g.IsValidNode(nodes[i]));
    IMPREG_CHECK_MSG(sub.new_of[nodes[i]] < 0, "duplicate node in subset");
    sub.new_of[nodes[i]] = static_cast<NodeId>(i);
  }
  GraphBuilder builder(static_cast<NodeId>(nodes.size()));
  for (NodeId u : nodes) {
    const auto heads = g.Heads(u);
    const auto weights = g.Weights(u);
    for (std::size_t i = 0; i < heads.size(); ++i) {
      const NodeId v = heads[i];
      if (sub.new_of[v] < 0) continue;
      // Emit each edge once: from the endpoint with smaller original id
      // (self-loops from their single arc).
      if (u < v || u == v) {
        builder.AddEdge(sub.new_of[u], sub.new_of[v], weights[i]);
      }
    }
  }
  sub.graph = builder.Build();
  return sub;
}

Subgraph LargestComponent(const Graph& g) {
  const std::vector<int> comp = ConnectedComponents(g);
  int num_components = 0;
  for (int c : comp) num_components = std::max(num_components, c + 1);
  if (num_components == 0) return Subgraph{};
  std::vector<std::int64_t> sizes(num_components, 0);
  for (int c : comp) ++sizes[c];
  const int best = static_cast<int>(
      std::max_element(sizes.begin(), sizes.end()) - sizes.begin());
  std::vector<NodeId> nodes;
  nodes.reserve(static_cast<std::size_t>(sizes[best]));
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    if (comp[u] == best) nodes.push_back(u);
  }
  return InducedSubgraph(g, nodes);
}

int EstimateDiameter(const Graph& g, NodeId start, int sweeps) {
  if (g.NumNodes() < 2) return 0;
  IMPREG_CHECK(g.IsValidNode(start));
  NodeId frontier = start;
  int best = 0;
  for (int round = 0; round < sweeps; ++round) {
    const std::vector<int> dist = BfsDistances(g, frontier);
    int far_dist = 0;
    NodeId far_node = frontier;
    for (NodeId u = 0; u < g.NumNodes(); ++u) {
      if (dist[u] > far_dist) {
        far_dist = dist[u];
        far_node = u;
      }
    }
    if (far_dist <= best && round > 0) break;
    best = std::max(best, far_dist);
    frontier = far_node;
  }
  return best;
}

DegreeStats ComputeDegreeStats(const Graph& g) {
  DegreeStats stats;
  if (g.NumNodes() == 0) return stats;
  const Summary s = Summarize(g.Degrees());
  stats.min = s.min;
  stats.max = s.max;
  stats.mean = s.mean;
  stats.median = s.median;
  return stats;
}

double AverageShortestPathWithin(const Graph& g,
                                 const std::vector<NodeId>& nodes) {
  if (nodes.size() < 2) return 0.0;
  std::vector<char> members(g.NumNodes(), 0);
  for (NodeId u : nodes) {
    IMPREG_CHECK(g.IsValidNode(u));
    members[u] = 1;
  }
  double total = 0.0;
  std::int64_t pairs = 0;
  for (NodeId u : nodes) {
    const std::vector<int> dist = BfsDistancesWithin(g, u, members);
    for (NodeId v : nodes) {
      if (v != u && dist[v] > 0) {
        total += dist[v];
        ++pairs;
      }
    }
  }
  return pairs > 0 ? total / static_cast<double>(pairs) : 0.0;
}

int DiameterWithin(const Graph& g, const std::vector<NodeId>& nodes) {
  if (nodes.size() < 2) return 0;
  std::vector<char> members(g.NumNodes(), 0);
  for (NodeId u : nodes) {
    IMPREG_CHECK(g.IsValidNode(u));
    members[u] = 1;
  }
  int best = 0;
  for (NodeId u : nodes) {
    const std::vector<int> dist = BfsDistancesWithin(g, u, members);
    for (NodeId v : nodes) best = std::max(best, dist[v]);
  }
  return best;
}

}  // namespace impreg
