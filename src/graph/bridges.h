#ifndef IMPREG_GRAPH_BRIDGES_H_
#define IMPREG_GRAPH_BRIDGES_H_

#include <utility>
#include <vector>

#include "graph/graph.h"

/// \file
/// Bridges and whiskers. The paper's references [27, 28] show that the
/// minimum-conductance sets of real social networks at small scales are
/// overwhelmingly "whiskers": maximal subgraphs attached to the rest of
/// the graph by a single (bridge) edge. Enumerating them exactly — via
/// Tarjan's linear-time bridge algorithm — gives both a ground-truth
/// lower envelope for NCP plots ("bag of whiskers") and the structural
/// explanation for what the flow family's best cuts actually are.

namespace impreg {

/// An undirected bridge edge (u < v).
struct Bridge {
  NodeId u;
  NodeId v;
};

/// All bridges (cut edges) of the graph, in discovery order. An edge
/// {u,v} is a bridge iff removing it disconnects u from v. Edges with
/// parallel weight still count once (our graphs merge parallels);
/// self-loops are never bridges. O(n + m), iterative DFS.
std::vector<Bridge> FindBridges(const Graph& g);

/// A whisker: a connected component of the graph after removing all
/// bridges ("2-edge-connected component forest piece"), together with
/// its conductance-relevant size. Whiskers are all such components
/// except, per original connected component, the one with the largest
/// volume (the "core" piece).
struct Whisker {
  std::vector<NodeId> nodes;
  double volume = 0.0;
};

/// Enumerates the whiskers of the graph, largest volume first.
std::vector<Whisker> FindWhiskers(const Graph& g);

}  // namespace impreg

#endif  // IMPREG_GRAPH_BRIDGES_H_
