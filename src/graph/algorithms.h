#ifndef IMPREG_GRAPH_ALGORITHMS_H_
#define IMPREG_GRAPH_ALGORITHMS_H_

#include <vector>

#include "graph/graph.h"

/// \file
/// Basic graph algorithms: traversal, components, induced subgraphs and
/// structural statistics. These are the "relational-model-free"
/// operations Section 2.1 of the paper contrasts with flat tables.

namespace impreg {

/// Unweighted (hop-count) BFS distances from `source`; unreachable nodes
/// get -1.
std::vector<int> BfsDistances(const Graph& g, NodeId source);

/// BFS distances from `source` restricted to the induced subgraph on
/// `members` (a 0/1 mask of length n). `source` must be a member.
std::vector<int> BfsDistancesWithin(const Graph& g, NodeId source,
                                    const std::vector<char>& members);

/// Connected component id (0-based, in order of discovery) per node.
std::vector<int> ConnectedComponents(const Graph& g);

/// Number of connected components.
int CountComponents(const Graph& g);

/// True if the graph is connected (the empty graph counts as connected).
bool IsConnected(const Graph& g);

/// The induced subgraph on `nodes` together with the mapping used.
struct Subgraph {
  Graph graph;
  /// original_of[i] is the original id of subgraph node i.
  std::vector<NodeId> original_of;
  /// new_of[u] is the subgraph id of original node u, or -1 if dropped.
  std::vector<NodeId> new_of;
};

/// Extracts the subgraph induced by `nodes` (need not be sorted; ids must
/// be valid and distinct).
Subgraph InducedSubgraph(const Graph& g, const std::vector<NodeId>& nodes);

/// Extracts the largest connected component (ties broken by smallest
/// component id). Returns an empty subgraph for an empty graph.
Subgraph LargestComponent(const Graph& g);

/// Lower bound on the diameter via `sweeps` rounds of double-BFS
/// (each round: BFS from the farthest node found so far). Deterministic
/// given `start`. Returns 0 for graphs with < 2 nodes; only the component
/// of `start` is explored.
int EstimateDiameter(const Graph& g, NodeId start = 0, int sweeps = 4);

/// Degree distribution statistics.
struct DegreeStats {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double median = 0.0;
};

DegreeStats ComputeDegreeStats(const Graph& g);

/// Average shortest-path (hop) length over all connected ordered pairs in
/// the subgraph induced by `nodes`; pairs in different components of the
/// induced subgraph are skipped. Returns 0 if no connected pair exists.
/// O(|nodes| * (edges within)) — intended for small clusters.
double AverageShortestPathWithin(const Graph& g,
                                 const std::vector<NodeId>& nodes);

/// Exact diameter (max hop distance) of the subgraph induced by `nodes`,
/// ignoring disconnected pairs. O(|nodes| * edges-within).
int DiameterWithin(const Graph& g, const std::vector<NodeId>& nodes);

}  // namespace impreg

#endif  // IMPREG_GRAPH_ALGORITHMS_H_
