#ifndef IMPREG_PARTITION_MOV_H_
#define IMPREG_PARTITION_MOV_H_

#include <vector>

#include "core/solve_status.h"
#include "graph/graph.h"
#include "linalg/vector_ops.h"
#include "partition/sweep.h"

/// \file
/// MOV locally-biased spectral partitioning [33] — Problem (8) of the
/// paper: minimize the Rayleigh quotient xᵀℒx subject to xᵀx = 1,
/// x ⟂ D^{1/2}1, and a seed-correlation constraint (xᵀD^{1/2}s)² ≥ κ.
///
/// The optimality conditions make the solution a Personalized-PageRank-
/// type linear solve: x*(σ) ∝ (ℒ − σI)⁺ P s_hat for a shift σ < λ₂,
/// where P projects off the trivial eigenvector and s_hat = D^{1/2}s.
/// As σ → −∞ the solution collapses onto the seed (κ → 1); as σ → λ₂
/// it sweeps out to the global eigenvector v₂ (κ → correlation of v₂
/// with the seed). The shift (equivalently κ) is the locality knob; we
/// expose both: solve at a given σ, or binary-search σ for a target κ.
///
/// This is the "optimization approach" of §3.3: it explicitly solves a
/// well-defined program, but each solve touches the whole graph —
/// the contrast with push/Nibble/hk-relax is the point of experiment T5.

namespace impreg {

/// Options for the MOV solver.
struct MovOptions {
  /// CG tolerance/iterations for each linear solve.
  double cg_tolerance = 1e-10;
  int cg_max_iterations = 4000;
  /// Binary-search iterations for the correlation target.
  int search_iterations = 40;
};

/// Result of a MOV solve.
struct MovResult {
  /// The optimal hat-space vector (unit length).
  Vector x;
  /// Its Rayleigh quotient with ℒ (≥ λ₂ − slack by construction).
  double rayleigh = 0.0;
  /// Achieved squared correlation (xᵀ s_hat)².
  double correlation_sq = 0.0;
  /// The shift σ used.
  double sigma = 0.0;
  /// Sweep cut of x.
  std::vector<NodeId> set;
  CutStats stats;
  /// Diagnostics of the inner CG solve. If the solve broke down or went
  /// non-finite, x degrades to the projected seed direction (the
  /// maximally local feasible vector) and the status says so.
  SolverDiagnostics diagnostics;
};

/// Solves Problem (8) at a given shift σ < λ₂ (the caller supplies
/// lambda2; pass the value from SpectralPartition). Seed is a node set.
MovResult MovSolveAtSigma(const Graph& g, const std::vector<NodeId>& seed,
                          double sigma, const MovOptions& options = {});

/// Solves Problem (8) for a target squared correlation κ ∈ (0, 1) by
/// binary search on σ ∈ (sigma_min, λ₂). Larger κ ⇒ more local.
MovResult MovSolveForCorrelation(const Graph& g,
                                 const std::vector<NodeId>& seed,
                                 double kappa, double lambda2,
                                 const MovOptions& options = {});

}  // namespace impreg

#endif  // IMPREG_PARTITION_MOV_H_
