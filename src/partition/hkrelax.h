#ifndef IMPREG_PARTITION_HKRELAX_H_
#define IMPREG_PARTITION_HKRELAX_H_

#include <cstdint>

#include "core/solve_status.h"
#include "core/work_budget.h"
#include "graph/graph.h"
#include "linalg/vector_ops.h"
#include "partition/sweep.h"

/// \file
/// Local heat-kernel clustering — the paper's third strongly local
/// method (§3.3, Chung [15]): approximate the heat-kernel PageRank
/// ρ = e^{−t} Σ_k (t^k/k!) M^k s with truncation. We evaluate the
/// Taylor series term by term on sparse vectors, zeroing entries below
/// δ·d(u) after every walk application (so the support stays bounded),
/// and stop when the remaining Poisson tail is below `tail_tolerance`.
/// The dropped mass is tracked and reported: it is exactly the implicit
/// regularization the truncation performs.

namespace impreg {

/// Options for HeatKernelRelax.
struct HkRelaxOptions {
  /// Diffusion time t > 0.
  double t = 10.0;
  /// Per-step truncation threshold (entries < δ·d(u) are dropped).
  double delta = 1e-5;
  /// Taylor series is cut when the Poisson(t) tail falls below this.
  double tail_tolerance = 1e-6;
  /// Optional volume cap for the sweep (0 = none).
  double max_volume = 0.0;
  /// Optional cooperative budget (nullptr = unlimited), checked between
  /// Taylor terms; on exhaustion the series is truncated there
  /// (kBudgetExhausted) — the cut tail mass is reported in dropped_mass
  /// like any other truncation.
  WorkBudget* budget = nullptr;
};

/// Result of a heat-kernel relax run.
struct HkRelaxResult {
  /// Best sweep cut of the approximate heat-kernel vector.
  std::vector<NodeId> set;
  CutStats stats;
  /// The approximate ρ (nonnegative, mass ≤ 1 for a distribution seed).
  Vector rho;
  /// Mass lost to truncation plus the discarded Poisson tail.
  double dropped_mass = 0.0;
  /// Taylor terms evaluated.
  int terms = 0;
  /// Σ over terms of support scanned — the work measure.
  std::int64_t work = 0;
  /// kConverged: tail below tolerance. kBudgetExhausted: series cut
  /// early by the budget. kNonFinite: a term went non-finite — poisoned
  /// entries were dropped and the finite prefix swept.
  SolverDiagnostics diagnostics;
};

/// Runs the truncated heat-kernel diffusion from a single seed node and
/// sweeps the result.
HkRelaxResult HeatKernelRelax(const Graph& g, NodeId seed,
                              const HkRelaxOptions& options = {});

/// Same, from an arbitrary nonnegative seed distribution.
HkRelaxResult HeatKernelRelaxFromDistribution(
    const Graph& g, const Vector& seed, const HkRelaxOptions& options = {});

}  // namespace impreg

#endif  // IMPREG_PARTITION_HKRELAX_H_
