#include "partition/conductance.h"

#include <algorithm>

#include "partition/conductance_kernel.h"
#include "util/check.h"

namespace impreg {

// Kernel bodies live in partition/conductance_kernel.h as templates
// over the adjacency provider; these `Graph` instantiations are the
// historical entry points.

CutStats ComputeCutStatsFromMask(const Graph& g,
                                 const std::vector<char>& mask) {
  return ComputeCutStatsFromMaskOver(g, mask);
}

CutStats ComputeCutStats(const Graph& g, const std::vector<NodeId>& set) {
  return ComputeCutStatsFromMask(g, NodesToMask(g, set));
}

double Conductance(const Graph& g, const std::vector<NodeId>& set) {
  if (set.empty() || static_cast<NodeId>(set.size()) == g.NumNodes()) {
    return 1.0;
  }
  return ComputeCutStats(g, set).conductance;
}

double Expansion(const Graph& g, const std::vector<NodeId>& set) {
  if (set.empty() || static_cast<NodeId>(set.size()) == g.NumNodes()) {
    return 1.0;
  }
  const CutStats stats = ComputeCutStats(g, set);
  const auto complement_size = g.NumNodes() - stats.size;
  const double denom =
      static_cast<double>(std::min<std::int64_t>(stats.size, complement_size));
  return denom > 0.0 ? stats.cut / denom : 1.0;
}

std::vector<NodeId> MaskToNodes(const std::vector<char>& mask) {
  std::vector<NodeId> nodes;
  for (std::size_t u = 0; u < mask.size(); ++u) {
    if (mask[u]) nodes.push_back(static_cast<NodeId>(u));
  }
  return nodes;
}

std::vector<char> NodesToMask(const Graph& g,
                              const std::vector<NodeId>& nodes) {
  return NodesToMaskOver(g, nodes);
}

std::vector<NodeId> ComplementSet(const Graph& g,
                                  const std::vector<NodeId>& set) {
  std::vector<char> mask = NodesToMask(g, set);
  std::vector<NodeId> complement;
  complement.reserve(g.NumNodes() - set.size());
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    if (!mask[u]) complement.push_back(u);
  }
  return complement;
}

double BruteForceMinConductance(const Graph& g) {
  const int n = g.NumNodes();
  IMPREG_CHECK_MSG(n >= 2 && n <= 24, "brute force limited to 2..24 nodes");
  double best = 1.0;
  std::vector<char> mask(n, 0);
  // Fix node 0 out of S to halve the enumeration (φ(S) = φ(S̄)).
  const std::uint32_t limit = 1u << (n - 1);
  for (std::uint32_t bits = 1; bits < limit; ++bits) {
    for (int u = 0; u < n - 1; ++u) mask[u + 1] = (bits >> u) & 1u;
    best = std::min(best, ComputeCutStatsFromMask(g, mask).conductance);
  }
  return best;
}

}  // namespace impreg
