#ifndef IMPREG_PARTITION_SPECTRAL_KWAY_H_
#define IMPREG_PARTITION_SPECTRAL_KWAY_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "linalg/lanczos.h"

/// \file
/// Spectral k-way clustering: embed nodes with the k smallest
/// eigenvectors of ℒ and round with k-means (the Ng–Jordan–Weiss
/// recipe). This is the "classification and other common machine
/// learning tasks" use of Laplacian eigenvectors the paper's §3.1
/// lists, and the spectral counterpart of flow/recursive_partition.
///
/// Note the §3.2 lens: the embedding step is the relaxation ("filter
/// the data through ℝ^k"), the k-means step is the rounding — replacing
/// the sweep cut when k > 2.

namespace impreg {

/// Options for SpectralClusterKway.
struct SpectralClusteringOptions {
  /// Lloyd iterations per restart and number of restarts.
  int kmeans_iterations = 60;
  int kmeans_restarts = 6;
  std::uint64_t seed = 0x5ca1eULL;
  LanczosOptions lanczos;
};

/// Result of a spectral k-way clustering.
struct SpectralClusteringResult {
  /// labels[u] ∈ [0, k).
  std::vector<int> labels;
  /// Cluster sizes (node counts), length k (clusters may be empty on
  /// degenerate inputs).
  std::vector<std::int64_t> sizes;
  /// Total edge weight crossing between clusters.
  double cut = 0.0;
  /// The eigenvalues used (λ₁ … λ_k of ℒ, ascending).
  std::vector<double> eigenvalues;
  /// Explicit residual norms ‖ℒ vᵢ − λᵢ vᵢ‖ of the embedding vectors,
  /// all k computed with one batched SpMM over the adjacency — a cheap
  /// a-posteriori certificate of the Lanczos solve.
  std::vector<double> residuals;
};

/// Clusters the graph into k ≥ 2 groups. Requires a graph with at least
/// one edge and k ≤ n.
SpectralClusteringResult SpectralClusterKway(
    const Graph& g, int k, const SpectralClusteringOptions& options = {});

}  // namespace impreg

#endif  // IMPREG_PARTITION_SPECTRAL_KWAY_H_
