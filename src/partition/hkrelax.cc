#include "partition/hkrelax.h"

#include "diffusion/seed.h"
#include "partition/hkrelax_kernel.h"

namespace impreg {

// The kernel body lives in partition/hkrelax_kernel.h as a template
// over the adjacency provider (the sharded serving tier reuses it
// against shard-set frozen views); this `Graph` instantiation is the
// historical entry point, bit-identical to the pre-template code.
HkRelaxResult HeatKernelRelaxFromDistribution(const Graph& g,
                                              const Vector& seed,
                                              const HkRelaxOptions& options) {
  return HeatKernelRelaxFromDistributionOver(g, seed, options);
}

HkRelaxResult HeatKernelRelax(const Graph& g, NodeId seed,
                              const HkRelaxOptions& options) {
  return HeatKernelRelaxFromDistribution(g, SingleNodeSeed(g, seed), options);
}

}  // namespace impreg
