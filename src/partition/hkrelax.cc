#include "partition/hkrelax.h"

#include <cmath>
#include <unordered_map>

#include "diffusion/seed.h"
#include "util/check.h"

namespace impreg {

HkRelaxResult HeatKernelRelaxFromDistribution(const Graph& g,
                                              const Vector& seed,
                                              const HkRelaxOptions& options) {
  IMPREG_CHECK(seed.size() == static_cast<std::size_t>(g.NumNodes()));
  IMPREG_CHECK(options.t > 0.0);
  IMPREG_CHECK(options.delta >= 0.0);
  IMPREG_CHECK(options.tail_tolerance > 0.0);

  HkRelaxResult result;
  result.stats.conductance = 1.0;
  result.rho.assign(g.NumNodes(), 0.0);

  const double t = options.t;
  // Sparse current term (t^k/k!)·(truncated M)^k s.
  std::unordered_map<NodeId, double> term;
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    if (seed[u] > 0.0) term.emplace(u, seed[u]);
  }
  IMPREG_CHECK_MSG(!term.empty(), "seed distribution is empty");

  // Accumulate k = 0 contribution.
  for (const auto& [u, mass] : term) result.rho[u] += mass;

  double poisson = 1.0;            // t^k / k!.
  double tail = std::exp(t) - 1.0;  // Σ_{j>k} t^j/j!.
  int k = 0;
  while (tail * std::exp(-t) > options.tail_tolerance && !term.empty()) {
    ++k;
    std::unordered_map<NodeId, double> next;
    next.reserve(term.size() * 2);
    for (const auto& [u, mass] : term) {
      const double d = g.Degree(u);
      if (d <= 0.0) continue;  // M annihilates isolated mass.
      const double spread = mass / d;
      const auto heads = g.Heads(u);
      const auto weights = g.Weights(u);
      for (std::size_t i = 0; i < heads.size(); ++i) {
        next[heads[i]] += spread * weights[i];
      }
      result.work += g.OutDegree(u);
    }
    poisson *= t / static_cast<double>(k);
    tail -= poisson;
    // Scale into the k-th Taylor term and truncate small entries. The
    // threshold scales with the term's Poisson weight t^k/k! so the
    // truncation is uniform in *distribution* units across terms.
    term.clear();
    const double scale = t / static_cast<double>(k);
    for (const auto& [u, mass] : next) {
      const double value = mass * scale;
      const double d = g.Degree(u);
      if (d > 0.0 && value < options.delta * d * poisson) {
        result.dropped_mass += value;  // In (t^k/k!)-weighted units.
      } else if (value > 0.0) {
        term.emplace(u, value);
        result.rho[u] += value;
      }
    }
    result.terms = k;
  }
  // Everything is still in Σ t^k/k! units; apply the e^{−t} prefactor.
  // The discarded Poisson tail also counts as dropped mass.
  for (double& v : result.rho) v *= std::exp(-t);
  result.dropped_mass = result.dropped_mass * std::exp(-t) +
                        std::max(tail, 0.0) * std::exp(-t);

  SweepOptions sweep;
  sweep.scaling = SweepScaling::kDegreeNormalized;
  sweep.max_volume = options.max_volume;
  const SweepResult swept = SweepCutOverSupport(g, result.rho, sweep);
  result.set = swept.set;
  result.stats = swept.stats;
  return result;
}

HkRelaxResult HeatKernelRelax(const Graph& g, NodeId seed,
                              const HkRelaxOptions& options) {
  return HeatKernelRelaxFromDistribution(g, SingleNodeSeed(g, seed), options);
}

}  // namespace impreg
