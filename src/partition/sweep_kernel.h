#ifndef IMPREG_PARTITION_SWEEP_KERNEL_H_
#define IMPREG_PARTITION_SWEEP_KERNEL_H_

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "core/parallel.h"
#include "partition/conductance_kernel.h"
#include "partition/sweep.h"
#include "util/check.h"

/// \file
/// The sweep-cut kernel as a template over the adjacency provider.
/// sweep.cc instantiates it over `Graph` (bit-identical to the
/// historical implementation); the sharded serving tier instantiates
/// it over a shard-set frozen view so the rounding step of hk-relax
/// and Nibble runs shard-local with the same accumulation order.
///
/// Requirements on `G`: `NumNodes()`, `Degree(u)`, `Heads(u)` /
/// `Weights(u)` spans, `TotalVolume()`, `IsValidNode(u)`. The
/// cut-delta pass runs under ParallelFor, so `G`'s accessors must be
/// safe for concurrent reads (the sharded views use relaxed atomics
/// for their work counters for exactly this reason).

namespace impreg {

namespace sweep_internal {

template <typename G>
double KeyOver(const G& g, const Vector& values, SweepScaling scaling,
               NodeId u) {
  const double d = g.Degree(u);
  switch (scaling) {
    case SweepScaling::kRaw:
      return values[u];
    case SweepScaling::kDegreeNormalized:
      return d > 0.0 ? values[u] / d : -std::numeric_limits<double>::max();
    case SweepScaling::kSqrtDegreeNormalized:
      return d > 0.0 ? values[u] / std::sqrt(d)
                     : -std::numeric_limits<double>::max();
  }
  return values[u];
}

}  // namespace sweep_internal

template <typename G>
SweepResult RunSweepOver(const G& g, const Vector& values,
                         std::vector<NodeId> order,
                         const SweepOptions& options) {
  IMPREG_CHECK(values.size() == static_cast<std::size_t>(g.NumNodes()));
  std::stable_sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return sweep_internal::KeyOver(g, values, options.scaling, a) >
           sweep_internal::KeyOver(g, values, options.scaling, b);
  });

  SweepResult result;
  result.order = std::move(order);
  result.conductance_profile.reserve(result.order.size());

  const double total_volume = g.TotalVolume();
  const std::int64_t count = static_cast<std::int64_t>(result.order.size());

  // Rank of each node in the sweep order; nodes outside the order (the
  // support variant sweeps a subset) rank past everything and so never
  // count as set members.
  std::vector<std::int64_t> rank(g.NumNodes(),
                                 std::numeric_limits<std::int64_t>::max());
  for (std::int64_t k = 0; k < count; ++k) rank[result.order[k]] = k;

  // The O(m) part — scanning each node's neighbors to see how the cut
  // changes when it joins the prefix — is a pure function of the ranks
  // ("is the neighbor earlier in the order?"), so every position is
  // computed independently in parallel. Edges to earlier nodes stop
  // crossing, all other (non-loop) incident edges start crossing.
  Vector cut_delta(count);
  ParallelFor(0, count, 64, [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t k = begin; k < end; ++k) {
      const NodeId u = result.order[k];
      double to_set = 0.0;
      double loops = 0.0;
      const auto heads = g.Heads(u);
      const auto weights = g.Weights(u);
      for (std::size_t i = 0; i < heads.size(); ++i) {
        if (heads[i] == u) {
          loops += weights[i];
        } else if (rank[heads[i]] < k) {
          to_set += weights[i];
        }
      }
      cut_delta[k] = g.Degree(u) - loops - 2.0 * to_set;
    }
  });

  // Sequential O(n) prefix scan over the deltas: same accumulation order
  // as a fully serial sweep, hence bit-identical for any thread count.
  double volume = 0.0;
  double cut = 0.0;
  double best = std::numeric_limits<double>::max();
  std::size_t best_prefix = 0;  // 0 = none yet; else prefix length.

  for (std::int64_t k = 0; k < count; ++k) {
    const NodeId u = result.order[k];
    volume += g.Degree(u);
    cut += cut_delta[k];
    const double denom = std::min(volume, total_volume - volume);
    const double phi = denom > 0.0 ? cut / denom : 1.0;
    result.conductance_profile.push_back(phi);

    const NodeId size = static_cast<NodeId>(k + 1);
    const bool feasible =
        size >= options.min_size &&
        (options.max_size == 0 || size <= options.max_size) &&
        (options.max_volume <= 0.0 || volume <= options.max_volume) &&
        size < g.NumNodes() && denom > 0.0;
    if (feasible && phi < best) {
      best = phi;
      best_prefix = k + 1;
    }
  }

  if (best_prefix > 0) {
    result.set.assign(result.order.begin(),
                      result.order.begin() + best_prefix);
    std::sort(result.set.begin(), result.set.end());
    result.stats = ComputeCutStatsOver(g, result.set);
  } else {
    result.stats.conductance = 1.0;
  }
  return result;
}

template <typename G>
SweepResult SweepCutOverSupportOver(const G& g, const Vector& values,
                                    const SweepOptions& options,
                                    double threshold) {
  IMPREG_CHECK(values.size() == static_cast<std::size_t>(g.NumNodes()));
  std::vector<NodeId> support;
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    if (values[u] > threshold) support.push_back(u);
  }
  return RunSweepOver(g, values, std::move(support), options);
}

template <typename G>
SweepResult SweepCutOverNodesOver(const G& g, const Vector& values,
                                  std::vector<NodeId> nodes,
                                  const SweepOptions& options) {
  // A duplicated id would silently overwrite its rank and add
  // g.Degree(u) to the prefix volume once per copy, corrupting the
  // conductance profile and the chosen set — keep the first occurrence
  // of each id only.
  std::vector<char> seen(g.NumNodes(), 0);
  std::size_t kept = 0;
  for (NodeId u : nodes) {
    IMPREG_CHECK(g.IsValidNode(u));
    if (seen[u]) continue;
    seen[u] = 1;
    nodes[kept++] = u;
  }
  nodes.resize(kept);
  return RunSweepOver(g, values, std::move(nodes), options);
}

}  // namespace impreg

#endif  // IMPREG_PARTITION_SWEEP_KERNEL_H_
