#ifndef IMPREG_PARTITION_CONDUCTANCE_H_
#define IMPREG_PARTITION_CONDUCTANCE_H_

#include <vector>

#include "graph/graph.h"

/// \file
/// Cut metrics — Equation (6) of the paper:
///
///   φ(S) = |E(S, S̄)| / min(vol S, vol S̄),
///
/// with vol S = Σ_{u∈S} d(u) (self-loops contribute volume but can never
/// be cut). Expansion α(S) uses set cardinalities instead of volumes.

namespace impreg {

/// A node set with its cut statistics.
struct CutStats {
  double cut = 0.0;            ///< Total weight of edges crossing S.
  double volume = 0.0;         ///< vol(S).
  double complement_volume = 0.0;  ///< vol(S̄).
  std::int64_t size = 0;       ///< |S|.
  double conductance = 0.0;    ///< φ(S); 1 when both volumes are 0.
};

/// Computes cut statistics for the set given as a node list (ids must be
/// distinct and valid).
CutStats ComputeCutStats(const Graph& g, const std::vector<NodeId>& set);

/// Computes cut statistics from a 0/1 membership mask of length n.
CutStats ComputeCutStatsFromMask(const Graph& g,
                                 const std::vector<char>& mask);

/// φ(S) for a node list. Degenerate sets (empty, full, or zero volume on
/// both sides) return 1, the worst possible value.
double Conductance(const Graph& g, const std::vector<NodeId>& set);

/// Expansion α(S) = cut(S)/min(|S|, |S̄|) (1 for degenerate sets).
double Expansion(const Graph& g, const std::vector<NodeId>& set);

/// Converts a mask to a node list.
std::vector<NodeId> MaskToNodes(const std::vector<char>& mask);

/// Converts a node list to a mask of length g.NumNodes().
std::vector<char> NodesToMask(const Graph& g,
                              const std::vector<NodeId>& nodes);

/// The complement node list.
std::vector<NodeId> ComplementSet(const Graph& g,
                                  const std::vector<NodeId>& set);

/// Exhaustive minimum conductance over all 2^{n-1}−1 nontrivial cuts —
/// ground truth for tests; requires 2 ≤ n ≤ 24.
double BruteForceMinConductance(const Graph& g);

}  // namespace impreg

#endif  // IMPREG_PARTITION_CONDUCTANCE_H_
