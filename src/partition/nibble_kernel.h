#ifndef IMPREG_PARTITION_NIBBLE_KERNEL_H_
#define IMPREG_PARTITION_NIBBLE_KERNEL_H_

#include <algorithm>
#include <unordered_map>

#include "core/metrics.h"
#include "core/trace.h"
#include "linalg/vector_ops.h"
#include "partition/nibble.h"
#include "partition/sweep_kernel.h"
#include "util/check.h"
#include "util/fault.h"

/// \file
/// The Nibble lazy-walk kernel as a template over the adjacency
/// provider — see partition/hkrelax_kernel.h for the bit-identity
/// argument (the sparse map iteration order depends only on the
/// insertion sequence, which any provider serving the same bits
/// reproduces exactly).
///
/// Requirements on `G`: `NumNodes()`, `Degree(u)`, `OutDegree(u)`,
/// `Heads(u)`/`Weights(u)` spans, `TotalVolume()`, `IsValidNode(u)`.

namespace impreg {

template <typename G>
NibbleResult NibbleFromDistributionOver(const G& g, const Vector& seed,
                                        const NibbleOptions& options) {
  IMPREG_CHECK(seed.size() == static_cast<std::size_t>(g.NumNodes()));
  IMPREG_CHECK(options.steps >= 1);
  IMPREG_CHECK(options.epsilon >= 0.0);
  IMPREG_CHECK(options.alpha >= 0.0 && options.alpha <= 1.0);

  NibbleResult result;
  result.stats.conductance = 1.0;
  SolverTrace* trace = IMPREG_TRACE_BEGIN("nibble");
  if (!AllFinite(seed)) {
    result.distribution.assign(g.NumNodes(), 0.0);
    result.diagnostics.status = SolveStatus::kNonFinite;
    result.diagnostics.detail =
        "seed has non-finite entries; returning no cut";
    IMPREG_TRACE_FINISH(trace, result.diagnostics);
    return result;
  }

  // Sparse representation: map node → mass, rebuilt each step. The
  // truncation keeps the support bounded (≈ mass/(ε·d_min) entries), so
  // per-step work is independent of n.
  std::unordered_map<NodeId, double> current;
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    if (seed[u] > 0.0) current.emplace(u, seed[u]);
  }
  IMPREG_CHECK_MSG(!current.empty(), "seed distribution is empty");

  const double hold = options.alpha;
  Vector dense(g.NumNodes(), 0.0);

  bool budget_stop = false;
  bool poisoned = false;
  int steps_done = 0;
  for (int step = 1; step <= options.steps; ++step) {
    if (options.budget != nullptr) {
      IMPREG_FAULT_POINT("nibble/budget", options.budget);
      if (options.budget->Exhausted()) {
        budget_stop = true;
        IMPREG_TRACE_EVENT(trace, step, kBudget,
                           static_cast<double>(options.budget->Spent()));
        break;
      }
    }
    steps_done = step;
    // One lazy-walk step on the sparse vector.
    std::unordered_map<NodeId, double> next;
    next.reserve(current.size() * 2);
    for (const auto& [u, mass] : current) {
      const double d = g.Degree(u);
      if (d <= 0.0) {
        next[u] += mass;  // Isolated node holds its mass.
        continue;
      }
      next[u] += hold * mass;
      const double spread = (1.0 - hold) * mass / d;
      const auto heads = g.Heads(u);
      const auto weights = g.Weights(u);
      for (std::size_t i = 0; i < heads.size(); ++i) {
        next[heads[i]] += spread * weights[i];
      }
      result.work += g.OutDegree(u);
      if (options.budget != nullptr) options.budget->Charge(g.OutDegree(u));
      IMPREG_TRACE_EVENT(trace, step, kArcWork,
                         static_cast<double>(g.OutDegree(u)));
    }
    // Truncate: q(u) < ε·d(u) → 0 (the implicit regularization step).
    current.clear();
    for (const auto& [u, raw_mass] : next) {
      double mass = raw_mass;
      IMPREG_FAULT_POINT("nibble/mass", mass);
      const double d = g.Degree(u);
      if (!std::isfinite(mass)) {
        // Drop poisoned mass before it can enter the distribution (every
        // `current` insert is gated on this check).
        poisoned = true;
      } else if (d > 0.0 && mass < options.epsilon * d) {
        result.truncated_mass += mass;
      } else if (mass > 0.0) {
        current.emplace(u, mass);
      }
    }
    if (poisoned) {
      IMPREG_TRACE_EVENT(trace, step, kFault, result.truncated_mass);
      break;
    }
    if (current.empty()) break;  // Everything truncated away.

    // Sweep the current support only: the dense scratch vector is
    // written and cleared on the support alone, so the step stays
    // strongly local.
    std::vector<NodeId> support_nodes;
    support_nodes.reserve(current.size());
    for (const auto& [u, mass] : current) {
      dense[u] = mass;
      support_nodes.push_back(u);
    }
    SweepOptions sweep;
    sweep.scaling = SweepScaling::kDegreeNormalized;
    sweep.max_volume = options.max_volume;
    const SweepResult swept =
        SweepCutOverNodesOver(g, dense, std::move(support_nodes), sweep);
    for (const auto& [u, mass] : current) dense[u] = 0.0;
    if (!swept.set.empty()) {
      IMPREG_TRACE_EVENT(trace, step, kConductance, swept.stats.conductance);
    }
    if (!swept.set.empty() &&
        swept.stats.conductance < result.stats.conductance) {
      result.set = swept.set;
      result.stats = swept.stats;
      result.best_step = step;
    }
  }

  result.distribution.assign(g.NumNodes(), 0.0);
  for (const auto& [u, mass] : current) result.distribution[u] = mass;
  SolverDiagnostics& diag = result.diagnostics;
  if (poisoned) {
    diag.status = SolveStatus::kNonFinite;
    diag.detail = "walk step went non-finite; poisoned mass dropped, best "
                  "cut up to that step returned";
  } else if (budget_stop) {
    diag.status = SolveStatus::kBudgetExhausted;
    diag.detail = "work budget exhausted; best cut so far returned";
  } else {
    diag.status = SolveStatus::kConverged;
  }
  diag.iterations = steps_done;
  IMPREG_TRACE_FINISH(trace, diag);
  IMPREG_METRIC_COUNT("solver.nibble.solves", 1);
  IMPREG_METRIC_COUNT("solver.nibble.steps", steps_done);
  IMPREG_METRIC_COUNT("solver.nibble.arc_work", result.work);
  return result;
}

}  // namespace impreg

#endif  // IMPREG_PARTITION_NIBBLE_KERNEL_H_
