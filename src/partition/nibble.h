#ifndef IMPREG_PARTITION_NIBBLE_H_
#define IMPREG_PARTITION_NIBBLE_H_

#include <cstdint>

#include "core/solve_status.h"
#include "core/work_budget.h"
#include "graph/graph.h"
#include "linalg/vector_ops.h"
#include "partition/sweep.h"

/// \file
/// Spielman–Teng Nibble [39] (§3.3): truncated lazy random walks.
/// After each lazy-walk step, every entry with q(u) < ε·d(u) is set to
/// zero — "very small probabilities are truncated to zero", which is
/// what makes the walk strongly local, and which implicitly regularizes
/// its output exactly as the paper describes. A sweep cut is evaluated
/// at every step and the best one over the walk is returned.

namespace impreg {

/// Options for Nibble.
struct NibbleOptions {
  /// Number of lazy-walk steps T.
  int steps = 40;
  /// Truncation threshold: entries with q(u) < ε·d(u) are zeroed.
  double epsilon = 1e-4;
  /// Holding probability of the lazy walk.
  double alpha = 0.5;
  /// Optional volume cap forwarded to the per-step sweeps (0 = none).
  double max_volume = 0.0;
  /// Optional cooperative budget (nullptr = unlimited), checked between
  /// walk steps; on exhaustion the walk stops there (kBudgetExhausted)
  /// and the best cut found so far is returned.
  WorkBudget* budget = nullptr;
};

/// Result of a Nibble run.
struct NibbleResult {
  /// Best sweep cut over all steps.
  std::vector<NodeId> set;
  CutStats stats;
  /// The step at which the best cut was found (1-based; 0 if none).
  int best_step = 0;
  /// Final truncated distribution.
  Vector distribution;
  /// Total probability mass removed by truncation over the whole run.
  double truncated_mass = 0.0;
  /// Σ over steps of (support size scanned) — the work measure.
  std::int64_t work = 0;
  /// kConverged: the walk ran its course. kBudgetExhausted: stopped
  /// early by the budget. kNonFinite: a step went non-finite — poisoned
  /// mass was dropped and the best cut up to that step returned.
  SolverDiagnostics diagnostics;
};

/// Runs the truncated lazy walk from `seed`.
NibbleResult Nibble(const Graph& g, NodeId seed,
                    const NibbleOptions& options = {});

/// Same, from an arbitrary nonnegative seed distribution.
NibbleResult NibbleFromDistribution(const Graph& g, const Vector& seed,
                                    const NibbleOptions& options = {});

}  // namespace impreg

#endif  // IMPREG_PARTITION_NIBBLE_H_
