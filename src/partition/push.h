#ifndef IMPREG_PARTITION_PUSH_H_
#define IMPREG_PARTITION_PUSH_H_

#include <cstdint>
#include <functional>

#include "core/solve_status.h"
#include "core/work_budget.h"
#include "graph/graph.h"
#include "graph/reorder.h"
#include "linalg/vector_ops.h"
#include "partition/sweep.h"

/// \file
/// The Andersen–Chung–Lang push algorithm [1] — the paper's flagship
/// strongly local method (§3.3): approximate Personalized PageRank
/// computed by repeatedly "pushing" residual mass, with small residuals
/// simply left in place. The truncation is a computational decision, but
/// — the paper's point — it acts as implicit ℓ1-style regularization:
/// the output is sparse, localized around the seed, and its support size
/// is bounded by 1/(ε·α) *independent of the graph size*.
///
/// Dynamics: the lazy-walk PPR  p = α Σ_k (1−α)^k W^k s  with
/// W = (I + AD^{-1})/2. This equals the standard (Eq. 2) PageRank
/// R_γ s with γ = 2α/(1+α) (see StandardTeleportFromLazy).

namespace impreg {

/// Options for ApproximatePageRank.
struct PushOptions {
  /// Lazy teleportation α ∈ (0, 1).
  double alpha = 0.1;
  /// Residual tolerance: push until r(u) < ε·d(u) everywhere.
  double epsilon = 1e-4;
  /// Safety cap on the number of pushes (0 = the theoretical bound
  /// ⌈1/(ε·α)⌉ plus slack).
  std::int64_t max_pushes = 0;
  /// If set, called after every push with (push index, pushed node,
  /// current residual ℓ1 mass). Push is Gauss–Southwell-style
  /// coordinate relaxation on (I − (1−α)W) p = α s — the paper's [20]
  /// connection to gradient methods — so the reported residual mass
  /// decreases monotonically; the callback lets experiments watch it.
  std::function<void(std::int64_t, NodeId, double)> on_push;
  /// Optional cooperative budget (nullptr = unlimited), checked at
  /// chunk boundaries; on exhaustion the push stops with
  /// kBudgetExhausted and the partial (p, r) pair — still a valid
  /// approximate PPR decomposition, just with a looser residual.
  WorkBudget* budget = nullptr;
  /// Scan order for the initial queue-seeding pass (must be a
  /// permutation of [0, n) if set; nullptr = ascending node id). On a
  /// relabeled graph, passing ReorderedGraph::perm() seeds the FIFO in
  /// ascending *original*-label order, which together with
  /// ApplyNodePermutation's arc-order preservation makes the whole push
  /// sequence — and hence (p, r) — bitwise label-invariant. Must outlive
  /// the call.
  const std::vector<NodeId>* queue_seed_order = nullptr;
};

/// Result of a push computation.
struct PushResult {
  /// The approximate PPR vector p (entrywise ≤ the exact PPR).
  Vector p;
  /// The final residual r (entrywise < ε·d(u)).
  Vector residual;
  /// Number of push operations performed.
  std::int64_t pushes = 0;
  /// Number of distinct nodes with p > 0 — the support the method
  /// actually "touched" (plus their scanned neighbors ≤ work).
  std::int64_t support = 0;
  /// Σ of degrees of pushed nodes — the true work measure.
  std::int64_t work = 0;
  /// True iff every residual dropped below ε·d (queue drained). Kept in
  /// sync with diagnostics.status == kConverged.
  bool converged = false;
  /// kBudgetExhausted covers both the push cap and a WorkBudget running
  /// out — either way (p, r) is a valid early-stopped decomposition.
  SolverDiagnostics diagnostics;
};

/// Runs ACL push from a nonnegative seed vector (typically a single-node
/// or seed-set distribution with unit mass).
PushResult ApproximatePageRank(const Graph& g, const Vector& seed,
                               const PushOptions& options = {});

/// Runs the push on a relabeled graph for cache locality and maps
/// everything back: the seed is scattered into reordered labels, the
/// queue is seeded in ascending original-label order (see
/// PushOptions::queue_seed_order), and the returned (p, residual) and
/// any on_push node ids are in *original* labels — bitwise identical to
/// ApproximatePageRank(rg.original(), seed, options). An inactive
/// wrapper (kIdentity or a rejected permutation) degrades to the plain
/// overload.
PushResult ApproximatePageRank(const ReorderedGraph& rg, const Vector& seed,
                               const PushOptions& options = {});

/// The standard-PageRank teleportation equivalent to lazy α:
/// γ = 2α/(1+α).
double StandardTeleportFromLazy(double alpha);

/// The lazy teleportation equivalent to standard γ: α = γ/(2−γ).
double LazyTeleportFromStandard(double gamma);

/// End-to-end local clustering: push + sweep over the support with
/// degree-normalized keys, as in [1]. Returns the push result and the
/// best sweep cut.
struct LocalClusterResult {
  std::vector<NodeId> set;
  CutStats stats;
  PushResult push;
};

LocalClusterResult PushLocalCluster(const Graph& g, NodeId seed,
                                    const PushOptions& options = {},
                                    const SweepOptions& sweep = {});

/// Local clustering with the diffusion on the relabeled graph and the
/// sweep on the original one: bitwise identical to
/// PushLocalCluster(rg.original(), seed, ...).
LocalClusterResult PushLocalCluster(const ReorderedGraph& rg, NodeId seed,
                                    const PushOptions& options = {},
                                    const SweepOptions& sweep = {});

}  // namespace impreg

#endif  // IMPREG_PARTITION_PUSH_H_
