#include "partition/push.h"

#include <cmath>
#include <deque>

#include "core/metrics.h"
#include "core/trace.h"
#include "diffusion/seed.h"
#include "util/check.h"
#include "util/fault.h"

namespace impreg {

double StandardTeleportFromLazy(double alpha) {
  IMPREG_CHECK(alpha > 0.0 && alpha < 1.0);
  return 2.0 * alpha / (1.0 + alpha);
}

double LazyTeleportFromStandard(double gamma) {
  IMPREG_CHECK(gamma > 0.0 && gamma < 1.0);
  return gamma / (2.0 - gamma);
}

PushResult ApproximatePageRank(const Graph& g, const Vector& seed,
                               const PushOptions& options) {
  IMPREG_CHECK(seed.size() == static_cast<std::size_t>(g.NumNodes()));
  IMPREG_CHECK(options.alpha > 0.0 && options.alpha < 1.0);
  IMPREG_CHECK(options.epsilon > 0.0);

  PushResult result;
  result.p.assign(g.NumNodes(), 0.0);
  SolverTrace* trace = IMPREG_TRACE_BEGIN("push");

  // Negative seed mass is a programming error (abort; NaN passes the
  // check because NaN comparisons are false); non-finite mass is a
  // data-poisoning event, rejected gracefully.
  for (double v : seed) {
    IMPREG_CHECK_MSG(!(v < 0.0), "seed must be nonnegative");
  }
  if (!AllFinite(seed)) {
    result.residual.assign(g.NumNodes(), 0.0);
    result.diagnostics.status = SolveStatus::kNonFinite;
    result.diagnostics.detail =
        "seed has non-finite entries; returning p = r = 0";
    IMPREG_TRACE_FINISH(trace, result.diagnostics);
    return result;
  }
  result.residual = seed;

  const double alpha = options.alpha;
  const double eps = options.epsilon;
  double seed_mass = 0.0;
  for (double v : seed) seed_mass += v;
  // Theoretical push bound: total residual mass shrinks by at least
  // α·ε·d(u) per push of node u, and each push moves ≥ ε·d(u) ≥ ε of
  // residual onto p scaled by α ⇒ at most mass/(ε·α) pushes for
  // unit-degree thresholds. Add slack for weighted degrees < 1.
  const std::int64_t push_cap =
      options.max_pushes > 0
          ? options.max_pushes
          : static_cast<std::int64_t>(64.0 + 4.0 * seed_mass / (eps * alpha));

  std::deque<NodeId> queue;
  std::vector<char> queued(g.NumNodes(), 0);
  // The scan order fixes both the initial FIFO contents and the
  // summation order of the residual mass, so a relabeled run seeded
  // through ReorderedGraph::perm() reproduces the original run's push
  // sequence and reported masses exactly.
  const std::vector<NodeId>* order = options.queue_seed_order;
  IMPREG_CHECK_MSG(
      order == nullptr ||
          IsPermutation(*order, g.NumNodes()),
      "queue_seed_order must be a permutation of the node ids");
  double residual_mass = 0.0;
  for (NodeId i = 0; i < g.NumNodes(); ++i) {
    const NodeId u = order != nullptr ? (*order)[i] : i;
    residual_mass += result.residual[u];
    if (g.Degree(u) > 0.0 && result.residual[u] >= eps * g.Degree(u)) {
      queue.push_back(u);
      queued[u] = 1;
    }
  }

  WorkBudget* budget = options.budget;
  bool budget_stop = false;
  bool poisoned = false;
  while (!queue.empty() && result.pushes < push_cap) {
    // Budget check at chunk boundaries (every 256 pushes), so the cut
    // point is deterministic in the arc counter, not the clock.
    if (budget != nullptr && (result.pushes & 255) == 0) {
      IMPREG_FAULT_POINT("push/budget", budget);
      if (budget->Exhausted()) {
        budget_stop = true;
        IMPREG_TRACE_EVENT(trace, static_cast<int>(result.pushes), kBudget,
                           static_cast<double>(budget->Spent()));
        break;
      }
    }
    const NodeId u = queue.front();
    queue.pop_front();
    queued[u] = 0;
    const double d = g.Degree(u);
    double r = result.residual[u];
    IMPREG_FAULT_POINT("push/r", r);
    if (!std::isfinite(r)) {
      // Drop the poisoned mass instead of pushing it into p; p and the
      // other residual entries are still finite by construction.
      result.residual[u] = 0.0;
      poisoned = true;
      IMPREG_TRACE_EVENT(trace, static_cast<int>(result.pushes), kFault, r);
      break;
    }
    if (d <= 0.0 || r < eps * d) continue;

    // push(u): p gains α·r; half of the rest stays (lazy self-loop),
    // half spreads to the neighbors proportionally to edge weight.
    result.p[u] += alpha * r;
    const double stay = (1.0 - alpha) * r / 2.0;
    result.residual[u] = stay;
    const double spread = stay;  // Same amount goes to the neighbors.
    const auto heads = g.Heads(u);
    const auto weights = g.Weights(u);
    for (std::size_t i = 0; i < heads.size(); ++i) {
      const NodeId v = heads[i];
      if (v == u) {
        // Self-loop: the walk returns immediately.
        result.residual[u] += spread * weights[i] / d;
        continue;
      }
      result.residual[v] += spread * weights[i] / d;
      if (!queued[v] && g.Degree(v) > 0.0 &&
          result.residual[v] >= eps * g.Degree(v)) {
        queue.push_back(v);
        queued[v] = 1;
      }
    }
    if (result.residual[u] >= eps * d && !queued[u]) {
      queue.push_back(u);
      queued[u] = 1;
    }
    ++result.pushes;
    result.work += g.OutDegree(u);
    if (budget != nullptr) budget->Charge(g.OutDegree(u));
    // One arc-work event per push, mirroring result.work (and the budget
    // Charge above) exactly: SumValues(kArcWork) == result.work.
    IMPREG_TRACE_EVENT(trace, static_cast<int>(result.pushes), kArcWork,
                       static_cast<double>(g.OutDegree(u)));
    if (options.on_push) {
      residual_mass -= options.alpha * r;  // Exactly the mass moved to p.
      options.on_push(result.pushes, u, residual_mass);
      IMPREG_TRACE_EVENT(trace, static_cast<int>(result.pushes), kResidual,
                         residual_mass);
    }
  }
  result.converged = queue.empty() && !budget_stop && !poisoned;
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    if (result.p[u] > 0.0) ++result.support;
  }
  SolverDiagnostics& diag = result.diagnostics;
  if (poisoned) {
    diag.status = SolveStatus::kNonFinite;
    diag.detail = "residual went non-finite; poisoned mass dropped and "
                  "the push stopped (p stays a valid partial PPR)";
  } else if (result.converged) {
    diag.status = SolveStatus::kConverged;
  } else {
    // Both the push cap and a cooperative budget are deliberate early
    // stops: (p, r) is still a valid decomposition, just with residuals
    // above ε·d somewhere.
    diag.status = SolveStatus::kBudgetExhausted;
    diag.detail = budget_stop ? "work budget exhausted mid-push"
                              : "push cap hit before residuals drained";
  }
  diag.iterations = static_cast<int>(result.pushes);
  IMPREG_TRACE_FINISH(trace, diag);
  IMPREG_METRIC_COUNT("solver.push.solves", 1);
  IMPREG_METRIC_COUNT("solver.push.pushes", result.pushes);
  IMPREG_METRIC_COUNT("solver.push.arc_work", result.work);
  return result;
}

PushResult ApproximatePageRank(const ReorderedGraph& rg, const Vector& seed,
                               const PushOptions& options) {
  if (!rg.active()) return ApproximatePageRank(rg.original(), seed, options);
  PushOptions relabeled = options;
  relabeled.queue_seed_order = &rg.perm();
  if (options.on_push) {
    relabeled.on_push = [&rg, &options](std::int64_t push, NodeId u,
                                        double mass) {
      options.on_push(push, rg.ToOriginal(u), mass);
    };
  }
  PushResult result =
      ApproximatePageRank(rg.graph(), rg.ToReorderedVector(seed), relabeled);
  result.p = rg.ToOriginalVector(result.p);
  result.residual = rg.ToOriginalVector(result.residual);
  return result;
}

LocalClusterResult PushLocalCluster(const Graph& g, NodeId seed,
                                    const PushOptions& options,
                                    const SweepOptions& sweep) {
  LocalClusterResult result;
  result.push = ApproximatePageRank(g, SingleNodeSeed(g, seed), options);
  SweepOptions sweep_options = sweep;
  sweep_options.scaling = SweepScaling::kDegreeNormalized;
  SweepResult swept = SweepCutOverSupport(g, result.push.p, sweep_options);
  result.set = std::move(swept.set);
  result.stats = swept.stats;
  return result;
}

LocalClusterResult PushLocalCluster(const ReorderedGraph& rg, NodeId seed,
                                    const PushOptions& options,
                                    const SweepOptions& sweep) {
  // Diffuse on the relabeled graph, sweep on the original: the push
  // result comes back in original labels, so the sweep sees exactly what
  // the unreordered path would.
  LocalClusterResult result;
  result.push =
      ApproximatePageRank(rg, SingleNodeSeed(rg.original(), seed), options);
  SweepOptions sweep_options = sweep;
  sweep_options.scaling = SweepScaling::kDegreeNormalized;
  SweepResult swept =
      SweepCutOverSupport(rg.original(), result.push.p, sweep_options);
  result.set = std::move(swept.set);
  result.stats = swept.stats;
  return result;
}

}  // namespace impreg
