#ifndef IMPREG_PARTITION_SWEEP_H_
#define IMPREG_PARTITION_SWEEP_H_

#include <vector>

#include "graph/graph.h"
#include "linalg/vector_ops.h"
#include "partition/conductance.h"

/// \file
/// Sweep cuts: the rounding step of every spectral-family method in the
/// paper (§3.2, §3.3). Nodes are ordered by an embedding value and the
/// best-conductance prefix is returned. The global variant scans all n
/// prefixes; the support-restricted variant scans only the nonzero
/// entries of a sparse diffusion vector, which is what keeps the local
/// methods strongly local.

namespace impreg {

/// How the ordering key is derived from the input values.
enum class SweepScaling {
  /// Key = value (for vectors already living in "per-node" units, e.g.
  /// the generalized eigenvector D^{-1/2}x).
  kRaw,
  /// Key = value / degree (for probability/charge vectors: PPR, walks).
  kDegreeNormalized,
  /// Key = value / √degree (for hat-space vectors, e.g. eigenvectors
  /// of ℒ).
  kSqrtDegreeNormalized,
};

/// Options for the sweep.
struct SweepOptions {
  SweepScaling scaling = SweepScaling::kRaw;
  /// Only prefixes with size in [min_size, max_size] compete (max_size
  /// 0 means unbounded). The profile still records every prefix.
  NodeId min_size = 1;
  NodeId max_size = 0;
  /// Only prefixes with volume ≤ max_volume compete (0 = unbounded).
  double max_volume = 0.0;
};

/// Result of a sweep.
struct SweepResult {
  /// The best prefix set (empty if no prefix satisfied the size bounds).
  std::vector<NodeId> set;
  /// Cut statistics of `set`.
  CutStats stats;
  /// The examined ordering (all nodes, or the support).
  std::vector<NodeId> order;
  /// conductance_profile[k] = φ of the first k+1 nodes of `order`.
  std::vector<double> conductance_profile;
};

/// Global sweep over all nodes, ordered by descending key. Ties broken
/// by node id (deterministic). Isolated zero-degree nodes sort last.
SweepResult SweepCut(const Graph& g, const Vector& values,
                     const SweepOptions& options = {});

/// Sweep restricted to the support {u : values[u] > threshold}. The
/// graph exploration is O(vol(support)), but finding the support scans
/// `values` once (O(n)); strongly local callers that already know their
/// support should use SweepCutOverNodes instead.
SweepResult SweepCutOverSupport(const Graph& g, const Vector& values,
                                const SweepOptions& options = {},
                                double threshold = 0.0);

/// Sweep restricted to an explicit candidate node list. Duplicate ids
/// are dropped (first occurrence wins, order preserved) — they would
/// otherwise double-count degrees in the prefix volume scan. Touches
/// only `nodes`, their incident edges, and O(|nodes| log) for the
/// ordering — fully independent of n (plus an O(n) seen-flag
/// allocation for the dedup).
SweepResult SweepCutOverNodes(const Graph& g, const Vector& values,
                              std::vector<NodeId> nodes,
                              const SweepOptions& options = {});

}  // namespace impreg

#endif  // IMPREG_PARTITION_SWEEP_H_
