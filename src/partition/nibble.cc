#include "partition/nibble.h"

#include "diffusion/seed.h"
#include "partition/nibble_kernel.h"

namespace impreg {

// The kernel body lives in partition/nibble_kernel.h as a template
// over the adjacency provider (the sharded serving tier reuses it
// against shard-set frozen views); this `Graph` instantiation is the
// historical entry point, bit-identical to the pre-template code.
NibbleResult NibbleFromDistribution(const Graph& g, const Vector& seed,
                                    const NibbleOptions& options) {
  return NibbleFromDistributionOver(g, seed, options);
}

NibbleResult Nibble(const Graph& g, NodeId seed,
                    const NibbleOptions& options) {
  return NibbleFromDistribution(g, SingleNodeSeed(g, seed), options);
}

}  // namespace impreg
