#include "partition/spectral.h"

#include <cmath>

#include "linalg/graph_operators.h"
#include "util/check.h"

namespace impreg {

SpectralPartitionResult SweepHatVector(
    const Graph& g, const Vector& x,
    const SpectralPartitionOptions& options) {
  IMPREG_CHECK(x.size() == static_cast<std::size_t>(g.NumNodes()));
  SpectralPartitionResult result;
  result.v2 = x;
  const NormalizedLaplacianOperator lap(g);
  result.lambda2 = lap.RayleighQuotient(x);
  result.cheeger_lower = result.lambda2 / 2.0;
  result.cheeger_upper = std::sqrt(2.0 * std::max(result.lambda2, 0.0));

  SweepOptions sweep;
  sweep.scaling = SweepScaling::kSqrtDegreeNormalized;
  sweep.min_size = options.min_size;
  sweep.max_size = options.max_size;
  SweepResult swept = SweepCut(g, x, sweep);
  result.set = std::move(swept.set);
  result.stats = swept.stats;
  return result;
}

SpectralPartitionResult SpectralPartition(
    const Graph& g, const SpectralPartitionOptions& options) {
  IMPREG_CHECK_MSG(g.NumEdges() > 0, "graph has no edges");
  const NormalizedLaplacianOperator lap(g);
  LanczosOptions lanczos = options.lanczos;
  lanczos.deflate.push_back(lap.TrivialEigenvector());
  const LanczosResult eig = LanczosSmallest(lap, 1, lanczos);
  IMPREG_CHECK(!eig.eigenvectors.empty());

  SpectralPartitionResult result =
      SweepHatVector(g, eig.eigenvectors.front(), options);
  result.lambda2 = eig.eigenvalues.front();
  result.cheeger_lower = result.lambda2 / 2.0;
  result.cheeger_upper = std::sqrt(2.0 * std::max(result.lambda2, 0.0));
  return result;
}

}  // namespace impreg
