#ifndef IMPREG_PARTITION_HKRELAX_KERNEL_H_
#define IMPREG_PARTITION_HKRELAX_KERNEL_H_

#include <cmath>
#include <unordered_map>

#include "core/metrics.h"
#include "core/trace.h"
#include "linalg/vector_ops.h"
#include "partition/hkrelax.h"
#include "partition/sweep_kernel.h"
#include "util/check.h"
#include "util/fault.h"

/// \file
/// The heat-kernel relax kernel as a template over the adjacency
/// provider. hkrelax.cc instantiates it over `Graph`; the sharded
/// serving tier instantiates it over a shard-set frozen view. The
/// iteration order of the sparse term map is a function of the
/// insertion sequence alone, so any provider serving the same bits
/// produces a bit-identical ρ, cut, and diagnostics.
///
/// Requirements on `G`: `NumNodes()`, `Degree(u)`, `OutDegree(u)`,
/// `Heads(u)`/`Weights(u)` spans, `TotalVolume()`, `IsValidNode(u)`.

namespace impreg {

template <typename G>
HkRelaxResult HeatKernelRelaxFromDistributionOver(
    const G& g, const Vector& seed, const HkRelaxOptions& options) {
  IMPREG_CHECK(seed.size() == static_cast<std::size_t>(g.NumNodes()));
  IMPREG_CHECK(options.t > 0.0);
  IMPREG_CHECK(options.delta >= 0.0);
  IMPREG_CHECK(options.tail_tolerance > 0.0);

  HkRelaxResult result;
  result.stats.conductance = 1.0;
  result.rho.assign(g.NumNodes(), 0.0);
  SolverTrace* trace = IMPREG_TRACE_BEGIN("hkrelax");
  if (!AllFinite(seed)) {
    result.diagnostics.status = SolveStatus::kNonFinite;
    result.diagnostics.detail =
        "seed has non-finite entries; returning ρ = 0 and no cut";
    IMPREG_TRACE_FINISH(trace, result.diagnostics);
    return result;
  }

  const double t = options.t;
  // Sparse current term (t^k/k!)·(truncated M)^k s.
  std::unordered_map<NodeId, double> term;
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    if (seed[u] > 0.0) term.emplace(u, seed[u]);
  }
  IMPREG_CHECK_MSG(!term.empty(), "seed distribution is empty");

  // Accumulate k = 0 contribution.
  for (const auto& [u, mass] : term) result.rho[u] += mass;

  double poisson = 1.0;            // t^k / k!.
  double tail = std::exp(t) - 1.0;  // Σ_{j>k} t^j/j!.
  int k = 0;
  bool budget_stop = false;
  bool poisoned = false;
  while (tail * std::exp(-t) > options.tail_tolerance && !term.empty()) {
    if (options.budget != nullptr) {
      IMPREG_FAULT_POINT("hkrelax/budget", options.budget);
      if (options.budget->Exhausted()) {
        budget_stop = true;
        IMPREG_TRACE_EVENT(trace, k, kBudget,
                           static_cast<double>(options.budget->Spent()));
        break;
      }
    }
    ++k;
    std::unordered_map<NodeId, double> next;
    next.reserve(term.size() * 2);
    for (const auto& [u, mass] : term) {
      const double d = g.Degree(u);
      if (d <= 0.0) continue;  // M annihilates isolated mass.
      const double spread = mass / d;
      const auto heads = g.Heads(u);
      const auto weights = g.Weights(u);
      for (std::size_t i = 0; i < heads.size(); ++i) {
        next[heads[i]] += spread * weights[i];
      }
      result.work += g.OutDegree(u);
      if (options.budget != nullptr) options.budget->Charge(g.OutDegree(u));
      IMPREG_TRACE_EVENT(trace, k, kArcWork,
                         static_cast<double>(g.OutDegree(u)));
    }
    poisson *= t / static_cast<double>(k);
    tail -= poisson;
    // Scale into the k-th Taylor term and truncate small entries. The
    // threshold scales with the term's Poisson weight t^k/k! so the
    // truncation is uniform in *distribution* units across terms.
    term.clear();
    double scale = t / static_cast<double>(k);
    IMPREG_FAULT_POINT("hkrelax/scale", scale);
    for (const auto& [u, mass] : next) {
      const double value = mass * scale;
      const double d = g.Degree(u);
      if (!std::isfinite(value)) {
        // Drop poisoned mass before it can reach ρ (every ρ update below
        // is gated on this check, so ρ stays finite by construction).
        poisoned = true;
      } else if (d > 0.0 && value < options.delta * d * poisson) {
        result.dropped_mass += value;  // In (t^k/k!)-weighted units.
      } else if (value > 0.0) {
        term.emplace(u, value);
        result.rho[u] += value;
      }
    }
    result.terms = k;
    // Remaining Poisson tail mass: the truncation bound for the series.
    IMPREG_TRACE_EVENT(trace, k, kResidual, tail * std::exp(-t));
    if (poisoned) {
      IMPREG_TRACE_EVENT(trace, k, kFault, result.dropped_mass);
      break;
    }
  }
  // Everything is still in Σ t^k/k! units; apply the e^{−t} prefactor.
  // The discarded Poisson tail also counts as dropped mass.
  for (double& v : result.rho) v *= std::exp(-t);
  result.dropped_mass = result.dropped_mass * std::exp(-t) +
                        std::max(tail, 0.0) * std::exp(-t);

  SolverDiagnostics& diag = result.diagnostics;
  if (poisoned) {
    diag.status = SolveStatus::kNonFinite;
    diag.detail = "a Taylor term went non-finite; poisoned entries were "
                  "dropped and the finite prefix of the series swept";
  } else if (budget_stop) {
    diag.status = SolveStatus::kBudgetExhausted;
    diag.detail = "work budget exhausted; series truncated early (extra "
                  "tail mass counted in dropped_mass)";
  } else {
    diag.status = SolveStatus::kConverged;
  }
  diag.iterations = result.terms;

  SweepOptions sweep;
  sweep.scaling = SweepScaling::kDegreeNormalized;
  sweep.max_volume = options.max_volume;
  const SweepResult swept = SweepCutOverSupportOver(g, result.rho, sweep, 0.0);
  result.set = swept.set;
  result.stats = swept.stats;
  IMPREG_TRACE_EVENT(trace, result.terms, kConductance,
                     result.stats.conductance);
  IMPREG_TRACE_FINISH(trace, diag);
  IMPREG_METRIC_COUNT("solver.hkrelax.solves", 1);
  IMPREG_METRIC_COUNT("solver.hkrelax.terms", result.terms);
  IMPREG_METRIC_COUNT("solver.hkrelax.arc_work", result.work);
  return result;
}

}  // namespace impreg

#endif  // IMPREG_PARTITION_HKRELAX_KERNEL_H_
