#include "partition/mov.h"

#include <cmath>

#include "linalg/cg.h"
#include "linalg/graph_operators.h"
#include "util/check.h"

namespace impreg {

namespace {

// Unit-norm hat-space seed: D^{1/2} 1_S, normalized.
Vector HatSeed(const Graph& g, const std::vector<NodeId>& seed) {
  IMPREG_CHECK(!seed.empty());
  Vector s(g.NumNodes(), 0.0);
  for (NodeId u : seed) {
    IMPREG_CHECK(g.IsValidNode(u));
    s[u] = std::sqrt(g.Degree(u));
  }
  IMPREG_CHECK_MSG(Normalize(s) > 0.0, "seed set has zero volume");
  return s;
}

}  // namespace

MovResult MovSolveAtSigma(const Graph& g, const std::vector<NodeId>& seed,
                          double sigma, const MovOptions& options) {
  const NormalizedLaplacianOperator lap(g);
  const Vector trivial = lap.TrivialEigenvector();
  const Vector s_hat = HatSeed(g, seed);

  // Right-hand side: the seed with the trivial direction removed.
  Vector rhs = s_hat;
  ProjectOut(trivial, rhs);
  IMPREG_CHECK_MSG(Norm2(rhs) > 1e-12,
                   "seed is parallel to the trivial eigenvector");

  // Solve (ℒ − σI) x = rhs on the subspace ⟂ D^{1/2}1.
  const ShiftedOperator system(lap, 1.0, -sigma);
  CgOptions cg_options;
  cg_options.relative_tolerance = options.cg_tolerance;
  cg_options.max_iterations = options.cg_max_iterations;
  cg_options.project_out = &trivial;
  const CgResult cg = ConjugateGradient(system, rhs, cg_options);

  MovResult result;
  result.sigma = sigma;
  result.x = cg.x;
  result.diagnostics = cg.diagnostics;
  if (!cg.diagnostics.usable() || Normalize(result.x) <= 0.0) {
    // Degrade instead of aborting: the projected seed direction is a
    // feasible (unit, ⟂ trivial) vector — the maximally local answer,
    // exactly what σ → −∞ converges to.
    result.x = rhs;
    Normalize(result.x);
    if (cg.diagnostics.usable()) {
      // CG "succeeded" but produced the zero vector: a breakdown here.
      result.diagnostics.status = SolveStatus::kBreakdown;
    }
    result.diagnostics.detail = "MOV linear solve failed (" +
                                cg.diagnostics.Summary() +
                                "); x is the projected seed direction";
  }
  // Fix the sign so the seed correlation is positive.
  const double corr = Dot(result.x, s_hat);
  if (corr < 0.0) Scale(-1.0, result.x);
  result.correlation_sq = corr * corr;
  result.rayleigh = lap.RayleighQuotient(result.x);

  SweepOptions sweep;
  sweep.scaling = SweepScaling::kSqrtDegreeNormalized;
  const SweepResult swept = SweepCut(g, result.x, sweep);
  result.set = swept.set;
  result.stats = swept.stats;
  return result;
}

MovResult MovSolveForCorrelation(const Graph& g,
                                 const std::vector<NodeId>& seed,
                                 double kappa, double lambda2,
                                 const MovOptions& options) {
  IMPREG_CHECK(kappa > 0.0 && kappa < 1.0);
  IMPREG_CHECK(lambda2 > 0.0);

  // σ → −∞ drives the correlation up toward its max; σ → λ₂ drives it
  // down toward (v₂ᵀ s_hat)². The correlation is monotone in σ [33], so
  // binary search.
  double lo = lambda2 - 64.0;             // Very local.
  double hi = lambda2 - 1e-6 * lambda2;   // Nearly global.
  MovResult best = MovSolveAtSigma(g, seed, lo, options);
  if (best.correlation_sq <= kappa) {
    // Even the most local solve cannot reach κ — return it.
    return best;
  }
  for (int iter = 0; iter < options.search_iterations; ++iter) {
    const double mid = 0.5 * (lo + hi);
    MovResult candidate = MovSolveAtSigma(g, seed, mid, options);
    if (candidate.correlation_sq >= kappa) {
      best = std::move(candidate);  // Feasible: try to be less local.
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-9) break;
  }
  return best;
}

}  // namespace impreg
