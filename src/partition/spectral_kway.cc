#include "partition/spectral_kway.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/metrics.h"
#include "core/trace.h"
#include "linalg/graph_operators.h"
#include "util/check.h"
#include "util/rng.h"

namespace impreg {

namespace {

// Plain Lloyd k-means on row vectors with k-means++-style seeding.
// Returns (labels, objective).
std::pair<std::vector<int>, double> KMeans(
    const std::vector<Vector>& points, int k, int iterations, Rng& rng) {
  const int n = static_cast<int>(points.size());
  const int dim = n > 0 ? static_cast<int>(points[0].size()) : 0;
  std::vector<Vector> centers;
  centers.reserve(k);

  auto distance_sq = [&](const Vector& a, const Vector& b) {
    double sum = 0.0;
    for (int d = 0; d < dim; ++d) sum += (a[d] - b[d]) * (a[d] - b[d]);
    return sum;
  };

  // k-means++ seeding.
  centers.push_back(points[rng.NextBounded(n)]);
  Vector best_dist(n, std::numeric_limits<double>::max());
  while (static_cast<int>(centers.size()) < k) {
    double total = 0.0;
    for (int i = 0; i < n; ++i) {
      best_dist[i] =
          std::min(best_dist[i], distance_sq(points[i], centers.back()));
      total += best_dist[i];
    }
    if (total <= 0.0) {
      // All points coincide with centers; duplicate arbitrarily.
      centers.push_back(points[rng.NextBounded(n)]);
      continue;
    }
    double target = rng.NextDouble() * total;
    int chosen = n - 1;
    for (int i = 0; i < n; ++i) {
      target -= best_dist[i];
      if (target <= 0.0) {
        chosen = i;
        break;
      }
    }
    centers.push_back(points[chosen]);
  }

  std::vector<int> labels(n, 0);
  for (int iter = 0; iter < iterations; ++iter) {
    bool changed = false;
    for (int i = 0; i < n; ++i) {
      int best = labels[i];
      double best_d = distance_sq(points[i], centers[best]);
      for (int c = 0; c < k; ++c) {
        const double d = distance_sq(points[i], centers[c]);
        if (d < best_d - 1e-15) {
          best_d = d;
          best = c;
        }
      }
      if (best != labels[i]) {
        labels[i] = best;
        changed = true;
      }
    }
    // Recompute centers.
    std::vector<Vector> sums(k, Vector(dim, 0.0));
    std::vector<int> counts(k, 0);
    for (int i = 0; i < n; ++i) {
      for (int d = 0; d < dim; ++d) sums[labels[i]][d] += points[i][d];
      ++counts[labels[i]];
    }
    for (int c = 0; c < k; ++c) {
      if (counts[c] > 0) {
        for (int d = 0; d < dim; ++d) {
          centers[c][d] = sums[c][d] / counts[c];
        }
      } else {
        centers[c] = points[rng.NextBounded(n)];  // Reseed empty cluster.
        changed = true;
      }
    }
    if (!changed && iter > 0) break;
  }
  double objective = 0.0;
  for (int i = 0; i < n; ++i) {
    objective += distance_sq(points[i], centers[labels[i]]);
  }
  return {std::move(labels), objective};
}

}  // namespace

SpectralClusteringResult SpectralClusterKway(
    const Graph& g, int k, const SpectralClusteringOptions& options) {
  IMPREG_CHECK(k >= 2);
  IMPREG_CHECK(k <= g.NumNodes());
  IMPREG_CHECK_MSG(g.NumEdges() > 0, "graph has no edges");

  // k smallest eigenvectors of ℒ (the trivial one included: after row
  // normalization it contributes the NJW constant direction).
  const NormalizedLaplacianOperator lap(g);
  LanczosOptions lanczos = options.lanczos;
  lanczos.max_iterations =
      std::max(lanczos.max_iterations, 20 * k + 100);
  const LanczosResult eig = LanczosSmallest(lap, k, lanczos);
  IMPREG_CHECK(static_cast<int>(eig.eigenvectors.size()) >= k);

  // Embed: row u = (v₁(u), …, v_k(u)), row-normalized (NJW).
  const int n = g.NumNodes();
  std::vector<Vector> points(n, Vector(k, 0.0));
  for (int c = 0; c < k; ++c) {
    for (int u = 0; u < n; ++u) points[u][c] = eig.eigenvectors[c][u];
  }
  for (int u = 0; u < n; ++u) {
    double norm = 0.0;
    for (int c = 0; c < k; ++c) norm += points[u][c] * points[u][c];
    norm = std::sqrt(norm);
    if (norm > 1e-300) {
      for (int c = 0; c < k; ++c) points[u][c] /= norm;
    }
  }

  // Best k-means over restarts. The inner Lanczos solve above traced
  // itself (solver "lanczos"); this trace covers the clustering stage.
  SolverTrace* trace = IMPREG_TRACE_BEGIN("spectral_kway");
  Rng rng(options.seed);
  std::vector<int> best_labels;
  double best_objective = std::numeric_limits<double>::max();
  for (int restart = 0; restart < std::max(1, options.kmeans_restarts);
       ++restart) {
    auto [labels, objective] =
        KMeans(points, k, options.kmeans_iterations, rng);
    IMPREG_TRACE_EVENT(trace, restart + 1, kPhase, objective);
    if (objective < best_objective) {
      best_objective = objective;
      best_labels = std::move(labels);
    }
  }

  SpectralClusteringResult result;
  result.labels = std::move(best_labels);
  result.sizes.assign(k, 0);
  for (int u = 0; u < n; ++u) ++result.sizes[result.labels[u]];
  for (NodeId u = 0; u < n; ++u) {
    const auto heads = g.Heads(u);
    const auto weights = g.Weights(u);
    for (std::size_t i = 0; i < heads.size(); ++i) {
      if (heads[i] > u && result.labels[heads[i]] != result.labels[u]) {
        result.cut += weights[i];
      }
    }
  }
  result.eigenvalues.assign(eig.eigenvalues.begin(),
                            eig.eigenvalues.begin() + k);

  // Residual certificate for the k embedding vectors: one SpMM streams
  // the adjacency once for all columns.
  std::vector<Vector> embed(eig.eigenvectors.begin(),
                            eig.eigenvectors.begin() + k);
  std::vector<Vector> lv;
  lap.ApplyBatch(embed, lv);
  result.residuals.assign(k, 0.0);
  for (int c = 0; c < k; ++c) {
    Axpy(-result.eigenvalues[c], embed[c], lv[c]);
    result.residuals[c] = Norm2(lv[c]);
    IMPREG_TRACE_EVENT(trace, c + 1, kResidual, result.residuals[c]);
  }
#ifdef IMPREG_OBSERVABILITY
  if (trace != nullptr) {
    SolverDiagnostics diag;
    diag.status = SolveStatus::kConverged;
    diag.iterations = k;
    trace->Finish(diag);
  }
#endif
  IMPREG_METRIC_COUNT("solver.spectral_kway.solves", 1);
  IMPREG_METRIC_COUNT("solver.spectral_kway.clusters", k);
  return result;
}

}  // namespace impreg
