#ifndef IMPREG_PARTITION_CONDUCTANCE_KERNEL_H_
#define IMPREG_PARTITION_CONDUCTANCE_KERNEL_H_

#include <algorithm>
#include <vector>

#include "partition/conductance.h"
#include "util/check.h"

/// \file
/// Cut-statistics kernels as templates over the adjacency provider, so
/// the sweep kernel (partition/sweep_kernel.h) and the sharded serving
/// views (src/service/sharding/) reuse the exact accumulation order of
/// the `Graph` implementations in conductance.cc. Requirements on `G`:
/// `NumNodes()`, `Degree(u)`, `Heads(u)`/`Weights(u)` spans, and
/// `IsValidNode(u)`.

namespace impreg {

template <typename G>
CutStats ComputeCutStatsFromMaskOver(const G& g,
                                     const std::vector<char>& mask) {
  IMPREG_CHECK(mask.size() == static_cast<std::size_t>(g.NumNodes()));
  CutStats stats;
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    if (mask[u]) {
      ++stats.size;
      stats.volume += g.Degree(u);
      const auto heads = g.Heads(u);
      const auto weights = g.Weights(u);
      for (std::size_t i = 0; i < heads.size(); ++i) {
        if (!mask[heads[i]]) stats.cut += weights[i];
      }
    } else {
      stats.complement_volume += g.Degree(u);
    }
  }
  const double denom = std::min(stats.volume, stats.complement_volume);
  stats.conductance = denom > 0.0 ? stats.cut / denom : 1.0;
  return stats;
}

template <typename G>
std::vector<char> NodesToMaskOver(const G& g,
                                  const std::vector<NodeId>& nodes) {
  std::vector<char> mask(g.NumNodes(), 0);
  for (NodeId u : nodes) {
    IMPREG_CHECK(g.IsValidNode(u));
    IMPREG_CHECK_MSG(!mask[u], "duplicate node in set");
    mask[u] = 1;
  }
  return mask;
}

template <typename G>
CutStats ComputeCutStatsOver(const G& g, const std::vector<NodeId>& set) {
  return ComputeCutStatsFromMaskOver(g, NodesToMaskOver(g, set));
}

}  // namespace impreg

#endif  // IMPREG_PARTITION_CONDUCTANCE_KERNEL_H_
