#include "partition/sweep.h"

#include "partition/sweep_kernel.h"

namespace impreg {

// The kernel bodies live in partition/sweep_kernel.h as templates over
// the adjacency provider (the sharded serving tier reuses them against
// shard-set views); these instantiations over `Graph` are the
// historical entry points, bit-identical to the pre-template code.

SweepResult SweepCut(const Graph& g, const Vector& values,
                     const SweepOptions& options) {
  std::vector<NodeId> order(g.NumNodes());
  for (NodeId u = 0; u < g.NumNodes(); ++u) order[u] = u;
  return RunSweepOver(g, values, std::move(order), options);
}

SweepResult SweepCutOverSupport(const Graph& g, const Vector& values,
                                const SweepOptions& options,
                                double threshold) {
  return SweepCutOverSupportOver(g, values, options, threshold);
}

SweepResult SweepCutOverNodes(const Graph& g, const Vector& values,
                              std::vector<NodeId> nodes,
                              const SweepOptions& options) {
  return SweepCutOverNodesOver(g, values, std::move(nodes), options);
}

}  // namespace impreg
