#ifndef IMPREG_PARTITION_SPECTRAL_H_
#define IMPREG_PARTITION_SPECTRAL_H_

#include "graph/graph.h"
#include "linalg/lanczos.h"
#include "partition/sweep.h"

/// \file
/// Global spectral partitioning (§3.2): compute the leading nontrivial
/// eigenvector v₂ of ℒ, then round it with a sweep cut. The result
/// carries the two-sided Cheeger certificate
///
///   λ₂ / 2  ≤  φ(G)  ≤  φ(sweep cut)  ≤  √(2 λ₂),
///
/// i.e. the cut is "quadratically good" — and on long stringy graphs
/// (cockroach, ladders) that quadratic factor is achieved, which is the
/// spectral method's characteristic failure the paper discusses.

namespace impreg {

/// Options for the spectral partitioner.
struct SpectralPartitionOptions {
  LanczosOptions lanczos;
  /// Size bounds forwarded to the sweep (profile is always complete).
  NodeId min_size = 1;
  NodeId max_size = 0;
};

/// Result of a spectral partition.
struct SpectralPartitionResult {
  /// The sweep-cut set.
  std::vector<NodeId> set;
  CutStats stats;
  /// λ₂ of ℒ.
  double lambda2 = 0.0;
  /// The (hat-space, unit) eigenvector v₂.
  Vector v2;
  /// Cheeger bounds: λ₂/2 ≤ φ(G) and the sweep cut ≤ √(2λ₂).
  double cheeger_lower = 0.0;
  double cheeger_upper = 0.0;
};

/// Runs Lanczos (with the trivial eigenvector deflated) + sweep cut.
/// Requires a graph with at least one edge. Works on disconnected
/// graphs too (where λ₂ = 0 and the sweep recovers a component).
SpectralPartitionResult SpectralPartition(
    const Graph& g, const SpectralPartitionOptions& options = {});

/// Sweep an arbitrary hat-space vector with the spectral conventions
/// (key x_u/√d_u) and attach Cheeger-style statistics. `rayleigh` should
/// be the vector's Rayleigh quotient with ℒ (computed if NaN).
SpectralPartitionResult SweepHatVector(const Graph& g, const Vector& x,
                                       const SpectralPartitionOptions&
                                           options = {});

}  // namespace impreg

#endif  // IMPREG_PARTITION_SPECTRAL_H_
