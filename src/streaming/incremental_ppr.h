#ifndef IMPREG_STREAMING_INCREMENTAL_PPR_H_
#define IMPREG_STREAMING_INCREMENTAL_PPR_H_

#include <cstdint>
#include <deque>

#include "linalg/vector_ops.h"
#include "streaming/dynamic_graph.h"

/// \file
/// Incremental Personalized PageRank on an evolving graph — the
/// paper's [6] (Bahmani–Chowdhury–Goel) scenario, implemented with
/// push-style residual maintenance (as in the dynamic-push literature
/// that operationalizes it):
///
/// We maintain the pair (p, r) with the exact algebraic invariant
///
///   r = s + ((1−γ)/γ)·M p − (1/γ)·p,          M = A D^{-1},
///
/// equivalently  PPR(s) = p + R_γ r. Push transfers residual into p
/// without breaking the invariant; an edge insertion changes two
/// columns of M, so the invariant is repaired with O(deg(u)+deg(v))
/// residual updates, after which pushing restores ‖r/d‖∞ < ε.
///
/// The punchline for the paper's thesis: the *approximation state* (the
/// truncated residual) is exactly what makes cheap dynamic updates
/// possible — maintaining the exact answer would cost a full solve per
/// arrival.

namespace impreg {

/// Options for the incremental estimator.
struct IncrementalPprOptions {
  /// Teleportation γ ∈ (0, 1) (standard PageRank form, Eq. (2)).
  double gamma = 0.15;
  /// Residual tolerance: |r(u)| < ε·d(u) after every operation.
  double epsilon = 1e-6;
};

/// Maintains an ε-approximate PPR vector under edge insertions.
class IncrementalPersonalizedPageRank {
 public:
  /// Starts from `initial` (copied) and a nonnegative seed vector with
  /// the same node count. The graph may already contain edges.
  IncrementalPersonalizedPageRank(const DynamicGraph& initial, Vector seed,
                                  const IncrementalPprOptions& options = {});

  /// Inserts undirected edge {u, v} and repairs the estimate.
  void AddEdge(NodeId u, NodeId v, double weight = 1.0);

  /// The current approximation p (entrywise within R_γ|r| of the true
  /// PPR on the current graph).
  const Vector& Scores() const { return p_; }

  /// The current residual r.
  const Vector& Residual() const { return r_; }

  /// The current graph.
  const DynamicGraph& graph() const { return graph_; }

  /// Total pushes performed since construction (the work measure).
  std::int64_t TotalPushes() const { return total_pushes_; }

  /// Pushes performed by the last AddEdge call.
  std::int64_t LastEdgePushes() const { return last_edge_pushes_; }

 private:
  void Enqueue(NodeId u);
  std::int64_t PushUntilConverged();

  DynamicGraph graph_;
  Vector seed_;
  Vector p_;
  Vector r_;
  IncrementalPprOptions options_;
  std::deque<NodeId> queue_;
  std::vector<char> queued_;
  std::int64_t total_pushes_ = 0;
  std::int64_t last_edge_pushes_ = 0;
};

}  // namespace impreg

#endif  // IMPREG_STREAMING_INCREMENTAL_PPR_H_
