#ifndef IMPREG_STREAMING_INCREMENTAL_PPR_H_
#define IMPREG_STREAMING_INCREMENTAL_PPR_H_

#include <cstdint>
#include <deque>

#include "core/solve_status.h"
#include "core/work_budget.h"
#include "linalg/vector_ops.h"
#include "streaming/dynamic_graph.h"

/// \file
/// Incremental Personalized PageRank on an evolving graph — the
/// paper's [6] (Bahmani–Chowdhury–Goel) scenario, implemented with
/// push-style residual maintenance (as in the dynamic-push literature
/// that operationalizes it):
///
/// We maintain the pair (p, r) with the exact algebraic invariant
///
///   r = s + ((1−γ)/γ)·M p − (1/γ)·p,          M = A D^{-1},
///
/// equivalently  PPR(s) = p + R_γ r. Push transfers residual into p
/// without breaking the invariant; an edge insertion *or removal*
/// changes two columns of M, so the invariant is repaired with
/// O(deg(u)+deg(v)) residual updates, after which pushing restores
/// ‖r/d‖∞ < ε. The repair Δr = ((1−γ)/γ)(M' − M)p is sign-agnostic —
/// the same column scatter serves positive and negative updates, which
/// is why the push kernel carries signed residuals.
///
/// The punchline for the paper's thesis: the *approximation state* (the
/// truncated residual) is exactly what makes cheap dynamic updates
/// possible — maintaining the exact answer would cost a full solve per
/// arrival. The same state is what makes cached answers *servable*: a
/// stored (p, r) pair is a certified intermediate that the query engine
/// (src/service/) warm-restarts from when ε tightens or edges arrive.

namespace impreg {

/// Options for the incremental estimator.
struct IncrementalPprOptions {
  /// Teleportation γ ∈ (0, 1) (standard PageRank form, Eq. (2)).
  double gamma = 0.15;
  /// Residual tolerance: |r(u)| < ε·d(u) after every operation.
  double epsilon = 1e-6;
  /// Optional cooperative budget (nullptr = unlimited), checked every
  /// 256 pushes; on exhaustion the push loop stops there and the pair
  /// (p, r) is returned best-so-far with the invariant intact
  /// (kBudgetExhausted) — some residuals may still be over threshold.
  WorkBudget* budget = nullptr;
};

/// The shared standard-form push kernel: drains `queue` (nodes with
/// |r(u)| ≥ ε·d(u), flags mirrored in `queued`), transferring residual
/// into p while preserving the invariant above. Handles *signed*
/// residuals, so it is safe after edge-arrival repairs. Charges
/// `options.budget` one unit per arc scanned and stops at the next
/// 256-push boundary once the budget exhausts (queue and flags are left
/// consistent, so a later call resumes). Fills `diagnostics`
/// (kConverged or kBudgetExhausted) and returns the pushes performed.
/// Used by IncrementalPersonalizedPageRank and the query engine's
/// warm-restart path.
std::int64_t StandardFormPush(const DynamicGraph& g,
                              const IncrementalPprOptions& options,
                              Vector& p, Vector& r,
                              std::deque<NodeId>& queue,
                              std::vector<char>& queued,
                              SolverDiagnostics& diagnostics);

/// Recomputes the invariant residual r = s + ((1−γ)/γ)·M p − (1/γ)·p
/// for an arbitrary p on the *current* graph, in O(n + vol(supp(p))).
/// This is the AddEdge repair generalized to any number of edge
/// changes at once: a cached p from an older graph epoch gets an exact
/// residual on the new graph with one sparse column scatter instead of
/// a per-edge replay.
Vector InvariantResidual(const DynamicGraph& g, const Vector& seed,
                         const Vector& p, double gamma);

/// Maintains an ε-approximate PPR vector under edge insertions and
/// removals.
class IncrementalPersonalizedPageRank {
 public:
  /// Starts from `initial` (copied) and a nonnegative seed vector with
  /// the same node count. The graph may already contain edges.
  IncrementalPersonalizedPageRank(const DynamicGraph& initial, Vector seed,
                                  const IncrementalPprOptions& options = {});

  /// Inserts undirected edge {u, v} and repairs the estimate.
  void AddEdge(NodeId u, NodeId v, double weight = 1.0);

  /// Removes (all of, or `weight` of — DynamicGraph::RemoveEdge
  /// semantics) undirected edge {u, v} and repairs the estimate with
  /// the same column scatter AddEdge uses, negated by the graph delta
  /// itself. The edge must exist.
  void RemoveEdge(NodeId u, NodeId v, double weight = 0.0);

  /// The current approximation p (entrywise within R_γ|r| of the true
  /// PPR on the current graph).
  const Vector& Scores() const { return p_; }

  /// The current residual r.
  const Vector& Residual() const { return r_; }

  /// The current graph.
  const DynamicGraph& graph() const { return graph_; }

  /// Total pushes performed since construction (the work measure).
  std::int64_t TotalPushes() const { return total_pushes_; }

  /// Pushes performed by the last AddEdge call.
  std::int64_t LastEdgePushes() const { return last_edge_pushes_; }

  /// Diagnostics of the most recent operation (construction or
  /// AddEdge): kConverged when every residual is below threshold,
  /// kBudgetExhausted when the shared budget stopped the push loop
  /// early (Scores() is then the best-so-far estimate, invariant
  /// intact).
  const SolverDiagnostics& diagnostics() const { return diagnostics_; }

 private:
  void Enqueue(NodeId u);
  std::int64_t PushUntilConverged();
  /// Shared edit path: snapshot the two affected columns, apply the
  /// mutation (`remove` selects RemoveEdge vs AddEdge), scatter the
  /// invariant repair, and push back under threshold.
  void ApplyEdit(NodeId u, NodeId v, double weight, bool remove);

  DynamicGraph graph_;
  Vector seed_;
  Vector p_;
  Vector r_;
  IncrementalPprOptions options_;
  std::deque<NodeId> queue_;
  std::vector<char> queued_;
  std::int64_t total_pushes_ = 0;
  std::int64_t last_edge_pushes_ = 0;
  SolverDiagnostics diagnostics_;
};

}  // namespace impreg

#endif  // IMPREG_STREAMING_INCREMENTAL_PPR_H_
