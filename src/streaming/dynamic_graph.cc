#include "streaming/dynamic_graph.h"

#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "util/check.h"

namespace impreg {

namespace {

/// The canonical degree fold: left to right over the row, exactly the
/// order GraphBuilder::Build accumulates. Recomputed after every row
/// mutation so removal restores the pre-insertion bits.
double RowSum(const std::vector<DynamicGraph::Neighbor>& row) {
  double sum = 0.0;
  for (const DynamicGraph::Neighbor& n : row) sum += n.weight;
  return sum;
}

std::uint64_t ArcKey(NodeId u, NodeId v) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(u)) << 32) |
         static_cast<std::uint32_t>(v);
}

}  // namespace

DynamicGraph::DynamicGraph(NodeId num_nodes)
    : rep_(std::make_shared<Rep>()) {
  IMPREG_CHECK(num_nodes >= 0);
  rep_->adjacency.resize(num_nodes);
  rep_->degrees.assign(num_nodes, 0.0);
}

DynamicGraph DynamicGraph::FromGraph(const Graph& g) {
  DynamicGraph dynamic(g.NumNodes());
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    const auto heads = g.Heads(u);
    const auto weights = g.Weights(u);
    for (std::size_t i = 0; i < heads.size(); ++i) {
      if (heads[i] >= u) dynamic.AddEdge(u, heads[i], weights[i]);
    }
  }
  return dynamic;
}

DynamicGraph DynamicGraph::FromParts(
    std::vector<std::vector<Neighbor>> adjacency, std::vector<double> degrees,
    std::int64_t num_edges, double total_volume) {
  IMPREG_CHECK_MSG(adjacency.size() == degrees.size(),
                   "adjacency/degree node counts disagree");
  IMPREG_CHECK_MSG(num_edges >= 0 && std::isfinite(total_volume),
                   "edge count/volume malformed");
  const NodeId n = static_cast<NodeId>(adjacency.size());
  std::int64_t arcs = 0;
  std::int64_t self_loops = 0;
  // Pairwise-symmetry ledger: every cross arc (u→v) must be mirrored by
  // (v→u) with bitwise-equal weight, and no row may list a head twice
  // (mutations edit both rows of an edge and accumulate in place — an
  // asymmetric or duplicated adjacency would silently corrupt them).
  std::unordered_set<std::uint64_t> seen_arcs;
  std::unordered_map<std::uint64_t, double> unmatched;
  seen_arcs.reserve(static_cast<std::size_t>(2 * num_edges));
  for (NodeId u = 0; u < n; ++u) {
    IMPREG_CHECK_MSG(std::isfinite(degrees[u]), "non-finite degree");
    for (const Neighbor& nb : adjacency[u]) {
      IMPREG_CHECK_MSG(nb.head >= 0 && nb.head < n,
                       "neighbor id out of range");
      IMPREG_CHECK_MSG(std::isfinite(nb.weight) && nb.weight > 0.0,
                       "neighbor weight must be finite and positive");
      IMPREG_CHECK_MSG(seen_arcs.insert(ArcKey(u, nb.head)).second,
                       "duplicate neighbor entry in a row");
      ++arcs;
      if (nb.head == u) {
        ++self_loops;
      } else if (u < nb.head) {
        unmatched.emplace(ArcKey(u, nb.head), nb.weight);
      } else {
        const auto mirror = unmatched.find(ArcKey(nb.head, u));
        IMPREG_CHECK_MSG(mirror != unmatched.end(),
                         "arc (u, v) present without its mirror (v, u)");
        IMPREG_CHECK_MSG(mirror->second == nb.weight,
                         "mirrored arcs carry different weights");
        unmatched.erase(mirror);
      }
    }
  }
  IMPREG_CHECK_MSG(unmatched.empty(),
                   "arc (u, v) present without its mirror (v, u)");
  // Each undirected edge contributes two arcs except self-loops (one).
  IMPREG_CHECK_MSG(arcs == 2 * num_edges - self_loops,
                   "arc count disagrees with the declared edge count");
  DynamicGraph dynamic(n);
  dynamic.rep_->adjacency = std::move(adjacency);
  dynamic.rep_->degrees = std::move(degrees);
  dynamic.rep_->num_edges = num_edges;
  return dynamic;
}

void DynamicGraph::EnsureUnique() {
  // One writer by contract, so use_count() is stable from this thread's
  // point of view: pinned views only appear via Snapshot()/copies made
  // on this thread before the mutation.
  if (rep_.use_count() > 1) rep_ = std::make_shared<Rep>(*rep_);
}

double DynamicGraph::TotalVolume() const {
  double volume = 0.0;
  for (double d : rep_->degrees) volume += d;
  return volume;
}

double DynamicGraph::EdgeWeight(NodeId u, NodeId v) const {
  if (u < 0 || u >= NumNodes() || v < 0 || v >= NumNodes()) return 0.0;
  for (const Neighbor& n : rep_->adjacency[u]) {
    if (n.head == v) return n.weight;
  }
  return 0.0;
}

void DynamicGraph::AddEdge(NodeId u, NodeId v, double weight) {
  IMPREG_CHECK(u >= 0 && u < NumNodes() && v >= 0 && v < NumNodes());
  IMPREG_CHECK_MSG(std::isfinite(weight) && weight > 0.0,
                   "edge weights must be finite and strictly positive");
  EnsureUnique();
  Rep& rep = *rep_;
  auto bump = [&](NodeId from, NodeId to) {
    for (Neighbor& n : rep.adjacency[from]) {
      if (n.head == to) {
        n.weight += weight;
        return true;
      }
    }
    rep.adjacency[from].push_back({to, weight});
    return false;
  };
  const bool existed = bump(u, v);
  if (u != v) bump(v, u);
  if (!existed) ++rep.num_edges;
  rep.degrees[u] = RowSum(rep.adjacency[u]);
  if (u != v) rep.degrees[v] = RowSum(rep.adjacency[v]);
}

void DynamicGraph::RemoveEdge(NodeId u, NodeId v, double weight) {
  IMPREG_CHECK(u >= 0 && u < NumNodes() && v >= 0 && v < NumNodes());
  IMPREG_CHECK_MSG(std::isfinite(weight) && weight >= 0.0,
                   "removal weight must be finite and non-negative");
  EnsureUnique();
  Rep& rep = *rep_;
  auto find = [&](NodeId from, NodeId to) -> Neighbor* {
    for (Neighbor& n : rep.adjacency[from]) {
      if (n.head == to) return &n;
    }
    return nullptr;
  };
  Neighbor* forward = find(u, v);
  IMPREG_CHECK_MSG(forward != nullptr, "RemoveEdge: no such edge");
  const double stored = forward->weight;
  IMPREG_CHECK_MSG(weight <= stored,
                   "RemoveEdge: removal weight exceeds the stored weight");
  const bool full = weight == 0.0 || weight == stored;
  if (full) {
    auto erase = [&](NodeId from, NodeId to) {
      std::vector<Neighbor>& row = rep.adjacency[from];
      for (std::size_t i = 0; i < row.size(); ++i) {
        if (row[i].head == to) {
          // Order-preserving erase: surviving entries keep their
          // positions, so the re-folded degree restores prior bits.
          row.erase(row.begin() + static_cast<std::ptrdiff_t>(i));
          return;
        }
      }
    };
    erase(u, v);
    if (u != v) erase(v, u);
    --rep.num_edges;
  } else {
    // One subtraction, mirrored bitwise (both stored weights were
    // accumulated by the identical sequence, so they are equal going
    // in and stay equal coming out).
    forward->weight = stored - weight;
    if (u != v) {
      Neighbor* backward = find(v, u);
      IMPREG_CHECK_MSG(backward != nullptr,
                       "RemoveEdge: asymmetric adjacency");
      backward->weight = stored - weight;
    }
  }
  rep.degrees[u] = RowSum(rep.adjacency[u]);
  if (u != v) rep.degrees[v] = RowSum(rep.adjacency[v]);
}

Graph DynamicGraph::ToGraph() const {
  GraphBuilder builder(NumNodes());
  for (NodeId u = 0; u < NumNodes(); ++u) {
    for (const Neighbor& n : rep_->adjacency[u]) {
      if (n.head >= u) builder.AddEdge(u, n.head, n.weight);
    }
  }
  return builder.Build();
}

}  // namespace impreg
