#include "streaming/dynamic_graph.h"

#include "util/check.h"

namespace impreg {

DynamicGraph::DynamicGraph(NodeId num_nodes) {
  IMPREG_CHECK(num_nodes >= 0);
  adjacency_.resize(num_nodes);
  degrees_.assign(num_nodes, 0.0);
}

DynamicGraph DynamicGraph::FromGraph(const Graph& g) {
  DynamicGraph dynamic(g.NumNodes());
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    const auto heads = g.Heads(u);
    const auto weights = g.Weights(u);
    for (std::size_t i = 0; i < heads.size(); ++i) {
      if (heads[i] >= u) dynamic.AddEdge(u, heads[i], weights[i]);
    }
  }
  return dynamic;
}

void DynamicGraph::AddEdge(NodeId u, NodeId v, double weight) {
  IMPREG_CHECK(u >= 0 && u < NumNodes() && v >= 0 && v < NumNodes());
  IMPREG_CHECK_MSG(weight > 0.0, "edge weights must be strictly positive");
  auto bump = [&](NodeId from, NodeId to) {
    for (Neighbor& n : adjacency_[from]) {
      if (n.head == to) {
        n.weight += weight;
        return true;
      }
    }
    adjacency_[from].push_back({to, weight});
    return false;
  };
  const bool existed = bump(u, v);
  if (u != v) bump(v, u);
  if (!existed) ++num_edges_;
  degrees_[u] += weight;
  total_volume_ += weight;
  if (u != v) {
    degrees_[v] += weight;
    total_volume_ += weight;
  }
}

Graph DynamicGraph::ToGraph() const {
  GraphBuilder builder(NumNodes());
  for (NodeId u = 0; u < NumNodes(); ++u) {
    for (const Neighbor& n : adjacency_[u]) {
      if (n.head >= u) builder.AddEdge(u, n.head, n.weight);
    }
  }
  return builder.Build();
}

}  // namespace impreg
