#include "streaming/dynamic_graph.h"

#include <cmath>
#include <utility>

#include "util/check.h"

namespace impreg {

DynamicGraph::DynamicGraph(NodeId num_nodes)
    : rep_(std::make_shared<Rep>()) {
  IMPREG_CHECK(num_nodes >= 0);
  rep_->adjacency.resize(num_nodes);
  rep_->degrees.assign(num_nodes, 0.0);
}

DynamicGraph DynamicGraph::FromGraph(const Graph& g) {
  DynamicGraph dynamic(g.NumNodes());
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    const auto heads = g.Heads(u);
    const auto weights = g.Weights(u);
    for (std::size_t i = 0; i < heads.size(); ++i) {
      if (heads[i] >= u) dynamic.AddEdge(u, heads[i], weights[i]);
    }
  }
  return dynamic;
}

DynamicGraph DynamicGraph::FromParts(
    std::vector<std::vector<Neighbor>> adjacency, std::vector<double> degrees,
    std::int64_t num_edges, double total_volume) {
  IMPREG_CHECK_MSG(adjacency.size() == degrees.size(),
                   "adjacency/degree node counts disagree");
  IMPREG_CHECK_MSG(num_edges >= 0 && std::isfinite(total_volume),
                   "edge count/volume malformed");
  const NodeId n = static_cast<NodeId>(adjacency.size());
  std::int64_t arcs = 0;
  std::int64_t self_loops = 0;
  for (NodeId u = 0; u < n; ++u) {
    IMPREG_CHECK_MSG(std::isfinite(degrees[u]), "non-finite degree");
    for (const Neighbor& nb : adjacency[u]) {
      IMPREG_CHECK_MSG(nb.head >= 0 && nb.head < n,
                       "neighbor id out of range");
      IMPREG_CHECK_MSG(std::isfinite(nb.weight) && nb.weight > 0.0,
                       "neighbor weight must be finite and positive");
      ++arcs;
      if (nb.head == u) ++self_loops;
    }
  }
  // Each undirected edge contributes two arcs except self-loops (one).
  IMPREG_CHECK_MSG(arcs == 2 * num_edges - self_loops,
                   "arc count disagrees with the declared edge count");
  DynamicGraph dynamic(n);
  dynamic.rep_->adjacency = std::move(adjacency);
  dynamic.rep_->degrees = std::move(degrees);
  dynamic.rep_->num_edges = num_edges;
  dynamic.rep_->total_volume = total_volume;
  return dynamic;
}

void DynamicGraph::EnsureUnique() {
  // One writer by contract, so use_count() is stable from this thread's
  // point of view: pinned views only appear via Snapshot()/copies made
  // on this thread before the mutation.
  if (rep_.use_count() > 1) rep_ = std::make_shared<Rep>(*rep_);
}

void DynamicGraph::AddEdge(NodeId u, NodeId v, double weight) {
  IMPREG_CHECK(u >= 0 && u < NumNodes() && v >= 0 && v < NumNodes());
  IMPREG_CHECK_MSG(weight > 0.0, "edge weights must be strictly positive");
  EnsureUnique();
  Rep& rep = *rep_;
  auto bump = [&](NodeId from, NodeId to) {
    for (Neighbor& n : rep.adjacency[from]) {
      if (n.head == to) {
        n.weight += weight;
        return true;
      }
    }
    rep.adjacency[from].push_back({to, weight});
    return false;
  };
  const bool existed = bump(u, v);
  if (u != v) bump(v, u);
  if (!existed) ++rep.num_edges;
  rep.degrees[u] += weight;
  rep.total_volume += weight;
  if (u != v) {
    rep.degrees[v] += weight;
    rep.total_volume += weight;
  }
}

Graph DynamicGraph::ToGraph() const {
  GraphBuilder builder(NumNodes());
  for (NodeId u = 0; u < NumNodes(); ++u) {
    for (const Neighbor& n : rep_->adjacency[u]) {
      if (n.head >= u) builder.AddEdge(u, n.head, n.weight);
    }
  }
  return builder.Build();
}

}  // namespace impreg
