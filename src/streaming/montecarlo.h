#ifndef IMPREG_STREAMING_MONTECARLO_H_
#define IMPREG_STREAMING_MONTECARLO_H_

#include <cstdint>

#include "core/solve_status.h"
#include "core/work_budget.h"
#include "graph/graph.h"
#include "linalg/vector_ops.h"
#include "util/rng.h"

/// \file
/// Monte Carlo PageRank estimation by terminated random walks — the
/// primitive behind PageRank on graph streams [37] and incremental
/// PageRank at scale [6]: a γ-teleporting walk's termination point is
/// distributed exactly as R_γ applied to the walk's start distribution,
/// so visit counting over R walks is an unbiased estimator whose error
/// decays as 1/√R. The number of walks is yet another aggressiveness
/// knob: few walks give a coarse, strongly "regularized" (high-variance
/// but sparse and cheap) estimate — which is why a budget-exhausted run
/// is still an answer: the counts over the walks that did complete are
/// the same estimator at a smaller R.

namespace impreg {

/// Options for the Monte Carlo estimators.
struct MonteCarloOptions {
  /// Teleportation γ ∈ (0, 1) (standard form, Eq. (2)).
  double gamma = 0.15;
  /// Walks per seed node.
  int walks_per_node = 16;
  /// Hard cap on a single walk's length (safety; geometric(γ) walks
  /// exceed it with probability (1−γ)^cap).
  int max_walk_length = 10000;
  std::uint64_t seed = 0xa1cULL;
  /// Optional cooperative budget (nullptr = unlimited), checked between
  /// walks; each completed walk charges max(steps, 1) units. On
  /// exhaustion the remaining walks are skipped and the counts over the
  /// completed walks are normalized and returned (kBudgetExhausted).
  WorkBudget* budget = nullptr;
};

/// Result of a Monte Carlo estimation run.
struct MonteCarloResult {
  /// Normalized termination counts over the completed walks (zero
  /// vector if the budget allowed no walk at all).
  Vector scores;
  /// Walks actually completed.
  std::int64_t walks = 0;
  /// Walks the options asked for.
  std::int64_t requested_walks = 0;
  /// Total steps (edges traversed) across the completed walks — the
  /// work measure.
  std::int64_t steps = 0;
  /// kConverged: every requested walk ran. kBudgetExhausted: stopped
  /// early; scores estimate the same quantity at a smaller R.
  SolverDiagnostics diagnostics;
};

/// Estimates the Personalized PageRank of `seed_node`: runs
/// `walks_per_node` walks from it and returns normalized termination
/// counts. Walks stop with probability γ per step; from an isolated or
/// zero-degree node the walk terminates immediately.
MonteCarloResult MonteCarloPersonalizedPageRankSolve(
    const Graph& g, NodeId seed_node, const MonteCarloOptions& options = {});

/// Estimates global (uniform-seed) PageRank: `walks_per_node` walks
/// from every node, normalized termination counts.
MonteCarloResult MonteCarloPageRankSolve(const Graph& g,
                                         const MonteCarloOptions& options = {});

/// Legacy vector-only wrappers (bit-identical to the Solve variants'
/// `scores` on the same options).
Vector MonteCarloPersonalizedPageRank(const Graph& g, NodeId seed_node,
                                      const MonteCarloOptions& options = {});
Vector MonteCarloPageRank(const Graph& g,
                          const MonteCarloOptions& options = {});

}  // namespace impreg

#endif  // IMPREG_STREAMING_MONTECARLO_H_
