#include "streaming/incremental_ppr.h"

#include <cmath>

#include "core/metrics.h"
#include "streaming/push_kernel.h"
#include "util/check.h"

namespace impreg {

namespace {

// Per-node push threshold: |r(u)| < ε·d(u), ε alone for isolated nodes.
inline double PushThreshold(const DynamicGraph& g, NodeId u, double epsilon) {
  return push_internal::PushThresholdOver(g, u, epsilon);
}

}  // namespace

// The kernel body lives in streaming/push_kernel.h as a template over
// the adjacency provider, so the sharded serving tier can run the
// *same* instruction sequence against shard-set views. This
// instantiation over DynamicGraph is the historical entry point.
std::int64_t StandardFormPush(const DynamicGraph& g,
                              const IncrementalPprOptions& options,
                              Vector& p, Vector& r,
                              std::deque<NodeId>& queue,
                              std::vector<char>& queued,
                              SolverDiagnostics& diagnostics) {
  return StandardFormPushOver(g, options, p, r, queue, queued, diagnostics);
}

Vector InvariantResidual(const DynamicGraph& g, const Vector& seed,
                         const Vector& p, double gamma) {
  return InvariantResidualOver(g, seed, p, gamma);
}

IncrementalPersonalizedPageRank::IncrementalPersonalizedPageRank(
    const DynamicGraph& initial, Vector seed,
    const IncrementalPprOptions& options)
    : graph_(initial), seed_(std::move(seed)), options_(options) {
  IMPREG_CHECK(options_.gamma > 0.0 && options_.gamma < 1.0);
  IMPREG_CHECK(options_.epsilon > 0.0);
  IMPREG_CHECK(seed_.size() == static_cast<std::size_t>(graph_.NumNodes()));
  for (double v : seed_) IMPREG_CHECK_MSG(v >= 0.0, "seed must be >= 0");
  p_.assign(graph_.NumNodes(), 0.0);
  r_ = seed_;
  queued_.assign(graph_.NumNodes(), 0);
  for (NodeId u = 0; u < graph_.NumNodes(); ++u) Enqueue(u);
  total_pushes_ += PushUntilConverged();
}

void IncrementalPersonalizedPageRank::Enqueue(NodeId u) {
  if (queued_[u]) return;
  if (std::abs(r_[u]) >= PushThreshold(graph_, u, options_.epsilon)) {
    queue_.push_back(u);
    queued_[u] = 1;
  }
}

std::int64_t IncrementalPersonalizedPageRank::PushUntilConverged() {
  return StandardFormPush(graph_, options_, p_, r_, queue_, queued_,
                          diagnostics_);
}

void IncrementalPersonalizedPageRank::ApplyEdit(NodeId u, NodeId v,
                                                double weight, bool remove) {
  IMPREG_CHECK(u >= 0 && u < graph_.NumNodes());
  IMPREG_CHECK(v >= 0 && v < graph_.NumNodes());
  const double k = (1.0 - options_.gamma) / options_.gamma;

  // Snapshot the (at most two) columns of M that will change.
  struct ColumnSnapshot {
    NodeId node;
    double old_degree;
    std::vector<DynamicGraph::Neighbor> old_neighbors;
  };
  std::vector<ColumnSnapshot> columns;
  columns.push_back({u, graph_.Degree(u), graph_.Neighbors(u)});
  if (v != u) columns.push_back({v, graph_.Degree(v), graph_.Neighbors(v)});

  if (remove) {
    graph_.RemoveEdge(u, v, weight);
  } else {
    graph_.AddEdge(u, v, weight);
  }

  // Repair the invariant: Δr = ((1−γ)/γ)(M' − M) p on the changed
  // columns. Only columns with p ≠ 0 contribute. The sign of the edit
  // never appears here — the new-minus-old column difference carries
  // it, which is why removals reuse the insertion repair verbatim.
  std::int64_t repaired_columns = 0;
  for (const ColumnSnapshot& col : columns) {
    const double pc = p_[col.node];
    if (pc == 0.0) continue;
    ++repaired_columns;
    const double new_degree = graph_.Degree(col.node);
    // Add the new column…
    if (new_degree > 0.0) {
      for (const DynamicGraph::Neighbor& n : graph_.Neighbors(col.node)) {
        r_[n.head] += k * pc * n.weight / new_degree;
        Enqueue(n.head);
      }
    }
    // …and subtract the old one.
    if (col.old_degree > 0.0) {
      for (const DynamicGraph::Neighbor& n : col.old_neighbors) {
        r_[n.head] -= k * pc * n.weight / col.old_degree;
        Enqueue(n.head);
      }
    }
  }
  Enqueue(u);
  Enqueue(v);
  IMPREG_METRIC_COUNT(remove ? "solver.incremental_ppr.remove_edges"
                             : "solver.incremental_ppr.add_edges",
                      1);
  IMPREG_METRIC_COUNT("solver.incremental_ppr.repaired_columns",
                      repaired_columns);
  last_edge_pushes_ = PushUntilConverged();
  total_pushes_ += last_edge_pushes_;
}

void IncrementalPersonalizedPageRank::AddEdge(NodeId u, NodeId v,
                                              double weight) {
  ApplyEdit(u, v, weight, /*remove=*/false);
}

void IncrementalPersonalizedPageRank::RemoveEdge(NodeId u, NodeId v,
                                                 double weight) {
  ApplyEdit(u, v, weight, /*remove=*/true);
}

}  // namespace impreg
