#include "streaming/incremental_ppr.h"

#include <cmath>
#include <limits>

#include "core/metrics.h"
#include "core/trace.h"
#include "util/check.h"

namespace impreg {

namespace {

// Per-node push threshold: |r(u)| < ε·d(u), ε alone for isolated nodes.
inline double PushThreshold(const DynamicGraph& g, NodeId u, double epsilon) {
  const double d = g.Degree(u);
  return d > 0.0 ? epsilon * d : epsilon;
}

inline int SaturateToInt(std::int64_t v) {
  return v > std::numeric_limits<int>::max()
             ? std::numeric_limits<int>::max()
             : static_cast<int>(v);
}

}  // namespace

std::int64_t StandardFormPush(const DynamicGraph& g,
                              const IncrementalPprOptions& options,
                              Vector& p, Vector& r,
                              std::deque<NodeId>& queue,
                              std::vector<char>& queued,
                              SolverDiagnostics& diagnostics) {
  IMPREG_CHECK(options.gamma > 0.0 && options.gamma < 1.0);
  IMPREG_CHECK(options.epsilon > 0.0);
  IMPREG_CHECK(p.size() == static_cast<std::size_t>(g.NumNodes()));
  IMPREG_CHECK(r.size() == p.size());
  IMPREG_CHECK(queued.size() == p.size());

  SolverTrace* trace = IMPREG_TRACE_BEGIN("incremental_ppr");
  const auto enqueue = [&](NodeId u) {
    if (queued[u]) return;
    if (std::abs(r[u]) >= PushThreshold(g, u, options.epsilon)) {
      queue.push_back(u);
      queued[u] = 1;
    }
  };

  std::int64_t pushes = 0;
  bool budget_stop = false;
  while (!queue.empty()) {
    if (options.budget != nullptr && (pushes & 255) == 0 &&
        options.budget->Exhausted()) {
      budget_stop = true;
      IMPREG_TRACE_EVENT(trace, pushes, kBudget,
                         static_cast<double>(options.budget->Spent()));
      break;
    }
    const NodeId u = queue.front();
    queue.pop_front();
    queued[u] = 0;
    const double d = g.Degree(u);
    const double threshold = PushThreshold(g, u, options.epsilon);
    const double residual = r[u];
    if (std::abs(residual) < threshold) continue;

    // push(u): p gains γ·r, the rest spreads through column u of M
    // (nothing spreads from an isolated node — M annihilates it).
    p[u] += options.gamma * residual;
    r[u] = 0.0;
    std::int64_t arcs = 0;
    if (d > 0.0) {
      const double spread = (1.0 - options.gamma) * residual / d;
      const std::vector<DynamicGraph::Neighbor>& neighbors = g.Neighbors(u);
      arcs = static_cast<std::int64_t>(neighbors.size());
      for (const DynamicGraph::Neighbor& n : neighbors) {
        r[n.head] += spread * n.weight;
        enqueue(n.head);
      }
    }
    enqueue(u);  // Self-loops can re-raise r(u).
    if (options.budget != nullptr) options.budget->Charge(arcs);
    IMPREG_TRACE_EVENT(trace, pushes, kArcWork, static_cast<double>(arcs));
    ++pushes;
    IMPREG_CHECK_MSG(pushes < (1LL << 40), "push runaway");
  }

  diagnostics = SolverDiagnostics{};
  diagnostics.iterations = SaturateToInt(pushes);
  if (budget_stop) {
    diagnostics.status = SolveStatus::kBudgetExhausted;
    diagnostics.detail =
        "work budget exhausted mid-push; (p, r) is the best-so-far pair "
        "with the invariant intact";
  } else {
    diagnostics.status = SolveStatus::kConverged;
  }
  IMPREG_TRACE_FINISH(trace, diagnostics);
  IMPREG_METRIC_COUNT("solver.incremental_ppr.solves", 1);
  IMPREG_METRIC_COUNT("solver.incremental_ppr.pushes", pushes);
  return pushes;
}

Vector InvariantResidual(const DynamicGraph& g, const Vector& seed,
                         const Vector& p, double gamma) {
  IMPREG_CHECK(gamma > 0.0 && gamma < 1.0);
  IMPREG_CHECK(seed.size() == static_cast<std::size_t>(g.NumNodes()));
  IMPREG_CHECK(p.size() == seed.size());
  const double k = (1.0 - gamma) / gamma;
  Vector r = seed;
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    const double pu = p[u];
    if (pu == 0.0) continue;
    r[u] -= pu / gamma;
    const double d = g.Degree(u);
    if (d > 0.0) {
      // Column u of M scatters k·p(u)·w(u,v)/d(u) onto each neighbor v.
      const double scale = k * pu / d;
      for (const DynamicGraph::Neighbor& n : g.Neighbors(u)) {
        r[n.head] += scale * n.weight;
      }
    }
  }
  return r;
}

IncrementalPersonalizedPageRank::IncrementalPersonalizedPageRank(
    const DynamicGraph& initial, Vector seed,
    const IncrementalPprOptions& options)
    : graph_(initial), seed_(std::move(seed)), options_(options) {
  IMPREG_CHECK(options_.gamma > 0.0 && options_.gamma < 1.0);
  IMPREG_CHECK(options_.epsilon > 0.0);
  IMPREG_CHECK(seed_.size() == static_cast<std::size_t>(graph_.NumNodes()));
  for (double v : seed_) IMPREG_CHECK_MSG(v >= 0.0, "seed must be >= 0");
  p_.assign(graph_.NumNodes(), 0.0);
  r_ = seed_;
  queued_.assign(graph_.NumNodes(), 0);
  for (NodeId u = 0; u < graph_.NumNodes(); ++u) Enqueue(u);
  total_pushes_ += PushUntilConverged();
}

void IncrementalPersonalizedPageRank::Enqueue(NodeId u) {
  if (queued_[u]) return;
  if (std::abs(r_[u]) >= PushThreshold(graph_, u, options_.epsilon)) {
    queue_.push_back(u);
    queued_[u] = 1;
  }
}

std::int64_t IncrementalPersonalizedPageRank::PushUntilConverged() {
  return StandardFormPush(graph_, options_, p_, r_, queue_, queued_,
                          diagnostics_);
}

void IncrementalPersonalizedPageRank::AddEdge(NodeId u, NodeId v,
                                              double weight) {
  IMPREG_CHECK(u >= 0 && u < graph_.NumNodes());
  IMPREG_CHECK(v >= 0 && v < graph_.NumNodes());
  const double k = (1.0 - options_.gamma) / options_.gamma;

  // Snapshot the (at most two) columns of M that will change.
  struct ColumnSnapshot {
    NodeId node;
    double old_degree;
    std::vector<DynamicGraph::Neighbor> old_neighbors;
  };
  std::vector<ColumnSnapshot> columns;
  columns.push_back({u, graph_.Degree(u), graph_.Neighbors(u)});
  if (v != u) columns.push_back({v, graph_.Degree(v), graph_.Neighbors(v)});

  graph_.AddEdge(u, v, weight);

  // Repair the invariant: Δr = ((1−γ)/γ)(M' − M) p on the changed
  // columns. Only columns with p ≠ 0 contribute.
  std::int64_t repaired_columns = 0;
  for (const ColumnSnapshot& col : columns) {
    const double pc = p_[col.node];
    if (pc == 0.0) continue;
    ++repaired_columns;
    const double new_degree = graph_.Degree(col.node);
    // Add the new column…
    for (const DynamicGraph::Neighbor& n : graph_.Neighbors(col.node)) {
      r_[n.head] += k * pc * n.weight / new_degree;
      Enqueue(n.head);
    }
    // …and subtract the old one.
    if (col.old_degree > 0.0) {
      for (const DynamicGraph::Neighbor& n : col.old_neighbors) {
        r_[n.head] -= k * pc * n.weight / col.old_degree;
        Enqueue(n.head);
      }
    }
  }
  Enqueue(u);
  Enqueue(v);
  IMPREG_METRIC_COUNT("solver.incremental_ppr.add_edges", 1);
  IMPREG_METRIC_COUNT("solver.incremental_ppr.repaired_columns",
                      repaired_columns);
  last_edge_pushes_ = PushUntilConverged();
  total_pushes_ += last_edge_pushes_;
}

}  // namespace impreg
