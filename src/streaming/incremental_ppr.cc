#include "streaming/incremental_ppr.h"

#include <cmath>

#include "util/check.h"

namespace impreg {

IncrementalPersonalizedPageRank::IncrementalPersonalizedPageRank(
    const DynamicGraph& initial, Vector seed,
    const IncrementalPprOptions& options)
    : graph_(initial), seed_(std::move(seed)), options_(options) {
  IMPREG_CHECK(options_.gamma > 0.0 && options_.gamma < 1.0);
  IMPREG_CHECK(options_.epsilon > 0.0);
  IMPREG_CHECK(seed_.size() == static_cast<std::size_t>(graph_.NumNodes()));
  for (double v : seed_) IMPREG_CHECK_MSG(v >= 0.0, "seed must be >= 0");
  p_.assign(graph_.NumNodes(), 0.0);
  r_ = seed_;
  queued_.assign(graph_.NumNodes(), 0);
  for (NodeId u = 0; u < graph_.NumNodes(); ++u) Enqueue(u);
  total_pushes_ += PushUntilConverged();
}

void IncrementalPersonalizedPageRank::Enqueue(NodeId u) {
  if (queued_[u]) return;
  const double d = graph_.Degree(u);
  const double threshold =
      d > 0.0 ? options_.epsilon * d : options_.epsilon;
  if (std::abs(r_[u]) >= threshold) {
    queue_.push_back(u);
    queued_[u] = 1;
  }
}

std::int64_t IncrementalPersonalizedPageRank::PushUntilConverged() {
  std::int64_t pushes = 0;
  while (!queue_.empty()) {
    const NodeId u = queue_.front();
    queue_.pop_front();
    queued_[u] = 0;
    const double d = graph_.Degree(u);
    const double threshold =
        d > 0.0 ? options_.epsilon * d : options_.epsilon;
    const double r = r_[u];
    if (std::abs(r) < threshold) continue;

    // push(u): p gains γ·r, the rest spreads through column u of M
    // (nothing spreads from an isolated node — M annihilates it).
    p_[u] += options_.gamma * r;
    r_[u] = 0.0;
    if (d > 0.0) {
      const double spread = (1.0 - options_.gamma) * r / d;
      for (const DynamicGraph::Neighbor& n : graph_.Neighbors(u)) {
        r_[n.head] += spread * n.weight;
        Enqueue(n.head);
      }
    }
    Enqueue(u);  // Self-loops can re-raise r(u).
    ++pushes;
    IMPREG_CHECK_MSG(pushes < (1LL << 40), "push runaway");
  }
  return pushes;
}

void IncrementalPersonalizedPageRank::AddEdge(NodeId u, NodeId v,
                                              double weight) {
  IMPREG_CHECK(u >= 0 && u < graph_.NumNodes());
  IMPREG_CHECK(v >= 0 && v < graph_.NumNodes());
  const double k = (1.0 - options_.gamma) / options_.gamma;

  // Snapshot the (at most two) columns of M that will change.
  struct ColumnSnapshot {
    NodeId node;
    double old_degree;
    std::vector<DynamicGraph::Neighbor> old_neighbors;
  };
  std::vector<ColumnSnapshot> columns;
  columns.push_back({u, graph_.Degree(u), graph_.Neighbors(u)});
  if (v != u) columns.push_back({v, graph_.Degree(v), graph_.Neighbors(v)});

  graph_.AddEdge(u, v, weight);

  // Repair the invariant: Δr = ((1−γ)/γ)(M' − M) p on the changed
  // columns. Only columns with p ≠ 0 contribute.
  for (const ColumnSnapshot& col : columns) {
    const double pc = p_[col.node];
    if (pc == 0.0) continue;
    const double new_degree = graph_.Degree(col.node);
    // Add the new column…
    for (const DynamicGraph::Neighbor& n : graph_.Neighbors(col.node)) {
      r_[n.head] += k * pc * n.weight / new_degree;
      Enqueue(n.head);
    }
    // …and subtract the old one.
    if (col.old_degree > 0.0) {
      for (const DynamicGraph::Neighbor& n : col.old_neighbors) {
        r_[n.head] -= k * pc * n.weight / col.old_degree;
        Enqueue(n.head);
      }
    }
  }
  Enqueue(u);
  Enqueue(v);
  last_edge_pushes_ = PushUntilConverged();
  total_pushes_ += last_edge_pushes_;
}

}  // namespace impreg
