#ifndef IMPREG_STREAMING_PUSH_KERNEL_H_
#define IMPREG_STREAMING_PUSH_KERNEL_H_

#include <cmath>
#include <cstdint>
#include <deque>
#include <limits>
#include <vector>

#include "core/metrics.h"
#include "core/trace.h"
#include "linalg/vector_ops.h"
#include "streaming/incremental_ppr.h"
#include "util/check.h"

/// \file
/// The standard-form push kernel as a template over the graph
/// adjacency provider. `StandardFormPush` (incremental_ppr.cc) is a
/// thin instantiation over `DynamicGraph`; the sharded serving tier
/// (src/service/sharding/) instantiates the same kernel over a
/// shard-set view that serves every row from the owning shard's slice
/// and every degree from the owner slice or the resident shard's halo
/// replica. Because the *instruction sequence* is identical for any
/// provider that serves the same bits, shard-count invariance of the
/// push path is by construction, not by after-the-fact merging.
///
/// Requirements on `G`: `NumNodes()`, `Degree(u)` (double), and
/// `Neighbors(u)` returning a range of items with `.head`/`.weight`.
///
/// The kernel carries *signed* residuals and spreads nothing from
/// zero-degree nodes, so it serves positive and negative updates
/// alike: an edge-removal repair leaves negative residual mass (and
/// possibly freshly isolated nodes) and the same drain loop restores
/// ‖r/d‖∞ < ε.

namespace impreg {

namespace push_internal {

// Per-node push threshold: |r(u)| < ε·d(u), ε alone for isolated nodes.
template <typename G>
inline double PushThresholdOver(const G& g, NodeId u, double epsilon) {
  const double d = g.Degree(u);
  return d > 0.0 ? epsilon * d : epsilon;
}

inline int SaturateToInt(std::int64_t v) {
  return v > std::numeric_limits<int>::max()
             ? std::numeric_limits<int>::max()
             : static_cast<int>(v);
}

}  // namespace push_internal

/// Shared standard-form push kernel over any adjacency provider `G`.
/// Semantics, trace stream ("incremental_ppr"), metrics, and
/// floating-point operation order are exactly those of
/// `StandardFormPush` — see streaming/incremental_ppr.h for the
/// contract. Instantiated over `DynamicGraph` it *is* that function.
template <typename G>
std::int64_t StandardFormPushOver(const G& g,
                                  const IncrementalPprOptions& options,
                                  Vector& p, Vector& r,
                                  std::deque<NodeId>& queue,
                                  std::vector<char>& queued,
                                  SolverDiagnostics& diagnostics) {
  IMPREG_CHECK(options.gamma > 0.0 && options.gamma < 1.0);
  IMPREG_CHECK(options.epsilon > 0.0);
  IMPREG_CHECK(p.size() == static_cast<std::size_t>(g.NumNodes()));
  IMPREG_CHECK(r.size() == p.size());
  IMPREG_CHECK(queued.size() == p.size());

  SolverTrace* trace = IMPREG_TRACE_BEGIN("incremental_ppr");
  const auto enqueue = [&](NodeId u) {
    if (queued[u]) return;
    if (std::abs(r[u]) >=
        push_internal::PushThresholdOver(g, u, options.epsilon)) {
      queue.push_back(u);
      queued[u] = 1;
    }
  };

  std::int64_t pushes = 0;
  bool budget_stop = false;
  while (!queue.empty()) {
    if (options.budget != nullptr && (pushes & 255) == 0 &&
        options.budget->Exhausted()) {
      budget_stop = true;
      IMPREG_TRACE_EVENT(trace, pushes, kBudget,
                         static_cast<double>(options.budget->Spent()));
      break;
    }
    const NodeId u = queue.front();
    queue.pop_front();
    queued[u] = 0;
    const double d = g.Degree(u);
    const double threshold =
        push_internal::PushThresholdOver(g, u, options.epsilon);
    const double residual = r[u];
    if (std::abs(residual) < threshold) continue;

    // push(u): p gains γ·r, the rest spreads through column u of M
    // (nothing spreads from an isolated node — M annihilates it).
    p[u] += options.gamma * residual;
    r[u] = 0.0;
    std::int64_t arcs = 0;
    if (d > 0.0) {
      const double spread = (1.0 - options.gamma) * residual / d;
      const auto& neighbors = g.Neighbors(u);
      arcs = static_cast<std::int64_t>(neighbors.size());
      for (const auto& n : neighbors) {
        r[n.head] += spread * n.weight;
        enqueue(n.head);
      }
    }
    enqueue(u);  // Self-loops can re-raise r(u).
    if (options.budget != nullptr) options.budget->Charge(arcs);
    IMPREG_TRACE_EVENT(trace, pushes, kArcWork, static_cast<double>(arcs));
    ++pushes;
    IMPREG_CHECK_MSG(pushes < (1LL << 40), "push runaway");
  }

  diagnostics = SolverDiagnostics{};
  diagnostics.iterations = push_internal::SaturateToInt(pushes);
  if (budget_stop) {
    diagnostics.status = SolveStatus::kBudgetExhausted;
    diagnostics.detail =
        "work budget exhausted mid-push; (p, r) is the best-so-far pair "
        "with the invariant intact";
  } else {
    diagnostics.status = SolveStatus::kConverged;
  }
  IMPREG_TRACE_FINISH(trace, diagnostics);
  IMPREG_METRIC_COUNT("solver.incremental_ppr.solves", 1);
  IMPREG_METRIC_COUNT("solver.incremental_ppr.pushes", pushes);
  return pushes;
}

/// Invariant residual r = s + ((1−γ)/γ)·M p − (1/γ)·p over any
/// adjacency provider `G` — see streaming/incremental_ppr.h.
template <typename G>
Vector InvariantResidualOver(const G& g, const Vector& seed, const Vector& p,
                             double gamma) {
  IMPREG_CHECK(gamma > 0.0 && gamma < 1.0);
  IMPREG_CHECK(seed.size() == static_cast<std::size_t>(g.NumNodes()));
  IMPREG_CHECK(p.size() == seed.size());
  const double k = (1.0 - gamma) / gamma;
  Vector r = seed;
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    const double pu = p[u];
    if (pu == 0.0) continue;
    r[u] -= pu / gamma;
    const double d = g.Degree(u);
    if (d > 0.0) {
      // Column u of M scatters k·p(u)·w(u,v)/d(u) onto each neighbor v.
      const double scale = k * pu / d;
      for (const auto& n : g.Neighbors(u)) {
        r[n.head] += scale * n.weight;
      }
    }
  }
  return r;
}

}  // namespace impreg

#endif  // IMPREG_STREAMING_PUSH_KERNEL_H_
