#ifndef IMPREG_STREAMING_DYNAMIC_GRAPH_H_
#define IMPREG_STREAMING_DYNAMIC_GRAPH_H_

#include <vector>

#include "graph/graph.h"

/// \file
/// A mutable undirected graph for the streaming/dynamic algorithms of
/// §3.3's closing paragraph (PageRank on graph streams [37], incremental
/// Personalized PageRank on evolving networks [6]). Insert-only:
/// real social/information streams are dominated by arrivals, and the
/// paper's cited algorithms are insert-driven.

namespace impreg {

/// Mutable adjacency-list graph; supports edge insertion and conversion
/// to/from the immutable CSR Graph. Parallel insertions of the same
/// edge accumulate weight. Deterministic iteration order (insertion
/// order per node).
class DynamicGraph {
 public:
  /// A neighbor entry.
  struct Neighbor {
    NodeId head;
    double weight;
  };

  /// An edgeless graph on `num_nodes` nodes.
  explicit DynamicGraph(NodeId num_nodes);

  /// Copies the edges of an immutable graph.
  static DynamicGraph FromGraph(const Graph& g);

  DynamicGraph(const DynamicGraph&) = default;
  DynamicGraph& operator=(const DynamicGraph&) = default;
  DynamicGraph(DynamicGraph&&) = default;
  DynamicGraph& operator=(DynamicGraph&&) = default;

  NodeId NumNodes() const { return static_cast<NodeId>(adjacency_.size()); }

  /// Number of distinct undirected edges.
  std::int64_t NumEdges() const { return num_edges_; }

  /// Weighted degree (self-loops once).
  double Degree(NodeId u) const { return degrees_[u]; }

  double TotalVolume() const { return total_volume_; }

  /// The neighbor list of u (insertion order; no duplicates).
  const std::vector<Neighbor>& Neighbors(NodeId u) const {
    return adjacency_[u];
  }

  /// Inserts undirected edge {u, v} with weight w > 0 (accumulating
  /// onto an existing edge). O(deg) per endpoint (linear duplicate
  /// scan — degrees in our workloads are small).
  void AddEdge(NodeId u, NodeId v, double weight = 1.0);

  /// Freezes into an immutable CSR Graph.
  Graph ToGraph() const;

 private:
  std::vector<std::vector<Neighbor>> adjacency_;
  std::vector<double> degrees_;
  std::int64_t num_edges_ = 0;
  double total_volume_ = 0.0;
};

}  // namespace impreg

#endif  // IMPREG_STREAMING_DYNAMIC_GRAPH_H_
