#ifndef IMPREG_STREAMING_DYNAMIC_GRAPH_H_
#define IMPREG_STREAMING_DYNAMIC_GRAPH_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/graph.h"

/// \file
/// A mutable undirected graph for the streaming/dynamic algorithms of
/// §3.3's closing paragraph (PageRank on graph streams [37], incremental
/// Personalized PageRank on evolving networks [6]). Insert-only:
/// real social/information streams are dominated by arrivals, and the
/// paper's cited algorithms are insert-driven.
///
/// Storage is copy-on-write: copying a DynamicGraph (and taking a
/// Snapshot()) is O(1) — both share one immutable representation until
/// the next mutation, which clones it first. That is what lets the
/// serving tier pin a frozen epoch view for a query batch while ingest
/// keeps landing AddEdges on the live graph (SnapshotView below), and
/// what the durability layer serializes: the representation preserves
/// per-node neighbor insertion order and the exact accumulated degree
/// bits, so a snapshot+WAL-replayed graph is bit-identical to one that
/// never crashed (src/service/durability/).

namespace impreg {

/// Mutable adjacency-list graph; supports edge insertion and conversion
/// to/from the immutable CSR Graph. Parallel insertions of the same
/// edge accumulate weight. Deterministic iteration order (insertion
/// order per node). Value semantics with copy-on-write sharing: copies
/// are O(1) and diverge lazily on the first mutation of either side.
///
/// Thread-safety: one writer. A SnapshotView (or plain copy) created
/// by the writer thread may be read concurrently from other threads
/// while the writer mutates — the writer clones the shared
/// representation before its first post-snapshot mutation, so readers
/// only ever see the frozen state they pinned.
class DynamicGraph {
 public:
  /// A neighbor entry.
  struct Neighbor {
    NodeId head;
    double weight;
  };

  /// An immutable, O(1)-pinned view of the graph at a moment in time,
  /// tagged with the epoch the owner assigned to that moment. The view
  /// keeps the underlying representation alive; the live graph it was
  /// taken from is free to keep mutating. Defined after the class (it
  /// holds a DynamicGraph by value).
  class SnapshotView;

  /// An edgeless graph on `num_nodes` nodes.
  explicit DynamicGraph(NodeId num_nodes);

  /// Copies the edges of an immutable graph (u-major, head ≥ u arc
  /// order — the canonical load order the durability layer replays).
  static DynamicGraph FromGraph(const Graph& g);

  /// Reassembles a graph from its exact serialized parts — adjacency in
  /// per-node insertion order plus the *accumulated* degree/volume bits
  /// (which depend on arrival order and cannot be recomputed without
  /// changing rounding). Validates symmetry of the edge count and
  /// finiteness; aborts on malformed parts (callers — the snapshot
  /// loader — checksum-verify first, so this is a programming-error
  /// guard, not an input validator).
  static DynamicGraph FromParts(std::vector<std::vector<Neighbor>> adjacency,
                                std::vector<double> degrees,
                                std::int64_t num_edges, double total_volume);

  /// The exact serialized parts of the graph: adjacency in per-node
  /// insertion order plus the accumulated degree/volume bits. A deep
  /// copy — the inverse of `FromParts`, so
  /// `FromParts(ExportParts(g))` round-trips bit-exactly for any
  /// graph, including degenerate topologies (empty, isolated nodes,
  /// self-loops). The sharding layer uses this to carve owner slices
  /// without re-deriving degree bits, and the fuzz tests use it to pin
  /// the round-trip contract.
  struct Parts {
    std::vector<std::vector<Neighbor>> adjacency;
    std::vector<double> degrees;
    std::int64_t num_edges = 0;
    double total_volume = 0.0;
  };
  Parts ExportParts() const {
    return Parts{rep_->adjacency, rep_->degrees, rep_->num_edges,
                 rep_->total_volume};
  }

  DynamicGraph(const DynamicGraph&) = default;
  DynamicGraph& operator=(const DynamicGraph&) = default;
  DynamicGraph(DynamicGraph&&) = default;
  DynamicGraph& operator=(DynamicGraph&&) = default;

  NodeId NumNodes() const {
    return static_cast<NodeId>(rep_->adjacency.size());
  }

  /// Number of distinct undirected edges.
  std::int64_t NumEdges() const { return rep_->num_edges; }

  /// Weighted degree (self-loops once).
  double Degree(NodeId u) const { return rep_->degrees[u]; }

  double TotalVolume() const { return rep_->total_volume; }

  /// The neighbor list of u (insertion order; no duplicates).
  const std::vector<Neighbor>& Neighbors(NodeId u) const {
    return rep_->adjacency[u];
  }

  /// Inserts undirected edge {u, v} with weight w > 0 (accumulating
  /// onto an existing edge). O(deg) per endpoint (linear duplicate
  /// scan — degrees in our workloads are small). If any snapshot or
  /// copy still pins the current representation, it is cloned first
  /// (the copy-on-write step, O(n + m) once per pinned generation).
  void AddEdge(NodeId u, NodeId v, double weight = 1.0);

  /// Pins the current state as an immutable view tagged `epoch` (the
  /// caller's counter — the query engine passes its edit epoch). O(1).
  /// Defined after SnapshotView below.
  SnapshotView Snapshot(std::int64_t epoch = 0) const;

  /// True when this graph shares its representation with a snapshot or
  /// copy (the next AddEdge will clone). Exposed for tests.
  bool SharesRep() const { return rep_.use_count() > 1; }

  /// Freezes into an immutable CSR Graph.
  Graph ToGraph() const;

 private:
  /// The shared-until-mutated representation.
  struct Rep {
    std::vector<std::vector<Neighbor>> adjacency;
    std::vector<double> degrees;
    std::int64_t num_edges = 0;
    double total_volume = 0.0;
  };

  /// Clones the rep if any other graph/view still shares it.
  void EnsureUnique();

  std::shared_ptr<Rep> rep_;
};

class DynamicGraph::SnapshotView {
 public:
  /// An empty view (0 nodes, epoch 0); assign over it.
  SnapshotView() : graph_(0) {}

  /// The frozen graph. Stable for the lifetime of the view.
  const DynamicGraph& graph() const { return graph_; }

  /// The epoch the owner pinned (see DynamicGraph::Snapshot).
  std::int64_t epoch() const { return epoch_; }

 private:
  friend class DynamicGraph;
  SnapshotView(const DynamicGraph& g, std::int64_t epoch)
      : graph_(g), epoch_(epoch) {}

  DynamicGraph graph_;  ///< Shares the rep until the parent mutates.
  std::int64_t epoch_ = 0;
};

inline DynamicGraph::SnapshotView DynamicGraph::Snapshot(
    std::int64_t epoch) const {
  return SnapshotView(*this, epoch);
}

}  // namespace impreg

#endif  // IMPREG_STREAMING_DYNAMIC_GRAPH_H_
