#ifndef IMPREG_STREAMING_DYNAMIC_GRAPH_H_
#define IMPREG_STREAMING_DYNAMIC_GRAPH_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/graph.h"

/// \file
/// A mutable undirected graph for the streaming/dynamic algorithms of
/// §3.3's closing paragraph (PageRank on graph streams [37], incremental
/// Personalized PageRank on evolving networks [6]) — insertions *and*
/// removals, the full evolving-network model.
///
/// Storage is copy-on-write: copying a DynamicGraph (and taking a
/// Snapshot()) is O(1) — both share one immutable representation until
/// the next mutation, which clones it first. That is what lets the
/// serving tier pin a frozen epoch view for a query batch while ingest
/// keeps landing edits on the live graph (SnapshotView below), and
/// what the durability layer serializes: the representation preserves
/// per-node neighbor insertion order and exact degree bits, so a
/// snapshot+WAL-replayed graph is bit-identical to one that never
/// crashed (src/service/durability/).
///
/// ## Canonical accounting
///
/// Degrees are *canonical row sums*: after any mutation of a row, the
/// degree is recomputed as the left-to-right fold over that row's
/// neighbor weights — exactly the fold `GraphBuilder::Build` uses, so
/// `FromGraph` degrees are bitwise the CSR degrees. Volume is the
/// ascending-node-order sum of degrees, computed on demand (cold
/// paths only — the kernels read degrees, not volume). Canonical
/// accounting is what makes removal *exactly invertible*: erasing an
/// edge restores the row to its previous contents (order preserved),
/// so the re-folded degree — and therefore the volume — returns to
/// its previous bits. An incremental `degrees[u] -= w` could not:
/// `(a + w) - w != a` in floating point.

namespace impreg {

/// Mutable adjacency-list graph; supports edge insertion and removal
/// and conversion to/from the immutable CSR Graph. Parallel insertions
/// of the same edge accumulate weight. Deterministic iteration order
/// (insertion order per node; removals erase in place and preserve the
/// order of the surviving entries). Value semantics with copy-on-write
/// sharing: copies are O(1) and diverge lazily on the first mutation
/// of either side.
///
/// Thread-safety: one writer. A SnapshotView (or plain copy) created
/// by the writer thread may be read concurrently from other threads
/// while the writer mutates — the writer clones the shared
/// representation before its first post-snapshot mutation, so readers
/// only ever see the frozen state they pinned.
class DynamicGraph {
 public:
  /// A neighbor entry.
  struct Neighbor {
    NodeId head;
    double weight;
  };

  /// An immutable, O(1)-pinned view of the graph at a moment in time,
  /// tagged with the epoch the owner assigned to that moment. The view
  /// keeps the underlying representation alive; the live graph it was
  /// taken from is free to keep mutating. Defined after the class (it
  /// holds a DynamicGraph by value).
  class SnapshotView;

  /// An edgeless graph on `num_nodes` nodes.
  explicit DynamicGraph(NodeId num_nodes);

  /// Copies the edges of an immutable graph (u-major, head ≥ u arc
  /// order — the canonical load order the durability layer replays).
  /// Rows therefore end up in ascending-head order and the row-sum
  /// degrees are bitwise the CSR degrees.
  static DynamicGraph FromGraph(const Graph& g);

  /// Reassembles a graph from its exact serialized parts — adjacency in
  /// per-node insertion order plus the degree bits (which depend on row
  /// order and, for the sharding layer's halo slices, on rows the slice
  /// does not hold — so they are never recomputed here). Validates arc
  /// symmetry: the total count, per-row head uniqueness, and that every
  /// cross arc (u→v) is mirrored by (v→u) with bitwise-equal weight —
  /// an asymmetric adjacency would corrupt later mutations that edit
  /// both rows. Aborts on malformed parts (callers — the snapshot
  /// loader — checksum-verify first, so this is a programming-error
  /// guard, not an input validator).
  static DynamicGraph FromParts(std::vector<std::vector<Neighbor>> adjacency,
                                std::vector<double> degrees,
                                std::int64_t num_edges, double total_volume);

  /// The exact serialized parts of the graph: adjacency in per-node
  /// insertion order plus the degree/volume bits. A deep copy — the
  /// inverse of `FromParts`, so `FromParts(ExportParts(g))` round-trips
  /// bit-exactly for any graph, including degenerate topologies (empty,
  /// isolated nodes, self-loops). The sharding layer uses this to carve
  /// owner slices without re-deriving degree bits, and the fuzz tests
  /// use it to pin the round-trip contract.
  struct Parts {
    std::vector<std::vector<Neighbor>> adjacency;
    std::vector<double> degrees;
    std::int64_t num_edges = 0;
    double total_volume = 0.0;
  };
  Parts ExportParts() const {
    return Parts{rep_->adjacency, rep_->degrees, rep_->num_edges,
                 TotalVolume()};
  }

  DynamicGraph(const DynamicGraph&) = default;
  DynamicGraph& operator=(const DynamicGraph&) = default;
  DynamicGraph(DynamicGraph&&) = default;
  DynamicGraph& operator=(DynamicGraph&&) = default;

  NodeId NumNodes() const {
    return static_cast<NodeId>(rep_->adjacency.size());
  }

  /// Number of distinct undirected edges.
  std::int64_t NumEdges() const { return rep_->num_edges; }

  /// Weighted degree (self-loops once).
  double Degree(NodeId u) const { return rep_->degrees[u]; }

  /// The ascending-node-order sum of degrees — GraphBuilder's exact
  /// accumulation order, recomputed on demand (O(n); volume is read on
  /// cold paths only: snapshots, validation, tests). Bit-identical to
  /// the frozen CSR volume whenever the degree bits match.
  double TotalVolume() const;

  /// The neighbor list of u (insertion order; no duplicates).
  const std::vector<Neighbor>& Neighbors(NodeId u) const {
    return rep_->adjacency[u];
  }

  /// The stored weight of edge {u, v}, or 0.0 when absent (also for
  /// out-of-range endpoints — callers use this to pre-validate wire
  /// mutations without risking the RemoveEdge abort contract). O(deg).
  double EdgeWeight(NodeId u, NodeId v) const;

  /// Inserts undirected edge {u, v} with finite weight w > 0
  /// (accumulating onto an existing edge). O(deg) per endpoint (linear
  /// duplicate scan — degrees in our workloads are small). If any
  /// snapshot or copy still pins the current representation, it is
  /// cloned first (the copy-on-write step, O(n + m) once per pinned
  /// generation).
  void AddEdge(NodeId u, NodeId v, double weight = 1.0);

  /// Removes weight from undirected edge {u, v}. `weight` = 0.0 (the
  /// default) removes the edge entirely; a positive `weight` must not
  /// exceed the stored weight — equal removes the edge, smaller
  /// decrements it (one subtraction, applied to both mirrored arcs, so
  /// they stay bitwise equal). Full removal erases the adjacency
  /// entries in place, preserving the order of the surviving entries —
  /// that, plus canonical row-sum accounting, is what makes
  /// add-then-remove restore the prior graph bit-exactly. The edge
  /// must exist (abort contract — wire callers pre-validate with
  /// `EdgeWeight`). O(deg) per endpoint; copy-on-write like AddEdge.
  void RemoveEdge(NodeId u, NodeId v, double weight = 0.0);

  /// Pins the current state as an immutable view tagged `epoch` (the
  /// caller's counter — the query engine passes its edit epoch). O(1).
  /// Defined after SnapshotView below.
  SnapshotView Snapshot(std::int64_t epoch = 0) const;

  /// True when this graph shares its representation with a snapshot or
  /// copy (the next mutation will clone). Exposed for tests.
  bool SharesRep() const { return rep_.use_count() > 1; }

  /// Freezes into an immutable CSR Graph.
  Graph ToGraph() const;

 private:
  /// The shared-until-mutated representation.
  struct Rep {
    std::vector<std::vector<Neighbor>> adjacency;
    std::vector<double> degrees;
    std::int64_t num_edges = 0;
  };

  /// Clones the rep if any other graph/view still shares it.
  void EnsureUnique();

  std::shared_ptr<Rep> rep_;
};

class DynamicGraph::SnapshotView {
 public:
  /// An empty view (0 nodes, epoch 0); assign over it.
  SnapshotView() : graph_(0) {}

  /// The frozen graph. Stable for the lifetime of the view.
  const DynamicGraph& graph() const { return graph_; }

  /// The epoch the owner pinned (see DynamicGraph::Snapshot).
  std::int64_t epoch() const { return epoch_; }

 private:
  friend class DynamicGraph;
  SnapshotView(const DynamicGraph& g, std::int64_t epoch)
      : graph_(g), epoch_(epoch) {}

  DynamicGraph graph_;  ///< Shares the rep until the parent mutates.
  std::int64_t epoch_ = 0;
};

inline DynamicGraph::SnapshotView DynamicGraph::Snapshot(
    std::int64_t epoch) const {
  return SnapshotView(*this, epoch);
}

}  // namespace impreg

#endif  // IMPREG_STREAMING_DYNAMIC_GRAPH_H_
