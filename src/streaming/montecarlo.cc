#include "streaming/montecarlo.h"

#include "util/check.h"

namespace impreg {

namespace {

// One γ-terminated walk from `start`; returns the termination node.
NodeId RunWalk(const Graph& g, NodeId start, const MonteCarloOptions& options,
               Rng& rng) {
  NodeId current = start;
  for (int step = 0; step < options.max_walk_length; ++step) {
    if (rng.NextBernoulli(options.gamma)) return current;
    const double d = g.Degree(current);
    if (d <= 0.0) return current;  // Nowhere to go.
    // Weighted neighbor choice.
    double target = rng.NextDouble() * d;
    const auto heads = g.Heads(current);
    const auto weights = g.Weights(current);
    NodeId next = heads.back();
    for (std::size_t i = 0; i < heads.size(); ++i) {
      target -= weights[i];
      if (target <= 0.0) {
        next = heads[i];
        break;
      }
    }
    current = next;
  }
  return current;
}

}  // namespace

Vector MonteCarloPersonalizedPageRank(const Graph& g, NodeId seed_node,
                                      const MonteCarloOptions& options) {
  IMPREG_CHECK(g.IsValidNode(seed_node));
  IMPREG_CHECK(options.gamma > 0.0 && options.gamma < 1.0);
  IMPREG_CHECK(options.walks_per_node >= 1);
  Rng rng(options.seed);
  Vector counts(g.NumNodes(), 0.0);
  for (int walk = 0; walk < options.walks_per_node; ++walk) {
    counts[RunWalk(g, seed_node, options, rng)] += 1.0;
  }
  Scale(1.0 / options.walks_per_node, counts);
  return counts;
}

Vector MonteCarloPageRank(const Graph& g, const MonteCarloOptions& options) {
  IMPREG_CHECK(g.NumNodes() > 0);
  IMPREG_CHECK(options.gamma > 0.0 && options.gamma < 1.0);
  IMPREG_CHECK(options.walks_per_node >= 1);
  Rng rng(options.seed);
  Vector counts(g.NumNodes(), 0.0);
  for (NodeId start = 0; start < g.NumNodes(); ++start) {
    for (int walk = 0; walk < options.walks_per_node; ++walk) {
      counts[RunWalk(g, start, options, rng)] += 1.0;
    }
  }
  Scale(1.0 / (static_cast<double>(options.walks_per_node) * g.NumNodes()),
        counts);
  return counts;
}

}  // namespace impreg
