#include "streaming/montecarlo.h"

#include <algorithm>
#include <limits>
#include <string>

#include "core/metrics.h"
#include "core/trace.h"
#include "util/check.h"

namespace impreg {

namespace {

// One γ-terminated walk from `start`; returns the termination node and
// counts the edges traversed into `steps`.
NodeId RunWalk(const Graph& g, NodeId start, const MonteCarloOptions& options,
               Rng& rng, std::int64_t& steps) {
  NodeId current = start;
  for (int step = 0; step < options.max_walk_length; ++step) {
    if (rng.NextBernoulli(options.gamma)) return current;
    const double d = g.Degree(current);
    if (d <= 0.0) return current;  // Nowhere to go.
    // Weighted neighbor choice.
    double target = rng.NextDouble() * d;
    const auto heads = g.Heads(current);
    const auto weights = g.Weights(current);
    NodeId next = heads.back();
    for (std::size_t i = 0; i < heads.size(); ++i) {
      target -= weights[i];
      if (target <= 0.0) {
        next = heads[i];
        break;
      }
    }
    current = next;
    ++steps;
  }
  return current;
}

// Shared walk driver: `starts_per_node` pairs (start node, walk count)
// are consumed in order, one RNG stream, budget checked between walks.
// The caller provides the total requested walk count for diagnostics.
MonteCarloResult RunWalks(const Graph& g, NodeId first_node,
                          NodeId last_node_exclusive,
                          std::int64_t requested_walks,
                          const MonteCarloOptions& options) {
  MonteCarloResult result;
  result.requested_walks = requested_walks;
  result.scores.assign(g.NumNodes(), 0.0);

  SolverTrace* trace = IMPREG_TRACE_BEGIN("montecarlo");
  Rng rng(options.seed);
  bool budget_stop = false;
  for (NodeId start = first_node;
       start < last_node_exclusive && !budget_stop; ++start) {
    for (int walk = 0; walk < options.walks_per_node; ++walk) {
      if (options.budget != nullptr && options.budget->Exhausted()) {
        budget_stop = true;
        IMPREG_TRACE_EVENT(trace, result.walks, kBudget,
                           static_cast<double>(options.budget->Spent()));
        break;
      }
      std::int64_t walk_steps = 0;
      result.scores[RunWalk(g, start, options, rng, walk_steps)] += 1.0;
      result.steps += walk_steps;
      ++result.walks;
      if (options.budget != nullptr) {
        options.budget->Charge(std::max<std::int64_t>(walk_steps, 1));
      }
      IMPREG_TRACE_EVENT(trace, result.walks, kArcWork,
                         static_cast<double>(walk_steps));
    }
  }

  if (result.walks > 0) {
    Scale(1.0 / static_cast<double>(result.walks), result.scores);
  }
  result.diagnostics.iterations =
      result.walks > std::numeric_limits<int>::max()
          ? std::numeric_limits<int>::max()
          : static_cast<int>(result.walks);
  if (budget_stop) {
    result.diagnostics.status = SolveStatus::kBudgetExhausted;
    result.diagnostics.detail =
        "work budget exhausted after " + std::to_string(result.walks) +
        " of " + std::to_string(requested_walks) +
        " walks; scores are normalized over the completed walks";
  } else {
    result.diagnostics.status = SolveStatus::kConverged;
  }
  IMPREG_TRACE_FINISH(trace, result.diagnostics);
  IMPREG_METRIC_COUNT("solver.montecarlo.solves", 1);
  IMPREG_METRIC_COUNT("solver.montecarlo.walks", result.walks);
  IMPREG_METRIC_COUNT("solver.montecarlo.steps", result.steps);
  return result;
}

}  // namespace

MonteCarloResult MonteCarloPersonalizedPageRankSolve(
    const Graph& g, NodeId seed_node, const MonteCarloOptions& options) {
  IMPREG_CHECK(g.IsValidNode(seed_node));
  IMPREG_CHECK(options.gamma > 0.0 && options.gamma < 1.0);
  IMPREG_CHECK(options.walks_per_node >= 1);
  return RunWalks(g, seed_node, seed_node + 1, options.walks_per_node,
                  options);
}

MonteCarloResult MonteCarloPageRankSolve(const Graph& g,
                                         const MonteCarloOptions& options) {
  IMPREG_CHECK(g.NumNodes() > 0);
  IMPREG_CHECK(options.gamma > 0.0 && options.gamma < 1.0);
  IMPREG_CHECK(options.walks_per_node >= 1);
  return RunWalks(g, 0, g.NumNodes(),
                  static_cast<std::int64_t>(options.walks_per_node) *
                      g.NumNodes(),
                  options);
}

Vector MonteCarloPersonalizedPageRank(const Graph& g, NodeId seed_node,
                                      const MonteCarloOptions& options) {
  return MonteCarloPersonalizedPageRankSolve(g, seed_node, options).scores;
}

Vector MonteCarloPageRank(const Graph& g, const MonteCarloOptions& options) {
  return MonteCarloPageRankSolve(g, options).scores;
}

}  // namespace impreg
