// impreg_bench_diff — the bench regression gate.
//
// Compares two bench reports (impreg-bench-v2 objects or v1 bare
// arrays, see bench/report.h) benchmark-by-benchmark and exits
// non-zero when any shared benchmark slowed down past the threshold.
// Wired into ctest (label "observability") so a perf regression fails
// the suite the same way a wrong answer does.
//
// Usage:
//   impreg_bench_diff <baseline.json> <candidate.json> [--max-regress=10%]
//                     [--max-regress-p99=25%] [--strict-metadata]
//
// The threshold accepts "10%", "0.10", or "0.10%"-style spellings; a
// bare number <= 1 is a fraction, otherwise a percentage.
// --max-regress-p99 additionally gates the p99 tail (one-sided: only a
// slower tail fails) for records that carry p99_ns — the load
// harness's SLO gate; without the flag, tails are reported but never
// gated.
//
// Reports may carry a `machine` metadata map (-march=native status,
// SIMD dispatch levels — see bench/report.h). When the two sides'
// maps disagree the comparison is cross-machine/cross-configuration:
// every mismatch is printed as a warning, and with --strict-metadata
// any mismatch fails the gate outright.
//
// Exit codes follow impreg_cli: 0 gate passed, 1 regression(s) or a
// strict metadata mismatch, 2 usage error, 3 unreadable/malformed
// input.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench/report.h"

namespace impreg {
namespace {

constexpr int kExitRegression = 1;
constexpr int kExitUsage = 2;
constexpr int kExitInput = 3;

int Usage() {
  std::fprintf(
      stderr,
      "usage: impreg_bench_diff <baseline.json> <candidate.json> "
      "[--max-regress=10%%] [--max-regress-p99=25%%] [--strict-metadata]\n"
      "\n"
      "Compares two bench reports (bench/report.h formats) and exits\n"
      "non-zero when a shared benchmark regressed past the threshold\n"
      "(default 10%%). --max-regress-p99 also gates the p99 tail,\n"
      "one-sided, for records that carry p99_ns (load-harness SLO).\n"
      "Machine-metadata mismatches (native/SIMD configuration) warn by\n"
      "default; --strict-metadata turns any mismatch into a failure.\n"
      "\n"
      "exit codes: 0 gate passed, 1 regression, 2 usage, 3 bad input\n");
  return kExitUsage;
}

/// Parses "10%", "10 %", "0.10": a trailing '%' divides by 100, a bare
/// value > 1 is treated as a percentage too (nobody means a 12x
/// slowdown allowance by "--max-regress=12"). Returns < 0 on garbage.
double ParseThreshold(const std::string& text) {
  char* end = nullptr;
  double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str()) return -1.0;
  while (*end == ' ') ++end;
  if (*end == '%') {
    value /= 100.0;
    ++end;
  } else if (value > 1.0) {
    value /= 100.0;
  }
  if (*end != '\0') return -1.0;
  if (value < 0.0) return -1.0;
  return value;
}

int Run(int argc, char** argv) {
  std::string old_path, new_path;
  double max_regress = 0.10;
  double max_regress_p99 = -1.0;
  bool strict_metadata = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--strict-metadata") == 0) {
      strict_metadata = true;
    } else if (std::strncmp(arg, "--max-regress=", 14) == 0) {
      max_regress = ParseThreshold(arg + 14);
      if (max_regress < 0.0) {
        std::fprintf(stderr, "impreg_bench_diff: bad threshold '%s'\n",
                     arg + 14);
        return kExitUsage;
      }
    } else if (std::strncmp(arg, "--max-regress-p99=", 18) == 0) {
      max_regress_p99 = ParseThreshold(arg + 18);
      if (max_regress_p99 < 0.0) {
        std::fprintf(stderr, "impreg_bench_diff: bad p99 threshold '%s'\n",
                     arg + 18);
        return kExitUsage;
      }
    } else if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      Usage();
      return 0;
    } else if (arg[0] == '-' && arg[1] == '-') {
      std::fprintf(stderr, "impreg_bench_diff: unknown flag '%s'\n", arg);
      return kExitUsage;
    } else if (old_path.empty()) {
      old_path = arg;
    } else if (new_path.empty()) {
      new_path = arg;
    } else {
      return Usage();
    }
  }
  if (old_path.empty() || new_path.empty()) return Usage();

  const BenchParseResult old_report = ReadBenchReport(old_path);
  if (!old_report.ok()) {
    std::fprintf(stderr, "impreg_bench_diff: %s: %s\n", old_path.c_str(),
                 old_report.error.c_str());
    return kExitInput;
  }
  const BenchParseResult new_report = ReadBenchReport(new_path);
  if (!new_report.ok()) {
    std::fprintf(stderr, "impreg_bench_diff: %s: %s\n", new_path.c_str(),
                 new_report.error.c_str());
    return kExitInput;
  }

  // Configuration drift first: numbers measured under different
  // native/SIMD configurations compare machines, not changes.
  const std::vector<std::string> metadata_mismatches =
      DiffBenchMetadata(old_report.machine, new_report.machine);
  for (const std::string& mismatch : metadata_mismatches) {
    std::fprintf(stderr,
                 "impreg_bench_diff: %s: machine metadata mismatch — %s "
                 "(cross-machine comparison)\n",
                 strict_metadata ? "error" : "warning", mismatch.c_str());
  }

  const BenchDiffResult diff =
      DiffBenchReports(old_report.records, new_report.records, max_regress,
                       max_regress_p99);
  if (diff.entries.empty()) {
    std::fprintf(stderr,
                 "impreg_bench_diff: no shared benchmarks between '%s' "
                 "and '%s'\n",
                 old_path.c_str(), new_path.c_str());
    return kExitInput;
  }

  std::printf("%-40s %14s %14s %8s\n", "benchmark", "old ns/iter",
              "new ns/iter", "ratio");
  for (const BenchDiffEntry& e : diff.entries) {
    std::printf("%-40s %14.1f %14.1f %7.3f%s\n", e.bench.c_str(), e.old_ns,
                e.new_ns, e.ratio, e.regressed ? "  REGRESSED" : "");
    if (e.has_p99) {
      std::printf("%-40s %14.1f %14.1f %7.3f%s\n",
                  (e.bench + " [p99]").c_str(), e.old_p99, e.new_p99,
                  e.p99_ratio, e.p99_regressed ? "  REGRESSED" : "");
    }
  }
  for (const std::string& bench : diff.only_old) {
    std::printf("%-40s (baseline only)\n", bench.c_str());
  }
  for (const std::string& bench : diff.only_new) {
    std::printf("%-40s (candidate only)\n", bench.c_str());
  }
  std::printf("%zu shared benchmark(s), threshold +%.1f%%: %d regression(s)\n",
              diff.entries.size(), 100.0 * max_regress, diff.regressions);
  if (max_regress_p99 >= 0.0) {
    std::printf("p99 threshold +%.1f%%: %d tail regression(s)\n",
                100.0 * max_regress_p99, diff.p99_regressions);
  }
  if (!metadata_mismatches.empty()) {
    std::printf("%zu machine metadata mismatch(es)%s\n",
                metadata_mismatches.size(),
                strict_metadata ? " (strict: failing)" : "");
  }
  if (strict_metadata && !metadata_mismatches.empty()) return kExitRegression;
  return diff.ok() ? 0 : kExitRegression;
}

}  // namespace
}  // namespace impreg

int main(int argc, char** argv) { return impreg::Run(argc, argv); }
