// impreg_cli — command-line driver for interactive graph analysis.
//
// The paper's introduction argues that large-scale data analysis "places
// a premium on algorithmic methods that permit the analyst to play with
// the data and work with the data interactively". This tool is that
// workflow over edge-list files: structural stats, spectral summaries,
// seeded clustering, NCP profiles, PageRank and k-way partitioning —
// all built on the strongly local / implicitly regularized machinery,
// so every command is interactive-speed even on large inputs.
//
// Usage:
//   impreg_cli stats      <edgelist>
//   impreg_cli v2         <edgelist>
//   impreg_cli cluster    <edgelist> <seed-node> [seed-node...]
//   impreg_cli ncp        <edgelist>
//   impreg_cli pagerank   <edgelist> [gamma]
//   impreg_cli partition  <edgelist> <k>
//   impreg_cli generate   <family> <n> <out-file> [seed]
//                         (family: social | ba | er | forestfire)
//   impreg_cli query-batch <edgelist> <requests.jsonl> [--shards=K]
//   impreg_cli serve      <edgelist> <requests.jsonl> [--wal=FILE]
//                         [--snapshot-dir=DIR] [--snapshot-every=N]
//                         [--sync-every=N] [--shards=K]
//   impreg_cli recover    <edgelist> [--wal=FILE] [--snapshot-dir=DIR]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "core/impreg.h"
#include "service/sharding/shard_manifest.h"

namespace impreg {
namespace {

// Exit codes, so scripts can tell *why* a run failed:
//   0 success, 2 usage error, 3 input error (unreadable or malformed
//   graph, bad arguments), 4 solver failure (non-finite values or
//   breakdown — details go to stderr).
constexpr int kExitUsage = 2;
constexpr int kExitInput = 3;
constexpr int kExitSolver = 4;

void PrintHelp(std::FILE* out) {
  std::fprintf(
      out,
      "usage: impreg_cli <command> [args]\n"
      "\n"
      "commands:\n"
      "  stats      <edgelist>                   structural summary\n"
      "  v2         <edgelist>                   lambda2 + spectral sweep "
      "cut\n"
      "  cluster    <edgelist> <seed> [seed...]  seeded local clustering\n"
      "  ncp        <edgelist>                   network community profile\n"
      "  pagerank   <edgelist> [gamma]           global PageRank top-20\n"
      "  partition  <edgelist> <k>               k-way partition\n"
      "  generate   <family> <n> <out> [seed]    family: "
      "social|ba|er|forestfire\n"
      "  query-batch <edgelist> <requests.jsonl> serve a JSONL query batch\n"
      "             [--shards=K]                 (schema: docs/serving.md;\n"
      "                                          sharding: docs/sharding.md)\n"
      "  serve      <edgelist> <requests.jsonl>  query-batch + durability:\n"
      "             [--wal=FILE] [--snapshot-dir=DIR] [--snapshot-every=N]\n"
      "             [--sync-every=N] [--shards=K] recover, then write-ahead\n"
      "                                          log every accepted edit\n"
      "                                          (docs/durability.md)\n"
      "  recover    <edgelist> [--wal=FILE] [--snapshot-dir=DIR]\n"
      "                                          replay durability state\n"
      "                                          and report what survives\n"
      "\n"
      "global flags (before or after the command):\n"
      "  --metrics            print the metrics snapshot (solver\n"
      "                       counters, pool busy time) to stderr\n"
      "  --trace-json=FILE    record per-solver convergence traces and\n"
      "                       write the impreg-trace-v1 JSON to FILE\n"
      "\n"
      "exit codes:\n"
      "  0  success\n"
      "  2  usage error\n"
      "  3  input error (unreadable/malformed graph, bad arguments;\n"
      "     parse errors name the failing line)\n"
      "  4  solver failure (non-finite values or breakdown; diagnostics\n"
      "     on stderr)\n");
}

int Usage() {
  PrintHelp(stderr);
  return kExitUsage;
}

Graph LoadOrDie(const std::string& path) {
  GraphParseResult parsed = ReadEdgeListOrError(path);
  if (!parsed.ok()) {
    if (parsed.error_line > 0) {
      std::fprintf(stderr, "impreg_cli: %s:%d: %s\n", path.c_str(),
                   parsed.error_line, parsed.error.c_str());
    } else {
      std::fprintf(stderr, "impreg_cli: %s: %s\n", path.c_str(),
                   parsed.error.c_str());
    }
    std::exit(kExitInput);
  }
  return std::move(*parsed.graph);
}

// Surfaces a solver's diagnostics on stderr. Returns false when the
// result is unusable (the caller should exit kExitSolver); a usable
// early stop (budget / iteration cap) is only warned about.
bool ReportDiagnostics(const char* what, const SolverDiagnostics& diag) {
  if (diag.ok()) return true;
  std::fprintf(stderr, "impreg_cli: %s: %s\n", what, diag.Summary().c_str());
  return diag.usable();
}

int CmdStats(const std::string& path) {
  const Graph g = LoadOrDie(path);
  const DegreeStats degrees = ComputeDegreeStats(g);
  std::printf("nodes                 %d\n", g.NumNodes());
  std::printf("edges                 %lld\n",
              static_cast<long long>(g.NumEdges()));
  std::printf("volume                %.6g\n", g.TotalVolume());
  std::printf("degree min/med/mean/max  %.3g / %.3g / %.3g / %.3g\n",
              degrees.min, degrees.median, degrees.mean, degrees.max);
  std::printf("components            %d\n", CountComponents(g));
  if (g.NumNodes() > 0) {
    std::printf("diameter (lower bd.)  %d\n", EstimateDiameter(g));
  }
  std::printf("degeneracy (max core) %d\n", Degeneracy(g));
  std::printf("triangles             %lld\n",
              static_cast<long long>(CountTriangles(g)));
  std::printf("avg clustering coef.  %.4f\n",
              AverageClusteringCoefficient(g));
  const auto whiskers = FindWhiskers(g);
  double whisker_volume = 0.0;
  for (const Whisker& w : whiskers) whisker_volume += w.volume;
  std::printf("whiskers              %zu (%.2f%% of volume)\n",
              whiskers.size(),
              g.TotalVolume() > 0.0
                  ? 100.0 * whisker_volume / g.TotalVolume()
                  : 0.0);
  return 0;
}

int CmdV2(const std::string& path) {
  const Graph g = LoadOrDie(path);
  if (g.NumEdges() == 0) {
    std::fprintf(stderr, "impreg_cli: graph has no edges\n");
    return kExitInput;
  }
  SpectralPartitionOptions options;
  options.lanczos.max_iterations = 800;
  const SpectralPartitionResult result = SpectralPartition(g, options);
  std::printf("lambda2               %.8g\n", result.lambda2);
  std::printf("Cheeger bounds        [%.6g, %.6g]\n", result.cheeger_lower,
              result.cheeger_upper);
  std::printf("sweep cut |S|         %zu\n", result.set.size());
  std::printf("sweep cut conductance %.6g\n", result.stats.conductance);
  std::printf("sweep cut edge weight %.6g\n", result.stats.cut);
  return 0;
}

int CmdCluster(const std::string& path, int argc, char** argv) {
  const Graph g = LoadOrDie(path);
  std::vector<NodeId> seeds;
  for (int i = 0; i < argc; ++i) {
    const long node = std::strtol(argv[i], nullptr, 10);
    if (node < 0 || node >= g.NumNodes()) {
      std::fprintf(stderr, "impreg_cli: seed %ld out of range\n", node);
      return kExitInput;
    }
    seeds.push_back(static_cast<NodeId>(node));
  }
  const SeedExpansionResult result = ExpandSeedSet(g, seeds);
  std::printf("method        %s\n", result.method.c_str());
  std::printf("|S|           %zu\n", result.set.size());
  std::printf("conductance   %.6g\n", result.stats.conductance);
  std::printf("volume        %.6g\n", result.stats.volume);
  const NicenessReport nice = ComputeNiceness(g, result.set);
  std::printf("avg path      %.3f\n", nice.avg_shortest_path);
  std::printf("ext/int ratio %.4g\n", nice.conductance_ratio);
  std::printf("members      ");
  for (std::size_t i = 0; i < result.set.size() && i < 40; ++i) {
    std::printf(" %d", result.set[i]);
  }
  if (result.set.size() > 40) std::printf(" ... (%zu total)",
                                          result.set.size());
  std::printf("\n");
  return 0;
}

int CmdNcp(const std::string& path) {
  const Graph g = LoadOrDie(path);
  SolverDiagnostics spectral_diag, flow_diag;
  const auto spectral = SpectralFamilyClusters(g, {}, &spectral_diag);
  const auto flow = FlowFamilyClusters(g, {}, &flow_diag);
  if (!ReportDiagnostics("spectral portfolio", spectral_diag) ||
      !ReportDiagnostics("flow portfolio", flow_diag)) {
    return kExitSolver;
  }
  Table table({"family", "size", "conductance", "method"});
  for (const auto& family :
       {std::pair(&spectral, "spectral"), std::pair(&flow, "flow")}) {
    for (const NcpPoint& point :
         BestPerSizeBin(*family.first, 12, g.NumNodes() / 2)) {
      table.AddRow({family.second, std::to_string(point.size),
                    FormatG(point.conductance, 4), point.cluster.method});
    }
  }
  table.Print();
  return 0;
}

int CmdPageRank(const std::string& path, double gamma) {
  const Graph g = LoadOrDie(path);
  PageRankOptions options;
  options.gamma = gamma;
  const PageRankResult result = GlobalPageRank(g, options);
  if (!ReportDiagnostics("pagerank", result.diagnostics)) {
    return kExitSolver;
  }
  std::vector<int> ids(g.NumNodes());
  std::iota(ids.begin(), ids.end(), 0);
  const int k = std::min<int>(20, g.NumNodes());
  std::partial_sort(ids.begin(), ids.begin() + k, ids.end(),
                    [&](int a, int b) {
                      return result.scores[a] > result.scores[b];
                    });
  Table table({"rank", "node", "pagerank", "degree"});
  for (int r = 0; r < k; ++r) {
    table.AddRow({std::to_string(r + 1), std::to_string(ids[r]),
                  FormatG(result.scores[ids[r]], 5),
                  FormatG(g.Degree(ids[r]), 4)});
  }
  table.Print();
  return 0;
}

int CmdPartition(const std::string& path, int k) {
  const Graph g = LoadOrDie(path);
  if (k < 1 || k > g.NumNodes()) {
    std::fprintf(stderr, "impreg_cli: k must be in [1, n]\n");
    return kExitInput;
  }
  const KwayResult result = KwayPartition(g, k);
  if (!ReportDiagnostics("partition", result.diagnostics)) {
    return kExitSolver;
  }
  std::printf("blocks  %d\n", k);
  std::printf("cut     %.6g (%.2f%% of edge weight)\n", result.cut,
              g.TotalVolume() > 0.0
                  ? 100.0 * result.cut / (0.5 * g.TotalVolume())
                  : 0.0);
  Table table({"block", "nodes"});
  for (int b = 0; b < k; ++b) {
    table.AddRow({std::to_string(b), std::to_string(result.sizes[b])});
  }
  table.Print();
  return 0;
}

int CmdGenerate(const std::string& family, NodeId n, const std::string& out,
                std::uint64_t seed) {
  Rng rng(seed);
  Graph g;
  if (family == "social") {
    SocialGraphParams params;
    params.core_nodes = std::max<NodeId>(n, 100);
    params.num_whiskers = n / 80;
    g = MakeWhiskeredSocialGraph(params, rng).graph;
  } else if (family == "ba") {
    g = BarabasiAlbert(n, 4, rng);
  } else if (family == "er") {
    g = ErdosRenyi(n, 8.0 / std::max<NodeId>(n, 1), rng);
  } else if (family == "forestfire") {
    g = ForestFire(n, 0.35, rng);
  } else {
    std::fprintf(stderr, "impreg_cli: unknown family '%s'\n",
                 family.c_str());
    return kExitInput;
  }
  if (!WriteEdgeList(g, out)) {
    std::fprintf(stderr, "impreg_cli: cannot write '%s'\n", out.c_str());
    return kExitInput;
  }
  std::printf("wrote %s: n=%d m=%lld\n", out.c_str(), g.NumNodes(),
              static_cast<long long>(g.NumEdges()));
  return 0;
}

// `--name=value` flag matcher.
bool FlagValue(const char* arg, const char* name, std::string* out) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *out = arg + n + 1;
  return true;
}

// Streams a JSONL request file into `engine`. Query lines are grouped
// by the epoch they were issued at: each group pins a SnapshotView, so
// an edit line (add-edge or remove-edge) never has to wait for (or
// flush) in-flight queries — the group executes later against its
// pinned epoch and answers exactly what it would have answered at
// issue time (snapshot-isolated serving; docs/durability.md).
//
// Durability (optional): with `wal` set, every edit is appended and
// fsynced *before* it mutates the graph — write-ahead, so an
// acknowledged edit survives a crash. With `snapshot_dir` set, a
// snapshot is published every `snapshot_every` edits (and once at EOF),
// bounding replay time.
int ServeRequestStream(QueryEngine& engine, const std::string& requests_path,
                       durability::WriteAheadLog* wal,
                       const std::string& snapshot_dir, int snapshot_every) {
  std::ifstream in(requests_path);
  if (!in) {
    std::fprintf(stderr, "impreg_cli: cannot read '%s'\n",
                 requests_path.c_str());
    return kExitInput;
  }

  const auto snapshot_now = [&]() -> bool {
    const durability::SnapshotWriteResult written = durability::WriteSnapshot(
        snapshot_dir, engine.Epoch(), engine.graph(),
        engine.cache().ExportEntries());
    if (written.status != SolveStatus::kConverged) {
      std::fprintf(stderr, "impreg_cli: snapshot failed: %s\n",
                   written.detail.c_str());
      return false;
    }
    // The placement metadata rides alongside the snapshot: one manifest
    // stamping every shard with the snapshot epoch. A failed publish is
    // non-fatal — recovery recomputes the identical plan from the graph.
    if (engine.shards() != nullptr) {
      const ShardPlan& plan = engine.shards()->plan();
      ShardManifest manifest;
      manifest.shards = plan.shards;
      manifest.partition_seed = plan.partition_seed;
      manifest.num_nodes = engine.graph().NumNodes();
      manifest.routing_epoch = engine.RoutingEpoch();
      manifest.shard_epochs.assign(plan.shards, engine.Epoch());
      manifest.owner = plan.owner;
      if (!WriteShardManifest(ShardManifestPath(snapshot_dir), manifest)) {
        std::fprintf(stderr,
                     "impreg_cli: shard manifest not published (plan will "
                     "be recomputed on recovery)\n");
      }
    }
    return true;
  };

  struct Group {
    DynamicGraph::SnapshotView snap;
    std::vector<QueryRequest> requests;
  };
  std::vector<Group> groups;
  std::string line;
  int line_number = 0;
  std::int64_t edits_since_snapshot = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    QueryRequest request;
    std::string error;
    if (!ParseQueryRequest(line, &request, &error)) {
      std::fprintf(stderr, "impreg_cli: %s:%d: %s\n", requests_path.c_str(),
                   line_number, error.c_str());
      return kExitInput;
    }
    if (request.is_add_edge || request.is_remove_edge) {
      const char* op = request.is_add_edge ? "add-edge" : "remove-edge";
      const NodeId n = engine.graph().NumNodes();
      if (request.u < 0 || request.u >= n || request.v < 0 ||
          request.v >= n) {
        std::fprintf(stderr,
                     "impreg_cli: %s:%d: %s node out of range "
                     "[0, %d)\n",
                     requests_path.c_str(), line_number, op, n);
        return kExitInput;
      }
      if (request.is_remove_edge) {
        // Pre-validate against the live graph so a bad request line is
        // an input error at its file:line, never a trip of
        // DynamicGraph::RemoveEdge's abort contract.
        const double stored = engine.graph().EdgeWeight(request.u, request.v);
        if (stored == 0.0) {
          std::fprintf(stderr,
                       "impreg_cli: %s:%d: remove-edge: no edge {%d, %d}\n",
                       requests_path.c_str(), line_number, request.u,
                       request.v);
          return kExitInput;
        }
        if (request.weight > stored) {
          std::fprintf(stderr,
                       "impreg_cli: %s:%d: remove-edge weight %g exceeds "
                       "stored weight %g\n",
                       requests_path.c_str(), line_number, request.weight,
                       stored);
          return kExitInput;
        }
      }
      if (wal != nullptr) {
        std::string detail;
        const SolveStatus appended =
            request.is_add_edge
                ? wal->AppendAddEdge(request.u, request.v, request.weight,
                                     &detail)
                : wal->AppendRemoveEdge(request.u, request.v, request.weight,
                                        &detail);
        if (appended != SolveStatus::kConverged) {
          std::fprintf(stderr,
                       "impreg_cli: %s:%d: edit not acknowledged: %s\n",
                       requests_path.c_str(), line_number, detail.c_str());
          return kExitSolver;
        }
      }
      if (request.is_add_edge) {
        engine.AddEdge(request.u, request.v, request.weight);
      } else {
        engine.RemoveEdge(request.u, request.v, request.weight);
      }
      if (!snapshot_dir.empty() && snapshot_every > 0 &&
          ++edits_since_snapshot >= snapshot_every) {
        if (!snapshot_now()) return kExitSolver;
        edits_since_snapshot = 0;
      }
      continue;
    }
    if (groups.empty() || groups.back().snap.epoch() != engine.Epoch()) {
      groups.push_back(Group{engine.PinSnapshot(), {}});
    }
    groups.back().requests.push_back(std::move(request));
  }

  bool any_unusable = false;
  for (Group& group : groups) {
    std::vector<Query> queries;
    queries.reserve(group.requests.size());
    for (const QueryRequest& request : group.requests) {
      queries.push_back(request.query);
    }
    const std::vector<QueryResponse> responses =
        engine.RunBatchOn(group.snap, queries);
    for (std::size_t i = 0; i < group.requests.size(); ++i) {
      if (!StatusIsUsable(responses[i].status)) any_unusable = true;
      std::printf("%s\n",
                  QueryResponseToJson(group.requests[i], responses[i],
                                      group.snap.epoch())
                      .c_str());
    }
  }
  if (!snapshot_dir.empty() && !snapshot_now()) return kExitSolver;
  if (any_unusable) {
    std::fprintf(stderr,
                 "impreg_cli: one or more queries returned an unusable "
                 "status (see the \"status\" fields)\n");
    return kExitSolver;
  }
  return 0;
}

int CmdQueryBatch(int argc, char** argv) {
  std::string graph_path, requests_path, value;
  int shards = 1;
  for (int i = 0; i < argc; ++i) {
    if (FlagValue(argv[i], "--shards", &value)) {
      shards = static_cast<int>(std::strtol(value.c_str(), nullptr, 10));
      continue;
    }
    if (graph_path.empty()) {
      graph_path = argv[i];
    } else if (requests_path.empty()) {
      requests_path = argv[i];
    } else {
      std::fprintf(stderr,
                   "impreg_cli: query-batch: unexpected argument '%s'\n",
                   argv[i]);
      return kExitUsage;
    }
  }
  if (graph_path.empty() || requests_path.empty() || shards < 1) {
    std::fprintf(stderr,
                 "impreg_cli: query-batch: need <edgelist> "
                 "<requests.jsonl>, and --shards must be >= 1\n");
    return kExitUsage;
  }
  const Graph g = LoadOrDie(graph_path);
  QueryEngine::Options options;
  options.sharding.shards = shards;
  QueryEngine engine(g, options);
  return ServeRequestStream(engine, requests_path, /*wal=*/nullptr,
                            /*snapshot_dir=*/"", /*snapshot_every=*/0);
}

void PrintRecoveryReport(const durability::RecoveryReport& report,
                         std::FILE* out) {
  std::fprintf(out, "status              %s\n",
               SolveStatusName(report.status));
  std::fprintf(out, "epoch               %lld\n",
               static_cast<long long>(report.epoch));
  std::fprintf(out, "snapshot epoch      %lld\n",
               static_cast<long long>(report.snapshot_epoch));
  std::fprintf(out, "snapshots rejected  %lld\n",
               static_cast<long long>(report.snapshots_rejected));
  std::fprintf(out, "wal records         %lld\n",
               static_cast<long long>(report.wal_records));
  std::fprintf(out, "replayed            %lld\n",
               static_cast<long long>(report.replayed));
  std::fprintf(out, "wal truncated       %s\n",
               report.wal_truncated ? "yes" : "no");
  std::fprintf(out, "cache restored      %lld\n",
               static_cast<long long>(report.cache_restored));
  std::fprintf(out, "detail              %s\n", report.detail.c_str());
}

// serve: query-batch + durability. Recovers from --wal/--snapshot-dir
// first (so a restart resumes exactly where the crash left off), then
// appends every accepted edit to the WAL before applying it.
int CmdServe(int argc, char** argv) {
  std::string graph_path, requests_path, wal_path, snapshot_dir, value;
  int snapshot_every = 0;
  int sync_every = 1;
  int shards = 1;
  for (int i = 0; i < argc; ++i) {
    if (FlagValue(argv[i], "--wal", &wal_path)) continue;
    if (FlagValue(argv[i], "--snapshot-dir", &snapshot_dir)) continue;
    if (FlagValue(argv[i], "--snapshot-every", &value)) {
      snapshot_every = static_cast<int>(std::strtol(value.c_str(),
                                                    nullptr, 10));
      continue;
    }
    if (FlagValue(argv[i], "--sync-every", &value)) {
      sync_every = static_cast<int>(std::strtol(value.c_str(), nullptr, 10));
      continue;
    }
    if (FlagValue(argv[i], "--shards", &value)) {
      shards = static_cast<int>(std::strtol(value.c_str(), nullptr, 10));
      continue;
    }
    if (graph_path.empty()) {
      graph_path = argv[i];
    } else if (requests_path.empty()) {
      requests_path = argv[i];
    } else {
      std::fprintf(stderr, "impreg_cli: serve: unexpected argument '%s'\n",
                   argv[i]);
      return kExitUsage;
    }
  }
  if (graph_path.empty() || requests_path.empty() ||
      (wal_path.empty() && !snapshot_dir.empty()) || shards < 1) {
    std::fprintf(stderr,
                 "impreg_cli: serve: need <edgelist> <requests.jsonl>, "
                 "--snapshot-dir requires --wal, and --shards must be "
                 ">= 1\n");
    return kExitUsage;
  }

  const Graph g = LoadOrDie(graph_path);
  QueryEngine::Options options;
  options.sharding.shards = shards;
  // A persisted manifest pins the pre-crash placement (seed + owner
  // array); when it is missing, rejected, or shaped for a different
  // shard count, the engine recomputes the plan — deterministically
  // identical for the same recovered graph.
  if (shards > 1 && !snapshot_dir.empty()) {
    ShardManifest manifest;
    std::string detail;
    if (LoadShardManifest(ShardManifestPath(snapshot_dir), &manifest,
                          &detail)) {
      if (manifest.shards == shards) {
        options.sharding.partition_seed = manifest.partition_seed;
        options.sharding.owner = manifest.owner;
      }
    } else if (detail != "manifest missing or unreadable") {
      // Missing is the normal first-boot case; anything else is a
      // corrupt or torn manifest worth surfacing.
      std::fprintf(stderr,
                   "impreg_cli: shard manifest rejected (%s); recomputing "
                   "placement\n",
                   detail.c_str());
    }
  }

  std::unique_ptr<QueryEngine> engine;
  durability::WriteAheadLog wal;
  if (wal_path.empty()) {
    engine = std::make_unique<QueryEngine>(g, options);
  } else {
    durability::RecoveryOptions recovery;
    recovery.wal_path = wal_path;
    recovery.snapshot_dir = snapshot_dir;
    const durability::RecoveryReport report = durability::RecoverEngine(
        DynamicGraph::FromGraph(g), options, recovery, &engine);
    if (report.status == SolveStatus::kInvalidInput) {
      std::fprintf(stderr, "impreg_cli: recovery failed: %s\n",
                   report.detail.c_str());
      return kExitInput;
    }
    std::fprintf(stderr, "impreg_cli: %s\n", report.detail.c_str());
    durability::WalOptions wal_options;
    wal_options.sync_every = sync_every;
    std::string detail;
    if (wal.Open(wal_path, wal_options, &detail) != SolveStatus::kConverged) {
      std::fprintf(stderr, "impreg_cli: cannot open WAL '%s': %s\n",
                   wal_path.c_str(), detail.c_str());
      return kExitInput;
    }
  }
  return ServeRequestStream(*engine, requests_path,
                            wal.is_open() ? &wal : nullptr, snapshot_dir,
                            snapshot_every);
}

// recover: run the recovery ladder and report what it found — the
// offline fsck for a serve state directory.
int CmdRecover(int argc, char** argv) {
  std::string graph_path, wal_path, snapshot_dir;
  for (int i = 0; i < argc; ++i) {
    if (FlagValue(argv[i], "--wal", &wal_path)) continue;
    if (FlagValue(argv[i], "--snapshot-dir", &snapshot_dir)) continue;
    if (graph_path.empty()) {
      graph_path = argv[i];
    } else {
      std::fprintf(stderr, "impreg_cli: recover: unexpected argument '%s'\n",
                   argv[i]);
      return kExitUsage;
    }
  }
  if (graph_path.empty() || (wal_path.empty() && snapshot_dir.empty())) {
    std::fprintf(stderr,
                 "impreg_cli: recover: need <edgelist> and --wal and/or "
                 "--snapshot-dir\n");
    return kExitUsage;
  }
  const Graph g = LoadOrDie(graph_path);
  durability::RecoveryOptions recovery;
  recovery.wal_path = wal_path;
  recovery.snapshot_dir = snapshot_dir;
  // Report only — leave a torn tail in place so a later `serve` (which
  // truncates) sees the same evidence.
  recovery.truncate_torn_tail = false;
  std::unique_ptr<QueryEngine> engine;
  const durability::RecoveryReport report =
      durability::RecoverEngine(DynamicGraph::FromGraph(g),
                                QueryEngine::Options(), recovery, &engine);
  PrintRecoveryReport(report, stdout);
  if (engine != nullptr) {
    std::printf("graph nodes         %d\n", engine->graph().NumNodes());
    std::printf("graph edges         %lld\n",
                static_cast<long long>(engine->graph().NumEdges()));
  }
  return report.status == SolveStatus::kInvalidInput ? kExitInput : 0;
}

// Per-command argument floor + usage one-liner: a known command with
// too few arguments gets a specific diagnostic instead of the full
// help dump.
struct CommandSpec {
  const char* name;
  int min_argc;
  const char* usage;
};

constexpr CommandSpec kCommands[] = {
    {"stats", 3, "stats <edgelist>"},
    {"v2", 3, "v2 <edgelist>"},
    {"cluster", 4, "cluster <edgelist> <seed> [seed...]"},
    {"ncp", 3, "ncp <edgelist>"},
    {"pagerank", 3, "pagerank <edgelist> [gamma]"},
    {"partition", 4, "partition <edgelist> <k>"},
    {"generate", 5, "generate <family> <n> <out> [seed]"},
    {"query-batch", 4,
     "query-batch <edgelist> <requests.jsonl> [--shards=K]"},
    {"serve", 4,
     "serve <edgelist> <requests.jsonl> [--wal=FILE] [--snapshot-dir=DIR] "
     "[--snapshot-every=N] [--sync-every=N] [--shards=K]"},
    {"recover", 3, "recover <edgelist> [--wal=FILE] [--snapshot-dir=DIR]"},
};

int Run(int argc, char** argv) {
  // Observability flags are position-independent: strip them before
  // command dispatch. Collection is enabled *before* the command runs
  // and never feeds back into it — outputs are bit-identical either
  // way (core/metrics.h, core/trace.h).
  bool want_metrics = false;
  std::string trace_json_path;
  int out_argc = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics") == 0) {
      want_metrics = true;
    } else if (std::strncmp(argv[i], "--trace-json=", 13) == 0) {
      trace_json_path = argv[i] + 13;
      if (trace_json_path.empty()) {
        std::fprintf(stderr, "impreg_cli: --trace-json needs a file name\n");
        return kExitUsage;
      }
    } else {
      argv[out_argc++] = argv[i];
    }
  }
  argc = out_argc;
  if (want_metrics) ImpregEnableMetrics(true);
  if (!trace_json_path.empty()) TraceCollector::Get().Enable();

  if (argc >= 2 && (std::strcmp(argv[1], "--help") == 0 ||
                    std::strcmp(argv[1], "-h") == 0 ||
                    std::strcmp(argv[1], "help") == 0)) {
    PrintHelp(stdout);
    return 0;
  }
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  const CommandSpec* spec = nullptr;
  for (const CommandSpec& candidate : kCommands) {
    if (command == candidate.name) {
      spec = &candidate;
      break;
    }
  }
  if (spec == nullptr) return Usage();
  if (argc < spec->min_argc) {
    std::fprintf(stderr,
                 "impreg_cli: %s: missing required argument(s); usage: "
                 "impreg_cli %s\n",
                 command.c_str(), spec->usage);
    return kExitUsage;
  }
  const int code = [&]() -> int {
    if (command == "stats") return CmdStats(argv[2]);
    if (command == "v2") return CmdV2(argv[2]);
    if (command == "cluster") {
      return CmdCluster(argv[2], argc - 3, argv + 3);
    }
    if (command == "ncp") return CmdNcp(argv[2]);
    if (command == "pagerank") {
      const double gamma = argc >= 4 ? std::strtod(argv[3], nullptr) : 0.15;
      return CmdPageRank(argv[2], gamma);
    }
    if (command == "partition") {
      return CmdPartition(argv[2], static_cast<int>(
                                       std::strtol(argv[3], nullptr, 10)));
    }
    if (command == "generate") {
      const std::uint64_t seed =
          argc >= 6 ? std::strtoull(argv[5], nullptr, 10) : 42;
      return CmdGenerate(argv[2],
                         static_cast<NodeId>(std::strtol(argv[3], nullptr, 10)),
                         argv[4], seed);
    }
    if (command == "query-batch") return CmdQueryBatch(argc - 2, argv + 2);
    if (command == "serve") return CmdServe(argc - 2, argv + 2);
    if (command == "recover") return CmdRecover(argc - 2, argv + 2);
    return Usage();
  }();

  // Observability output is emitted even when the command failed —
  // a kExitSolver trace is exactly when you want the trajectory.
  if (want_metrics) {
    std::fprintf(stderr, "%s",
                 MetricsRegistry::Get().Snapshot().ToText().c_str());
  }
  if (!trace_json_path.empty()) {
    if (!TraceCollector::Get().WriteJson(trace_json_path)) {
      std::fprintf(stderr, "impreg_cli: cannot write '%s'\n",
                   trace_json_path.c_str());
      return code == 0 ? kExitInput : code;
    }
    std::fprintf(stderr, "impreg_cli: trace written to %s\n",
                 trace_json_path.c_str());
  }
  return code;
}

}  // namespace
}  // namespace impreg

int main(int argc, char** argv) { return impreg::Run(argc, argv); }
