// impreg_loadgen — deterministic closed-loop load generator for the
// query-serving layer.
//
// Generates a Zipf-popularity workload (src/service/load/workload.h)
// over a synthetic graph, drives a QueryEngine through it batch by
// batch, and reports the serving story: p50/p95/p99 latency, answer
// provenance (cold/warm/cached), and the admission-control ladder's
// output (degraded/shed, per tenant). With --out=PATH the run is
// written as an impreg-bench-v2 report (p50_ns/p99_ns on the record,
// the reproducible counts in `metrics`) so `impreg_bench_diff
// --max-regress-p99` can gate tail regressions between runs.
//
// Everything except wall-clock latency is a pure function of the
// flags: replaying the same invocation produces the identical request
// stream, identical shed set, and identical per-query digests at any
// thread count (IMPREG_THREADS), cache on or off.
//
// Usage:
//   impreg_loadgen [--seed=1] [--requests=1024] [--nodes=512]
//                  [--avg-degree=8] [--zipf=1.1] [--write-mix=0]
//                  [--remove-fraction=0]
//                  [--pattern=steady|burst|ramp] [--batch=16]
//                  [--seeds-per-query=1] [--method=ppr]
//                  [--epsilon=1e-4] [--max-work=0]
//                  [--tenants=a,b,...] [--capacity=0]
//                  [--degrade-fraction=0.5] [--shed-fraction=1.0]
//                  [--degraded-cap=2048] [--default-cost=4096]
//                  [--no-cache] [--cache-capacity=256] [--shards=1]
//                  [--name=BM_LoadServe/steady] [--out=report.json]
//
// --capacity > 0 enables admission control with that many arcs per
// tenant per run. Exit codes: 0 ok, 2 usage error, 4 cannot write
// the report.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/metrics.h"
#include "core/parallel.h"
#include "graph/random_graphs.h"
#include "service/load/harness.h"
#include "service/load/workload.h"
#include "service/query_engine.h"
#include "util/rng.h"

namespace impreg {
namespace {

constexpr int kExitUsage = 2;
constexpr int kExitWrite = 4;

int Usage() {
  std::fprintf(
      stderr,
      "usage: impreg_loadgen [flags]\n"
      "  workload:  --seed=1 --requests=1024 --zipf=1.1 --write-mix=0\n"
      "             --remove-fraction=0 (of mutations, RemoveEdge share)\n"
      "             --pattern=steady|burst|ramp --batch=16\n"
      "             --seeds-per-query=1 --method=ppr|ppr-dense|heat-kernel|"
      "nibble\n"
      "             --epsilon=1e-4 --max-work=0 --tenants=a,b,c\n"
      "  graph:     --nodes=512 --avg-degree=8\n"
      "  admission: --capacity=0 (arcs per tenant; >0 enables)\n"
      "             --degrade-fraction=0.5 --shed-fraction=1.0\n"
      "             --degraded-cap=2048 --default-cost=4096\n"
      "  engine:    --no-cache --cache-capacity=256 --shards=1\n"
      "  report:    --name=BM_LoadServe/steady --out=report.json\n"
      "\n"
      "exit codes: 0 ok, 2 usage, 4 cannot write report\n");
  return kExitUsage;
}

bool FlagValue(const char* arg, const char* name, const char** value) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

std::vector<std::string> SplitCommas(const std::string& text) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    if (comma == std::string::npos) {
      if (start < text.size()) out.push_back(text.substr(start));
      break;
    }
    if (comma > start) out.push_back(text.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

int Run(int argc, char** argv) {
  WorkloadOptions workload;
  QueryEngine::Options engine_options;
  std::int64_t nodes = 512;
  double avg_degree = 8.0;
  std::int64_t capacity = 0;
  std::string name = "BM_LoadServe/run";
  std::string out_path;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* v = nullptr;
    if (FlagValue(arg, "--seed", &v)) {
      workload.seed = std::strtoull(v, nullptr, 10);
    } else if (FlagValue(arg, "--requests", &v)) {
      workload.num_requests = std::atoi(v);
    } else if (FlagValue(arg, "--zipf", &v)) {
      workload.zipf_exponent = std::atof(v);
    } else if (FlagValue(arg, "--write-mix", &v)) {
      workload.write_fraction = std::atof(v);
    } else if (FlagValue(arg, "--remove-fraction", &v)) {
      workload.remove_fraction = std::atof(v);
      if (!(workload.remove_fraction >= 0.0) ||
          workload.remove_fraction > 1.0) {
        std::fprintf(stderr,
                     "impreg_loadgen: --remove-fraction must be in [0, 1]\n");
        return kExitUsage;
      }
    } else if (FlagValue(arg, "--pattern", &v)) {
      if (!ArrivalPatternFromName(v, &workload.pattern)) {
        std::fprintf(stderr, "impreg_loadgen: unknown pattern '%s'\n", v);
        return kExitUsage;
      }
    } else if (FlagValue(arg, "--batch", &v)) {
      workload.batch_size = std::atoi(v);
    } else if (FlagValue(arg, "--seeds-per-query", &v)) {
      workload.seeds_per_query = std::atoi(v);
    } else if (FlagValue(arg, "--method", &v)) {
      if (!QueryMethodFromName(v, &workload.method)) {
        std::fprintf(stderr, "impreg_loadgen: unknown method '%s'\n", v);
        return kExitUsage;
      }
    } else if (FlagValue(arg, "--epsilon", &v)) {
      workload.epsilon = std::atof(v);
    } else if (FlagValue(arg, "--max-work", &v)) {
      workload.max_work = std::strtoll(v, nullptr, 10);
    } else if (FlagValue(arg, "--tenants", &v)) {
      workload.tenants = SplitCommas(v);
    } else if (FlagValue(arg, "--nodes", &v)) {
      nodes = std::strtoll(v, nullptr, 10);
    } else if (FlagValue(arg, "--avg-degree", &v)) {
      avg_degree = std::atof(v);
    } else if (FlagValue(arg, "--capacity", &v)) {
      capacity = std::strtoll(v, nullptr, 10);
    } else if (FlagValue(arg, "--degrade-fraction", &v)) {
      engine_options.admission.policy.degrade_fraction = std::atof(v);
    } else if (FlagValue(arg, "--shed-fraction", &v)) {
      engine_options.admission.policy.shed_fraction = std::atof(v);
    } else if (FlagValue(arg, "--degraded-cap", &v)) {
      engine_options.admission.policy.degraded_cap =
          std::strtoll(v, nullptr, 10);
    } else if (FlagValue(arg, "--default-cost", &v)) {
      engine_options.admission.policy.default_cost =
          std::strtoll(v, nullptr, 10);
    } else if (FlagValue(arg, "--cache-capacity", &v)) {
      engine_options.cache_capacity =
          static_cast<std::size_t>(std::strtoll(v, nullptr, 10));
    } else if (FlagValue(arg, "--shards", &v)) {
      engine_options.sharding.shards = std::atoi(v);
      if (engine_options.sharding.shards < 1) {
        std::fprintf(stderr, "impreg_loadgen: --shards must be >= 1\n");
        return kExitUsage;
      }
    } else if (FlagValue(arg, "--name", &v)) {
      name = v;
    } else if (FlagValue(arg, "--out", &v)) {
      out_path = v;
    } else if (std::strcmp(arg, "--no-cache") == 0) {
      engine_options.enable_cache = false;
    } else if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      Usage();
      return 0;
    } else {
      std::fprintf(stderr, "impreg_loadgen: unknown argument '%s'\n", arg);
      return kExitUsage;
    }
  }
  if (nodes < 2 || workload.num_requests < 1 || workload.batch_size < 1 ||
      workload.seeds_per_query < 1) {
    return Usage();
  }

  if (capacity > 0) {
    engine_options.admission.enabled = true;
    engine_options.admission.policy.capacity = capacity;
  }

  // The base graph is itself seeded from --seed so one flag pins the
  // whole run.
  Rng graph_rng(workload.seed ^ 0x9e3779b97f4a7c15ULL);
  const double p =
      avg_degree / static_cast<double>(nodes > 1 ? nodes - 1 : 1);
  const Graph graph =
      ErdosRenyi(static_cast<NodeId>(nodes), p > 1.0 ? 1.0 : p, graph_rng);

  ImpregEnableMetrics(true);
  QueryEngine engine(graph, engine_options);
  const Workload load = GenerateWorkload(workload, graph.NumNodes());
  const LoadStats stats = RunLoadWorkload(engine, load);

  std::printf("workload: %d events (%d queries, %d writes) in %d batches "
              "[%s, zipf %.2f, seed %llu]\n",
              stats.events, stats.queries, stats.writes, stats.batches,
              ArrivalPatternName(workload.pattern), workload.zipf_exponent,
              static_cast<unsigned long long>(workload.seed));
  std::printf("graph: %lld nodes, %lld edges; threads: %d; cache: %s; "
              "admission: %s; shards: %d\n",
              static_cast<long long>(graph.NumNodes()),
              static_cast<long long>(graph.NumEdges()), ImpregNumThreads(),
              engine_options.enable_cache ? "on" : "off",
              engine_options.admission.enabled ? "on" : "off",
              engine.shards() != nullptr ? engine.shards()->shards() : 1);
  if (engine.shards() != nullptr) {
    const ShardSet::CounterTotals t = engine.shards()->Totals();
    std::printf("shard work: local rows %lld, escalations %lld, halo "
                "crossings %lld\n",
                static_cast<long long>(t.local_rows),
                static_cast<long long>(t.escalations),
                static_cast<long long>(t.halo_crossings));
  }
  std::printf("provenance: cold %lld, warm %lld, cached %lld; "
              "degraded %lld, shed %lld, invalid %lld\n",
              static_cast<long long>(stats.cold),
              static_cast<long long>(stats.warm),
              static_cast<long long>(stats.cached),
              static_cast<long long>(stats.degraded),
              static_cast<long long>(stats.shed),
              static_cast<long long>(stats.invalid));
  std::printf("latency ns: mean %.0f, p50 %.0f, p95 %.0f, p99 %.0f "
              "(status: %s)\n",
              stats.mean_ns, stats.p50_ns, stats.p95_ns, stats.p99_ns,
              SolveStatusName(stats.status));
  for (const auto& [tenant, t] : stats.tenants) {
    std::printf("tenant %-12s exact %lld, degraded %lld, shed %lld, "
                "spent %lld arcs\n",
                (tenant.empty() ? "\"\"" : tenant.c_str()),
                static_cast<long long>(t.admitted_exact),
                static_cast<long long>(t.admitted_degraded),
                static_cast<long long>(t.shed),
                static_cast<long long>(t.spent_arcs));
  }

  if (!out_path.empty()) {
    const BenchRecord record = LoadStatsRecord(
        name, stats, graph.NumNodes(), graph.NumEdges(), ImpregNumThreads());
    if (!WriteBenchReport(out_path, {record}, LoadMetricsJson(stats))) {
      std::fprintf(stderr, "impreg_loadgen: cannot write '%s'\n",
                   out_path.c_str());
      return kExitWrite;
    }
    std::printf("report: %s (%s)\n", out_path.c_str(), name.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace impreg

int main(int argc, char** argv) { return impreg::Run(argc, argv); }
