# Empty dependencies file for cg_test.
# This may be replaced when dependencies are built.
