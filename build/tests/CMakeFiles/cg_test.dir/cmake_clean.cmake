file(REMOVE_RECURSE
  "CMakeFiles/cg_test.dir/cg_test.cc.o"
  "CMakeFiles/cg_test.dir/cg_test.cc.o.d"
  "cg_test"
  "cg_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
