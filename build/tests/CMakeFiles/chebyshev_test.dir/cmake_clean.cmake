file(REMOVE_RECURSE
  "CMakeFiles/chebyshev_test.dir/chebyshev_test.cc.o"
  "CMakeFiles/chebyshev_test.dir/chebyshev_test.cc.o.d"
  "chebyshev_test"
  "chebyshev_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chebyshev_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
