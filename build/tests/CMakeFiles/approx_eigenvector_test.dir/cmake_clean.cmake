file(REMOVE_RECURSE
  "CMakeFiles/approx_eigenvector_test.dir/approx_eigenvector_test.cc.o"
  "CMakeFiles/approx_eigenvector_test.dir/approx_eigenvector_test.cc.o.d"
  "approx_eigenvector_test"
  "approx_eigenvector_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/approx_eigenvector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
