# Empty dependencies file for approx_eigenvector_test.
# This may be replaced when dependencies are built.
