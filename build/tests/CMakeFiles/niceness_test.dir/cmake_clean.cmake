file(REMOVE_RECURSE
  "CMakeFiles/niceness_test.dir/niceness_test.cc.o"
  "CMakeFiles/niceness_test.dir/niceness_test.cc.o.d"
  "niceness_test"
  "niceness_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/niceness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
