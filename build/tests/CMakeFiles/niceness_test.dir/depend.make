# Empty dependencies file for niceness_test.
# This may be replaced when dependencies are built.
