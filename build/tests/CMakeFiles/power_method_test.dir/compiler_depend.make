# Empty compiler generated dependencies file for power_method_test.
# This may be replaced when dependencies are built.
