file(REMOVE_RECURSE
  "CMakeFiles/power_method_test.dir/power_method_test.cc.o"
  "CMakeFiles/power_method_test.dir/power_method_test.cc.o.d"
  "power_method_test"
  "power_method_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_method_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
