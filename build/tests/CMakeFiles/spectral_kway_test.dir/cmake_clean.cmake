file(REMOVE_RECURSE
  "CMakeFiles/spectral_kway_test.dir/spectral_kway_test.cc.o"
  "CMakeFiles/spectral_kway_test.dir/spectral_kway_test.cc.o.d"
  "spectral_kway_test"
  "spectral_kway_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spectral_kway_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
