# Empty dependencies file for spectral_kway_test.
# This may be replaced when dependencies are built.
