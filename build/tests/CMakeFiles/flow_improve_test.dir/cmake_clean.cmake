file(REMOVE_RECURSE
  "CMakeFiles/flow_improve_test.dir/flow_improve_test.cc.o"
  "CMakeFiles/flow_improve_test.dir/flow_improve_test.cc.o.d"
  "flow_improve_test"
  "flow_improve_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flow_improve_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
