# Empty dependencies file for lazy_walk_test.
# This may be replaced when dependencies are built.
