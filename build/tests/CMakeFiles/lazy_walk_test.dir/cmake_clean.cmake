file(REMOVE_RECURSE
  "CMakeFiles/lazy_walk_test.dir/lazy_walk_test.cc.o"
  "CMakeFiles/lazy_walk_test.dir/lazy_walk_test.cc.o.d"
  "lazy_walk_test"
  "lazy_walk_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lazy_walk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
