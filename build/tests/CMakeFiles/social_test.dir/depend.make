# Empty dependencies file for social_test.
# This may be replaced when dependencies are built.
