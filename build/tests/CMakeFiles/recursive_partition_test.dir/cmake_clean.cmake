file(REMOVE_RECURSE
  "CMakeFiles/recursive_partition_test.dir/recursive_partition_test.cc.o"
  "CMakeFiles/recursive_partition_test.dir/recursive_partition_test.cc.o.d"
  "recursive_partition_test"
  "recursive_partition_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recursive_partition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
