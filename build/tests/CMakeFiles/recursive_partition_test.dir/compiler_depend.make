# Empty compiler generated dependencies file for recursive_partition_test.
# This may be replaced when dependencies are built.
