# Empty compiler generated dependencies file for tridiagonal_test.
# This may be replaced when dependencies are built.
