file(REMOVE_RECURSE
  "CMakeFiles/tridiagonal_test.dir/tridiagonal_test.cc.o"
  "CMakeFiles/tridiagonal_test.dir/tridiagonal_test.cc.o.d"
  "tridiagonal_test"
  "tridiagonal_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tridiagonal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
