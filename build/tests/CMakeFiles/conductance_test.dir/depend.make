# Empty dependencies file for conductance_test.
# This may be replaced when dependencies are built.
