file(REMOVE_RECURSE
  "CMakeFiles/conductance_test.dir/conductance_test.cc.o"
  "CMakeFiles/conductance_test.dir/conductance_test.cc.o.d"
  "conductance_test"
  "conductance_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conductance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
