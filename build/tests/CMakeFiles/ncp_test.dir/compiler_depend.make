# Empty compiler generated dependencies file for ncp_test.
# This may be replaced when dependencies are built.
