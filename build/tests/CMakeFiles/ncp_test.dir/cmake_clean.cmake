file(REMOVE_RECURSE
  "CMakeFiles/ncp_test.dir/ncp_test.cc.o"
  "CMakeFiles/ncp_test.dir/ncp_test.cc.o.d"
  "ncp_test"
  "ncp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ncp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
