# Empty compiler generated dependencies file for heat_kernel_test.
# This may be replaced when dependencies are built.
