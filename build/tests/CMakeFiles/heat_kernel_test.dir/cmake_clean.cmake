file(REMOVE_RECURSE
  "CMakeFiles/heat_kernel_test.dir/heat_kernel_test.cc.o"
  "CMakeFiles/heat_kernel_test.dir/heat_kernel_test.cc.o.d"
  "heat_kernel_test"
  "heat_kernel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heat_kernel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
