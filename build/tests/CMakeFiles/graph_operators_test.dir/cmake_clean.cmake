file(REMOVE_RECURSE
  "CMakeFiles/graph_operators_test.dir/graph_operators_test.cc.o"
  "CMakeFiles/graph_operators_test.dir/graph_operators_test.cc.o.d"
  "graph_operators_test"
  "graph_operators_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_operators_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
