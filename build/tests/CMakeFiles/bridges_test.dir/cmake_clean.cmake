file(REMOVE_RECURSE
  "CMakeFiles/bridges_test.dir/bridges_test.cc.o"
  "CMakeFiles/bridges_test.dir/bridges_test.cc.o.d"
  "bridges_test"
  "bridges_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bridges_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
