# Empty dependencies file for hkrelax_test.
# This may be replaced when dependencies are built.
