file(REMOVE_RECURSE
  "CMakeFiles/hkrelax_test.dir/hkrelax_test.cc.o"
  "CMakeFiles/hkrelax_test.dir/hkrelax_test.cc.o.d"
  "hkrelax_test"
  "hkrelax_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hkrelax_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
