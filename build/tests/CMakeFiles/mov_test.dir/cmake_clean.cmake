file(REMOVE_RECURSE
  "CMakeFiles/mov_test.dir/mov_test.cc.o"
  "CMakeFiles/mov_test.dir/mov_test.cc.o.d"
  "mov_test"
  "mov_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mov_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
