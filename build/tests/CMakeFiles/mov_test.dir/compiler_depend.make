# Empty compiler generated dependencies file for mov_test.
# This may be replaced when dependencies are built.
