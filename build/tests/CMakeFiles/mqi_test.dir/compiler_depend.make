# Empty compiler generated dependencies file for mqi_test.
# This may be replaced when dependencies are built.
