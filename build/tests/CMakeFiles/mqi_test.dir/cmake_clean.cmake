file(REMOVE_RECURSE
  "CMakeFiles/mqi_test.dir/mqi_test.cc.o"
  "CMakeFiles/mqi_test.dir/mqi_test.cc.o.d"
  "mqi_test"
  "mqi_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mqi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
