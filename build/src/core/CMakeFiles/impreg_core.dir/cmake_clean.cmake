file(REMOVE_RECURSE
  "CMakeFiles/impreg_core.dir/approx_eigenvector.cc.o"
  "CMakeFiles/impreg_core.dir/approx_eigenvector.cc.o.d"
  "libimpreg_core.a"
  "libimpreg_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/impreg_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
