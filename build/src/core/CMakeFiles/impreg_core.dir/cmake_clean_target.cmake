file(REMOVE_RECURSE
  "libimpreg_core.a"
)
