# Empty dependencies file for impreg_core.
# This may be replaced when dependencies are built.
