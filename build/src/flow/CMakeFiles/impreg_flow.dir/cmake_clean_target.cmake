file(REMOVE_RECURSE
  "libimpreg_flow.a"
)
