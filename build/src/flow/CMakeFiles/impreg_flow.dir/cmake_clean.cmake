file(REMOVE_RECURSE
  "CMakeFiles/impreg_flow.dir/flow_improve.cc.o"
  "CMakeFiles/impreg_flow.dir/flow_improve.cc.o.d"
  "CMakeFiles/impreg_flow.dir/maxflow.cc.o"
  "CMakeFiles/impreg_flow.dir/maxflow.cc.o.d"
  "CMakeFiles/impreg_flow.dir/mqi.cc.o"
  "CMakeFiles/impreg_flow.dir/mqi.cc.o.d"
  "CMakeFiles/impreg_flow.dir/multilevel.cc.o"
  "CMakeFiles/impreg_flow.dir/multilevel.cc.o.d"
  "CMakeFiles/impreg_flow.dir/recursive_partition.cc.o"
  "CMakeFiles/impreg_flow.dir/recursive_partition.cc.o.d"
  "libimpreg_flow.a"
  "libimpreg_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/impreg_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
