# Empty compiler generated dependencies file for impreg_flow.
# This may be replaced when dependencies are built.
