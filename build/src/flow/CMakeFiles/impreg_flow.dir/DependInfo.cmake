
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flow/flow_improve.cc" "src/flow/CMakeFiles/impreg_flow.dir/flow_improve.cc.o" "gcc" "src/flow/CMakeFiles/impreg_flow.dir/flow_improve.cc.o.d"
  "/root/repo/src/flow/maxflow.cc" "src/flow/CMakeFiles/impreg_flow.dir/maxflow.cc.o" "gcc" "src/flow/CMakeFiles/impreg_flow.dir/maxflow.cc.o.d"
  "/root/repo/src/flow/mqi.cc" "src/flow/CMakeFiles/impreg_flow.dir/mqi.cc.o" "gcc" "src/flow/CMakeFiles/impreg_flow.dir/mqi.cc.o.d"
  "/root/repo/src/flow/multilevel.cc" "src/flow/CMakeFiles/impreg_flow.dir/multilevel.cc.o" "gcc" "src/flow/CMakeFiles/impreg_flow.dir/multilevel.cc.o.d"
  "/root/repo/src/flow/recursive_partition.cc" "src/flow/CMakeFiles/impreg_flow.dir/recursive_partition.cc.o" "gcc" "src/flow/CMakeFiles/impreg_flow.dir/recursive_partition.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/partition/CMakeFiles/impreg_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/impreg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/impreg_util.dir/DependInfo.cmake"
  "/root/repo/build/src/diffusion/CMakeFiles/impreg_diffusion.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/impreg_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
