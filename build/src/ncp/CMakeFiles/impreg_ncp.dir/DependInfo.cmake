
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ncp/community.cc" "src/ncp/CMakeFiles/impreg_ncp.dir/community.cc.o" "gcc" "src/ncp/CMakeFiles/impreg_ncp.dir/community.cc.o.d"
  "/root/repo/src/ncp/ncp.cc" "src/ncp/CMakeFiles/impreg_ncp.dir/ncp.cc.o" "gcc" "src/ncp/CMakeFiles/impreg_ncp.dir/ncp.cc.o.d"
  "/root/repo/src/ncp/niceness.cc" "src/ncp/CMakeFiles/impreg_ncp.dir/niceness.cc.o" "gcc" "src/ncp/CMakeFiles/impreg_ncp.dir/niceness.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/flow/CMakeFiles/impreg_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/impreg_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/impreg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/impreg_util.dir/DependInfo.cmake"
  "/root/repo/build/src/diffusion/CMakeFiles/impreg_diffusion.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/impreg_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
