# Empty compiler generated dependencies file for impreg_ncp.
# This may be replaced when dependencies are built.
