file(REMOVE_RECURSE
  "CMakeFiles/impreg_ncp.dir/community.cc.o"
  "CMakeFiles/impreg_ncp.dir/community.cc.o.d"
  "CMakeFiles/impreg_ncp.dir/ncp.cc.o"
  "CMakeFiles/impreg_ncp.dir/ncp.cc.o.d"
  "CMakeFiles/impreg_ncp.dir/niceness.cc.o"
  "CMakeFiles/impreg_ncp.dir/niceness.cc.o.d"
  "libimpreg_ncp.a"
  "libimpreg_ncp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/impreg_ncp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
