file(REMOVE_RECURSE
  "libimpreg_ncp.a"
)
