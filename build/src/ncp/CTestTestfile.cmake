# CMake generated Testfile for 
# Source directory: /root/repo/src/ncp
# Build directory: /root/repo/build/src/ncp
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
