file(REMOVE_RECURSE
  "libimpreg_partition.a"
)
