file(REMOVE_RECURSE
  "CMakeFiles/impreg_partition.dir/conductance.cc.o"
  "CMakeFiles/impreg_partition.dir/conductance.cc.o.d"
  "CMakeFiles/impreg_partition.dir/hkrelax.cc.o"
  "CMakeFiles/impreg_partition.dir/hkrelax.cc.o.d"
  "CMakeFiles/impreg_partition.dir/mov.cc.o"
  "CMakeFiles/impreg_partition.dir/mov.cc.o.d"
  "CMakeFiles/impreg_partition.dir/nibble.cc.o"
  "CMakeFiles/impreg_partition.dir/nibble.cc.o.d"
  "CMakeFiles/impreg_partition.dir/push.cc.o"
  "CMakeFiles/impreg_partition.dir/push.cc.o.d"
  "CMakeFiles/impreg_partition.dir/spectral.cc.o"
  "CMakeFiles/impreg_partition.dir/spectral.cc.o.d"
  "CMakeFiles/impreg_partition.dir/spectral_kway.cc.o"
  "CMakeFiles/impreg_partition.dir/spectral_kway.cc.o.d"
  "CMakeFiles/impreg_partition.dir/sweep.cc.o"
  "CMakeFiles/impreg_partition.dir/sweep.cc.o.d"
  "libimpreg_partition.a"
  "libimpreg_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/impreg_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
