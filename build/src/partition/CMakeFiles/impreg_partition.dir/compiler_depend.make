# Empty compiler generated dependencies file for impreg_partition.
# This may be replaced when dependencies are built.
