
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/partition/conductance.cc" "src/partition/CMakeFiles/impreg_partition.dir/conductance.cc.o" "gcc" "src/partition/CMakeFiles/impreg_partition.dir/conductance.cc.o.d"
  "/root/repo/src/partition/hkrelax.cc" "src/partition/CMakeFiles/impreg_partition.dir/hkrelax.cc.o" "gcc" "src/partition/CMakeFiles/impreg_partition.dir/hkrelax.cc.o.d"
  "/root/repo/src/partition/mov.cc" "src/partition/CMakeFiles/impreg_partition.dir/mov.cc.o" "gcc" "src/partition/CMakeFiles/impreg_partition.dir/mov.cc.o.d"
  "/root/repo/src/partition/nibble.cc" "src/partition/CMakeFiles/impreg_partition.dir/nibble.cc.o" "gcc" "src/partition/CMakeFiles/impreg_partition.dir/nibble.cc.o.d"
  "/root/repo/src/partition/push.cc" "src/partition/CMakeFiles/impreg_partition.dir/push.cc.o" "gcc" "src/partition/CMakeFiles/impreg_partition.dir/push.cc.o.d"
  "/root/repo/src/partition/spectral.cc" "src/partition/CMakeFiles/impreg_partition.dir/spectral.cc.o" "gcc" "src/partition/CMakeFiles/impreg_partition.dir/spectral.cc.o.d"
  "/root/repo/src/partition/spectral_kway.cc" "src/partition/CMakeFiles/impreg_partition.dir/spectral_kway.cc.o" "gcc" "src/partition/CMakeFiles/impreg_partition.dir/spectral_kway.cc.o.d"
  "/root/repo/src/partition/sweep.cc" "src/partition/CMakeFiles/impreg_partition.dir/sweep.cc.o" "gcc" "src/partition/CMakeFiles/impreg_partition.dir/sweep.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/diffusion/CMakeFiles/impreg_diffusion.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/impreg_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/impreg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/impreg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
