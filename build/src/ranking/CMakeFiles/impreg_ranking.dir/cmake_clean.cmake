file(REMOVE_RECURSE
  "CMakeFiles/impreg_ranking.dir/centrality.cc.o"
  "CMakeFiles/impreg_ranking.dir/centrality.cc.o.d"
  "CMakeFiles/impreg_ranking.dir/compare.cc.o"
  "CMakeFiles/impreg_ranking.dir/compare.cc.o.d"
  "libimpreg_ranking.a"
  "libimpreg_ranking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/impreg_ranking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
