# Empty dependencies file for impreg_ranking.
# This may be replaced when dependencies are built.
