file(REMOVE_RECURSE
  "libimpreg_ranking.a"
)
