# Empty compiler generated dependencies file for impreg_diffusion.
# This may be replaced when dependencies are built.
