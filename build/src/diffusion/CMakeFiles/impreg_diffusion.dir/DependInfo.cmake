
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/diffusion/heat_kernel.cc" "src/diffusion/CMakeFiles/impreg_diffusion.dir/heat_kernel.cc.o" "gcc" "src/diffusion/CMakeFiles/impreg_diffusion.dir/heat_kernel.cc.o.d"
  "/root/repo/src/diffusion/lazy_walk.cc" "src/diffusion/CMakeFiles/impreg_diffusion.dir/lazy_walk.cc.o" "gcc" "src/diffusion/CMakeFiles/impreg_diffusion.dir/lazy_walk.cc.o.d"
  "/root/repo/src/diffusion/pagerank.cc" "src/diffusion/CMakeFiles/impreg_diffusion.dir/pagerank.cc.o" "gcc" "src/diffusion/CMakeFiles/impreg_diffusion.dir/pagerank.cc.o.d"
  "/root/repo/src/diffusion/seed.cc" "src/diffusion/CMakeFiles/impreg_diffusion.dir/seed.cc.o" "gcc" "src/diffusion/CMakeFiles/impreg_diffusion.dir/seed.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/impreg_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/impreg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/impreg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
