file(REMOVE_RECURSE
  "CMakeFiles/impreg_diffusion.dir/heat_kernel.cc.o"
  "CMakeFiles/impreg_diffusion.dir/heat_kernel.cc.o.d"
  "CMakeFiles/impreg_diffusion.dir/lazy_walk.cc.o"
  "CMakeFiles/impreg_diffusion.dir/lazy_walk.cc.o.d"
  "CMakeFiles/impreg_diffusion.dir/pagerank.cc.o"
  "CMakeFiles/impreg_diffusion.dir/pagerank.cc.o.d"
  "CMakeFiles/impreg_diffusion.dir/seed.cc.o"
  "CMakeFiles/impreg_diffusion.dir/seed.cc.o.d"
  "libimpreg_diffusion.a"
  "libimpreg_diffusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/impreg_diffusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
