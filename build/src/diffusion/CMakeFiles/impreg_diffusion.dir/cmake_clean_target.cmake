file(REMOVE_RECURSE
  "libimpreg_diffusion.a"
)
