file(REMOVE_RECURSE
  "CMakeFiles/impreg_linalg.dir/cg.cc.o"
  "CMakeFiles/impreg_linalg.dir/cg.cc.o.d"
  "CMakeFiles/impreg_linalg.dir/chebyshev.cc.o"
  "CMakeFiles/impreg_linalg.dir/chebyshev.cc.o.d"
  "CMakeFiles/impreg_linalg.dir/dense_matrix.cc.o"
  "CMakeFiles/impreg_linalg.dir/dense_matrix.cc.o.d"
  "CMakeFiles/impreg_linalg.dir/graph_operators.cc.o"
  "CMakeFiles/impreg_linalg.dir/graph_operators.cc.o.d"
  "CMakeFiles/impreg_linalg.dir/lanczos.cc.o"
  "CMakeFiles/impreg_linalg.dir/lanczos.cc.o.d"
  "CMakeFiles/impreg_linalg.dir/operator.cc.o"
  "CMakeFiles/impreg_linalg.dir/operator.cc.o.d"
  "CMakeFiles/impreg_linalg.dir/power_method.cc.o"
  "CMakeFiles/impreg_linalg.dir/power_method.cc.o.d"
  "CMakeFiles/impreg_linalg.dir/tridiagonal.cc.o"
  "CMakeFiles/impreg_linalg.dir/tridiagonal.cc.o.d"
  "CMakeFiles/impreg_linalg.dir/vector_ops.cc.o"
  "CMakeFiles/impreg_linalg.dir/vector_ops.cc.o.d"
  "libimpreg_linalg.a"
  "libimpreg_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/impreg_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
