# Empty dependencies file for impreg_linalg.
# This may be replaced when dependencies are built.
