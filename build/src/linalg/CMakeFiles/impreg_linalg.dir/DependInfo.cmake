
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/cg.cc" "src/linalg/CMakeFiles/impreg_linalg.dir/cg.cc.o" "gcc" "src/linalg/CMakeFiles/impreg_linalg.dir/cg.cc.o.d"
  "/root/repo/src/linalg/chebyshev.cc" "src/linalg/CMakeFiles/impreg_linalg.dir/chebyshev.cc.o" "gcc" "src/linalg/CMakeFiles/impreg_linalg.dir/chebyshev.cc.o.d"
  "/root/repo/src/linalg/dense_matrix.cc" "src/linalg/CMakeFiles/impreg_linalg.dir/dense_matrix.cc.o" "gcc" "src/linalg/CMakeFiles/impreg_linalg.dir/dense_matrix.cc.o.d"
  "/root/repo/src/linalg/graph_operators.cc" "src/linalg/CMakeFiles/impreg_linalg.dir/graph_operators.cc.o" "gcc" "src/linalg/CMakeFiles/impreg_linalg.dir/graph_operators.cc.o.d"
  "/root/repo/src/linalg/lanczos.cc" "src/linalg/CMakeFiles/impreg_linalg.dir/lanczos.cc.o" "gcc" "src/linalg/CMakeFiles/impreg_linalg.dir/lanczos.cc.o.d"
  "/root/repo/src/linalg/operator.cc" "src/linalg/CMakeFiles/impreg_linalg.dir/operator.cc.o" "gcc" "src/linalg/CMakeFiles/impreg_linalg.dir/operator.cc.o.d"
  "/root/repo/src/linalg/power_method.cc" "src/linalg/CMakeFiles/impreg_linalg.dir/power_method.cc.o" "gcc" "src/linalg/CMakeFiles/impreg_linalg.dir/power_method.cc.o.d"
  "/root/repo/src/linalg/tridiagonal.cc" "src/linalg/CMakeFiles/impreg_linalg.dir/tridiagonal.cc.o" "gcc" "src/linalg/CMakeFiles/impreg_linalg.dir/tridiagonal.cc.o.d"
  "/root/repo/src/linalg/vector_ops.cc" "src/linalg/CMakeFiles/impreg_linalg.dir/vector_ops.cc.o" "gcc" "src/linalg/CMakeFiles/impreg_linalg.dir/vector_ops.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/impreg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/impreg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
