file(REMOVE_RECURSE
  "libimpreg_linalg.a"
)
