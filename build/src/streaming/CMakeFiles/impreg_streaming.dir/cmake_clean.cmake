file(REMOVE_RECURSE
  "CMakeFiles/impreg_streaming.dir/dynamic_graph.cc.o"
  "CMakeFiles/impreg_streaming.dir/dynamic_graph.cc.o.d"
  "CMakeFiles/impreg_streaming.dir/incremental_ppr.cc.o"
  "CMakeFiles/impreg_streaming.dir/incremental_ppr.cc.o.d"
  "CMakeFiles/impreg_streaming.dir/montecarlo.cc.o"
  "CMakeFiles/impreg_streaming.dir/montecarlo.cc.o.d"
  "libimpreg_streaming.a"
  "libimpreg_streaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/impreg_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
