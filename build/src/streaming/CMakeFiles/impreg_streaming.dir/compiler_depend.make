# Empty compiler generated dependencies file for impreg_streaming.
# This may be replaced when dependencies are built.
