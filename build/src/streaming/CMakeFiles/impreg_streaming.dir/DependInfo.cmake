
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/streaming/dynamic_graph.cc" "src/streaming/CMakeFiles/impreg_streaming.dir/dynamic_graph.cc.o" "gcc" "src/streaming/CMakeFiles/impreg_streaming.dir/dynamic_graph.cc.o.d"
  "/root/repo/src/streaming/incremental_ppr.cc" "src/streaming/CMakeFiles/impreg_streaming.dir/incremental_ppr.cc.o" "gcc" "src/streaming/CMakeFiles/impreg_streaming.dir/incremental_ppr.cc.o.d"
  "/root/repo/src/streaming/montecarlo.cc" "src/streaming/CMakeFiles/impreg_streaming.dir/montecarlo.cc.o" "gcc" "src/streaming/CMakeFiles/impreg_streaming.dir/montecarlo.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/impreg_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/impreg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/impreg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
