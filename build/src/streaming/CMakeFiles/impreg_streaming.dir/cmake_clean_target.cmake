file(REMOVE_RECURSE
  "libimpreg_streaming.a"
)
