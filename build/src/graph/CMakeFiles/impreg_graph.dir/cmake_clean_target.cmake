file(REMOVE_RECURSE
  "libimpreg_graph.a"
)
