
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/algorithms.cc" "src/graph/CMakeFiles/impreg_graph.dir/algorithms.cc.o" "gcc" "src/graph/CMakeFiles/impreg_graph.dir/algorithms.cc.o.d"
  "/root/repo/src/graph/bridges.cc" "src/graph/CMakeFiles/impreg_graph.dir/bridges.cc.o" "gcc" "src/graph/CMakeFiles/impreg_graph.dir/bridges.cc.o.d"
  "/root/repo/src/graph/generators.cc" "src/graph/CMakeFiles/impreg_graph.dir/generators.cc.o" "gcc" "src/graph/CMakeFiles/impreg_graph.dir/generators.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/graph/CMakeFiles/impreg_graph.dir/graph.cc.o" "gcc" "src/graph/CMakeFiles/impreg_graph.dir/graph.cc.o.d"
  "/root/repo/src/graph/io.cc" "src/graph/CMakeFiles/impreg_graph.dir/io.cc.o" "gcc" "src/graph/CMakeFiles/impreg_graph.dir/io.cc.o.d"
  "/root/repo/src/graph/random_graphs.cc" "src/graph/CMakeFiles/impreg_graph.dir/random_graphs.cc.o" "gcc" "src/graph/CMakeFiles/impreg_graph.dir/random_graphs.cc.o.d"
  "/root/repo/src/graph/social.cc" "src/graph/CMakeFiles/impreg_graph.dir/social.cc.o" "gcc" "src/graph/CMakeFiles/impreg_graph.dir/social.cc.o.d"
  "/root/repo/src/graph/structure.cc" "src/graph/CMakeFiles/impreg_graph.dir/structure.cc.o" "gcc" "src/graph/CMakeFiles/impreg_graph.dir/structure.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/impreg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
