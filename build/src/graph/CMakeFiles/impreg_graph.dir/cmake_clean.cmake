file(REMOVE_RECURSE
  "CMakeFiles/impreg_graph.dir/algorithms.cc.o"
  "CMakeFiles/impreg_graph.dir/algorithms.cc.o.d"
  "CMakeFiles/impreg_graph.dir/bridges.cc.o"
  "CMakeFiles/impreg_graph.dir/bridges.cc.o.d"
  "CMakeFiles/impreg_graph.dir/generators.cc.o"
  "CMakeFiles/impreg_graph.dir/generators.cc.o.d"
  "CMakeFiles/impreg_graph.dir/graph.cc.o"
  "CMakeFiles/impreg_graph.dir/graph.cc.o.d"
  "CMakeFiles/impreg_graph.dir/io.cc.o"
  "CMakeFiles/impreg_graph.dir/io.cc.o.d"
  "CMakeFiles/impreg_graph.dir/random_graphs.cc.o"
  "CMakeFiles/impreg_graph.dir/random_graphs.cc.o.d"
  "CMakeFiles/impreg_graph.dir/social.cc.o"
  "CMakeFiles/impreg_graph.dir/social.cc.o.d"
  "CMakeFiles/impreg_graph.dir/structure.cc.o"
  "CMakeFiles/impreg_graph.dir/structure.cc.o.d"
  "libimpreg_graph.a"
  "libimpreg_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/impreg_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
