# Empty compiler generated dependencies file for impreg_graph.
# This may be replaced when dependencies are built.
