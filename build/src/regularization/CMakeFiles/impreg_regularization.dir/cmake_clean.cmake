file(REMOVE_RECURSE
  "CMakeFiles/impreg_regularization.dir/density.cc.o"
  "CMakeFiles/impreg_regularization.dir/density.cc.o.d"
  "CMakeFiles/impreg_regularization.dir/equivalence.cc.o"
  "CMakeFiles/impreg_regularization.dir/equivalence.cc.o.d"
  "CMakeFiles/impreg_regularization.dir/estimators.cc.o"
  "CMakeFiles/impreg_regularization.dir/estimators.cc.o.d"
  "CMakeFiles/impreg_regularization.dir/sdp.cc.o"
  "CMakeFiles/impreg_regularization.dir/sdp.cc.o.d"
  "libimpreg_regularization.a"
  "libimpreg_regularization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/impreg_regularization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
