file(REMOVE_RECURSE
  "libimpreg_regularization.a"
)
