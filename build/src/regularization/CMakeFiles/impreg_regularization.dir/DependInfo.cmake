
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/regularization/density.cc" "src/regularization/CMakeFiles/impreg_regularization.dir/density.cc.o" "gcc" "src/regularization/CMakeFiles/impreg_regularization.dir/density.cc.o.d"
  "/root/repo/src/regularization/equivalence.cc" "src/regularization/CMakeFiles/impreg_regularization.dir/equivalence.cc.o" "gcc" "src/regularization/CMakeFiles/impreg_regularization.dir/equivalence.cc.o.d"
  "/root/repo/src/regularization/estimators.cc" "src/regularization/CMakeFiles/impreg_regularization.dir/estimators.cc.o" "gcc" "src/regularization/CMakeFiles/impreg_regularization.dir/estimators.cc.o.d"
  "/root/repo/src/regularization/sdp.cc" "src/regularization/CMakeFiles/impreg_regularization.dir/sdp.cc.o" "gcc" "src/regularization/CMakeFiles/impreg_regularization.dir/sdp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/diffusion/CMakeFiles/impreg_diffusion.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/impreg_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/impreg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/impreg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
