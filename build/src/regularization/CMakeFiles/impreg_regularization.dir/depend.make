# Empty dependencies file for impreg_regularization.
# This may be replaced when dependencies are built.
