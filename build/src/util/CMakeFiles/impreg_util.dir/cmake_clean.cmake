file(REMOVE_RECURSE
  "CMakeFiles/impreg_util.dir/csv.cc.o"
  "CMakeFiles/impreg_util.dir/csv.cc.o.d"
  "CMakeFiles/impreg_util.dir/rng.cc.o"
  "CMakeFiles/impreg_util.dir/rng.cc.o.d"
  "CMakeFiles/impreg_util.dir/stats.cc.o"
  "CMakeFiles/impreg_util.dir/stats.cc.o.d"
  "libimpreg_util.a"
  "libimpreg_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/impreg_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
