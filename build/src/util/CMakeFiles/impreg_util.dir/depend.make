# Empty dependencies file for impreg_util.
# This may be replaced when dependencies are built.
