file(REMOVE_RECURSE
  "libimpreg_util.a"
)
