file(REMOVE_RECURSE
  "CMakeFiles/impreg_cli.dir/impreg_cli.cc.o"
  "CMakeFiles/impreg_cli.dir/impreg_cli.cc.o.d"
  "impreg_cli"
  "impreg_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/impreg_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
