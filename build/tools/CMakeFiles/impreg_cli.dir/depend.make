# Empty dependencies file for impreg_cli.
# This may be replaced when dependencies are built.
