file(REMOVE_RECURSE
  "../bench/fig1a_conductance"
  "../bench/fig1a_conductance.pdb"
  "CMakeFiles/fig1a_conductance.dir/fig1a_conductance.cc.o"
  "CMakeFiles/fig1a_conductance.dir/fig1a_conductance.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1a_conductance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
