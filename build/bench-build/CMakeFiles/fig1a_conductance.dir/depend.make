# Empty dependencies file for fig1a_conductance.
# This may be replaced when dependencies are built.
