file(REMOVE_RECURSE
  "../lib/libimpreg_fig1.a"
  "../lib/libimpreg_fig1.pdb"
  "CMakeFiles/impreg_fig1.dir/fig1_common.cc.o"
  "CMakeFiles/impreg_fig1.dir/fig1_common.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/impreg_fig1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
