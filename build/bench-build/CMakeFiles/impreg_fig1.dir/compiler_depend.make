# Empty compiler generated dependencies file for impreg_fig1.
# This may be replaced when dependencies are built.
