file(REMOVE_RECURSE
  "../lib/libimpreg_fig1.a"
)
