# Empty dependencies file for ablation_cut_improvement.
# This may be replaced when dependencies are built.
