file(REMOVE_RECURSE
  "../bench/ablation_cut_improvement"
  "../bench/ablation_cut_improvement.pdb"
  "CMakeFiles/ablation_cut_improvement.dir/ablation_cut_improvement.cc.o"
  "CMakeFiles/ablation_cut_improvement.dir/ablation_cut_improvement.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cut_improvement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
