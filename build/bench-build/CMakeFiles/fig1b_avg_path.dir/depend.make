# Empty dependencies file for fig1b_avg_path.
# This may be replaced when dependencies are built.
