file(REMOVE_RECURSE
  "../bench/fig1b_avg_path"
  "../bench/fig1b_avg_path.pdb"
  "CMakeFiles/fig1b_avg_path.dir/fig1b_avg_path.cc.o"
  "CMakeFiles/fig1b_avg_path.dir/fig1b_avg_path.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1b_avg_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
