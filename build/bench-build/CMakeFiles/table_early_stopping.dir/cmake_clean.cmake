file(REMOVE_RECURSE
  "../bench/table_early_stopping"
  "../bench/table_early_stopping.pdb"
  "CMakeFiles/table_early_stopping.dir/table_early_stopping.cc.o"
  "CMakeFiles/table_early_stopping.dir/table_early_stopping.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_early_stopping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
