# Empty dependencies file for table_early_stopping.
# This may be replaced when dependencies are built.
