# Empty compiler generated dependencies file for fig1c_cond_ratio.
# This may be replaced when dependencies are built.
