file(REMOVE_RECURSE
  "../bench/fig1c_cond_ratio"
  "../bench/fig1c_cond_ratio.pdb"
  "CMakeFiles/fig1c_cond_ratio.dir/fig1c_cond_ratio.cc.o"
  "CMakeFiles/fig1c_cond_ratio.dir/fig1c_cond_ratio.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1c_cond_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
