file(REMOVE_RECURSE
  "../bench/table_sdp_equivalence"
  "../bench/table_sdp_equivalence.pdb"
  "CMakeFiles/table_sdp_equivalence.dir/table_sdp_equivalence.cc.o"
  "CMakeFiles/table_sdp_equivalence.dir/table_sdp_equivalence.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_sdp_equivalence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
