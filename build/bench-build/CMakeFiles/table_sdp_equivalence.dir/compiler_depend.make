# Empty compiler generated dependencies file for table_sdp_equivalence.
# This may be replaced when dependencies are built.
