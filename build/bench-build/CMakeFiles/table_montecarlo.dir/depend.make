# Empty dependencies file for table_montecarlo.
# This may be replaced when dependencies are built.
