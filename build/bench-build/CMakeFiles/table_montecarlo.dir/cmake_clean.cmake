file(REMOVE_RECURSE
  "../bench/table_montecarlo"
  "../bench/table_montecarlo.pdb"
  "CMakeFiles/table_montecarlo.dir/table_montecarlo.cc.o"
  "CMakeFiles/table_montecarlo.dir/table_montecarlo.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_montecarlo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
