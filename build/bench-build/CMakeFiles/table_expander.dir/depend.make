# Empty dependencies file for table_expander.
# This may be replaced when dependencies are built.
