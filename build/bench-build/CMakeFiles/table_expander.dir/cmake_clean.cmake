file(REMOVE_RECURSE
  "../bench/table_expander"
  "../bench/table_expander.pdb"
  "CMakeFiles/table_expander.dir/table_expander.cc.o"
  "CMakeFiles/table_expander.dir/table_expander.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_expander.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
