# Empty compiler generated dependencies file for table_cheeger.
# This may be replaced when dependencies are built.
