file(REMOVE_RECURSE
  "../bench/table_cheeger"
  "../bench/table_cheeger.pdb"
  "CMakeFiles/table_cheeger.dir/table_cheeger.cc.o"
  "CMakeFiles/table_cheeger.dir/table_cheeger.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_cheeger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
