# Empty dependencies file for table_noise_injection.
# This may be replaced when dependencies are built.
