file(REMOVE_RECURSE
  "../bench/table_noise_injection"
  "../bench/table_noise_injection.pdb"
  "CMakeFiles/table_noise_injection.dir/table_noise_injection.cc.o"
  "CMakeFiles/table_noise_injection.dir/table_noise_injection.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_noise_injection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
