file(REMOVE_RECURSE
  "../bench/table_local_scaling"
  "../bench/table_local_scaling.pdb"
  "CMakeFiles/table_local_scaling.dir/table_local_scaling.cc.o"
  "CMakeFiles/table_local_scaling.dir/table_local_scaling.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_local_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
