# Empty dependencies file for table_local_scaling.
# This may be replaced when dependencies are built.
