# Empty compiler generated dependencies file for table_push_regularization.
# This may be replaced when dependencies are built.
