file(REMOVE_RECURSE
  "../bench/table_push_regularization"
  "../bench/table_push_regularization.pdb"
  "CMakeFiles/table_push_regularization.dir/table_push_regularization.cc.o"
  "CMakeFiles/table_push_regularization.dir/table_push_regularization.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_push_regularization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
