file(REMOVE_RECURSE
  "../bench/table_dynamic_ppr"
  "../bench/table_dynamic_ppr.pdb"
  "CMakeFiles/table_dynamic_ppr.dir/table_dynamic_ppr.cc.o"
  "CMakeFiles/table_dynamic_ppr.dir/table_dynamic_ppr.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_dynamic_ppr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
