# Empty compiler generated dependencies file for table_dynamic_ppr.
# This may be replaced when dependencies are built.
