# Empty dependencies file for table_estimation.
# This may be replaced when dependencies are built.
