file(REMOVE_RECURSE
  "../bench/table_estimation"
  "../bench/table_estimation.pdb"
  "CMakeFiles/table_estimation.dir/table_estimation.cc.o"
  "CMakeFiles/table_estimation.dir/table_estimation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_estimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
