file(REMOVE_RECURSE
  "../bench/ablation_sweep_scaling"
  "../bench/ablation_sweep_scaling.pdb"
  "CMakeFiles/ablation_sweep_scaling.dir/ablation_sweep_scaling.cc.o"
  "CMakeFiles/ablation_sweep_scaling.dir/ablation_sweep_scaling.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sweep_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
