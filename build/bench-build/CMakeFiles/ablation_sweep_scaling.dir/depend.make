# Empty dependencies file for ablation_sweep_scaling.
# This may be replaced when dependencies are built.
