# Empty dependencies file for ablation_lazy_alpha.
# This may be replaced when dependencies are built.
