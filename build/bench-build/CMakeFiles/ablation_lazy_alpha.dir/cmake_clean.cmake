file(REMOVE_RECURSE
  "../bench/ablation_lazy_alpha"
  "../bench/ablation_lazy_alpha.pdb"
  "CMakeFiles/ablation_lazy_alpha.dir/ablation_lazy_alpha.cc.o"
  "CMakeFiles/ablation_lazy_alpha.dir/ablation_lazy_alpha.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lazy_alpha.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
