
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/community_detection.cpp" "examples/CMakeFiles/community_detection.dir/community_detection.cpp.o" "gcc" "examples/CMakeFiles/community_detection.dir/community_detection.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/impreg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ncp/CMakeFiles/impreg_ncp.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/impreg_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/impreg_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/regularization/CMakeFiles/impreg_regularization.dir/DependInfo.cmake"
  "/root/repo/build/src/ranking/CMakeFiles/impreg_ranking.dir/DependInfo.cmake"
  "/root/repo/build/src/streaming/CMakeFiles/impreg_streaming.dir/DependInfo.cmake"
  "/root/repo/build/src/diffusion/CMakeFiles/impreg_diffusion.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/impreg_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/impreg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/impreg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
