file(REMOVE_RECURSE
  "CMakeFiles/streaming_analytics.dir/streaming_analytics.cpp.o"
  "CMakeFiles/streaming_analytics.dir/streaming_analytics.cpp.o.d"
  "streaming_analytics"
  "streaming_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
