# Empty dependencies file for local_clustering.
# This may be replaced when dependencies are built.
