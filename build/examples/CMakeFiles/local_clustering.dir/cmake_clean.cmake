file(REMOVE_RECURSE
  "CMakeFiles/local_clustering.dir/local_clustering.cpp.o"
  "CMakeFiles/local_clustering.dir/local_clustering.cpp.o.d"
  "local_clustering"
  "local_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/local_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
