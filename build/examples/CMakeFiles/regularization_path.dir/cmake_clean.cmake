file(REMOVE_RECURSE
  "CMakeFiles/regularization_path.dir/regularization_path.cpp.o"
  "CMakeFiles/regularization_path.dir/regularization_path.cpp.o.d"
  "regularization_path"
  "regularization_path.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regularization_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
