# Empty compiler generated dependencies file for regularization_path.
# This may be replaced when dependencies are built.
