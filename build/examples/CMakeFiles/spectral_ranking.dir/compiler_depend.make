# Empty compiler generated dependencies file for spectral_ranking.
# This may be replaced when dependencies are built.
