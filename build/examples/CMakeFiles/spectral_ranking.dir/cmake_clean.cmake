file(REMOVE_RECURSE
  "CMakeFiles/spectral_ranking.dir/spectral_ranking.cpp.o"
  "CMakeFiles/spectral_ranking.dir/spectral_ranking.cpp.o.d"
  "spectral_ranking"
  "spectral_ranking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spectral_ranking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
