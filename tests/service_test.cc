// Acceptance suite for the query-serving layer (service/): the
// deterministic FIFO ResultCache, the QueryEngine's dedup / cache /
// warm-restart / dense-grouping behavior, and the JSONL wire schema
// pin. The thread-count invariance of the whole engine is pinned in
// determinism_test.cc; the fault-containment path of the cache insert
// in robustness_test.cc.

#include <cmath>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/solve_status.h"
#include "diffusion/pagerank.h"
#include "graph/generators.h"
#include "graph/random_graphs.h"
#include "partition/hkrelax.h"
#include "partition/nibble.h"
#include "service/query_engine.h"
#include "service/result_cache.h"
#include "service/wire.h"
#include "streaming/dynamic_graph.h"
#include "util/json.h"
#include "util/rng.h"

namespace impreg {
namespace {

CachedResult MakeResult(double value) {
  CachedResult result;
  result.scores = {value, value / 2.0};
  return result;
}

// —— ResultCache unit behavior ———————————————————————————————————

TEST(ResultCacheTest, HitAndMissCountsAreExact) {
  ResultCache cache(4);
  EXPECT_EQ(cache.Lookup("a"), nullptr);
  EXPECT_TRUE(cache.Insert("a", "", MakeResult(1.0)));
  const CachedResult* hit = cache.Lookup("a");
  ASSERT_NE(hit, nullptr);
  EXPECT_DOUBLE_EQ(hit->scores[0], 1.0);
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(cache.stats().misses, 1);
  EXPECT_EQ(cache.stats().insertions, 1);
}

TEST(ResultCacheTest, FifoEvictionBoundsSizeAndDropsOldestInsertion) {
  ResultCache cache(2);
  cache.Insert("a", "", MakeResult(1.0));
  cache.Insert("b", "", MakeResult(2.0));
  // Replacing "a" keeps its insertion-order slot: it is still oldest.
  cache.Insert("a", "", MakeResult(3.0));
  cache.Insert("c", "", MakeResult(4.0));  // Evicts "a", not "b".
  EXPECT_EQ(cache.Size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1);
  EXPECT_EQ(cache.Lookup("a"), nullptr);
  EXPECT_NE(cache.Lookup("b"), nullptr);
  EXPECT_NE(cache.Lookup("c"), nullptr);
  EXPECT_EQ(cache.KeysInInsertionOrder(),
            (std::vector<std::string>{"b", "c"}));
}

TEST(ResultCacheTest, NonFinitePayloadIsRejectedNotStored) {
  ResultCache cache(4);
  CachedResult poisoned = MakeResult(1.0);
  poisoned.scores[1] = std::nan("");
  EXPECT_FALSE(cache.Insert("a", "", std::move(poisoned)));
  EXPECT_EQ(cache.Size(), 0u);
  EXPECT_EQ(cache.stats().rejected, 1);
  EXPECT_EQ(cache.stats().insertions, 0);

  CachedResult bad_state = MakeResult(1.0);
  bad_state.has_state = true;
  bad_state.p = {1.0};
  bad_state.r = {std::numeric_limits<double>::infinity()};
  EXPECT_FALSE(cache.Insert("b", "warm", std::move(bad_state)));
  EXPECT_EQ(cache.stats().rejected, 2);
}

TEST(ResultCacheTest, WarmIndexTracksLatestStatefulEntryAndEviction) {
  ResultCache cache(2);
  CachedResult first = MakeResult(1.0);
  first.has_state = true;
  first.p = {1.0};
  first.r = {0.5};
  first.epoch = 0;
  cache.Insert("k0", "warm", std::move(first));
  ASSERT_NE(cache.WarmLookup("warm"), nullptr);
  EXPECT_EQ(cache.WarmLookup("warm")->epoch, 0);

  CachedResult second = MakeResult(2.0);
  second.has_state = true;
  second.p = {2.0};
  second.r = {0.25};
  second.epoch = 1;
  cache.Insert("k1", "warm", std::move(second));
  // Latest insertion wins the warm slot.
  EXPECT_EQ(cache.WarmLookup("warm")->epoch, 1);

  // Filling the cache evicts k0 (oldest) — the warm slot, which points
  // at k1, must survive; evicting k1 next clears it.
  cache.Insert("k2", "", MakeResult(3.0));
  EXPECT_EQ(cache.Lookup("k0"), nullptr);
  ASSERT_NE(cache.WarmLookup("warm"), nullptr);
  EXPECT_EQ(cache.WarmLookup("warm")->epoch, 1);
  cache.Insert("k3", "", MakeResult(4.0));  // Evicts k1.
  EXPECT_EQ(cache.WarmLookup("warm"), nullptr);
}

TEST(ResultCacheTest, ReplaceInPlaceDroppingStateClearsTheWarmSlot) {
  ResultCache cache(4);
  CachedResult stateful = MakeResult(1.0);
  stateful.has_state = true;
  stateful.p = {1.0};
  stateful.r = {0.5};
  cache.Insert("k", "warm", std::move(stateful));
  ASSERT_NE(cache.WarmLookup("warm"), nullptr);

  // Replacing the warm-slot holder with a stateless result must drop
  // the warm registration — a stale pointer here would serve a (p, r)
  // pair that no longer exists.
  cache.Insert("k", "warm", MakeResult(2.0));
  EXPECT_EQ(cache.WarmLookup("warm"), nullptr);
  ASSERT_NE(cache.Lookup("k"), nullptr);
  EXPECT_DOUBLE_EQ(cache.Lookup("k")->scores[0], 2.0);
}

TEST(ResultCacheTest, WarmSlotHandsOffBetweenEntriesSharingAKey) {
  ResultCache cache(4);
  CachedResult first = MakeResult(1.0);
  first.has_state = true;
  first.p = {1.0};
  first.r = {0.5};
  first.epoch = 0;
  cache.Insert("k0", "warm", std::move(first));
  CachedResult second = MakeResult(2.0);
  second.has_state = true;
  second.p = {2.0};
  second.r = {0.25};
  second.epoch = 1;
  cache.Insert("k1", "warm", std::move(second));
  ASSERT_NE(cache.WarmLookup("warm"), nullptr);
  EXPECT_EQ(cache.WarmLookup("warm")->epoch, 1);

  // Replacing the holder k1 with a stateless result (from an
  // equal-or-newer epoch — older inserts are rejected outright) clears
  // the slot — it does NOT silently hand back to k0, whose state may
  // be older than what the caller last observed under this warm key.
  CachedResult stateless = MakeResult(3.0);
  stateless.epoch = 1;
  cache.Insert("k1", "warm", std::move(stateless));
  EXPECT_EQ(cache.WarmLookup("warm"), nullptr);
  // k0's state still exists and can retake the slot on its next
  // insertion.
  CachedResult again = MakeResult(4.0);
  again.has_state = true;
  again.p = {4.0};
  again.r = {0.125};
  again.epoch = 2;
  cache.Insert("k0", "warm", std::move(again));
  ASSERT_NE(cache.WarmLookup("warm"), nullptr);
  EXPECT_EQ(cache.WarmLookup("warm")->epoch, 2);
}

TEST(ResultCacheTest, RegionInvalidationDemotesStatefulEvictsStateless) {
  ResultCache cache(8);
  CachedResult stateless = MakeResult(1.0);
  stateless.region.Reset();
  stateless.region.Add(1);
  cache.Insert("a", "", std::move(stateless));

  CachedResult stateful = MakeResult(2.0);
  stateful.has_state = true;
  stateful.p = {1.0};
  stateful.r = {0.5};
  stateful.region.Reset();
  stateful.region.Add(1);
  stateful.region.Add(2);
  cache.Insert("b", "warm-b", std::move(stateful));

  CachedResult distant = MakeResult(3.0);
  distant.region.Reset();
  distant.region.Add(300);
  cache.Insert("c", "", std::move(distant));

  // An edit touching node 1: "a" has nothing to warm-restart → gone;
  // "b" carries (p, r) → demoted but warm-servable; "c"'s region is
  // disjoint → untouched, still an exact hit.
  cache.InvalidateRegion(1, 1);
  EXPECT_EQ(cache.Lookup("a"), nullptr);
  EXPECT_EQ(cache.Lookup("b"), nullptr);
  ASSERT_NE(cache.WarmLookup("warm-b"), nullptr);
  EXPECT_DOUBLE_EQ(cache.WarmLookup("warm-b")->scores[0], 2.0);
  ASSERT_NE(cache.Lookup("c"), nullptr);
  EXPECT_DOUBLE_EQ(cache.Lookup("c")->scores[0], 3.0);
  EXPECT_EQ(cache.stats().region_evicted, 1);
  EXPECT_EQ(cache.stats().region_demoted, 1);
  EXPECT_EQ(cache.stats().region_retained, 1);
  EXPECT_EQ(cache.ExactSize(), 1u);
}

TEST(ResultCacheTest, DefaultRegionIsConservativeWholeGraph) {
  // A result whose region was never declared must behave like the old
  // invalidate-the-world scheme: every edit hits it.
  ResultCache cache(4);
  cache.Insert("a", "", MakeResult(1.0));  // region.all == true.
  cache.InvalidateRegion(500, 501);
  EXPECT_EQ(cache.Lookup("a"), nullptr);
  EXPECT_EQ(cache.stats().region_evicted, 1);
}

TEST(ResultCacheTest, EpochBumpAccountingConsumesEachEpochOnce) {
  ResultCache cache(8);
  CachedResult e0a = MakeResult(1.0);
  e0a.epoch = 0;
  CachedResult e0b = MakeResult(2.0);
  e0b.epoch = 0;
  e0b.has_state = true;
  e0b.p = {1.0};
  e0b.r = {0.5};
  CachedResult e1 = MakeResult(3.0);
  e1.epoch = 1;
  cache.Insert("a", "", std::move(e0a));
  cache.Insert("b", "warm", std::move(e0b));
  cache.Insert("c", "", std::move(e1));

  cache.NoteEpochBump(0);
  EXPECT_EQ(cache.stats().invalidated, 2);
  EXPECT_EQ(cache.stats().warm_demoted, 1);
  // The epoch-0 bucket was consumed: a second bump of the same epoch
  // adds nothing (the counts are O(1) per bump, not a rescan).
  cache.NoteEpochBump(0);
  EXPECT_EQ(cache.stats().invalidated, 2);
  EXPECT_EQ(cache.stats().warm_demoted, 1);
  cache.NoteEpochBump(1);
  EXPECT_EQ(cache.stats().invalidated, 3);
}

// —— QueryEngine behavior ————————————————————————————————————————

Graph ServiceGraph() { return CavemanGraph(8, 10); }

// The engine's frozen snapshot is FromGraph→ToGraph; bitwise
// comparisons against direct solver calls must use the same arc order.
Graph RoundTripped(const Graph& g) {
  return DynamicGraph::FromGraph(g).ToGraph();
}

Query PushQuery(std::vector<NodeId> seeds, double epsilon = 1e-6) {
  Query q;
  q.seeds = std::move(seeds);
  q.epsilon = epsilon;
  return q;
}

TEST(QueryEngineTest, RepeatedSeedBatchServesFromCacheWithoutPush) {
  QueryEngine engine(ServiceGraph());
  const Query query = PushQuery({0, 11});
  const QueryResponse cold = engine.Run(query);
  EXPECT_EQ(cold.source, QuerySource::kCold);
  EXPECT_EQ(cold.status, SolveStatus::kConverged);
  EXPECT_GT(cold.work, 0);

  const QueryResponse cached = engine.Run(query);
  EXPECT_EQ(cached.source, QuerySource::kCached);
  EXPECT_EQ(cached.work, 0);  // No pushes re-run.
  EXPECT_EQ(cached.scores, cold.scores);
  EXPECT_EQ(engine.cache().stats().hits, 1);
  EXPECT_EQ(engine.cache().stats().insertions, 1);
}

TEST(QueryEngineTest, IdenticalQueriesInOneBatchAreDeduplicated) {
  QueryEngine engine(ServiceGraph());
  // Seed canonicalization makes {7, 3} and {3, 7, 7} the same query.
  std::vector<Query> batch = {PushQuery({7, 3}), PushQuery({3, 7, 7}),
                              PushQuery({5})};
  const std::vector<QueryResponse> responses = engine.RunBatch(batch);
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_EQ(responses[0].scores, responses[1].scores);
  EXPECT_EQ(responses[0].work, responses[1].work);
  // One insertion per distinct query, not per request.
  EXPECT_EQ(engine.cache().stats().insertions, 2);
}

TEST(QueryEngineTest, WarmRestartMatchesColdSolveAfterAddEdge) {
  const Graph g = ServiceGraph();
  QueryEngine warm_engine(g);
  const Query query = PushQuery({0}, 1e-7);
  const QueryResponse before = warm_engine.Run(query);
  ASSERT_EQ(before.source, QuerySource::kCold);

  warm_engine.AddEdge(0, 35, 2.0);
  const QueryResponse warm = warm_engine.Run(query);
  EXPECT_EQ(warm.source, QuerySource::kWarm);

  // Cold reference on the same post-edit graph.
  QueryEngine::Options no_cache;
  no_cache.enable_cache = false;
  QueryEngine cold_engine(g, no_cache);
  cold_engine.AddEdge(0, 35, 2.0);
  const QueryResponse cold = cold_engine.Run(query);
  ASSERT_EQ(cold.source, QuerySource::kCold);

  // Both satisfy ‖PPR − p‖₁ ≤ ε·vol, so they agree within 2·ε·vol.
  const double bound =
      2.0 * query.epsilon * warm_engine.graph().TotalVolume() + 1e-12;
  double distance = 0.0;
  for (std::size_t i = 0; i < cold.scores.size(); ++i) {
    distance += std::abs(cold.scores[i] - warm.scores[i]);
  }
  EXPECT_LT(distance, bound);
  // The warm restart is the point: far fewer pushes than the cold run.
  EXPECT_LT(warm.work, cold.work);
}

TEST(QueryEngineTest, TighterEpsilonWarmRestartsFromCachedResidual) {
  QueryEngine engine(ServiceGraph());
  const QueryResponse loose = engine.Run(PushQuery({0}, 1e-4));
  ASSERT_EQ(loose.source, QuerySource::kCold);

  const Query tight = PushQuery({0}, 1e-8);
  const QueryResponse refined = engine.Run(tight);
  EXPECT_EQ(refined.source, QuerySource::kWarm);

  QueryEngine::Options no_cache;
  no_cache.enable_cache = false;
  QueryEngine cold_engine(ServiceGraph(), no_cache);
  const QueryResponse cold = cold_engine.Run(tight);
  const double bound =
      2.0 * tight.epsilon * engine.graph().TotalVolume() + 1e-12;
  double distance = 0.0;
  for (std::size_t i = 0; i < cold.scores.size(); ++i) {
    distance += std::abs(cold.scores[i] - refined.scores[i]);
  }
  EXPECT_LT(distance, bound);
  EXPECT_LT(refined.work, cold.work);
}

TEST(QueryEngineTest, EditInsideTheRegionDemotesTheEntryToWarm) {
  QueryEngine engine(ServiceGraph());
  const Query query = PushQuery({0});
  EXPECT_EQ(engine.Run(query).source, QuerySource::kCold);
  EXPECT_EQ(engine.Run(query).source, QuerySource::kCached);
  const std::int64_t epoch_before = engine.Epoch();
  // Nodes 1 and 2 sit in seed 0's clique — inside the cached entry's
  // region fingerprint — so this edit demotes the exact entry.
  engine.AddEdge(1, 2);
  EXPECT_EQ(engine.Epoch(), epoch_before + 1);
  // The key itself is epoch-free (per-entry validity replaced the old
  // invalidate-the-world epoch suffix); the demoted entry exact-misses
  // and the push family warm-restarts instead of serving stale scores.
  EXPECT_EQ(engine.Run(query).source, QuerySource::kWarm);
}

TEST(QueryEngineTest, SurgicalInvalidationRetainsEntriesOutsideTheRegion) {
  // CavemanGraph(8, 10): cliques 0 (nodes 0–9) and 4 (nodes 40–49) sit
  // on opposite sides of the ring. At ε = 1e-3 a push from clique 4
  // never reads clique 0's rows, so an edit inside clique 0 must leave
  // the clique-4 entry serving exact bits — this is the retention the
  // surgical scheme exists for.
  QueryEngine engine(ServiceGraph());
  const Query near_query = PushQuery({0}, 1e-3);
  const Query far_query = PushQuery({45}, 1e-3);
  const QueryResponse far_cold = engine.Run(far_query);
  ASSERT_EQ(far_cold.source, QuerySource::kCold);
  ASSERT_EQ(engine.Run(near_query).source, QuerySource::kCold);

  engine.AddEdge(1, 2);  // Inside clique 0, far from clique 4.

  const QueryResponse far_after = engine.Run(far_query);
  EXPECT_EQ(far_after.source, QuerySource::kCached);
  EXPECT_EQ(far_after.scores, far_cold.scores);
  EXPECT_GT(engine.cache().stats().region_retained, 0);
  // The entry whose region the edit did touch was demoted, not served.
  EXPECT_EQ(engine.Run(near_query).source, QuerySource::kWarm);
  EXPECT_EQ(engine.cache().stats().region_demoted, 1);
}

TEST(QueryEngineTest, InvalidateAllBaselineRetiresDistantEntriesToo) {
  // With surgical invalidation disabled the same sequence retires the
  // clique-4 entry as well: the old invalidate-the-world contract,
  // kept as the retention benchmark's baseline.
  QueryEngine::Options options;
  options.surgical_invalidation = false;
  QueryEngine engine(ServiceGraph(), options);
  const Query far_query = PushQuery({45}, 1e-3);
  ASSERT_EQ(engine.Run(far_query).source, QuerySource::kCold);

  engine.AddEdge(1, 2);

  EXPECT_NE(engine.Run(far_query).source, QuerySource::kCached);
  EXPECT_EQ(engine.cache().stats().region_retained, 0);
}

TEST(QueryEngineTest, RemoveEdgeUndoesAddEdgeBitwise) {
  // The tentpole round-trip at the serving layer: add two edges, remove
  // them, and a fresh query answers bit-identically (scores and work)
  // to an engine that never saw the edits.
  const Graph g = ServiceGraph();
  QueryEngine edited(g);
  ASSERT_EQ(edited.Run(PushQuery({0})).source, QuerySource::kCold);
  edited.AddEdge(2, 55, 0.5);
  edited.AddEdge(7, 63);
  edited.RemoveEdge(2, 55);  // Full removal (weight 0.0 sentinel).
  edited.RemoveEdge(7, 63, 1.0);  // Removing the full weight: same thing.
  EXPECT_EQ(edited.Epoch(), 4);

  QueryEngine untouched(g);
  const Query probe = PushQuery({12});
  const QueryResponse after = edited.Run(probe);
  const QueryResponse fresh = untouched.Run(probe);
  ASSERT_EQ(after.source, QuerySource::kCold);
  ASSERT_EQ(after.scores.size(), fresh.scores.size());
  for (std::size_t i = 0; i < fresh.scores.size(); ++i) {
    EXPECT_EQ(after.scores[i], fresh.scores[i]) << "node " << i;
  }
  EXPECT_EQ(after.work, fresh.work);
}

TEST(QueryEngineTest, CacheCapacityBoundsRetainedEntries) {
  QueryEngine::Options options;
  options.cache_capacity = 3;
  QueryEngine engine(ServiceGraph(), options);
  for (NodeId s = 0; s < 5; ++s) engine.Run(PushQuery({s}));
  EXPECT_EQ(engine.cache().Size(), 3u);
  EXPECT_EQ(engine.cache().stats().evictions, 2);
  // The two oldest (seeds 0, 1) were evicted → cold again.
  EXPECT_EQ(engine.Run(PushQuery({0})).source, QuerySource::kCold);
  EXPECT_EQ(engine.Run(PushQuery({4})).source, QuerySource::kCached);
}

TEST(QueryEngineTest, DensePprMatchesPersonalizedPageRankBitwise) {
  const Graph frozen = RoundTripped(ServiceGraph());
  QueryEngine engine(ServiceGraph());
  Query a;
  a.method = QueryMethod::kPprDense;
  a.seeds = {3};
  a.tolerance = 1e-10;
  a.max_iterations = 500;
  Query b = a;
  b.seeds = {41};  // Same parameters → same lockstep ApplyBatch group.
  const std::vector<QueryResponse> responses = engine.RunBatch({a, b});
  ASSERT_EQ(responses.size(), 2u);

  PageRankOptions reference;
  reference.gamma = a.gamma;
  reference.tolerance = a.tolerance;
  reference.max_iterations = a.max_iterations;
  for (std::size_t i = 0; i < 2; ++i) {
    Vector seed(frozen.NumNodes(), 0.0);
    seed[i == 0 ? 3 : 41] = 1.0;
    const PageRankResult solo =
        PersonalizedPageRank(frozen, seed, reference);
    EXPECT_EQ(responses[i].scores, solo.scores)
        << "grouped dense column " << i << " diverged from its solo solve";
    EXPECT_EQ(responses[i].status, solo.diagnostics.status);
  }
}

TEST(QueryEngineTest, HeatKernelAndNibbleQueriesMatchDirectCalls) {
  const Graph frozen = RoundTripped(ServiceGraph());
  QueryEngine engine(ServiceGraph());

  Query hk;
  hk.method = QueryMethod::kHeatKernel;
  hk.seeds = {12};
  hk.t = 8.0;
  hk.delta = 1e-5;
  hk.epsilon = 1e-6;
  const QueryResponse hk_response = engine.Run(hk);
  Vector hk_seed(frozen.NumNodes(), 0.0);
  hk_seed[12] = 1.0;
  HkRelaxOptions hk_options;
  hk_options.t = hk.t;
  hk_options.delta = hk.delta;
  hk_options.tail_tolerance = hk.epsilon;
  const HkRelaxResult hk_direct =
      HeatKernelRelaxFromDistribution(frozen, hk_seed, hk_options);
  EXPECT_EQ(hk_response.scores, hk_direct.rho);
  EXPECT_EQ(hk_response.set, hk_direct.set);
  EXPECT_DOUBLE_EQ(hk_response.conductance, hk_direct.stats.conductance);

  Query nibble;
  nibble.method = QueryMethod::kNibble;
  nibble.seeds = {25};
  nibble.steps = 30;
  nibble.epsilon = 1e-4;
  const QueryResponse nib_response = engine.Run(nibble);
  Vector nib_seed(frozen.NumNodes(), 0.0);
  nib_seed[25] = 1.0;
  NibbleOptions nib_options;
  nib_options.steps = nibble.steps;
  nib_options.epsilon = nibble.epsilon;
  const NibbleResult nib_direct =
      NibbleFromDistribution(frozen, nib_seed, nib_options);
  EXPECT_EQ(nib_response.scores, nib_direct.distribution);
  EXPECT_EQ(nib_response.set, nib_direct.set);
  EXPECT_DOUBLE_EQ(nib_response.conductance, nib_direct.stats.conductance);
}

TEST(QueryEngineTest, BudgetExhaustedQueryIsMarkedDegradedNeverSilent) {
  Rng rng(31);
  QueryEngine engine(ErdosRenyi(400, 0.05, rng));
  Query query = PushQuery({0}, 1e-12);
  query.max_work = 16;  // Far too little for this epsilon.
  const QueryResponse response = engine.Run(query);
  EXPECT_EQ(response.status, SolveStatus::kBudgetExhausted);
  EXPECT_TRUE(response.degraded);
  EXPECT_FALSE(response.detail.empty());
  for (double v : response.scores) ASSERT_TRUE(std::isfinite(v));

  // A degraded-but-usable answer is cacheable and keeps its marking.
  const QueryResponse replay = engine.Run(query);
  EXPECT_EQ(replay.source, QuerySource::kCached);
  EXPECT_EQ(replay.status, SolveStatus::kBudgetExhausted);
  EXPECT_TRUE(replay.degraded);
}

TEST(QueryEngineTest, InvalidQueriesAreRejectedAndNeverCached) {
  QueryEngine engine(ServiceGraph());
  Query empty;  // No seeds.
  Query out_of_range = PushQuery({9999});
  Query bad_gamma = PushQuery({0});
  bad_gamma.gamma = 1.5;
  const std::vector<QueryResponse> responses =
      engine.RunBatch({empty, out_of_range, bad_gamma});
  for (const QueryResponse& r : responses) {
    EXPECT_EQ(r.status, SolveStatus::kInvalidInput);
    EXPECT_TRUE(r.degraded);
    EXPECT_FALSE(r.detail.empty());
  }
  EXPECT_EQ(engine.cache().Size(), 0u);
}

TEST(QueryEngineTest, CanonicalKeyIsStableAcrossSeedOrderings) {
  Query a = PushQuery({5, 3, 5});
  Query b = PushQuery({3, 5});
  EXPECT_EQ(QueryEngine::CanonicalKey(a), QueryEngine::CanonicalKey(b));
  Query tighter = PushQuery({3, 5}, 1e-9);
  EXPECT_NE(QueryEngine::CanonicalKey(b), QueryEngine::CanonicalKey(tighter));
  // Keys are deliberately epoch-free: entry validity lives on the
  // entry (insert-epoch stamp + region fingerprint), not in the key.
  EXPECT_EQ(QueryEngine::CanonicalKey(a).find("epoch="), std::string::npos);
}

// —— Wire format ————————————————————————————————————————————————

TEST(WireTest, ParsesQueryAndAddEdgeLines) {
  QueryRequest request;
  std::string error;
  ASSERT_TRUE(ParseQueryRequest(
      R"({"id":"q1","method":"heat-kernel","seeds":[4,2],"t":5.0,"top":3})",
      &request, &error))
      << error;
  EXPECT_EQ(request.id, "q1");
  EXPECT_FALSE(request.is_add_edge);
  EXPECT_EQ(request.query.method, QueryMethod::kHeatKernel);
  EXPECT_EQ(request.query.seeds, (std::vector<NodeId>{4, 2}));
  EXPECT_DOUBLE_EQ(request.query.t, 5.0);
  EXPECT_EQ(request.top, 3);

  ASSERT_TRUE(ParseQueryRequest(
      R"({"op":"add-edge","u":3,"v":7,"weight":0.5})", &request, &error))
      << error;
  EXPECT_TRUE(request.is_add_edge);
  EXPECT_EQ(request.u, 3);
  EXPECT_EQ(request.v, 7);
  EXPECT_DOUBLE_EQ(request.weight, 0.5);

  EXPECT_FALSE(ParseQueryRequest(R"({"method":"ppr"})", &request, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(ParseQueryRequest(
      R"({"method":"bogus","seeds":[0]})", &request, &error));
  EXPECT_FALSE(
      ParseQueryRequest(R"({"op":"add-edge","u":1})", &request, &error));
  EXPECT_FALSE(ParseQueryRequest("not json", &request, &error));
}

TEST(WireTest, ShedResponseMatchesGoldenLine) {
  // A shed is a refusal serialized honestly: status "shed", both the
  // shed and degraded flags set, zero work, empty result arrays. The
  // exact line is pinned in tests/golden/query_response_shed.jsonl
  // (parsed independently by golden_test).
  QueryEngine::Options options;
  options.admission.enabled = true;
  options.admission.policy.capacity = 1;
  options.admission.policy.shed_fraction = 0.0;  // Shed from arrival 0.
  QueryEngine engine(ServiceGraph(), options);

  QueryRequest request;
  std::string error;
  ASSERT_TRUE(ParseQueryRequest(
      R"({"id":"q-shed","seeds":[0],"tenant":"heavy"})", &request, &error))
      << error;
  const QueryResponse response = engine.Run(request.query);
  EXPECT_EQ(response.status, SolveStatus::kShed);
  EXPECT_TRUE(response.shed);
  EXPECT_TRUE(response.degraded);
  EXPECT_EQ(response.work, 0);
  EXPECT_TRUE(response.scores.empty());

  const std::string json =
      QueryResponseToJson(request, response, engine.Epoch());
  EXPECT_EQ(json,
            "{\"schema\":\"impreg-query-response-v1\",\"id\":\"q-shed\","
            "\"method\":\"ppr\",\"status\":\"shed\",\"source\":\"cold\","
            "\"degraded\":true,\"shed\":true,\"tenant\":\"heavy\","
            "\"epoch\":0,\"support\":0,\"work\":0,\"conductance\":1,"
            "\"set\":[],\"top\":[]}");
}

TEST(QueryEngineTest, HeavyTenantOverloadLeavesLightTenantBitIdentical) {
  // Tenant isolation: a heavy tenant draining its pool must not
  // perturb a co-resident light tenant — the light tenant's responses
  // are bit-identical to a solo run against a fresh engine. Disjoint
  // seed sets keep the shared cache out of the comparison.
  const Graph g = ServiceGraph();
  QueryEngine::Options options;
  options.admission.enabled = true;
  options.admission.policy.degrade_fraction = 0.4;
  options.admission.policy.shed_fraction = 0.6;
  options.admission.policy.degraded_cap = 256;
  options.admission.tenant_capacity["heavy"] = 20000;  // light: unlimited.

  std::vector<Query> mixed;
  std::vector<std::size_t> light_at;
  std::vector<Query> light_only;
  for (int i = 0; i < 40; ++i) {
    Query heavy = PushQuery({i % 10});
    heavy.max_work = 4096;
    heavy.tenant = "heavy";
    mixed.push_back(heavy);
    if (i % 4 == 0) {
      Query light = PushQuery({40 + i});
      light.tenant = "light";
      light_at.push_back(mixed.size());
      mixed.push_back(light);
      light_only.push_back(light);
    }
  }

  QueryEngine loaded(g, options);
  const std::vector<QueryResponse> combined = loaded.RunBatch(mixed);
  QueryEngine solo(g, options);
  const std::vector<QueryResponse> alone = solo.RunBatch(light_only);

  // The overload really happened on the heavy side...
  std::int64_t heavy_shed = 0;
  std::int64_t heavy_degraded = 0;
  for (std::size_t i = 0; i < combined.size(); ++i) {
    if (combined[i].tenant != "heavy") continue;
    if (combined[i].shed) ++heavy_shed;
    if (combined[i].degraded && !combined[i].shed) ++heavy_degraded;
  }
  EXPECT_GT(heavy_shed, 0);
  EXPECT_GT(heavy_degraded, 0);

  // ...and the light tenant never noticed.
  ASSERT_EQ(light_at.size(), alone.size());
  for (std::size_t k = 0; k < light_at.size(); ++k) {
    const QueryResponse& in_mix = combined[light_at[k]];
    const QueryResponse& by_itself = alone[k];
    EXPECT_EQ(in_mix.status, SolveStatus::kConverged);
    EXPECT_FALSE(in_mix.degraded);
    EXPECT_FALSE(in_mix.shed);
    EXPECT_EQ(in_mix.scores, by_itself.scores) << "light query " << k;
    EXPECT_EQ(in_mix.work, by_itself.work);
    EXPECT_EQ(in_mix.status, by_itself.status);
    EXPECT_EQ(in_mix.conductance, by_itself.conductance);
  }
}

TEST(QueryEngineTest, AdmissionDisabledLeavesResponsesUnmarked) {
  // The default engine has no admission control: no shed flags, no
  // tenant ledgers, and the tenant string is still echoed through.
  QueryEngine engine(ServiceGraph());
  Query q = PushQuery({3});
  q.tenant = "whoever";
  const QueryResponse response = engine.Run(q);
  EXPECT_EQ(response.status, SolveStatus::kConverged);
  EXPECT_FALSE(response.shed);
  EXPECT_EQ(response.tenant, "whoever");
  EXPECT_TRUE(engine.admission_pool().stats().empty());
}

TEST(WireTest, GoldenResponseSchemaPin) {
  // The exact member set of impreg-query-response-v1, pinned: adding,
  // renaming, or dropping a field is a schema change and must be a
  // conscious one (bump the version in wire.cc and update
  // docs/serving.md).
  QueryEngine engine(ServiceGraph());
  QueryRequest request;
  std::string error;
  ASSERT_TRUE(ParseQueryRequest(
      R"({"id":"golden","seeds":[0],"epsilon":1e-5,"top":4})", &request,
      &error))
      << error;
  const QueryResponse response = engine.Run(request.query);
  const std::string json =
      QueryResponseToJson(request, response, engine.Epoch());

  const JsonParseResult parsed = JsonParse(json);
  ASSERT_TRUE(parsed.ok()) << parsed.error << "\n" << json;
  ASSERT_TRUE(parsed.value.is_object());
  std::set<std::string> members;
  for (const auto& [key, value] : parsed.value.Members()) members.insert(key);
  const std::set<std::string> expected = {
      "schema",  "id",   "method",      "status", "source", "degraded",
      "shed",    "tenant", "epoch",     "support", "work",
      "conductance", "set", "top"};
  EXPECT_EQ(members, expected);
  EXPECT_EQ(parsed.value.Find("schema")->AsString(),
            "impreg-query-response-v1");
  EXPECT_EQ(parsed.value.Find("id")->AsString(), "golden");
  EXPECT_EQ(parsed.value.Find("status")->AsString(), "converged");
  EXPECT_EQ(parsed.value.Find("source")->AsString(), "cold");
  const JsonValue* top =
      parsed.value.FindOfType("top", JsonValue::Type::kArray);
  ASSERT_NE(top, nullptr);
  ASSERT_LE(top->Items().size(), 4u);
  ASSERT_FALSE(top->Items().empty());
  // Each entry is a [node, score] pair, scores descending.
  double previous = 2.0;
  for (const JsonValue& entry : top->Items()) {
    ASSERT_TRUE(entry.is_array());
    ASSERT_EQ(entry.Items().size(), 2u);
    const double score = entry.Items()[1].AsDouble();
    EXPECT_LE(score, previous);
    previous = score;
  }
}

}  // namespace
}  // namespace impreg
